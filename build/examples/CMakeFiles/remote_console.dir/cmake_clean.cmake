file(REMOVE_RECURSE
  "CMakeFiles/remote_console.dir/remote_console.cpp.o"
  "CMakeFiles/remote_console.dir/remote_console.cpp.o.d"
  "remote_console"
  "remote_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
