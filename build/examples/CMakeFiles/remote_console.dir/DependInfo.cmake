
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/remote_console.cpp" "examples/CMakeFiles/remote_console.dir/remote_console.cpp.o" "gcc" "examples/CMakeFiles/remote_console.dir/remote_console.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lastcpu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/lastcpu_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/kvs/CMakeFiles/lastcpu_kvs.dir/DependInfo.cmake"
  "/root/repo/build/src/nicdev/CMakeFiles/lastcpu_nicdev.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lastcpu_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ssddev/CMakeFiles/lastcpu_ssddev.dir/DependInfo.cmake"
  "/root/repo/build/src/auth/CMakeFiles/lastcpu_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/virtio/CMakeFiles/lastcpu_virtio.dir/DependInfo.cmake"
  "/root/repo/build/src/memdev/CMakeFiles/lastcpu_memdev.dir/DependInfo.cmake"
  "/root/repo/build/src/dev/CMakeFiles/lastcpu_dev.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/lastcpu_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/lastcpu_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/iommu/CMakeFiles/lastcpu_iommu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/lastcpu_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lastcpu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/lastcpu_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/lastcpu_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
