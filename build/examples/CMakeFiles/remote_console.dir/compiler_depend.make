# Empty compiler generated dependencies file for remote_console.
# This may be replaced when dependencies are built.
