# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/iommu_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/virtio_test[1]_include.cmake")
include("/root/repo/build/tests/bus_test[1]_include.cmake")
include("/root/repo/build/tests/dev_test[1]_include.cmake")
include("/root/repo/build/tests/memdev_test[1]_include.cmake")
include("/root/repo/build/tests/ssddev_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/kvs_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
