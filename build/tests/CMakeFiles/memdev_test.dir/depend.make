# Empty dependencies file for memdev_test.
# This may be replaced when dependencies are built.
