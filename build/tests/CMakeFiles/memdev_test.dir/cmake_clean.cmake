file(REMOVE_RECURSE
  "CMakeFiles/memdev_test.dir/memdev_test.cc.o"
  "CMakeFiles/memdev_test.dir/memdev_test.cc.o.d"
  "memdev_test"
  "memdev_test.pdb"
  "memdev_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memdev_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
