# Empty compiler generated dependencies file for ssddev_test.
# This may be replaced when dependencies are built.
