file(REMOVE_RECURSE
  "CMakeFiles/ssddev_test.dir/ssddev_test.cc.o"
  "CMakeFiles/ssddev_test.dir/ssddev_test.cc.o.d"
  "ssddev_test"
  "ssddev_test.pdb"
  "ssddev_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssddev_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
