file(REMOVE_RECURSE
  "CMakeFiles/lastcpu_memdev.dir/memory_controller.cc.o"
  "CMakeFiles/lastcpu_memdev.dir/memory_controller.cc.o.d"
  "liblastcpu_memdev.a"
  "liblastcpu_memdev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lastcpu_memdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
