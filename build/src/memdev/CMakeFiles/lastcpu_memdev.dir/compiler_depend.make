# Empty compiler generated dependencies file for lastcpu_memdev.
# This may be replaced when dependencies are built.
