file(REMOVE_RECURSE
  "liblastcpu_memdev.a"
)
