# Empty dependencies file for lastcpu_nicdev.
# This may be replaced when dependencies are built.
