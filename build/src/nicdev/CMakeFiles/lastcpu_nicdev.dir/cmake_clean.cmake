file(REMOVE_RECURSE
  "CMakeFiles/lastcpu_nicdev.dir/smart_nic.cc.o"
  "CMakeFiles/lastcpu_nicdev.dir/smart_nic.cc.o.d"
  "liblastcpu_nicdev.a"
  "liblastcpu_nicdev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lastcpu_nicdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
