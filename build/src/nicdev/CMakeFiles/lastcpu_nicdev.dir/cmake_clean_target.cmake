file(REMOVE_RECURSE
  "liblastcpu_nicdev.a"
)
