file(REMOVE_RECURSE
  "liblastcpu_bus.a"
)
