file(REMOVE_RECURSE
  "CMakeFiles/lastcpu_bus.dir/system_bus.cc.o"
  "CMakeFiles/lastcpu_bus.dir/system_bus.cc.o.d"
  "liblastcpu_bus.a"
  "liblastcpu_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lastcpu_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
