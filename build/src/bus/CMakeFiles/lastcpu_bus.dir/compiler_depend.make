# Empty compiler generated dependencies file for lastcpu_bus.
# This may be replaced when dependencies are built.
