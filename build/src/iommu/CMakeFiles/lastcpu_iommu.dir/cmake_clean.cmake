file(REMOVE_RECURSE
  "CMakeFiles/lastcpu_iommu.dir/iommu.cc.o"
  "CMakeFiles/lastcpu_iommu.dir/iommu.cc.o.d"
  "CMakeFiles/lastcpu_iommu.dir/page_table.cc.o"
  "CMakeFiles/lastcpu_iommu.dir/page_table.cc.o.d"
  "CMakeFiles/lastcpu_iommu.dir/tlb.cc.o"
  "CMakeFiles/lastcpu_iommu.dir/tlb.cc.o.d"
  "liblastcpu_iommu.a"
  "liblastcpu_iommu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lastcpu_iommu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
