file(REMOVE_RECURSE
  "liblastcpu_iommu.a"
)
