# Empty compiler generated dependencies file for lastcpu_iommu.
# This may be replaced when dependencies are built.
