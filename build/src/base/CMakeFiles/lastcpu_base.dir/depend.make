# Empty dependencies file for lastcpu_base.
# This may be replaced when dependencies are built.
