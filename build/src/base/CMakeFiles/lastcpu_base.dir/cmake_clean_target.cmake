file(REMOVE_RECURSE
  "liblastcpu_base.a"
)
