file(REMOVE_RECURSE
  "CMakeFiles/lastcpu_base.dir/check.cc.o"
  "CMakeFiles/lastcpu_base.dir/check.cc.o.d"
  "CMakeFiles/lastcpu_base.dir/status.cc.o"
  "CMakeFiles/lastcpu_base.dir/status.cc.o.d"
  "CMakeFiles/lastcpu_base.dir/types.cc.o"
  "CMakeFiles/lastcpu_base.dir/types.cc.o.d"
  "liblastcpu_base.a"
  "liblastcpu_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lastcpu_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
