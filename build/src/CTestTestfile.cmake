# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("sim")
subdirs("proto")
subdirs("mem")
subdirs("iommu")
subdirs("fabric")
subdirs("virtio")
subdirs("bus")
subdirs("dev")
subdirs("memdev")
subdirs("auth")
subdirs("ssddev")
subdirs("net")
subdirs("nicdev")
subdirs("kvs")
subdirs("baseline")
subdirs("core")
