# Empty compiler generated dependencies file for lastcpu_auth.
# This may be replaced when dependencies are built.
