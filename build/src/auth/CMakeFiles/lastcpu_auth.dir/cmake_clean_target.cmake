file(REMOVE_RECURSE
  "liblastcpu_auth.a"
)
