file(REMOVE_RECURSE
  "CMakeFiles/lastcpu_auth.dir/auth_service.cc.o"
  "CMakeFiles/lastcpu_auth.dir/auth_service.cc.o.d"
  "liblastcpu_auth.a"
  "liblastcpu_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lastcpu_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
