file(REMOVE_RECURSE
  "liblastcpu_proto.a"
)
