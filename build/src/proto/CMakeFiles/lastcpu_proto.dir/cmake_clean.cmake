file(REMOVE_RECURSE
  "CMakeFiles/lastcpu_proto.dir/codec.cc.o"
  "CMakeFiles/lastcpu_proto.dir/codec.cc.o.d"
  "CMakeFiles/lastcpu_proto.dir/message.cc.o"
  "CMakeFiles/lastcpu_proto.dir/message.cc.o.d"
  "liblastcpu_proto.a"
  "liblastcpu_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lastcpu_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
