# Empty compiler generated dependencies file for lastcpu_proto.
# This may be replaced when dependencies are built.
