file(REMOVE_RECURSE
  "liblastcpu_sim.a"
)
