# Empty compiler generated dependencies file for lastcpu_sim.
# This may be replaced when dependencies are built.
