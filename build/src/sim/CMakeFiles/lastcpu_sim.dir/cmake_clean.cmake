file(REMOVE_RECURSE
  "CMakeFiles/lastcpu_sim.dir/rng.cc.o"
  "CMakeFiles/lastcpu_sim.dir/rng.cc.o.d"
  "CMakeFiles/lastcpu_sim.dir/simulator.cc.o"
  "CMakeFiles/lastcpu_sim.dir/simulator.cc.o.d"
  "CMakeFiles/lastcpu_sim.dir/stats.cc.o"
  "CMakeFiles/lastcpu_sim.dir/stats.cc.o.d"
  "CMakeFiles/lastcpu_sim.dir/time.cc.o"
  "CMakeFiles/lastcpu_sim.dir/time.cc.o.d"
  "CMakeFiles/lastcpu_sim.dir/trace.cc.o"
  "CMakeFiles/lastcpu_sim.dir/trace.cc.o.d"
  "liblastcpu_sim.a"
  "liblastcpu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lastcpu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
