file(REMOVE_RECURSE
  "liblastcpu_dev.a"
)
