file(REMOVE_RECURSE
  "CMakeFiles/lastcpu_dev.dir/device.cc.o"
  "CMakeFiles/lastcpu_dev.dir/device.cc.o.d"
  "CMakeFiles/lastcpu_dev.dir/loader_service.cc.o"
  "CMakeFiles/lastcpu_dev.dir/loader_service.cc.o.d"
  "CMakeFiles/lastcpu_dev.dir/service.cc.o"
  "CMakeFiles/lastcpu_dev.dir/service.cc.o.d"
  "liblastcpu_dev.a"
  "liblastcpu_dev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lastcpu_dev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
