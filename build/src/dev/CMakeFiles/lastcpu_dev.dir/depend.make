# Empty dependencies file for lastcpu_dev.
# This may be replaced when dependencies are built.
