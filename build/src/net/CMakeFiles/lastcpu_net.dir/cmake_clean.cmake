file(REMOVE_RECURSE
  "CMakeFiles/lastcpu_net.dir/network.cc.o"
  "CMakeFiles/lastcpu_net.dir/network.cc.o.d"
  "liblastcpu_net.a"
  "liblastcpu_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lastcpu_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
