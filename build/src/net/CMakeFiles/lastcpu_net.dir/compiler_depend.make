# Empty compiler generated dependencies file for lastcpu_net.
# This may be replaced when dependencies are built.
