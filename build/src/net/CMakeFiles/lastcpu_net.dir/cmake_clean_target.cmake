file(REMOVE_RECURSE
  "liblastcpu_net.a"
)
