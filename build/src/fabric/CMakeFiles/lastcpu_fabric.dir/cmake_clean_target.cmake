file(REMOVE_RECURSE
  "liblastcpu_fabric.a"
)
