# Empty dependencies file for lastcpu_fabric.
# This may be replaced when dependencies are built.
