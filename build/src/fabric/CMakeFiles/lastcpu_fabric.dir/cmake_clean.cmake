file(REMOVE_RECURSE
  "CMakeFiles/lastcpu_fabric.dir/fabric.cc.o"
  "CMakeFiles/lastcpu_fabric.dir/fabric.cc.o.d"
  "liblastcpu_fabric.a"
  "liblastcpu_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lastcpu_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
