# Empty dependencies file for lastcpu_core.
# This may be replaced when dependencies are built.
