file(REMOVE_RECURSE
  "liblastcpu_core.a"
)
