file(REMOVE_RECURSE
  "CMakeFiles/lastcpu_core.dir/control_plane.cc.o"
  "CMakeFiles/lastcpu_core.dir/control_plane.cc.o.d"
  "CMakeFiles/lastcpu_core.dir/machine.cc.o"
  "CMakeFiles/lastcpu_core.dir/machine.cc.o.d"
  "liblastcpu_core.a"
  "liblastcpu_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lastcpu_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
