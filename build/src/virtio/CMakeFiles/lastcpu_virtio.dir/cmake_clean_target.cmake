file(REMOVE_RECURSE
  "liblastcpu_virtio.a"
)
