file(REMOVE_RECURSE
  "CMakeFiles/lastcpu_virtio.dir/virtqueue.cc.o"
  "CMakeFiles/lastcpu_virtio.dir/virtqueue.cc.o.d"
  "liblastcpu_virtio.a"
  "liblastcpu_virtio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lastcpu_virtio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
