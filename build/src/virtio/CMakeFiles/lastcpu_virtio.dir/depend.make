# Empty dependencies file for lastcpu_virtio.
# This may be replaced when dependencies are built.
