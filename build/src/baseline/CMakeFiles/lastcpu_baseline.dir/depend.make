# Empty dependencies file for lastcpu_baseline.
# This may be replaced when dependencies are built.
