
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/central_kernel.cc" "src/baseline/CMakeFiles/lastcpu_baseline.dir/central_kernel.cc.o" "gcc" "src/baseline/CMakeFiles/lastcpu_baseline.dir/central_kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/iommu/CMakeFiles/lastcpu_iommu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/lastcpu_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lastcpu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/lastcpu_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
