file(REMOVE_RECURSE
  "CMakeFiles/lastcpu_baseline.dir/central_kernel.cc.o"
  "CMakeFiles/lastcpu_baseline.dir/central_kernel.cc.o.d"
  "liblastcpu_baseline.a"
  "liblastcpu_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lastcpu_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
