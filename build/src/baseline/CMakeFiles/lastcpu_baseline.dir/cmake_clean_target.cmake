file(REMOVE_RECURSE
  "liblastcpu_baseline.a"
)
