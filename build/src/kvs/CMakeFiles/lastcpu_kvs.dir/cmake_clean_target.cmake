file(REMOVE_RECURSE
  "liblastcpu_kvs.a"
)
