# Empty dependencies file for lastcpu_kvs.
# This may be replaced when dependencies are built.
