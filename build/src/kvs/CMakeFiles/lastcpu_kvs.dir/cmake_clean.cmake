file(REMOVE_RECURSE
  "CMakeFiles/lastcpu_kvs.dir/kvs_app.cc.o"
  "CMakeFiles/lastcpu_kvs.dir/kvs_app.cc.o.d"
  "CMakeFiles/lastcpu_kvs.dir/kvs_engine.cc.o"
  "CMakeFiles/lastcpu_kvs.dir/kvs_engine.cc.o.d"
  "CMakeFiles/lastcpu_kvs.dir/kvs_protocol.cc.o"
  "CMakeFiles/lastcpu_kvs.dir/kvs_protocol.cc.o.d"
  "CMakeFiles/lastcpu_kvs.dir/workload.cc.o"
  "CMakeFiles/lastcpu_kvs.dir/workload.cc.o.d"
  "liblastcpu_kvs.a"
  "liblastcpu_kvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lastcpu_kvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
