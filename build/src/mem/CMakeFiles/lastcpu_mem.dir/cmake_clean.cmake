file(REMOVE_RECURSE
  "CMakeFiles/lastcpu_mem.dir/buddy_allocator.cc.o"
  "CMakeFiles/lastcpu_mem.dir/buddy_allocator.cc.o.d"
  "CMakeFiles/lastcpu_mem.dir/physical_memory.cc.o"
  "CMakeFiles/lastcpu_mem.dir/physical_memory.cc.o.d"
  "liblastcpu_mem.a"
  "liblastcpu_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lastcpu_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
