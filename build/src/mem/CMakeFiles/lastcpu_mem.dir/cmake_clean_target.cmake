file(REMOVE_RECURSE
  "liblastcpu_mem.a"
)
