# Empty compiler generated dependencies file for lastcpu_mem.
# This may be replaced when dependencies are built.
