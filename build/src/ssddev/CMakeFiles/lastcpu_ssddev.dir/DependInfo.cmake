
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssddev/file_client.cc" "src/ssddev/CMakeFiles/lastcpu_ssddev.dir/file_client.cc.o" "gcc" "src/ssddev/CMakeFiles/lastcpu_ssddev.dir/file_client.cc.o.d"
  "/root/repo/src/ssddev/file_protocol.cc" "src/ssddev/CMakeFiles/lastcpu_ssddev.dir/file_protocol.cc.o" "gcc" "src/ssddev/CMakeFiles/lastcpu_ssddev.dir/file_protocol.cc.o.d"
  "/root/repo/src/ssddev/file_service.cc" "src/ssddev/CMakeFiles/lastcpu_ssddev.dir/file_service.cc.o" "gcc" "src/ssddev/CMakeFiles/lastcpu_ssddev.dir/file_service.cc.o.d"
  "/root/repo/src/ssddev/flash_fs.cc" "src/ssddev/CMakeFiles/lastcpu_ssddev.dir/flash_fs.cc.o" "gcc" "src/ssddev/CMakeFiles/lastcpu_ssddev.dir/flash_fs.cc.o.d"
  "/root/repo/src/ssddev/ftl.cc" "src/ssddev/CMakeFiles/lastcpu_ssddev.dir/ftl.cc.o" "gcc" "src/ssddev/CMakeFiles/lastcpu_ssddev.dir/ftl.cc.o.d"
  "/root/repo/src/ssddev/nand.cc" "src/ssddev/CMakeFiles/lastcpu_ssddev.dir/nand.cc.o" "gcc" "src/ssddev/CMakeFiles/lastcpu_ssddev.dir/nand.cc.o.d"
  "/root/repo/src/ssddev/smart_ssd.cc" "src/ssddev/CMakeFiles/lastcpu_ssddev.dir/smart_ssd.cc.o" "gcc" "src/ssddev/CMakeFiles/lastcpu_ssddev.dir/smart_ssd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/auth/CMakeFiles/lastcpu_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/dev/CMakeFiles/lastcpu_dev.dir/DependInfo.cmake"
  "/root/repo/build/src/virtio/CMakeFiles/lastcpu_virtio.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/lastcpu_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/lastcpu_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/lastcpu_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/iommu/CMakeFiles/lastcpu_iommu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lastcpu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/lastcpu_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/lastcpu_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
