file(REMOVE_RECURSE
  "CMakeFiles/lastcpu_ssddev.dir/file_client.cc.o"
  "CMakeFiles/lastcpu_ssddev.dir/file_client.cc.o.d"
  "CMakeFiles/lastcpu_ssddev.dir/file_protocol.cc.o"
  "CMakeFiles/lastcpu_ssddev.dir/file_protocol.cc.o.d"
  "CMakeFiles/lastcpu_ssddev.dir/file_service.cc.o"
  "CMakeFiles/lastcpu_ssddev.dir/file_service.cc.o.d"
  "CMakeFiles/lastcpu_ssddev.dir/flash_fs.cc.o"
  "CMakeFiles/lastcpu_ssddev.dir/flash_fs.cc.o.d"
  "CMakeFiles/lastcpu_ssddev.dir/ftl.cc.o"
  "CMakeFiles/lastcpu_ssddev.dir/ftl.cc.o.d"
  "CMakeFiles/lastcpu_ssddev.dir/nand.cc.o"
  "CMakeFiles/lastcpu_ssddev.dir/nand.cc.o.d"
  "CMakeFiles/lastcpu_ssddev.dir/smart_ssd.cc.o"
  "CMakeFiles/lastcpu_ssddev.dir/smart_ssd.cc.o.d"
  "liblastcpu_ssddev.a"
  "liblastcpu_ssddev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lastcpu_ssddev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
