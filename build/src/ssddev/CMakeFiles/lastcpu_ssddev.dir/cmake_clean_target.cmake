file(REMOVE_RECURSE
  "liblastcpu_ssddev.a"
)
