# Empty compiler generated dependencies file for lastcpu_ssddev.
# This may be replaced when dependencies are built.
