# Empty dependencies file for bench_virtio.
# This may be replaced when dependencies are built.
