file(REMOVE_RECURSE
  "CMakeFiles/bench_virtio.dir/bench_virtio.cc.o"
  "CMakeFiles/bench_virtio.dir/bench_virtio.cc.o.d"
  "bench_virtio"
  "bench_virtio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_virtio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
