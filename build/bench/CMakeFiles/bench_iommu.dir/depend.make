# Empty dependencies file for bench_iommu.
# This may be replaced when dependencies are built.
