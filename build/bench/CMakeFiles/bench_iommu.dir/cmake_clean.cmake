file(REMOVE_RECURSE
  "CMakeFiles/bench_iommu.dir/bench_iommu.cc.o"
  "CMakeFiles/bench_iommu.dir/bench_iommu.cc.o.d"
  "bench_iommu"
  "bench_iommu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iommu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
