file(REMOVE_RECURSE
  "CMakeFiles/bench_isolation.dir/bench_isolation.cc.o"
  "CMakeFiles/bench_isolation.dir/bench_isolation.cc.o.d"
  "bench_isolation"
  "bench_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
