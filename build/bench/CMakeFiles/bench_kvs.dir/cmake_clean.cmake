file(REMOVE_RECURSE
  "CMakeFiles/bench_kvs.dir/bench_kvs.cc.o"
  "CMakeFiles/bench_kvs.dir/bench_kvs.cc.o.d"
  "bench_kvs"
  "bench_kvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
