# Empty dependencies file for bench_kvs.
# This may be replaced when dependencies are built.
