// Ablations over the design choices DESIGN.md §5 calls out: how much each
// mechanism contributes, and where each knob's cliff sits.
//
//   A1  bus table-update engine speed  -> E2-style control throughput
//   A2  SSD-DRAM read cache size       -> KVS GET throughput
//   A3  IOMMU TLB geometry             -> DMA-loop time on the data plane
//   A4  discovery window               -> Figure-2 init latency
//   A5  file-service queue depth       -> KVS throughput (concurrency cap)
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/ssddev/file_client.h"

namespace lastcpu {
namespace {

using benchutil::ControlLoadRunner;
using benchutil::StubDevice;

// A1: sweep the bus's privileged table-update cost; 8 contending devices.
void Ablation_BusTableEngine(benchmark::State& state) {
  auto update_ns = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    core::MachineConfig config;
    config.bus.table_update_latency = sim::Duration::Nanos(update_ns);
    core::Machine machine(config);
    auto& memctrl = machine.AddMemoryController();
    std::vector<StubDevice*> stubs;
    for (int i = 0; i < 8; ++i) {
      stubs.push_back(&machine.Emplace<StubDevice>("dev" + std::to_string(i)));
    }
    machine.Boot();
    std::vector<std::unique_ptr<core::BusControlClient>> clients;
    std::vector<ControlLoadRunner::PerClient> per_client;
    for (size_t i = 0; i < stubs.size(); ++i) {
      clients.push_back(std::make_unique<core::BusControlClient>(stubs[i], memctrl.id()));
      per_client.push_back({clients.back().get(), Pasid(static_cast<uint32_t>(i + 1))});
    }
    sim::SimTime start = machine.simulator().Now();
    ControlLoadRunner runner(&machine.simulator(), std::move(per_client), 100);
    runner.Run();
    sim::Duration elapsed = machine.simulator().Now() - start;
    state.SetIterationTime(elapsed.seconds());
    state.counters["ops_per_sec"] = static_cast<double>(runner.completed()) / elapsed.seconds();
  }
  state.counters["table_update_ns"] = static_cast<double>(update_ns);
}

// A2: sweep the FTL read cache; GET-only Zipf workload.
void Ablation_FtlReadCache(benchmark::State& state) {
  auto cache_pages = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto machine = std::make_unique<core::Machine>();
    machine->AddMemoryController();
    ssddev::SmartSsdConfig ssd_config;
    ssd_config.host_auth_service = false;
    ssd_config.ftl.read_cache_pages = cache_pages;
    auto& ssd = machine->AddSmartSsd(ssd_config);
    auto& nic = machine->AddSmartNic();
    ssd.ProvisionFile("kv.log", {});
    Pasid pasid = machine->NewApplication("kvs");
    auto app = std::make_unique<kvs::KvsApp>(&nic, pasid);
    kvs::KvsApp* kvs_app = app.get();
    nic.LoadApp(std::move(app));
    machine->Boot();
    for (uint64_t i = 0; i < 200; ++i) {
      kvs_app->engine().Put(kvs::WorkloadGenerator::KeyFor(i), std::vector<uint8_t>(256, 1),
                            [](Status s) { LASTCPU_CHECK(s.ok(), "preload"); });
      machine->RunUntilIdle();
    }
    kvs::WorkloadConfig workload;
    workload.num_keys = 200;
    workload.get_fraction = 1.0;
    kvs::LoadClient client(&machine->simulator(), &machine->network(), nic.endpoint(), workload,
                           32);
    bool finished = false;
    sim::SimTime start = machine->simulator().Now();
    client.Start(3000, [&] { finished = true; });
    machine->RunUntilIdle();
    LASTCPU_CHECK(finished, "workload stalled");
    sim::Duration elapsed = machine->simulator().Now() - start;
    state.SetIterationTime(elapsed.seconds());
    state.counters["ops_per_sec"] = static_cast<double>(client.completed()) / elapsed.seconds();
    uint64_t hits = ssd.ftl().cache_hits();
    uint64_t misses = ssd.ftl().cache_misses();
    state.counters["hit_rate"] =
        hits + misses == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(hits + misses);
  }
  state.counters["cache_pages"] = static_cast<double>(cache_pages);
}

// A3: TLB geometry on the data plane — 4096 single-page DMA reads over a
// 256-page working set.
void Ablation_TlbSize(benchmark::State& state) {
  auto sets = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    mem::PhysicalMemory memory(16 << 20);
    fabric::Fabric fabric(&simulator, &memory);
    iommu::Iommu unit(DeviceId(1), iommu::TlbConfig{sets, 4});
    fabric.AttachDevice(DeviceId(1), &unit);
    auto key = iommu::ProgrammingKey::CreateForTesting();
    constexpr uint64_t kPages = 256;
    for (uint64_t v = 0; v < kPages; ++v) {
      (void)unit.Map(key, Pasid(1), v, v, Access::kReadWrite);
    }
    sim::Rng rng(11);
    sim::SimTime start = simulator.Now();
    int outstanding = 0;
    for (int i = 0; i < 4096; ++i) {
      ++outstanding;
      fabric.DmaRead(DeviceId(1), Pasid(1), VirtAddr(rng.NextBelow(kPages) << kPageShift), 64,
                     [&](Result<std::vector<uint8_t>> r) {
                       LASTCPU_CHECK(r.ok(), "dma failed");
                       --outstanding;
                     });
    }
    simulator.Run();
    LASTCPU_CHECK(outstanding == 0, "dma lost");
    state.SetIterationTime((simulator.Now() - start).seconds());
    state.counters["tlb_hit_rate"] = unit.tlb().HitRate();
  }
  state.counters["tlb_entries"] = static_cast<double>(sets * 4);
}

// A4: discovery-window policy vs Figure-2 init latency.
void Ablation_DiscoveryWindow(benchmark::State& state) {
  auto window_us = static_cast<uint64_t>(state.range(0));
  core::Machine machine;
  machine.AddMemoryController();
  ssddev::SmartSsdConfig ssd_config;
  ssd_config.host_auth_service = false;
  auto& ssd = machine.AddSmartSsd(ssd_config);
  ssd.ProvisionFile("kv.log", {});
  auto& stub = machine.Emplace<StubDevice>("client");
  machine.Boot();
  uint32_t pasid_seq = 1;
  for (auto _ : state) {
    ssddev::FileClientConfig client_config;
    client_config.discover_window = sim::Duration::Micros(window_us);
    ssddev::FileClient client(&stub, Pasid(pasid_seq++), client_config);
    stub.doorbell_sink = &client;
    sim::SimTime start = machine.simulator().Now();
    bool done = false;
    client.Open("kv.log", 0, [&](Status s) {
      LASTCPU_CHECK(s.ok(), "open failed: %s", s.ToString().c_str());
      done = true;
    });
    machine.RunUntilIdle();
    LASTCPU_CHECK(done, "open stalled");
    state.SetIterationTime((machine.simulator().Now() - start).seconds());
    client.Close([](Status) {});
    machine.RunUntilIdle();
  }
  state.counters["window_us"] = static_cast<double>(window_us);
}

// A5: file-service queue depth (bounds per-session concurrency).
void Ablation_QueueDepth(benchmark::State& state) {
  auto depth = static_cast<uint16_t>(state.range(0));
  for (auto _ : state) {
    auto machine = std::make_unique<core::Machine>();
    machine->AddMemoryController();
    ssddev::SmartSsdConfig ssd_config;
    ssd_config.host_auth_service = false;
    ssd_config.file_service.queue_depth = depth;
    auto& ssd = machine->AddSmartSsd(ssd_config);
    auto& nic = machine->AddSmartNic();
    ssd.ProvisionFile("kv.log", {});
    Pasid pasid = machine->NewApplication("kvs");
    auto app = std::make_unique<kvs::KvsApp>(&nic, pasid);
    kvs::KvsApp* kvs_app = app.get();
    nic.LoadApp(std::move(app));
    machine->Boot();
    for (uint64_t i = 0; i < 100; ++i) {
      kvs_app->engine().Put(kvs::WorkloadGenerator::KeyFor(i), std::vector<uint8_t>(128, 1),
                            [](Status s) { LASTCPU_CHECK(s.ok(), "preload"); });
      machine->RunUntilIdle();
    }
    kvs::WorkloadConfig workload;
    workload.num_keys = 100;
    workload.get_fraction = 1.0;
    workload.zipf_theta = 0.0;  // uniform: stress the NAND dies, not the cache
    kvs::LoadClient client(&machine->simulator(), &machine->network(), nic.endpoint(), workload,
                           64);
    bool finished = false;
    sim::SimTime start = machine->simulator().Now();
    client.Start(2000, [&] { finished = true; });
    machine->RunUntilIdle();
    LASTCPU_CHECK(finished, "workload stalled");
    sim::Duration elapsed = machine->simulator().Now() - start;
    state.SetIterationTime(elapsed.seconds());
    state.counters["ops_per_sec"] = static_cast<double>(client.completed()) / elapsed.seconds();
  }
  state.counters["depth"] = static_cast<double>(depth);
}

// A6: log compaction on/off under an overwrite-heavy workload — how much
// flash the generational GC reclaims and what it costs.
void Ablation_KvsCompaction(benchmark::State& state) {
  bool enabled = state.range(0) != 0;
  for (auto _ : state) {
    auto machine = std::make_unique<core::Machine>();
    machine->AddMemoryController();
    ssddev::SmartSsdConfig ssd_config;
    ssd_config.host_auth_service = false;
    auto& ssd = machine->AddSmartSsd(ssd_config);
    auto& nic = machine->AddSmartNic();
    ssd.ProvisionFile("kv.log", {});
    Pasid pasid = machine->NewApplication("kvs");
    kvs::KvsAppConfig app_config;
    if (enabled) {
      app_config.engine.compact_garbage_ratio = 0.5;
      app_config.engine.min_compact_bytes = 16 << 10;
    }
    auto app = std::make_unique<kvs::KvsApp>(&nic, pasid, app_config);
    kvs::KvsApp* kvs_app = app.get();
    nic.LoadApp(std::move(app));
    machine->Boot();
    // Overwrite-heavy: 40 keys x 60 rounds of 256-byte values.
    sim::SimTime start = machine->simulator().Now();
    for (int round = 0; round < 60; ++round) {
      for (int i = 0; i < 40; ++i) {
        kvs_app->engine().Put(kvs::WorkloadGenerator::KeyFor(static_cast<uint64_t>(i)),
                              std::vector<uint8_t>(256, static_cast<uint8_t>(round)),
                              [](Status s) { LASTCPU_CHECK(s.ok(), "put failed"); });
        machine->RunUntilIdle();
      }
    }
    state.SetIterationTime((machine->simulator().Now() - start).seconds());
    state.counters["log_bytes"] = static_cast<double>(kvs_app->engine().log_tail_bytes());
    state.counters["live_bytes"] = static_cast<double>(kvs_app->engine().live_bytes());
    state.counters["compactions"] =
        static_cast<double>(kvs_app->engine().stats().GetCounter("compactions_completed").value());
    state.counters["generation"] = static_cast<double>(kvs_app->engine().generation());
  }
  state.counters["enabled"] = enabled ? 1 : 0;
}

BENCHMARK(Ablation_KvsCompaction)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->Arg(0)
    ->Arg(1);

BENCHMARK(Ablation_BusTableEngine)
    ->UseManualTime()
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond)
    ->Arg(60)
    ->Arg(120)
    ->Arg(480)
    ->Arg(1920);
BENCHMARK(Ablation_FtlReadCache)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->Arg(0)
    ->Arg(64)
    ->Arg(1024);
BENCHMARK(Ablation_TlbSize)
    ->UseManualTime()
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(16)
    ->Arg(128);
BENCHMARK(Ablation_DiscoveryWindow)
    ->UseManualTime()
    ->Iterations(10)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(5)
    ->Arg(20)
    ->Arg(50);
BENCHMARK(Ablation_QueueDepth)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128);

}  // namespace
}  // namespace lastcpu

BENCHMARK_MAIN();
