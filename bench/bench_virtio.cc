// E8: VIRTIO as the universal service interface (paper Sec. 2.1).
//
// Measures virtqueue round-trip latency and throughput over IOMMU-translated
// shared memory as queue depth and batch size vary — the cost floor under
// every service session in the machine.
#include <benchmark/benchmark.h>

#include <optional>

#include "src/fabric/fabric.h"
#include "src/iommu/iommu.h"
#include "src/mem/physical_memory.h"
#include "src/sim/simulator.h"
#include "src/virtio/virtqueue.h"

namespace lastcpu {
namespace {

constexpr DeviceId kClient{1};
constexpr DeviceId kServer{2};
constexpr Pasid kApp{1};

struct QueueRig {
  sim::Simulator simulator;
  mem::PhysicalMemory memory{32 << 20};
  fabric::Fabric fabric{&simulator, &memory};
  iommu::Iommu client_iommu{kClient};
  iommu::Iommu server_iommu{kServer};
  std::optional<virtio::VirtqueueDriver> driver;
  std::optional<virtio::VirtqueueDevice> device;
  VirtAddr data_va;

  explicit QueueRig(uint16_t depth) {
    fabric.AttachDevice(kClient, &client_iommu);
    fabric.AttachDevice(kServer, &server_iommu);
    auto key = iommu::ProgrammingKey::CreateForTesting();
    uint64_t ring_pages = PagesForBytes(virtio::VirtqueueLayout::BytesRequired(depth));
    uint64_t total_pages = ring_pages + 64;
    for (uint64_t i = 0; i < total_pages; ++i) {
      (void)client_iommu.Map(key, kApp, i, 16 + i, Access::kReadWrite);
      (void)server_iommu.Map(key, kApp, i, 16 + i, Access::kReadWrite);
    }
    data_va = VirtAddr(ring_pages << kPageShift);
    driver.emplace(&fabric, kClient, kApp, VirtAddr(0), depth);
    device.emplace(&fabric, kServer, kApp, VirtAddr(0), depth);
    LASTCPU_CHECK(driver->Initialize().ok(), "queue init failed");
  }
};

// One request round trip: submit -> device pops -> device completes ->
// driver polls. Simulated cost comes from the accrued ring-access model.
void Virtio_RoundTrip(benchmark::State& state) {
  auto depth = static_cast<uint16_t>(state.range(0));
  QueueRig rig(depth);
  for (auto _ : state) {
    sim::Duration cost = sim::Duration::Zero();
    auto head = rig.driver->Submit({virtio::BufferDesc{rig.data_va, 256, false},
                                    virtio::BufferDesc{rig.data_va + 256, 256, true}});
    LASTCPU_CHECK(head.ok(), "submit failed");
    auto chain = rig.device->PopAvail();
    LASTCPU_CHECK(chain.ok() && chain->has_value(), "pop failed");
    LASTCPU_CHECK(rig.device->PushUsed((*chain)->head, 256).ok(), "push failed");
    auto used = rig.driver->PollUsed();
    LASTCPU_CHECK(used.ok() && used->has_value(), "poll failed");
    cost += rig.driver->TakeAccruedCost();
    cost += rig.device->TakeAccruedCost();
    state.SetIterationTime(cost.seconds());
  }
  state.counters["depth"] = static_cast<double>(depth);
}

// Batched: submit B chains, drain all, complete all, poll all. Per-op cost
// amortizes the avail/used index reads.
void Virtio_Batched(benchmark::State& state) {
  constexpr uint16_t kDepth = 256;
  auto batch = static_cast<uint16_t>(state.range(0));
  QueueRig rig(kDepth);
  for (auto _ : state) {
    sim::Duration cost = sim::Duration::Zero();
    for (uint16_t i = 0; i < batch; ++i) {
      auto head = rig.driver->Submit({virtio::BufferDesc{rig.data_va, 64, false}});
      LASTCPU_CHECK(head.ok(), "submit failed");
    }
    for (uint16_t i = 0; i < batch; ++i) {
      auto chain = rig.device->PopAvail();
      LASTCPU_CHECK(chain.ok() && chain->has_value(), "pop failed");
      LASTCPU_CHECK(rig.device->PushUsed((*chain)->head, 0).ok(), "push failed");
    }
    for (uint16_t i = 0; i < batch; ++i) {
      auto used = rig.driver->PollUsed();
      LASTCPU_CHECK(used.ok() && used->has_value(), "poll failed");
    }
    cost += rig.driver->TakeAccruedCost();
    cost += rig.device->TakeAccruedCost();
    // Report per-operation cost.
    state.SetIterationTime(cost.seconds() / batch);
  }
  state.counters["batch"] = static_cast<double>(batch);
}

// Host-time microbenchmark of the ring machinery itself.
void Virtio_HostOverhead(benchmark::State& state) {
  QueueRig rig(64);
  for (auto _ : state) {
    auto head = rig.driver->Submit({virtio::BufferDesc{rig.data_va, 64, false}});
    auto chain = rig.device->PopAvail();
    (void)rig.device->PushUsed((*chain)->head, 0);
    auto used = rig.driver->PollUsed();
    benchmark::DoNotOptimize(used);
    benchmark::DoNotOptimize(head);
  }
}

BENCHMARK(Virtio_RoundTrip)
    ->UseManualTime()
    ->Iterations(2000)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256);
BENCHMARK(Virtio_Batched)
    ->UseManualTime()
    ->Iterations(500)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128);
BENCHMARK(Virtio_HostOverhead);

}  // namespace
}  // namespace lastcpu

BENCHMARK_MAIN();
