// E2: control-plane operation throughput and latency under contention.
//
// N devices each run a closed loop of (alloc 16 KiB -> free) operations.
// Decentralized: requests ride the bus to the memory controller; mappings are
// programmed by the bus's table engine. Centralized: every operation is an
// interrupt + syscall on a CPU with a fixed core count.
//
// Expected shape (paper claim: "control tasks ... can be handled in other
// hardware"): at 1 device the centralized kernel is competitive; as devices
// grow, the kernel's run queue serializes while the decentralized path's
// specialized hardware pipeline keeps per-op latency near-flat until the
// memory controller's firmware saturates.
//
// Series:
//  * Decentralized / Centralized: the closed-loop baselines. A closed loop
//    of identical clients marches in lockstep, so p50 == p99 there by
//    construction — read those rows for throughput, not tails.
//  * DecentralizedOpenLoop: Poisson arrivals (seeded, deterministic), which
//    surface real queueing variance in p50/p99.
//  * DecentralizedBatched[OpenLoop]: the grant-magazine fast path
//    (core::MagazineClient) over the same bus; most ops never leave the
//    device, collapsing bus_msgs_per_op.
//  * CentralizedBatched: the same magazine over the kernel client, refilled
//    through lease_batch syscalls, so the batched comparison stays fair.
//
// `--quick` (stripped before google-benchmark sees the args) shrinks the op
// count for CI smoke runs.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace lastcpu {
namespace {

using benchutil::ControlLoadRunner;
using benchutil::StubDevice;

uint64_t g_ops_per_device = 200;

// Open-loop mean inter-arrival per device: ~70% of the unbatched per-device
// service rate at 16 devices, so queues form but stay stable.
constexpr sim::Duration kOpenLoopInterarrival = sim::Duration::Micros(25);

void RunDecentralized(benchmark::State& state, size_t devices, bool batched,
                      sim::Duration interarrival) {
  for (auto _ : state) {
    core::Machine machine;
    auto& memctrl = machine.AddMemoryController();
    std::vector<StubDevice*> stubs;
    for (size_t i = 0; i < devices; ++i) {
      stubs.push_back(&machine.Emplace<StubDevice>("dev" + std::to_string(i)));
    }
    machine.Boot();

    std::vector<std::unique_ptr<core::BusControlClient>> clients;
    std::vector<std::unique_ptr<core::MagazineClient>> magazines;
    std::vector<ControlLoadRunner::PerClient> per_client;
    for (size_t i = 0; i < devices; ++i) {
      clients.push_back(std::make_unique<core::BusControlClient>(stubs[i], memctrl.id()));
      core::ControlClient* client = clients.back().get();
      if (batched) {
        core::MagazineConfig magazine;
        magazine.enabled = true;
        magazines.push_back(std::make_unique<core::MagazineClient>(client, magazine, stubs[i],
                                                                   memctrl.id()));
        client = magazines.back().get();
      }
      per_client.push_back({client, Pasid(static_cast<uint32_t>(i + 1))});
    }
    // Snapshot/delta isolates the measured phase from boot traffic.
    sim::StatsSnapshot before = machine.bus().stats().Snapshot();
    sim::SimTime start = machine.simulator().Now();
    ControlLoadRunner::Options options;
    options.ops_each = g_ops_per_device;
    options.mean_interarrival = interarrival;
    ControlLoadRunner runner(&machine.simulator(), std::move(per_client), options);
    runner.Run();
    sim::Duration elapsed = machine.simulator().Now() - start;
    sim::StatsSnapshot delta = machine.bus().stats().Snapshot().DeltaSince(before);
    state.SetIterationTime(elapsed.seconds());
    state.counters["ops_per_sec"] =
        static_cast<double>(runner.completed()) / elapsed.seconds();
    state.counters["bus_msgs_per_op"] = static_cast<double>(delta.counters["messages_delivered"]) /
                                        static_cast<double>(runner.completed());
    if (batched) {
      uint64_t hits = 0;
      uint64_t misses = 0;
      for (const auto& magazine : magazines) {
        hits += magazine->hits();
        misses += magazine->misses();
      }
      state.counters["magazine_hit_rate"] =
          static_cast<double>(hits) / static_cast<double>(hits + misses);
      // Return leased regions before the magazines die, so the run ends with
      // a clean allocation table (and the drain traffic is accounted).
      for (const auto& magazine : magazines) {
        magazine->FlushSync();
      }
    }
    benchutil::ReportLatency(state, runner.latency());
  }
  state.counters["devices"] = static_cast<double>(devices);
  state.counters["design"] = 0;
  state.counters["batched"] = batched ? 1 : 0;
  state.counters["open_loop"] = interarrival > sim::Duration::Zero() ? 1 : 0;
}

void ControlPlane_Decentralized(benchmark::State& state) {
  RunDecentralized(state, static_cast<size_t>(state.range(0)), /*batched=*/false,
                   sim::Duration::Zero());
}

void ControlPlane_DecentralizedBatched(benchmark::State& state) {
  RunDecentralized(state, static_cast<size_t>(state.range(0)), /*batched=*/true,
                   sim::Duration::Zero());
}

void ControlPlane_DecentralizedOpenLoop(benchmark::State& state) {
  RunDecentralized(state, static_cast<size_t>(state.range(0)), /*batched=*/false,
                   kOpenLoopInterarrival);
}

void ControlPlane_DecentralizedBatchedOpenLoop(benchmark::State& state) {
  RunDecentralized(state, static_cast<size_t>(state.range(0)), /*batched=*/true,
                   kOpenLoopInterarrival);
}

void RunCentralized(benchmark::State& state, size_t devices, uint32_t cores, bool batched) {
  for (auto _ : state) {
    sim::Simulator simulator;
    mem::PhysicalMemory memory(256 << 20);
    baseline::CentralKernelConfig config;
    config.cores = cores;
    baseline::CentralKernel kernel(&simulator, &memory, config);
    std::vector<std::unique_ptr<iommu::Iommu>> iommus;
    std::vector<std::unique_ptr<core::KernelControlClient>> clients;
    std::vector<std::unique_ptr<core::MagazineClient>> magazines;
    std::vector<ControlLoadRunner::PerClient> per_client;
    for (size_t i = 0; i < devices; ++i) {
      DeviceId id(static_cast<uint32_t>(i + 1));
      iommus.push_back(std::make_unique<iommu::Iommu>(id));
      kernel.RegisterDevice(id, iommus.back().get());
      clients.push_back(std::make_unique<core::KernelControlClient>(&kernel, id));
      core::ControlClient* client = clients.back().get();
      if (batched) {
        // No host device in the kernel rig: the magazine refills through
        // lease_batch syscalls (one interrupt for N mappings), which is what
        // keeps the batched comparison fair across designs.
        core::MagazineConfig magazine;
        magazine.enabled = true;
        magazines.push_back(std::make_unique<core::MagazineClient>(client, magazine));
        client = magazines.back().get();
      }
      per_client.push_back({client, Pasid(static_cast<uint32_t>(i + 1))});
    }
    sim::StatsSnapshot before = kernel.stats().Snapshot();
    sim::SimTime start = simulator.Now();
    ControlLoadRunner runner(&simulator, std::move(per_client), g_ops_per_device);
    runner.Run();
    sim::Duration elapsed = simulator.Now() - start;
    sim::StatsSnapshot delta = kernel.stats().Snapshot().DeltaSince(before);
    state.SetIterationTime(elapsed.seconds());
    state.counters["ops_per_sec"] =
        static_cast<double>(runner.completed()) / elapsed.seconds();
    state.counters["queue_wait_p99_us"] =
        static_cast<double>(delta.histograms["queue_wait"].p99()) / 1e3;
    if (batched) {
      uint64_t hits = 0;
      uint64_t misses = 0;
      for (const auto& magazine : magazines) {
        hits += magazine->hits();
        misses += magazine->misses();
      }
      state.counters["magazine_hit_rate"] =
          static_cast<double>(hits) / static_cast<double>(hits + misses);
      for (const auto& magazine : magazines) {
        magazine->FlushSync();
      }
    }
    benchutil::ReportLatency(state, runner.latency());
  }
  state.counters["devices"] = static_cast<double>(devices);
  state.counters["cores"] = static_cast<double>(cores);
  state.counters["design"] = 1;
  state.counters["batched"] = batched ? 1 : 0;
}

void ControlPlane_Centralized(benchmark::State& state) {
  RunCentralized(state, static_cast<size_t>(state.range(0)),
                 static_cast<uint32_t>(state.range(1)), /*batched=*/false);
}

void ControlPlane_CentralizedBatched(benchmark::State& state) {
  RunCentralized(state, static_cast<size_t>(state.range(0)),
                 static_cast<uint32_t>(state.range(1)), /*batched=*/true);
}

BENCHMARK(ControlPlane_Decentralized)
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16);

BENCHMARK(ControlPlane_DecentralizedBatched)
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16);

BENCHMARK(ControlPlane_DecentralizedOpenLoop)
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond)
    ->Arg(4)
    ->Arg(16);

BENCHMARK(ControlPlane_DecentralizedBatchedOpenLoop)
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond)
    ->Arg(4)
    ->Arg(16);

BENCHMARK(ControlPlane_Centralized)
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({16, 1})
    ->Args({16, 4});

BENCHMARK(ControlPlane_CentralizedBatched)
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond)
    ->Args({1, 1})
    ->Args({16, 1})
    ->Args({16, 4});

}  // namespace
}  // namespace lastcpu

// Custom main so CI can pass `--quick` (not a google-benchmark flag): strips
// it from argv and shrinks the per-device op count for smoke runs.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      lastcpu::g_ops_per_device = 40;
      for (int j = i; j + 1 < argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --argc;
      break;
    }
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
