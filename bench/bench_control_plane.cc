// E2: control-plane operation throughput and latency under contention.
//
// N devices each run a closed loop of (alloc 16 KiB -> free) operations.
// Decentralized: requests ride the bus to the memory controller; mappings are
// programmed by the bus's table engine. Centralized: every operation is an
// interrupt + syscall on a CPU with a fixed core count.
//
// Expected shape (paper claim: "control tasks ... can be handled in other
// hardware"): at 1 device the centralized kernel is competitive; as devices
// grow, the kernel's run queue serializes while the decentralized path's
// specialized hardware pipeline keeps per-op latency near-flat until the
// memory controller's firmware saturates.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace lastcpu {
namespace {

using benchutil::ControlLoadRunner;
using benchutil::StubDevice;

constexpr uint64_t kOpsPerDevice = 200;

void ControlPlane_Decentralized(benchmark::State& state) {
  auto devices = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    core::Machine machine;
    auto& memctrl = machine.AddMemoryController();
    std::vector<StubDevice*> stubs;
    for (size_t i = 0; i < devices; ++i) {
      stubs.push_back(&machine.Emplace<StubDevice>("dev" + std::to_string(i)));
    }
    machine.Boot();

    std::vector<std::unique_ptr<core::BusControlClient>> clients;
    std::vector<ControlLoadRunner::PerClient> per_client;
    for (size_t i = 0; i < devices; ++i) {
      clients.push_back(std::make_unique<core::BusControlClient>(stubs[i], memctrl.id()));
      per_client.push_back({clients.back().get(), Pasid(static_cast<uint32_t>(i + 1))});
    }
    // Snapshot/delta isolates the measured phase from boot traffic.
    sim::StatsSnapshot before = machine.bus().stats().Snapshot();
    sim::SimTime start = machine.simulator().Now();
    ControlLoadRunner runner(&machine.simulator(), std::move(per_client), kOpsPerDevice);
    runner.Run();
    sim::Duration elapsed = machine.simulator().Now() - start;
    sim::StatsSnapshot delta = machine.bus().stats().Snapshot().DeltaSince(before);
    state.SetIterationTime(elapsed.seconds());
    state.counters["ops_per_sec"] =
        static_cast<double>(runner.completed()) / elapsed.seconds();
    state.counters["bus_msgs_per_op"] = static_cast<double>(delta.counters["messages_delivered"]) /
                                        static_cast<double>(runner.completed());
    benchutil::ReportLatency(state, runner.latency());
  }
  state.counters["devices"] = static_cast<double>(devices);
  state.counters["design"] = 0;
}

void ControlPlane_Centralized(benchmark::State& state) {
  auto devices = static_cast<size_t>(state.range(0));
  auto cores = static_cast<uint32_t>(state.range(1));
  for (auto _ : state) {
    sim::Simulator simulator;
    mem::PhysicalMemory memory(256 << 20);
    baseline::CentralKernelConfig config;
    config.cores = cores;
    baseline::CentralKernel kernel(&simulator, &memory, config);
    std::vector<std::unique_ptr<iommu::Iommu>> iommus;
    std::vector<std::unique_ptr<core::KernelControlClient>> clients;
    std::vector<ControlLoadRunner::PerClient> per_client;
    for (size_t i = 0; i < devices; ++i) {
      DeviceId id(static_cast<uint32_t>(i + 1));
      iommus.push_back(std::make_unique<iommu::Iommu>(id));
      kernel.RegisterDevice(id, iommus.back().get());
      clients.push_back(std::make_unique<core::KernelControlClient>(&kernel, id));
      per_client.push_back({clients.back().get(), Pasid(static_cast<uint32_t>(i + 1))});
    }
    sim::StatsSnapshot before = kernel.stats().Snapshot();
    sim::SimTime start = simulator.Now();
    ControlLoadRunner runner(&simulator, std::move(per_client), kOpsPerDevice);
    runner.Run();
    sim::Duration elapsed = simulator.Now() - start;
    sim::StatsSnapshot delta = kernel.stats().Snapshot().DeltaSince(before);
    state.SetIterationTime(elapsed.seconds());
    state.counters["ops_per_sec"] =
        static_cast<double>(runner.completed()) / elapsed.seconds();
    state.counters["queue_wait_p99_us"] =
        static_cast<double>(delta.histograms["queue_wait"].p99()) / 1e3;
    benchutil::ReportLatency(state, runner.latency());
  }
  state.counters["devices"] = static_cast<double>(devices);
  state.counters["cores"] = static_cast<double>(cores);
  state.counters["design"] = 1;
}

BENCHMARK(ControlPlane_Decentralized)
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16);

BENCHMARK(ControlPlane_Centralized)
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({16, 1})
    ->Args({16, 4});

}  // namespace
}  // namespace lastcpu

BENCHMARK_MAIN();
