// E4: the Section-3 KVS application end to end.
//
// Sweeps value size and GET fraction, decentralized vs CPU-mediated. In the
// CPU-mediated variant every network request must be dispatched by the
// kernel before the NIC's engine may process it (the traditional
// kernel-owned network stack); the data path below is identical, which is
// exactly the paper's point — once the data plane is device-to-device, the
// CPU only adds a toll booth.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace lastcpu {
namespace {

using benchutil::KvsRig;

constexpr uint64_t kKeys = 500;
constexpr uint64_t kOpsPerClient = 1200;
constexpr int kClients = 8;
constexpr uint32_t kConcurrency = 16;
// Kernel network-stack work per packet direction in the mediated design
// (interrupt handling, skb processing, socket wakeup — classic numbers).
constexpr sim::Duration kStackWork = sim::Duration::Micros(8);

// Wraps the KVS app so every request first pays a kernel mediation.
class MediatedKvsApp : public nicdev::AppEngine {
 public:
  MediatedKvsApp(std::unique_ptr<kvs::KvsApp> inner, baseline::CentralKernel* kernel)
      : inner_(std::move(inner)), kernel_(kernel) {}

  void Start(std::function<void(Status)> done) override { inner_->Start(std::move(done)); }

  void HandleRequest(std::vector<uint8_t> payload,
                     std::function<void(std::vector<uint8_t>)> respond) override {
    kernel_->MediateIo(kStackWork,
                       [this, payload = std::move(payload),
                        respond = std::move(respond)]() mutable {
                         inner_->HandleRequest(std::move(payload),
                                               [this, respond = std::move(respond)](
                                                   std::vector<uint8_t> response) mutable {
                                                 // Completion also interrupts the CPU.
                                                 kernel_->MediateIo(
                                                     kStackWork,
                                                     [respond = std::move(respond),
                                                      response = std::move(response)]() mutable {
                                                       respond(std::move(response));
                                                     });
                                               });
                       });
  }

  bool HandleDoorbell(DeviceId from, uint64_t value) override {
    return inner_->HandleDoorbell(from, value);
  }
  void OnPeerFailed(DeviceId device) override { inner_->OnPeerFailed(device); }

  kvs::KvsApp* inner() { return inner_.get(); }

 private:
  std::unique_ptr<kvs::KvsApp> inner_;
  baseline::CentralKernel* kernel_;
};

void RunWorkload(benchmark::State& state, core::Machine& machine, nicdev::SmartNic& nic,
                 kvs::KvsApp& app, uint32_t value_bytes, double get_fraction) {
  // Preload.
  for (uint64_t i = 0; i < kKeys; ++i) {
    app.engine().Put(kvs::WorkloadGenerator::KeyFor(i),
                     std::vector<uint8_t>(value_bytes, static_cast<uint8_t>(i)),
                     [](Status s) { LASTCPU_CHECK(s.ok(), "preload failed"); });
    machine.RunUntilIdle();
  }
  std::vector<std::unique_ptr<kvs::LoadClient>> clients;
  int finished = 0;
  sim::SimTime start = machine.simulator().Now();
  for (int c = 0; c < kClients; ++c) {
    kvs::WorkloadConfig workload;
    workload.num_keys = kKeys;
    workload.get_fraction = get_fraction;
    workload.value_bytes = value_bytes;
    workload.seed = static_cast<uint64_t>(c) + 1;
    clients.push_back(std::make_unique<kvs::LoadClient>(
        &machine.simulator(), &machine.network(), nic.endpoint(), workload, kConcurrency));
    clients.back()->Start(kOpsPerClient, [&finished] { ++finished; });
  }
  machine.RunUntilIdle();
  LASTCPU_CHECK(finished == kClients, "workload never finished");
  sim::Duration elapsed = machine.simulator().Now() - start;
  state.SetIterationTime(elapsed.seconds());
  uint64_t completed = 0;
  uint64_t errors = 0;
  sim::Histogram latency;
  sim::Histogram get_latency;
  sim::Histogram put_latency;
  for (const auto& client : clients) {
    completed += client->completed();
    errors += client->errors();
    latency.Merge(client->latency());
    get_latency.Merge(client->get_latency());
    put_latency.Merge(client->put_latency());
  }
  state.counters["ops_per_sec"] = static_cast<double>(completed) / elapsed.seconds();
  benchutil::ReportLatency(state, latency);
  state.counters["get_p99_us"] = static_cast<double>(get_latency.p99()) / 1e3;
  state.counters["put_p99_us"] = static_cast<double>(put_latency.p99()) / 1e3;
  state.counters["errors"] = static_cast<double>(errors);
}

void Kvs_Decentralized(benchmark::State& state) {
  auto value_bytes = static_cast<uint32_t>(state.range(0));
  double get_fraction = static_cast<double>(state.range(1)) / 100.0;
  for (auto _ : state) {
    KvsRig rig = KvsRig::Build();
    RunWorkload(state, *rig.machine, *rig.nic, *rig.app, value_bytes, get_fraction);
  }
  state.counters["value_bytes"] = static_cast<double>(value_bytes);
  state.counters["design"] = 0;
}

void Kvs_CpuMediated(benchmark::State& state) {
  auto value_bytes = static_cast<uint32_t>(state.range(0));
  double get_fraction = static_cast<double>(state.range(1)) / 100.0;
  for (auto _ : state) {
    // Same machine, plus a 1-core kernel that must bless every request.
    auto machine = std::make_unique<core::Machine>();
    machine->AddMemoryController();
    ssddev::SmartSsdConfig ssd_config;
    ssd_config.host_auth_service = false;
    auto& ssd = machine->AddSmartSsd(ssd_config);
    auto& nic = machine->AddSmartNic();
    ssd.ProvisionFile("kv.log", {});
    Pasid pasid = machine->NewApplication("kvs");
    baseline::CentralKernel kernel(&machine->simulator(), &machine->memory());

    auto inner = std::make_unique<kvs::KvsApp>(&nic, pasid);
    auto mediated = std::make_unique<MediatedKvsApp>(std::move(inner), &kernel);
    MediatedKvsApp* app = mediated.get();
    nic.LoadApp(std::move(mediated));
    machine->Boot();
    RunWorkload(state, *machine, nic, *app->inner(), value_bytes, get_fraction);
  }
  state.counters["value_bytes"] = static_cast<double>(value_bytes);
  state.counters["design"] = 1;
}

// Value-size sweep at YCSB-B-like 95% GET.
BENCHMARK(Kvs_Decentralized)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->Args({64, 95})
    ->Args({256, 95})
    ->Args({1024, 95})
    ->Args({2048, 95})
    // Mix sweep at 256-byte values: YCSB-C (100% GET), B (95%), A (50%).
    ->Args({256, 100})
    ->Args({256, 50});

BENCHMARK(Kvs_CpuMediated)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->Args({64, 95})
    ->Args({256, 95})
    ->Args({1024, 95})
    ->Args({2048, 95})
    ->Args({256, 100})
    ->Args({256, 50});

}  // namespace
}  // namespace lastcpu

BENCHMARK_MAIN();
