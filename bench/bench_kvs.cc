// E4: the Section-3 KVS application end to end.
//
// Sweeps value size and GET fraction, decentralized vs CPU-mediated. In the
// CPU-mediated variant every network request must be dispatched by the
// kernel before the NIC's engine may process it (the traditional
// kernel-owned network stack); the data path below is identical, which is
// exactly the paper's point — once the data plane is device-to-device, the
// CPU only adds a toll booth.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace lastcpu {
namespace {

using benchutil::KvsRig;

constexpr uint64_t kKeys = 500;
constexpr uint64_t kOpsPerClient = 1200;
constexpr int kClients = 8;
constexpr uint32_t kConcurrency = 16;
// Kernel network-stack work per packet direction in the mediated design
// (interrupt handling, skb processing, socket wakeup — classic numbers).
constexpr sim::Duration kStackWork = sim::Duration::Micros(8);

// Wraps the KVS app so every request first pays a kernel mediation.
class MediatedKvsApp : public nicdev::AppEngine {
 public:
  MediatedKvsApp(std::unique_ptr<kvs::KvsApp> inner, baseline::CentralKernel* kernel)
      : inner_(std::move(inner)), kernel_(kernel) {}

  void Start(std::function<void(Status)> done) override { inner_->Start(std::move(done)); }

  void HandleRequest(std::vector<uint8_t> payload,
                     std::function<void(std::vector<uint8_t>)> respond) override {
    kernel_->MediateIo(kStackWork,
                       [this, payload = std::move(payload),
                        respond = std::move(respond)]() mutable {
                         inner_->HandleRequest(std::move(payload),
                                               [this, respond = std::move(respond)](
                                                   std::vector<uint8_t> response) mutable {
                                                 // Completion also interrupts the CPU.
                                                 kernel_->MediateIo(
                                                     kStackWork,
                                                     [respond = std::move(respond),
                                                      response = std::move(response)]() mutable {
                                                       respond(std::move(response));
                                                     });
                                               });
                       });
  }

  bool HandleDoorbell(DeviceId from, uint64_t value) override {
    return inner_->HandleDoorbell(from, value);
  }
  void OnPeerFailed(DeviceId device) override { inner_->OnPeerFailed(device); }

  kvs::KvsApp* inner() { return inner_.get(); }

 private:
  std::unique_ptr<kvs::KvsApp> inner_;
  baseline::CentralKernel* kernel_;
};

void RunWorkload(benchmark::State& state, core::Machine& machine, nicdev::SmartNic& nic,
                 kvs::KvsApp& app, uint32_t value_bytes, double get_fraction) {
  // Preload.
  for (uint64_t i = 0; i < kKeys; ++i) {
    app.engine().Put(kvs::WorkloadGenerator::KeyFor(i),
                     std::vector<uint8_t>(value_bytes, static_cast<uint8_t>(i)),
                     [](Status s) { LASTCPU_CHECK(s.ok(), "preload failed"); });
    machine.RunUntilIdle();
  }
  std::vector<std::unique_ptr<kvs::LoadClient>> clients;
  int finished = 0;
  sim::SimTime start = machine.simulator().Now();
  for (int c = 0; c < kClients; ++c) {
    kvs::WorkloadConfig workload;
    workload.num_keys = kKeys;
    workload.get_fraction = get_fraction;
    workload.value_bytes = value_bytes;
    workload.seed = static_cast<uint64_t>(c) + 1;
    clients.push_back(std::make_unique<kvs::LoadClient>(
        &machine.simulator(), &machine.network(), nic.endpoint(), workload, kConcurrency));
    clients.back()->Start(kOpsPerClient, [&finished] { ++finished; });
  }
  machine.RunUntilIdle();
  LASTCPU_CHECK(finished == kClients, "workload never finished");
  sim::Duration elapsed = machine.simulator().Now() - start;
  state.SetIterationTime(elapsed.seconds());
  uint64_t completed = 0;
  uint64_t errors = 0;
  sim::Histogram latency;
  sim::Histogram get_latency;
  sim::Histogram put_latency;
  for (const auto& client : clients) {
    completed += client->completed();
    errors += client->errors();
    latency.Merge(client->latency());
    get_latency.Merge(client->get_latency());
    put_latency.Merge(client->put_latency());
  }
  state.counters["ops_per_sec"] = static_cast<double>(completed) / elapsed.seconds();
  benchutil::ReportLatency(state, latency);
  state.counters["get_p99_us"] = static_cast<double>(get_latency.p99()) / 1e3;
  state.counters["put_p99_us"] = static_cast<double>(put_latency.p99()) / 1e3;
  state.counters["errors"] = static_cast<double>(errors);
}

void Kvs_Decentralized(benchmark::State& state) {
  auto value_bytes = static_cast<uint32_t>(state.range(0));
  double get_fraction = static_cast<double>(state.range(1)) / 100.0;
  for (auto _ : state) {
    KvsRig rig = KvsRig::Build();
    RunWorkload(state, *rig.machine, *rig.nic, *rig.app, value_bytes, get_fraction);
  }
  state.counters["value_bytes"] = static_cast<double>(value_bytes);
  state.counters["design"] = 0;
}

void Kvs_CpuMediated(benchmark::State& state) {
  auto value_bytes = static_cast<uint32_t>(state.range(0));
  double get_fraction = static_cast<double>(state.range(1)) / 100.0;
  for (auto _ : state) {
    // Same machine, plus a 1-core kernel that must bless every request.
    auto machine = std::make_unique<core::Machine>();
    machine->AddMemoryController();
    ssddev::SmartSsdConfig ssd_config;
    ssd_config.host_auth_service = false;
    auto& ssd = machine->AddSmartSsd(ssd_config);
    auto& nic = machine->AddSmartNic();
    ssd.ProvisionFile("kv.log", {});
    Pasid pasid = machine->NewApplication("kvs");
    baseline::CentralKernel kernel(&machine->simulator(), &machine->memory());

    auto inner = std::make_unique<kvs::KvsApp>(&nic, pasid);
    auto mediated = std::make_unique<MediatedKvsApp>(std::move(inner), &kernel);
    MediatedKvsApp* app = mediated.get();
    nic.LoadApp(std::move(mediated));
    machine->Boot();
    RunWorkload(state, *machine, nic, *app->inner(), value_bytes, get_fraction);
  }
  state.counters["value_bytes"] = static_cast<double>(value_bytes);
  state.counters["design"] = 1;
}

// --- E9: KVS under FTL garbage collection ----------------------------------
//
// Sustained overwrites of a small key set, with log compaction enabled so
// dead log generations are trimmed and the FTL has garbage to collect. Two
// device shapes run the identical workload:
//  * gc-idle: the default NAND array (64 MiB) — the working set never fills
//    the device, so garbage collection stays asleep. This is the baseline.
//  * gc-active: a 2 MiB NAND array — the overwrite stream writes several
//    multiples of raw capacity, so the run reaches steady state with GC
//    relocating pages concurrently with host traffic.
// Reported per series: throughput, PUT p99, steady-state write amplification,
// GC runs, and write stalls (host writes parked while GC frees a block).

constexpr uint64_t kGcKeys = 32;
constexpr uint32_t kGcValueBytes = 1024;
constexpr int kGcClients = 4;
constexpr uint32_t kGcConcurrency = 8;
// Overridable from main() for `--gc-smoke` (CI) runs.
uint64_t g_gc_ops_per_client = 1500;

struct GcResult {
  double sim_seconds = 0;
  uint64_t completed = 0;
  uint64_t errors = 0;
  uint64_t put_p99_ns = 0;
  double waf = 0;
  uint64_t gc_runs = 0;
  uint64_t gc_relocated_pages = 0;
  uint64_t write_stalls = 0;
  double ops_per_sec() const { return static_cast<double>(completed) / sim_seconds; }
};

GcResult RunGcWorkload(bool gc_active, uint64_t ops_per_client) {
  ssddev::SmartSsdConfig ssd_config;
  ssd_config.host_auth_service = false;
  if (gc_active) {
    // 2 dies x 16 blocks x 16 pages x 4 KiB = 2 MiB raw. The workload below
    // writes several multiples of that, forcing steady-state GC.
    ssd_config.nand.dies = 2;
    ssd_config.nand.blocks_per_die = 16;
    ssd_config.nand.pages_per_block = 16;
  }
  kvs::KvsAppConfig app_config;
  // Roll the log once half of it is dead so trimmed generations hand the FTL
  // invalid pages to reclaim; without compaction the log only ever grows and
  // GC would have nothing to free.
  app_config.engine.compact_garbage_ratio = 0.5;
  app_config.engine.min_compact_bytes = 128 << 10;
  KvsRig rig = KvsRig::Build(core::MachineConfig{}, app_config, ssd_config);
  rig.Preload(kGcKeys, kGcValueBytes);

  std::vector<std::unique_ptr<kvs::LoadClient>> clients;
  int finished = 0;
  sim::SimTime start = rig.machine->simulator().Now();
  for (int c = 0; c < kGcClients; ++c) {
    kvs::WorkloadConfig workload;
    workload.num_keys = kGcKeys;
    workload.get_fraction = 0.1;  // 90% PUT: a sustained overwrite stream
    workload.value_bytes = kGcValueBytes;
    workload.seed = static_cast<uint64_t>(c) + 1;
    clients.push_back(std::make_unique<kvs::LoadClient>(
        &rig.machine->simulator(), &rig.machine->network(), rig.nic->endpoint(), workload,
        kGcConcurrency));
    clients.back()->Start(ops_per_client, [&finished] { ++finished; });
  }
  rig.machine->RunUntilIdle();
  LASTCPU_CHECK(finished == kGcClients, "gc workload never finished");

  GcResult out;
  out.sim_seconds = (rig.machine->simulator().Now() - start).seconds();
  sim::Histogram put_latency;
  for (const auto& client : clients) {
    out.completed += client->completed();
    out.errors += client->errors();
    put_latency.Merge(client->put_latency());
  }
  out.put_p99_ns = put_latency.p99();
  const ssddev::Ftl& ftl = rig.ssd->ftl();
  out.waf = ftl.WriteAmplification();
  out.gc_runs = ftl.gc_runs();
  out.gc_relocated_pages = ftl.gc_relocated_pages();
  out.write_stalls = ftl.write_stalls();
  return out;
}

void Kvs_SustainedOverwrite(benchmark::State& state) {
  bool gc_active = state.range(0) == 1;
  for (auto _ : state) {
    GcResult r = RunGcWorkload(gc_active, g_gc_ops_per_client);
    state.SetIterationTime(r.sim_seconds);
    state.counters["ops_per_sec"] = r.ops_per_sec();
    state.counters["put_p99_us"] = static_cast<double>(r.put_p99_ns) / 1e3;
    state.counters["waf"] = r.waf;
    state.counters["gc_runs"] = static_cast<double>(r.gc_runs);
    state.counters["gc_relocated_pages"] = static_cast<double>(r.gc_relocated_pages);
    state.counters["write_stalls"] = static_cast<double>(r.write_stalls);
    state.counters["errors"] = static_cast<double>(r.errors);
  }
  state.counters["gc_active"] = gc_active ? 1 : 0;
}

BENCHMARK(Kvs_SustainedOverwrite)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->Arg(0)   // gc-idle baseline (64 MiB array, GC never wakes)
    ->Arg(1);  // gc-active (2 MiB array, steady-state GC)

// Value-size sweep at YCSB-B-like 95% GET.
BENCHMARK(Kvs_Decentralized)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->Args({64, 95})
    ->Args({256, 95})
    ->Args({1024, 95})
    ->Args({2048, 95})
    // Mix sweep at 256-byte values: YCSB-C (100% GET), B (95%), A (50%).
    ->Args({256, 100})
    ->Args({256, 50});

BENCHMARK(Kvs_CpuMediated)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->Args({64, 95})
    ->Args({256, 95})
    ->Args({1024, 95})
    ->Args({2048, 95})
    ->Args({256, 100})
    ->Args({256, 50});

}  // namespace

// CI bench-smoke: run the sustained-overwrite series once per device shape
// at reduced op count and fail the build when GC-active throughput collapses
// below `floor` x the GC-idle baseline, when GC never engaged (the regression
// the floor exists to guard), or when any op errored.
int RunGcSmoke(double floor) {
  g_gc_ops_per_client = 250;
  GcResult idle = RunGcWorkload(/*gc_active=*/false, g_gc_ops_per_client);
  GcResult active = RunGcWorkload(/*gc_active=*/true, g_gc_ops_per_client);
  std::printf("gc-idle:   %8.0f ops/s  put_p99 %6.1f us  waf %.2f  gc_runs %llu  stalls %llu\n",
              idle.ops_per_sec(), static_cast<double>(idle.put_p99_ns) / 1e3, idle.waf,
              static_cast<unsigned long long>(idle.gc_runs),
              static_cast<unsigned long long>(idle.write_stalls));
  std::printf("gc-active: %8.0f ops/s  put_p99 %6.1f us  waf %.2f  gc_runs %llu  stalls %llu\n",
              active.ops_per_sec(), static_cast<double>(active.put_p99_ns) / 1e3, active.waf,
              static_cast<unsigned long long>(active.gc_runs),
              static_cast<unsigned long long>(active.write_stalls));
  bool ok = true;
  if (idle.errors != 0 || active.errors != 0) {
    std::printf("FAIL: ops errored (idle=%llu active=%llu)\n",
                static_cast<unsigned long long>(idle.errors),
                static_cast<unsigned long long>(active.errors));
    ok = false;
  }
  if (active.gc_runs == 0 || active.waf <= 1.0) {
    std::printf("FAIL: GC never engaged on the small array (gc_runs=%llu waf=%.2f)\n",
                static_cast<unsigned long long>(active.gc_runs), active.waf);
    ok = false;
  }
  double ratio = active.ops_per_sec() / idle.ops_per_sec();
  if (ratio < floor) {
    std::printf("FAIL: GC-active throughput %.2fx of idle, below floor %.2f\n", ratio, floor);
    ok = false;
  } else {
    std::printf("gc-active throughput is %.2fx of gc-idle (floor %.2f)\n", ratio, floor);
  }
  return ok ? 0 : 1;
}

}  // namespace lastcpu

// Custom main so CI can run `--gc-smoke [--gc-floor=F]` (not google-benchmark
// flags): the smoke path skips benchmark registration entirely and exits
// non-zero when the GC floor check fails.
int main(int argc, char** argv) {
  bool gc_smoke = false;
  double gc_floor = 0.25;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gc-smoke") == 0) {
      gc_smoke = true;
    } else if (std::strncmp(argv[i], "--gc-floor=", 11) == 0) {
      gc_floor = std::stod(std::string(argv[i] + 11));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (gc_smoke) {
    return lastcpu::RunGcSmoke(gc_floor);
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
