// E-fault: recovery latency under a faulty interconnect (paper Sec. 4/5).
//
// The paper's open question is whether a machine with no CPU to clean up
// after it stays viable when things go wrong. This experiment kills the
// smart SSD in the middle of a live KVS workload — on a clean wire and on a
// lossy one (drops, delays, duplicates, reorders injected seed-
// deterministically by the FaultPlan) — and measures the time from the kill
// to full application recovery (session re-open, log re-scan, first
// successful GET). The centralized comparator pays kernel mediation for the
// failure fan-out and re-initialization, with the same per-message loss
// probability forcing timeout-priced retries on its mediated hops.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/central_kernel.h"
#include "src/memdev/shard_layout.h"
#include "src/sim/fault.h"

namespace lastcpu {
namespace {

using benchutil::KvsRig;
using benchutil::StubDevice;

// Steps the simulator until `predicate` holds; returns false on queue-drain.
bool StepUntil(sim::Simulator& simulator, const std::function<bool()>& predicate) {
  while (!predicate()) {
    if (!simulator.Step()) {
      return predicate();
    }
  }
  return true;
}

// The lossy-wire profile shared by both designs: mild but real impairment.
sim::FaultPlan LossyPlan() {
  sim::FaultPlan plan;
  plan.drop_probability = 0.01;
  plan.delay_probability = 0.05;
  plan.duplicate_probability = 0.01;
  plan.reorder_probability = 0.01;
  return plan;
}

// Kills the SSD mid-workload and measures time to first successful GET after
// recovery. state.range(0) selects the wire: 0 = clean, 1 = lossy plan.
void FaultRecovery_Decentralized(benchmark::State& state) {
  const bool lossy = state.range(0) != 0;
  uint64_t seed = LossyPlan().seed;
  for (auto _ : state) {
    core::MachineConfig machine_config;
    kvs::KvsAppConfig app_config;
    if (lossy) {
      machine_config.fault_plan = LossyPlan();
      machine_config.fault_plan.seed = seed++;  // fresh draw sequence per run
      // Doorbells may be dropped on a lossy wire; the poll backstop keeps
      // the data plane live (see FileClientConfig::completion_poll).
      app_config.engine.file_client.completion_poll = sim::Duration::Micros(200);
    }
    KvsRig rig = KvsRig::Build(machine_config, app_config);
    rig.Preload(50, 128);

    // Keep a workload in flight so the kill lands mid-exchange.
    int issued = 0;
    int settled = 0;
    for (uint64_t i = 0; i < 8; ++i) {
      ++issued;
      rig.app->engine().Get(kvs::WorkloadGenerator::KeyFor(i),
                            [&](Result<std::vector<uint8_t>>) { ++settled; });
    }
    for (int i = 0; i < 50; ++i) {
      rig.machine->simulator().Step();  // a few deliveries, then the axe falls
    }

    sim::SimTime start = rig.machine->simulator().Now();
    rig.ssd->InjectFailure();
    rig.machine->bus().ReportDeviceFailure(rig.ssd->id());
    bool stopped = StepUntil(rig.machine->simulator(),
                             [&] { return !rig.app->engine().running(); });
    LASTCPU_CHECK(stopped, "NIC never learned of the failure");
    sim::SimTime notified = rig.machine->simulator().Now();
    bool recovered = StepUntil(rig.machine->simulator(),
                               [&] { return rig.app->engine().running(); });
    LASTCPU_CHECK(recovered, "app never recovered");

    bool got = false;
    rig.app->engine().Get(kvs::WorkloadGenerator::KeyFor(7),
                          [&](Result<std::vector<uint8_t>> r) { got = r.ok(); });
    rig.machine->RunUntilIdle();
    LASTCPU_CHECK(got, "data lost across recovery");
    // The no-hangs invariant: every pre-kill request settled with a typed
    // status even though its provider died mid-exchange.
    LASTCPU_CHECK(settled == issued, "a request callback hung across the failure");

    state.SetIterationTime((rig.machine->simulator().Now() - start).seconds());
    state.counters["notify_us"] = (notified - start).seconds() * 1e6;
    state.counters["recoveries"] = static_cast<double>(rig.app->recoveries());
    if (rig.machine->fault_injector() != nullptr) {
      state.counters["faults"] =
          static_cast<double>(rig.machine->fault_injector()->dropped() +
                              rig.machine->fault_injector()->delayed() +
                              rig.machine->fault_injector()->duplicated() +
                              rig.machine->fault_injector()->reordered());
    }
  }
  state.counters["design"] = 0;
  state.counters["lossy"] = lossy ? 1 : 0;
}

// Centralized comparator: the kernel hears the failure interrupt, notifies
// `consumers` serially, then re-runs the mediated init sequence. On the
// lossy wire every mediated hop is lost with the same probability and costs
// a full 100us request timeout before the retry (there is no bus broadcast
// to amortize and no peer-to-peer retry path — the kernel is the wire).
void FaultRecovery_Centralized(benchmark::State& state) {
  const bool lossy = state.range(0) != 0;
  constexpr size_t kConsumers = 8;
  constexpr sim::Duration kRetryTimeout = sim::Duration::Micros(100);
  sim::Rng rng(LossyPlan().seed);
  const double drop = lossy ? LossyPlan().drop_probability : 0.0;
  for (auto _ : state) {
    sim::Simulator simulator;
    mem::PhysicalMemory memory(64 << 20);
    baseline::CentralKernel kernel(&simulator, &memory);
    iommu::Iommu nic_iommu(DeviceId(1));
    iommu::Iommu ssd_iommu(DeviceId(2));
    kernel.RegisterDevice(DeviceId(1), &nic_iommu);
    kernel.RegisterDevice(DeviceId(2), &ssd_iommu);

    constexpr sim::Duration kSelfTest = sim::Duration::Micros(50);
    constexpr sim::Duration kLogScan = sim::Duration::Micros(120);
    const uint64_t session_bytes = ssddev::SessionLayout::BytesRequired(64);

    // Each mediated hop pays the timeout once per loss before succeeding.
    auto hop_penalty = [&] {
      sim::Duration penalty = sim::Duration::Zero();
      while (rng.NextBool(drop)) {
        penalty = penalty + kRetryTimeout;
      }
      return penalty;
    };

    sim::SimTime start = simulator.Now();
    bool done = false;
    auto notify = std::make_shared<std::function<void(size_t)>>();
    *notify = [&, notify](size_t remaining) {
      if (remaining == 0) {
        simulator.Schedule(kSelfTest + hop_penalty(), [&] {
          kernel.MediateIo(sim::Duration::Nanos(600) + hop_penalty(), [&] {  // re-open
            kernel.AllocMemory(DeviceId(1), Pasid(1), session_bytes,
                               [&](Result<VirtAddr> vaddr) {
                                 kernel.Grant(DeviceId(1), Pasid(1), *vaddr, session_bytes,
                                              DeviceId(2), Access::kReadWrite, [&](Status) {
                                                simulator.Schedule(kLogScan,
                                                                   [&] { done = true; });
                                              });
                               });
          });
        });
        return;
      }
      kernel.MediateIo(sim::Duration::Nanos(700) + hop_penalty(),
                       [notify, remaining] { (*notify)(remaining - 1); });
    };
    kernel.MediateIo(sim::Duration::Micros(1), [notify] { (*notify)(kConsumers); });
    simulator.Run();
    LASTCPU_CHECK(done, "centralized recovery never completed");
    state.SetIterationTime((simulator.Now() - start).seconds());
  }
  state.counters["design"] = 1;
  state.counters["lossy"] = lossy ? 1 : 0;
  state.counters["consumers"] = static_cast<double>(kConsumers);
}

// Quarantine path: the SSD dies for good. Measures kill -> quarantine
// decision and kill -> the app learning retries are pointless, and checks
// that the memory controller reclaims everything the corpse owned or held.
// state.range(0) selects the failure shape: 0 = dead silicon (reset pulses
// go unanswered until the attempt budget runs out), 1 = crash loop (the
// device answers every reset but keeps dying; the sliding-window detector
// trips first).
void Quarantine_Decentralized(benchmark::State& state) {
  const bool crash_loop = state.range(0) != 0;
  for (auto _ : state) {
    core::MachineConfig machine_config;
    sim::CrashSpec kill;
    kill.device = 2;  // the SSD: memctrl/ssd/nic are added in that order
    kill.at = sim::Duration::Micros(15000);
    if (crash_loop) {
      machine_config.bus.restart_policy.max_restart_attempts = 10;
      machine_config.bus.restart_policy.crash_loop_threshold = 3;
      sim::CrashSpec again = kill;
      again.at = sim::Duration::Micros(15400);
      sim::CrashSpec third = kill;
      third.at = sim::Duration::Micros(15800);
      machine_config.crash_plan.crashes = {kill, again, third};
    } else {
      kill.respawn = sim::CrashSpec::Respawn::kNever;
      machine_config.crash_plan.crashes = {kill};
    }

    KvsRig rig = KvsRig::Build(machine_config, kvs::KvsAppConfig{});
    rig.Preload(20, 128);
    sim::Simulator& simulator = rig.machine->simulator();
    LASTCPU_CHECK(rig.machine->bus().IsAlive(rig.ssd->id()),
                  "preload ran past the scheduled kill");

    // Step to the first kill (a scheduled daemon), then through the whole
    // supervision episode: pulses, backoff, deadline timers, quarantine.
    bool killed =
        StepUntil(simulator, [&] { return !rig.machine->bus().IsAlive(rig.ssd->id()); });
    LASTCPU_CHECK(killed, "crash plan never fired");
    sim::SimTime killed_at = simulator.Now();

    const bus::DeviceSupervisor& supervisor = rig.machine->bus().supervisor();
    sim::SimTime give_up = killed_at + sim::Duration::Millis(50);
    StepUntil(simulator, [&] {
      return supervisor.IsQuarantined(rig.ssd->id()) || simulator.Now() >= give_up;
    });
    LASTCPU_CHECK(supervisor.IsQuarantined(rig.ssd->id()), "device never quarantined");
    sim::SimTime quarantined_at = simulator.Now();

    // The DevicePermanentlyFailed broadcast must reach the NIC and kill the
    // app's retry loop.
    StepUntil(simulator, [&] {
      return rig.app->provider_permanently_failed() || simulator.Now() >= give_up;
    });
    LASTCPU_CHECK(rig.app->provider_permanently_failed(), "app never learned of quarantine");
    sim::SimTime app_informed_at = simulator.Now();
    rig.machine->RunUntilIdle();

    // Reclamation: nothing left in the memory controller under the corpse's
    // name, and a post-quarantine Put settles immediately with an error
    // instead of hanging.
    LASTCPU_CHECK(rig.memctrl->AllocationsOwnedBy(rig.ssd->id()) == 0,
                  "quarantined device still owns allocations");
    LASTCPU_CHECK(rig.memctrl->GrantsHeldBy(rig.ssd->id()) == 0,
                  "quarantined device still holds grants");
    bool settled = false;
    bool failed = false;
    rig.app->engine().Put("post-quarantine", {1, 2, 3}, [&](Status s) {
      settled = true;
      failed = !s.ok();
    });
    rig.machine->RunUntilIdle();
    LASTCPU_CHECK(settled && failed, "post-quarantine put did not fast-fail");

    state.SetIterationTime((quarantined_at - killed_at).seconds());
    state.counters["app_notified_us"] = (app_informed_at - killed_at).seconds() * 1e6;
    state.counters["restart_pulses"] = static_cast<double>(
        rig.machine->bus().stats().GetCounter("supervisor_restarts").value());
    state.counters["reclaimed_grants"] = static_cast<double>(
        rig.memctrl->stats().GetCounter("stranded_grants_reclaimed").value());
  }
  state.counters["design"] = 0;
  state.counters["crash_loop"] = crash_loop ? 1 : 0;
}

// Centralized comparator: the same supervision policy runs as kernel
// software, so every pulse, deadline, and the final quarantine+reclaim each
// pay the interrupt -> run queue -> handler trip.
void Quarantine_Centralized(benchmark::State& state) {
  const bool crash_loop = state.range(0) != 0;
  constexpr sim::Duration kSelfTest = sim::Duration::Micros(50);
  for (auto _ : state) {
    sim::Simulator simulator;
    mem::PhysicalMemory memory(64 << 20);
    baseline::CentralKernelConfig config;
    if (crash_loop) {
      config.max_restart_attempts = 10;
      config.crash_loop_threshold = 3;
    }
    baseline::CentralKernel kernel(&simulator, &memory, config);
    iommu::Iommu nic_iommu(DeviceId(1));
    iommu::Iommu ssd_iommu(DeviceId(2));
    kernel.RegisterDevice(DeviceId(1), &nic_iommu);
    kernel.RegisterDevice(DeviceId(2), &ssd_iommu);

    // A live session whose memory the NIC owns and the SSD holds a grant on,
    // so quarantine has something to reclaim.
    const uint64_t session_bytes = ssddev::SessionLayout::BytesRequired(64);
    bool session_up = false;
    kernel.AllocMemory(DeviceId(1), Pasid(1), session_bytes, [&](Result<VirtAddr> vaddr) {
      LASTCPU_CHECK(vaddr.ok(), "session alloc failed");
      kernel.Grant(DeviceId(1), Pasid(1), *vaddr, session_bytes, DeviceId(2),
                   Access::kReadWrite, [&](Status s) { session_up = s.ok(); });
    });
    simulator.Run();
    LASTCPU_CHECK(session_up, "session setup failed");

    kernel.SetResetHandler([&](DeviceId device) {
      if (!crash_loop) {
        return;  // dead silicon: the pulse goes unanswered
      }
      // Crash-looping silicon: self-test passes, then it dies again shortly.
      simulator.Schedule(kSelfTest, [&, device] {
        kernel.OnDeviceAlive(device);
        simulator.Schedule(sim::Duration::Micros(100),
                           [&, device] { kernel.ReportDeviceFailure(device); });
      });
    });
    bool quarantined = false;
    sim::SimTime quarantined_at = simulator.Now();
    kernel.SetQuarantineHandler([&](DeviceId, const std::string&) {
      quarantined = true;
      quarantined_at = simulator.Now();
    });

    sim::SimTime killed_at = simulator.Now();
    kernel.ReportDeviceFailure(DeviceId(2));
    simulator.Run();
    LASTCPU_CHECK(quarantined, "kernel never quarantined the device");

    state.SetIterationTime((quarantined_at - killed_at).seconds());
    state.counters["restart_pulses"] = static_cast<double>(
        kernel.stats().GetCounter("supervisor_restarts").value());
    state.counters["reclaimed_grants"] = static_cast<double>(
        kernel.stats().GetCounter("stranded_grants_reclaimed").value());
  }
  state.counters["design"] = 1;
  state.counters["crash_loop"] = crash_loop ? 1 : 0;
}

// --- E-failover: shard failover + partition series (rack control plane) ------

struct ChurnRecord {
  sim::SimTime issued;
  sim::SimTime completed;
  bool ok = false;
  uint32_t slab = 0;    // owning VA slab of the returned address
  size_t client = 0;    // index into the churn's client vector
};

// Closed-loop alloc(16KiB)+free churn from N clients until `end`, recording
// one entry per allocation. Works over either control plane; survives mid-run
// shard kills and partitions (failed ops are recorded and the loop goes on).
class ControlChurn {
 public:
  ControlChurn(sim::Simulator* simulator, std::vector<core::ControlClient*> clients, Pasid pasid,
               sim::SimTime end, uint32_t slabs)
      : simulator_(simulator),
        clients_(std::move(clients)),
        pasid_(pasid),
        end_(end),
        slabs_(slabs) {}

  void Start() {
    for (size_t i = 0; i < clients_.size(); ++i) {
      IssueNext(i);
    }
  }

  const std::vector<ChurnRecord>& records() const { return records_; }

 private:
  void IssueNext(size_t index) {
    if (simulator_->Now() >= end_) {
      return;
    }
    sim::SimTime issued = simulator_->Now();
    clients_[index]->Alloc(pasid_, 16 * 1024, [this, index, issued](Result<VirtAddr> r) {
      ChurnRecord record;
      record.issued = issued;
      record.completed = simulator_->Now();
      record.ok = r.ok();
      record.client = index;
      if (!r.ok()) {
        records_.push_back(record);
        IssueNext(index);
        return;
      }
      record.slab = slabs_ > 1 ? memdev::ShardForVa(*r, slabs_) : 0;
      records_.push_back(record);
      clients_[index]->Free(pasid_, *r, 16 * 1024,
                            [this, index](Result<void>) { IssueNext(index); });
    });
  }

  sim::Simulator* simulator_;
  std::vector<core::ControlClient*> clients_;
  Pasid pasid_;
  sim::SimTime end_;
  uint32_t slabs_;
  std::vector<ChurnRecord> records_;
};

double PercentileUs(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  size_t index = std::min(values.size() - 1,
                          static_cast<size_t>(p * static_cast<double>(values.size())));
  return values[index];
}

struct FailoverMeasurement {
  double blackout_us = -1.0;       // kill -> first successful op on the dead shard's slab
  double first_success_us = -1.0;  // kill -> first successful op anywhere
  double p50_recovery_us = 0.0;    // op latency percentiles over [kill, kill+2ms]
  double p99_recovery_us = 0.0;
  uint64_t ops = 0;
  uint64_t failed_ops = 0;
};

FailoverMeasurement MeasureFailover(const std::vector<ChurnRecord>& records, sim::SimTime kill_at,
                                    uint32_t dead_slab, bool slab_aware) {
  FailoverMeasurement m;
  sim::SimTime window_end = kill_at + sim::Duration::Millis(2);
  std::vector<double> window_latencies;
  for (const ChurnRecord& record : records) {
    ++m.ops;
    if (!record.ok) {
      ++m.failed_ops;
      continue;
    }
    if (record.completed >= kill_at && m.first_success_us < 0) {
      m.first_success_us = (record.completed - kill_at).seconds() * 1e6;
    }
    if (record.completed >= kill_at && m.blackout_us < 0 &&
        (!slab_aware || record.slab == dead_slab)) {
      m.blackout_us = (record.completed - kill_at).seconds() * 1e6;
    }
    if (record.issued >= kill_at && record.issued < window_end) {
      window_latencies.push_back((record.completed - record.issued).seconds() * 1e6);
    }
  }
  m.p50_recovery_us = PercentileUs(window_latencies, 0.50);
  m.p99_recovery_us = PercentileUs(window_latencies, 0.99);
  return m;
}

constexpr sim::Duration kFailoverKillAt = sim::Duration::Micros(1500);
constexpr sim::Duration kFailoverEnd = sim::Duration::Micros(5500);

// One shard of a two-shard rack is killed under load and respawns clean. The
// blackout is the window where the dead shard's VA slab serves nothing:
// clients spill fresh allocations to the survivor meanwhile, then the lease
// re-assertion protocol rebuilds the restarted shard's tables and it serves
// again. state.range(0) = client device count.
void ShardFailover_Decentralized(benchmark::State& state) {
  const int devices = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::MachineConfig config;
    config.topology.segments = 2;
    sim::CrashSpec kill;
    kill.device = MakeSegmentDeviceId(1, 1).value();
    kill.at = kFailoverKillAt;
    kill.respawn = sim::CrashSpec::Respawn::kClean;
    config.crash_plan.crashes = {kill};

    core::Machine machine(std::move(config));
    machine.AddMemoryControllerShards(2);
    std::vector<StubDevice*> stubs;
    stubs.reserve(devices);
    for (int i = 0; i < devices; ++i) {
      stubs.push_back(&machine.EmplaceOn<StubDevice>(i % 2, "churn-" + std::to_string(i)));
    }
    machine.Boot();

    std::vector<std::unique_ptr<core::ShardedControlClient>> clients;
    std::vector<core::ControlClient*> raw;
    for (StubDevice* stub : stubs) {
      clients.push_back(std::make_unique<core::ShardedControlClient>(
          stub, machine.shard_infos(), core::AllocationPolicy::kInterleave));
      raw.push_back(clients.back().get());
    }
    Pasid pasid = machine.NewApplication("churn");
    ControlChurn churn(&machine.simulator(), std::move(raw), pasid,
                       sim::SimTime::Zero() + kFailoverEnd, 2);
    churn.Start();
    machine.simulator().Run();

    FailoverMeasurement m = MeasureFailover(churn.records(), sim::SimTime::Zero() + kFailoverKillAt,
                                            /*dead_slab=*/1, /*slab_aware=*/true);
    uint64_t retries = 0;
    uint64_t reasserted = 0;
    for (const auto& client : clients) {
      retries += client->op_retries();
      reasserted += client->leases_reasserted();
    }
    state.SetIterationTime(m.blackout_us * 1e-6);
    state.counters["blackout_us"] = m.blackout_us;
    state.counters["first_success_us"] = m.first_success_us;
    state.counters["p50_recovery_us"] = m.p50_recovery_us;
    state.counters["p99_recovery_us"] = m.p99_recovery_us;
    state.counters["ops"] = static_cast<double>(m.ops);
    state.counters["failed_ops"] = static_cast<double>(m.failed_ops);
    state.counters["op_retries"] = static_cast<double>(retries);
    state.counters["leases_reasserted"] = static_cast<double>(reasserted);
  }
  state.counters["design"] = 0;
  state.counters["devices"] = static_cast<double>(devices);
}

// Centralized comparator: the kernel panics and warm-reboots at the same
// instant. The shard design's blast radius is one VA slab; here EVERY control
// op in the machine stalls for the blackout plus the table re-walk.
void ShardFailover_Centralized(benchmark::State& state) {
  const int devices = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    mem::PhysicalMemory memory(256 << 20);
    baseline::CentralKernelConfig config;
    config.cores = 4;
    baseline::CentralKernel kernel(&simulator, &memory, config);
    std::vector<std::unique_ptr<iommu::Iommu>> iommus;
    std::vector<std::unique_ptr<core::KernelControlClient>> clients;
    std::vector<core::ControlClient*> raw;
    for (int i = 0; i < devices; ++i) {
      DeviceId id(static_cast<uint32_t>(i + 1));
      iommus.push_back(std::make_unique<iommu::Iommu>(id));
      kernel.RegisterDevice(id, iommus.back().get());
      clients.push_back(std::make_unique<core::KernelControlClient>(&kernel, id));
      raw.push_back(clients.back().get());
    }
    ControlChurn churn(&simulator, std::move(raw), Pasid(1), sim::SimTime::Zero() + kFailoverEnd,
                       1);
    // Matched blackout: the shard's reset-pulse + self-test + recovery window
    // (~350us of one-slab unavailability) becomes a machine-wide stall here.
    simulator.ScheduleAt(sim::SimTime::Zero() + kFailoverKillAt, [&kernel] {
      kernel.SimulateKernelFailover(sim::Duration::Micros(350), [](Result<void>) {});
    });
    churn.Start();
    simulator.Run();

    FailoverMeasurement m = MeasureFailover(churn.records(), sim::SimTime::Zero() + kFailoverKillAt,
                                            /*dead_slab=*/0, /*slab_aware=*/false);
    state.SetIterationTime(m.blackout_us * 1e-6);
    state.counters["blackout_us"] = m.blackout_us;
    state.counters["p50_recovery_us"] = m.p50_recovery_us;
    state.counters["p99_recovery_us"] = m.p99_recovery_us;
    state.counters["ops"] = static_cast<double>(m.ops);
    state.counters["failed_ops"] = static_cast<double>(m.failed_ops);
    state.counters["rebuild_entries"] =
        static_cast<double>(kernel.stats().GetCounter("kernel_rebuild_entries").value());
  }
  state.counters["design"] = 1;
  state.counters["devices"] = static_cast<double>(devices);
  state.counters["cores"] = 4;
}

// Inter-segment partition under load: cross-segment control ops fail fast
// with kPartitioned and spill to the local shard; segment-local traffic is
// unaffected; on heal, cross-segment placement resumes. state.range(0) =
// partition width in microseconds.
void Partition_Decentralized(benchmark::State& state) {
  const int width_us = static_cast<int>(state.range(0));
  constexpr int kDevices = 64;
  for (auto _ : state) {
    core::MachineConfig config;
    config.topology.segments = 2;
    sim::PartitionSpec spec;
    spec.segment_a = 0;
    spec.segment_b = 1;
    spec.start = kFailoverKillAt;
    spec.heal = kFailoverKillAt + sim::Duration::Micros(width_us);
    config.fault_plan.partitions = {spec};

    core::Machine machine(std::move(config));
    machine.AddMemoryControllerShards(2);
    std::vector<StubDevice*> stubs;
    for (int i = 0; i < kDevices; ++i) {
      stubs.push_back(&machine.EmplaceOn<StubDevice>(i % 2, "churn-" + std::to_string(i)));
    }
    machine.Boot();

    std::vector<std::unique_ptr<core::ShardedControlClient>> clients;
    std::vector<core::ControlClient*> raw;
    for (StubDevice* stub : stubs) {
      clients.push_back(std::make_unique<core::ShardedControlClient>(
          stub, machine.shard_infos(), core::AllocationPolicy::kInterleave));
      raw.push_back(clients.back().get());
    }
    Pasid pasid = machine.NewApplication("churn");
    sim::SimTime heal = sim::SimTime::Zero() + spec.heal;
    ControlChurn churn(&machine.simulator(), std::move(raw), pasid,
                       heal + sim::Duration::Millis(2), 2);
    churn.Start();
    machine.simulator().Run();

    // Partition-window behaviour: local ops proceed, and the first
    // cross-segment placement after the heal marks reconciliation.
    sim::SimTime start = sim::SimTime::Zero() + spec.start;
    uint64_t ops_in_partition = 0;
    uint64_t failed = 0;
    double heal_resume_us = -1.0;
    std::vector<double> window_latencies;
    for (const ChurnRecord& record : churn.records()) {
      if (!record.ok) {
        ++failed;
        continue;
      }
      bool cross = (record.slab == 1) != (record.client % 2 == 1);
      if (record.completed >= start && record.completed < heal) {
        ++ops_in_partition;
        window_latencies.push_back((record.completed - record.issued).seconds() * 1e6);
      }
      if (cross && record.completed >= heal && heal_resume_us < 0) {
        heal_resume_us = (record.completed - heal).seconds() * 1e6;
      }
    }
    uint64_t spills = 0;
    for (const auto& client : clients) {
      spills += client->spills();
    }
    state.SetIterationTime(heal_resume_us * 1e-6);
    state.counters["heal_resume_us"] = heal_resume_us;
    state.counters["ops_in_partition"] = static_cast<double>(ops_in_partition);
    state.counters["p99_partition_us"] = PercentileUs(window_latencies, 0.99);
    state.counters["failed_ops"] = static_cast<double>(failed);
    state.counters["spills"] = static_cast<double>(spills);
    state.counters["fail_fast"] = static_cast<double>(
        machine.bus().stats().GetCounter("partition_fail_fast").value());
  }
  state.counters["design"] = 0;
  state.counters["devices"] = kDevices;
  state.counters["partition_us"] = static_cast<double>(width_us);
}

BENCHMARK(FaultRecovery_Decentralized)
    ->UseManualTime()
    ->Iterations(5)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(0)
    ->Arg(1);
BENCHMARK(FaultRecovery_Centralized)
    ->UseManualTime()
    ->Iterations(5)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(0)
    ->Arg(1);
BENCHMARK(Quarantine_Decentralized)
    ->UseManualTime()
    ->Iterations(5)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(0)
    ->Arg(1);
BENCHMARK(Quarantine_Centralized)
    ->UseManualTime()
    ->Iterations(5)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(0)
    ->Arg(1);
BENCHMARK(ShardFailover_Decentralized)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(64)
    ->Arg(256);
BENCHMARK(ShardFailover_Centralized)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(64)
    ->Arg(256);
BENCHMARK(Partition_Decentralized)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(500)
    ->Arg(2000);

}  // namespace

// CI smoke: run the shard-failover schedule once at a modest device count and
// assert the blackout stays under a fixed *simulated-time* bound. Catches any
// change that silently widens the failover window (lost re-assertions, a
// stuck recovery gate, clients surfacing kUnavailable instead of retrying).
int RunFailoverSmoke(double blackout_floor_us) {
  core::MachineConfig config;
  config.topology.segments = 2;
  sim::CrashSpec kill;
  kill.device = MakeSegmentDeviceId(1, 1).value();
  kill.at = kFailoverKillAt;
  kill.respawn = sim::CrashSpec::Respawn::kClean;
  config.crash_plan.crashes = {kill};

  core::Machine machine(std::move(config));
  auto shards = machine.AddMemoryControllerShards(2);
  std::vector<StubDevice*> stubs;
  for (int i = 0; i < 32; ++i) {
    stubs.push_back(&machine.EmplaceOn<StubDevice>(i % 2, "churn-" + std::to_string(i)));
  }
  machine.Boot();

  std::vector<std::unique_ptr<core::ShardedControlClient>> clients;
  std::vector<core::ControlClient*> raw;
  for (StubDevice* stub : stubs) {
    clients.push_back(std::make_unique<core::ShardedControlClient>(
        stub, machine.shard_infos(), core::AllocationPolicy::kInterleave));
    raw.push_back(clients.back().get());
  }
  Pasid pasid = machine.NewApplication("churn");
  ControlChurn churn(&machine.simulator(), std::move(raw), pasid,
                     sim::SimTime::Zero() + kFailoverEnd, 2);
  churn.Start();
  machine.simulator().Run();

  FailoverMeasurement m = MeasureFailover(churn.records(), sim::SimTime::Zero() + kFailoverKillAt,
                                          /*dead_slab=*/1, /*slab_aware=*/true);
  std::printf("failover smoke: blackout_us=%.1f first_success_us=%.1f p99_recovery_us=%.1f "
              "ops=%llu failed=%llu\n",
              m.blackout_us, m.first_success_us, m.p99_recovery_us,
              static_cast<unsigned long long>(m.ops),
              static_cast<unsigned long long>(m.failed_ops));
  if (m.blackout_us < 0) {
    std::printf("FAIL: the dead shard's slab never served again\n");
    return 1;
  }
  if (m.blackout_us > blackout_floor_us) {
    std::printf("FAIL: blackout %.1fus exceeds the %.1fus bound\n", m.blackout_us,
                blackout_floor_us);
    return 1;
  }
  if (m.failed_ops > static_cast<uint64_t>(stubs.size())) {
    std::printf("FAIL: %llu ops failed (more than one per device)\n",
                static_cast<unsigned long long>(m.failed_ops));
    return 1;
  }
  std::printf("failover smoke: OK (bound %.1fus)\n", blackout_floor_us);
  return 0;
}

}  // namespace lastcpu

// Custom main so CI can run `--failover-smoke [--blackout-bound-us=N]` (not
// google-benchmark syntax), mirroring bench_kvs's --gc-smoke.
int main(int argc, char** argv) {
  bool failover_smoke = false;
  double blackout_bound_us = 1500.0;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--failover-smoke") == 0) {
      failover_smoke = true;
    } else if (std::strncmp(argv[i], "--blackout-bound-us=", 20) == 0) {
      blackout_bound_us = std::stod(std::string(argv[i] + 20));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (failover_smoke) {
    return lastcpu::RunFailoverSmoke(blackout_bound_us);
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
