// E-fault: recovery latency under a faulty interconnect (paper Sec. 4/5).
//
// The paper's open question is whether a machine with no CPU to clean up
// after it stays viable when things go wrong. This experiment kills the
// smart SSD in the middle of a live KVS workload — on a clean wire and on a
// lossy one (drops, delays, duplicates, reorders injected seed-
// deterministically by the FaultPlan) — and measures the time from the kill
// to full application recovery (session re-open, log re-scan, first
// successful GET). The centralized comparator pays kernel mediation for the
// failure fan-out and re-initialization, with the same per-message loss
// probability forcing timeout-priced retries on its mediated hops.
#include <benchmark/benchmark.h>

#include <functional>
#include <memory>

#include "bench/bench_util.h"
#include "src/baseline/central_kernel.h"
#include "src/sim/fault.h"

namespace lastcpu {
namespace {

using benchutil::KvsRig;

// Steps the simulator until `predicate` holds; returns false on queue-drain.
bool StepUntil(sim::Simulator& simulator, const std::function<bool()>& predicate) {
  while (!predicate()) {
    if (!simulator.Step()) {
      return predicate();
    }
  }
  return true;
}

// The lossy-wire profile shared by both designs: mild but real impairment.
sim::FaultPlan LossyPlan() {
  sim::FaultPlan plan;
  plan.drop_probability = 0.01;
  plan.delay_probability = 0.05;
  plan.duplicate_probability = 0.01;
  plan.reorder_probability = 0.01;
  return plan;
}

// Kills the SSD mid-workload and measures time to first successful GET after
// recovery. state.range(0) selects the wire: 0 = clean, 1 = lossy plan.
void FaultRecovery_Decentralized(benchmark::State& state) {
  const bool lossy = state.range(0) != 0;
  uint64_t seed = LossyPlan().seed;
  for (auto _ : state) {
    core::MachineConfig machine_config;
    kvs::KvsAppConfig app_config;
    if (lossy) {
      machine_config.fault_plan = LossyPlan();
      machine_config.fault_plan.seed = seed++;  // fresh draw sequence per run
      // Doorbells may be dropped on a lossy wire; the poll backstop keeps
      // the data plane live (see FileClientConfig::completion_poll).
      app_config.engine.file_client.completion_poll = sim::Duration::Micros(200);
    }
    KvsRig rig = KvsRig::Build(machine_config, app_config);
    rig.Preload(50, 128);

    // Keep a workload in flight so the kill lands mid-exchange.
    int issued = 0;
    int settled = 0;
    for (uint64_t i = 0; i < 8; ++i) {
      ++issued;
      rig.app->engine().Get(kvs::WorkloadGenerator::KeyFor(i),
                            [&](Result<std::vector<uint8_t>>) { ++settled; });
    }
    for (int i = 0; i < 50; ++i) {
      rig.machine->simulator().Step();  // a few deliveries, then the axe falls
    }

    sim::SimTime start = rig.machine->simulator().Now();
    rig.ssd->InjectFailure();
    rig.machine->bus().ReportDeviceFailure(rig.ssd->id());
    bool stopped = StepUntil(rig.machine->simulator(),
                             [&] { return !rig.app->engine().running(); });
    LASTCPU_CHECK(stopped, "NIC never learned of the failure");
    sim::SimTime notified = rig.machine->simulator().Now();
    bool recovered = StepUntil(rig.machine->simulator(),
                               [&] { return rig.app->engine().running(); });
    LASTCPU_CHECK(recovered, "app never recovered");

    bool got = false;
    rig.app->engine().Get(kvs::WorkloadGenerator::KeyFor(7),
                          [&](Result<std::vector<uint8_t>> r) { got = r.ok(); });
    rig.machine->RunUntilIdle();
    LASTCPU_CHECK(got, "data lost across recovery");
    // The no-hangs invariant: every pre-kill request settled with a typed
    // status even though its provider died mid-exchange.
    LASTCPU_CHECK(settled == issued, "a request callback hung across the failure");

    state.SetIterationTime((rig.machine->simulator().Now() - start).seconds());
    state.counters["notify_us"] = (notified - start).seconds() * 1e6;
    state.counters["recoveries"] = static_cast<double>(rig.app->recoveries());
    if (rig.machine->fault_injector() != nullptr) {
      state.counters["faults"] =
          static_cast<double>(rig.machine->fault_injector()->dropped() +
                              rig.machine->fault_injector()->delayed() +
                              rig.machine->fault_injector()->duplicated() +
                              rig.machine->fault_injector()->reordered());
    }
  }
  state.counters["design"] = 0;
  state.counters["lossy"] = lossy ? 1 : 0;
}

// Centralized comparator: the kernel hears the failure interrupt, notifies
// `consumers` serially, then re-runs the mediated init sequence. On the
// lossy wire every mediated hop is lost with the same probability and costs
// a full 100us request timeout before the retry (there is no bus broadcast
// to amortize and no peer-to-peer retry path — the kernel is the wire).
void FaultRecovery_Centralized(benchmark::State& state) {
  const bool lossy = state.range(0) != 0;
  constexpr size_t kConsumers = 8;
  constexpr sim::Duration kRetryTimeout = sim::Duration::Micros(100);
  sim::Rng rng(LossyPlan().seed);
  const double drop = lossy ? LossyPlan().drop_probability : 0.0;
  for (auto _ : state) {
    sim::Simulator simulator;
    mem::PhysicalMemory memory(64 << 20);
    baseline::CentralKernel kernel(&simulator, &memory);
    iommu::Iommu nic_iommu(DeviceId(1));
    iommu::Iommu ssd_iommu(DeviceId(2));
    kernel.RegisterDevice(DeviceId(1), &nic_iommu);
    kernel.RegisterDevice(DeviceId(2), &ssd_iommu);

    constexpr sim::Duration kSelfTest = sim::Duration::Micros(50);
    constexpr sim::Duration kLogScan = sim::Duration::Micros(120);
    const uint64_t session_bytes = ssddev::SessionLayout::BytesRequired(64);

    // Each mediated hop pays the timeout once per loss before succeeding.
    auto hop_penalty = [&] {
      sim::Duration penalty = sim::Duration::Zero();
      while (rng.NextBool(drop)) {
        penalty = penalty + kRetryTimeout;
      }
      return penalty;
    };

    sim::SimTime start = simulator.Now();
    bool done = false;
    auto notify = std::make_shared<std::function<void(size_t)>>();
    *notify = [&, notify](size_t remaining) {
      if (remaining == 0) {
        simulator.Schedule(kSelfTest + hop_penalty(), [&] {
          kernel.MediateIo(sim::Duration::Nanos(600) + hop_penalty(), [&] {  // re-open
            kernel.AllocMemory(DeviceId(1), Pasid(1), session_bytes,
                               [&](Result<VirtAddr> vaddr) {
                                 kernel.Grant(DeviceId(1), Pasid(1), *vaddr, session_bytes,
                                              DeviceId(2), Access::kReadWrite, [&](Status) {
                                                simulator.Schedule(kLogScan,
                                                                   [&] { done = true; });
                                              });
                               });
          });
        });
        return;
      }
      kernel.MediateIo(sim::Duration::Nanos(700) + hop_penalty(),
                       [notify, remaining] { (*notify)(remaining - 1); });
    };
    kernel.MediateIo(sim::Duration::Micros(1), [notify] { (*notify)(kConsumers); });
    simulator.Run();
    LASTCPU_CHECK(done, "centralized recovery never completed");
    state.SetIterationTime((simulator.Now() - start).seconds());
  }
  state.counters["design"] = 1;
  state.counters["lossy"] = lossy ? 1 : 0;
  state.counters["consumers"] = static_cast<double>(kConsumers);
}

// Quarantine path: the SSD dies for good. Measures kill -> quarantine
// decision and kill -> the app learning retries are pointless, and checks
// that the memory controller reclaims everything the corpse owned or held.
// state.range(0) selects the failure shape: 0 = dead silicon (reset pulses
// go unanswered until the attempt budget runs out), 1 = crash loop (the
// device answers every reset but keeps dying; the sliding-window detector
// trips first).
void Quarantine_Decentralized(benchmark::State& state) {
  const bool crash_loop = state.range(0) != 0;
  for (auto _ : state) {
    core::MachineConfig machine_config;
    sim::CrashSpec kill;
    kill.device = 2;  // the SSD: memctrl/ssd/nic are added in that order
    kill.at = sim::Duration::Micros(15000);
    if (crash_loop) {
      machine_config.bus.restart_policy.max_restart_attempts = 10;
      machine_config.bus.restart_policy.crash_loop_threshold = 3;
      sim::CrashSpec again = kill;
      again.at = sim::Duration::Micros(15400);
      sim::CrashSpec third = kill;
      third.at = sim::Duration::Micros(15800);
      machine_config.crash_plan.crashes = {kill, again, third};
    } else {
      kill.respawn = sim::CrashSpec::Respawn::kNever;
      machine_config.crash_plan.crashes = {kill};
    }

    KvsRig rig = KvsRig::Build(machine_config, kvs::KvsAppConfig{});
    rig.Preload(20, 128);
    sim::Simulator& simulator = rig.machine->simulator();
    LASTCPU_CHECK(rig.machine->bus().IsAlive(rig.ssd->id()),
                  "preload ran past the scheduled kill");

    // Step to the first kill (a scheduled daemon), then through the whole
    // supervision episode: pulses, backoff, deadline timers, quarantine.
    bool killed =
        StepUntil(simulator, [&] { return !rig.machine->bus().IsAlive(rig.ssd->id()); });
    LASTCPU_CHECK(killed, "crash plan never fired");
    sim::SimTime killed_at = simulator.Now();

    const bus::DeviceSupervisor& supervisor = rig.machine->bus().supervisor();
    sim::SimTime give_up = killed_at + sim::Duration::Millis(50);
    StepUntil(simulator, [&] {
      return supervisor.IsQuarantined(rig.ssd->id()) || simulator.Now() >= give_up;
    });
    LASTCPU_CHECK(supervisor.IsQuarantined(rig.ssd->id()), "device never quarantined");
    sim::SimTime quarantined_at = simulator.Now();

    // The DevicePermanentlyFailed broadcast must reach the NIC and kill the
    // app's retry loop.
    StepUntil(simulator, [&] {
      return rig.app->provider_permanently_failed() || simulator.Now() >= give_up;
    });
    LASTCPU_CHECK(rig.app->provider_permanently_failed(), "app never learned of quarantine");
    sim::SimTime app_informed_at = simulator.Now();
    rig.machine->RunUntilIdle();

    // Reclamation: nothing left in the memory controller under the corpse's
    // name, and a post-quarantine Put settles immediately with an error
    // instead of hanging.
    LASTCPU_CHECK(rig.memctrl->AllocationsOwnedBy(rig.ssd->id()) == 0,
                  "quarantined device still owns allocations");
    LASTCPU_CHECK(rig.memctrl->GrantsHeldBy(rig.ssd->id()) == 0,
                  "quarantined device still holds grants");
    bool settled = false;
    bool failed = false;
    rig.app->engine().Put("post-quarantine", {1, 2, 3}, [&](Status s) {
      settled = true;
      failed = !s.ok();
    });
    rig.machine->RunUntilIdle();
    LASTCPU_CHECK(settled && failed, "post-quarantine put did not fast-fail");

    state.SetIterationTime((quarantined_at - killed_at).seconds());
    state.counters["app_notified_us"] = (app_informed_at - killed_at).seconds() * 1e6;
    state.counters["restart_pulses"] = static_cast<double>(
        rig.machine->bus().stats().GetCounter("supervisor_restarts").value());
    state.counters["reclaimed_grants"] = static_cast<double>(
        rig.memctrl->stats().GetCounter("stranded_grants_reclaimed").value());
  }
  state.counters["design"] = 0;
  state.counters["crash_loop"] = crash_loop ? 1 : 0;
}

// Centralized comparator: the same supervision policy runs as kernel
// software, so every pulse, deadline, and the final quarantine+reclaim each
// pay the interrupt -> run queue -> handler trip.
void Quarantine_Centralized(benchmark::State& state) {
  const bool crash_loop = state.range(0) != 0;
  constexpr sim::Duration kSelfTest = sim::Duration::Micros(50);
  for (auto _ : state) {
    sim::Simulator simulator;
    mem::PhysicalMemory memory(64 << 20);
    baseline::CentralKernelConfig config;
    if (crash_loop) {
      config.max_restart_attempts = 10;
      config.crash_loop_threshold = 3;
    }
    baseline::CentralKernel kernel(&simulator, &memory, config);
    iommu::Iommu nic_iommu(DeviceId(1));
    iommu::Iommu ssd_iommu(DeviceId(2));
    kernel.RegisterDevice(DeviceId(1), &nic_iommu);
    kernel.RegisterDevice(DeviceId(2), &ssd_iommu);

    // A live session whose memory the NIC owns and the SSD holds a grant on,
    // so quarantine has something to reclaim.
    const uint64_t session_bytes = ssddev::SessionLayout::BytesRequired(64);
    bool session_up = false;
    kernel.AllocMemory(DeviceId(1), Pasid(1), session_bytes, [&](Result<VirtAddr> vaddr) {
      LASTCPU_CHECK(vaddr.ok(), "session alloc failed");
      kernel.Grant(DeviceId(1), Pasid(1), *vaddr, session_bytes, DeviceId(2),
                   Access::kReadWrite, [&](Status s) { session_up = s.ok(); });
    });
    simulator.Run();
    LASTCPU_CHECK(session_up, "session setup failed");

    kernel.SetResetHandler([&](DeviceId device) {
      if (!crash_loop) {
        return;  // dead silicon: the pulse goes unanswered
      }
      // Crash-looping silicon: self-test passes, then it dies again shortly.
      simulator.Schedule(kSelfTest, [&, device] {
        kernel.OnDeviceAlive(device);
        simulator.Schedule(sim::Duration::Micros(100),
                           [&, device] { kernel.ReportDeviceFailure(device); });
      });
    });
    bool quarantined = false;
    sim::SimTime quarantined_at = simulator.Now();
    kernel.SetQuarantineHandler([&](DeviceId, const std::string&) {
      quarantined = true;
      quarantined_at = simulator.Now();
    });

    sim::SimTime killed_at = simulator.Now();
    kernel.ReportDeviceFailure(DeviceId(2));
    simulator.Run();
    LASTCPU_CHECK(quarantined, "kernel never quarantined the device");

    state.SetIterationTime((quarantined_at - killed_at).seconds());
    state.counters["restart_pulses"] = static_cast<double>(
        kernel.stats().GetCounter("supervisor_restarts").value());
    state.counters["reclaimed_grants"] = static_cast<double>(
        kernel.stats().GetCounter("stranded_grants_reclaimed").value());
  }
  state.counters["design"] = 1;
  state.counters["crash_loop"] = crash_loop ? 1 : 0;
}

BENCHMARK(FaultRecovery_Decentralized)
    ->UseManualTime()
    ->Iterations(5)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(0)
    ->Arg(1);
BENCHMARK(FaultRecovery_Centralized)
    ->UseManualTime()
    ->Iterations(5)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(0)
    ->Arg(1);
BENCHMARK(Quarantine_Decentralized)
    ->UseManualTime()
    ->Iterations(5)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(0)
    ->Arg(1);
BENCHMARK(Quarantine_Centralized)
    ->UseManualTime()
    ->Iterations(5)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(0)
    ->Arg(1);

}  // namespace
}  // namespace lastcpu

BENCHMARK_MAIN();
