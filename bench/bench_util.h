// Shared scaffolding for the experiment benchmarks (DESIGN.md E1-E8).
//
// Simulated metrics vs wall-clock: every experiment runs inside the
// discrete-event simulator, so benchmarks report *simulated* time through
// google-benchmark's manual-time mode (SetIterationTime), plus counters for
// throughput and tail latency. Wall time of the process is irrelevant.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/control_plane.h"
#include "src/core/machine.h"
#include "src/kvs/kvs_app.h"
#include "src/kvs/workload.h"
#include "src/ssddev/file_client.h"

namespace lastcpu::benchutil {

// A plain self-managing device for issuing control-plane traffic; forwards
// doorbells into an optional FileClient session.
class StubDevice : public dev::Device {
 public:
  StubDevice(DeviceId id, const dev::DeviceContext& context, std::string name)
      : dev::Device(id, std::move(name), context) {}

  ssddev::FileClient* doorbell_sink = nullptr;

 protected:
  void OnDoorbell(DeviceId from, uint64_t value) override {
    if (doorbell_sink != nullptr) {
      (void)doorbell_sink->HandleDoorbell(from, value);
    }
  }
};

// Runs `ops_each` alloc+free pairs from each client; records per-op latency.
// Works over either control plane via the ControlClient interface. Returns
// when all clients finish.
//
// Two arrival disciplines:
//  * closed-loop (default): each client keeps exactly one op outstanding and
//    issues the next on completion. With identical clients this marches in
//    lockstep — every op sees the same queueing, so p50 == p99 by
//    construction. Fine for throughput, useless for tails.
//  * open-loop: ops arrive on a seeded Poisson process (deterministic
//    xorshift64 + inverse-CDF exponential), independent of completions, so
//    queueing variance — and a real latency distribution — emerges.
class ControlLoadRunner {
 public:
  struct PerClient {
    core::ControlClient* client;
    Pasid pasid;
  };

  struct Options {
    uint64_t ops_each = 0;
    // Zero = closed loop. Otherwise the mean inter-arrival time of the
    // open-loop Poisson process, per client.
    sim::Duration mean_interarrival = sim::Duration::Zero();
    uint64_t seed = 0x9e3779b97f4a7c15ull;
  };

  ControlLoadRunner(sim::Simulator* simulator, std::vector<PerClient> clients, uint64_t ops_each)
      : ControlLoadRunner(simulator, std::move(clients), Options{ops_each}) {}

  ControlLoadRunner(sim::Simulator* simulator, std::vector<PerClient> clients, Options options)
      : simulator_(simulator), clients_(std::move(clients)), options_(options) {
    rng_ = options_.seed != 0 ? options_.seed : 1;
  }

  void Run() {
    remaining_.assign(clients_.size(), options_.ops_each);
    for (size_t i = 0; i < clients_.size(); ++i) {
      if (options_.mean_interarrival > sim::Duration::Zero()) {
        ScheduleArrival(i);
      } else {
        IssueNext(i);
      }
    }
    simulator_->Run();
  }

  const sim::Histogram& latency() const { return latency_; }
  uint64_t completed() const { return completed_; }
  uint64_t failures() const { return failures_; }

 private:
  void IssueNext(size_t index) {
    if (remaining_[index] == 0) {
      return;
    }
    --remaining_[index];
    IssueOne(index, /*chain=*/true);
  }

  // Open loop: the next arrival is scheduled from the current one, spaced by
  // an exponential draw, regardless of whether earlier ops completed.
  void ScheduleArrival(size_t index) {
    if (remaining_[index] == 0) {
      return;
    }
    --remaining_[index];
    simulator_->Schedule(NextInterarrival(), [this, index] {
      IssueOne(index, /*chain=*/false);
      ScheduleArrival(index);
    });
  }

  void IssueOne(size_t index, bool chain) {
    sim::SimTime start = simulator_->Now();
    PerClient& pc = clients_[index];
    pc.client->Alloc(pc.pasid, 4 * kPageSize,
                     [this, index, start, chain, &pc](Result<VirtAddr> r) {
                       if (!r.ok()) {
                         ++failures_;
                         if (chain) {
                           IssueNext(index);
                         }
                         return;
                       }
                       pc.client->Free(pc.pasid, *r, 4 * kPageSize,
                                       [this, index, start, chain](Status) {
                                         latency_.Record(simulator_->Now() - start);
                                         ++completed_;
                                         if (chain) {
                                           IssueNext(index);
                                         }
                                       });
                     });
  }

  sim::Duration NextInterarrival() {
    // xorshift64: deterministic across platforms, seeded per runner.
    rng_ ^= rng_ << 13;
    rng_ ^= rng_ >> 7;
    rng_ ^= rng_ << 17;
    double u = static_cast<double>(rng_ >> 11) * 0x1.0p-53;  // [0, 1)
    double mean_ns = static_cast<double>(options_.mean_interarrival.nanos());
    double draw = -mean_ns * std::log(1.0 - u);
    return sim::Duration::Nanos(static_cast<uint64_t>(draw) + 1);
  }

  sim::Simulator* simulator_;
  std::vector<PerClient> clients_;
  Options options_;
  std::vector<uint64_t> remaining_;
  sim::Histogram latency_;
  uint64_t completed_ = 0;
  uint64_t failures_ = 0;
  uint64_t rng_ = 1;
};

// Standard KVS machine for the application benchmarks: memctrl + SSD
// (pre-provisioned log, no auth for benchmark brevity) + NIC + KvsApp.
struct KvsRig {
  std::unique_ptr<core::Machine> machine;
  memdev::MemoryController* memctrl = nullptr;
  ssddev::SmartSsd* ssd = nullptr;
  nicdev::SmartNic* nic = nullptr;
  kvs::KvsApp* app = nullptr;
  Pasid pasid;

  static KvsRig Build() { return Build(core::MachineConfig{}, kvs::KvsAppConfig{}); }

  static KvsRig Build(const core::MachineConfig& machine_config,
                      const kvs::KvsAppConfig& app_config) {
    ssddev::SmartSsdConfig ssd_config;
    ssd_config.host_auth_service = false;
    return Build(machine_config, app_config, ssd_config);
  }

  // Full-control variant for benchmarks that need a non-default SSD, e.g. a
  // small NAND array so a sustained overwrite workload runs the FTL into
  // garbage collection.
  static KvsRig Build(const core::MachineConfig& machine_config,
                      const kvs::KvsAppConfig& app_config,
                      const ssddev::SmartSsdConfig& ssd_config) {
    KvsRig rig;
    rig.machine = std::make_unique<core::Machine>(machine_config);
    rig.memctrl = &rig.machine->AddMemoryController();
    rig.ssd = &rig.machine->AddSmartSsd(ssd_config);
    rig.nic = &rig.machine->AddSmartNic();
    rig.ssd->ProvisionFile("kv.log", {});
    rig.pasid = rig.machine->NewApplication("kvs");
    auto app = std::make_unique<kvs::KvsApp>(rig.nic, rig.pasid, app_config);
    rig.app = app.get();
    rig.nic->LoadApp(std::move(app));
    rig.machine->Boot();
    return rig;
  }

  // Synchronously preloads `keys` with values of `value_bytes`.
  void Preload(uint64_t keys, uint32_t value_bytes) {
    for (uint64_t i = 0; i < keys; ++i) {
      app->engine().Put(kvs::WorkloadGenerator::KeyFor(i),
                        std::vector<uint8_t>(value_bytes, static_cast<uint8_t>(i)),
                        [](Status s) { LASTCPU_CHECK(s.ok(), "preload failed"); });
      machine->RunUntilIdle();
    }
  }
};

// Publishes a latency histogram as benchmark counters.
inline void ReportLatency(benchmark::State& state, const sim::Histogram& histogram,
                          const std::string& prefix = "") {
  state.counters[prefix + "p50_us"] = static_cast<double>(histogram.p50()) / 1e3;
  state.counters[prefix + "p99_us"] = static_cast<double>(histogram.p99()) / 1e3;
  state.counters[prefix + "mean_us"] = histogram.mean() / 1e3;
}

}  // namespace lastcpu::benchutil

#endif  // BENCH_BENCH_UTIL_H_
