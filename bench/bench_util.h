// Shared scaffolding for the experiment benchmarks (DESIGN.md E1-E8).
//
// Simulated metrics vs wall-clock: every experiment runs inside the
// discrete-event simulator, so benchmarks report *simulated* time through
// google-benchmark's manual-time mode (SetIterationTime), plus counters for
// throughput and tail latency. Wall time of the process is irrelevant.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/control_plane.h"
#include "src/core/machine.h"
#include "src/kvs/kvs_app.h"
#include "src/kvs/workload.h"
#include "src/ssddev/file_client.h"

namespace lastcpu::benchutil {

// A plain self-managing device for issuing control-plane traffic; forwards
// doorbells into an optional FileClient session.
class StubDevice : public dev::Device {
 public:
  StubDevice(DeviceId id, const dev::DeviceContext& context, std::string name)
      : dev::Device(id, std::move(name), context) {}

  ssddev::FileClient* doorbell_sink = nullptr;

 protected:
  void OnDoorbell(DeviceId from, uint64_t value) override {
    if (doorbell_sink != nullptr) {
      (void)doorbell_sink->HandleDoorbell(from, value);
    }
  }
};

// Runs `total_ops` alloc+free pairs from each client with `concurrency`
// outstanding per client; records per-op latency. Works over either control
// plane via the ControlClient interface. Returns when all clients finish.
class ControlLoadRunner {
 public:
  struct PerClient {
    core::ControlClient* client;
    Pasid pasid;
  };

  ControlLoadRunner(sim::Simulator* simulator, std::vector<PerClient> clients, uint64_t ops_each)
      : simulator_(simulator), clients_(std::move(clients)), ops_each_(ops_each) {}

  void Run() {
    remaining_.assign(clients_.size(), ops_each_);
    for (size_t i = 0; i < clients_.size(); ++i) {
      IssueNext(i);
    }
    simulator_->Run();
  }

  const sim::Histogram& latency() const { return latency_; }
  uint64_t completed() const { return completed_; }

 private:
  void IssueNext(size_t index) {
    if (remaining_[index] == 0) {
      return;
    }
    --remaining_[index];
    sim::SimTime start = simulator_->Now();
    PerClient& pc = clients_[index];
    pc.client->Alloc(pc.pasid, 4 * kPageSize, [this, index, start, &pc](Result<VirtAddr> r) {
      if (!r.ok()) {
        ++failures_;
        IssueNext(index);
        return;
      }
      pc.client->Free(pc.pasid, *r, 4 * kPageSize, [this, index, start](Status) {
        latency_.Record(simulator_->Now() - start);
        ++completed_;
        IssueNext(index);
      });
    });
  }

  sim::Simulator* simulator_;
  std::vector<PerClient> clients_;
  uint64_t ops_each_;
  std::vector<uint64_t> remaining_;
  sim::Histogram latency_;
  uint64_t completed_ = 0;
  uint64_t failures_ = 0;
};

// Standard KVS machine for the application benchmarks: memctrl + SSD
// (pre-provisioned log, no auth for benchmark brevity) + NIC + KvsApp.
struct KvsRig {
  std::unique_ptr<core::Machine> machine;
  memdev::MemoryController* memctrl = nullptr;
  ssddev::SmartSsd* ssd = nullptr;
  nicdev::SmartNic* nic = nullptr;
  kvs::KvsApp* app = nullptr;
  Pasid pasid;

  static KvsRig Build() { return Build(core::MachineConfig{}, kvs::KvsAppConfig{}); }

  static KvsRig Build(const core::MachineConfig& machine_config,
                      const kvs::KvsAppConfig& app_config) {
    KvsRig rig;
    rig.machine = std::make_unique<core::Machine>(machine_config);
    rig.memctrl = &rig.machine->AddMemoryController();
    ssddev::SmartSsdConfig ssd_config;
    ssd_config.host_auth_service = false;
    rig.ssd = &rig.machine->AddSmartSsd(ssd_config);
    rig.nic = &rig.machine->AddSmartNic();
    rig.ssd->ProvisionFile("kv.log", {});
    rig.pasid = rig.machine->NewApplication("kvs");
    auto app = std::make_unique<kvs::KvsApp>(rig.nic, rig.pasid, app_config);
    rig.app = app.get();
    rig.nic->LoadApp(std::move(app));
    rig.machine->Boot();
    return rig;
  }

  // Synchronously preloads `keys` with values of `value_bytes`.
  void Preload(uint64_t keys, uint32_t value_bytes) {
    for (uint64_t i = 0; i < keys; ++i) {
      app->engine().Put(kvs::WorkloadGenerator::KeyFor(i),
                        std::vector<uint8_t>(value_bytes, static_cast<uint8_t>(i)),
                        [](Status s) { LASTCPU_CHECK(s.ok(), "preload failed"); });
      machine->RunUntilIdle();
    }
  }
};

// Publishes a latency histogram as benchmark counters.
inline void ReportLatency(benchmark::State& state, const sim::Histogram& histogram,
                          const std::string& prefix = "") {
  state.counters[prefix + "p50_us"] = static_cast<double>(histogram.p50()) / 1e3;
  state.counters[prefix + "p99_us"] = static_cast<double>(histogram.p99()) / 1e3;
  state.counters[prefix + "mean_us"] = histogram.mean() / 1e3;
}

}  // namespace lastcpu::benchutil

#endif  // BENCH_BENCH_UTIL_H_
