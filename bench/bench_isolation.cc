// E3: performance isolation (the paper's claim that "decentralized control
// ... can improve performance isolation").
//
// A victim application reads records from the SSD file service while M noisy
// tenants hammer the control plane with alloc/free storms.
//   Decentralized: the victim's data path (virtqueues + fabric + SSD) never
//   touches the bus or the memory controller, so its tail latency stays flat.
//   Centralized: every victim I/O needs kernel mediation (submit syscall +
//   completion interrupt) on the same cores the noise is grinding, so the
//   victim's p99 grows with M.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace lastcpu {
namespace {

using benchutil::StubDevice;

constexpr int kVictimOps = 200;

// Noise tenant: endless alloc/free loop until *stop becomes true.
template <typename AllocFn, typename FreeFn>
void NoiseLoop(AllocFn alloc, FreeFn free_fn, const bool* stop,
               std::shared_ptr<uint64_t> noise_ops) {
  if (*stop) {
    return;
  }
  alloc([=](Result<VirtAddr> r) {
    if (!r.ok()) {
      return;
    }
    free_fn(*r, [=](Status) {
      ++*noise_ops;
      NoiseLoop(alloc, free_fn, stop, noise_ops);
    });
  });
}

void Isolation_Decentralized(benchmark::State& state) {
  auto noisy_tenants = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    core::Machine machine;
    auto& memctrl = machine.AddMemoryController();
    ssddev::SmartSsdConfig ssd_config;
    ssd_config.host_auth_service = false;
    auto& ssd = machine.AddSmartSsd(ssd_config);
    ssd.ProvisionFile("victim.dat", std::vector<uint8_t>(64 << 10, 0x42));
    auto& victim = machine.Emplace<StubDevice>("victim");
    std::vector<StubDevice*> noisy;
    for (size_t i = 0; i < noisy_tenants; ++i) {
      noisy.push_back(&machine.Emplace<StubDevice>("noise" + std::to_string(i)));
    }
    machine.Boot();

    // Victim opens its file session (unmeasured bring-up).
    ssddev::FileClient file(&victim, Pasid(1));
    victim.doorbell_sink = &file;
    file.Open("victim.dat", 0, [](Status s) { LASTCPU_CHECK(s.ok(), "open failed"); });
    machine.RunUntilIdle();

    // Noise: alloc/free storms through the bus to the memory controller.
    bool stop = false;
    auto noise_ops = std::make_shared<uint64_t>(0);
    std::vector<std::unique_ptr<core::BusControlClient>> clients;
    for (size_t i = 0; i < noisy_tenants; ++i) {
      clients.push_back(std::make_unique<core::BusControlClient>(noisy[i], memctrl.id()));
      core::BusControlClient* client = clients.back().get();
      Pasid pasid(static_cast<uint32_t>(100 + i));
      NoiseLoop(
          [client, pasid](auto cb) { client->Alloc(pasid, 4 * kPageSize, cb); },
          [client, pasid](VirtAddr va, auto cb) { client->Free(pasid, va, 4 * kPageSize, cb); },
          &stop, noise_ops);
    }

    // Victim: closed-loop 256-byte reads; measure tail latency.
    sim::Histogram latency;
    int remaining = kVictimOps;
    sim::SimTime start = machine.simulator().Now();
    std::function<void()> read_next = [&] {
      if (remaining-- == 0) {
        stop = true;
        return;
      }
      sim::SimTime t0 = machine.simulator().Now();
      file.ReadAt(static_cast<uint64_t>(remaining % 200) * 256, 256,
                  [&, t0](Result<std::vector<uint8_t>> r) {
                    LASTCPU_CHECK(r.ok(), "victim read failed");
                    latency.Record(machine.simulator().Now() - t0);
                    read_next();
                  });
    };
    read_next();
    machine.RunUntilIdle();
    state.SetIterationTime((machine.simulator().Now() - start).seconds());
    benchutil::ReportLatency(state, latency, "victim_");
    state.counters["noise_ops"] = static_cast<double>(*noise_ops);
  }
  state.counters["noisy_tenants"] = static_cast<double>(noisy_tenants);
  state.counters["design"] = 0;
}

void Isolation_Centralized(benchmark::State& state) {
  auto noisy_tenants = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    mem::PhysicalMemory memory(256 << 20);
    baseline::CentralKernel kernel(&simulator, &memory);  // 1 core
    std::vector<std::unique_ptr<iommu::Iommu>> iommus;
    for (uint32_t i = 0; i < noisy_tenants + 1; ++i) {
      DeviceId id(i + 1);
      iommus.push_back(std::make_unique<iommu::Iommu>(id));
      kernel.RegisterDevice(id, iommus.back().get());
    }

    bool stop = false;
    auto noise_ops = std::make_shared<uint64_t>(0);
    std::vector<std::unique_ptr<core::KernelControlClient>> clients;
    for (size_t i = 0; i < noisy_tenants; ++i) {
      clients.push_back(
          std::make_unique<core::KernelControlClient>(&kernel, DeviceId(2 + static_cast<uint32_t>(i))));
      core::KernelControlClient* client = clients.back().get();
      Pasid pasid(static_cast<uint32_t>(100 + i));
      NoiseLoop(
          [client, pasid](auto cb) { client->Alloc(pasid, 4 * kPageSize, cb); },
          [client, pasid](VirtAddr va, auto cb) { client->Free(pasid, va, 4 * kPageSize, cb); },
          &stop, noise_ops);
    }

    // Victim: each I/O = submit syscall -> device time (NAND-read-ish) ->
    // completion interrupt, all sharing the kernel's core with the noise.
    sim::Histogram latency;
    int remaining = kVictimOps;
    constexpr sim::Duration kDeviceTime = sim::Duration::Micros(55);
    sim::SimTime start = simulator.Now();
    std::function<void()> read_next = [&] {
      if (remaining-- == 0) {
        stop = true;
        return;
      }
      sim::SimTime t0 = simulator.Now();
      kernel.MediateIo(sim::Duration::Nanos(500), [&, t0] {  // submit path
        simulator.Schedule(kDeviceTime, [&, t0] {            // the device works
          kernel.MediateIo(sim::Duration::Nanos(500), [&, t0] {  // completion irq
            latency.Record(simulator.Now() - t0);
            read_next();
          });
        });
      });
    };
    read_next();
    simulator.Run();
    state.SetIterationTime((simulator.Now() - start).seconds());
    benchutil::ReportLatency(state, latency, "victim_");
    state.counters["noise_ops"] = static_cast<double>(*noise_ops);
  }
  state.counters["noisy_tenants"] = static_cast<double>(noisy_tenants);
  state.counters["design"] = 1;
}

BENCHMARK(Isolation_Decentralized)
    ->UseManualTime()
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond)
    ->Arg(0)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8);

BENCHMARK(Isolation_Centralized)
    ->UseManualTime()
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond)
    ->Arg(0)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8);

}  // namespace
}  // namespace lastcpu

BENCHMARK_MAIN();
