// E1 (paper Figure 2): the KVS initialization sequence.
//
// Measures the full seven-step handshake — discover the file's owner, open
// the service instance, allocate shared memory, bus-program the IOMMU, grant
// to the provider, attach the VIRTIO queue — on the decentralized machine,
// against the same logical sequence mediated by a centralized kernel.
//
// Reported time is SIMULATED time (manual-time mode).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "src/ssddev/file_client.h"

namespace lastcpu {
namespace {

using benchutil::StubDevice;

struct InitRig {
  core::Machine machine;
  ssddev::SmartSsd* ssd;
  StubDevice* client_device;

  InitRig() {
    machine.AddMemoryController();
    ssddev::SmartSsdConfig ssd_config;
    ssd_config.host_auth_service = false;
    ssd = &machine.AddSmartSsd(ssd_config);
    ssd->ProvisionFile("kv.log", {});
    client_device = &machine.Emplace<StubDevice>("nic-stub");
    machine.Boot();
  }
};

void Fig2Init_Decentralized(benchmark::State& state) {
  InitRig rig;
  uint32_t pasid_seq = 1;
  for (auto _ : state) {
    // Fresh application each round (fresh PASID, fresh session).
    Pasid pasid(pasid_seq++);
    ssddev::FileClient client(rig.client_device, pasid);
    rig.client_device->doorbell_sink = &client;
    sim::SimTime start = rig.machine.simulator().Now();
    bool done = false;
    client.Open("kv.log", 0, [&](Status s) {
      LASTCPU_CHECK(s.ok(), "open failed: %s", s.ToString().c_str());
      done = true;
    });
    rig.machine.RunUntilIdle();
    LASTCPU_CHECK(done, "open never completed");
    sim::Duration elapsed = rig.machine.simulator().Now() - start;
    state.SetIterationTime(elapsed.seconds());
    // Tear the session down outside the measured region.
    client.Close([](Status) {});
    rig.machine.RunUntilIdle();
    rig.machine.TeardownApplication(pasid);
    rig.machine.RunUntilIdle();
  }
  state.counters["design"] = 0;  // 0 = decentralized
}

void Fig2Init_Centralized(benchmark::State& state) {
  // The same logical steps, but every one is a kernel entry on a CPU with
  // state.range(0) cores: lookup (discovery is a kernel table), open
  // (mediated), alloc+map, grant+map, attach (mediated).
  sim::Simulator simulator;
  mem::PhysicalMemory memory(64 << 20);
  baseline::CentralKernelConfig config;
  config.cores = static_cast<uint32_t>(state.range(0));
  baseline::CentralKernel kernel(&simulator, &memory, config);
  iommu::Iommu nic_iommu(DeviceId(1));
  iommu::Iommu ssd_iommu(DeviceId(2));
  kernel.RegisterDevice(DeviceId(1), &nic_iommu);
  kernel.RegisterDevice(DeviceId(2), &ssd_iommu);

  uint32_t pasid_seq = 1;
  const uint64_t session_bytes = ssddev::SessionLayout::BytesRequired(64);
  for (auto _ : state) {
    Pasid pasid(pasid_seq++);
    sim::SimTime start = simulator.Now();
    bool done = false;
    // discover -> open -> alloc -> grant -> attach, each through the kernel.
    kernel.MediateIo(sim::Duration::Nanos(400), [&] {       // discovery lookup
      kernel.MediateIo(sim::Duration::Nanos(600), [&] {     // open, relayed to SSD
        kernel.AllocMemory(DeviceId(1), pasid, session_bytes, [&](Result<VirtAddr> vaddr) {
          LASTCPU_CHECK(vaddr.ok(), "alloc failed");
          kernel.Grant(DeviceId(1), pasid, *vaddr, session_bytes, DeviceId(2), Access::kReadWrite,
                       [&](Status granted) {
                         LASTCPU_CHECK(granted.ok(), "grant failed");
                         kernel.MediateIo(sim::Duration::Nanos(400), [&] {  // attach
                           done = true;
                         });
                       });
        });
      });
    });
    simulator.Run();
    LASTCPU_CHECK(done, "sequence never completed");
    state.SetIterationTime((simulator.Now() - start).seconds());
    kernel.Teardown(pasid, [](Status) {});
    simulator.Run();
  }
  state.counters["design"] = 1;  // 1 = centralized
  state.counters["cores"] = static_cast<double>(state.range(0));
}

BENCHMARK(Fig2Init_Decentralized)->UseManualTime()->Iterations(30)->Unit(benchmark::kMicrosecond);
BENCHMARK(Fig2Init_Centralized)
    ->UseManualTime()
    ->Iterations(30)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(1)
    ->Arg(4);

}  // namespace
}  // namespace lastcpu

BENCHMARK_MAIN();
