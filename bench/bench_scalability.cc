// E5: scalability with device count.
//
// Measures (a) cold boot — power-on to every device alive and announced —
// and (b) system-wide discovery: one device broadcasting and collecting
// responders, as devices scale 2..64. The decentralized design's boot is
// embarrassingly parallel (every device self-tests concurrently and the bus
// records liveness); discovery cost grows with responder count but stays
// microseconds.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace lastcpu {
namespace {

using benchutil::StubDevice;

// A stub that also exposes a discoverable compute service.
class ServiceStub : public dev::Device {
 public:
  ServiceStub(DeviceId id, const dev::DeviceContext& context, std::string name)
      : dev::Device(id, name, context) {
    class TinyService : public dev::Service {
     public:
      TinyService(DeviceId provider, std::string service_name)
          : Service(proto::ServiceDescriptor{provider, proto::ServiceType::kCompute,
                                             std::move(service_name), 0}) {}
      Result<proto::OpenResponse> Open(DeviceId client,
                                       const proto::OpenRequest& request) override {
        auto instance = CreateInstance(client, request.pasid, request.resource);
        if (!instance.ok()) {
          return instance.status();
        }
        return proto::OpenResponse{*instance, 0, 0};
      }
    };
    AddService(std::make_unique<TinyService>(id, name + "-svc"));
  }
};

void Scalability_Boot(benchmark::State& state) {
  auto devices = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    core::Machine machine;
    machine.AddMemoryController();
    for (size_t i = 0; i < devices; ++i) {
      machine.Emplace<ServiceStub>("dev" + std::to_string(i));
    }
    sim::SimTime start = machine.simulator().Now();
    machine.Boot();
    state.SetIterationTime((machine.simulator().Now() - start).seconds());
    // Verify: everything is alive.
    uint64_t alive = 0;
    for (const auto& [id, entry] : machine.bus().LivenessSnapshot()) {
      alive += entry.alive ? 1 : 0;
    }
    state.counters["alive"] = static_cast<double>(alive);
  }
  state.counters["devices"] = static_cast<double>(devices);
}

void Scalability_Discovery(benchmark::State& state) {
  auto devices = static_cast<size_t>(state.range(0));
  core::Machine machine;
  machine.AddMemoryController();
  auto& seeker = machine.Emplace<StubDevice>("seeker");
  for (size_t i = 0; i < devices; ++i) {
    machine.Emplace<ServiceStub>("dev" + std::to_string(i));
  }
  machine.Boot();
  for (auto _ : state) {
    sim::SimTime start = machine.simulator().Now();
    size_t found = 0;
    seeker.rpc().Discover(proto::ServiceType::kCompute, "", sim::Duration::Micros(50),
                          [&](std::vector<proto::ServiceDescriptor> services) {
                            found = services.size();
                          });
    machine.RunUntilIdle();
    state.SetIterationTime((machine.simulator().Now() - start).seconds());
    state.counters["responders"] = static_cast<double>(found);
  }
  state.counters["devices"] = static_cast<double>(devices);
}

// Steady-state control throughput as requester count scales (companion to
// E2's offered-load sweep, here with discovery-grade device counts).
void Scalability_ControlOps(benchmark::State& state) {
  auto devices = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    core::Machine machine;
    auto& memctrl = machine.AddMemoryController();
    std::vector<StubDevice*> stubs;
    for (size_t i = 0; i < devices; ++i) {
      stubs.push_back(&machine.Emplace<StubDevice>("dev" + std::to_string(i)));
    }
    machine.Boot();
    std::vector<std::unique_ptr<core::BusControlClient>> clients;
    std::vector<benchutil::ControlLoadRunner::PerClient> per_client;
    for (size_t i = 0; i < devices; ++i) {
      clients.push_back(std::make_unique<core::BusControlClient>(stubs[i], memctrl.id()));
      per_client.push_back({clients.back().get(), Pasid(static_cast<uint32_t>(i + 1))});
    }
    sim::SimTime start = machine.simulator().Now();
    benchutil::ControlLoadRunner runner(&machine.simulator(), std::move(per_client), 50);
    runner.Run();
    sim::Duration elapsed = machine.simulator().Now() - start;
    state.SetIterationTime(elapsed.seconds());
    state.counters["ops_per_sec"] = static_cast<double>(runner.completed()) / elapsed.seconds();
  }
  state.counters["devices"] = static_cast<double>(devices);
}

BENCHMARK(Scalability_Boot)
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(2)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64);

BENCHMARK(Scalability_Discovery)
    ->UseManualTime()
    ->Iterations(5)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(2)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64);

BENCHMARK(Scalability_ControlOps)
    ->UseManualTime()
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Arg(64);

}  // namespace
}  // namespace lastcpu

BENCHMARK_MAIN();
