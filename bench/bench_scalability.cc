// E5: scalability with device count — now up to a full rack.
//
// Three legacy flat-machine series (kept for continuity with earlier
// snapshots): (a) cold boot — power-on to every device alive; (b) system-wide
// discovery; (c) steady-state control throughput against ONE memory
// controller. The decentralized design's boot is embarrassingly parallel;
// discovery cost grows with responder count but stays microseconds; a single
// controller saturates near 1M ops/s.
//
// The rack series are the headline: 64..1024 devices spread over
// kRackSegments bus segments, with physical memory carved into
// memory-controller shards (ShardedControlClient, home-node policy), against
// the centralized baseline — a 4-core kernel on segment 0 whose off-segment
// interrupts pay the same inter-chassis hop the bus charges. The decentralized
// curve keeps scaling with shard count where the kernel's run queue flattens.
// Closed-loop rows measure saturation throughput; open-loop rows offer a
// fixed Poisson load and surface the queueing collapse of the flattened
// design as p99.
//
// Custom main:
//   --quick         shrink per-device op counts for CI smoke runs.
//   --devices=N     head-to-head smoke: run the rack comparison at N devices
//                   and exit nonzero unless decentralized ops/s beats the
//                   centralized baseline. Prints one summary line.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace lastcpu {
namespace {

using benchutil::ControlLoadRunner;
using benchutil::StubDevice;

uint64_t g_rack_ops_per_device = 40;

// Chassis count for every rack series; shard count scales with the fleet so
// per-shard load stays comparable across rows.
constexpr uint32_t kRackSegments = 4;

uint32_t ShardsFor(size_t devices) { return devices >= 512 ? 8 : 4; }

// Offered load per device for the open-loop rack rows. At 1024 devices this
// totals ~2.5M ops/s: under the sharded fabric's capacity, past what four
// kernel cores can retire — the regime the paper argues about.
constexpr sim::Duration kRackOpenLoopInterarrival = sim::Duration::Micros(400);

// A stub that also exposes a discoverable compute service.
class ServiceStub : public dev::Device {
 public:
  ServiceStub(DeviceId id, const dev::DeviceContext& context, std::string name)
      : dev::Device(id, name, context) {
    class TinyService : public dev::Service {
     public:
      TinyService(DeviceId provider, std::string service_name)
          : Service(proto::ServiceDescriptor{provider, proto::ServiceType::kCompute,
                                             std::move(service_name), 0}) {}
      Result<proto::OpenResponse> Open(DeviceId client,
                                       const proto::OpenRequest& request) override {
        auto instance = CreateInstance(client, request.pasid, request.resource);
        if (!instance.ok()) {
          return instance.status();
        }
        return proto::OpenResponse{*instance, 0, 0};
      }
    };
    AddService(std::make_unique<TinyService>(id, name + "-svc"));
  }
};

void Scalability_Boot(benchmark::State& state) {
  auto devices = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    core::Machine machine;
    machine.AddMemoryController();
    for (size_t i = 0; i < devices; ++i) {
      machine.Emplace<ServiceStub>("dev" + std::to_string(i));
    }
    sim::SimTime start = machine.simulator().Now();
    machine.Boot();
    state.SetIterationTime((machine.simulator().Now() - start).seconds());
    // Verify: everything is alive.
    uint64_t alive = 0;
    for (const auto& [id, entry] : machine.bus().LivenessSnapshot()) {
      alive += entry.alive ? 1 : 0;
    }
    state.counters["alive"] = static_cast<double>(alive);
  }
  state.counters["devices"] = static_cast<double>(devices);
}

void Scalability_Discovery(benchmark::State& state) {
  auto devices = static_cast<size_t>(state.range(0));
  core::Machine machine;
  machine.AddMemoryController();
  auto& seeker = machine.Emplace<StubDevice>("seeker");
  for (size_t i = 0; i < devices; ++i) {
    machine.Emplace<ServiceStub>("dev" + std::to_string(i));
  }
  machine.Boot();
  for (auto _ : state) {
    sim::SimTime start = machine.simulator().Now();
    size_t found = 0;
    seeker.rpc().Discover(proto::ServiceType::kCompute, "", sim::Duration::Micros(50),
                          [&](std::vector<proto::ServiceDescriptor> services) {
                            found = services.size();
                          });
    machine.RunUntilIdle();
    state.SetIterationTime((machine.simulator().Now() - start).seconds());
    state.counters["responders"] = static_cast<double>(found);
  }
  state.counters["devices"] = static_cast<double>(devices);
}

// Steady-state control throughput as requester count scales — the legacy
// single-controller row, the curve the rack series un-flattens.
void Scalability_ControlOps(benchmark::State& state) {
  auto devices = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    core::Machine machine;
    auto& memctrl = machine.AddMemoryController();
    std::vector<StubDevice*> stubs;
    for (size_t i = 0; i < devices; ++i) {
      stubs.push_back(&machine.Emplace<StubDevice>("dev" + std::to_string(i)));
    }
    machine.Boot();
    std::vector<std::unique_ptr<core::BusControlClient>> clients;
    std::vector<benchutil::ControlLoadRunner::PerClient> per_client;
    for (size_t i = 0; i < devices; ++i) {
      clients.push_back(std::make_unique<core::BusControlClient>(stubs[i], memctrl.id()));
      per_client.push_back({clients.back().get(), Pasid(static_cast<uint32_t>(i + 1))});
    }
    sim::SimTime start = machine.simulator().Now();
    benchutil::ControlLoadRunner runner(&machine.simulator(), std::move(per_client), 50);
    runner.Run();
    sim::Duration elapsed = machine.simulator().Now() - start;
    state.SetIterationTime(elapsed.seconds());
    state.counters["ops_per_sec"] = static_cast<double>(runner.completed()) / elapsed.seconds();
  }
  state.counters["devices"] = static_cast<double>(devices);
}

// --- the rack series ---------------------------------------------------------

struct RackResult {
  double ops_per_sec = 0;
  double elapsed_seconds = 0;
  double p50_us = 0;
  double p99_us = 0;
  uint64_t completed = 0;
  uint64_t spills = 0;
  uint64_t cross_segment_msgs = 0;
};

// N stub devices spread evenly over kRackSegments chassis, memory carved into
// ShardsFor(N) controller shards, one home-node ShardedControlClient per
// device driving alloc/free pairs.
RackResult RunRackDecentralized(size_t devices, uint64_t ops_each,
                                sim::Duration interarrival) {
  core::MachineConfig config;
  config.topology.segments = kRackSegments;
  config.topology.memory_shards = ShardsFor(devices);
  core::Machine machine(config);
  std::vector<StubDevice*> stubs;
  stubs.reserve(devices);
  for (size_t i = 0; i < devices; ++i) {
    auto segment = static_cast<uint32_t>(i % kRackSegments);
    stubs.push_back(
        &machine.EmplaceOn<StubDevice>(segment, "dev" + std::to_string(i)));
  }
  machine.Boot();

  std::vector<std::unique_ptr<core::ShardedControlClient>> clients;
  std::vector<ControlLoadRunner::PerClient> per_client;
  clients.reserve(devices);
  for (size_t i = 0; i < devices; ++i) {
    clients.push_back(std::make_unique<core::ShardedControlClient>(
        stubs[i], machine.shard_infos(), core::AllocationPolicy::kHomeNode));
    per_client.push_back({clients.back().get(), Pasid(static_cast<uint32_t>(i + 1))});
  }
  sim::SimTime start = machine.simulator().Now();
  ControlLoadRunner::Options options;
  options.ops_each = ops_each;
  options.mean_interarrival = interarrival;
  ControlLoadRunner runner(&machine.simulator(), std::move(per_client), options);
  runner.Run();
  sim::Duration elapsed = machine.simulator().Now() - start;

  RackResult result;
  result.elapsed_seconds = elapsed.seconds();
  result.completed = runner.completed();
  result.ops_per_sec = static_cast<double>(runner.completed()) / elapsed.seconds();
  result.p50_us = static_cast<double>(runner.latency().p50()) / 1e3;
  result.p99_us = static_cast<double>(runner.latency().p99()) / 1e3;
  for (const auto& client : clients) {
    result.spills += client->spills();
  }
  for (const auto& counters : machine.bus().segment_counters()) {
    result.cross_segment_msgs += counters.routed_out;
  }
  return result;
}

// The same fleet against one 4-core kernel on segment 0; devices on the other
// chassis pay the cross-segment interrupt hop on every syscall.
RackResult RunRackCentralized(size_t devices, uint32_t cores, uint64_t ops_each,
                              sim::Duration interarrival) {
  sim::Simulator simulator;
  mem::PhysicalMemory memory(256 << 20);
  baseline::CentralKernelConfig config;
  config.cores = cores;
  config.cross_segment_interrupt_extra = sim::Duration::Nanos(400);
  baseline::CentralKernel kernel(&simulator, &memory, config);
  std::vector<std::unique_ptr<iommu::Iommu>> iommus;
  std::vector<std::unique_ptr<core::KernelControlClient>> clients;
  std::vector<ControlLoadRunner::PerClient> per_client;
  for (size_t i = 0; i < devices; ++i) {
    auto segment = static_cast<uint32_t>(i % kRackSegments);
    auto local = static_cast<uint32_t>(i / kRackSegments) + 1;
    DeviceId id = segment == 0 ? DeviceId(local) : MakeSegmentDeviceId(segment, local);
    iommus.push_back(std::make_unique<iommu::Iommu>(id));
    kernel.RegisterDevice(id, iommus.back().get());
    clients.push_back(std::make_unique<core::KernelControlClient>(&kernel, id));
    per_client.push_back({clients.back().get(), Pasid(static_cast<uint32_t>(i + 1))});
  }
  sim::SimTime start = simulator.Now();
  ControlLoadRunner::Options options;
  options.ops_each = ops_each;
  options.mean_interarrival = interarrival;
  ControlLoadRunner runner(&simulator, std::move(per_client), options);
  runner.Run();
  sim::Duration elapsed = simulator.Now() - start;

  RackResult result;
  result.elapsed_seconds = elapsed.seconds();
  result.completed = runner.completed();
  result.ops_per_sec = static_cast<double>(runner.completed()) / elapsed.seconds();
  result.p50_us = static_cast<double>(runner.latency().p50()) / 1e3;
  result.p99_us = static_cast<double>(runner.latency().p99()) / 1e3;
  result.cross_segment_msgs = kernel.stats().GetCounter("cross_segment_interrupts").value();
  return result;
}

void ReportRack(benchmark::State& state, const RackResult& result, size_t devices) {
  state.SetIterationTime(result.elapsed_seconds);
  state.counters["ops_per_sec"] = result.ops_per_sec;
  state.counters["p50_us"] = result.p50_us;
  state.counters["p99_us"] = result.p99_us;
  state.counters["cross_segment"] = static_cast<double>(result.cross_segment_msgs);
  state.counters["devices"] = static_cast<double>(devices);
}

void Rack_Decentralized(benchmark::State& state) {
  auto devices = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    RackResult result =
        RunRackDecentralized(devices, g_rack_ops_per_device, sim::Duration::Zero());
    ReportRack(state, result, devices);
    state.counters["spills"] = static_cast<double>(result.spills);
  }
  state.counters["segments"] = kRackSegments;
  state.counters["shards"] = ShardsFor(devices);
}

void Rack_Centralized(benchmark::State& state) {
  auto devices = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    RackResult result =
        RunRackCentralized(devices, 4, g_rack_ops_per_device, sim::Duration::Zero());
    ReportRack(state, result, devices);
  }
  state.counters["cores"] = 4;
}

void Rack_DecentralizedOpenLoop(benchmark::State& state) {
  auto devices = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    RackResult result =
        RunRackDecentralized(devices, g_rack_ops_per_device, kRackOpenLoopInterarrival);
    ReportRack(state, result, devices);
    state.counters["spills"] = static_cast<double>(result.spills);
  }
  state.counters["segments"] = kRackSegments;
  state.counters["shards"] = ShardsFor(devices);
}

void Rack_CentralizedOpenLoop(benchmark::State& state) {
  auto devices = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    RackResult result =
        RunRackCentralized(devices, 4, g_rack_ops_per_device, kRackOpenLoopInterarrival);
    ReportRack(state, result, devices);
  }
  state.counters["cores"] = 4;
}

BENCHMARK(Scalability_Boot)
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(2)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64);

BENCHMARK(Scalability_Discovery)
    ->UseManualTime()
    ->Iterations(5)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(2)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64);

BENCHMARK(Scalability_ControlOps)
    ->UseManualTime()
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Arg(64);

BENCHMARK(Rack_Decentralized)
    ->UseManualTime()
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond)
    ->Arg(64)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024);

BENCHMARK(Rack_Centralized)
    ->UseManualTime()
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond)
    ->Arg(64)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024);

BENCHMARK(Rack_DecentralizedOpenLoop)
    ->UseManualTime()
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond)
    ->Arg(256)
    ->Arg(1024);

BENCHMARK(Rack_CentralizedOpenLoop)
    ->UseManualTime()
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond)
    ->Arg(256)
    ->Arg(1024);

// Head-to-head smoke for CI: one closed-loop comparison at `devices`. Fails
// (exit 1) unless the sharded rack beats the 4-core centralized baseline — the
// floor this PR's topology exists to clear.
int RunSmoke(size_t devices) {
  uint64_t ops_each = 20;
  RackResult decentralized = RunRackDecentralized(devices, ops_each, sim::Duration::Zero());
  RackResult centralized = RunRackCentralized(devices, 4, ops_each, sim::Duration::Zero());
  std::printf(
      "rack smoke: devices=%zu segments=%u shards=%u decentralized_ops_per_sec=%.0f "
      "centralized_ops_per_sec=%.0f p99_us=%.2f/%.2f\n",
      devices, kRackSegments, ShardsFor(devices), decentralized.ops_per_sec,
      centralized.ops_per_sec, decentralized.p99_us, centralized.p99_us);
  if (decentralized.completed != devices * ops_each) {
    std::printf("FAIL: decentralized completed %llu of %llu ops\n",
                static_cast<unsigned long long>(decentralized.completed),
                static_cast<unsigned long long>(devices * ops_each));
    return 1;
  }
  if (decentralized.ops_per_sec <= centralized.ops_per_sec) {
    std::printf("FAIL: decentralized rack did not beat the centralized baseline\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

}  // namespace
}  // namespace lastcpu

// Custom main so CI can pass `--quick` and `--devices=N` (not google-benchmark
// flags): both are stripped from argv before benchmark initialization.
int main(int argc, char** argv) {
  long smoke_devices = 0;
  for (int i = 1; i < argc;) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      lastcpu::g_rack_ops_per_device = 10;
      for (int j = i; j + 1 < argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --argc;
    } else if (std::strncmp(argv[i], "--devices=", 10) == 0) {
      smoke_devices = std::strtol(argv[i] + 10, nullptr, 10);
      for (int j = i; j + 1 < argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --argc;
    } else {
      ++i;
    }
  }
  if (smoke_devices > 0) {
    return lastcpu::RunSmoke(static_cast<size_t>(smoke_devices));
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
