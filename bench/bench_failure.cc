// E6: error handling without a CPU (paper Sec. 4).
//
// Kills the smart SSD under a live KVS application and measures, on the
// decentralized machine: (a) failure-notification latency (bus broadcast to
// all survivors) and (b) full application recovery — reset line, self-test,
// re-announce, session re-open, log re-scan, first successful GET.
// The centralized comparator pays kernel mediation for the notification
// fan-out and for every step of the re-initialization sequence.
#include <benchmark/benchmark.h>

#include <functional>

#include "bench/bench_util.h"

namespace lastcpu {
namespace {

using benchutil::KvsRig;

// Steps the simulator until `predicate` holds; returns false on queue-drain.
bool StepUntil(sim::Simulator& simulator, const std::function<bool()>& predicate) {
  while (!predicate()) {
    if (!simulator.Step()) {
      return predicate();
    }
  }
  return true;
}

void Failure_DecentralizedNotification(benchmark::State& state) {
  for (auto _ : state) {
    KvsRig rig = KvsRig::Build();
    rig.Preload(10, 64);
    sim::SimTime start = rig.machine->simulator().Now();
    rig.ssd->InjectFailure();
    rig.machine->bus().ReportDeviceFailure(rig.ssd->id());
    // Notification has landed once the NIC's app observed the peer failure
    // (the engine stops).
    bool notified = StepUntil(rig.machine->simulator(),
                              [&] { return !rig.app->engine().running(); });
    LASTCPU_CHECK(notified, "NIC never learned of the failure");
    state.SetIterationTime((rig.machine->simulator().Now() - start).seconds());
  }
  state.counters["design"] = 0;
}

void Failure_DecentralizedFullRecovery(benchmark::State& state) {
  for (auto _ : state) {
    KvsRig rig = KvsRig::Build();
    rig.Preload(50, 128);
    sim::SimTime start = rig.machine->simulator().Now();
    rig.ssd->InjectFailure();
    rig.machine->bus().ReportDeviceFailure(rig.ssd->id());
    // First the failure notice lands (engine stops), then recovery completes.
    bool stopped = StepUntil(rig.machine->simulator(),
                             [&] { return !rig.app->engine().running(); });
    LASTCPU_CHECK(stopped, "NIC never learned of the failure");
    bool recovered = StepUntil(rig.machine->simulator(),
                               [&] { return rig.app->engine().running(); });
    LASTCPU_CHECK(recovered, "app never recovered");
    bool got = false;
    rig.app->engine().Get(kvs::WorkloadGenerator::KeyFor(7),
                          [&](Result<std::vector<uint8_t>> r) {
                            got = r.ok();
                            if (!r.ok()) {
                              std::fprintf(stderr, "GET failed: %s\n", r.status().ToString().c_str());
                            }
                          });
    rig.machine->RunUntilIdle();
    LASTCPU_CHECK(got, "data lost across recovery");
    state.SetIterationTime((rig.machine->simulator().Now() - start).seconds());
    state.counters["recoveries"] = static_cast<double>(rig.app->recoveries());
  }
  state.counters["design"] = 0;
}

void Failure_CentralizedRecovery(benchmark::State& state) {
  // The kernel hears the failure interrupt, notifies `consumers` one by one,
  // then re-runs the centralized init sequence (E1) plus the same device-side
  // re-scan time the decentralized app pays.
  auto consumers = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    mem::PhysicalMemory memory(64 << 20);
    baseline::CentralKernel kernel(&simulator, &memory);
    iommu::Iommu nic_iommu(DeviceId(1));
    iommu::Iommu ssd_iommu(DeviceId(2));
    kernel.RegisterDevice(DeviceId(1), &nic_iommu);
    kernel.RegisterDevice(DeviceId(2), &ssd_iommu);

    constexpr sim::Duration kSelfTest = sim::Duration::Micros(50);
    constexpr sim::Duration kLogScan = sim::Duration::Micros(120);
    const uint64_t session_bytes = ssddev::SessionLayout::BytesRequired(64);

    sim::SimTime start = simulator.Now();
    bool done = false;
    // Recursive notifier shared across scheduled steps (a plain local would
    // be destroyed before the simulator runs the continuations).
    auto notify = std::make_shared<std::function<void(size_t)>>();
    *notify = [&, notify](size_t remaining) {
      if (remaining == 0) {
        // Device self-test, then kernel-driven re-init + re-scan.
        simulator.Schedule(kSelfTest, [&] {
          kernel.MediateIo(sim::Duration::Nanos(600), [&] {  // re-open
            kernel.AllocMemory(DeviceId(1), Pasid(1), session_bytes,
                               [&](Result<VirtAddr> vaddr) {
                                 kernel.Grant(DeviceId(1), Pasid(1), *vaddr, session_bytes,
                                              DeviceId(2), Access::kReadWrite, [&](Status) {
                                                simulator.Schedule(kLogScan,
                                                                   [&] { done = true; });
                                              });
                               });
          });
        });
        return;
      }
      kernel.MediateIo(sim::Duration::Nanos(700),
                       [notify, remaining] { (*notify)(remaining - 1); });
    };
    // Failure interrupt kicks the fan-out.
    kernel.MediateIo(sim::Duration::Micros(1), [notify, consumers] { (*notify)(consumers); });
    simulator.Run();
    LASTCPU_CHECK(done, "centralized recovery never completed");
    state.SetIterationTime((simulator.Now() - start).seconds());
  }
  state.counters["consumers"] = static_cast<double>(consumers);
  state.counters["design"] = 1;
}

BENCHMARK(Failure_DecentralizedNotification)
    ->UseManualTime()
    ->Iterations(5)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(Failure_DecentralizedFullRecovery)
    ->UseManualTime()
    ->Iterations(5)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(Failure_CentralizedRecovery)
    ->UseManualTime()
    ->Iterations(5)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32);

}  // namespace
}  // namespace lastcpu

BENCHMARK_MAIN();
