// Host-performance benchmark: how fast does the simulator itself run?
//
// Every other bench reports *simulated* time; this one reports wall-clock
// throughput of the discrete-event engine (events/second on the host) while
// driving a KVS burst through the full machine, batched vs unbatched. The
// batching fast paths exist to cut modeled costs, but they also collapse the
// event count per op (fewer DMA transfers and doorbells = fewer scheduled
// events), so they speed up the simulation itself — this bench quantifies
// both: wall-clock events/sec, plus the per-op doorbell and DMA-transfer
// counts the E-batch experiment quotes.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"

namespace lastcpu {
namespace {

using benchutil::KvsRig;

constexpr uint64_t kKeys = 200;
constexpr uint64_t kBurstOps = 2000;
constexpr uint32_t kValueBytes = 256;
// Window sizing: coalescing merges only what arrives within one window, so
// the window must exceed the device's completion inter-arrival time (~60us
// here — GETs at NAND-read speed across 4 dies) to batch the steady state.
// 250us is NVMe-style interrupt moderation: ~4 completions per trailing
// doorbell at this op rate, with throughput set by flash, not the window.
constexpr sim::Duration kBatchWindow = sim::Duration::Micros(250);

KvsRig BuildRig(bool batched) {
  core::MachineConfig machine_config;
  kvs::KvsAppConfig app_config;
  if (batched) {
    machine_config.fabric.doorbell_coalesce_window = kBatchWindow;
    machine_config.fast_path.submit_batch_window = kBatchWindow;
    machine_config.fast_path.completion_batch_window = kBatchWindow;
    app_config.engine.file_client.submit_batch_window = kBatchWindow;
  }
  return KvsRig::Build(machine_config, app_config);
}

void RunBurst(benchmark::State& state, bool batched) {
  for (auto _ : state) {
    KvsRig rig = BuildRig(batched);
    rig.Preload(kKeys, kValueBytes);

    sim::StatsSnapshot fabric_before = rig.machine->fabric().stats().Snapshot();
    uint64_t events_before = rig.machine->simulator().events_executed();
    sim::SimTime sim_start = rig.machine->simulator().Now();
    auto wall_start = std::chrono::steady_clock::now();

    // The burst: issue everything up front (the engine queues ops beyond the
    // session's slot budget), then drain. Read-heavy, the canonical KVS
    // serving pattern: GETs fan out across NAND dies and the device read
    // cache, so completions arrive densely and the batching windows have
    // something to merge. PUTs are paced by the active log block's NAND
    // program time regardless of batching, so a write-heavy burst measures
    // flash, not the fast path; a 1-in-8 PUT mix keeps the log warm without
    // letting programs set the pace.
    uint64_t completed = 0;
    for (uint64_t i = 0; i < kBurstOps; ++i) {
      const std::string key = kvs::WorkloadGenerator::KeyFor(i % kKeys);
      if (i % 8 != 0) {
        rig.app->engine().Get(key, [&completed](Result<std::vector<uint8_t>> r) {
          LASTCPU_CHECK(r.ok(), "burst get failed");
          ++completed;
        });
      } else {
        rig.app->engine().Put(key, std::vector<uint8_t>(kValueBytes, static_cast<uint8_t>(i)),
                              [&completed](Status s) {
                                LASTCPU_CHECK(s.ok(), "burst put failed");
                                ++completed;
                              });
      }
    }
    rig.machine->RunUntilIdle();
    LASTCPU_CHECK(completed == kBurstOps, "burst never finished");

    auto wall_elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                      wall_start)
                            .count();
    uint64_t events = rig.machine->simulator().events_executed() - events_before;
    sim::Duration sim_elapsed = rig.machine->simulator().Now() - sim_start;
    sim::StatsSnapshot fabric =
        rig.machine->fabric().stats().Snapshot().DeltaSince(fabric_before);

    state.SetIterationTime(wall_elapsed);
    double ops = static_cast<double>(kBurstOps);
    state.counters["events_per_sec_wall"] = static_cast<double>(events) / wall_elapsed;
    state.counters["events_per_op"] = static_cast<double>(events) / ops;
    state.counters["sim_ops_per_sec"] = ops / sim_elapsed.seconds();
    state.counters["doorbells_per_op"] =
        static_cast<double>(fabric.counters["doorbells"]) / ops;
    state.counters["dma_transfers_per_op"] =
        static_cast<double>(fabric.counters["dma_writes"] + fabric.counters["dma_reads"]) / ops;
    state.counters["sg_segments"] = static_cast<double>(fabric.counters["dma_sg_segments"]);
    state.counters["client_flushes"] =
        static_cast<double>(rig.nic->stats().GetCounter("file_client_batch_flushes").value());
    state.counters["service_flushes"] =
        static_cast<double>(rig.ssd->stats().GetCounter("file_service_batch_flushes").value());
    state.counters["queued_peak"] = static_cast<double>(rig.app->engine().queued_ops());
  }
  state.counters["batched"] = batched ? 1 : 0;
}

// Slowest unbatched events/sec seen this run; the --min-events-per-sec floor
// below is checked against it after the benchmarks finish.
double g_min_unbatched_events_per_sec = 0.0;

void SimHostPerf_KvsBurst_Unbatched(benchmark::State& state) {
  RunBurst(state, false);
  g_min_unbatched_events_per_sec = state.counters["events_per_sec_wall"];
}
void SimHostPerf_KvsBurst_Batched(benchmark::State& state) { RunBurst(state, true); }

BENCHMARK(SimHostPerf_KvsBurst_Unbatched)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(SimHostPerf_KvsBurst_Batched)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lastcpu

// Custom main so CI can enforce a host-throughput floor: with
// `--min-events-per-sec=N` the process exits nonzero when the unbatched burst
// executes fewer simulator events per wall-clock second than N. The floor is
// deliberately far below a healthy run — it exists to catch order-of-magnitude
// engine regressions, not scheduler jitter.
int main(int argc, char** argv) {
  double floor_events_per_sec = 0.0;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr std::string_view kFlag = "--min-events-per-sec=";
    std::string_view arg = argv[i];
    if (arg.substr(0, kFlag.size()) == kFlag) {
      floor_events_per_sec = std::strtod(arg.substr(kFlag.size()).data(), nullptr);
    } else {
      argv[kept++] = argv[i];  // hand everything else to the benchmark library
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (floor_events_per_sec > 0.0 &&
      lastcpu::g_min_unbatched_events_per_sec < floor_events_per_sec) {
    std::fprintf(stderr,
                 "FAIL: unbatched host throughput %.0f events/sec is below the floor %.0f\n",
                 lastcpu::g_min_unbatched_events_per_sec, floor_events_per_sec);
    return 1;
  }
  return 0;
}
