// E7: address-translation costs — the mechanism the whole design leans on
// (paper Sec. 2.2: "address translation remains the cornerstone of data
// isolation").
//
// These are host-time microbenchmarks of the actual IOMMU data structures:
// TLB-hit and table-walk translation rates, fault delivery, map/unmap rates,
// and TLB-geometry sensitivity (hit rate under working sets that do and do
// not fit).
#include <benchmark/benchmark.h>

#include "src/iommu/iommu.h"
#include "src/sim/rng.h"

namespace lastcpu {
namespace {

using iommu::Iommu;
using iommu::ProgrammingKey;
using iommu::TlbConfig;

void Iommu_TranslateTlbHit(benchmark::State& state) {
  Iommu unit(DeviceId(1), TlbConfig{64, 8});
  ProgrammingKey key = ProgrammingKey::CreateForTesting();
  for (uint64_t v = 0; v < 16; ++v) {
    (void)unit.Map(key, Pasid(1), v, 100 + v, Access::kReadWrite);
  }
  uint64_t v = 0;
  for (auto _ : state) {
    auto t = unit.Translate(Pasid(1), VirtAddr((v & 15) << kPageShift), Access::kRead);
    benchmark::DoNotOptimize(t);
    ++v;
  }
  state.counters["hit_rate"] = unit.tlb().HitRate();
}

void Iommu_TranslateTableWalk(benchmark::State& state) {
  // Working set far larger than the TLB: almost every access walks.
  Iommu unit(DeviceId(1), TlbConfig{16, 4});
  ProgrammingKey key = ProgrammingKey::CreateForTesting();
  constexpr uint64_t kPages = 8192;
  for (uint64_t v = 0; v < kPages; ++v) {
    (void)unit.Map(key, Pasid(1), v * 512, 100 + v, Access::kReadWrite);
  }
  sim::Rng rng(7);
  for (auto _ : state) {
    uint64_t v = rng.NextBelow(kPages) * 512;
    auto t = unit.Translate(Pasid(1), VirtAddr(v << kPageShift), Access::kRead);
    benchmark::DoNotOptimize(t);
  }
  state.counters["hit_rate"] = unit.tlb().HitRate();
}

void Iommu_FaultDelivery(benchmark::State& state) {
  Iommu unit(DeviceId(1));
  uint64_t faults_seen = 0;
  unit.SetFaultHandler([&](const iommu::FaultInfo&) { ++faults_seen; });
  for (auto _ : state) {
    auto t = unit.Translate(Pasid(1), VirtAddr(0x123000), Access::kRead);
    benchmark::DoNotOptimize(t);
  }
  state.counters["faults"] = static_cast<double>(faults_seen);
}

void Iommu_MapUnmap(benchmark::State& state) {
  Iommu unit(DeviceId(1));
  ProgrammingKey key = ProgrammingKey::CreateForTesting();
  uint64_t v = 0;
  for (auto _ : state) {
    (void)unit.Map(key, Pasid(1), v, v, Access::kReadWrite);
    (void)unit.Unmap(key, Pasid(1), v);
    v = (v + 1) & 0xFFFFF;
  }
}

void Iommu_TlbGeometrySweep(benchmark::State& state) {
  // Fixed 512-page working set against a growing TLB.
  auto sets = static_cast<uint32_t>(state.range(0));
  Iommu unit(DeviceId(1), TlbConfig{sets, 4});
  ProgrammingKey key = ProgrammingKey::CreateForTesting();
  constexpr uint64_t kWorkingSet = 512;
  for (uint64_t v = 0; v < kWorkingSet; ++v) {
    (void)unit.Map(key, Pasid(1), v, v, Access::kReadWrite);
  }
  sim::Rng rng(9);
  for (auto _ : state) {
    uint64_t v = rng.NextBelow(kWorkingSet);
    auto t = unit.Translate(Pasid(1), VirtAddr(v << kPageShift), Access::kRead);
    benchmark::DoNotOptimize(t);
  }
  state.counters["tlb_entries"] = static_cast<double>(sets * 4);
  state.counters["hit_rate"] = unit.tlb().HitRate();
}

void Iommu_PasidSwitching(benchmark::State& state) {
  // Interleaved accesses across N address spaces (devices serve many apps).
  auto pasids = static_cast<uint32_t>(state.range(0));
  Iommu unit(DeviceId(1), TlbConfig{64, 8});
  ProgrammingKey key = ProgrammingKey::CreateForTesting();
  for (uint32_t p = 1; p <= pasids; ++p) {
    for (uint64_t v = 0; v < 8; ++v) {
      (void)unit.Map(key, Pasid(p), v, p * 100 + v, Access::kReadWrite);
    }
  }
  uint64_t i = 0;
  for (auto _ : state) {
    Pasid pasid(static_cast<uint32_t>(i % pasids) + 1);
    auto t = unit.Translate(pasid, VirtAddr((i & 7) << kPageShift), Access::kRead);
    benchmark::DoNotOptimize(t);
    ++i;
  }
  state.counters["hit_rate"] = unit.tlb().HitRate();
}

BENCHMARK(Iommu_TranslateTlbHit);
BENCHMARK(Iommu_TranslateTableWalk);
BENCHMARK(Iommu_FaultDelivery);
BENCHMARK(Iommu_MapUnmap);
BENCHMARK(Iommu_TlbGeometrySweep)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(Iommu_PasidSwitching)->Arg(1)->Arg(4)->Arg(16);

}  // namespace
}  // namespace lastcpu

BENCHMARK_MAIN();
