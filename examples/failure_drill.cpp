// Section-4 error-handling drill: walks every failure class the paper
// enumerates and shows how the CPU-less machine handles each one.
//
//   1. Page fault: an IOMMU fault is delivered to the attached device.
//   2. Recoverable resource failure: the owner notifies consumers and resets
//      the resource; the consumer's app logic recovers.
//   3. Whole-device failure: the bus notifies every other device, pulses the
//      reset line, and the device comes back clean; the app re-opens.
//   4. Power loss: the SSD's rail drops mid-write. In-flight ops fail with
//      kUnavailable (never hang), the volatile mapping table is gone, and
//      the reset pulse recovers it from the on-media OOB log — acked data
//      survives, the torn tail does not.
//   5. Permanent failure: the device crash-loops until the supervisor
//      quarantines it, peers get one DevicePermanentlyFailed notice, the
//      memory controller reclaims whatever the corpse owned, and the KVS
//      app fast-fails with kUnavailable instead of retrying forever.
//   6. Control-plane shard death: a memory-controller shard restarts clean on
//      a rack; the client rides out the blackout by retrying and re-asserts
//      its leases into the new incarnation (epoch-fenced against stale state).
//   7. Network partition: a segment link drops and heals; segment-local
//      traffic proceeds, cross-segment requests fail fast with kPartitioned,
//      and both sides reconcile on heal with no stranded state.
//
//   $ failure_drill
#include <cstdio>
#include <memory>

#include "src/core/control_plane.h"
#include "src/core/machine.h"
#include "src/kvs/kvs_app.h"
#include "src/memdev/shard_layout.h"

using namespace lastcpu;  // NOLINT: example brevity

// A bare device for issuing control-plane traffic from a rack segment.
class DrillClientDevice : public dev::Device {
 public:
  DrillClientDevice(DeviceId id, const dev::DeviceContext& context, std::string name = "drill")
      : dev::Device(id, std::move(name), context) {}
};

// Drill 6: a controller shard dies mid-run and respawns clean. The sharded
// client must ride out the blackout (no kUnavailable surfaces) and rebuild
// the shard's tables from its lease ledger.
void ShardFailoverDrill() {
  std::printf("\n[drill 6] a memory-controller shard restarts on a 2-segment rack\n");
  core::MachineConfig config;
  config.topology.segments = 2;
  sim::CrashSpec kill;
  kill.device = MakeSegmentDeviceId(1, 1).value();
  kill.at = sim::Duration::Micros(500);
  kill.respawn = sim::CrashSpec::Respawn::kClean;
  config.crash_plan.crashes = {kill};

  core::Machine machine(std::move(config));
  auto shards = machine.AddMemoryControllerShards(2);
  auto& requester = machine.EmplaceOn<DrillClientDevice>(1, "seg1-client");
  machine.Boot();

  core::ShardedControlClient client(&requester, machine.shard_infos());
  Pasid pasid = machine.NewApplication("drill");
  auto lease = client.AllocSync(pasid, 4 * kPageSize);
  LASTCPU_CHECK(lease.ok(), "pre-kill allocation failed");
  std::printf("  pre-kill lease on shard %u (home segment)\n",
              static_cast<unsigned>(memdev::ShardForVa(*lease, 2)));

  machine.RunFor(sim::Duration::Micros(520));
  // The shard is dead or rebooting right now; this op races the recovery.
  auto during = client.AllocSync(pasid, 4 * kPageSize);
  std::printf("  allocation during the blackout: %s (%llu whole-op retries, %llu spills "
              "to the surviving shard)\n",
              during.ok() ? "OK" : during.status().ToString().c_str(),
              static_cast<unsigned long long>(client.op_retries()),
              static_cast<unsigned long long>(client.spills()));
  machine.RunFor(sim::Duration::Millis(10));
  machine.RunUntilIdle();
  std::printf("  shard epoch %llu (was 1), leases re-asserted: %llu, lost: %llu\n",
              static_cast<unsigned long long>(shards[1]->epoch()),
              static_cast<unsigned long long>(client.leases_reasserted()),
              static_cast<unsigned long long>(client.leases_lost()));
  std::printf("  pre-kill lease survived the table wipe: %s\n",
              shards[1]->HasAllocationAt(pasid, *lease) ? "yes" : "no");
}

// Drill 7: the inter-segment link partitions, then heals. Local traffic keeps
// flowing, cross-segment requests fail fast with kPartitioned (not a generic
// timeout), and the heal needs no operator intervention.
void PartitionDrill() {
  std::printf("\n[drill 7] the inter-segment link partitions for 2ms, then heals\n");
  core::MachineConfig config;
  config.topology.segments = 2;
  sim::PartitionSpec split;
  split.segment_a = 1;
  split.start = sim::Duration::Micros(400);
  split.heal = sim::Duration::Micros(2400);
  config.fault_plan.partitions = {split};

  core::Machine machine(std::move(config));
  auto shards = machine.AddMemoryControllerShards(2);
  auto& requester = machine.EmplaceOn<DrillClientDevice>(0, "seg0-client");
  machine.Boot();

  core::ShardedControlClient client(&requester, machine.shard_infos(),
                                    core::AllocationPolicy::kInterleave);
  Pasid pasid = machine.NewApplication("drill");
  machine.RunFor(sim::Duration::Micros(450));

  // Mid-partition: the interleave policy wants to spread across both shards,
  // but segment 1 is unreachable — the client spills everything to its local
  // shard instead of stalling.
  for (int i = 0; i < 4; ++i) {
    auto va = client.AllocSync(pasid, 4 * kPageSize);
    LASTCPU_CHECK(va.ok(), "segment-local allocation failed during partition");
    std::printf("  mid-partition alloc %d landed on shard %u\n", i,
                static_cast<unsigned>(memdev::ShardForVa(*va, 2)));
  }
  std::printf("  cross-segment attempts spilled locally: %llu (fail-fast, no timeouts)\n",
              static_cast<unsigned long long>(client.spills()));
  std::printf("  bus fail-fast bounces: %llu, parked one-ways: %llu\n",
              static_cast<unsigned long long>(
                  machine.bus().stats().GetCounter("partition_fail_fast").value()),
              static_cast<unsigned long long>(
                  machine.bus().stats().GetCounter("partition_queued").value()));

  machine.RunFor(sim::Duration::Millis(3));
  // Healed: cross-segment placement works again, no reconciliation debt.
  auto after = client.AllocSync(pasid, 4 * kPageSize);
  LASTCPU_CHECK(after.ok(), "post-heal allocation failed");
  std::printf("  post-heal alloc landed on shard %u; parked messages released: %llu\n",
              static_cast<unsigned>(memdev::ShardForVa(*after, 2)),
              static_cast<unsigned long long>(
                  machine.bus().stats().GetCounter("partition_released").value()));
  (void)shards;
}

int main() {
  core::MachineConfig config;
  config.enable_trace = true;
  core::Machine machine(config);
  auto& memctrl = machine.AddMemoryController();
  ssddev::SmartSsdConfig ssd_config;
  ssd_config.host_auth_service = false;
  auto& ssd = machine.AddSmartSsd(ssd_config);
  auto& nic = machine.AddSmartNic();
  ssd.ProvisionFile("kv.log", {});

  Pasid app_pasid = machine.NewApplication("kvs");
  auto app = std::make_unique<kvs::KvsApp>(&nic, app_pasid);
  kvs::KvsApp* kvs_app = app.get();
  nic.LoadApp(std::move(app));
  machine.Boot();
  std::printf("booted; KVS app %s\n", nic.app_ready() ? "running" : "not running");

  kvs_app->engine().Put("canary", {1, 2, 3}, [](Status s) {
    LASTCPU_CHECK(s.ok(), "seed put failed");
  });
  machine.RunUntilIdle();

  // --- drill 1: page fault ----------------------------------------------------
  std::printf("\n[drill 1] DMA to an unmapped address\n");
  machine.fabric().DmaWrite(nic.id(), app_pasid, VirtAddr(0xDEAD000), {1}, [](Status s) {
    std::printf("  DMA completed with: %s\n", s.ToString().c_str());
  });
  machine.RunUntilIdle();
  std::printf("  faults delivered to the NIC itself: %llu (no external handler involved)\n",
              static_cast<unsigned long long>(nic.iommu().faults()));

  // --- drill 2: resource failure ----------------------------------------------
  std::printf("\n[drill 2] the KVS session's file-service resource fails\n");
  uint64_t recoveries_before = kvs_app->recoveries();
  ssd.file_service().InjectResourceFailure(kvs_app->engine().file().instance(), "media error");
  machine.RunUntilIdle();
  std::printf("  consumer notified; app logic is responsible for recovery (Sec. 4)\n");

  // The app's in-flight requests fail; a fresh session still works because
  // only the *instance* died, not the device.
  kvs_app->engine().Stop(Unavailable("resource failed"));
  bool restarted = false;
  kvs_app->engine().Start([&](Status s) { restarted = s.ok(); });
  machine.RunUntilIdle();
  std::printf("  re-opened session: %s\n", restarted ? "OK" : "failed");

  // --- drill 3: whole-device failure -------------------------------------------
  std::printf("\n[drill 3] the smart SSD dies entirely\n");
  ssd.InjectFailure();
  machine.bus().ReportDeviceFailure(ssd.id());
  machine.RunUntilIdle();
  std::printf("  bus broadcast DeviceFailed, pulsed reset; SSD state now: %s\n",
              ssd.state() == dev::Device::State::kAlive ? "alive again" : "dead");
  std::printf("  app recovered %llu time(s) (automatic retry loop)\n",
              static_cast<unsigned long long>(kvs_app->recoveries() - recoveries_before));

  // Prove the data survived: the log lives on flash, the index was rebuilt.
  kvs_app->engine().Get("canary", [](Result<std::vector<uint8_t>> r) {
    std::printf("  GET canary after recovery: %s (%zu bytes)\n",
                r.ok() ? "OK" : r.status().ToString().c_str(), r.ok() ? r->size() : 0);
  });
  machine.RunUntilIdle();

  // --- drill 4: power loss mid-write -------------------------------------------
  std::printf("\n[drill 4] the SSD loses its power rail mid-write\n");
  // Leave a PUT in flight so the cut catches real work: it must settle with
  // kUnavailable (never hang), and because it was never acked it carries no
  // durability promise.
  kvs_app->engine().Put("torn", std::vector<uint8_t>(1024, 0xEE), [](Status s) {
    std::printf("  in-flight PUT settled with: %s (un-acked => no durability promise)\n",
                s.ToString().c_str());
  });
  machine.RunFor(sim::Duration::Micros(150));
  ssd.InjectPowerLoss();
  machine.bus().ReportDeviceFailure(ssd.id());
  machine.RunUntilIdle();
  std::printf("  reset pulse triggered media recovery: %llu recovery(ies), "
              "%llu pages rebuilt, %llu torn pages discarded\n",
              static_cast<unsigned long long>(ssd.ftl().recoveries()),
              static_cast<unsigned long long>(
                  ssd.ftl().stats().GetCounter("recovered_pages").value()),
              static_cast<unsigned long long>(
                  ssd.ftl().stats().GetCounter("torn_pages_discarded").value()));
  // The acked canary must still be there: its mapping was rebuilt from the
  // per-page OOB tags, not from any table that died with the rail.
  kvs_app->engine().Get("canary", [](Result<std::vector<uint8_t>> r) {
    std::printf("  GET canary after power-loss recovery: %s (%zu bytes)\n",
                r.ok() ? "OK" : r.status().ToString().c_str(), r.ok() ? r->size() : 0);
  });
  machine.RunUntilIdle();

  // --- drill 5: crash loop -> quarantine ---------------------------------------
  std::printf("\n[drill 5] the SSD crash-loops until the supervisor gives up on it\n");
  int kills = 0;
  while (!machine.bus().supervisor().IsQuarantined(ssd.id()) && kills < 20) {
    if (ssd.state() == dev::Device::State::kAlive) {
      ssd.InjectFailure();
      machine.bus().ReportDeviceFailure(ssd.id());
      ++kills;
    }
    machine.RunFor(sim::Duration::Micros(100));
  }
  // Let the DevicePermanentlyFailed broadcast land and the app's (now
  // pointless) retry loop shut itself down.
  machine.RunFor(sim::Duration::Millis(20));
  machine.RunUntilIdle();

  std::printf("  %d crashes inside the sliding window; quarantined: %s\n", kills,
              machine.bus().supervisor().IsQuarantined(ssd.id()) ? "yes" : "no");
  std::printf("  app learned its provider is gone: %s\n",
              kvs_app->provider_permanently_failed() ? "yes" : "no");
  std::printf("  memory controller leftovers under the corpse: %llu allocations, %llu grants\n",
              static_cast<unsigned long long>(memctrl.AllocationsOwnedBy(ssd.id())),
              static_cast<unsigned long long>(memctrl.GrantsHeldBy(ssd.id())));
  kvs_app->engine().Put("after-quarantine", {9}, [](Status s) {
    std::printf("  PUT after quarantine fast-fails: %s\n", s.ToString().c_str());
  });
  machine.RunUntilIdle();

  // --- drills 6-7: rack-scale control plane -------------------------------------
  ShardFailoverDrill();
  PartitionDrill();

  std::printf("\n--- failure-handling trace ---\n");
  for (const auto& record : machine.trace().records()) {
    if (record.event == "device-failed" || record.event == "reset" || record.event == "alive" ||
        record.event == "iommu-fault" || record.event == "failed" ||
        record.event.rfind("supervisor-", 0) == 0) {
      std::printf("%12.3fus  %-12s %s\n", record.when.micros(), record.component.c_str(),
                  record.event.c_str());
    }
  }
  return 0;
}
