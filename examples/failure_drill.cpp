// Section-4 error-handling drill: walks every failure class the paper
// enumerates and shows how the CPU-less machine handles each one.
//
//   1. Page fault: an IOMMU fault is delivered to the attached device.
//   2. Recoverable resource failure: the owner notifies consumers and resets
//      the resource; the consumer's app logic recovers.
//   3. Whole-device failure: the bus notifies every other device, pulses the
//      reset line, and the device comes back clean; the app re-opens.
//   4. Power loss: the SSD's rail drops mid-write. In-flight ops fail with
//      kUnavailable (never hang), the volatile mapping table is gone, and
//      the reset pulse recovers it from the on-media OOB log — acked data
//      survives, the torn tail does not.
//   5. Permanent failure: the device crash-loops until the supervisor
//      quarantines it, peers get one DevicePermanentlyFailed notice, the
//      memory controller reclaims whatever the corpse owned, and the KVS
//      app fast-fails with kUnavailable instead of retrying forever.
//
//   $ failure_drill
#include <cstdio>
#include <memory>

#include "src/core/machine.h"
#include "src/kvs/kvs_app.h"

using namespace lastcpu;  // NOLINT: example brevity

int main() {
  core::MachineConfig config;
  config.enable_trace = true;
  core::Machine machine(config);
  auto& memctrl = machine.AddMemoryController();
  ssddev::SmartSsdConfig ssd_config;
  ssd_config.host_auth_service = false;
  auto& ssd = machine.AddSmartSsd(ssd_config);
  auto& nic = machine.AddSmartNic();
  ssd.ProvisionFile("kv.log", {});

  Pasid app_pasid = machine.NewApplication("kvs");
  auto app = std::make_unique<kvs::KvsApp>(&nic, app_pasid);
  kvs::KvsApp* kvs_app = app.get();
  nic.LoadApp(std::move(app));
  machine.Boot();
  std::printf("booted; KVS app %s\n", nic.app_ready() ? "running" : "not running");

  kvs_app->engine().Put("canary", {1, 2, 3}, [](Status s) {
    LASTCPU_CHECK(s.ok(), "seed put failed");
  });
  machine.RunUntilIdle();

  // --- drill 1: page fault ----------------------------------------------------
  std::printf("\n[drill 1] DMA to an unmapped address\n");
  machine.fabric().DmaWrite(nic.id(), app_pasid, VirtAddr(0xDEAD000), {1}, [](Status s) {
    std::printf("  DMA completed with: %s\n", s.ToString().c_str());
  });
  machine.RunUntilIdle();
  std::printf("  faults delivered to the NIC itself: %llu (no external handler involved)\n",
              static_cast<unsigned long long>(nic.iommu().faults()));

  // --- drill 2: resource failure ----------------------------------------------
  std::printf("\n[drill 2] the KVS session's file-service resource fails\n");
  uint64_t recoveries_before = kvs_app->recoveries();
  ssd.file_service().InjectResourceFailure(kvs_app->engine().file().instance(), "media error");
  machine.RunUntilIdle();
  std::printf("  consumer notified; app logic is responsible for recovery (Sec. 4)\n");

  // The app's in-flight requests fail; a fresh session still works because
  // only the *instance* died, not the device.
  kvs_app->engine().Stop(Unavailable("resource failed"));
  bool restarted = false;
  kvs_app->engine().Start([&](Status s) { restarted = s.ok(); });
  machine.RunUntilIdle();
  std::printf("  re-opened session: %s\n", restarted ? "OK" : "failed");

  // --- drill 3: whole-device failure -------------------------------------------
  std::printf("\n[drill 3] the smart SSD dies entirely\n");
  ssd.InjectFailure();
  machine.bus().ReportDeviceFailure(ssd.id());
  machine.RunUntilIdle();
  std::printf("  bus broadcast DeviceFailed, pulsed reset; SSD state now: %s\n",
              ssd.state() == dev::Device::State::kAlive ? "alive again" : "dead");
  std::printf("  app recovered %llu time(s) (automatic retry loop)\n",
              static_cast<unsigned long long>(kvs_app->recoveries() - recoveries_before));

  // Prove the data survived: the log lives on flash, the index was rebuilt.
  kvs_app->engine().Get("canary", [](Result<std::vector<uint8_t>> r) {
    std::printf("  GET canary after recovery: %s (%zu bytes)\n",
                r.ok() ? "OK" : r.status().ToString().c_str(), r.ok() ? r->size() : 0);
  });
  machine.RunUntilIdle();

  // --- drill 4: power loss mid-write -------------------------------------------
  std::printf("\n[drill 4] the SSD loses its power rail mid-write\n");
  // Leave a PUT in flight so the cut catches real work: it must settle with
  // kUnavailable (never hang), and because it was never acked it carries no
  // durability promise.
  kvs_app->engine().Put("torn", std::vector<uint8_t>(1024, 0xEE), [](Status s) {
    std::printf("  in-flight PUT settled with: %s (un-acked => no durability promise)\n",
                s.ToString().c_str());
  });
  machine.RunFor(sim::Duration::Micros(150));
  ssd.InjectPowerLoss();
  machine.bus().ReportDeviceFailure(ssd.id());
  machine.RunUntilIdle();
  std::printf("  reset pulse triggered media recovery: %llu recovery(ies), "
              "%llu pages rebuilt, %llu torn pages discarded\n",
              static_cast<unsigned long long>(ssd.ftl().recoveries()),
              static_cast<unsigned long long>(
                  ssd.ftl().stats().GetCounter("recovered_pages").value()),
              static_cast<unsigned long long>(
                  ssd.ftl().stats().GetCounter("torn_pages_discarded").value()));
  // The acked canary must still be there: its mapping was rebuilt from the
  // per-page OOB tags, not from any table that died with the rail.
  kvs_app->engine().Get("canary", [](Result<std::vector<uint8_t>> r) {
    std::printf("  GET canary after power-loss recovery: %s (%zu bytes)\n",
                r.ok() ? "OK" : r.status().ToString().c_str(), r.ok() ? r->size() : 0);
  });
  machine.RunUntilIdle();

  // --- drill 5: crash loop -> quarantine ---------------------------------------
  std::printf("\n[drill 5] the SSD crash-loops until the supervisor gives up on it\n");
  int kills = 0;
  while (!machine.bus().supervisor().IsQuarantined(ssd.id()) && kills < 20) {
    if (ssd.state() == dev::Device::State::kAlive) {
      ssd.InjectFailure();
      machine.bus().ReportDeviceFailure(ssd.id());
      ++kills;
    }
    machine.RunFor(sim::Duration::Micros(100));
  }
  // Let the DevicePermanentlyFailed broadcast land and the app's (now
  // pointless) retry loop shut itself down.
  machine.RunFor(sim::Duration::Millis(20));
  machine.RunUntilIdle();

  std::printf("  %d crashes inside the sliding window; quarantined: %s\n", kills,
              machine.bus().supervisor().IsQuarantined(ssd.id()) ? "yes" : "no");
  std::printf("  app learned its provider is gone: %s\n",
              kvs_app->provider_permanently_failed() ? "yes" : "no");
  std::printf("  memory controller leftovers under the corpse: %llu allocations, %llu grants\n",
              static_cast<unsigned long long>(memctrl.AllocationsOwnedBy(ssd.id())),
              static_cast<unsigned long long>(memctrl.GrantsHeldBy(ssd.id())));
  kvs_app->engine().Put("after-quarantine", {9}, [](Status s) {
    std::printf("  PUT after quarantine fast-fails: %s\n", s.ToString().c_str());
  });
  machine.RunUntilIdle();

  std::printf("\n--- failure-handling trace ---\n");
  for (const auto& record : machine.trace().records()) {
    if (record.event == "device-failed" || record.event == "reset" || record.event == "alive" ||
        record.event == "iommu-fault" || record.event == "failed" ||
        record.event.rfind("supervisor-", 0) == 0) {
      std::printf("%12.3fus  %-12s %s\n", record.when.micros(), record.component.c_str(),
                  record.event.c_str());
    }
  }
  return 0;
}
