// The paper's Section 3 application, end to end: a key-value store whose
// data lives in a file on a smart SSD and whose operations run on a smart
// NIC, serving remote clients over the network — on a machine with no CPU.
//
// Prints the Figure-2 initialization trace, then runs a YCSB-style workload
// and reports throughput and latency.
//
//   $ kvstore
#include <cstdio>
#include <iostream>
#include <memory>

#include "src/auth/auth_client.h"
#include "src/core/machine.h"
#include "src/kvs/kvs_app.h"
#include "src/kvs/workload.h"

using namespace lastcpu;  // NOLINT: example brevity

int main() {
  core::MachineConfig config;
  config.enable_trace = true;
  core::Machine machine(config);

  machine.AddMemoryController();
  auto& ssd = machine.AddSmartSsd();
  auto& nic = machine.AddSmartNic();

  // Provision the store's log file with an ACL owned by the operator, and
  // register the operator with the SSD-hosted auth service (Sec. 4).
  ssddev::FileAcl acl;
  acl.owner = "kvs-operator";
  ssd.ProvisionFile("kv.log", {}, acl);
  ssd.auth()->AddUser("kvs-operator", "hunter2");

  machine.Boot();
  std::printf("machine booted; %zu devices alive\n", machine.devices().size());

  // Log in (the 'login' program of the CPU-less machine) to get the token the
  // KVS app will present when opening its file.
  Pasid app_pasid = machine.NewApplication("kvs");
  uint64_t token = 0;
  auth::LoginUser(&nic, ssd.id(), "kvs-operator", "hunter2",
                  [&](Result<auth::Login> login) { token = login->token; });
  machine.RunUntilIdle();
  std::printf("operator authenticated, token=%llx\n", static_cast<unsigned long long>(token));

  // Load the KVS application onto the NIC (Fig. 2 bring-up happens here).
  kvs::KvsAppConfig app_config;
  app_config.engine.log_file = "kv.log";
  app_config.engine.auth_token = token;
  auto app = std::make_unique<kvs::KvsApp>(&nic, app_pasid, app_config);
  kvs::KvsApp* kvs_app = app.get();
  nic.LoadApp(std::move(app));
  machine.RunUntilIdle();
  std::printf("KVS app %s\n", nic.app_ready() ? "running" : "FAILED TO START");

  std::printf("\n--- Figure 2: initialization sequence ---\n");
  machine.trace().Dump(std::cout);
  machine.trace().Disable();

  // Preload 1000 keys, then run a 95/5 Zipfian workload from 4 remote
  // clients.
  kvs::WorkloadConfig workload;
  workload.num_keys = 1000;
  workload.get_fraction = 0.95;
  workload.value_bytes = 128;

  std::printf("\npreloading %llu keys...\n",
              static_cast<unsigned long long>(workload.num_keys));
  for (uint64_t i = 0; i < workload.num_keys; ++i) {
    kvs_app->engine().Put(kvs::WorkloadGenerator::KeyFor(i),
                          std::vector<uint8_t>(workload.value_bytes, static_cast<uint8_t>(i)),
                          [](Status s) { LASTCPU_CHECK(s.ok(), "preload put failed"); });
    machine.RunUntilIdle();
  }

  constexpr int kClients = 4;
  constexpr uint64_t kOpsPerClient = 2000;
  std::vector<std::unique_ptr<kvs::LoadClient>> clients;
  int finished = 0;
  sim::SimTime start = machine.simulator().Now();
  for (int c = 0; c < kClients; ++c) {
    kvs::WorkloadConfig per_client = workload;
    per_client.seed = static_cast<uint64_t>(c) + 1;
    clients.push_back(std::make_unique<kvs::LoadClient>(
        &machine.simulator(), &machine.network(), nic.endpoint(), per_client, 8));
    clients.back()->Start(kOpsPerClient, [&finished] { ++finished; });
  }
  machine.RunUntilIdle();
  sim::Duration elapsed = machine.simulator().Now() - start;

  std::printf("\n--- workload results (%d clients x %llu ops, 95%% GET zipf 0.99) ---\n",
              kClients, static_cast<unsigned long long>(kOpsPerClient));
  uint64_t total_ops = 0;
  for (int c = 0; c < kClients; ++c) {
    total_ops += clients[static_cast<size_t>(c)]->completed();
    std::printf("client %d: %s\n", c,
                clients[static_cast<size_t>(c)]->latency().Summary().c_str());
  }
  std::printf("throughput: %.0f ops/s (simulated time %.3f ms)\n",
              static_cast<double>(total_ops) / elapsed.seconds(), elapsed.millis());
  std::printf("index: %zu keys, ~%llu bytes of NIC DRAM\n", kvs_app->engine().index().size(),
              static_cast<unsigned long long>(kvs_app->engine().index().memory_bytes()));
  std::printf("SSD write amplification: %.2f, GC runs: %llu\n",
              ssd.ftl().WriteAmplification(),
              static_cast<unsigned long long>(ssd.ftl().gc_runs()));
  return 0;
}
