// Section-4 "System Maintenance": a data-center operator manages a CPU-less
// machine remotely. There is no local console — a management device (here, a
// small console endpoint on the NIC side of the bus) authenticates against
// the SSD-hosted auth service, uploads a new application image through the
// loader, reads the application's log file, and inspects bus liveness.
//
//   $ remote_console
#include <cstdio>
#include <memory>
#include <string>

#include "src/auth/auth_client.h"
#include "src/core/machine.h"
#include "src/ssddev/file_client.h"

using namespace lastcpu;  // NOLINT: example brevity

namespace {

// The remote-access service endpoint: a bus device the operator drives over
// the network (the network hop itself is modeled in the kvstore example; the
// point here is that *management* is just another service consumer).
class ConsoleDevice : public dev::Device {
 public:
  ConsoleDevice(DeviceId id, const dev::DeviceContext& context)
      : dev::Device(id, "console", context), log_(this, Pasid(999)) {}

  ssddev::FileClient& log() { return log_; }

 protected:
  void OnDoorbell(DeviceId from, uint64_t value) override {
    (void)log_.HandleDoorbell(from, value);
  }

 private:
  ssddev::FileClient log_;
};

}  // namespace

int main() {
  core::Machine machine;
  machine.AddMemoryController();
  auto& ssd = machine.AddSmartSsd();
  auto& console = machine.Emplace<ConsoleDevice>();

  // The machine ships with an operator account and an application log.
  ssd.auth()->AddUser("operator", "correct-horse");
  ssddev::FileAcl acl;
  acl.owner = "operator";
  std::string boot_log =
      "[0.000] kvs: started\n[0.132] kvs: 1000 keys loaded\n[0.490] kvs: serving\n";
  ssd.ProvisionFile("kvs.log", std::vector<uint8_t>(boot_log.begin(), boot_log.end()), acl);
  machine.Boot();

  // 1. Authenticate (Sec. 4: "user authentication can be performed by an
  //    authentication service running on any device").
  uint64_t token = 0;
  auth::LoginUser(&console, ssd.id(), "operator", "correct-horse",
                  [&](Result<auth::Login> login) { token = login->token; });
  machine.RunUntilIdle();
  std::printf("operator logged in, token=%llx\n", static_cast<unsigned long long>(token));

  // A wrong password is rejected without leaking which part was wrong.
  auth::LoginUser(&console, ssd.id(), "operator", "wrong", [](Result<auth::Login> login) {
    std::printf("bad login: %s\n", login.status().message().c_str());
  });
  machine.RunUntilIdle();

  // 2. Inspect liveness — the operator's view of the machine.
  std::printf("\ndevice liveness (from the bus):\n");
  for (const auto& [id, entry] : machine.bus().LivenessSnapshot()) {
    std::printf("  device %2u  %-12s %s\n", id.value(), entry.name.c_str(),
                entry.alive ? "alive" : "down");
  }

  // 3. Remote 'ls' through the file service, then read the application log.
  ssddev::ListRemoteFiles(&console, ssd.id(), token,
                          [](Result<std::vector<std::string>> names) {
                            std::printf("\nfiles on the smart SSD:\n");
                            for (const auto& name : *names) {
                              std::printf("  %s\n", name.c_str());
                            }
                          });
  machine.RunUntilIdle();

  console.log().Open("kvs.log", token, [&](Status s) {
    LASTCPU_CHECK(s.ok(), "log open failed: %s", s.ToString().c_str());
    console.log().ReadAt(0, 4096, [](Result<std::vector<uint8_t>> data) {
      std::string text(data->begin(), data->end());
      std::printf("\n--- kvs.log (read over the file service) ---\n%s", text.c_str());
    });
  });
  machine.RunUntilIdle();

  // 4. Upload a new application image through the loader service — gated by
  //    the same token (Sec. 4: loaders authenticate "before replacing
  //    sensitive data").
  std::vector<uint8_t> image(2048, 0xC0);
  console.rpc().Call<proto::LoadImageResponse>(
      ssd.id(), proto::LoadImage{"kvs-v2", image, token},
      [](Result<proto::LoadImageResponse> uploaded) {
        std::printf("\nimage upload: %s\n", uploaded.ok() ? "accepted" : "rejected");
      });
  // An unauthorized upload is refused.
  console.rpc().Call<proto::LoadImageResponse>(
      ssd.id(), proto::LoadImage{"rootkit", image, 0xBAD},
      [](Result<proto::LoadImageResponse> uploaded) {
        std::printf("forged upload: %s\n", !uploaded.ok() ? "rejected (good)" : "ACCEPTED?!");
      });
  machine.RunUntilIdle();
  std::printf("loader now stores %zu image(s)\n", ssd.loader().image_count());
  return 0;
}
