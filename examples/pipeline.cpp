// A device-to-device processing pipeline with no CPU: a camera device
// produces frames into shared memory, a compute accelerator compresses them,
// and the result is appended to a file on the smart SSD.
//
// Demonstrates writing *custom* self-managing devices against the public
// API: the camera discovers the compressor's compute service, negotiates a
// shared buffer (alloc + grant via the bus), and the two devices coordinate
// with doorbells — exactly the paper's "devices must communicate
// autonomously".
//
//   $ pipeline
#include <cstdio>
#include <memory>
#include <numeric>

#include "src/core/machine.h"
#include "src/ssddev/file_client.h"

using namespace lastcpu;  // NOLINT: example brevity

namespace {

constexpr uint64_t kFrameBytes = 16 << 10;  // one 16 KiB sensor frame
constexpr int kFrames = 8;

// Run-length encodes a frame (our stand-in for the accelerator's codec).
std::vector<uint8_t> RunLengthEncode(const std::vector<uint8_t>& in) {
  std::vector<uint8_t> out;
  size_t i = 0;
  while (i < in.size()) {
    uint8_t value = in[i];
    size_t run = 1;
    while (i + run < in.size() && in[i + run] == value && run < 255) {
      ++run;
    }
    out.push_back(static_cast<uint8_t>(run));
    out.push_back(value);
    i += run;
  }
  return out;
}

// The compressor: exposes a compute service; when a producer rings its
// doorbell it compresses the shared frame and appends it to the archive file
// on the SSD.
class Compressor : public dev::Device {
 public:
  Compressor(DeviceId id, const dev::DeviceContext& context, Pasid pasid)
      : dev::Device(id, "compressor", context), pasid_(pasid), archive_(this, pasid) {
    class CodecService : public dev::Service {
     public:
      explicit CodecService(DeviceId provider)
          : Service(proto::ServiceDescriptor{provider, proto::ServiceType::kCompute, "rle-codec",
                                             4}) {}
      Result<proto::OpenResponse> Open(DeviceId client, const proto::OpenRequest& request) override {
        auto instance = CreateInstance(client, request.pasid, request.resource);
        if (!instance.ok()) {
          return instance.status();
        }
        return proto::OpenResponse{*instance, kFrameBytes, 0};
      }
    };
    AddService(std::make_unique<CodecService>(id));
  }

  // The producer tells us where the shared frame buffer lives.
  void BindFrameBuffer(VirtAddr buffer) { frame_buffer_ = buffer; }

  void OpenArchive(std::function<void(Status)> done) {
    archive_.Open("frames.rle", 0, std::move(done));
  }

  int frames_stored() const { return frames_stored_; }
  uint64_t bytes_in() const { return bytes_in_; }
  uint64_t bytes_out() const { return bytes_out_; }

 protected:
  void OnDoorbell(DeviceId from, uint64_t value) override {
    if (archive_.HandleDoorbell(from, value)) {
      return;  // completion from the SSD session
    }
    // A producer doorbell: value = frame sequence number.
    fabric()->DmaRead(id(), pasid_, frame_buffer_, kFrameBytes,
                      [this, from, value](Result<std::vector<uint8_t>> frame) {
                        if (!frame.ok()) {
                          std::printf("compressor: frame read failed: %s\n",
                                      frame.status().ToString().c_str());
                          return;
                        }
                        auto packed = RunLengthEncode(*frame);
                        bytes_in_ += frame->size();
                        bytes_out_ += packed.size();
                        archive_.Append(std::move(packed),
                                        [this, from, value](Result<uint64_t> at) {
                                          if (at.ok()) {
                                            ++frames_stored_;
                                          }
                                          // Ack the producer: frame archived.
                                          fabric()->RingDoorbell(id(), from, value);
                                        });
                      });
  }

 private:
  Pasid pasid_;
  ssddev::FileClient archive_;
  VirtAddr frame_buffer_;
  int frames_stored_ = 0;
  uint64_t bytes_in_ = 0;
  uint64_t bytes_out_ = 0;
};

// The camera: allocates the shared frame buffer, grants it to the
// compressor, then produces frames and rings the compressor's doorbell.
class Camera : public dev::Device {
 public:
  Camera(DeviceId id, const dev::DeviceContext& context, Pasid pasid)
      : dev::Device(id, "camera", context), pasid_(pasid) {}

  void StartCapture(Compressor* compressor, std::function<void()> on_finished) {
    compressor_ = compressor;
    on_finished_ = std::move(on_finished);
    // Negotiate the shared frame buffer over the bus (Fig. 2 steps 5-7).
    rpc().Discover(proto::ServiceType::kMemory, "", sim::Duration::Micros(20),
                   [this](std::vector<proto::ServiceDescriptor> services) {
                     rpc().Call<proto::MemAllocResponse>(
                         services[0].provider,
                         proto::MemAllocRequest{pasid_, kFrameBytes, VirtAddr(0),
                                                Access::kReadWrite},
                         [this](Result<proto::MemAllocResponse> allocated) {
                           LASTCPU_CHECK(allocated.ok(), "frame buffer alloc failed");
                           buffer_ = allocated->vaddr;
                           rpc().Call<void>(kBusDevice,
                                            proto::GrantRequest{pasid_, buffer_, kFrameBytes,
                                                                compressor_->id(), Access::kRead},
                                            [this](Result<void> granted) {
                                              LASTCPU_CHECK(granted.ok(), "frame grant failed");
                                              compressor_->BindFrameBuffer(buffer_);
                                              CaptureNext();
                                            });
                         });
                   });
  }

 protected:
  void OnDoorbell(DeviceId from, uint64_t value) override {
    (void)from;
    (void)value;
    // Compressor finished the previous frame; shoot the next one.
    CaptureNext();
  }

 private:
  void CaptureNext() {
    if (frame_number_ >= kFrames) {
      if (on_finished_) {
        on_finished_();
      }
      return;
    }
    // Synthesize a frame with long runs (sensors see mostly-flat scenes).
    std::vector<uint8_t> frame(kFrameBytes);
    for (size_t i = 0; i < frame.size(); ++i) {
      frame[i] = static_cast<uint8_t>((i / 512 + static_cast<size_t>(frame_number_)) % 7);
    }
    int frame_number = frame_number_++;
    fabric()->DmaWrite(id(), pasid_, buffer_, std::move(frame),
                       [this, frame_number](Status s) {
                         LASTCPU_CHECK(s.ok(), "frame DMA failed");
                         fabric()->RingDoorbell(id(), compressor_->id(),
                                                static_cast<uint64_t>(frame_number));
                       });
  }

  Pasid pasid_;
  Compressor* compressor_ = nullptr;
  VirtAddr buffer_;
  int frame_number_ = 0;
  std::function<void()> on_finished_;
};

}  // namespace

int main() {
  core::Machine machine;
  machine.AddMemoryController();
  ssddev::SmartSsdConfig ssd_config;
  ssd_config.host_auth_service = false;
  auto& ssd = machine.AddSmartSsd(ssd_config);
  ssd.ProvisionFile("frames.rle", {});

  Pasid app = machine.NewApplication("camera-pipeline");
  auto& compressor = machine.Emplace<Compressor>(app);
  auto& camera = machine.Emplace<Camera>(app);
  machine.Boot();

  // Bring-up: the compressor opens its SSD archive session, then the camera
  // starts shooting.
  bool finished = false;
  compressor.OpenArchive([&](Status s) {
    LASTCPU_CHECK(s.ok(), "archive open failed: %s", s.ToString().c_str());
    camera.StartCapture(&compressor, [&finished] { finished = true; });
  });
  machine.RunUntilIdle();

  std::printf("pipeline %s: %d frames captured -> compressed -> archived\n",
              finished ? "complete" : "INCOMPLETE", compressor.frames_stored());
  std::printf("compression: %llu bytes in, %llu bytes out (%.1fx)\n",
              static_cast<unsigned long long>(compressor.bytes_in()),
              static_cast<unsigned long long>(compressor.bytes_out()),
              static_cast<double>(compressor.bytes_in()) /
                  static_cast<double>(compressor.bytes_out()));
  auto stat = ssd.fs().Stat("frames.rle");
  std::printf("archive file: %llu bytes on flash, %llu NAND programs\n",
              static_cast<unsigned long long>(stat->size),
              static_cast<unsigned long long>(
                  ssd.nand().stats().GetCounter("programs").value()));
  std::printf("simulated time: %.3f ms; no CPU was involved\n",
              machine.simulator().Now().micros() / 1000.0);
  return finished ? 0 : 1;
}
