// Quickstart: assemble a CPU-less machine, boot it, and walk the paper's
// Figure-2 memory handshake by hand — discover the memory controller,
// allocate shared memory (the bus programs your IOMMU), grant it to another
// device, and exchange data through the fabric. No CPU anywhere.
//
//   $ quickstart
#include <cstdio>
#include <iostream>

#include "src/core/machine.h"

namespace {

using namespace lastcpu;  // NOLINT: example brevity

// A minimal self-managing device: no services, just an application that uses
// other devices' resources.
class ScratchDevice : public dev::Device {
 public:
  ScratchDevice(DeviceId id, const dev::DeviceContext& context, std::string name)
      : dev::Device(id, std::move(name), context) {}
};

}  // namespace

int main() {
  core::MachineConfig config;
  config.enable_trace = true;
  core::Machine machine(config);

  // Figure 1: devices + memory controller on a management bus; no CPU.
  auto& memctrl = machine.AddMemoryController();
  auto& producer = machine.Emplace<ScratchDevice>("producer");
  auto& consumer = machine.Emplace<ScratchDevice>("consumer");

  machine.Boot();
  std::printf("booted: %zu devices alive, memory controller is device %u\n",
              machine.devices().size(), machine.bus().memory_controller().value());

  // Every application is identified by its virtual address space (a PASID).
  Pasid app = machine.NewApplication("quickstart");

  // Step 1-2: discover who offers physical memory.
  producer.Discover(proto::ServiceType::kMemory, "", sim::Duration::Micros(20),
                    [&](std::vector<proto::ServiceDescriptor> services) {
                      std::printf("discovered %zu memory service(s); provider=device %u\n",
                                  services.size(), services[0].provider.value());
                    });
  machine.RunUntilIdle();

  // Step 5-6: the producer asks for 64 KiB; the memory controller allocates
  // and the *bus* programs the producer's IOMMU.
  VirtAddr shared{};
  producer.SendRequest(memctrl.id(),
                       proto::MemAllocRequest{app, 64 << 10, VirtAddr(0), Access::kReadWrite},
                       [&](const proto::Message& m) {
                         const auto& response = m.As<proto::MemAllocResponse>();
                         shared = response.vaddr;
                         std::printf("allocated %llu bytes at vaddr 0x%llx\n",
                                     static_cast<unsigned long long>(response.bytes),
                                     static_cast<unsigned long long>(response.vaddr.raw));
                       });
  machine.RunUntilIdle();

  // Step 7: grant the region to the consumer (authorized by the memory
  // controller, programmed by the bus).
  producer.SendRequest(kBusDevice,
                       proto::GrantRequest{app, shared, 64 << 10, consumer.id(), Access::kRead},
                       [&](const proto::Message& m) {
                         std::printf("grant %s\n",
                                     m.Is<proto::GrantResponse>() ? "confirmed" : "failed");
                       });
  machine.RunUntilIdle();

  // Data plane: the producer DMAs a message in; the consumer reads it out
  // through its own IOMMU mapping of the same physical pages.
  std::vector<uint8_t> hello{'h', 'e', 'l', 'l', 'o', ',', ' ', 'n', 'o', ' ', 'c', 'p', 'u'};
  machine.fabric().DmaWrite(producer.id(), app, shared, hello, [](lastcpu::Status s) {
    std::printf("producer DMA write: %s\n", s.ToString().c_str());
  });
  machine.RunUntilIdle();
  machine.fabric().DmaRead(consumer.id(), app, shared, hello.size(),
                           [](lastcpu::Result<std::vector<uint8_t>> r) {
                             std::string text(r->begin(), r->end());
                             std::printf("consumer DMA read:  \"%s\"\n", text.c_str());
                           });
  machine.RunUntilIdle();

  // The consumer only got read access: a write faults in its IOMMU and the
  // fault is delivered to the consumer itself (Sec. 4 error handling).
  machine.fabric().DmaWrite(consumer.id(), app, shared, hello, [](lastcpu::Status s) {
    std::printf("consumer DMA write (expected to fault): %s\n", s.ToString().c_str());
  });
  machine.RunUntilIdle();

  // Task life-cycle: tear the application down over the bus.
  machine.TeardownApplication(app);
  machine.RunUntilIdle();
  std::printf("after teardown, producer has %llu mapped pages\n",
              static_cast<unsigned long long>(producer.iommu().mapped_pages(app)));

  std::printf("\n--- control-plane trace (what the hardware did) ---\n");
  machine.trace().Dump(std::cout);
  return 0;
}
