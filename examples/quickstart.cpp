// Quickstart: assemble a CPU-less machine, boot it, and walk the paper's
// Figure-2 memory handshake by hand — discover the memory controller,
// allocate shared memory (the bus programs your IOMMU), grant it to another
// device, and exchange data through the fabric. No CPU anywhere.
//
// The same operations then run as syscalls into the centralized-kernel
// baseline, sharing one trace log, so the exported Chrome trace shows both
// control planes side by side.
//
//   $ quickstart                       # human-readable walkthrough
//   $ quickstart --trace-out fig2.json # also export (and validate) the trace
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/baseline/central_kernel.h"
#include "src/core/control_plane.h"
#include "src/core/machine.h"
#include "src/sim/json.h"
#include "src/sim/trace_export.h"

namespace {

using namespace lastcpu;  // NOLINT: example brevity

// A minimal self-managing device: no services, just an application that uses
// other devices' resources.
class ScratchDevice : public dev::Device {
 public:
  ScratchDevice(DeviceId id, const dev::DeviceContext& context, std::string name)
      : dev::Device(id, std::move(name), context) {}
};

// Validates the exported Chrome trace: parseable JSON, every non-root span's
// parent exists, every flow send has a matching finish, and both control
// planes (bus-routed spans and kernel spans) contributed spans.
bool ValidateChromeTrace(const std::string& json) {
  auto parsed = sim::ParseJson(json);
  if (!parsed.ok()) {
    std::fprintf(stderr, "trace is not valid JSON: %s\n", parsed.status().message().c_str());
    return false;
  }
  const sim::JsonValue* events = parsed->Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "trace has no traceEvents array\n");
    return false;
  }

  std::map<double, std::string> process_names;  // pid -> component
  for (const sim::JsonValue& event : events->array()) {
    if (event.Find("ph")->str() == "M") {
      process_names[event.Find("pid")->number()] = event.Find("args")->Find("name")->str();
    }
  }

  std::map<double, double> parent_of;  // span id -> parent id
  std::map<std::string, int> spans_per_component;
  std::map<double, int> flow_sends;
  std::map<double, int> flow_finishes;
  for (const sim::JsonValue& event : events->array()) {
    const std::string& ph = event.Find("ph")->str();
    if (ph == "X") {
      const sim::JsonValue* args = event.Find("args");
      parent_of[args->Find("span")->number()] = args->Find("parent")->number();
      ++spans_per_component[process_names[event.Find("pid")->number()]];
    } else if (ph == "s") {
      ++flow_sends[event.Find("id")->number()];
    } else if (ph == "f") {
      ++flow_finishes[event.Find("id")->number()];
    }
  }

  bool ok = true;
  for (const auto& [span, parent] : parent_of) {
    if (parent != 0.0 && !parent_of.contains(parent)) {
      std::fprintf(stderr, "span %.0f has dangling parent %.0f\n", span, parent);
      ok = false;
    }
  }
  for (const auto& [id, count] : flow_sends) {
    if (!flow_finishes.contains(id)) {
      std::fprintf(stderr, "flow %.0f was sent but never received\n", id);
      ok = false;
    }
  }
  if (parent_of.empty()) {
    std::fprintf(stderr, "trace contains no spans\n");
    ok = false;
  }
  if (spans_per_component["kernel"] == 0) {
    std::fprintf(stderr, "no spans from the centralized-kernel control plane\n");
    ok = false;
  }
  if (spans_per_component["memctrl"] + spans_per_component["bus"] == 0) {
    std::fprintf(stderr, "no spans from the decentralized bus control plane\n");
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--trace-out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --trace-out requires a path\n");
        return 2;
      }
      trace_out = argv[++i];
    }
  }

  core::MachineConfig config;
  config.enable_trace = true;
  core::Machine machine(config);

  // Figure 1: devices + memory controller on a management bus; no CPU.
  auto& memctrl = machine.AddMemoryController();
  auto& producer = machine.Emplace<ScratchDevice>("producer");
  auto& consumer = machine.Emplace<ScratchDevice>("consumer");

  machine.Boot();
  std::printf("booted: %zu devices alive, memory controller is device %u\n",
              machine.devices().size(), machine.bus().memory_controller().value());

  // Every application is identified by its virtual address space (a PASID).
  Pasid app = machine.NewApplication("quickstart");

  // Step 1-2: discover who offers physical memory.
  producer.rpc().Discover(proto::ServiceType::kMemory, "", sim::Duration::Micros(20),
                    [&](std::vector<proto::ServiceDescriptor> services) {
                      std::printf("discovered %zu memory service(s); provider=device %u\n",
                                  services.size(), services[0].provider.value());
                    });
  machine.RunUntilIdle();

  // Step 5-6: the producer asks for 64 KiB; the memory controller allocates
  // and the *bus* programs the producer's IOMMU.
  VirtAddr shared{};
  producer.rpc().Call<proto::MemAllocResponse>(
      memctrl.id(), proto::MemAllocRequest{app, 64 << 10, VirtAddr(0), Access::kReadWrite},
      [&](lastcpu::Result<proto::MemAllocResponse> response) {
        shared = response->vaddr;
        std::printf("allocated %llu bytes at vaddr 0x%llx\n",
                    static_cast<unsigned long long>(response->bytes),
                    static_cast<unsigned long long>(response->vaddr.raw));
      });
  machine.RunUntilIdle();

  // Step 7: grant the region to the consumer (authorized by the memory
  // controller, programmed by the bus).
  producer.rpc().Call<void>(
      kBusDevice, proto::GrantRequest{app, shared, 64 << 10, consumer.id(), Access::kRead},
      [&](lastcpu::Result<void> granted) {
        std::printf("grant %s\n", granted.ok() ? "confirmed" : "failed");
      });
  machine.RunUntilIdle();

  // Data plane: the producer DMAs a message in; the consumer reads it out
  // through its own IOMMU mapping of the same physical pages.
  std::vector<uint8_t> hello{'h', 'e', 'l', 'l', 'o', ',', ' ', 'n', 'o', ' ', 'c', 'p', 'u'};
  machine.fabric().DmaWrite(producer.id(), app, shared, hello, [](lastcpu::Status s) {
    std::printf("producer DMA write: %s\n", s.ToString().c_str());
  });
  machine.RunUntilIdle();
  machine.fabric().DmaRead(consumer.id(), app, shared, hello.size(),
                           [](lastcpu::Result<std::vector<uint8_t>> r) {
                             std::string text(r->begin(), r->end());
                             std::printf("consumer DMA read:  \"%s\"\n", text.c_str());
                           });
  machine.RunUntilIdle();

  // The consumer only got read access: a write faults in its IOMMU and the
  // fault is delivered to the consumer itself (Sec. 4 error handling).
  machine.fabric().DmaWrite(consumer.id(), app, shared, hello, [](lastcpu::Status s) {
    std::printf("consumer DMA write (expected to fault): %s\n", s.ToString().c_str());
  });
  machine.RunUntilIdle();

  // Task life-cycle: tear the application down over the bus.
  machine.TeardownApplication(app);
  machine.RunUntilIdle();
  std::printf("after teardown, producer has %llu mapped pages\n",
              static_cast<unsigned long long>(producer.iommu().mapped_pages(app)));

  // --- hot loops: lease in bulk, don't repeat the handshake -----------------
  // The walkthrough above pays the full Figure-2 round trip per operation,
  // which is right for a one-shot handshake but wrong for a loop. The grant
  // magazine (core::MagazineClient) leases a batch of regions in ONE
  // AllocBatch round trip and serves the loop from device-local stock, so a
  // hot loop costs near-zero bus messages per op.
  Pasid looped = machine.NewApplication("quickstart-hotloop");
  core::BusControlClient bus_client(&producer, memctrl.id());
  core::MagazineConfig magazine_config;
  magazine_config.enabled = true;
  core::MagazineClient magazine(&bus_client, magazine_config, &producer, memctrl.id());
  uint64_t bus_before = machine.bus().stats().GetCounter("messages_delivered").value();
  for (int i = 0; i < 32; ++i) {
    auto lease = magazine.AllocSync(looped, 16 << 10);
    if (!lease.ok() || !magazine.FreeSync(looped, *lease, 16 << 10).ok()) {
      std::fprintf(stderr, "hot loop failed\n");
      return 1;
    }
  }
  uint64_t bus_msgs = machine.bus().stats().GetCounter("messages_delivered").value() - bus_before;
  std::printf("hot loop: 32 alloc/free pairs cost %llu bus messages (hits=%llu misses=%llu)\n",
              static_cast<unsigned long long>(bus_msgs),
              static_cast<unsigned long long>(magazine.hits()),
              static_cast<unsigned long long>(magazine.misses()));
  // Settle the lease: cached regions go back to the controller in one batch.
  if (!magazine.FlushSync().ok()) {
    std::fprintf(stderr, "magazine flush failed\n");
    return 1;
  }
  machine.TeardownApplication(looped);
  machine.RunUntilIdle();

  // --- the same handshake, centralized: syscalls into one kernel ------------
  // Shares the machine's simulator and trace log, so the export shows both
  // control planes side by side. The sync wrappers drive the clock.
  mem::PhysicalMemory kernel_memory(64 << 20);
  baseline::CentralKernel kernel(&machine.simulator(), &kernel_memory, {}, &machine.trace());
  iommu::Iommu producer_iommu(producer.id());
  iommu::Iommu consumer_iommu(consumer.id());
  kernel.RegisterDevice(producer.id(), &producer_iommu);
  kernel.RegisterDevice(consumer.id(), &consumer_iommu);
  core::KernelControlClient kernel_client(&kernel, producer.id());

  Pasid kernel_app = machine.NewApplication("quickstart-baseline");
  auto kaddr = kernel_client.AllocSync(kernel_app, 64 << 10);
  std::printf("kernel baseline: alloc %s\n", kaddr.ok() ? "ok" : kaddr.status().ToString().c_str());
  if (!kaddr.ok()) {
    return 1;
  }
  auto kgrant =
      kernel_client.GrantSync(kernel_app, *kaddr, 64 << 10, consumer.id(), Access::kRead);
  std::printf("kernel baseline: grant %s\n", kgrant.ok() ? "ok" : "failed");
  auto kfree = kernel_client.FreeSync(kernel_app, *kaddr, 64 << 10);
  std::printf("kernel baseline: free %s\n", kfree.ok() ? "ok" : "failed");

  if (!trace_out.empty()) {
    std::ostringstream trace_json;
    machine.WriteChromeTrace(trace_json);
    if (!ValidateChromeTrace(trace_json.str())) {
      std::fprintf(stderr, "exported trace failed validation\n");
      return 1;
    }
    std::ofstream out(trace_out);
    out << trace_json.str();
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("\nwrote validated Chrome trace to %s (open in chrome://tracing)\n",
                trace_out.c_str());

    std::ostringstream metrics;
    machine.MetricsJson(metrics);
    if (!sim::ParseJson(metrics.str()).ok()) {
      std::fprintf(stderr, "metrics snapshot is not valid JSON\n");
      return 1;
    }
    return 0;
  }

  std::printf("\n--- control-plane trace (what the hardware did) ---\n");
  machine.trace().Dump(std::cout);
  return 0;
}
