// RpcEndpoint transaction-layer tests: deadlines, bounded retries with
// backoff, duplicate absorption through the replay cache, typed aborts on
// peer death and local failure, and seed-deterministic fault injection
// through the bus. The invariant under test everywhere: every call completes
// exactly once with a typed Status, no matter what the interconnect does.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "src/sim/fault.h"
#include "tests/test_util.h"

namespace lastcpu::dev {
namespace {

using testutil::EchoService;
using testutil::Harness;
using testutil::TestDevice;

class RpcTest : public ::testing::Test {
 protected:
  RpcTest()
      : nic_(DeviceId(1), "nic", harness_.Context()),
        ssd_(DeviceId(2), "ssd", harness_.Context()) {
    ssd_.AddService(std::make_unique<EchoService>(DeviceId(2), "echo"));
  }

  void PowerOnAll() {
    nic_.PowerOn();
    ssd_.PowerOn();
    harness_.simulator.Run();
  }

  proto::OpenRequest EchoOpen() { return proto::OpenRequest{"echo", "", 0, Pasid(1)}; }

  Harness harness_;
  TestDevice nic_;
  TestDevice ssd_;
};

TEST_F(RpcTest, CustomDeadlineFiresTimedOut) {
  PowerOnAll();
  ssd_.InjectFailure();  // silent: no bus notification, so only the deadline fires
  RpcOptions options;
  options.timeout = sim::Duration::Micros(200);
  sim::SimTime start = harness_.simulator.Now();
  std::optional<StatusCode> code;
  sim::SimTime completed;
  nic_.rpc().Call<proto::OpenResponse>(DeviceId(2), EchoOpen(), options,
                                       [&](Result<proto::OpenResponse> result) {
                                         code = result.status().code();
                                         completed = harness_.simulator.Now();
                                       });
  harness_.simulator.Run();
  EXPECT_EQ(code, StatusCode::kTimedOut);
  EXPECT_EQ(completed, start + sim::Duration::Micros(200));
  EXPECT_EQ(nic_.rpc().in_flight(), 0u);
}

TEST_F(RpcTest, RetryAfterDropSucceeds) {
  PowerOnAll();
  sim::FaultPlan all_drops;
  all_drops.drop_probability = 1.0;
  sim::FaultInjector injector(all_drops);
  harness_.bus.SetFaultInjector(&injector);

  RpcOptions options;
  options.timeout = sim::Duration::Micros(100);
  options.max_attempts = 3;
  options.backoff = sim::Duration::Micros(50);
  std::optional<Result<proto::OpenResponse>> outcome;
  nic_.rpc().Call<proto::OpenResponse>(
      DeviceId(2), EchoOpen(), options,
      [&](Result<proto::OpenResponse> result) { outcome = std::move(result); });
  // Let attempt 1 be dropped and its deadline expire, then heal the wire
  // before the retransmission goes out.
  harness_.simulator.RunFor(sim::Duration::Micros(120));
  ASSERT_FALSE(outcome.has_value());
  harness_.bus.SetFaultInjector(nullptr);
  harness_.simulator.Run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->ok()) << outcome->status().ToString();
  EXPECT_GE(injector.dropped(), 1u);
  EXPECT_GE(nic_.stats().GetCounter("request_retries").value(), 1u);
}

TEST_F(RpcTest, ExhaustedRetriesSurfaceTimedOut) {
  PowerOnAll();
  sim::FaultPlan all_drops;
  all_drops.drop_probability = 1.0;
  sim::FaultInjector injector(all_drops);
  harness_.bus.SetFaultInjector(&injector);

  RpcOptions options;
  options.timeout = sim::Duration::Micros(100);
  options.max_attempts = 3;
  std::optional<StatusCode> code;
  nic_.rpc().Call<proto::OpenResponse>(
      DeviceId(2), EchoOpen(), options,
      [&](Result<proto::OpenResponse> result) { code = result.status().code(); });
  harness_.simulator.Run();
  EXPECT_EQ(code, StatusCode::kTimedOut);
  EXPECT_EQ(nic_.stats().GetCounter("request_retries").value(), 2u);  // attempts 2 and 3
  EXPECT_EQ(nic_.stats().GetCounter("request_timeouts").value(), 1u);
  EXPECT_EQ(nic_.rpc().in_flight(), 0u);
  harness_.bus.SetFaultInjector(nullptr);
}

TEST_F(RpcTest, DuplicatedRequestExecutesOnce) {
  PowerOnAll();
  sim::FaultPlan duplicates;
  duplicates.duplicate_probability = 1.0;
  sim::FaultInjector injector(duplicates);
  harness_.bus.SetFaultInjector(&injector);

  int completions = 0;
  nic_.rpc().Call<proto::OpenResponse>(DeviceId(2), EchoOpen(),
                                       [&](Result<proto::OpenResponse> result) {
                                         EXPECT_TRUE(result.ok());
                                         ++completions;
                                       });
  harness_.simulator.Run();
  // The wire delivered the request (and the response) twice; the replay
  // cache made the service execute once, and the endpoint absorbed the
  // duplicate response as an orphan.
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(ssd_.FindServiceByName("echo")->instance_count(), 1u);
  EXPECT_GE(ssd_.stats().GetCounter("duplicate_requests").value(), 1u);
  EXPECT_GE(nic_.stats().GetCounter("orphan_responses").value(), 1u);
  harness_.bus.SetFaultInjector(nullptr);
}

TEST_F(RpcTest, RetransmittedNonIdempotentRequestIsReplayedNotReexecuted) {
  PowerOnAll();
  // Drop only the response path: the request executes, the client retries,
  // and the service must answer from its replay cache instead of opening a
  // second instance. We approximate "drop one message" by healing the wire
  // after the first attempt's deadline.
  sim::FaultPlan all_drops;
  all_drops.drop_probability = 1.0;
  sim::FaultInjector injector(all_drops);

  RpcOptions options;
  options.timeout = sim::Duration::Micros(100);
  options.max_attempts = 2;
  options.backoff = sim::Duration::Micros(50);
  std::optional<Result<proto::OpenResponse>> outcome;
  nic_.rpc().Call<proto::OpenResponse>(
      DeviceId(2), EchoOpen(), options,
      [&](Result<proto::OpenResponse> result) { outcome = std::move(result); });
  // Attempt 1's request is delivered clean (no injector yet)...
  harness_.simulator.RunFor(sim::Duration::Micros(2));
  // ...but its response window is poisoned: drop everything until past the
  // deadline, then heal so the retransmission round-trips.
  harness_.bus.SetFaultInjector(&injector);
  harness_.simulator.RunFor(sim::Duration::Micros(120));
  harness_.bus.SetFaultInjector(nullptr);
  harness_.simulator.Run();
  ASSERT_TRUE(outcome.has_value());
  if (outcome->ok()) {
    // Whether the first response raced the poisoned window or the retry was
    // served from the cache, the service must have executed exactly once.
    EXPECT_EQ(ssd_.FindServiceByName("echo")->instance_count(), 1u);
  }
}

TEST_F(RpcTest, PeerFailureBroadcastAbortsInFlightWithUnavailable) {
  PowerOnAll();
  ssd_.InjectFailure();
  sim::SimTime start = harness_.simulator.Now();
  std::optional<StatusCode> code;
  sim::SimTime completed;
  nic_.rpc().Call<proto::OpenResponse>(DeviceId(2), EchoOpen(),
                                       [&](Result<proto::OpenResponse> result) {
                                         code = result.status().code();
                                         completed = harness_.simulator.Now();
                                       });
  harness_.bus.ReportDeviceFailure(DeviceId(2));
  harness_.simulator.Run();
  EXPECT_EQ(code, StatusCode::kUnavailable);
  // The broadcast reached us long before the 100ms default deadline.
  EXPECT_LT(completed, start + sim::Duration::Millis(1));
  EXPECT_EQ(nic_.rpc().in_flight(), 0u);
}

TEST_F(RpcTest, LocalFailureAbortsEverythingWithAborted) {
  PowerOnAll();
  std::optional<StatusCode> code;
  nic_.rpc().Call<proto::OpenResponse>(
      DeviceId(2), EchoOpen(),
      [&](Result<proto::OpenResponse> result) { code = result.status().code(); });
  nic_.InjectFailure();
  harness_.simulator.Run();
  EXPECT_EQ(code, StatusCode::kAborted);
  EXPECT_EQ(nic_.rpc().in_flight(), 0u);
}

TEST_F(RpcTest, ExplicitAbortOrphansTheLateResponse) {
  PowerOnAll();
  std::optional<StatusCode> code;
  RequestId id = nic_.rpc().Call<proto::OpenResponse>(
      DeviceId(2), EchoOpen(),
      [&](Result<proto::OpenResponse> result) { code = result.status().code(); });
  nic_.rpc().Abort(id, Aborted("caller moved on"));
  EXPECT_EQ(code, StatusCode::kAborted);
  harness_.simulator.Run();
  // The echo service still answered; the response found no transaction.
  EXPECT_EQ(nic_.stats().GetCounter("orphan_responses").value(), 1u);
}

TEST_F(RpcTest, DelayedMessagesStillCompleteInOrderOfArrival) {
  PowerOnAll();
  sim::FaultPlan delays;
  delays.delay_probability = 1.0;
  delays.delay_min = sim::Duration::Micros(1);
  delays.delay_max = sim::Duration::Micros(10);
  sim::FaultInjector injector(delays);
  harness_.bus.SetFaultInjector(&injector);

  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    nic_.rpc().Call<proto::OpenResponse>(DeviceId(2), EchoOpen(),
                                         [&](Result<proto::OpenResponse> result) {
                                           EXPECT_TRUE(result.ok());
                                           ++completed;
                                         });
  }
  harness_.simulator.Run();
  EXPECT_EQ(completed, 8);
  EXPECT_GE(injector.delayed(), 8u);
  harness_.bus.SetFaultInjector(nullptr);
}

TEST_F(RpcTest, ReorderedMessagesAreAbsorbed) {
  PowerOnAll();
  sim::FaultPlan reorders;
  reorders.reorder_probability = 0.5;
  reorders.seed = 7;
  sim::FaultInjector injector(reorders);
  harness_.bus.SetFaultInjector(&injector);

  RpcOptions options;
  options.timeout = sim::Duration::Millis(1);
  options.max_attempts = 3;
  int completed = 0;
  for (int i = 0; i < 16; ++i) {
    nic_.rpc().Call<proto::OpenResponse>(
        DeviceId(2), EchoOpen(), options,
        [&](Result<proto::OpenResponse>) { ++completed; });
  }
  harness_.simulator.Run();
  // Correlation by request id makes ordering irrelevant: every call
  // completes, none hang, nothing leaks.
  EXPECT_EQ(completed, 16);
  EXPECT_EQ(nic_.rpc().in_flight(), 0u);
  EXPECT_GE(injector.reordered(), 1u);
  harness_.bus.SetFaultInjector(nullptr);
}

TEST_F(RpcTest, FaultSequenceIsSeedDeterministic) {
  struct RunRecord {
    uint64_t dropped, delayed, duplicated, reordered;
    int ok, failed;
    sim::SimTime end;
    bool operator==(const RunRecord& other) const {
      return std::tie(dropped, delayed, duplicated, reordered, ok, failed, end) ==
             std::tie(other.dropped, other.delayed, other.duplicated, other.reordered, other.ok,
                      other.failed, other.end);
    }
  };
  auto run = [](uint64_t seed) {
    Harness harness;
    TestDevice nic(DeviceId(1), "nic", harness.Context());
    TestDevice ssd(DeviceId(2), "ssd", harness.Context());
    ssd.AddService(std::make_unique<EchoService>(DeviceId(2), "echo"));
    nic.PowerOn();
    ssd.PowerOn();
    harness.simulator.Run();

    sim::FaultPlan plan;
    plan.drop_probability = 0.1;
    plan.delay_probability = 0.2;
    plan.duplicate_probability = 0.1;
    plan.reorder_probability = 0.1;
    plan.seed = seed;
    sim::FaultInjector injector(plan);
    harness.bus.SetFaultInjector(&injector);

    RpcOptions options;
    options.timeout = sim::Duration::Micros(200);
    options.max_attempts = 3;
    RunRecord record{};
    for (int i = 0; i < 40; ++i) {
      nic.rpc().Call<proto::OpenResponse>(DeviceId(2),
                                          proto::OpenRequest{"echo", "", 0, Pasid(1)}, options,
                                          [&record](Result<proto::OpenResponse> result) {
                                            result.ok() ? ++record.ok : ++record.failed;
                                          });
      harness.simulator.Run();
    }
    record.dropped = injector.dropped();
    record.delayed = injector.delayed();
    record.duplicated = injector.duplicated();
    record.reordered = injector.reordered();
    record.end = harness.simulator.Now();
    harness.bus.SetFaultInjector(nullptr);
    return record;
  };

  RunRecord first = run(42);
  RunRecord second = run(42);
  EXPECT_TRUE(first == second);
  EXPECT_EQ(first.ok + first.failed, 40);
  EXPECT_GT(first.dropped + first.delayed + first.duplicated + first.reordered, 0u);
}

TEST_F(RpcTest, DiscoveryWindowClosesWithCollectedOffers) {
  PowerOnAll();
  std::optional<size_t> count;
  sim::SimTime start = harness_.simulator.Now();
  sim::SimTime closed;
  nic_.rpc().Discover(proto::ServiceType::kCompute, "", sim::Duration::Micros(30),
                      [&](std::vector<proto::ServiceDescriptor> services) {
                        count = services.size();
                        closed = harness_.simulator.Now();
                      });
  harness_.simulator.Run();
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(closed, start + sim::Duration::Micros(30));
}

}  // namespace
}  // namespace lastcpu::dev
