// Control-plane robustness tests: shard registration epochs fencing stale
// MapDirectives, directory repointing after a shard quarantine, lease
// re-assertion across a shard restart (including the re-registration /
// fresh-allocation race), partition fail-fast semantics with parked one-ways
// released on heal, and three seeded chaos schedules (shard restart
// mid-burst, partition-then-heal, partition with in-flight cross-segment
// traffic) asserting byte-identical reruns, zero stranded grants, zero
// double-owned slabs, and durability of every acked allocation.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/bus/system_bus.h"
#include "src/core/control_plane.h"
#include "src/core/machine.h"
#include "src/iommu/iommu.h"
#include "src/memdev/shard_layout.h"
#include "src/proto/message.h"
#include "src/sim/fault.h"
#include "src/sim/simulator.h"

namespace lastcpu {
namespace {

using Respawn = sim::CrashSpec::Respawn;

// A bare self-managing device for issuing control traffic from a segment.
class Stub : public dev::Device {
 public:
  Stub(DeviceId id, const dev::DeviceContext& context, std::string name = "stub")
      : dev::Device(id, std::move(name), context) {}
};

struct Probe {
  std::vector<proto::Message> received;
  std::vector<sim::SimTime> at;
  bus::BusPort* port = nullptr;

  bus::SystemBus::Receiver Receiver(sim::Simulator* simulator) {
    return [this, simulator](proto::Message m) {
      received.push_back(std::move(m));
      at.push_back(simulator->Now());
    };
  }
};

// --- lease epoch fencing ------------------------------------------------------

TEST(EpochFencing, StaleDirectiveFencedAfterReannounce) {
  sim::Simulator simulator;
  bus::SystemBus bus(&simulator, {});
  iommu::Iommu shard_iommu{DeviceId(2)}, target_iommu{DeviceId(3)};
  Probe shard, target;
  shard.port = bus.Attach(DeviceId(2), "shard", shard.Receiver(&simulator), &shard_iommu);
  target.port = bus.Attach(DeviceId(3), "target", target.Receiver(&simulator), &target_iommu);
  for (Probe* probe : {&shard, &target}) {
    probe->port->Send(
        proto::Message{DeviceId(), kBusDevice, RequestId(), proto::AliveAnnounce{}});
  }
  simulator.Run();

  // The shard registers at epoch 2: a restarted controller's re-announce.
  proto::ShardRecord record;
  record.device = DeviceId(2);
  record.va_base = 0;
  record.va_limit = uint64_t{1} << 40;
  record.capacity_bytes = 1 << 20;
  record.epoch = 2;
  shard.port->Send(
      proto::Message{DeviceId(), kBusDevice, RequestId(), proto::MemShardAnnounce{record}});
  simulator.Run();

  // A directive computed before the restart (epoch 1) is a straggler from the
  // superseded incarnation: the bus must fence it, not program translations.
  proto::MapDirective stale;
  stale.target = DeviceId(3);
  stale.pasid = Pasid(7);
  stale.entries = {proto::MapEntry{16, 4, Access::kReadWrite}};
  stale.epoch = 1;
  shard.port->Send(proto::Message{DeviceId(), kBusDevice, RequestId(11), stale});
  simulator.Run();

  ASSERT_EQ(shard.received.size(), 1u);
  ASSERT_EQ(shard.received.back().type(), proto::MessageType::kErrorResponse);
  EXPECT_EQ(shard.received.back().As<proto::ErrorResponse>().code,
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(bus.stats().GetCounter("stale_directives_fenced").value(), 1u);

  // The current incarnation's directive (epoch 2) programs normally.
  proto::MapDirective fresh = stale;
  fresh.epoch = 2;
  shard.port->Send(proto::Message{DeviceId(), kBusDevice, RequestId(12), fresh});
  simulator.Run();
  ASSERT_EQ(shard.received.size(), 2u);
  EXPECT_EQ(shard.received.back().type(), proto::MessageType::kMapConfirm);
  EXPECT_EQ(bus.stats().GetCounter("stale_directives_fenced").value(), 1u);
}

// --- shard failover -----------------------------------------------------------

TEST(Failover, ClientRidesOutShardRestartAndReassertsLeases) {
  // One shard, killed mid-run and respawned clean: its tables are wiped and
  // its epoch bumps. The client must ride out the blackout (retrying instead
  // of surfacing kUnavailable) and rebuild the shard's state from its lease
  // ledger — including the race where a fresh allocation arrives while
  // re-registration is still in flight.
  core::MachineConfig config;
  sim::CrashSpec kill;
  kill.device = MakeSegmentDeviceId(0, 1).value();
  kill.at = sim::Duration::Micros(500);
  kill.respawn = Respawn::kClean;
  config.crash_plan.crashes = {kill};

  core::Machine machine(std::move(config));
  auto shards = machine.AddMemoryControllerShards(1);
  auto& stub = machine.Emplace<Stub>();
  ASSERT_EQ(shards[0]->id(), MakeSegmentDeviceId(0, 1));
  machine.Boot();

  core::ShardedControlClient client(&stub, machine.shard_infos());
  Pasid pasid = machine.NewApplication("app");
  auto before = client.AllocSync(pasid, 4 * kPageSize);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(client.lease_count(), 1u);
  EXPECT_EQ(shards[0]->epoch(), 1u);

  machine.RunFor(sim::Duration::Micros(520));
  // The kill has landed: the shard is dead or rebuilding. This allocation
  // races the lease re-registration and must still complete — the client
  // retries through kUnavailable (dead endpoint, then the recovery window).
  auto during = client.AllocSync(pasid, 4 * kPageSize);
  ASSERT_TRUE(during.ok()) << during.status().ToString();
  EXPECT_GE(client.op_retries(), 1u);

  machine.RunFor(sim::Duration::Millis(10));
  machine.RunUntilIdle();

  // The restarted incarnation: epoch bumped, recovery window exercised.
  EXPECT_EQ(shards[0]->epoch(), 2u);
  EXPECT_GE(shards[0]->stats().GetCounter("shard_state_resets").value(), 1u);
  EXPECT_GE(shards[0]->stats().GetCounter("recovery_rejections").value(), 1u);
  EXPECT_GE(shards[0]->stats().GetCounter("lease_reasserts_accepted").value(), 1u);
  EXPECT_GE(client.reasserts_sent(), 1u);
  EXPECT_GE(client.leases_reasserted(), 1u);
  EXPECT_EQ(client.leases_lost(), 0u);

  // The pre-kill lease survived the table wipe, the racing allocation is
  // durable too, and they landed on distinct addresses (no double-placement).
  EXPECT_TRUE(shards[0]->HasAllocationAt(pasid, *before));
  EXPECT_TRUE(shards[0]->HasAllocationAt(pasid, *during));
  EXPECT_NE(before->raw, during->raw);
  EXPECT_EQ(client.lease_count(), 2u);
}

TEST(Failover, TakeoverRepointsDirectoryAndAdoptsLeases) {
  // Kill the seg-1 shard for good: after quarantine the bus repoints its VA
  // slab to the surviving shard, the client re-fetches the directory, and the
  // survivor adopts the dead shard's leases (foreign frames, overlap-checked).
  core::MachineConfig config;
  config.topology.segments = 2;
  sim::CrashSpec kill;
  kill.device = MakeSegmentDeviceId(1, 1).value();
  kill.at = sim::Duration::Micros(500);
  kill.respawn = Respawn::kNever;
  config.crash_plan.crashes = {kill};

  core::Machine machine(std::move(config));
  auto shards = machine.AddMemoryControllerShards(2);
  auto& seg0 = machine.EmplaceOn<Stub>(0, "seg0-stub");
  auto& seg1 = machine.EmplaceOn<Stub>(1, "seg1-stub");
  machine.Boot();

  core::ShardedControlClient client(&seg1, machine.shard_infos(),
                                    core::AllocationPolicy::kHomeNode);
  Pasid pasid = machine.NewApplication("app");
  // Home-node placement: the lease lives on the doomed seg-1 shard, with a
  // cross-segment grant that must survive the takeover.
  auto va = client.AllocSync(pasid, 4 * kPageSize);
  ASSERT_TRUE(va.ok());
  EXPECT_EQ(memdev::ShardForVa(*va, 2), 1u);
  ASSERT_TRUE(client.GrantSync(pasid, *va, 4 * kPageSize, seg0.id(), Access::kRead).ok());

  machine.RunFor(sim::Duration::Millis(20));
  machine.RunUntilIdle();

  ASSERT_TRUE(machine.bus().supervisor().IsQuarantined(shards[1]->id()));
  // Directory repoint: both slabs now name the survivor, at its epoch.
  const auto& directory = machine.bus().shard_directory();
  ASSERT_EQ(directory.size(), 2u);
  for (const auto& shard_record : directory) {
    EXPECT_EQ(shard_record.device, shards[0]->id());
    EXPECT_EQ(shard_record.epoch, shards[0]->epoch());
  }
  EXPECT_EQ(machine.bus().stats().GetCounter("shard_takeovers").value(), 1u);

  // The client re-resolved and re-asserted; the survivor adopted the foreign
  // frame range and the grant rode along in the lease record.
  EXPECT_GE(client.directory_refreshes(), 1u);
  EXPECT_GE(client.leases_reasserted(), 1u);
  EXPECT_EQ(client.leases_lost(), 0u);
  EXPECT_TRUE(shards[0]->HasAllocationAt(pasid, *va));
  EXPECT_EQ(shards[0]->foreign_frame_ranges(), 1u);
  EXPECT_EQ(shards[0]->GrantsHeldBy(seg0.id()), 1u);

  // New allocations flow to the survivor without surfacing kUnavailable...
  auto post = client.AllocSync(pasid, 4 * kPageSize);
  ASSERT_TRUE(post.ok()) << post.status().ToString();
  // ...and freeing the adopted lease routes by address to its new owner.
  ASSERT_TRUE(client.FreeSync(pasid, *va, 4 * kPageSize).ok());
  EXPECT_EQ(shards[0]->stats().GetCounter("foreign_frames_released").value(), 1u);
  EXPECT_EQ(shards[0]->foreign_frame_ranges(), 0u);
}

// --- partition tolerance ------------------------------------------------------

TEST(PartitionTolerance, RequestsFailFastOneWaysParkUntilHeal) {
  sim::Simulator simulator;
  bus::BusConfig config;
  config.segments = 2;
  bus::SystemBus bus(&simulator, config);
  sim::FaultPlan plan;
  sim::PartitionSpec spec;
  spec.segment_a = 0;
  spec.segment_b = 1;
  spec.start = sim::Duration::Micros(100);
  spec.heal = sim::Duration::Micros(400);
  plan.partitions = {spec};
  sim::FaultInjector injector(plan);
  bus.SetFaultInjector(&injector);

  iommu::Iommu iommu_a{DeviceId(2)}, iommu_c{MakeSegmentDeviceId(1, 1)};
  Probe a, c;
  a.port = bus.Attach(DeviceId(2), "a", a.Receiver(&simulator), &iommu_a);
  c.port = bus.Attach(MakeSegmentDeviceId(1, 1), "c", c.Receiver(&simulator), &iommu_c);
  for (Probe* probe : {&a, &c}) {
    probe->port->Send(
        proto::Message{DeviceId(), kBusDevice, RequestId(), proto::AliveAnnounce{}});
  }
  simulator.Run();
  ASSERT_LT(simulator.Now(), sim::SimTime::FromNanos(100'000));

  // Inside the window: a request bounces immediately with kPartitioned...
  simulator.ScheduleAt(sim::SimTime::FromNanos(150'000), [&] {
    a.port->Send(proto::Message{DeviceId(), MakeSegmentDeviceId(1, 1), RequestId(21),
                                proto::Notify{InstanceId(1), 0}});
  });
  // ...while a one-way parks on the router and crosses after the heal.
  simulator.ScheduleAt(sim::SimTime::FromNanos(160'000), [&] {
    a.port->Send(proto::Message{DeviceId(), MakeSegmentDeviceId(1, 1), RequestId(),
                                proto::Notify{InstanceId(2), 0}});
  });
  simulator.Run();

  ASSERT_EQ(a.received.size(), 1u);
  ASSERT_EQ(a.received.back().type(), proto::MessageType::kErrorResponse);
  EXPECT_EQ(a.received.back().As<proto::ErrorResponse>().code, StatusCode::kPartitioned);
  ASSERT_EQ(c.received.size(), 1u);
  EXPECT_EQ(c.received.back().As<proto::Notify>().instance, InstanceId(2));
  EXPECT_GE(c.at.back(), sim::SimTime::FromNanos(400'000));
  EXPECT_EQ(bus.stats().GetCounter("partition_fail_fast").value(), 1u);
  EXPECT_EQ(bus.stats().GetCounter("partition_queued").value(), 1u);
  EXPECT_EQ(bus.stats().GetCounter("partition_released").value(), 1u);
  EXPECT_EQ(bus.stats().GetCounter("partition_dropped").value(), 0u);
}

TEST(PartitionTolerance, SegmentLocalTrafficProceedsCrossSegmentSpills) {
  core::MachineConfig config;
  config.topology.segments = 2;
  sim::PartitionSpec spec;
  spec.segment_a = 0;
  spec.segment_b = 1;
  spec.start = sim::Duration::Micros(400);
  spec.heal = sim::Duration::Micros(3400);
  config.fault_plan.partitions = {spec};

  core::Machine machine(std::move(config));
  auto shards = machine.AddMemoryControllerShards(2);
  auto& seg0 = machine.EmplaceOn<Stub>(0, "seg0-stub");
  machine.EmplaceOn<Stub>(1, "seg1-stub");
  machine.Boot();

  core::ShardedControlClient client(&seg0, machine.shard_infos(),
                                    core::AllocationPolicy::kInterleave);
  Pasid pasid = machine.NewApplication("app");
  machine.RunFor(sim::Duration::Micros(450));  // inside the partition window

  // A raw cross-segment request surfaces the distinct kPartitioned status,
  // not a generic timeout.
  std::optional<Status> raw;
  proto::MemAllocRequest request;
  request.pasid = pasid;
  request.bytes = 4 * kPageSize;
  seg0.rpc().Call<proto::MemAllocResponse>(
      shards[1]->id(), request,
      [&](Result<proto::MemAllocResponse> r) { raw = r.status(); });
  machine.RunFor(sim::Duration::Micros(100));
  ASSERT_TRUE(raw.has_value());
  EXPECT_EQ(raw->code(), StatusCode::kPartitioned);

  // Segment-local control traffic proceeds: the interleave client spills the
  // unreachable seg-1 shard and lands every allocation on its own segment.
  for (int i = 0; i < 4; ++i) {
    auto va = client.AllocSync(pasid, 4 * kPageSize);
    ASSERT_TRUE(va.ok()) << i << ": " << va.status().ToString();
    EXPECT_EQ(memdev::ShardForVa(*va, 2), 0u) << i;
  }
  EXPECT_GE(client.spills(), 1u);
  EXPECT_GE(machine.bus().stats().GetCounter("partition_fail_fast").value(), 1u);

  // After the heal, cross-segment placement resumes.
  machine.RunFor(sim::Duration::Millis(3));
  std::vector<uint32_t> owners;
  for (int i = 0; i < 2; ++i) {
    auto va = client.AllocSync(pasid, 4 * kPageSize);
    ASSERT_TRUE(va.ok()) << va.status().ToString();
    owners.push_back(memdev::ShardForVa(*va, 2));
  }
  EXPECT_NE(std::find(owners.begin(), owners.end(), 1u), owners.end());
}

// --- chaos schedules ----------------------------------------------------------

struct ChaosOutcome {
  uint64_t events = 0;
  std::string metrics;
  uint64_t ok_ops = 0;
  uint64_t failed_ops = 0;
  uint64_t durable = 0;       // acked allocations found on exactly one shard
  uint64_t double_owned = 0;  // acked allocations found on more than one
  uint64_t surviving_grants = 0;
  uint64_t stranded_grants = 0;
};

// Every acked allocation must live on exactly one shard: lost acks break
// durability, two owners break the exclusive-ownership invariant.
void SweepDurability(const std::vector<memdev::MemoryController*>& shards, Pasid pasid,
                     const std::vector<VirtAddr>& acked, ChaosOutcome& out) {
  for (VirtAddr va : acked) {
    int owners = 0;
    for (auto* shard : shards) {
      owners += shard->HasAllocationAt(pasid, va) ? 1 : 0;
    }
    if (owners == 1) ++out.durable;
    if (owners > 1) ++out.double_owned;
  }
}

// Kill one controller shard mid-burst; it respawns clean (tables wiped,
// epoch bumped) and the client's lease ledger restores its state.
ChaosOutcome RunShardRestartBurstSchedule() {
  core::MachineConfig config;
  config.topology.segments = 2;
  sim::CrashSpec kill;
  kill.device = MakeSegmentDeviceId(1, 1).value();
  kill.at = sim::Duration::Micros(700);
  kill.respawn = Respawn::kClean;
  config.crash_plan.crashes = {kill};

  core::Machine machine(std::move(config));
  auto shards = machine.AddMemoryControllerShards(2);
  auto& seg0 = machine.EmplaceOn<Stub>(0, "seg0-stub");
  auto& seg1 = machine.EmplaceOn<Stub>(1, "seg1-stub");
  machine.Boot();

  core::ShardedControlClient client(&seg0, machine.shard_infos(),
                                    core::AllocationPolicy::kInterleave);
  Pasid pasid = machine.NewApplication("app");
  std::vector<VirtAddr> acked;

  auto lease = client.AllocSync(pasid, 4 * kPageSize);
  EXPECT_TRUE(lease.ok());
  if (lease.ok()) {
    acked.push_back(*lease);
    EXPECT_TRUE(client.GrantSync(pasid, *lease, 4 * kPageSize, seg1.id(), Access::kRead).ok());
  }

  // A 16-op burst straddling the kill: half the interleaved targets hit the
  // dying shard while it is down or still refusing allocs in recovery.
  ChaosOutcome out;
  std::vector<Result<VirtAddr>> results;
  results.reserve(16);
  for (int i = 0; i < 16; ++i) {
    machine.simulator().ScheduleAt(sim::SimTime::FromNanos(200'000 + 100'000 * i),
                                   [&client, &results, pasid] {
                                     client.Alloc(pasid, 4 * kPageSize,
                                                  [&results](Result<VirtAddr> r) {
                                                    results.push_back(std::move(r));
                                                  });
                                   });
  }
  machine.RunFor(sim::Duration::Millis(30));
  machine.RunUntilIdle();

  for (const auto& r : results) {
    if (r.ok()) {
      ++out.ok_ops;
      acked.push_back(*r);
    } else {
      ++out.failed_ops;
    }
  }
  SweepDurability(shards, pasid, acked, out);
  out.surviving_grants = shards[0]->GrantsHeldBy(seg1.id());
  out.events = machine.simulator().events_executed();
  std::ostringstream metrics;
  machine.MetricsJson(metrics);
  out.metrics = metrics.str();
  return out;
}

TEST(RackChaos, ShardRestartMidBurstRerunsByteIdentical) {
  ChaosOutcome first = RunShardRestartBurstSchedule();
  ChaosOutcome second = RunShardRestartBurstSchedule();

  // The failover window is survivable: the overwhelming majority of the burst
  // completes (spilled or retried), and every acked op is durable on exactly
  // one shard — nothing lost, nothing double-owned.
  EXPECT_GE(first.ok_ops, 14u);
  EXPECT_EQ(first.durable, first.ok_ops + 1);  // +1: the pre-burst lease
  EXPECT_EQ(first.double_owned, 0u);
  EXPECT_EQ(first.surviving_grants, 1u);

  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.ok_ops, second.ok_ops);
  EXPECT_EQ(first.failed_ops, second.failed_ops);
  EXPECT_EQ(first.metrics, second.metrics);
}

// Partition the inter-segment link mid-burst, then heal it: traffic stays
// segment-local through the window and both sides reconcile afterwards.
ChaosOutcome RunPartitionHealSchedule() {
  core::MachineConfig config;
  config.topology.segments = 2;
  sim::PartitionSpec spec;
  spec.segment_a = 0;
  spec.segment_b = 1;
  spec.start = sim::Duration::Micros(600);
  spec.heal = sim::Duration::Micros(2600);
  config.fault_plan.partitions = {spec};

  core::Machine machine(std::move(config));
  auto shards = machine.AddMemoryControllerShards(2);
  auto& seg0 = machine.EmplaceOn<Stub>(0, "seg0-stub");
  auto& seg1 = machine.EmplaceOn<Stub>(1, "seg1-stub");
  machine.Boot();

  core::ShardedControlClient client(&seg0, machine.shard_infos(),
                                    core::AllocationPolicy::kInterleave);
  Pasid pasid = machine.NewApplication("app");
  std::vector<VirtAddr> acked;

  auto lease = client.AllocSync(pasid, 4 * kPageSize);
  EXPECT_TRUE(lease.ok());
  if (lease.ok()) {
    acked.push_back(*lease);
    EXPECT_TRUE(client.GrantSync(pasid, *lease, 4 * kPageSize, seg1.id(), Access::kRead).ok());
  }

  ChaosOutcome out;
  std::vector<Result<VirtAddr>> results;
  results.reserve(20);
  // 16 ops spanning [200us, 1700us] (the partition opens at 600us), then 4
  // more after the heal.
  for (int i = 0; i < 16; ++i) {
    machine.simulator().ScheduleAt(sim::SimTime::FromNanos(200'000 + 100'000 * i),
                                   [&client, &results, pasid] {
                                     client.Alloc(pasid, 4 * kPageSize,
                                                  [&results](Result<VirtAddr> r) {
                                                    results.push_back(std::move(r));
                                                  });
                                   });
  }
  for (int i = 0; i < 4; ++i) {
    machine.simulator().ScheduleAt(sim::SimTime::FromNanos(2'700'000 + 100'000 * i),
                                   [&client, &results, pasid] {
                                     client.Alloc(pasid, 4 * kPageSize,
                                                  [&results](Result<VirtAddr> r) {
                                                    results.push_back(std::move(r));
                                                  });
                                   });
  }
  machine.RunFor(sim::Duration::Millis(30));
  machine.RunUntilIdle();

  for (const auto& r : results) {
    if (r.ok()) {
      ++out.ok_ops;
      acked.push_back(*r);
    } else {
      ++out.failed_ops;
    }
  }
  SweepDurability(shards, pasid, acked, out);
  out.surviving_grants = shards[0]->GrantsHeldBy(seg1.id());
  out.events = machine.simulator().events_executed();
  std::ostringstream metrics;
  machine.MetricsJson(metrics);
  out.metrics = metrics.str();
  return out;
}

TEST(RackChaos, PartitionThenHealReconcilesByteIdentical) {
  ChaosOutcome first = RunPartitionHealSchedule();
  ChaosOutcome second = RunPartitionHealSchedule();

  // Every op completes: mid-partition targets spill to the local shard, and
  // after the heal both sides agree — all acked ops durable on exactly one
  // shard, the cross-segment grant intact, nothing double-owned.
  EXPECT_EQ(first.failed_ops, 0u);
  EXPECT_EQ(first.ok_ops, 20u);
  EXPECT_EQ(first.durable, first.ok_ops + 1);
  EXPECT_EQ(first.double_owned, 0u);
  EXPECT_EQ(first.surviving_grants, 1u);

  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.ok_ops, second.ok_ops);
  EXPECT_EQ(first.metrics, second.metrics);
}

// Kill the inter-segment router with traffic in flight: a cross-segment
// control response parks on the router until the heal while a cross-segment
// DMA — the data plane — proceeds through the partition untouched.
ChaosOutcome RunPartitionInFlightSchedule(sim::SimTime* dma_done_at, sim::SimTime* rpc_done_at) {
  core::MachineConfig config;
  config.topology.segments = 2;
  sim::PartitionSpec spec;
  spec.segment_a = 0;
  spec.segment_b = 1;
  spec.start = sim::Duration::Micros(501);
  spec.heal = sim::Duration::Micros(2001);
  config.fault_plan.partitions = {spec};

  core::Machine machine(std::move(config));
  auto shards = machine.AddMemoryControllerShards(2);
  auto& seg0 = machine.EmplaceOn<Stub>(0, "seg0-stub");
  auto& seg1 = machine.EmplaceOn<Stub>(1, "seg1-stub");
  machine.Boot();

  core::ShardedControlClient client(&seg0, machine.shard_infos(),
                                    core::AllocationPolicy::kInterleave);
  Pasid pasid = machine.NewApplication("app");
  std::vector<VirtAddr> acked;

  // The DMA target: seg-0 owned, granted writeable to the seg-1 stub.
  auto lease = client.AllocSync(pasid, 4 * kPageSize);
  EXPECT_TRUE(lease.ok());
  if (lease.ok()) {
    acked.push_back(*lease);
    EXPECT_TRUE(
        client.GrantSync(pasid, *lease, 4 * kPageSize, seg1.id(), Access::kReadWrite).ok());
  }

  ChaosOutcome out;
  std::vector<Result<VirtAddr>> results;
  results.reserve(4);
  auto collect = [&results](Result<VirtAddr> r) { results.push_back(std::move(r)); };
  // At 500us the interleave client targets the seg-1 shard: the request
  // crosses before the cut at 501us, so the *response* is the in-flight
  // casualty — parked on the router, released at the heal.
  machine.simulator().ScheduleAt(sim::SimTime::FromNanos(500'000),
                                 [&client, pasid, collect, rpc_done_at, &machine] {
                                   client.Alloc(pasid, 4 * kPageSize,
                                                [collect, rpc_done_at,
                                                 &machine](Result<VirtAddr> r) {
                                                  *rpc_done_at = machine.simulator().Now();
                                                  collect(std::move(r));
                                                });
                                 });
  // Mid-partition, the seg-1 stub DMAs into its cross-segment grant: the data
  // plane does not ride the control router and must complete before the heal.
  Status dma_status = Aborted("never ran");
  machine.simulator().ScheduleAt(
      sim::SimTime::FromNanos(600'000), [&machine, &seg1, pasid, &lease, &dma_status, dma_done_at] {
        std::vector<uint8_t> payload(1024, 0xAB);
        machine.fabric().DmaWrite(seg1.id(), pasid, *lease, std::move(payload),
                                  [&dma_status, dma_done_at, &machine](Status s) {
                                    dma_status = std::move(s);
                                    *dma_done_at = machine.simulator().Now();
                                  });
      });
  // Post-heal ops confirm the control plane reconciled.
  for (int i = 0; i < 2; ++i) {
    machine.simulator().ScheduleAt(sim::SimTime::FromNanos(2'100'000 + 100'000 * i),
                                   [&client, pasid, collect] {
                                     client.Alloc(pasid, 4 * kPageSize, collect);
                                   });
  }
  machine.RunFor(sim::Duration::Millis(30));
  machine.RunUntilIdle();

  EXPECT_TRUE(dma_status.ok()) << dma_status.ToString();
  for (const auto& r : results) {
    if (r.ok()) {
      ++out.ok_ops;
      acked.push_back(*r);
    } else {
      ++out.failed_ops;
    }
  }
  SweepDurability(shards, pasid, acked, out);
  out.surviving_grants = shards[0]->GrantsHeldBy(seg1.id());
  out.events = machine.simulator().events_executed();
  std::ostringstream metrics;
  machine.MetricsJson(metrics);
  out.metrics = metrics.str();
  return out;
}

TEST(RackChaos, RouterKillWithInFlightTrafficRerunsByteIdentical) {
  sim::SimTime first_dma, first_rpc, second_dma, second_rpc;
  ChaosOutcome first = RunPartitionInFlightSchedule(&first_dma, &first_rpc);
  ChaosOutcome second = RunPartitionInFlightSchedule(&second_dma, &second_rpc);

  // The data plane crossed during the partition; the parked control response
  // only completed after the heal.
  EXPECT_GT(first_dma, sim::SimTime::FromNanos(600'000));
  EXPECT_LT(first_dma, sim::SimTime::FromNanos(2'001'000));
  EXPECT_GE(first_rpc, sim::SimTime::FromNanos(2'001'000));

  EXPECT_EQ(first.failed_ops, 0u);
  EXPECT_EQ(first.ok_ops, 3u);
  EXPECT_EQ(first.durable, first.ok_ops + 1);
  EXPECT_EQ(first.double_owned, 0u);
  EXPECT_EQ(first.surviving_grants, 1u);

  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.metrics, second.metrics);
  EXPECT_EQ(first_dma, second_dma);
  EXPECT_EQ(first_rpc, second_rpc);
}

}  // namespace
}  // namespace lastcpu
