// System-bus tests: routing, broadcast discovery semantics, liveness,
// privileged MapDirective validation (the core security invariant), grant
// forwarding, teardown fan-out, and failure notification + reset.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "src/bus/system_bus.h"
#include "src/iommu/iommu.h"
#include "src/memdev/memory_controller.h"
#include "src/proto/message.h"
#include "src/sim/simulator.h"
#include "src/ssddev/file_client.h"
#include "src/ssddev/smart_ssd.h"
#include "tests/test_util.h"

namespace lastcpu::bus {
namespace {

// A scripted endpoint that records everything it receives.
struct Probe {
  std::vector<proto::Message> received;
  BusPort* port = nullptr;

  SystemBus::Receiver Receiver() {
    return [this](const proto::Message& m) { received.push_back(m); };
  }

  std::optional<proto::Message> LastOfType(proto::MessageType type) const {
    for (auto it = received.rbegin(); it != received.rend(); ++it) {
      if (it->type() == type) {
        return *it;
      }
    }
    return std::nullopt;
  }
};

class BusTest : public ::testing::Test {
 protected:
  BusTest() : bus_(&simulator_), nic_iommu_(DeviceId(1)), ssd_iommu_(DeviceId(2)),
              mc_iommu_(DeviceId(3)) {
    nic_.port = bus_.Attach(DeviceId(1), "nic", nic_.Receiver(), &nic_iommu_);
    ssd_.port = bus_.Attach(DeviceId(2), "ssd", ssd_.Receiver(), &ssd_iommu_);
    mc_.port = bus_.Attach(DeviceId(3), "memctrl", mc_.Receiver(), &mc_iommu_);
  }

  // Brings a device alive, optionally announcing a memory service.
  void Announce(Probe& probe, const std::string& name, bool memory_service = false) {
    proto::AliveAnnounce announce;
    announce.device_name = name;
    if (memory_service) {
      announce.services.push_back(
          {probe.port->id(), proto::ServiceType::kMemory, "dram", 0});
    }
    probe.port->Send(proto::Message{DeviceId(), kBusDevice, RequestId(), announce});
    simulator_.Run();
  }

  void AnnounceAll() {
    Announce(nic_, "nic");
    Announce(ssd_, "ssd");
    Announce(mc_, "memctrl", /*memory_service=*/true);
  }

  sim::Simulator simulator_;
  SystemBus bus_;
  iommu::Iommu nic_iommu_;
  iommu::Iommu ssd_iommu_;
  iommu::Iommu mc_iommu_;
  Probe nic_;
  Probe ssd_;
  Probe mc_;
};

TEST_F(BusTest, AliveAnnounceMarksDeviceAlive) {
  EXPECT_FALSE(bus_.IsAlive(DeviceId(1)));
  Announce(nic_, "nic");
  EXPECT_TRUE(bus_.IsAlive(DeviceId(1)));
  auto snapshot = bus_.LivenessSnapshot();
  EXPECT_EQ(snapshot.at(DeviceId(1)).name, "nic");
  EXPECT_TRUE(snapshot.at(DeviceId(1)).alive);
  EXPECT_FALSE(snapshot.at(DeviceId(2)).alive);
}

TEST_F(BusTest, MemoryServiceAnnouncementElectsController) {
  EXPECT_FALSE(bus_.memory_controller().valid());
  Announce(mc_, "memctrl", /*memory_service=*/true);
  EXPECT_EQ(bus_.memory_controller(), DeviceId(3));
}

TEST_F(BusTest, UnicastRoutesToDestination) {
  AnnounceAll();
  nic_.port->Send(proto::Message{DeviceId(), DeviceId(2), RequestId(1),
                                 proto::OpenRequest{"flashfs", "kv.log", 0, Pasid(7)}});
  simulator_.Run();
  auto open = ssd_.LastOfType(proto::MessageType::kOpenRequest);
  ASSERT_TRUE(open.has_value());
  EXPECT_EQ(open->src, DeviceId(1));  // src stamped by the port
  EXPECT_EQ(open->As<proto::OpenRequest>().resource, "kv.log");
  EXPECT_TRUE(mc_.LastOfType(proto::MessageType::kOpenRequest) == std::nullopt);
}

TEST_F(BusTest, SourceCannotSpoofIdentity) {
  AnnounceAll();
  proto::Message forged{DeviceId(2) /* pretend to be the SSD */, DeviceId(3), RequestId(5),
                        proto::Notify{InstanceId(1), 0}};
  nic_.port->Send(forged);
  simulator_.Run();
  auto seen = mc_.LastOfType(proto::MessageType::kNotify);
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(seen->src, DeviceId(1));  // the port identity won
}

TEST_F(BusTest, BroadcastReachesAllAliveExceptSender) {
  AnnounceAll();
  nic_.port->Send(proto::Message{DeviceId(), kBroadcastDevice, RequestId(2),
                                 proto::DiscoverRequest{proto::ServiceType::kFile, "kv.log"}});
  simulator_.Run();
  EXPECT_TRUE(ssd_.LastOfType(proto::MessageType::kDiscoverRequest).has_value());
  EXPECT_TRUE(mc_.LastOfType(proto::MessageType::kDiscoverRequest).has_value());
  EXPECT_FALSE(nic_.LastOfType(proto::MessageType::kDiscoverRequest).has_value());
}

TEST_F(BusTest, BroadcastSkipsDeadDevices) {
  Announce(nic_, "nic");
  Announce(mc_, "memctrl", true);
  // SSD never announced: it must not receive broadcasts.
  nic_.port->Send(proto::Message{DeviceId(), kBroadcastDevice, RequestId(2),
                                 proto::DiscoverRequest{proto::ServiceType::kFile, ""}});
  simulator_.Run();
  EXPECT_FALSE(ssd_.LastOfType(proto::MessageType::kDiscoverRequest).has_value());
  EXPECT_TRUE(mc_.LastOfType(proto::MessageType::kDiscoverRequest).has_value());
}

TEST_F(BusTest, UnicastToDeadDeviceBouncesError) {
  Announce(nic_, "nic");
  nic_.port->Send(proto::Message{DeviceId(), DeviceId(2), RequestId(9),
                                 proto::OpenRequest{"flashfs", "f", 0, Pasid(1)}});
  simulator_.Run();
  auto error = nic_.LastOfType(proto::MessageType::kErrorResponse);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->request_id, RequestId(9));
  EXPECT_EQ(error->As<proto::ErrorResponse>().code, StatusCode::kUnavailable);
}

TEST_F(BusTest, MessagesTakeSimulatedTime) {
  AnnounceAll();
  sim::SimTime before = simulator_.Now();
  nic_.port->Send(proto::Message{DeviceId(), DeviceId(2), RequestId(1),
                                 proto::Notify{InstanceId(0), 0}});
  size_t count_before = ssd_.received.size();
  simulator_.Run();
  EXPECT_GT(simulator_.Now(), before);
  EXPECT_EQ(ssd_.received.size(), count_before + 1);
}

TEST_F(BusTest, MapDirectiveFromControllerProgramsTargetIommu) {
  AnnounceAll();
  proto::MapDirective directive;
  directive.target = DeviceId(1);
  directive.pasid = Pasid(7);
  directive.entries = {{0x10, 0x99, Access::kReadWrite}};
  mc_.port->Send(proto::Message{DeviceId(), kBusDevice, RequestId(42), directive});
  simulator_.Run();
  // The NIC's IOMMU now translates.
  auto t = nic_iommu_.Translate(Pasid(7), VirtAddr(0x10 << kPageShift), Access::kWrite);
  EXPECT_TRUE(t.ok());
  // The controller received the confirmation with correlated id.
  auto confirm = mc_.LastOfType(proto::MessageType::kMapConfirm);
  ASSERT_TRUE(confirm.has_value());
  EXPECT_EQ(confirm->request_id, RequestId(42));
  EXPECT_EQ(confirm->As<proto::MapConfirm>().target, DeviceId(1));
}

TEST_F(BusTest, MapDirectiveFromNonControllerRejected) {
  AnnounceAll();
  proto::MapDirective directive;
  directive.target = DeviceId(2);
  directive.pasid = Pasid(7);
  directive.entries = {{0x10, 0x99, Access::kReadWrite}};
  // The NIC (not the memory controller) tries to program the SSD's IOMMU.
  nic_.port->Send(proto::Message{DeviceId(), kBusDevice, RequestId(43), directive});
  simulator_.Run();
  auto error = nic_.LastOfType(proto::MessageType::kErrorResponse);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->As<proto::ErrorResponse>().code, StatusCode::kPermissionDenied);
  // And the SSD's IOMMU was NOT touched.
  EXPECT_EQ(ssd_iommu_.mapped_pages(Pasid(7)), 0u);
}

TEST_F(BusTest, UnmapDirectiveRemovesMapping) {
  AnnounceAll();
  proto::MapDirective map;
  map.target = DeviceId(1);
  map.pasid = Pasid(7);
  map.entries = {{0x10, 0x99, Access::kReadWrite}};
  mc_.port->Send(proto::Message{DeviceId(), kBusDevice, RequestId(1), map});
  simulator_.Run();
  ASSERT_EQ(nic_iommu_.mapped_pages(Pasid(7)), 1u);

  proto::MapDirective unmap = map;
  unmap.unmap = true;
  mc_.port->Send(proto::Message{DeviceId(), kBusDevice, RequestId(2), unmap});
  simulator_.Run();
  EXPECT_EQ(nic_iommu_.mapped_pages(Pasid(7)), 0u);
}

TEST_F(BusTest, GrantForwardedToMemoryController) {
  AnnounceAll();
  nic_.port->Send(proto::Message{
      DeviceId(), kBusDevice, RequestId(7),
      proto::GrantRequest{Pasid(7), VirtAddr(0x10000), 4096, DeviceId(2), Access::kRead}});
  simulator_.Run();
  auto grant = mc_.LastOfType(proto::MessageType::kGrantRequest);
  ASSERT_TRUE(grant.has_value());
  EXPECT_EQ(grant->src, DeviceId(1));
  EXPECT_EQ(grant->As<proto::GrantRequest>().grantee, DeviceId(2));
}

TEST_F(BusTest, GrantWithoutControllerFails) {
  Announce(nic_, "nic");  // no memory controller announced
  nic_.port->Send(proto::Message{
      DeviceId(), kBusDevice, RequestId(7),
      proto::GrantRequest{Pasid(7), VirtAddr(0x10000), 4096, DeviceId(2), Access::kRead}});
  simulator_.Run();
  auto error = nic_.LastOfType(proto::MessageType::kErrorResponse);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->As<proto::ErrorResponse>().code, StatusCode::kUnavailable);
}

TEST_F(BusTest, TeardownFansOutToAllAliveDevices) {
  AnnounceAll();
  nic_.port->Send(
      proto::Message{DeviceId(), kBusDevice, RequestId(3), proto::TeardownApp{Pasid(7)}});
  simulator_.Run();
  EXPECT_TRUE(nic_.LastOfType(proto::MessageType::kTeardownApp).has_value());
  EXPECT_TRUE(ssd_.LastOfType(proto::MessageType::kTeardownApp).has_value());
  EXPECT_TRUE(mc_.LastOfType(proto::MessageType::kTeardownApp).has_value());
}

TEST_F(BusTest, DeviceFailureNotifiesSurvivorsAndPulsesReset) {
  AnnounceAll();
  bus_.ReportDeviceFailure(DeviceId(2));
  simulator_.Run();
  EXPECT_FALSE(bus_.IsAlive(DeviceId(2)));
  auto nic_notice = nic_.LastOfType(proto::MessageType::kDeviceFailed);
  ASSERT_TRUE(nic_notice.has_value());
  EXPECT_EQ(nic_notice->As<proto::DeviceFailed>().device, DeviceId(2));
  EXPECT_TRUE(mc_.LastOfType(proto::MessageType::kDeviceFailed).has_value());
  // The failed device received the reset pulse.
  EXPECT_TRUE(ssd_.LastOfType(proto::MessageType::kResetSignal).has_value());
  // And it did not get its own failure notice.
  EXPECT_FALSE(ssd_.LastOfType(proto::MessageType::kDeviceFailed).has_value());
}

TEST_F(BusTest, FailedMemoryControllerIsDeposed) {
  AnnounceAll();
  ASSERT_EQ(bus_.memory_controller(), DeviceId(3));
  bus_.ReportDeviceFailure(DeviceId(3));
  simulator_.Run();
  EXPECT_FALSE(bus_.memory_controller().valid());
}

TEST_F(BusTest, FailedDeviceCanReannounceAfterReset) {
  AnnounceAll();
  bus_.ReportDeviceFailure(DeviceId(2));
  // Announce inside the supervisor's restart window (a probe never answers
  // the reset pulse, so draining the simulator would exhaust the policy and
  // quarantine the device).
  simulator_.RunFor(sim::Duration::Micros(10));
  EXPECT_FALSE(bus_.IsAlive(DeviceId(2)));
  Announce(ssd_, "ssd");  // self-test passed again
  EXPECT_TRUE(bus_.IsAlive(DeviceId(2)));
  EXPECT_EQ(bus_.supervisor().StateOf(DeviceId(2)),
            DeviceSupervisor::SupervisionState::kHealthy);
}

TEST_F(BusTest, DuplicateFailureReportIsIdempotent) {
  AnnounceAll();
  // A watchdog sweep racing an explicit report (or a chaos harness
  // re-killing dead silicon) must not open a second restart episode.
  bus_.ReportDeviceFailure(DeviceId(2));
  bus_.ReportDeviceFailure(DeviceId(2));
  simulator_.RunFor(sim::Duration::Micros(10));
  bus_.ReportDeviceFailure(DeviceId(2));
  simulator_.RunFor(sim::Duration::Micros(10));
  int notices = 0;
  for (const auto& m : nic_.received) {
    if (m.type() == proto::MessageType::kDeviceFailed) {
      ++notices;
    }
  }
  EXPECT_EQ(notices, 1);
  EXPECT_EQ(bus_.stats().GetCounter("duplicate_failure_reports").value(), 2u);
  // One episode, one (immediate) reset pulse so far.
  int pulses = 0;
  for (const auto& m : ssd_.received) {
    if (m.type() == proto::MessageType::kResetSignal) {
      ++pulses;
    }
  }
  EXPECT_EQ(pulses, 1);
}

TEST_F(BusTest, LateHeartbeatDoesNotResurrectFailedDevice) {
  AnnounceAll();
  uint64_t beats_before = bus_.stats().GetCounter("heartbeats").value();
  bus_.ReportDeviceFailure(DeviceId(2));
  // A heartbeat already on the wire when the device was declared failed:
  // only a full alive announce (completed self-test) may bring it back.
  ssd_.port->Send(proto::Message{DeviceId(), kBusDevice, RequestId(), proto::Heartbeat{}});
  simulator_.RunFor(sim::Duration::Micros(10));
  EXPECT_FALSE(bus_.IsAlive(DeviceId(2)));
  EXPECT_EQ(bus_.stats().GetCounter("heartbeats").value(), beats_before);
  EXPECT_EQ(bus_.stats().GetCounter("stale_heartbeats_ignored").value(), 1u);
}

TEST_F(BusTest, UnansweredResetPulsesEndInQuarantine) {
  AnnounceAll();
  bus_.ReportDeviceFailure(DeviceId(2));
  // Probes never answer a reset pulse with a new self-test, so draining the
  // simulator walks the whole policy: pulse, deadline, backoff, ... until
  // the attempt budget runs out and the device is quarantined.
  simulator_.Run();
  EXPECT_TRUE(bus_.supervisor().IsQuarantined(DeviceId(2)));
  EXPECT_FALSE(bus_.IsAlive(DeviceId(2)));
  RestartPolicy policy;  // defaults mirror the bus config used by BusTest
  EXPECT_EQ(bus_.stats().GetCounter("supervisor_restarts").value(),
            policy.max_restart_attempts);
  EXPECT_EQ(bus_.stats().GetCounter("supervisor_quarantines").value(), 1u);
  // Exactly one terminal broadcast, delivered to every survivor and never
  // to the corpse.
  int nic_notices = 0;
  int mc_notices = 0;
  for (const auto& m : nic_.received) {
    if (m.type() == proto::MessageType::kDevicePermanentlyFailed) {
      ++nic_notices;
      EXPECT_EQ(m.As<proto::DevicePermanentlyFailed>().device, DeviceId(2));
    }
  }
  for (const auto& m : mc_.received) {
    if (m.type() == proto::MessageType::kDevicePermanentlyFailed) {
      ++mc_notices;
    }
  }
  EXPECT_EQ(nic_notices, 1);
  EXPECT_EQ(mc_notices, 1);
  EXPECT_FALSE(ssd_.LastOfType(proto::MessageType::kDevicePermanentlyFailed).has_value());
}

TEST_F(BusTest, QuarantinedDeviceCannotReannounce) {
  AnnounceAll();
  bus_.ReportDeviceFailure(DeviceId(2));
  simulator_.Run();  // exhaust the restart policy -> quarantine
  ASSERT_TRUE(bus_.supervisor().IsQuarantined(DeviceId(2)));
  Announce(ssd_, "ssd");  // a late self-test completion
  EXPECT_FALSE(bus_.IsAlive(DeviceId(2)));
  EXPECT_TRUE(bus_.supervisor().IsQuarantined(DeviceId(2)));
  EXPECT_EQ(bus_.stats().GetCounter("quarantined_announces_rejected").value(), 1u);
}

TEST_F(BusTest, RestartBackoffDoublesBetweenPulses) {
  AnnounceAll();
  bus_.ReportDeviceFailure(DeviceId(2));
  auto pulses = [this] {
    int n = 0;
    for (const auto& m : ssd_.received) {
      if (m.type() == proto::MessageType::kResetSignal) {
        ++n;
      }
    }
    return n;
  };
  // Pulse 0 fires immediately (legacy timing); pulse 1 only after the
  // restart deadline (500us) plus the first backoff step (50us).
  simulator_.RunFor(sim::Duration::Micros(10));
  EXPECT_EQ(pulses(), 1);
  simulator_.RunFor(sim::Duration::Micros(400));
  EXPECT_EQ(pulses(), 1);
  simulator_.RunFor(sim::Duration::Micros(200));
  EXPECT_EQ(pulses(), 2);
}

TEST_F(BusTest, TableUpdatesSerializeOnOneEngine) {
  AnnounceAll();
  // Two large directives sent together: total time must reflect both.
  proto::MapDirective directive;
  directive.target = DeviceId(1);
  directive.pasid = Pasid(7);
  for (uint64_t i = 0; i < 512; ++i) {
    directive.entries.push_back({i, 1000 + i, Access::kReadWrite});
  }
  mc_.port->Send(proto::Message{DeviceId(), kBusDevice, RequestId(1), directive});
  proto::MapDirective second = directive;
  second.pasid = Pasid(8);
  mc_.port->Send(proto::Message{DeviceId(), kBusDevice, RequestId(2), second});
  simulator_.Run();
  EXPECT_EQ(nic_iommu_.mapped_pages(Pasid(7)), 512u);
  EXPECT_EQ(nic_iommu_.mapped_pages(Pasid(8)), 512u);
  // Both confirms arrived.
  int confirms = 0;
  for (const auto& m : mc_.received) {
    if (m.type() == proto::MessageType::kMapConfirm) {
      ++confirms;
    }
  }
  EXPECT_EQ(confirms, 2);
}

TEST_F(BusTest, HeartbeatsRefreshLiveness) {
  AnnounceAll();
  sim::SimTime before = simulator_.Now();
  simulator_.RunFor(sim::Duration::Micros(10));
  nic_.port->Send(proto::Message{DeviceId(), kBusDevice, RequestId(), proto::Heartbeat{}});
  simulator_.Run();
  auto snapshot = bus_.LivenessSnapshot();
  EXPECT_GT(snapshot.at(DeviceId(1)).last_heartbeat, before);
  EXPECT_TRUE(snapshot.at(DeviceId(1)).heartbeats_seen);
  EXPECT_FALSE(snapshot.at(DeviceId(2)).heartbeats_seen);
  EXPECT_EQ(bus_.stats().GetCounter("heartbeats").value(), 1u);
}

TEST(BusWatchdogTest, OnlyParticipatingDevicesAreWatched) {
  sim::Simulator simulator;
  bus::BusConfig config;
  config.heartbeat_timeout = sim::Duration::Micros(500);
  SystemBus bus(&simulator, config);
  iommu::Iommu iommu_a(DeviceId(1));
  iommu::Iommu iommu_b(DeviceId(2));
  Probe silent;
  Probe beating;
  silent.port = bus.Attach(DeviceId(1), "silent", silent.Receiver(), &iommu_a);
  beating.port = bus.Attach(DeviceId(2), "beating", beating.Receiver(), &iommu_b);
  silent.port->Send(proto::Message{DeviceId(), kBusDevice, RequestId(), proto::AliveAnnounce{}});
  beating.port->Send(proto::Message{DeviceId(), kBusDevice, RequestId(), proto::AliveAnnounce{}});
  beating.port->Send(proto::Message{DeviceId(), kBusDevice, RequestId(), proto::Heartbeat{}});
  simulator.Run();
  ASSERT_TRUE(bus.IsAlive(DeviceId(1)));
  ASSERT_TRUE(bus.IsAlive(DeviceId(2)));

  // Far past the timeout with no further heartbeats: only the device that
  // ever participated is declared failed.
  simulator.RunFor(sim::Duration::Millis(5));
  EXPECT_TRUE(bus.IsAlive(DeviceId(1)));   // never opted in
  EXPECT_FALSE(bus.IsAlive(DeviceId(2)));  // opted in, went silent
  EXPECT_GE(bus.stats().GetCounter("watchdog_failures").value(), 1u);
}

TEST_F(BusTest, StatsCountTraffic) {
  AnnounceAll();
  nic_.port->Send(proto::Message{DeviceId(), DeviceId(2), RequestId(1),
                                 proto::Notify{InstanceId(0), 0}});
  simulator_.Run();
  EXPECT_GE(bus_.stats().GetCounter("messages_sent").value(), 4u);  // 3 alive + 1 notify
  EXPECT_GT(bus_.stats().GetCounter("bytes_sent").value(), 0u);
}

// The watchdog-vs-consumer end-to-end case: a provider dies *silently* in
// the middle of a file read. The watchdog must notice, broadcast the
// failure, and the consumer's in-flight request must complete with
// kUnavailable — with no leaked service instances or virtqueue slots.
TEST(WatchdogRecoveryTest, ProviderKilledMidReadCompletesWithUnavailable) {
  sim::Simulator simulator;
  sim::TraceLog trace;
  mem::PhysicalMemory memory(64 << 20);
  fabric::Fabric fabric(&simulator, &memory);
  BusConfig bus_config;
  bus_config.heartbeat_timeout = sim::Duration::Millis(1);
  SystemBus bus(&simulator, bus_config, &trace);
  dev::DeviceContext context{&simulator, &bus, &fabric, &trace};

  memdev::MemoryController controller(DeviceId(3), context, &memory);
  ssddev::SmartSsdConfig ssd_config;
  ssd_config.host_auth_service = false;
  ssd_config.device.heartbeat_period = sim::Duration::Micros(200);
  ssddev::SmartSsd ssd(DeviceId(2), context, ssd_config);
  testutil::TestDevice nic(DeviceId(1), "nic", context);
  ssddev::FileClient client(&nic, Pasid(7));
  nic.doorbell_handler = [&](DeviceId from, uint64_t value) {
    client.HandleDoorbell(from, value);
  };
  ssd.ProvisionFile("kv.log", std::vector<uint8_t>(4096, 0x5A));
  controller.PowerOn();
  ssd.PowerOn();
  nic.PowerOn();
  simulator.Run();

  std::optional<Status> opened;
  client.Open("kv.log", 0, [&](Status s) { opened = s; });
  simulator.Run();
  ASSERT_TRUE(opened.has_value() && opened->ok());
  ASSERT_EQ(ssd.file_service().instance_count(), 1u);

  std::optional<Status> read_status;
  client.ReadAt(0, 64, [&](Result<std::vector<uint8_t>> r) { read_status = r.status(); });
  simulator.RunFor(sim::Duration::Micros(1));
  ASSERT_EQ(client.InFlight(), 1u);
  ASSERT_FALSE(read_status.has_value());

  // The SSD dies silently — nobody calls ReportDeviceFailure; only its
  // missing heartbeats give it away.
  ssd.InjectFailure();
  simulator.RunFor(sim::Duration::Millis(5));

  // The watchdog noticed and told the consumer: the read completed with a
  // typed kUnavailable instead of hanging.
  EXPECT_GE(bus.stats().GetCounter("watchdog_failures").value(), 1u);
  ASSERT_TRUE(read_status.has_value());
  EXPECT_EQ(read_status->code(), StatusCode::kUnavailable);
  // Nothing leaked: no in-flight slots on the client, no session on the
  // provider (it came back through reset with a clean service table).
  EXPECT_EQ(client.InFlight(), 0u);
  EXPECT_FALSE(client.ready());
  EXPECT_EQ(ssd.file_service().instance_count(), 0u);
}

}  // namespace
}  // namespace lastcpu::bus
