// Rack-scale topology tests: segment-qualified device ids, shard VA slabs,
// the bus shard directory and vaddr routing, allocation policies of the
// ShardedControlClient, cross-segment hop costing, segment-scoped failure
// notices, and a seeded chaos schedule that kills one controller shard and
// asserts quarantine + cross-segment grant reclamation reruns byte-identical.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/bus/system_bus.h"
#include "src/core/control_plane.h"
#include "src/core/machine.h"
#include "src/iommu/iommu.h"
#include "src/memdev/shard_layout.h"
#include "src/proto/message.h"
#include "src/sim/simulator.h"

namespace lastcpu {
namespace {

using Respawn = sim::CrashSpec::Respawn;

// A bare self-managing device for issuing control traffic from a segment.
class Stub : public dev::Device {
 public:
  Stub(DeviceId id, const dev::DeviceContext& context, std::string name = "stub")
      : dev::Device(id, std::move(name), context) {}
};

TEST(SegmentIds, HelpersRoundTrip) {
  DeviceId flat(7);
  EXPECT_EQ(SegmentOf(flat), 0u);
  EXPECT_EQ(LocalDeviceId(flat), 7u);
  DeviceId rack = MakeSegmentDeviceId(3, 12);
  EXPECT_EQ(SegmentOf(rack), 3u);
  EXPECT_EQ(LocalDeviceId(rack), 12u);
  EXPECT_FALSE(IsReservedDevice(rack));
  // Pseudo-devices carry no segment: they live on the management ring.
  EXPECT_TRUE(IsReservedDevice(kBusDevice));
  EXPECT_TRUE(IsReservedDevice(kBroadcastDevice));
  EXPECT_EQ(SegmentOf(kBusDevice), 0u);
}

TEST(ShardVaLayout, SlabsAndClamping) {
  EXPECT_EQ(memdev::ShardVaBase(0), 0u);
  EXPECT_EQ(memdev::ShardVaLimit(0), memdev::kShardVaStride);
  EXPECT_EQ(memdev::ShardVaBase(3), 3 * memdev::kShardVaStride);
  EXPECT_EQ(memdev::ShardForVa(VirtAddr(uint64_t{1} << 32), 4), 0u);
  EXPECT_EQ(memdev::ShardForVa(VirtAddr(memdev::ShardVaBase(2) + 4096), 4), 2u);
  // Addresses past the last slab clamp to the last shard.
  EXPECT_EQ(memdev::ShardForVa(VirtAddr(memdev::ShardVaBase(9)), 4), 3u);
}

TEST(RackMachine, BootAssemblesShardsAndDirectory) {
  core::MachineConfig config;
  config.topology.segments = 2;
  config.topology.memory_shards = 4;
  core::Machine machine(config);
  machine.Boot();

  ASSERT_EQ(machine.shard_controllers().size(), 4u);
  ASSERT_EQ(machine.shard_infos().size(), 4u);
  const auto& directory = machine.bus().shard_directory();
  ASSERT_EQ(directory.size(), 4u);
  uint64_t total_capacity = 0;
  for (size_t i = 0; i < directory.size(); ++i) {
    EXPECT_EQ(directory[i].va_base, memdev::ShardVaBase(static_cast<uint32_t>(i)));
    EXPECT_EQ(directory[i].va_limit, memdev::ShardVaLimit(static_cast<uint32_t>(i)));
    EXPECT_EQ(directory[i].device, machine.shard_infos()[i].device);
    total_capacity += directory[i].capacity_bytes;
  }
  // Shards 0,1 on segment 0; shards 2,3 on segment 1. Every frame is owned.
  EXPECT_EQ(directory[0].segment, 0u);
  EXPECT_EQ(directory[1].segment, 0u);
  EXPECT_EQ(directory[2].segment, 1u);
  EXPECT_EQ(directory[3].segment, 1u);
  EXPECT_EQ(total_capacity, machine.memory().num_frames() * kPageSize);
}

TEST(RackMachine, ShardDirectoryRpc) {
  core::MachineConfig config;
  config.topology.segments = 2;
  config.topology.memory_shards = 2;
  core::Machine machine(config);
  auto& stub = machine.Emplace<Stub>();
  machine.Boot();

  std::optional<Result<proto::ShardDirectoryResponse>> got;
  stub.rpc().Call<proto::ShardDirectoryResponse>(
      kBusDevice, proto::ShardDirectoryRequest{},
      [&](Result<proto::ShardDirectoryResponse> r) { got = std::move(r); });
  machine.RunUntilIdle();
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok()) << got->status().ToString();
  EXPECT_EQ((*got)->shards.size(), 2u);
}

TEST(RackMachine, FlatMachineSynthesizesSingleRecordDirectory) {
  core::Machine machine;
  auto& memctrl = machine.AddMemoryController();
  auto& stub = machine.Emplace<Stub>();
  machine.Boot();

  EXPECT_TRUE(machine.bus().shard_directory().empty());
  std::optional<Result<proto::ShardDirectoryResponse>> got;
  stub.rpc().Call<proto::ShardDirectoryResponse>(
      kBusDevice, proto::ShardDirectoryRequest{},
      [&](Result<proto::ShardDirectoryResponse> r) { got = std::move(r); });
  machine.RunUntilIdle();
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok()) << got->status().ToString();
  ASSERT_EQ((*got)->shards.size(), 1u);
  EXPECT_EQ((*got)->shards[0].device, memctrl.id());
  EXPECT_EQ((*got)->shards[0].va_limit, 0u);  // unbounded: the whole space
}

TEST(RackMachine, SingleShardMatchesFlatVaLayout) {
  VirtAddr flat_va;
  {
    core::Machine machine;
    machine.AddMemoryController();
    auto& stub = machine.Emplace<Stub>();
    machine.Boot();
    core::BusControlClient client(&stub, machine.bus().memory_controller());
    Pasid pasid = machine.NewApplication("app");
    auto va = client.AllocSync(pasid, 4 * kPageSize);
    ASSERT_TRUE(va.ok());
    flat_va = *va;
  }
  core::MachineConfig config;
  config.topology.memory_shards = 1;
  core::Machine machine(config);
  auto& stub = machine.Emplace<Stub>();
  machine.Boot();
  core::ShardedControlClient client(&stub, machine.shard_infos());
  Pasid pasid = machine.NewApplication("app");
  auto va = client.AllocSync(pasid, 4 * kPageSize);
  ASSERT_TRUE(va.ok());
  // Shard 0's slab starts at 0 and bumps from the classic base, so a one-shard
  // rack hands out exactly the flat machine's addresses.
  EXPECT_EQ(*va, flat_va);
  EXPECT_EQ(va->raw, uint64_t{1} << 32);
}

// Builds the standard two-segment rig: 2 shards (one per segment) added
// first so ids are deterministic, then one stub per segment.
struct RackRig {
  std::unique_ptr<core::Machine> machine;
  memdev::MemoryController* shard0 = nullptr;
  memdev::MemoryController* shard1 = nullptr;
  Stub* seg0 = nullptr;
  Stub* seg1 = nullptr;

  static RackRig Build(core::MachineConfig config = {}) {
    config.topology.segments = 2;
    RackRig rig;
    rig.machine = std::make_unique<core::Machine>(std::move(config));
    auto shards = rig.machine->AddMemoryControllerShards(2);
    rig.shard0 = shards[0];
    rig.shard1 = shards[1];
    rig.seg0 = &rig.machine->EmplaceOn<Stub>(0, "seg0-stub");
    rig.seg1 = &rig.machine->EmplaceOn<Stub>(1, "seg1-stub");
    rig.machine->Boot();
    return rig;
  }
};

TEST(AllocationPolicy, HomeNodePrefersLocalShard) {
  RackRig rig = RackRig::Build();
  EXPECT_EQ(SegmentOf(rig.seg1->id()), 1u);
  core::ShardedControlClient local(rig.seg0, rig.machine->shard_infos(),
                                   core::AllocationPolicy::kHomeNode);
  core::ShardedControlClient remote(rig.seg1, rig.machine->shard_infos(),
                                    core::AllocationPolicy::kHomeNode);
  Pasid pasid = rig.machine->NewApplication("app");
  auto va0 = local.AllocSync(pasid, 4 * kPageSize);
  auto va1 = remote.AllocSync(pasid, 4 * kPageSize);
  ASSERT_TRUE(va0.ok());
  ASSERT_TRUE(va1.ok()) << va1.status().ToString();
  EXPECT_EQ(memdev::ShardForVa(*va0, 2), 0u);
  EXPECT_EQ(memdev::ShardForVa(*va1, 2), 1u);
  EXPECT_EQ(local.spills(), 0u);
  EXPECT_EQ(remote.spills(), 0u);
}

TEST(AllocationPolicy, InterleaveRoundRobinsAcrossShards) {
  RackRig rig = RackRig::Build();
  core::ShardedControlClient client(rig.seg0, rig.machine->shard_infos(),
                                    core::AllocationPolicy::kInterleave);
  Pasid pasid = rig.machine->NewApplication("app");
  std::vector<uint32_t> owners;
  for (int i = 0; i < 4; ++i) {
    auto va = client.AllocSync(pasid, 4 * kPageSize);
    ASSERT_TRUE(va.ok()) << va.status().ToString();
    owners.push_back(memdev::ShardForVa(*va, 2));
  }
  EXPECT_EQ(owners, (std::vector<uint32_t>{0, 1, 0, 1}));
  EXPECT_EQ(client.OutstandingBytes(rig.shard0->id()), 2 * 4 * kPageSize);
  EXPECT_EQ(client.OutstandingBytes(rig.shard1->id()), 2 * 4 * kPageSize);
}

TEST(AllocationPolicy, CapacityAwarePicksMostFreeShard) {
  RackRig rig = RackRig::Build();
  core::ShardedControlClient client(rig.seg0, rig.machine->shard_infos(),
                                    core::AllocationPolicy::kCapacityAware);
  Pasid pasid = rig.machine->NewApplication("app");
  // Equal shards, index tie-break: the first allocation lands on shard 0 and
  // tips the estimated-headroom balance toward shard 1 for the next.
  auto first = client.AllocSync(pasid, 64 * kPageSize);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(memdev::ShardForVa(*first, 2), 0u);
  auto second = client.AllocSync(pasid, 4 * kPageSize);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(memdev::ShardForVa(*second, 2), 1u);
}

TEST(AllocationPolicy, HomeNodeSpillsWhenLocalShardIsFull) {
  core::MachineConfig config;
  config.memory_bytes = 64 * kPageSize;  // 32 frames per shard
  RackRig rig = RackRig::Build(std::move(config));
  core::ShardedControlClient client(rig.seg0, rig.machine->shard_infos(),
                                    core::AllocationPolicy::kHomeNode);
  Pasid pasid = rig.machine->NewApplication("app");
  // 8 allocations of 4 pages exhaust the home shard; the 9th must spill to
  // the remote shard instead of failing.
  for (int i = 0; i < 8; ++i) {
    auto va = client.AllocSync(pasid, 4 * kPageSize);
    ASSERT_TRUE(va.ok()) << i;
    EXPECT_EQ(memdev::ShardForVa(*va, 2), 0u) << i;
  }
  auto spilled = client.AllocSync(pasid, 4 * kPageSize);
  ASSERT_TRUE(spilled.ok());
  EXPECT_EQ(memdev::ShardForVa(*spilled, 2), 1u);
  EXPECT_GE(client.spills(), 1u);
  EXPECT_EQ(rig.machine->shard_controllers()[0]->stats()
                .GetCounter("va_slab_rejections").value(), 0u);
}

TEST(RackMachine, FreeRoutesByVaddrToOwningShard) {
  RackRig rig = RackRig::Build();
  core::ShardedControlClient client(rig.seg0, rig.machine->shard_infos(),
                                    core::AllocationPolicy::kHomeNode);
  Pasid pasid = rig.machine->NewApplication("app");
  auto va = client.AllocSync(pasid, 4 * kPageSize);
  ASSERT_TRUE(va.ok());
  EXPECT_EQ(client.OutstandingBytes(rig.shard0->id()), 4 * kPageSize);
  ASSERT_TRUE(client.FreeSync(pasid, *va, 4 * kPageSize).ok());
  // The bus routed the free (addressed to kBusDevice) to shard 0 by address.
  EXPECT_EQ(rig.shard0->stats().GetCounter("frees").value(), 1u);
  EXPECT_EQ(rig.shard1->stats().GetCounter("frees").value(), 0u);
  EXPECT_EQ(client.OutstandingBytes(rig.shard0->id()), 0u);
}

TEST(RackMachine, MagazineRidesShardedClientUnchanged) {
  RackRig rig = RackRig::Build();
  core::ShardedControlClient inner(rig.seg1, rig.machine->shard_infos(),
                                   core::AllocationPolicy::kHomeNode);
  core::MagazineConfig magazine_config;
  magazine_config.enabled = true;
  core::MagazineClient magazine(&inner, magazine_config, rig.seg1, rig.shard1->id());
  Pasid pasid = rig.machine->NewApplication("app");
  auto va = magazine.AllocSync(pasid, 4 * kPageSize);
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(magazine.FreeSync(pasid, *va, 4 * kPageSize).ok());
  auto again = magazine.AllocSync(pasid, 4 * kPageSize);
  ASSERT_TRUE(again.ok());
  EXPECT_GE(magazine.hits(), 1u);  // recycled locally, zero bus messages
  EXPECT_TRUE(magazine.FlushSync().ok());
}

// --- segmented bus routing (raw bus, no machine) -----------------------------

struct Probe {
  std::vector<proto::Message> received;
  std::vector<sim::SimTime> at;
  bus::BusPort* port = nullptr;

  bus::SystemBus::Receiver Receiver(sim::Simulator* simulator) {
    return [this, simulator](proto::Message m) {
      received.push_back(std::move(m));
      at.push_back(simulator->Now());
    };
  }
};

TEST(SegmentedBus, CrossSegmentUnicastPaysOneHop) {
  sim::Simulator simulator;
  bus::BusConfig config;
  config.segments = 2;
  bus::SystemBus bus(&simulator, config);
  iommu::Iommu iommu_a{DeviceId(2)}, iommu_b{DeviceId(3)},
      iommu_c{MakeSegmentDeviceId(1, 1)};
  Probe a, b, c;
  a.port = bus.Attach(DeviceId(2), "a", a.Receiver(&simulator), &iommu_a);
  b.port = bus.Attach(DeviceId(3), "b", b.Receiver(&simulator), &iommu_b);
  c.port = bus.Attach(MakeSegmentDeviceId(1, 1), "c", c.Receiver(&simulator), &iommu_c);
  for (Probe* probe : {&a, &b, &c}) {
    probe->port->Send(
        proto::Message{DeviceId(), kBusDevice, RequestId(), proto::AliveAnnounce{}});
  }
  simulator.Run();

  sim::SimTime sent_local = simulator.Now();
  a.port->Send(proto::Message{DeviceId(), DeviceId(3), RequestId(1),
                              proto::Notify{InstanceId(1), 0}});
  simulator.Run();
  ASSERT_EQ(b.at.size(), 1u);
  sim::Duration local_delay = b.at.back() - sent_local;

  sim::SimTime sent_cross = simulator.Now();
  a.port->Send(proto::Message{DeviceId(), MakeSegmentDeviceId(1, 1), RequestId(2),
                              proto::Notify{InstanceId(1), 0}});
  simulator.Run();
  ASSERT_EQ(c.at.size(), 1u);
  sim::Duration cross_delay = c.at.back() - sent_cross;

  // Identical payloads, so the only difference is the inter-segment router.
  EXPECT_EQ(cross_delay - local_delay, config.inter_segment_latency);
  ASSERT_EQ(bus.segment_counters().size(), 2u);
  EXPECT_EQ(bus.segment_counters()[0].routed_out, 1u);
  EXPECT_EQ(bus.segment_counters()[1].routed_in, 1u);
  EXPECT_GE(bus.segment_counters()[0].delivered_local, 1u);
}

TEST(SegmentedBus, BroadcastCopiesAreCountedPerSegment) {
  sim::Simulator simulator;
  bus::BusConfig config;
  config.segments = 2;
  bus::SystemBus bus(&simulator, config);
  iommu::Iommu iommu_a{DeviceId(2)}, iommu_b{DeviceId(3)},
      iommu_c{MakeSegmentDeviceId(1, 1)};
  Probe a, b, c;
  a.port = bus.Attach(DeviceId(2), "a", a.Receiver(&simulator), &iommu_a);
  b.port = bus.Attach(DeviceId(3), "b", b.Receiver(&simulator), &iommu_b);
  c.port = bus.Attach(MakeSegmentDeviceId(1, 1), "c", c.Receiver(&simulator), &iommu_c);
  for (Probe* probe : {&a, &b, &c}) {
    probe->port->Send(
        proto::Message{DeviceId(), kBusDevice, RequestId(), proto::AliveAnnounce{}});
  }
  simulator.Run();

  uint64_t broadcast_before = bus.stats().GetCounter("broadcast_msgs").value();
  uint64_t copies_seg1_before = bus.segment_counters()[1].broadcast_copies;
  a.port->Send(proto::Message{DeviceId(), kBroadcastDevice, RequestId(3),
                              proto::DiscoverRequest{proto::ServiceType::kCompute, ""}});
  simulator.Run();
  // Two alive receivers -> two counted copies, one landing on segment 1.
  EXPECT_EQ(bus.stats().GetCounter("broadcast_msgs").value() - broadcast_before, 2u);
  EXPECT_EQ(bus.segment_counters()[1].broadcast_copies - copies_seg1_before, 1u);
}

TEST(RackMachine, FailureNoticesStaySegmentLocal) {
  RackRig rig = RackRig::Build();
  auto& victim = rig.machine->EmplaceOn<Stub>(0, "victim");
  victim.PowerOn();
  rig.machine->RunUntilIdle();

  std::vector<uint32_t> seen_at_seg0, seen_at_seg1;
  rig.seg0->AddPeerFailedHook([&](DeviceId d) { seen_at_seg0.push_back(d.value()); });
  rig.seg1->AddPeerFailedHook([&](DeviceId d) { seen_at_seg1.push_back(d.value()); });

  uint64_t suppressed_before =
      rig.machine->bus().stats().GetCounter("failure_notices_suppressed").value();
  rig.machine->bus().ReportDeviceFailure(victim.id());
  rig.machine->RunFor(sim::Duration::Millis(5));
  rig.machine->RunUntilIdle();

  // The same-segment peer hears about it; the other chassis does not.
  EXPECT_EQ(seen_at_seg0, std::vector<uint32_t>{victim.id().value()});
  EXPECT_TRUE(seen_at_seg1.empty());
  EXPECT_GE(rig.machine->bus().stats().GetCounter("failure_notices_suppressed").value(),
            suppressed_before + 1);
}

TEST(RackMachine, ControllerFailureBroadcastsMachineWide) {
  RackRig rig = RackRig::Build();
  std::vector<uint32_t> seen_at_seg1;
  rig.seg1->AddPeerFailedHook([&](DeviceId d) { seen_at_seg1.push_back(d.value()); });

  // A memory-controller shard failing is everyone's problem (clients must
  // stop targeting it), so the segment scoping is bypassed.
  rig.machine->bus().ReportDeviceFailure(rig.shard0->id());
  rig.machine->RunFor(sim::Duration::Millis(5));
  rig.machine->RunUntilIdle();
  EXPECT_EQ(seen_at_seg1, std::vector<uint32_t>{rig.shard0->id().value()});
}

TEST(RackMachine, FlatMetricsCarryNoTopologySections) {
  core::Machine machine;
  machine.AddMemoryController();
  machine.Boot();
  std::ostringstream metrics;
  machine.MetricsJson(metrics);
  EXPECT_EQ(metrics.str().find("\"segments\":["), std::string::npos);
  EXPECT_EQ(metrics.str().find("\"memory_shards\":["), std::string::npos);
}

TEST(RackMachine, RackMetricsExposePerSegmentSections) {
  RackRig rig = RackRig::Build();
  core::ShardedControlClient client(rig.seg1, rig.machine->shard_infos(),
                                    core::AllocationPolicy::kHomeNode);
  Pasid pasid = rig.machine->NewApplication("app");
  ASSERT_TRUE(client.AllocSync(pasid, 4 * kPageSize).ok());
  std::ostringstream metrics;
  rig.machine->MetricsJson(metrics);
  EXPECT_NE(metrics.str().find("\"segments\":["), std::string::npos);
  EXPECT_NE(metrics.str().find("\"memory_shards\":["), std::string::npos);
  EXPECT_NE(metrics.str().find("\"routed_out\""), std::string::npos);
}

// --- chaos: killing one controller shard -------------------------------------

struct ShardKillOutcome {
  uint64_t events = 0;
  std::string metrics;
  bool grantee_quarantined = false;
  bool shard1_quarantined = false;
  uint64_t stranded_grants = 0;
  uint64_t post_quarantine_spills = 0;
  std::vector<uint32_t> post_quarantine_owners;
};

ShardKillOutcome RunShardKillSchedule() {
  core::MachineConfig config;
  config.topology.segments = 2;
  // The seg-1 grantee dies for good mid-run; the seg-1 controller shard dies
  // shortly after and never returns either.
  sim::CrashSpec kill_grantee;
  kill_grantee.device = MakeSegmentDeviceId(1, 2).value();
  kill_grantee.at = sim::Duration::Micros(500);
  kill_grantee.respawn = Respawn::kNever;
  sim::CrashSpec kill_shard;
  kill_shard.device = MakeSegmentDeviceId(1, 1).value();
  kill_shard.at = sim::Duration::Micros(900);
  kill_shard.respawn = Respawn::kNever;
  config.crash_plan.crashes = {kill_grantee, kill_shard};

  core::Machine machine(std::move(config));
  auto shards = machine.AddMemoryControllerShards(2);
  auto& seg0 = machine.EmplaceOn<Stub>(0, "seg0-stub");
  auto& seg1 = machine.EmplaceOn<Stub>(1, "seg1-stub");
  EXPECT_EQ(shards[1]->id(), MakeSegmentDeviceId(1, 1));
  EXPECT_EQ(seg1.id(), MakeSegmentDeviceId(1, 2));
  machine.Boot();

  core::ShardedControlClient client(&seg0, machine.shard_infos(),
                                    core::AllocationPolicy::kInterleave);
  Pasid pasid = machine.NewApplication("app");
  // Cross-segment lease: the seg-0 shard owns the region, the seg-1 stub
  // holds the grant. When the grantee is quarantined, the controller (a
  // different chassis) must still hear about it and strip the grant.
  auto va = client.AllocSync(pasid, 4 * kPageSize);
  EXPECT_TRUE(va.ok());
  if (va.ok()) {
    EXPECT_EQ(memdev::ShardForVa(*va, 2), 0u);
    EXPECT_TRUE(client.GrantSync(pasid, *va, 4 * kPageSize, seg1.id(), Access::kRead).ok());
    EXPECT_EQ(shards[0]->GrantsHeldBy(seg1.id()), 1u);
  }

  // Let both kills land and the supervised episodes run to quarantine.
  machine.RunFor(sim::Duration::Millis(20));
  machine.RunUntilIdle();

  ShardKillOutcome out;
  out.grantee_quarantined = machine.bus().supervisor().IsQuarantined(seg1.id());
  out.shard1_quarantined = machine.bus().supervisor().IsQuarantined(shards[1]->id());
  out.stranded_grants = shards[0]->GrantsHeldBy(seg1.id());

  // The interleave client would alternate shards, but the permanent-failure
  // notice pruned shard 1 from the candidate set: every post-quarantine
  // allocation lands on shard 0 without a single spill round trip.
  uint64_t spills_before = client.spills();
  for (int i = 0; i < 4; ++i) {
    auto post = client.AllocSync(pasid, 4 * kPageSize);
    EXPECT_TRUE(post.ok()) << i;
    if (post.ok()) {
      out.post_quarantine_owners.push_back(memdev::ShardForVa(*post, 2));
    }
  }
  out.post_quarantine_spills = client.spills() - spills_before;

  out.events = machine.simulator().events_executed();
  std::ostringstream metrics;
  machine.MetricsJson(metrics);
  out.metrics = metrics.str();
  return out;
}

TEST(RackChaos, ShardKillQuarantinesReclaimsAndRerunsByteIdentical) {
  ShardKillOutcome first = RunShardKillSchedule();
  ShardKillOutcome second = RunShardKillSchedule();

  EXPECT_TRUE(first.grantee_quarantined);
  EXPECT_TRUE(first.shard1_quarantined);
  // Cross-segment grant reclamation: the surviving seg-0 shard stripped the
  // dead seg-1 grantee's grant.
  EXPECT_EQ(first.stranded_grants, 0u);
  EXPECT_EQ(first.post_quarantine_owners, (std::vector<uint32_t>{0, 0, 0, 0}));
  EXPECT_EQ(first.post_quarantine_spills, 0u);

  // Same seeded schedule -> byte-identical machine evolution.
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.metrics, second.metrics);
}

}  // namespace
}  // namespace lastcpu
