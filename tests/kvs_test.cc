// KVS application tests: wire protocol, index, workload generation, and the
// paper's Sec. 3 application end to end on a full machine — network clients
// hitting a smart NIC whose data lives on a smart SSD, with recovery after
// both engine restart and whole-device failure (Sec. 4).
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>

#include "src/core/machine.h"
#include "src/kvs/kvs_app.h"
#include "src/kvs/kvs_engine.h"
#include "src/kvs/kvs_protocol.h"
#include "src/kvs/workload.h"

namespace lastcpu::kvs {
namespace {

TEST(KvsProtocolTest, RequestRoundTrip) {
  KvsRequest request;
  request.op = KvsOp::kPut;
  request.sequence = 42;
  request.key = "user1000007";
  request.value = {9, 8, 7};
  auto decoded = KvsRequest::Decode(request.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->op, KvsOp::kPut);
  EXPECT_EQ(decoded->sequence, 42u);
  EXPECT_EQ(decoded->key, "user1000007");
  EXPECT_EQ(decoded->value, (std::vector<uint8_t>{9, 8, 7}));
}

TEST(KvsProtocolTest, ResponseRoundTrip) {
  KvsResponse response;
  response.status = StatusCode::kNotFound;
  response.sequence = 7;
  auto decoded = KvsResponse::Decode(response.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->status, StatusCode::kNotFound);
  EXPECT_EQ(decoded->sequence, 7u);
}

TEST(KvsProtocolTest, MalformedRequestsRejected) {
  EXPECT_FALSE(KvsRequest::Decode(std::vector<uint8_t>{1, 2}).ok());
  KvsRequest request;
  request.key = "k";
  auto wire = request.Encode();
  wire[0] = 99;  // bad op
  EXPECT_FALSE(KvsRequest::Decode(wire).ok());
  wire = request.Encode();
  wire.resize(wire.size() - 1);  // truncated body
  EXPECT_FALSE(KvsRequest::Decode(wire).ok());
}

TEST(KvsProtocolTest, LogRecordRoundTripAndChaining) {
  LogRecord a{"alpha", {1, 2, 3}, false};
  LogRecord b{"beta", {}, true};
  auto wire = a.Encode();
  auto more = b.Encode();
  wire.insert(wire.end(), more.begin(), more.end());

  auto first = LogRecord::Decode(wire);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->first.key, "alpha");
  EXPECT_FALSE(first->first.tombstone);
  auto second = LogRecord::Decode(std::span<const uint8_t>(wire).subspan(first->second));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->first.key, "beta");
  EXPECT_TRUE(second->first.tombstone);
  EXPECT_EQ(first->second + second->second, wire.size());
}

TEST(KvsProtocolTest, LogRecordBadMagicIsDataLoss) {
  LogRecord a{"k", {1}, false};
  auto wire = a.Encode();
  wire[0] = 0;
  auto decoded = LogRecord::Decode(wire);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(HashIndexTest, PutGetRemove) {
  HashIndex index;
  index.Put("a", {100, 10});
  index.Put("b", {200, 20});
  HashIndex::Location loc;
  ASSERT_TRUE(index.Get("a", &loc));
  EXPECT_EQ(loc.offset, 100u);
  index.Put("a", {300, 30});  // update
  ASSERT_TRUE(index.Get("a", &loc));
  EXPECT_EQ(loc.offset, 300u);
  EXPECT_EQ(index.size(), 2u);
  index.Remove("a");
  EXPECT_FALSE(index.Get("a", &loc));
  EXPECT_GT(index.memory_bytes(), 0u);
}

TEST(WorkloadTest, MixMatchesConfiguredFraction) {
  WorkloadConfig config;
  config.get_fraction = 0.7;
  config.seed = 11;
  WorkloadGenerator generator(config);
  int gets = 0;
  for (int i = 0; i < 10000; ++i) {
    if (generator.Next().op == KvsOp::kGet) {
      ++gets;
    }
  }
  EXPECT_NEAR(gets / 10000.0, 0.7, 0.03);
}

TEST(WorkloadTest, ZipfSkewsKeys) {
  WorkloadConfig config;
  config.num_keys = 1000;
  config.zipf_theta = 0.99;
  WorkloadGenerator generator(config);
  std::map<std::string, int> hits;
  for (int i = 0; i < 20000; ++i) {
    ++hits[generator.Next().key];
  }
  // The 10 hottest keys hold a large share of traffic (uniform would be 1%).
  std::vector<int> counts;
  counts.reserve(hits.size());
  for (const auto& [key, count] : hits) {
    counts.push_back(count);
  }
  std::sort(counts.rbegin(), counts.rend());
  int head = 0;
  for (size_t i = 0; i < 10 && i < counts.size(); ++i) {
    head += counts[i];
  }
  EXPECT_GT(head, 20000 / 4);
}

TEST(WorkloadTest, DeterministicForSeed) {
  WorkloadConfig config;
  config.seed = 5;
  WorkloadGenerator a(config);
  WorkloadGenerator b(config);
  for (int i = 0; i < 100; ++i) {
    KvsRequest ra = a.Next();
    KvsRequest rb = b.Next();
    EXPECT_EQ(ra.key, rb.key);
    EXPECT_EQ(static_cast<int>(ra.op), static_cast<int>(rb.op));
  }
}

// --- end to end on a full machine ---------------------------------------------

class KvsMachineTest : public ::testing::Test {
 protected:
  KvsMachineTest() {
    machine_.AddMemoryController();
    ssd_ = &machine_.AddSmartSsd(NoAuth());
    nic_ = &machine_.AddSmartNic();
    ssd_->ProvisionFile("kv.log", {});
    app_pasid_ = machine_.NewApplication("kvs");
    auto app = std::make_unique<KvsApp>(nic_, app_pasid_);
    app_ = app.get();
    nic_->LoadApp(std::move(app));
    machine_.Boot();
  }

  static ssddev::SmartSsdConfig NoAuth() {
    ssddev::SmartSsdConfig config;
    config.host_auth_service = false;
    return config;
  }

  Status PutSync(const std::string& key, std::vector<uint8_t> value) {
    std::optional<Status> status;
    app_->engine().Put(key, std::move(value), [&](Status s) { status = s; });
    machine_.RunUntilIdle();
    LASTCPU_CHECK(status.has_value(), "put never completed");
    return *status;
  }

  Result<std::vector<uint8_t>> GetSync(const std::string& key) {
    std::optional<Result<std::vector<uint8_t>>> result;
    app_->engine().Get(key, [&](Result<std::vector<uint8_t>> r) { result = std::move(r); });
    machine_.RunUntilIdle();
    LASTCPU_CHECK(result.has_value(), "get never completed");
    return *result;
  }

  core::Machine machine_;
  ssddev::SmartSsd* ssd_ = nullptr;
  nicdev::SmartNic* nic_ = nullptr;
  KvsApp* app_ = nullptr;
  Pasid app_pasid_;
};

TEST_F(KvsMachineTest, AppStartsOnBoot) {
  EXPECT_TRUE(nic_->app_ready());
  EXPECT_TRUE(app_->engine().running());
}

TEST_F(KvsMachineTest, PutGetDeleteDirect) {
  ASSERT_TRUE(PutSync("alpha", {1, 2, 3}).ok());
  auto got = GetSync("alpha");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, (std::vector<uint8_t>{1, 2, 3}));

  // Overwrite.
  ASSERT_TRUE(PutSync("alpha", {9}).ok());
  EXPECT_EQ(*GetSync("alpha"), (std::vector<uint8_t>{9}));

  // Delete.
  std::optional<Status> deleted;
  app_->engine().Delete("alpha", [&](Status s) { deleted = s; });
  machine_.RunUntilIdle();
  ASSERT_TRUE(deleted->ok());
  EXPECT_EQ(GetSync("alpha").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(GetSync("never-existed").status().code(), StatusCode::kNotFound);
}

TEST_F(KvsMachineTest, ServesNetworkClients) {
  // Preload some keys through the engine.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(PutSync(WorkloadGenerator::KeyFor(static_cast<uint64_t>(i)),
                        std::vector<uint8_t>(64, static_cast<uint8_t>(i)))
                    .ok());
  }
  WorkloadConfig workload;
  workload.num_keys = 20;
  workload.get_fraction = 0.8;
  workload.value_bytes = 64;
  LoadClient client(&machine_.simulator(), &machine_.network(), nic_->endpoint(), workload, 4);
  bool finished = false;
  client.Start(200, [&] { finished = true; });
  machine_.RunUntilIdle();
  EXPECT_TRUE(finished);
  EXPECT_EQ(client.completed(), 200u);
  EXPECT_EQ(client.errors(), 0u);
  EXPECT_GT(client.latency().count(), 0u);
  EXPECT_GT(client.latency().p50(), 0u);
  EXPECT_EQ(nic_->requests_handled(), 200u);
}

TEST_F(KvsMachineTest, IndexRebuiltByRecoveryScan) {
  ASSERT_TRUE(PutSync("alpha", {1}).ok());
  ASSERT_TRUE(PutSync("beta", {2, 2}).ok());
  ASSERT_TRUE(PutSync("alpha", {3, 3, 3}).ok());  // newer version
  std::optional<Status> deleted;
  app_->engine().Delete("beta", [&](Status s) { deleted = s; });
  machine_.RunUntilIdle();
  ASSERT_TRUE(deleted->ok());

  // Simulate an engine restart: drop the session and the volatile index,
  // then bring the engine back up — Start() must rebuild from the log.
  app_->engine().Stop(Aborted("restart"));
  EXPECT_FALSE(app_->engine().running());
  std::optional<Status> restarted;
  app_->engine().Start([&](Status s) { restarted = s; });
  machine_.RunUntilIdle();
  ASSERT_TRUE(restarted.has_value());
  ASSERT_TRUE(restarted->ok()) << restarted->ToString();

  // Replay honored versions and tombstones.
  EXPECT_EQ(app_->engine().index().size(), 1u);
  auto alpha = GetSync("alpha");
  ASSERT_TRUE(alpha.ok());
  EXPECT_EQ(*alpha, (std::vector<uint8_t>{3, 3, 3}));
  EXPECT_EQ(GetSync("beta").status().code(), StatusCode::kNotFound);
  EXPECT_GT(app_->engine().stats().GetCounter("recovered_records").value(), 0u);
}

TEST_F(KvsMachineTest, RecoveryAfterSsdFailure) {
  ASSERT_TRUE(PutSync("persistent", {7, 7}).ok());
  // The SSD dies; the bus notices; the NIC's app recovers by reopening.
  ssd_->InjectFailure();
  machine_.bus().ReportDeviceFailure(ssd_->id());
  machine_.RunUntilIdle();
  EXPECT_TRUE(app_->engine().running());
  EXPECT_GE(app_->recoveries(), 1u);
  // Data survived on flash and the rebuilt index finds it.
  auto got = GetSync("persistent");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, (std::vector<uint8_t>{7, 7}));
}

TEST_F(KvsMachineTest, ManualCompactionShrinksLogAndPreservesData) {
  // Build garbage: every key overwritten 5x, half then deleted.
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(PutSync("key" + std::to_string(i),
                          std::vector<uint8_t>(100, static_cast<uint8_t>(round)))
                      .ok());
    }
  }
  for (int i = 0; i < 10; ++i) {
    std::optional<Status> deleted;
    app_->engine().Delete("key" + std::to_string(i), [&](Status s) { deleted = s; });
    machine_.RunUntilIdle();
    ASSERT_TRUE(deleted->ok());
  }
  uint64_t tail_before = app_->engine().log_tail_bytes();
  uint64_t live_before = app_->engine().live_bytes();
  ASSERT_GT(tail_before, live_before * 2);  // plenty of garbage

  std::optional<Status> compacted;
  app_->engine().CompactNow([&](Status s) { compacted = s; });
  machine_.RunUntilIdle();
  ASSERT_TRUE(compacted.has_value());
  ASSERT_TRUE(compacted->ok()) << compacted->ToString();
  EXPECT_EQ(app_->engine().generation(), 1u);
  // The new log holds only live records (+ the commit marker).
  EXPECT_LT(app_->engine().log_tail_bytes(), live_before + 100);
  // The old generation is gone from the SSD; the new one exists.
  EXPECT_FALSE(ssd_->fs().Exists("kv.log"));
  EXPECT_TRUE(ssd_->fs().Exists("kv.log.1"));

  // Data intact: deleted keys stay dead, surviving keys hold round-4 values.
  EXPECT_EQ(GetSync("key3").status().code(), StatusCode::kNotFound);
  auto survivor = GetSync("key15");
  ASSERT_TRUE(survivor.ok());
  EXPECT_EQ(*survivor, std::vector<uint8_t>(100, 4));
}

TEST_F(KvsMachineTest, OperationsIssuedDuringCompactionAreServed) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(PutSync("key" + std::to_string(i), {static_cast<uint8_t>(i)}).ok());
  }
  std::optional<Status> compacted;
  app_->engine().CompactNow([&](Status s) { compacted = s; });
  // Issue reads and a write while the copy is in flight: they must queue and
  // then complete against the new generation.
  std::optional<std::vector<uint8_t>> got;
  std::optional<Status> put;
  app_->engine().Get("key5", [&](Result<std::vector<uint8_t>> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    got = *r;
  });
  app_->engine().Put("key5", {0x55}, [&](Status s) { put = s; });
  machine_.RunUntilIdle();
  ASSERT_TRUE(compacted.has_value() && compacted->ok());
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(put.has_value() && put->ok());
  EXPECT_EQ(*GetSync("key5"), (std::vector<uint8_t>{0x55}));
}

TEST_F(KvsMachineTest, AutomaticCompactionTriggersOnGarbageRatio) {
  // Rebuild the app with compaction armed.
  kvs::KvsAppConfig config;
  config.engine.compact_garbage_ratio = 0.5;
  config.engine.min_compact_bytes = 4 << 10;
  auto app = std::make_unique<KvsApp>(nic_, machine_.NewApplication("kvs2"), config);
  KvsApp* auto_app = app.get();
  nic_->LoadApp(std::move(app));
  machine_.RunUntilIdle();
  ASSERT_TRUE(auto_app->engine().running());

  // Hammer one key: almost everything becomes garbage.
  for (int i = 0; i < 200; ++i) {
    std::optional<Status> status;
    auto_app->engine().Put("hot", std::vector<uint8_t>(200, static_cast<uint8_t>(i)),
                           [&](Status s) { status = s; });
    machine_.RunUntilIdle();
    ASSERT_TRUE(status->ok());
  }
  EXPECT_GE(auto_app->engine().stats().GetCounter("compactions_completed").value(), 1u);
  EXPECT_GE(auto_app->engine().generation(), 1u);
  std::optional<std::vector<uint8_t>> hot;
  auto_app->engine().Get("hot", [&](Result<std::vector<uint8_t>> r) {
    ASSERT_TRUE(r.ok());
    hot = *r;
  });
  machine_.RunUntilIdle();
  ASSERT_TRUE(hot.has_value());
  EXPECT_EQ((*hot)[0], 199);
}

TEST_F(KvsMachineTest, RestartAdoptsCompactedGeneration) {
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(PutSync("key" + std::to_string(i), {static_cast<uint8_t>(i)}).ok());
  }
  std::optional<Status> compacted;
  app_->engine().CompactNow([&](Status s) { compacted = s; });
  machine_.RunUntilIdle();
  ASSERT_TRUE(compacted->ok());
  ASSERT_EQ(app_->engine().generation(), 1u);

  // Full engine restart: recovery must find and adopt kv.log.1.
  app_->engine().Stop(Aborted("restart"));
  std::optional<Status> restarted;
  app_->engine().Start([&](Status s) { restarted = s; });
  machine_.RunUntilIdle();
  ASSERT_TRUE(restarted.has_value());
  ASSERT_TRUE(restarted->ok()) << restarted->ToString();
  EXPECT_EQ(app_->engine().generation(), 1u);
  EXPECT_EQ(app_->engine().index().size(), 15u);
  auto got = GetSync("key7");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, (std::vector<uint8_t>{7}));
}

TEST_F(KvsMachineTest, RecoverySkipsUncommittedGenerationDebris) {
  ASSERT_TRUE(PutSync("real", {1, 2, 3}).ok());
  // Fake a crashed compaction: a half-copied generation without the commit
  // marker, containing a stale record.
  kvs::LogRecord stale{"real", {9, 9, 9}, false};
  ssd_->ProvisionFile("kv.log.1", stale.Encode());
  machine_.RunUntilIdle();

  app_->engine().Stop(Aborted("restart"));
  std::optional<Status> restarted;
  app_->engine().Start([&](Status s) { restarted = s; });
  machine_.RunUntilIdle();
  ASSERT_TRUE(restarted.has_value() && restarted->ok());
  // The committed base generation won; the debris was discarded and deleted.
  EXPECT_EQ(app_->engine().generation(), 0u);
  auto got = GetSync("real");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_GE(app_->engine().stats().GetCounter("debris_generations_skipped").value(), 1u);
  EXPECT_FALSE(ssd_->fs().Exists("kv.log.1"));
}

TEST_F(KvsMachineTest, TeardownReclaimsApplicationMemory) {
  ASSERT_TRUE(PutSync("x", {1}).ok());
  ASSERT_GT(nic_->iommu().mapped_pages(app_pasid_), 0u);
  machine_.TeardownApplication(app_pasid_);
  machine_.RunUntilIdle();
  EXPECT_EQ(nic_->iommu().mapped_pages(app_pasid_), 0u);
  EXPECT_EQ(ssd_->iommu().mapped_pages(app_pasid_), 0u);
}

}  // namespace
}  // namespace lastcpu::kvs
