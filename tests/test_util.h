// Shared scaffolding for integration-level tests: a minimal machine harness
// (simulator + memory + fabric + bus) and a scriptable test device.
#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/bus/system_bus.h"
#include "src/dev/device.h"
#include "src/dev/service.h"
#include "src/fabric/fabric.h"
#include "src/mem/physical_memory.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"

namespace lastcpu::testutil {

// Owns the substrate one test machine needs.
class Harness {
 public:
  explicit Harness(uint64_t memory_bytes = 64 << 20)
      : memory(memory_bytes), fabric(&simulator, &memory), bus(&simulator, {}, &trace) {}

  dev::DeviceContext Context() {
    return dev::DeviceContext{&simulator, &bus, &fabric, &trace};
  }

  sim::Simulator simulator;
  sim::TraceLog trace;
  mem::PhysicalMemory memory;
  fabric::Fabric fabric;
  bus::SystemBus bus;
};

// A trivially-openable service for exercising the framework.
class EchoService : public dev::Service {
 public:
  EchoService(DeviceId provider, std::string name, uint32_t max_instances = 0,
              uint64_t required_token = 0)
      : Service(proto::ServiceDescriptor{provider, proto::ServiceType::kCompute, std::move(name),
                                         max_instances}),
        required_token_(required_token) {}

  bool Matches(const proto::DiscoverRequest& query) const override {
    if (query.type != descriptor().type) {
      return false;
    }
    return query.resource.empty() || query.resource == descriptor().name;
  }

  Result<proto::OpenResponse> Open(DeviceId client, const proto::OpenRequest& request) override {
    if (required_token_ != 0 && request.auth_token != required_token_) {
      return PermissionDenied("bad token");
    }
    auto instance = CreateInstance(client, request.pasid, request.resource);
    if (!instance.ok()) {
      return instance.status();
    }
    return proto::OpenResponse{*instance, 1 << 16, 64};
  }

 private:
  uint64_t required_token_;
};

// A device whose behavior tests script from outside.
class TestDevice : public dev::Device {
 public:
  TestDevice(DeviceId id, std::string name, const dev::DeviceContext& context,
             dev::DeviceConfig config = {})
      : dev::Device(id, std::move(name), context, config) {}

  using dev::Device::AnnounceAlive;
  using dev::Device::Reply;
  using dev::Device::ReplyError;

  // Records of interesting callbacks.
  std::vector<proto::Message> unhandled;
  std::vector<DeviceId> failed_peers;
  std::vector<Pasid> teardowns;
  std::vector<iommu::FaultInfo> faults;
  std::vector<std::pair<DeviceId, uint64_t>> doorbells;
  int alive_calls = 0;
  // Optional forwarding hook (e.g. into a FileClient).
  std::function<void(DeviceId, uint64_t)> doorbell_handler;

 protected:
  void OnAlive() override { ++alive_calls; }
  void OnDoorbell(DeviceId from, uint64_t value) override {
    doorbells.emplace_back(from, value);
    if (doorbell_handler) {
      doorbell_handler(from, value);
    }
  }
  void OnMessage(const proto::Message& message) override {
    unhandled.push_back(message);
    dev::Device::OnMessage(message);
  }
  void OnPeerFailed(DeviceId device) override { failed_peers.push_back(device); }
  void OnTeardown(Pasid pasid) override { teardowns.push_back(pasid); }
  void OnFault(const iommu::FaultInfo& fault) override {
    faults.push_back(fault);
    dev::Device::OnFault(fault);
  }
};

// Runs the simulator until `predicate` is true or `limit` elapses; returns
// whether the predicate became true.
inline bool RunUntil(sim::Simulator& simulator, const std::function<bool()>& predicate,
                     sim::Duration limit = sim::Duration::Millis(500)) {
  sim::SimTime deadline = simulator.Now() + limit;
  while (!predicate() && simulator.Now() < deadline) {
    if (!simulator.Step()) {
      break;
    }
  }
  return predicate();
}

}  // namespace lastcpu::testutil

#endif  // TESTS_TEST_UTIL_H_
