// IOMMU, page table, and TLB tests: translation, isolation between PASIDs,
// fault delivery, permission enforcement, TLB shootdown on unmap.
#include <gtest/gtest.h>

#include <vector>

#include "src/iommu/iommu.h"
#include "src/iommu/page_table.h"
#include "src/iommu/tlb.h"
#include "src/sim/rng.h"

namespace lastcpu::iommu {
namespace {

TEST(PageTableTest, MapLookupUnmap) {
  PageTable table;
  ASSERT_TRUE(table.Map(0x1234, 0x99, Access::kReadWrite).ok());
  auto pte = table.Lookup(0x1234);
  ASSERT_TRUE(pte.ok());
  EXPECT_EQ(pte->pframe, 0x99u);
  EXPECT_EQ(table.mapped_pages(), 1u);
  ASSERT_TRUE(table.Unmap(0x1234).ok());
  EXPECT_FALSE(table.Lookup(0x1234).ok());
  EXPECT_EQ(table.mapped_pages(), 0u);
}

TEST(PageTableTest, RemapRejectedUntilUnmapped) {
  PageTable table;
  ASSERT_TRUE(table.Map(5, 10, Access::kRead).ok());
  EXPECT_EQ(table.Map(5, 11, Access::kRead).code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(table.Unmap(5).ok());
  EXPECT_TRUE(table.Map(5, 11, Access::kRead).ok());
}

TEST(PageTableTest, UnmapMissingPageFails) {
  PageTable table;
  EXPECT_EQ(table.Unmap(42).code(), StatusCode::kNotFound);
  ASSERT_TRUE(table.Map(43, 1, Access::kRead).ok());
  EXPECT_EQ(table.Unmap(42).code(), StatusCode::kNotFound);
}

TEST(PageTableTest, RejectsOutOfRangeVpage) {
  PageTable table;
  EXPECT_FALSE(table.Map(PageTable::kMaxVpage + 1, 0, Access::kRead).ok());
  EXPECT_TRUE(table.Map(PageTable::kMaxVpage, 0, Access::kRead).ok());
}

TEST(PageTableTest, RejectsNoAccessMapping) {
  PageTable table;
  EXPECT_FALSE(table.Map(1, 2, Access::kNone).ok());
}

TEST(PageTableTest, NodesPrunedOnUnmap) {
  PageTable table;
  uint64_t baseline_nodes = table.node_count();
  // Two pages in far-apart regions force separate interior nodes.
  ASSERT_TRUE(table.Map(0, 1, Access::kRead).ok());
  ASSERT_TRUE(table.Map(uint64_t{5} << 18, 2, Access::kRead).ok());
  EXPECT_GT(table.node_count(), baseline_nodes);
  ASSERT_TRUE(table.Unmap(0).ok());
  ASSERT_TRUE(table.Unmap(uint64_t{5} << 18).ok());
  EXPECT_EQ(table.node_count(), baseline_nodes);
}

TEST(PageTableTest, SetAccessNarrowsPermissions) {
  PageTable table;
  ASSERT_TRUE(table.Map(7, 8, Access::kReadWrite).ok());
  ASSERT_TRUE(table.SetAccess(7, Access::kRead).ok());
  EXPECT_EQ(table.Lookup(7)->access, Access::kRead);
  EXPECT_FALSE(table.SetAccess(99, Access::kRead).ok());
}

TEST(PageTableTest, DenseRegionSweep) {
  PageTable table;
  for (uint64_t v = 0; v < 2000; ++v) {
    ASSERT_TRUE(table.Map(v, v + 10000, Access::kReadWrite).ok());
  }
  EXPECT_EQ(table.mapped_pages(), 2000u);
  for (uint64_t v = 0; v < 2000; ++v) {
    auto pte = table.Lookup(v);
    ASSERT_TRUE(pte.ok());
    EXPECT_EQ(pte->pframe, v + 10000);
  }
  for (uint64_t v = 0; v < 2000; ++v) {
    ASSERT_TRUE(table.Unmap(v).ok());
  }
  EXPECT_EQ(table.mapped_pages(), 0u);
}

TEST(TlbTest, HitAfterInsert) {
  Tlb tlb(TlbConfig{16, 4});
  EXPECT_FALSE(tlb.Lookup(Pasid(1), 100).has_value());
  tlb.Insert(Pasid(1), 100, PteValue{55, Access::kRead});
  auto hit = tlb.Lookup(Pasid(1), 100);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->pframe, 55u);
  EXPECT_EQ(tlb.hits(), 1u);
  EXPECT_EQ(tlb.misses(), 1u);
}

TEST(TlbTest, PasidsAreDistinct) {
  Tlb tlb(TlbConfig{16, 4});
  tlb.Insert(Pasid(1), 100, PteValue{55, Access::kRead});
  EXPECT_FALSE(tlb.Lookup(Pasid(2), 100).has_value());
}

TEST(TlbTest, LruEvictionWithinSet) {
  // One set, 2 ways: the third insert evicts the least recently used.
  Tlb tlb(TlbConfig{1, 2});
  tlb.Insert(Pasid(1), 1, PteValue{1, Access::kRead});
  tlb.Insert(Pasid(1), 2, PteValue{2, Access::kRead});
  EXPECT_TRUE(tlb.Lookup(Pasid(1), 1).has_value());  // refresh page 1
  tlb.Insert(Pasid(1), 3, PteValue{3, Access::kRead});
  EXPECT_TRUE(tlb.Lookup(Pasid(1), 1).has_value());
  EXPECT_FALSE(tlb.Lookup(Pasid(1), 2).has_value());  // page 2 evicted
  EXPECT_TRUE(tlb.Lookup(Pasid(1), 3).has_value());
}

TEST(TlbTest, InvalidatePage) {
  Tlb tlb(TlbConfig{16, 4});
  tlb.Insert(Pasid(1), 100, PteValue{55, Access::kRead});
  tlb.InvalidatePage(Pasid(1), 100);
  EXPECT_FALSE(tlb.Lookup(Pasid(1), 100).has_value());
}

TEST(TlbTest, InvalidatePasidLeavesOthers) {
  Tlb tlb(TlbConfig{16, 4});
  tlb.Insert(Pasid(1), 100, PteValue{55, Access::kRead});
  tlb.Insert(Pasid(2), 100, PteValue{66, Access::kRead});
  tlb.InvalidatePasid(Pasid(1));
  EXPECT_FALSE(tlb.Lookup(Pasid(1), 100).has_value());
  EXPECT_TRUE(tlb.Lookup(Pasid(2), 100).has_value());
}

TEST(TlbTest, InsertExistingUpdatesInPlace) {
  Tlb tlb(TlbConfig{1, 2});
  tlb.Insert(Pasid(1), 1, PteValue{1, Access::kRead});
  tlb.Insert(Pasid(1), 1, PteValue{9, Access::kReadWrite});
  auto hit = tlb.Lookup(Pasid(1), 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->pframe, 9u);
}

class IommuTest : public ::testing::Test {
 protected:
  IommuTest() : iommu_(DeviceId(7)) {}

  ProgrammingKey key_ = ProgrammingKey::CreateForTesting();
  Iommu iommu_;
};

TEST_F(IommuTest, TranslateMappedPage) {
  ASSERT_TRUE(iommu_.Map(key_, Pasid(1), 0x10, 0x99, Access::kReadWrite).ok());
  auto t = iommu_.Translate(Pasid(1), VirtAddr((0x10 << kPageShift) + 0x123), Access::kRead);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->paddr.raw, (uint64_t{0x99} << kPageShift) + 0x123);
  EXPECT_FALSE(t->tlb_hit);
  EXPECT_EQ(t->levels_walked, PageTable::kLevels);
}

TEST_F(IommuTest, SecondTranslationHitsTlb) {
  ASSERT_TRUE(iommu_.Map(key_, Pasid(1), 0x10, 0x99, Access::kRead).ok());
  VirtAddr va(0x10 << kPageShift);
  ASSERT_TRUE(iommu_.Translate(Pasid(1), va, Access::kRead).ok());
  auto t = iommu_.Translate(Pasid(1), va, Access::kRead);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->tlb_hit);
  EXPECT_EQ(t->levels_walked, 0);
}

TEST_F(IommuTest, UnmappedPageFaults) {
  FaultInfo last_fault{};
  int fault_count = 0;
  iommu_.SetFaultHandler([&](const FaultInfo& info) {
    last_fault = info;
    ++fault_count;
  });
  auto t = iommu_.Translate(Pasid(1), VirtAddr(0x5000), Access::kRead);
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(fault_count, 1);
  EXPECT_EQ(last_fault.kind, FaultInfo::Kind::kNotMapped);
  EXPECT_EQ(last_fault.vaddr.raw, 0x5000u);
  EXPECT_EQ(iommu_.faults(), 1u);
}

TEST_F(IommuTest, PermissionFaultOnWriteToReadOnly) {
  ASSERT_TRUE(iommu_.Map(key_, Pasid(1), 0x10, 0x99, Access::kRead).ok());
  FaultInfo last_fault{};
  iommu_.SetFaultHandler([&](const FaultInfo& info) { last_fault = info; });
  auto t = iommu_.Translate(Pasid(1), VirtAddr(0x10 << kPageShift), Access::kWrite);
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(last_fault.kind, FaultInfo::Kind::kPermission);
}

TEST_F(IommuTest, PermissionCheckedOnTlbHitToo) {
  ASSERT_TRUE(iommu_.Map(key_, Pasid(1), 0x10, 0x99, Access::kRead).ok());
  VirtAddr va(0x10 << kPageShift);
  ASSERT_TRUE(iommu_.Translate(Pasid(1), va, Access::kRead).ok());  // warm TLB
  EXPECT_FALSE(iommu_.Translate(Pasid(1), va, Access::kWrite).ok());
}

TEST_F(IommuTest, PasidsAreIsolated) {
  ASSERT_TRUE(iommu_.Map(key_, Pasid(1), 0x10, 0x99, Access::kReadWrite).ok());
  EXPECT_FALSE(iommu_.Translate(Pasid(2), VirtAddr(0x10 << kPageShift), Access::kRead).ok());
  EXPECT_EQ(iommu_.mapped_pages(Pasid(1)), 1u);
  EXPECT_EQ(iommu_.mapped_pages(Pasid(2)), 0u);
}

TEST_F(IommuTest, UnmapShootsDownTlb) {
  ASSERT_TRUE(iommu_.Map(key_, Pasid(1), 0x10, 0x99, Access::kRead).ok());
  VirtAddr va(0x10 << kPageShift);
  ASSERT_TRUE(iommu_.Translate(Pasid(1), va, Access::kRead).ok());  // cached
  ASSERT_TRUE(iommu_.Unmap(key_, Pasid(1), 0x10).ok());
  // Must fault, not serve the stale TLB entry.
  EXPECT_FALSE(iommu_.Translate(Pasid(1), va, Access::kRead).ok());
}

TEST_F(IommuTest, RemoveAddressSpaceDropsEverything) {
  ASSERT_TRUE(iommu_.Map(key_, Pasid(1), 0x10, 0x99, Access::kRead).ok());
  ASSERT_TRUE(iommu_.Map(key_, Pasid(1), 0x11, 0x9A, Access::kRead).ok());
  ASSERT_TRUE(iommu_.Translate(Pasid(1), VirtAddr(0x10 << kPageShift), Access::kRead).ok());
  iommu_.RemoveAddressSpace(key_, Pasid(1));
  EXPECT_EQ(iommu_.mapped_pages(Pasid(1)), 0u);
  EXPECT_FALSE(iommu_.Translate(Pasid(1), VirtAddr(0x10 << kPageShift), Access::kRead).ok());
}

TEST_F(IommuTest, BadAddressFaults) {
  auto t = iommu_.Translate(Pasid(1), VirtAddr(uint64_t{1} << 45), Access::kRead);
  EXPECT_FALSE(t.ok());
}

// Property sweep over TLB geometries: translations must be correct (same
// physical frame) regardless of cache shape, and hit rate must be perfect for
// a working set that fits.
struct TlbGeometry {
  uint32_t sets;
  uint32_t ways;
};

class IommuTlbGeometryTest : public ::testing::TestWithParam<TlbGeometry> {};

TEST_P(IommuTlbGeometryTest, TranslationCorrectUnderAnyGeometry) {
  Iommu iommu(DeviceId(1), TlbConfig{GetParam().sets, GetParam().ways});
  ProgrammingKey key = ProgrammingKey::CreateForTesting();
  constexpr uint64_t kPages = 128;
  for (uint64_t v = 0; v < kPages; ++v) {
    ASSERT_TRUE(iommu.Map(key, Pasid(1), v, 1000 + v, Access::kReadWrite).ok());
  }
  sim::Rng rng(GetParam().sets * 1000 + GetParam().ways);
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.NextBelow(kPages);
    auto t = iommu.Translate(Pasid(1), VirtAddr(v << kPageShift), Access::kRead);
    ASSERT_TRUE(t.ok());
    ASSERT_EQ(t->paddr.frame(), 1000 + v);
  }
  if (GetParam().sets * GetParam().ways >= kPages) {
    // Working set fits: after warmup, everything hits.
    EXPECT_GT(iommu.tlb().HitRate(), 0.95);
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, IommuTlbGeometryTest,
                         ::testing::Values(TlbGeometry{1, 1}, TlbGeometry{1, 4},
                                           TlbGeometry{16, 4}, TlbGeometry{64, 8},
                                           TlbGeometry{128, 2}));

}  // namespace
}  // namespace lastcpu::iommu
