// Simulated-network tests: delivery, latency/bandwidth model, egress
// serialization, drops.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "src/net/network.h"
#include "src/sim/simulator.h"

namespace lastcpu::net {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  sim::Simulator simulator_;
};

TEST_F(NetworkTest, DeliversDatagramsWithLatency) {
  Network network(&simulator_);
  std::optional<std::vector<uint8_t>> received;
  EndpointId from_seen = 0;
  EndpointId b = network.Attach([&](EndpointId from, std::vector<uint8_t> payload) {
    from_seen = from;
    received = std::move(payload);
  });
  EndpointId a = network.Attach([](EndpointId, std::vector<uint8_t>) {});
  network.Send(a, b, {1, 2, 3});
  EXPECT_FALSE(received.has_value());  // not instantaneous
  simulator_.Run();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(*received, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(from_seen, a);
  EXPECT_GE(simulator_.Now().nanos(), 5000u);  // base latency
}

TEST_F(NetworkTest, LargerPayloadsTakeLonger) {
  Network network(&simulator_);
  EndpointId sink = network.Attach([](EndpointId, std::vector<uint8_t>) {});
  EndpointId a = network.Attach([](EndpointId, std::vector<uint8_t>) {});
  network.Send(a, sink, std::vector<uint8_t>(64));
  simulator_.Run();
  sim::Duration small = simulator_.Now() - sim::SimTime::Zero();

  sim::Simulator simulator2;
  Network network2(&simulator2);
  EndpointId sink2 = network2.Attach([](EndpointId, std::vector<uint8_t>) {});
  EndpointId a2 = network2.Attach([](EndpointId, std::vector<uint8_t>) {});
  network2.Send(a2, sink2, std::vector<uint8_t>(1 << 20));
  simulator2.Run();
  EXPECT_GT(simulator2.Now().nanos(), small.nanos() * 5);
}

TEST_F(NetworkTest, EgressSerializesPerEndpoint) {
  Network network(&simulator_);
  int delivered = 0;
  sim::SimTime last;
  EndpointId sink = network.Attach([&](EndpointId, std::vector<uint8_t>) {
    ++delivered;
    last = simulator_.Now();
  });
  EndpointId a = network.Attach([](EndpointId, std::vector<uint8_t>) {});
  // Two large sends back-to-back: second arrives ~2x later.
  network.Send(a, sink, std::vector<uint8_t>(1 << 20));
  network.Send(a, sink, std::vector<uint8_t>(1 << 20));
  simulator_.Run();
  EXPECT_EQ(delivered, 2);
  uint64_t one_transfer = 5000 + static_cast<uint64_t>((1 << 20) / 10.0);
  EXPECT_GE(last.nanos(), 2 * one_transfer - 5000);
}

TEST_F(NetworkTest, SendToDetachedEndpointDrops) {
  Network network(&simulator_);
  EndpointId a = network.Attach([](EndpointId, std::vector<uint8_t>) {});
  EndpointId b = network.Attach([](EndpointId, std::vector<uint8_t>) {});
  network.Detach(b);
  network.Send(a, b, {1});
  simulator_.Run();
  EXPECT_EQ(network.stats().GetCounter("dropped").value(), 1u);
}

TEST_F(NetworkTest, DetachMidFlightDropsDelivery) {
  Network network(&simulator_);
  int delivered = 0;
  EndpointId b = network.Attach([&](EndpointId, std::vector<uint8_t>) { ++delivered; });
  EndpointId a = network.Attach([](EndpointId, std::vector<uint8_t>) {});
  network.Send(a, b, {1});
  network.Detach(b);
  simulator_.Run();
  EXPECT_EQ(delivered, 0);
}

TEST_F(NetworkTest, StatsCountTraffic) {
  Network network(&simulator_);
  EndpointId b = network.Attach([](EndpointId, std::vector<uint8_t>) {});
  EndpointId a = network.Attach([](EndpointId, std::vector<uint8_t>) {});
  network.Send(a, b, std::vector<uint8_t>(100));
  simulator_.Run();
  EXPECT_EQ(network.stats().GetCounter("datagrams").value(), 1u);
  EXPECT_EQ(network.stats().GetCounter("bytes").value(), 100u);
}

}  // namespace
}  // namespace lastcpu::net
