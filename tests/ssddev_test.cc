// Smart-SSD tests: NAND constraints and timing, FTL mapping + GC + write
// amplification, FlashFs semantics including ACLs and sparse files, and the
// full Figure-2 file-service session over virtqueues, end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <span>

#include "src/auth/auth_client.h"
#include "src/memdev/memory_controller.h"
#include "src/ssddev/file_client.h"
#include "src/ssddev/flash_fs.h"
#include "src/ssddev/ftl.h"
#include "src/ssddev/nand.h"
#include "src/ssddev/smart_ssd.h"
#include "tests/test_util.h"

namespace lastcpu::ssddev {
namespace {

using testutil::Harness;
using testutil::TestDevice;

std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> list) { return list; }

// --- NAND -------------------------------------------------------------------

class NandTest : public ::testing::Test {
 protected:
  sim::Simulator simulator_;
};

TEST_F(NandTest, ProgramThenReadBack) {
  NandArray nand(&simulator_);
  std::optional<std::vector<uint8_t>> read;
  nand.ProgramPage(Ppa{0, 0, 0}, Bytes({1, 2, 3}), [](Status s) { ASSERT_TRUE(s.ok()); });
  nand.ReadPage(Ppa{0, 0, 0}, [&](Result<std::vector<uint8_t>> r) {
    ASSERT_TRUE(r.ok());
    read = *r;
  });
  simulator_.Run();
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(*read, Bytes({1, 2, 3}));
}

TEST_F(NandTest, ReadOfErasedPageFails) {
  NandArray nand(&simulator_);
  std::optional<Status> status;
  nand.ReadPage(Ppa{0, 0, 5}, [&](Result<std::vector<uint8_t>> r) { status = r.status(); });
  simulator_.Run();
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->code(), StatusCode::kFailedPrecondition);
}

TEST_F(NandTest, ProgramOfWrittenPageFails) {
  NandArray nand(&simulator_);
  std::optional<Status> second;
  nand.ProgramPage(Ppa{0, 0, 0}, Bytes({1}), [](Status s) { ASSERT_TRUE(s.ok()); });
  nand.ProgramPage(Ppa{0, 0, 0}, Bytes({2}), [&](Status s) { second = s; });
  simulator_.Run();
  EXPECT_EQ(second->code(), StatusCode::kFailedPrecondition);
}

TEST_F(NandTest, EraseEnablesReprogram) {
  NandArray nand(&simulator_);
  nand.ProgramPage(Ppa{0, 0, 0}, Bytes({1}), [](Status s) { ASSERT_TRUE(s.ok()); });
  nand.EraseBlock(0, 0, [](Status s) { ASSERT_TRUE(s.ok()); });
  bool ok = false;
  nand.ProgramPage(Ppa{0, 0, 0}, Bytes({2}), [&](Status s) { ok = s.ok(); });
  simulator_.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(nand.EraseCount(0, 0), 1u);
}

TEST_F(NandTest, OperationsTakeAsymmetricTime) {
  NandArray nand(&simulator_);
  sim::SimTime read_done;
  sim::SimTime program_done;
  nand.ProgramPage(Ppa{0, 0, 0}, Bytes({1}), [&](Status) { program_done = simulator_.Now(); });
  simulator_.Run();
  sim::SimTime start = simulator_.Now();
  nand.ReadPage(Ppa{0, 0, 0}, [&](Result<std::vector<uint8_t>>) { read_done = simulator_.Now(); });
  simulator_.Run();
  EXPECT_GT(program_done.nanos(), (read_done - start).nanos());
}

TEST_F(NandTest, DiesOperateInParallel) {
  NandArray nand(&simulator_);
  // Two programs on different dies overlap; two on the same die serialize.
  sim::SimTime same_die_done;
  nand.ProgramPage(Ppa{0, 0, 0}, Bytes({1}), [](Status) {});
  nand.ProgramPage(Ppa{0, 0, 1}, Bytes({2}), [&](Status) { same_die_done = simulator_.Now(); });
  simulator_.Run();

  sim::Simulator simulator2;
  NandArray nand2(&simulator2);
  sim::SimTime cross_die_done;
  nand2.ProgramPage(Ppa{0, 0, 0}, Bytes({1}), [](Status) {});
  nand2.ProgramPage(Ppa{1, 0, 0}, Bytes({2}), [&](Status) { cross_die_done = simulator2.Now(); });
  simulator2.Run();
  EXPECT_LT(cross_die_done.nanos(), same_die_done.nanos());
}

TEST_F(NandTest, InjectedReadErrorsSurface) {
  NandArray nand(&simulator_, NandGeometry{}, NandTiming{}, /*seed=*/3);
  nand.SetReadErrorRate(1.0);
  nand.ProgramPage(Ppa{0, 0, 0}, Bytes({1}), [](Status s) { ASSERT_TRUE(s.ok()); });
  std::optional<Status> status;
  nand.ReadPage(Ppa{0, 0, 0}, [&](Result<std::vector<uint8_t>> r) { status = r.status(); });
  simulator_.Run();
  EXPECT_EQ(status->code(), StatusCode::kDataLoss);
}

TEST_F(NandTest, OutOfRangeAddressRejected) {
  NandArray nand(&simulator_);
  std::optional<Status> status;
  nand.ReadPage(Ppa{99, 0, 0}, [&](Result<std::vector<uint8_t>> r) { status = r.status(); });
  simulator_.Run();
  EXPECT_EQ(status->code(), StatusCode::kInvalidArgument);
}

TEST_F(NandTest, OobTagProgrammedAtomicallyWithPage) {
  NandArray nand(&simulator_);
  OobTag tag;
  tag.kind = OobTag::Kind::kData;
  tag.seq = 7;
  tag.lpn = 42;
  tag.file_id = 3;
  tag.file_page = 1;
  tag.size_after = 999;
  nand.ProgramPage(Ppa{0, 0, 0}, Bytes({1, 2}), tag, [](Status s) { ASSERT_TRUE(s.ok()); });
  simulator_.Run();
  const OobTag& oob = nand.OobOf(Ppa{0, 0, 0});
  EXPECT_EQ(oob.kind, OobTag::Kind::kData);
  EXPECT_EQ(oob.seq, 7u);
  EXPECT_EQ(oob.lpn, 42u);
  EXPECT_EQ(oob.file_id, 3u);
  EXPECT_EQ(oob.file_page, 1u);
  EXPECT_EQ(oob.size_after, 999u);
}

TEST_F(NandTest, PowerCutTearsInflightProgram) {
  NandArray nand(&simulator_);
  bool completed = false;
  nand.ProgramPage(Ppa{0, 0, 0}, Bytes({1}), [&](Status) { completed = true; });
  nand.PowerCut();
  simulator_.Run();
  // The silicon that would have delivered the completion lost power.
  EXPECT_FALSE(completed);
  EXPECT_EQ(nand.StateOf(Ppa{0, 0, 0}), NandArray::PageState::kTorn);
  // A torn page is unreadable and unprogrammable...
  std::optional<Status> read;
  nand.ReadPage(Ppa{0, 0, 0}, [&](Result<std::vector<uint8_t>> r) { read = r.status(); });
  std::optional<Status> reprogram;
  nand.ProgramPage(Ppa{0, 0, 0}, Bytes({2}), [&](Status s) { reprogram = s; });
  simulator_.Run();
  EXPECT_FALSE(read->ok());
  EXPECT_FALSE(reprogram->ok());
  // ...until the block is erased.
  nand.EraseBlock(0, 0, [](Status s) { ASSERT_TRUE(s.ok()); });
  bool ok = false;
  nand.ProgramPage(Ppa{0, 0, 0}, Bytes({2}), [&](Status s) { ok = s.ok(); });
  simulator_.Run();
  EXPECT_TRUE(ok);
}

TEST_F(NandTest, PowerCutTearsInflightEraseAcrossWholeBlock) {
  NandArray nand(&simulator_);
  nand.ProgramPage(Ppa{0, 0, 3}, Bytes({1}), [](Status s) { ASSERT_TRUE(s.ok()); });
  simulator_.Run();
  bool erased = false;
  nand.EraseBlock(0, 0, [&](Status) { erased = true; });
  nand.PowerCut();
  simulator_.Run();
  EXPECT_FALSE(erased);
  // An interrupted erase pulse leaves every page of the block indeterminate.
  EXPECT_EQ(nand.StateOf(Ppa{0, 0, 0}), NandArray::PageState::kTorn);
  EXPECT_EQ(nand.StateOf(Ppa{0, 0, 3}), NandArray::PageState::kTorn);
  nand.EraseBlock(0, 0, [](Status s) { ASSERT_TRUE(s.ok()); });
  bool ok = false;
  nand.ProgramPage(Ppa{0, 0, 0}, Bytes({2}), [&](Status s) { ok = s.ok(); });
  simulator_.Run();
  EXPECT_TRUE(ok);
}

// --- FTL ---------------------------------------------------------------------

class FtlTest : public ::testing::Test {
 protected:
  FtlTest() : nand_(&simulator_, SmallGeometry()), ftl_(&simulator_, &nand_) {}

  static NandGeometry SmallGeometry() {
    NandGeometry g;
    g.dies = 2;
    g.blocks_per_die = 8;
    g.pages_per_block = 8;
    return g;
  }

  std::vector<uint8_t> PageOf(uint8_t fill) {
    return std::vector<uint8_t>(nand_.geometry().page_bytes, fill);
  }

  void WriteSync(uint64_t lpn, uint8_t fill) {
    bool done = false;
    ftl_.Write(lpn, PageOf(fill), [&](Status s) {
      ASSERT_TRUE(s.ok()) << s.ToString();
      done = true;
    });
    simulator_.Run();
    ASSERT_TRUE(done);
  }

  std::vector<uint8_t> ReadSync(uint64_t lpn) {
    std::vector<uint8_t> out;
    ftl_.Read(lpn, [&](Result<std::span<const uint8_t>> r) {
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      out.assign(r->begin(), r->end());
    });
    simulator_.Run();
    return out;
  }

  sim::Simulator simulator_;
  NandArray nand_;
  Ftl ftl_;
};

TEST_F(FtlTest, CapacityReflectsOverProvisioning) {
  EXPECT_EQ(ftl_.logical_pages(),
            static_cast<uint64_t>(static_cast<double>(SmallGeometry().total_pages()) * 0.75));
}

TEST_F(FtlTest, WriteReadRoundTrip) {
  WriteSync(5, 0xAB);
  EXPECT_EQ(ReadSync(5), PageOf(0xAB));
  EXPECT_TRUE(ftl_.IsMapped(5));
  EXPECT_FALSE(ftl_.IsMapped(6));
}

TEST_F(FtlTest, OverwriteGoesOutOfPlace) {
  WriteSync(5, 0x11);
  WriteSync(5, 0x22);
  EXPECT_EQ(ReadSync(5), PageOf(0x22));
  // Two NAND programs for one logical page.
  EXPECT_EQ(nand_.stats().GetCounter("programs").value(), 2u);
}

TEST_F(FtlTest, UnwrittenReadFails) {
  std::optional<Status> status;
  ftl_.Read(7, [&](Result<std::span<const uint8_t>> r) { status = r.status(); });
  simulator_.Run();
  EXPECT_EQ(status->code(), StatusCode::kNotFound);
}

TEST_F(FtlTest, TrimUnmaps) {
  WriteSync(5, 0xAB);
  ftl_.Trim(5);
  EXPECT_FALSE(ftl_.IsMapped(5));
  std::optional<Status> status;
  ftl_.Read(5, [&](Result<std::span<const uint8_t>> r) { status = r.status(); });
  simulator_.Run();
  EXPECT_EQ(status->code(), StatusCode::kNotFound);
}

TEST_F(FtlTest, SustainedRandomOverwriteTriggersGcAndSurvives) {
  // Random overwrites over ~90% of the logical space leave victim blocks
  // holding a mix of valid and invalid pages, so GC must relocate live data
  // (write amplification > 1) and every page must survive intact.
  uint64_t working_set = ftl_.logical_pages() * 9 / 10;
  std::map<uint64_t, uint8_t> expected;
  sim::Rng rng(42);
  for (int i = 0; i < 1500; ++i) {
    uint64_t lpn = rng.NextBelow(working_set);
    auto fill = static_cast<uint8_t>(rng.NextBelow(256));
    WriteSync(lpn, fill);
    expected[lpn] = fill;
  }
  EXPECT_GT(ftl_.gc_runs(), 0u);
  EXPECT_GT(ftl_.WriteAmplification(), 1.0);
  EXPECT_GT(ftl_.stats().GetCounter("gc_relocations").value(), 0u);
  for (const auto& [lpn, fill] : expected) {
    ASSERT_EQ(ReadSync(lpn), PageOf(fill)) << "lpn " << lpn;
  }
}

TEST_F(FtlTest, WriteAmplificationIsOneWithoutGc) {
  WriteSync(0, 1);
  WriteSync(1, 2);
  EXPECT_DOUBLE_EQ(ftl_.WriteAmplification(), 1.0);
}

TEST_F(FtlTest, ReadCacheServesHotPages) {
  WriteSync(5, 0xAB);
  EXPECT_EQ(ReadSync(5), PageOf(0xAB));  // miss, fills cache
  uint64_t nand_reads = nand_.stats().GetCounter("reads").value();
  EXPECT_EQ(ReadSync(5), PageOf(0xAB));  // hit: no NAND access
  EXPECT_EQ(nand_.stats().GetCounter("reads").value(), nand_reads);
  EXPECT_GT(ftl_.cache_hits(), 0u);
}

TEST_F(FtlTest, CacheInvalidatedOnOverwriteAndTrim) {
  WriteSync(5, 0x11);
  EXPECT_EQ(ReadSync(5), PageOf(0x11));  // cached
  WriteSync(5, 0x22);
  EXPECT_EQ(ReadSync(5), PageOf(0x22));  // must not serve the stale copy
  ftl_.Trim(5);
  std::optional<Status> status;
  ftl_.Read(5, [&](Result<std::span<const uint8_t>> r) { status = r.status(); });
  simulator_.Run();
  EXPECT_EQ(status->code(), StatusCode::kNotFound);
}

TEST_F(FtlTest, ReadRacingWriteNeverPoisonsCache) {
  // Regression: a read that starts inside a write's program window walks the
  // old mapping; its cache fill must not survive the write's commit.
  WriteSync(5, 0x11);
  bool wrote = false;
  ftl_.Write(5, PageOf(0x22), [&](Status s) { wrote = s.ok(); });
  // Racing read, issued in the same instant (the old data is still mapped).
  ftl_.Read(5, [](Result<std::span<const uint8_t>>) {});
  simulator_.Run();
  ASSERT_TRUE(wrote);
  // Both the cached and uncached paths must now see the new data.
  EXPECT_EQ(ReadSync(5), PageOf(0x22));
  EXPECT_EQ(ReadSync(5), PageOf(0x22));
}

TEST_F(FtlTest, CacheEvictsLruUnderPressure) {
  sim::Simulator simulator;
  NandArray nand(&simulator, SmallGeometry());
  FtlConfig config;
  config.read_cache_pages = 2;
  Ftl small_cache(&simulator, &nand, config);
  auto page = [&](uint8_t fill) {
    return std::vector<uint8_t>(nand.geometry().page_bytes, fill);
  };
  for (uint64_t lpn = 0; lpn < 3; ++lpn) {
    small_cache.Write(lpn, page(static_cast<uint8_t>(lpn)), [](Status s) {
      ASSERT_TRUE(s.ok());
    });
    simulator.Run();
  }
  for (uint64_t lpn = 0; lpn < 3; ++lpn) {
    small_cache.Read(lpn, [](Result<std::span<const uint8_t>> r) { ASSERT_TRUE(r.ok()); });
    simulator.Run();
  }
  // Only 2 entries fit; re-reading the first is a miss again.
  uint64_t misses = small_cache.cache_misses();
  small_cache.Read(0, [](Result<std::span<const uint8_t>> r) { ASSERT_TRUE(r.ok()); });
  simulator.Run();
  EXPECT_EQ(small_cache.cache_misses(), misses + 1);
}

TEST_F(FtlTest, OutOfRangeLpnRejected) {
  std::optional<Status> status;
  ftl_.Write(ftl_.logical_pages(), PageOf(1), [&](Status s) { status = s; });
  simulator_.Run();
  EXPECT_EQ(status->code(), StatusCode::kInvalidArgument);
}

// --- FTL power loss and recovery ---------------------------------------------

TEST_F(FtlTest, RecoverRebuildsMappingFromOobScan) {
  WriteSync(1, 0x11);
  WriteSync(2, 0x22);
  WriteSync(1, 0x33);  // overwrite: highest sequence number must win
  ftl_.PowerCut();
  ftl_.Recover();
  simulator_.Run();
  EXPECT_TRUE(ftl_.IsMapped(1));
  EXPECT_TRUE(ftl_.IsMapped(2));
  EXPECT_FALSE(ftl_.IsMapped(3));
  EXPECT_EQ(ReadSync(1), PageOf(0x33));
  EXPECT_EQ(ReadSync(2), PageOf(0x22));
  EXPECT_EQ(ftl_.recoveries(), 1u);
  EXPECT_GE(ftl_.stats().GetCounter("recovered_pages").value(), 2u);
}

TEST_F(FtlTest, PowerCutFailsInflightOpsExactlyOnce) {
  WriteSync(1, 0x11);
  int write_cbs = 0;
  int read_cbs = 0;
  std::optional<Status> wrote;
  std::optional<Status> read;
  ftl_.Write(2, PageOf(0x22), [&](Status s) {
    ++write_cbs;
    wrote = s;
  });
  ftl_.Read(1, [&](Result<std::span<const uint8_t>> r) {
    ++read_cbs;
    read = r.status();
  });
  ftl_.PowerCut();
  // Both fail synchronously at the cut...
  EXPECT_EQ(write_cbs, 1);
  EXPECT_EQ(read_cbs, 1);
  EXPECT_EQ(wrote->code(), StatusCode::kUnavailable);
  EXPECT_EQ(read->code(), StatusCode::kUnavailable);
  // ...and the already-scheduled NAND completions must not double-deliver.
  simulator_.Run();
  EXPECT_EQ(write_cbs, 1);
  EXPECT_EQ(read_cbs, 1);
}

TEST_F(FtlTest, RecoveryDiscardsTornTailWrite) {
  WriteSync(1, 0x11);
  std::optional<Status> tail;
  ftl_.Write(1, PageOf(0x22), [&](Status s) { tail = s; });
  ftl_.PowerCut();  // the overwrite is mid-program: its page tears
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->code(), StatusCode::kUnavailable);
  ftl_.Recover();
  simulator_.Run();
  // The torn tail entry is discarded; the last *acked* value survives.
  EXPECT_EQ(ReadSync(1), PageOf(0x11));
  EXPECT_GE(ftl_.stats().GetCounter("torn_pages_discarded").value(), 1u);
}

TEST_F(FtlTest, TrimTombstoneDurableAfterSyncMeta) {
  WriteSync(1, 0x11);
  ftl_.Trim(1);
  bool synced = false;
  ftl_.SyncMeta([&](Status s) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    synced = true;
  });
  simulator_.Run();
  ASSERT_TRUE(synced);
  ftl_.PowerCut();
  ftl_.Recover();
  simulator_.Run();
  EXPECT_FALSE(ftl_.IsMapped(1));
}

TEST_F(FtlTest, UnsyncedTrimResurrectsOnRecovery) {
  // Contract check: Trim is applied in DRAM immediately but its tombstone is
  // durable only after SyncMeta. A cut before the flush loses the trim and
  // the old data legitimately comes back.
  WriteSync(1, 0x11);
  ftl_.Trim(1);
  EXPECT_FALSE(ftl_.IsMapped(1));
  ftl_.PowerCut();
  ftl_.Recover();
  simulator_.Run();
  EXPECT_TRUE(ftl_.IsMapped(1));
  EXPECT_EQ(ReadSync(1), PageOf(0x11));
}

TEST_F(FtlTest, PowerCutDuringGcRecoversAllAckedData) {
  // Sustained random overwrite forces GC on the small geometry; the cut is
  // armed to land one nanosecond after a NAND program issued while GC
  // relocations are in progress — the window where a mapping exists in two
  // places at once and recovery must pick a consistent winner.
  uint64_t working_set = ftl_.logical_pages() * 9 / 10;
  std::map<uint64_t, uint8_t> acked;
  sim::Rng rng(7);
  bool armed = false;
  bool cut = false;
  nand_.SetProgramObserver([&](uint64_t) {
    if (!armed && ftl_.stats().GetCounter("gc_relocations").value() >= 4) {
      armed = true;
      simulator_.Schedule(sim::Duration::Nanos(1), [&] {
        ftl_.PowerCut();
        cut = true;
      });
    }
  });
  for (int i = 0; i < 1500 && !cut; ++i) {
    uint64_t lpn = rng.NextBelow(working_set);
    auto fill = static_cast<uint8_t>(rng.NextBelow(256));
    std::optional<Status> status;
    ftl_.Write(lpn, PageOf(fill), [&](Status s) { status = s; });
    simulator_.Run();
    if (status.has_value() && status->ok()) {
      acked[lpn] = fill;
    }
  }
  nand_.SetProgramObserver(nullptr);
  ASSERT_TRUE(cut);
  ASSERT_GT(ftl_.gc_relocated_pages(), 0u);
  ftl_.Recover();
  simulator_.Run();
  for (const auto& [lpn, fill] : acked) {
    ASSERT_EQ(ReadSync(lpn), PageOf(fill)) << "lpn " << lpn;
  }
}

TEST_F(FtlTest, RechargedRecoveryOccupiesDies) {
  // Recovery is not free: the full-media OOB scan charges modeled busy time
  // to every die, so the first post-recovery read completes later than a
  // cold read would.
  WriteSync(1, 0x11);
  simulator_.Run();
  ftl_.PowerCut();
  ftl_.Recover();
  sim::SimTime start = simulator_.Now();
  sim::SimTime done;
  ftl_.Read(1, [&](Result<std::span<const uint8_t>> r) {
    ASSERT_TRUE(r.ok());
    done = simulator_.Now();
  });
  simulator_.Run();
  // 8 blocks * 8 pages * 200ns scan = 12.8us of scan ahead of the 50us read.
  EXPECT_GT((done - start).nanos(), NandTiming{}.read_latency.nanos());
}

// --- FlashFs ------------------------------------------------------------------

class FlashFsTest : public ::testing::Test {
 protected:
  FlashFsTest() : nand_(&simulator_), ftl_(&simulator_, &nand_), fs_(&ftl_) {}

  void WriteSync(const std::string& name, uint64_t offset, std::vector<uint8_t> data) {
    bool done = false;
    fs_.Write(name, offset, std::move(data), [&](Status s) {
      ASSERT_TRUE(s.ok()) << s.ToString();
      done = true;
    });
    simulator_.Run();
    ASSERT_TRUE(done);
  }

  std::vector<uint8_t> ReadSync(const std::string& name, uint64_t offset, uint64_t length) {
    std::vector<uint8_t> out;
    bool done = false;
    fs_.Read(name, offset, length, [&](Result<std::vector<uint8_t>> r) {
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      out = *r;
      done = true;
    });
    simulator_.Run();
    EXPECT_TRUE(done);
    return out;
  }

  sim::Simulator simulator_;
  NandArray nand_;
  Ftl ftl_;
  FlashFs fs_;
};

TEST_F(FlashFsTest, CreateWriteReadDelete) {
  ASSERT_TRUE(fs_.Create("kv.log").ok());
  EXPECT_TRUE(fs_.Exists("kv.log"));
  WriteSync("kv.log", 0, Bytes({10, 20, 30}));
  EXPECT_EQ(ReadSync("kv.log", 0, 3), Bytes({10, 20, 30}));
  EXPECT_EQ(fs_.Stat("kv.log")->size, 3u);
  ASSERT_TRUE(fs_.Delete("kv.log").ok());
  EXPECT_FALSE(fs_.Exists("kv.log"));
}

TEST_F(FlashFsTest, DuplicateCreateRejected) {
  ASSERT_TRUE(fs_.Create("a").ok());
  EXPECT_EQ(fs_.Create("a").code(), StatusCode::kAlreadyExists);
}

TEST_F(FlashFsTest, MissingFileOperationsFail) {
  EXPECT_EQ(fs_.Delete("nope").code(), StatusCode::kNotFound);
  EXPECT_FALSE(fs_.Stat("nope").ok());
  std::optional<Status> status;
  fs_.Read("nope", 0, 1, [&](Result<std::vector<uint8_t>> r) { status = r.status(); });
  simulator_.Run();
  EXPECT_EQ(status->code(), StatusCode::kNotFound);
}

TEST_F(FlashFsTest, CrossPageWriteAndRead) {
  ASSERT_TRUE(fs_.Create("big").ok());
  std::vector<uint8_t> data(10000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i % 251);
  }
  WriteSync("big", 0, data);
  EXPECT_EQ(ReadSync("big", 0, data.size()), data);
  // Unaligned slice in the middle.
  std::vector<uint8_t> slice(ReadSync("big", 4000, 300));
  ASSERT_EQ(slice.size(), 300u);
  for (size_t i = 0; i < slice.size(); ++i) {
    EXPECT_EQ(slice[i], data[4000 + i]);
  }
}

TEST_F(FlashFsTest, PartialOverwritePreservesNeighbors) {
  ASSERT_TRUE(fs_.Create("f").ok());
  WriteSync("f", 0, std::vector<uint8_t>(100, 0xAA));
  WriteSync("f", 40, Bytes({1, 2, 3}));
  auto out = ReadSync("f", 0, 100);
  EXPECT_EQ(out[39], 0xAA);
  EXPECT_EQ(out[40], 1);
  EXPECT_EQ(out[42], 3);
  EXPECT_EQ(out[43], 0xAA);
}

TEST_F(FlashFsTest, SparseGapReadsAsZeros) {
  ASSERT_TRUE(fs_.Create("sparse").ok());
  WriteSync("sparse", 3 * kPageSize, Bytes({7}));
  auto out = ReadSync("sparse", kPageSize, 16);
  for (uint8_t b : out) {
    EXPECT_EQ(b, 0);
  }
  EXPECT_EQ(fs_.Stat("sparse")->size, 3 * kPageSize + 1);
}

TEST_F(FlashFsTest, ReadPastEofClamps) {
  ASSERT_TRUE(fs_.Create("f").ok());
  WriteSync("f", 0, Bytes({1, 2, 3}));
  EXPECT_EQ(ReadSync("f", 2, 100), Bytes({3}));
  EXPECT_TRUE(ReadSync("f", 50, 10).empty());
}

TEST_F(FlashFsTest, AppendReportsOffsets) {
  ASSERT_TRUE(fs_.Create("log").ok());
  std::vector<uint64_t> offsets;
  fs_.Append("log", Bytes({1, 1}), [&](Result<uint64_t> r) {
    ASSERT_TRUE(r.ok());
    offsets.push_back(*r);
  });
  simulator_.Run();
  fs_.Append("log", Bytes({2, 2, 2}), [&](Result<uint64_t> r) {
    ASSERT_TRUE(r.ok());
    offsets.push_back(*r);
  });
  simulator_.Run();
  ASSERT_EQ(offsets.size(), 2u);
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[1], 2u);
  EXPECT_EQ(ReadSync("log", 0, 5), Bytes({1, 1, 2, 2, 2}));
}

TEST_F(FlashFsTest, ConcurrentAppendsGetDisjointRanges) {
  ASSERT_TRUE(fs_.Create("log").ok());
  std::vector<uint64_t> offsets;
  for (int i = 0; i < 4; ++i) {
    fs_.Append("log", std::vector<uint8_t>(10, static_cast<uint8_t>(i)),
               [&](Result<uint64_t> r) {
                 ASSERT_TRUE(r.ok());
                 offsets.push_back(*r);
               });
  }
  simulator_.Run();
  ASSERT_EQ(offsets.size(), 4u);
  std::sort(offsets.begin(), offsets.end());
  for (size_t i = 0; i < offsets.size(); ++i) {
    EXPECT_EQ(offsets[i], i * 10);
  }
  EXPECT_EQ(fs_.Stat("log")->size, 40u);
}

TEST_F(FlashFsTest, DeleteRecyclesPages) {
  ASSERT_TRUE(fs_.Create("f").ok());
  WriteSync("f", 0, std::vector<uint8_t>(8 * kPageSize, 1));
  uint64_t free_after_write = fs_.free_pages();
  ASSERT_TRUE(fs_.Delete("f").ok());
  // Freed lpns are parked until the delete record is durable on media, so the
  // pages come back only after the journal flush completes.
  simulator_.Run();
  EXPECT_EQ(fs_.free_pages(), free_after_write + 8);
}

// --- FlashFs power loss and recovery -----------------------------------------

// Models SmartSsd::OnPowerLoss / OnReset ordering: filesystem queues drop
// first, then the FTL (which tears the NAND), and recovery replays the FTL's
// journal before the filesystem rebuilds its namespace from it.
void PowerCycle(FlashFs& fs, Ftl& ftl, sim::Simulator& simulator) {
  fs.PowerCut();
  ftl.PowerCut();
  ftl.Recover();
  fs.Recover();
  simulator.Run();
}

TEST_F(FlashFsTest, RecoverRestoresFilesDataAndAcl) {
  FileAcl acl;
  acl.owner = "alice";
  acl.readers = {"bob"};
  ASSERT_TRUE(fs_.Create("f", acl).ok());
  std::vector<uint8_t> data(3 * kPageSize + 100);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i % 251);
  }
  WriteSync("f", 0, data);  // the ack implies the create record is durable too
  PowerCycle(fs_, ftl_, simulator_);
  ASSERT_TRUE(fs_.Exists("f"));
  EXPECT_EQ(fs_.Stat("f")->size, data.size());
  EXPECT_EQ(fs_.Stat("f")->acl.owner, "alice");
  EXPECT_TRUE(fs_.Stat("f")->acl.MayRead("bob"));
  EXPECT_FALSE(fs_.Stat("f")->acl.MayRead("mallory"));
  EXPECT_EQ(ReadSync("f", 0, data.size()), data);
}

TEST_F(FlashFsTest, UnackedCreateAbsentAfterPowerCut) {
  ASSERT_TRUE(fs_.Create("ghost").ok());  // record buffered in DRAM only
  std::optional<Status> wrote;
  fs_.Write("ghost", 0, std::vector<uint8_t>(kPageSize, 1), [&](Status s) { wrote = s; });
  // Cut before anything flushes: the queued write must fail, not hang...
  fs_.PowerCut();
  ftl_.PowerCut();
  ASSERT_TRUE(wrote.has_value());
  EXPECT_EQ(wrote->code(), StatusCode::kUnavailable);
  ftl_.Recover();
  fs_.Recover();
  simulator_.Run();
  // ...and the never-durable file is cleanly absent.
  EXPECT_FALSE(fs_.Exists("ghost"));
}

TEST_F(FlashFsTest, DurableDeleteStaysDeletedAfterPowerCut) {
  ASSERT_TRUE(fs_.Create("f").ok());
  WriteSync("f", 0, std::vector<uint8_t>(4 * kPageSize, 9));
  ASSERT_TRUE(fs_.Delete("f").ok());
  simulator_.Run();  // delete record + trim tombstones reach media
  uint64_t free_before = fs_.free_pages();
  PowerCycle(fs_, ftl_, simulator_);
  EXPECT_FALSE(fs_.Exists("f"));
  EXPECT_EQ(fs_.free_pages(), free_before);
}

TEST_F(FlashFsTest, RecreateAfterDeleteKeepsNewIncarnation) {
  // Same name, two incarnations: recovery must resolve the name to the
  // newest create record and not leak the old incarnation's pages into it.
  ASSERT_TRUE(fs_.Create("f").ok());
  WriteSync("f", 0, std::vector<uint8_t>(2 * kPageSize, 0xAA));
  ASSERT_TRUE(fs_.Delete("f").ok());
  simulator_.Run();
  ASSERT_TRUE(fs_.Create("f").ok());
  WriteSync("f", 0, std::vector<uint8_t>(kPageSize, 0xBB));
  PowerCycle(fs_, ftl_, simulator_);
  ASSERT_TRUE(fs_.Exists("f"));
  EXPECT_EQ(fs_.Stat("f")->size, kPageSize);
  EXPECT_EQ(ReadSync("f", 0, kPageSize), std::vector<uint8_t>(kPageSize, 0xBB));
}

// Regression for the fast-fail contract (matches the KVS engine's): a power
// cut mid-request fails every queued and in-flight filesystem write with
// Unavailable exactly once — nothing hangs, nothing double-completes.
TEST_F(FlashFsTest, PowerCutFailsQueuedAndInflightWritesWithUnavailable) {
  ASSERT_TRUE(fs_.Create("f").ok());
  simulator_.Run();  // create barrier durable; writes queue behind nothing
  int callbacks = 0;
  std::vector<StatusCode> codes;
  fs_.Write("f", 0, std::vector<uint8_t>(2 * kPageSize, 1), [&](Status s) {
    ++callbacks;
    codes.push_back(s.code());
  });
  fs_.Write("f", 2 * kPageSize, std::vector<uint8_t>(kPageSize, 2), [&](Status s) {
    ++callbacks;
    codes.push_back(s.code());
  });
  // First write is in flight at the FTL, second queued at the filesystem.
  fs_.PowerCut();
  ftl_.PowerCut();
  ASSERT_EQ(callbacks, 2);
  EXPECT_EQ(codes[0], StatusCode::kUnavailable);
  EXPECT_EQ(codes[1], StatusCode::kUnavailable);
  simulator_.Run();
  EXPECT_EQ(callbacks, 2);
}

TEST_F(FlashFsTest, AckedWritesSurviveRepeatedPowerCuts) {
  ASSERT_TRUE(fs_.Create("log").ok());
  std::vector<uint8_t> page_a(kPageSize, 0x0A);
  std::vector<uint8_t> page_b(kPageSize, 0x0B);
  WriteSync("log", 0, page_a);
  PowerCycle(fs_, ftl_, simulator_);
  ASSERT_TRUE(fs_.Exists("log"));
  WriteSync("log", kPageSize, page_b);
  PowerCycle(fs_, ftl_, simulator_);
  EXPECT_EQ(ReadSync("log", 0, kPageSize), page_a);
  EXPECT_EQ(ReadSync("log", kPageSize, kPageSize), page_b);
  EXPECT_EQ(fs_.Stat("log")->size, 2 * kPageSize);
}

TEST_F(FlashFsTest, AclGovernsAccess) {
  FileAcl acl;
  acl.owner = "alice";
  acl.readers = {"bob"};
  ASSERT_TRUE(fs_.Create("secret", acl).ok());
  const FileAcl stored = fs_.Stat("secret")->acl;
  EXPECT_TRUE(stored.MayRead("alice"));
  EXPECT_TRUE(stored.MayRead("bob"));
  EXPECT_FALSE(stored.MayRead("mallory"));
  EXPECT_TRUE(stored.MayWrite("alice"));
  EXPECT_FALSE(stored.MayWrite("bob"));
}

// --- Full file-service session (Figure 2 end to end) --------------------------

class FileSessionTest : public ::testing::Test {
 protected:
  FileSessionTest()
      : controller_(DeviceId(3), harness_.Context(), &harness_.memory),
        ssd_(DeviceId(2), harness_.Context(), NoAuthConfig()),
        nic_(DeviceId(1), "nic", harness_.Context()),
        client_(&nic_, Pasid(7)) {
    nic_.doorbell_handler = [this](DeviceId from, uint64_t value) {
      client_.HandleDoorbell(from, value);
    };
    ssd_.ProvisionFile("kv.log", {});
    controller_.PowerOn();
    ssd_.PowerOn();
    nic_.PowerOn();
    harness_.simulator.Run();
  }

  static SmartSsdConfig NoAuthConfig() {
    SmartSsdConfig config;
    config.host_auth_service = false;
    return config;
  }

  Status OpenSync(const std::string& file, uint64_t token = 0) {
    std::optional<Status> status;
    client_.Open(file, token, [&](Status s) { status = s; });
    harness_.simulator.Run();
    LASTCPU_CHECK(status.has_value(), "open never completed");
    return *status;
  }

  Harness harness_;
  memdev::MemoryController controller_;
  SmartSsd ssd_;
  TestDevice nic_;
  FileClient client_;
};

TEST_F(FileSessionTest, OpenEstablishesSharedSession) {
  ASSERT_TRUE(OpenSync("kv.log").ok());
  EXPECT_TRUE(client_.ready());
  EXPECT_EQ(client_.provider(), DeviceId(2));
  // Shared memory is mapped into both devices' IOMMUs under the app PASID.
  EXPECT_GT(nic_.iommu().mapped_pages(Pasid(7)), 0u);
  EXPECT_EQ(ssd_.iommu().mapped_pages(Pasid(7)), nic_.iommu().mapped_pages(Pasid(7)));
}

TEST_F(FileSessionTest, OpenOfMissingFileFails) {
  Status status = OpenSync("nope.log");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_FALSE(client_.ready());
}

TEST_F(FileSessionTest, WriteThenReadThroughService) {
  ASSERT_TRUE(OpenSync("kv.log").ok());
  std::optional<Status> wrote;
  client_.WriteAt(0, Bytes({5, 6, 7, 8}), [&](Status s) { wrote = s; });
  harness_.simulator.Run();
  ASSERT_TRUE(wrote.has_value());
  ASSERT_TRUE(wrote->ok()) << wrote->ToString();

  std::optional<std::vector<uint8_t>> read;
  client_.ReadAt(1, 2, [&](Result<std::vector<uint8_t>> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    read = *r;
  });
  harness_.simulator.Run();
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(*read, Bytes({6, 7}));
}

TEST_F(FileSessionTest, AppendAndStat) {
  ASSERT_TRUE(OpenSync("kv.log").ok());
  std::optional<uint64_t> at;
  client_.Append(Bytes({1, 2, 3}), [&](Result<uint64_t> r) {
    ASSERT_TRUE(r.ok());
    at = *r;
  });
  harness_.simulator.Run();
  EXPECT_EQ(at, 0u);
  client_.Append(Bytes({4}), [&](Result<uint64_t> r) { at = *r; });
  harness_.simulator.Run();
  EXPECT_EQ(at, 3u);
  std::optional<uint64_t> size;
  client_.Stat([&](Result<uint64_t> r) { size = *r; });
  harness_.simulator.Run();
  EXPECT_EQ(size, 4u);
}

TEST_F(FileSessionTest, ManyPipelinedRequests) {
  ASSERT_TRUE(OpenSync("kv.log").ok());
  std::optional<Status> wrote;
  client_.WriteAt(0, std::vector<uint8_t>(1000, 0x5A), [&](Status s) { wrote = s; });
  harness_.simulator.Run();
  ASSERT_TRUE(wrote->ok());
  // Issue a full window of concurrent reads (half the queue depth, since
  // each request consumes a 2-descriptor chain).
  int completed = 0;
  for (int i = 0; i < 32; ++i) {
    client_.ReadAt(static_cast<uint64_t>(i) * 10, 10, [&](Result<std::vector<uint8_t>> r) {
      ASSERT_TRUE(r.ok());
      ++completed;
    });
  }
  harness_.simulator.Run();
  EXPECT_EQ(completed, 32);
  EXPECT_EQ(ssd_.file_service().requests_served(), 33u);  // 1 write + 32 reads
}

TEST_F(FileSessionTest, TraceShowsFigure2Sequence) {
  harness_.trace.Enable();
  ASSERT_TRUE(OpenSync("kv.log").ok());
  // The canonical Figure-2 order: discovery broadcast delivered, open,
  // allocation mapped, grant mapped, queue attached.
  EXPECT_TRUE(harness_.trace.ContainsSequence({"discover-hit", "open", "alloc", "map", "grant",
                                               "map", "queue-attached"}));
}

TEST_F(FileSessionTest, CloseFreesSessionMemory) {
  ASSERT_TRUE(OpenSync("kv.log").ok());
  ASSERT_GT(controller_.AllocatedBytes(Pasid(7)), 0u);
  std::optional<Status> closed;
  client_.Close([&](Status s) { closed = s; });
  harness_.simulator.Run();
  ASSERT_TRUE(closed.has_value());
  EXPECT_TRUE(closed->ok()) << closed->ToString();
  EXPECT_EQ(controller_.AllocatedBytes(Pasid(7)), 0u);
  EXPECT_EQ(nic_.iommu().mapped_pages(Pasid(7)), 0u);
  EXPECT_EQ(ssd_.iommu().mapped_pages(Pasid(7)), 0u);
}

TEST_F(FileSessionTest, ResourceFailureNotifiesConsumer) {
  ASSERT_TRUE(OpenSync("kv.log").ok());
  ssd_.file_service().InjectResourceFailure(client_.instance(), "media error");
  harness_.simulator.Run();
  bool notified = false;
  for (const auto& m : nic_.unhandled) {
    if (m.Is<proto::ResourceFailed>()) {
      notified = true;
      EXPECT_EQ(m.As<proto::ResourceFailed>().reason, "media error");
    }
  }
  EXPECT_TRUE(notified);
}

TEST_F(FileSessionTest, RemoteCreateDeleteAndList) {
  // Create a file remotely, list it, write/read through a session, delete it.
  std::optional<Status> created;
  CreateRemoteFile(&nic_, ssd_.id(), "fresh.dat", 0, [&](Status s) { created = s; });
  harness_.simulator.Run();
  ASSERT_TRUE(created.has_value() && created->ok());
  EXPECT_TRUE(ssd_.fs().Exists("fresh.dat"));

  // Duplicate create fails.
  std::optional<Status> duplicate;
  CreateRemoteFile(&nic_, ssd_.id(), "fresh.dat", 0, [&](Status s) { duplicate = s; });
  harness_.simulator.Run();
  EXPECT_EQ(duplicate->code(), StatusCode::kAlreadyExists);

  std::optional<Result<std::vector<std::string>>> names;
  ListRemoteFiles(&nic_, ssd_.id(), 0, [&](Result<std::vector<std::string>> r) {
    names = std::move(r);
  });
  harness_.simulator.Run();
  ASSERT_TRUE(names.has_value() && names->ok());
  EXPECT_NE(std::find((*names)->begin(), (*names)->end(), "fresh.dat"), (*names)->end());

  std::optional<Status> deleted;
  DeleteRemoteFile(&nic_, ssd_.id(), "fresh.dat", 0, [&](Status s) { deleted = s; });
  harness_.simulator.Run();
  ASSERT_TRUE(deleted.has_value() && deleted->ok());
  EXPECT_FALSE(ssd_.fs().Exists("fresh.dat"));
}

// Regression: when discovery yields no offers (no file service owns the
// file, or none exists at all), Open must complete with kNotFound when the
// discover window elapses — it used to hang forever.
TEST(FileClientDiscoveryTest, OpenCompletesNotFoundWithoutAnyFileService) {
  Harness harness;
  memdev::MemoryController controller(DeviceId(3), harness.Context(), &harness.memory);
  TestDevice nic(DeviceId(1), "nic", harness.Context());
  controller.PowerOn();
  nic.PowerOn();
  harness.simulator.Run();

  FileClient client(&nic, Pasid(7));
  sim::SimTime start = harness.simulator.Now();
  std::optional<Status> opened;
  sim::SimTime completed;
  client.Open("orphan.log", 0, [&](Status s) {
    opened = s;
    completed = harness.simulator.Now();
  });
  harness.simulator.Run();
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->code(), StatusCode::kNotFound);
  EXPECT_FALSE(client.ready());
  // It fired exactly when the (default 20us) discover window closed.
  EXPECT_EQ(completed, start + FileClientConfig{}.discover_window);
}

TEST_F(FileSessionTest, TeardownPasidClosesOpenSessionAndFreesMemory) {
  ASSERT_TRUE(OpenSync("kv.log").ok());
  ASSERT_EQ(ssd_.file_service().instance_count(), 1u);
  ASSERT_GT(controller_.AllocatedBytes(Pasid(7)), 0u);
  // The app is torn down while its virtqueue session is open: the admin
  // fan-out must reach both the provider (instance dropped) and the memory
  // controller (session memory freed, IOMMUs scrubbed).
  nic_.SendOneWay(kBusDevice, proto::TeardownApp{Pasid(7)});
  harness_.simulator.Run();
  EXPECT_EQ(ssd_.file_service().instance_count(), 0u);
  EXPECT_EQ(controller_.AllocatedBytes(Pasid(7)), 0u);
  EXPECT_EQ(nic_.iommu().mapped_pages(Pasid(7)), 0u);
  EXPECT_EQ(ssd_.iommu().mapped_pages(Pasid(7)), 0u);
}

TEST_F(FileSessionTest, TeardownClientDropsFailedConsumersSessions) {
  ASSERT_TRUE(OpenSync("kv.log").ok());
  ASSERT_EQ(ssd_.file_service().instance_count(), 1u);
  // The consumer dies and the bus reports it: the provider must drop every
  // instance the dead device held, virtqueue session included.
  nic_.InjectFailure();
  harness_.bus.ReportDeviceFailure(DeviceId(1));
  harness_.simulator.Run();
  EXPECT_EQ(ssd_.file_service().instance_count(), 0u);
}

TEST_F(FileSessionTest, DeleteWithOpenSessionNotifiesConsumer) {
  ASSERT_TRUE(OpenSync("kv.log").ok());
  // Another device (the memory controller's id works as "someone else")
  // deletes the file out from under the open session.
  std::optional<Status> deleted;
  DeleteRemoteFile(&nic_, ssd_.id(), "kv.log", 0, [&](Status s) { deleted = s; });
  harness_.simulator.Run();
  ASSERT_TRUE(deleted.has_value() && deleted->ok());
  // The session holder received a ResourceFailed notice (Sec. 4).
  bool notified = false;
  for (const auto& m : nic_.unhandled) {
    if (m.Is<proto::ResourceFailed>()) {
      notified = true;
    }
  }
  EXPECT_TRUE(notified);
  EXPECT_EQ(ssd_.file_service().instance_count(), 0u);
}

// Regression: a power cut mid-request must fail the in-flight session op with
// Unavailable at the consumer — it used to be possible for the client to wait
// forever on a completion the dead silicon would never deliver.
TEST_F(FileSessionTest, PowerCutFailsInflightSessionOpsWithUnavailable) {
  ASSERT_TRUE(OpenSync("kv.log").ok());
  std::optional<Status> wrote;
  client_.WriteAt(0, std::vector<uint8_t>(1000, 0x5A), [&](Status s) { wrote = s; });
  ssd_.InjectPowerLoss();
  harness_.bus.ReportDeviceFailure(ssd_.id());
  harness_.simulator.Run();
  ASSERT_TRUE(wrote.has_value());  // no hang
  EXPECT_EQ(wrote->code(), StatusCode::kUnavailable);
  EXPECT_EQ(ssd_.file_service().instance_count(), 0u);
}

TEST(FileAdminAuthTest, AdminOpsAreTokenGated) {
  Harness harness;
  memdev::MemoryController controller(DeviceId(3), harness.Context(), &harness.memory);
  SmartSsd ssd(DeviceId(2), harness.Context());  // hosts auth
  TestDevice nic(DeviceId(1), "nic", harness.Context());
  ssd.auth()->AddUser("alice", "pw");
  ssd.auth()->AddUser("bob", "pw");
  controller.PowerOn();
  ssd.PowerOn();
  nic.PowerOn();
  harness.simulator.Run();

  auto login = [&](const std::string& user) {
    uint64_t token = 0;
    auth::LoginUser(&nic, DeviceId(2), user, "pw",
                    [&](Result<auth::Login> result) { token = result->token; });
    harness.simulator.Run();
    return token;
  };
  uint64_t alice = login("alice");
  uint64_t bob = login("bob");

  // Unauthenticated create is refused; alice's create succeeds and she owns
  // the file.
  std::optional<Status> anonymous;
  CreateRemoteFile(&nic, ssd.id(), "alice.dat", 0xBAD, [&](Status s) { anonymous = s; });
  harness.simulator.Run();
  EXPECT_EQ(anonymous->code(), StatusCode::kPermissionDenied);

  std::optional<Status> created;
  CreateRemoteFile(&nic, ssd.id(), "alice.dat", alice, [&](Status s) { created = s; });
  harness.simulator.Run();
  ASSERT_TRUE(created->ok());
  EXPECT_EQ(ssd.fs().Stat("alice.dat")->acl.owner, "alice");

  // Bob cannot delete alice's file; alice can.
  std::optional<Status> bob_delete;
  DeleteRemoteFile(&nic, ssd.id(), "alice.dat", bob, [&](Status s) { bob_delete = s; });
  harness.simulator.Run();
  EXPECT_EQ(bob_delete->code(), StatusCode::kPermissionDenied);
  std::optional<Status> alice_delete;
  DeleteRemoteFile(&nic, ssd.id(), "alice.dat", alice, [&](Status s) { alice_delete = s; });
  harness.simulator.Run();
  EXPECT_TRUE(alice_delete->ok());

  // Listing requires a live token too.
  std::optional<Result<std::vector<std::string>>> denied;
  ListRemoteFiles(&nic, ssd.id(), 0xBAD, [&](Result<std::vector<std::string>> r) {
    denied = std::move(r);
  });
  harness.simulator.Run();
  ASSERT_TRUE(denied.has_value());
  EXPECT_EQ(denied->status().code(), StatusCode::kPermissionDenied);
}

// Auth-gated sessions.
TEST(FileSessionAuthTest, TokenRequiredWhenAuthHosted) {
  Harness harness;
  memdev::MemoryController controller(DeviceId(3), harness.Context(), &harness.memory);
  SmartSsd ssd(DeviceId(2), harness.Context());  // hosts auth
  TestDevice nic(DeviceId(1), "nic", harness.Context());
  FileAcl acl;
  acl.owner = "operator";
  ssd.ProvisionFile("secret.log", {1, 2, 3}, acl);
  ssd.auth()->AddUser("operator", "hunter2");
  controller.PowerOn();
  ssd.PowerOn();
  nic.PowerOn();
  harness.simulator.Run();

  FileClient client(&nic, Pasid(7));
  nic.doorbell_handler = [&](DeviceId from, uint64_t value) {
    client.HandleDoorbell(from, value);
  };

  // Without a token: denied.
  std::optional<Status> denied;
  client.Open("secret.log", 0, [&](Status s) { denied = s; });
  harness.simulator.Run();
  ASSERT_TRUE(denied.has_value());
  EXPECT_EQ(denied->code(), StatusCode::kPermissionDenied);

  // Login, then open with the token: allowed.
  std::optional<uint64_t> token;
  auth::LoginUser(&nic, DeviceId(2), "operator", "hunter2",
                  [&](Result<auth::Login> result) {
                    ASSERT_TRUE(result.ok());
                    token = result->token;
                  });
  harness.simulator.Run();
  ASSERT_TRUE(token.has_value());

  FileClient client2(&nic, Pasid(7));
  nic.doorbell_handler = [&](DeviceId from, uint64_t value) {
    client2.HandleDoorbell(from, value);
  };
  std::optional<Status> opened;
  client2.Open("secret.log", *token, [&](Status s) { opened = s; });
  harness.simulator.Run();
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->ok()) << opened->ToString();

  // Wrong password never yields a token.
  std::optional<StatusCode> bad;
  auth::LoginUser(&nic, DeviceId(2), "operator", "wrong",
                  [&](Result<auth::Login> result) { bad = result.status().code(); });
  harness.simulator.Run();
  EXPECT_EQ(bad, StatusCode::kPermissionDenied);
}

}  // namespace
}  // namespace lastcpu::ssddev
