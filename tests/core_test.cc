// Machine-level tests: assembly and boot, application lifecycle, the
// heartbeat watchdog, multi-application isolation on shared devices, and the
// aggregated stats report.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>

#include "src/core/control_plane.h"
#include "src/core/machine.h"
#include "src/kvs/kvs_app.h"
#include "src/sim/json.h"
#include "tests/test_util.h"

namespace lastcpu::core {
namespace {

using testutil::TestDevice;

ssddev::SmartSsdConfig NoAuthSsd() {
  ssddev::SmartSsdConfig config;
  config.host_auth_service = false;
  return config;
}

TEST(MachineTest, BootBringsEveryDeviceAlive) {
  Machine machine;
  machine.AddMemoryController();
  machine.AddSmartSsd(NoAuthSsd());
  machine.AddSmartNic();
  EXPECT_EQ(machine.devices().size(), 3u);
  machine.Boot();
  for (const auto& device : machine.devices()) {
    EXPECT_EQ(device->state(), dev::Device::State::kAlive) << device->name();
    EXPECT_TRUE(machine.bus().IsAlive(device->id()));
  }
  EXPECT_TRUE(machine.bus().memory_controller().valid());
}

TEST(MachineTest, DeviceIdsAreUnique) {
  Machine machine;
  auto& a = machine.AddMemoryController();
  auto& b = machine.AddSmartSsd(NoAuthSsd());
  auto& c = machine.AddSmartNic();
  EXPECT_NE(a.id(), b.id());
  EXPECT_NE(b.id(), c.id());
}

TEST(MachineTest, ApplicationsGetDistinctPasids) {
  Machine machine;
  Pasid a = machine.NewApplication("app-a");
  Pasid b = machine.NewApplication("app-b");
  EXPECT_NE(a, b);
  EXPECT_EQ(machine.applications().size(), 2u);
  EXPECT_EQ(machine.applications()[0].second, "app-a");
}

TEST(MachineTest, TraceCapturesBootWhenEnabled) {
  MachineConfig config;
  config.enable_trace = true;
  Machine machine(config);
  machine.AddMemoryController();
  machine.Boot();
  EXPECT_TRUE(machine.trace().ContainsSequence({"self-test", "alive"}));
}

TEST(MachineTest, TraceFormsConnectedCausalChains) {
  MachineConfig config;
  config.enable_trace = true;
  Machine machine(config);
  auto& memctrl = machine.AddMemoryController();
  TestDevice requester(machine.NextDeviceId(), "req", machine.Context());
  requester.PowerOn();
  machine.Boot();

  Pasid app = machine.NewApplication("traced");
  BusControlClient client(&requester, memctrl.id());
  auto vaddr = client.AllocSync(app, 4 * kPageSize);
  ASSERT_TRUE(vaddr.ok());
  ASSERT_TRUE(client.FreeSync(app, *vaddr, 4 * kPageSize).ok());

  std::map<sim::SpanId, sim::SpanId> parent_of;
  std::set<sim::FlowId> sends;
  std::set<sim::FlowId> receives;
  for (const auto& r : machine.trace().records()) {
    if (r.kind == sim::TraceKind::kSpanBegin) {
      parent_of[r.span] = r.parent;
    } else if (r.kind == sim::TraceKind::kFlowSend) {
      sends.insert(r.flow);
    } else if (r.kind == sim::TraceKind::kFlowReceive) {
      receives.insert(r.flow);
    }
  }

  // Every non-root span's parent is itself a recorded span.
  EXPECT_GT(parent_of.size(), 4u);
  for (const auto& [span, parent] : parent_of) {
    if (parent != 0) {
      EXPECT_TRUE(parent_of.contains(parent)) << "span " << span << " dangling parent " << parent;
    }
  }
  // Every received flow was sent; the Fig-2 ops crossed the bus, so flows
  // exist at all.
  EXPECT_FALSE(receives.empty());
  for (sim::FlowId flow : receives) {
    EXPECT_TRUE(sends.contains(flow)) << "flow " << flow << " received but never sent";
  }

  // The alloc handshake nests at least requester-span -> memctrl handling
  // span -> bus MapDirective span.
  size_t max_depth = 0;
  for (const auto& [span, parent] : parent_of) {
    size_t depth = 1;
    sim::SpanId cursor = parent;
    while (cursor != 0 && depth < 32) {
      ++depth;
      auto it = parent_of.find(cursor);
      cursor = it == parent_of.end() ? 0 : it->second;
    }
    max_depth = std::max(max_depth, depth);
  }
  EXPECT_GE(max_depth, 3u);
}

TEST(MachineTest, MetricsJsonIsParseable) {
  Machine machine;
  machine.AddMemoryController();
  machine.AddSmartSsd(NoAuthSsd());
  machine.Boot();
  std::ostringstream os;
  machine.MetricsJson(os);
  auto parsed = sim::ParseJson(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const sim::JsonValue* bus = parsed->Find("bus");
  ASSERT_NE(bus, nullptr);
  EXPECT_NE(parsed->Find("fabric"), nullptr);
  const sim::JsonValue* devices = parsed->Find("devices");
  ASSERT_NE(devices, nullptr);
  EXPECT_NE(devices->Find("memctrl"), nullptr);
  // Boot traffic (alive announcements) went over the bus, so the counter
  // section is non-trivial.
  const sim::JsonValue* bus_counters = bus->Find("counters");
  ASSERT_NE(bus_counters, nullptr);
  const sim::JsonValue* sent = bus_counters->Find("messages_sent");
  ASSERT_NE(sent, nullptr);
  EXPECT_GT(sent->number(), 0.0);
  // Supervisor counters are surfaced as their own section; no crash plan was
  // configured, so there is no "crashes" section and nothing was restarted.
  const sim::JsonValue* supervisor = parsed->Find("supervisor");
  ASSERT_NE(supervisor, nullptr);
  const sim::JsonValue* quarantines = supervisor->Find("quarantines");
  ASSERT_NE(quarantines, nullptr);
  EXPECT_EQ(quarantines->number(), 0.0);
  EXPECT_NE(supervisor->Find("restarts"), nullptr);
  EXPECT_NE(supervisor->Find("recoveries"), nullptr);
  EXPECT_EQ(parsed->Find("crashes"), nullptr);
}

TEST(MachineTest, MetricsJsonReportsCrashInjection) {
  MachineConfig config;
  sim::CrashSpec spec;
  spec.device = 2;  // the SSD, second device added
  spec.at = sim::Duration::Micros(200);
  config.crash_plan.crashes = {spec};
  Machine machine(config);
  machine.AddMemoryController();
  machine.AddSmartSsd(NoAuthSsd());
  machine.Boot();
  machine.RunFor(sim::Duration::Millis(1));
  machine.RunUntilIdle();
  std::ostringstream os;
  machine.MetricsJson(os);
  auto parsed = sim::ParseJson(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const sim::JsonValue* crashes = parsed->Find("crashes");
  ASSERT_NE(crashes, nullptr);
  const sim::JsonValue* injected = crashes->Find("injected");
  ASSERT_NE(injected, nullptr);
  EXPECT_EQ(injected->number(), 1.0);
  // The SSD answered the reset pulse, so the supervisor recovered it.
  const sim::JsonValue* supervisor = parsed->Find("supervisor");
  ASSERT_NE(supervisor, nullptr);
  const sim::JsonValue* recoveries = supervisor->Find("recoveries");
  ASSERT_NE(recoveries, nullptr);
  EXPECT_EQ(recoveries->number(), 1.0);
}

TEST(MachineTest, MetricsJsonReportsStorageHealth) {
  // A power cut lands on the 40th NAND program while host writes stream in;
  // after the supervisor restarts the drive, the storage section must report
  // the write-amplification, GC, wear, and recovery counters round-trippable
  // through the JSON parser.
  MachineConfig config;
  sim::CrashSpec spec;
  spec.device = 2;  // the SSD, second device added
  spec.on_kth_program = 40;
  spec.power_cut = true;
  config.crash_plan.crashes = {spec};
  Machine machine(config);
  machine.AddMemoryController();
  auto& ssd = machine.AddSmartSsd(NoAuthSsd());
  ssd.ProvisionFile("t.log", {});
  machine.Boot();
  std::vector<uint8_t> page(4096, 0x5A);
  for (int i = 0; i < 60; ++i) {
    // Overwrites tolerate the mid-stream cut (Unavailable / NotFound while
    // the drive replays its journal are expected).
    ssd.fs().Write("t.log", static_cast<uint64_t>(i % 8) * page.size(), page, [](Status) {});
    machine.RunFor(sim::Duration::Millis(1));
    machine.RunUntilIdle();
  }
  machine.RunFor(sim::Duration::Millis(50));
  machine.RunUntilIdle();

  std::ostringstream os;
  machine.MetricsJson(os);
  auto parsed = sim::ParseJson(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const sim::JsonValue* storage = parsed->Find("storage");
  ASSERT_NE(storage, nullptr);
  ASSERT_TRUE(storage->is_array());
  ASSERT_EQ(storage->array().size(), 1u);
  const sim::JsonValue& drive = storage->array()[0];
  EXPECT_EQ(drive.Find("device")->number(), 2.0);
  EXPECT_GT(drive.Find("host_writes")->number(), 0.0);
  EXPECT_GE(drive.Find("nand_writes")->number(), drive.Find("host_writes")->number());
  EXPECT_GE(drive.Find("write_amplification")->number(), 1.0);
  ASSERT_NE(drive.Find("gc_runs"), nullptr);
  ASSERT_NE(drive.Find("gc_relocated_pages"), nullptr);
  ASSERT_NE(drive.Find("write_stalls"), nullptr);
  EXPECT_GE(drive.Find("erase_count_max")->number(), drive.Find("erase_count_min")->number());
  // The power cut happened and the drive replayed its journal.
  EXPECT_EQ(drive.Find("recoveries")->number(), 1.0);
  EXPECT_GT(drive.Find("recovered_pages")->number(), 0.0);
  ASSERT_NE(drive.Find("torn_pages_discarded"), nullptr);
  EXPECT_EQ(parsed->Find("crashes")->Find("injected")->number(), 1.0);
}

TEST(MachineTest, MetricsJsonOmitsStorageOnDisklessMachine) {
  Machine machine;
  machine.AddMemoryController();
  machine.Boot();
  std::ostringstream os;
  machine.MetricsJson(os);
  auto parsed = sim::ParseJson(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->Find("storage"), nullptr);
}

TEST(MachineTest, StatsReportCoversAllComponents) {
  Machine machine;
  machine.AddMemoryController();
  machine.AddSmartSsd(NoAuthSsd());
  machine.Boot();
  std::string report = machine.StatsReport();
  EXPECT_NE(report.find("== bus =="), std::string::npos);
  EXPECT_NE(report.find("== fabric =="), std::string::npos);
  EXPECT_NE(report.find("memctrl"), std::string::npos);
  EXPECT_NE(report.find("smart-ssd"), std::string::npos);
}

TEST(MachineTest, TeardownApplicationViaAdminPath) {
  Machine machine;
  auto& memctrl = machine.AddMemoryController();
  TestDevice requester(machine.NextDeviceId(), "req", machine.Context());
  requester.PowerOn();
  machine.Boot();
  Pasid app = machine.NewApplication("doomed");
  bool allocated = false;
  requester.rpc().Call<proto::MemAllocResponse>(
      memctrl.id(), proto::MemAllocRequest{app, 8 * kPageSize, VirtAddr(0), Access::kReadWrite},
      [&](Result<proto::MemAllocResponse> result) { allocated = result.ok(); });
  machine.RunUntilIdle();
  ASSERT_TRUE(allocated);
  ASSERT_GT(memctrl.AllocatedBytes(app), 0u);

  machine.TeardownApplication(app);
  machine.RunUntilIdle();
  EXPECT_EQ(memctrl.AllocatedBytes(app), 0u);
  EXPECT_EQ(requester.iommu().mapped_pages(app), 0u);
}

// --- heartbeat watchdog --------------------------------------------------------

TEST(WatchdogTest, SilentDeathIsDetectedAndSurvivorsNotified) {
  MachineConfig config;
  config.bus.heartbeat_timeout = sim::Duration::Millis(1);
  Machine machine(config);
  machine.AddMemoryController(); // no heartbeats configured on this one

  dev::DeviceConfig beating;
  beating.heartbeat_period = sim::Duration::Micros(200);
  TestDevice victim(machine.NextDeviceId(), "victim", machine.Context(), beating);
  TestDevice watcher(machine.NextDeviceId(), "watcher", machine.Context(), beating);
  victim.PowerOn();
  watcher.PowerOn();
  machine.Boot();
  ASSERT_TRUE(machine.bus().IsAlive(victim.id()));

  // Run a while: heartbeats keep everyone alive.
  machine.RunFor(sim::Duration::Millis(5));
  EXPECT_TRUE(machine.bus().IsAlive(victim.id()));
  EXPECT_GT(victim.stats().GetCounter("heartbeats_sent").value(), 10u);

  // The victim dies silently — nobody calls ReportDeviceFailure.
  victim.InjectFailure();
  machine.RunFor(sim::Duration::Millis(3));
  // The watchdog noticed, told the survivors, and pulsed reset (which brings
  // the device back through self-test).
  EXPECT_GE(machine.bus().stats().GetCounter("watchdog_failures").value(), 1u);
  ASSERT_FALSE(watcher.failed_peers.empty());
  EXPECT_EQ(watcher.failed_peers[0], victim.id());
  EXPECT_EQ(victim.state(), dev::Device::State::kAlive);  // reset revived it
}

TEST(WatchdogTest, HealthyDevicesAreNeverKilled) {
  MachineConfig config;
  config.bus.heartbeat_timeout = sim::Duration::Millis(1);
  Machine machine(config);
  dev::DeviceConfig beating;
  beating.heartbeat_period = sim::Duration::Micros(100);
  TestDevice steady(machine.NextDeviceId(), "steady", machine.Context(), beating);
  steady.PowerOn();
  machine.Boot();
  machine.RunFor(sim::Duration::Millis(20));
  EXPECT_TRUE(machine.bus().IsAlive(steady.id()));
  EXPECT_EQ(machine.bus().stats().GetCounter("watchdog_failures").value(), 0u);
  EXPECT_EQ(steady.failed_peers.size(), 0u);
}

// --- multi-application isolation on shared devices ------------------------------

TEST(MultiAppTest, TwoKvsAppsShareTheSsdInIsolation) {
  Machine machine;
  machine.AddMemoryController();
  auto& ssd = machine.AddSmartSsd(NoAuthSsd());
  auto& nic_a = machine.AddSmartNic();
  auto& nic_b = machine.AddSmartNic();
  ssd.ProvisionFile("a.log", {});
  ssd.ProvisionFile("b.log", {});

  Pasid pasid_a = machine.NewApplication("tenant-a");
  Pasid pasid_b = machine.NewApplication("tenant-b");
  kvs::KvsAppConfig config_a;
  config_a.engine.log_file = "a.log";
  kvs::KvsAppConfig config_b;
  config_b.engine.log_file = "b.log";
  auto app_a = std::make_unique<kvs::KvsApp>(&nic_a, pasid_a, config_a);
  auto app_b = std::make_unique<kvs::KvsApp>(&nic_b, pasid_b, config_b);
  kvs::KvsApp* a = app_a.get();
  kvs::KvsApp* b = app_b.get();
  nic_a.LoadApp(std::move(app_a));
  nic_b.LoadApp(std::move(app_b));
  machine.Boot();
  ASSERT_TRUE(a->engine().running());
  ASSERT_TRUE(b->engine().running());

  // Same key, different tenants, different values.
  a->engine().Put("shared-key", {0xA}, [](Status s) { ASSERT_TRUE(s.ok()); });
  b->engine().Put("shared-key", {0xB, 0xB}, [](Status s) { ASSERT_TRUE(s.ok()); });
  machine.RunUntilIdle();

  std::optional<std::vector<uint8_t>> from_a;
  std::optional<std::vector<uint8_t>> from_b;
  a->engine().Get("shared-key", [&](Result<std::vector<uint8_t>> r) {
    ASSERT_TRUE(r.ok());
    from_a = *r;
  });
  b->engine().Get("shared-key", [&](Result<std::vector<uint8_t>> r) {
    ASSERT_TRUE(r.ok());
    from_b = *r;
  });
  machine.RunUntilIdle();
  EXPECT_EQ(*from_a, (std::vector<uint8_t>{0xA}));
  EXPECT_EQ(*from_b, (std::vector<uint8_t>{0xB, 0xB}));

  // Address-space isolation: NIC A has no mappings in tenant B's PASID and
  // cannot touch B's session memory.
  EXPECT_EQ(nic_a.iommu().mapped_pages(pasid_b), 0u);
  bool faulted = false;
  machine.fabric().DmaRead(nic_a.id(), pasid_b, b->engine().file().session_base(), 16,
                           [&](Result<std::vector<uint8_t>> r) { faulted = !r.ok(); });
  machine.RunUntilIdle();
  EXPECT_TRUE(faulted);

  // Tearing down tenant A leaves tenant B fully functional.
  machine.TeardownApplication(pasid_a);
  machine.RunUntilIdle();
  bool b_alive = false;
  b->engine().Get("shared-key", [&](Result<std::vector<uint8_t>> r) { b_alive = r.ok(); });
  machine.RunUntilIdle();
  EXPECT_TRUE(b_alive);
  EXPECT_EQ(nic_a.iommu().mapped_pages(pasid_a), 0u);
}

// --- multiple providers of the same service type ---------------------------------

TEST(MultiProviderTest, DiscoveryRoutesToTheFileOwner) {
  // Two smart SSDs, each owning a different file. The broadcast discovery
  // must route each client session to the device that actually owns the
  // resource (Fig. 2 step 1 semantics: the query names the file).
  Machine machine;
  machine.AddMemoryController();
  ssddev::SmartSsdConfig config;
  config.host_auth_service = false;
  auto& ssd_a = machine.AddSmartSsd(config);
  auto& ssd_b = machine.AddSmartSsd(config);
  ssd_a.ProvisionFile("alpha.dat", {0xA});
  ssd_b.ProvisionFile("beta.dat", {0xB, 0xB});
  TestDevice client(machine.NextDeviceId(), "client", machine.Context());
  client.PowerOn();
  machine.Boot();

  ssddev::FileClient session_a(&client, Pasid(1));
  ssddev::FileClient session_b(&client, Pasid(1));
  client.doorbell_handler = [&](DeviceId from, uint64_t value) {
    if (!session_a.HandleDoorbell(from, value)) {
      session_b.HandleDoorbell(from, value);
    }
  };

  std::optional<Status> opened_a;
  std::optional<Status> opened_b;
  session_a.Open("alpha.dat", 0, [&](Status s) { opened_a = s; });
  session_b.Open("beta.dat", 0, [&](Status s) { opened_b = s; });
  machine.RunUntilIdle();
  ASSERT_TRUE(opened_a.has_value() && opened_a->ok()) << opened_a->ToString();
  ASSERT_TRUE(opened_b.has_value() && opened_b->ok()) << opened_b->ToString();
  EXPECT_EQ(session_a.provider(), ssd_a.id());
  EXPECT_EQ(session_b.provider(), ssd_b.id());

  // Reads hit the right media.
  std::optional<std::vector<uint8_t>> from_a;
  std::optional<std::vector<uint8_t>> from_b;
  session_a.ReadAt(0, 16, [&](Result<std::vector<uint8_t>> r) {
    ASSERT_TRUE(r.ok());
    from_a = *r;
  });
  session_b.ReadAt(0, 16, [&](Result<std::vector<uint8_t>> r) {
    ASSERT_TRUE(r.ok());
    from_b = *r;
  });
  machine.RunUntilIdle();
  EXPECT_EQ(*from_a, (std::vector<uint8_t>{0xA}));
  EXPECT_EQ(*from_b, (std::vector<uint8_t>{0xB, 0xB}));

  // A file nobody owns stays undiscoverable.
  ssddev::FileClient session_c(&client, Pasid(1));
  std::optional<Status> missing;
  session_c.Open("gamma.dat", 0, [&](Status s) { missing = s; });
  machine.RunUntilIdle();
  EXPECT_EQ(missing->code(), StatusCode::kNotFound);
}

TEST(MultiProviderTest, FailureOfOneProviderLeavesTheOtherServing) {
  Machine machine;
  machine.AddMemoryController();
  ssddev::SmartSsdConfig config;
  config.host_auth_service = false;
  auto& ssd_a = machine.AddSmartSsd(config);
  auto& ssd_b = machine.AddSmartSsd(config);
  ssd_a.ProvisionFile("a.log", {});
  ssd_b.ProvisionFile("b.log", {});
  auto& nic = machine.AddSmartNic();
  Pasid pasid = machine.NewApplication("kvs");
  kvs::KvsAppConfig app_config;
  app_config.engine.log_file = "b.log";
  auto app = std::make_unique<kvs::KvsApp>(&nic, pasid, app_config);
  kvs::KvsApp* kvs_app = app.get();
  nic.LoadApp(std::move(app));
  machine.Boot();
  ASSERT_TRUE(kvs_app->engine().running());
  ASSERT_EQ(kvs_app->engine().file().provider(), ssd_b.id());

  // SSD A (which the app does not use) dies: the app must keep serving.
  ssd_a.InjectFailure();
  machine.bus().ReportDeviceFailure(ssd_a.id());
  machine.RunUntilIdle();
  EXPECT_TRUE(kvs_app->engine().running());
  EXPECT_EQ(kvs_app->recoveries(), 0u);  // no recovery was needed
  std::optional<Status> put;
  kvs_app->engine().Put("still-works", {1}, [&](Status s) { put = s; });
  machine.RunUntilIdle();
  ASSERT_TRUE(put.has_value());
  EXPECT_TRUE(put->ok());
}

// --- Batched control plane: AllocBatch/FreeBatch and the grant magazine ---

struct MagazineRig {
  MagazineRig() : requester(machine.NextDeviceId(), "req", machine.Context()) {
    memctrl = &machine.AddMemoryController();
    requester.PowerOn();
    machine.Boot();
    app = machine.NewApplication("mag-app");
    inner = std::make_unique<BusControlClient>(&requester, memctrl->id());
  }

  MagazineClient MakeMagazine(MagazineConfig config) {
    return MagazineClient(inner.get(), config, &requester, memctrl->id());
  }

  uint64_t BusMessages() {
    return machine.bus().stats().GetCounter("messages_delivered").value();
  }

  Machine machine;
  memdev::MemoryController* memctrl = nullptr;
  TestDevice requester;
  Pasid app;
  std::unique_ptr<BusControlClient> inner;
};

TEST(ControlBatchTest, AllocBatchLeasesDistinctRegions) {
  MagazineRig rig;
  auto leased = rig.inner->AllocBatchSync(rig.app, 4 * kPageSize, 8);
  ASSERT_TRUE(leased.ok()) << leased.status().ToString();
  ASSERT_EQ(leased->size(), 8u);
  std::set<VirtAddr> distinct(leased->begin(), leased->end());
  EXPECT_EQ(distinct.size(), 8u);
  EXPECT_EQ(rig.memctrl->allocation_count(), 8u);
  EXPECT_EQ(rig.memctrl->AllocationsOwnedBy(rig.requester.id()), 8u);

  auto freed = rig.inner->FreeBatchSync(rig.app, *leased, 4 * kPageSize);
  ASSERT_TRUE(freed.ok()) << freed.status().ToString();
  EXPECT_EQ(rig.memctrl->allocation_count(), 0u);
}

TEST(ControlBatchTest, BatchCostsOneRoundTripNotN) {
  MagazineRig rig;
  uint64_t before = rig.BusMessages();
  ASSERT_TRUE(rig.inner->AllocBatchSync(rig.app, 4 * kPageSize, 16).ok());
  uint64_t batch_msgs = rig.BusMessages() - before;

  before = rig.BusMessages();
  std::vector<VirtAddr> singles;
  for (int i = 0; i < 16; ++i) {
    auto vaddr = rig.inner->AllocSync(rig.app, 4 * kPageSize);
    ASSERT_TRUE(vaddr.ok());
    singles.push_back(*vaddr);
  }
  uint64_t single_msgs = rig.BusMessages() - before;
  // One request/directive/confirm/response chain versus sixteen.
  EXPECT_LT(batch_msgs * 4, single_msgs);
}

TEST(ControlBatchTest, EmptyBatchesAreRejected) {
  MagazineRig rig;
  auto leased = rig.inner->AllocBatchSync(rig.app, 4 * kPageSize, 0);
  EXPECT_FALSE(leased.ok());
  EXPECT_EQ(leased.status().code(), StatusCode::kInvalidArgument);
  auto freed = rig.inner->FreeBatchSync(rig.app, {}, 4 * kPageSize);
  EXPECT_FALSE(freed.ok());
  EXPECT_EQ(freed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ControlBatchTest, FreeBatchRejectsForeignRegions) {
  MagazineRig rig;
  TestDevice other(rig.machine.NextDeviceId(), "other", rig.machine.Context());
  other.PowerOn();
  rig.machine.RunUntilIdle();
  auto leased = rig.inner->AllocBatchSync(rig.app, 4 * kPageSize, 2);
  ASSERT_TRUE(leased.ok());

  BusControlClient thief(&other, rig.memctrl->id());
  auto freed = thief.FreeBatchSync(rig.app, *leased, 4 * kPageSize);
  EXPECT_FALSE(freed.ok());
  EXPECT_EQ(freed.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(rig.memctrl->allocation_count(), 2u);  // nothing was torn down
}

TEST(MagazineTest, DisabledConfigPassesStraightThrough) {
  MagazineRig rig;
  MagazineClient magazine = rig.MakeMagazine(MagazineConfig{});  // enabled=false
  auto vaddr = magazine.AllocSync(rig.app, 4 * kPageSize);
  ASSERT_TRUE(vaddr.ok());
  ASSERT_TRUE(magazine.FreeSync(rig.app, *vaddr, 4 * kPageSize).ok());
  EXPECT_EQ(magazine.hits(), 0u);
  EXPECT_EQ(magazine.refills(), 0u);
  EXPECT_EQ(magazine.cached_regions(), 0u);
  EXPECT_EQ(rig.memctrl->allocation_count(), 0u);
}

TEST(MagazineTest, FirstMissRefillsThenHitsLocally) {
  MagazineRig rig;
  MagazineConfig config;
  config.enabled = true;
  config.refill_batch = 8;
  config.low_watermark = 0;  // no background refill: isolate the hit path
  MagazineClient magazine = rig.MakeMagazine(config);

  auto first = magazine.AllocSync(rig.app, 4 * kPageSize);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(magazine.misses(), 1u);
  EXPECT_EQ(magazine.refills(), 1u);
  EXPECT_EQ(magazine.cached_regions(), 7u);  // batch of 8 minus the waiter

  uint64_t before = rig.BusMessages();
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(magazine.AllocSync(rig.app, 4 * kPageSize).ok());
  }
  EXPECT_EQ(magazine.hits(), 7u);
  EXPECT_EQ(rig.BusMessages(), before);  // local hits: zero bus traffic
}

TEST(MagazineTest, FreeRecyclesTheRegionStillMapped) {
  MagazineRig rig;
  MagazineConfig config;
  config.enabled = true;
  config.refill_batch = 4;
  config.low_watermark = 1;
  MagazineClient magazine = rig.MakeMagazine(config);

  auto vaddr = magazine.AllocSync(rig.app, 4 * kPageSize);
  ASSERT_TRUE(vaddr.ok());
  ASSERT_TRUE(magazine.FreeSync(rig.app, *vaddr, 4 * kPageSize).ok());
  uint64_t before = rig.BusMessages();
  auto again = magazine.AllocSync(rig.app, 4 * kPageSize);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *vaddr);               // the exact region came back
  EXPECT_EQ(rig.BusMessages(), before);    // without touching the bus
}

TEST(MagazineTest, DrainsBackToCapacityAboveHighWatermark) {
  MagazineRig rig;
  MagazineConfig config;
  config.enabled = true;
  config.refill_batch = 2;
  config.capacity = 2;
  config.low_watermark = 1;
  config.high_watermark = 4;
  MagazineClient magazine = rig.MakeMagazine(config);

  // Lease regions out-of-band, then free them all through the magazine: the
  // stock climbs past the high watermark and a FreeBatch drain trims it.
  auto leased = rig.inner->AllocBatchSync(rig.app, 4 * kPageSize, 6);
  ASSERT_TRUE(leased.ok());
  for (VirtAddr vaddr : *leased) {
    ASSERT_TRUE(magazine.FreeSync(rig.app, vaddr, 4 * kPageSize).ok());
  }
  rig.machine.RunUntilIdle();  // let the in-flight FreeBatch drain settle
  EXPECT_GE(magazine.drains(), 1u);
  EXPECT_LE(magazine.cached_regions(), config.high_watermark);
  EXPECT_EQ(rig.memctrl->allocation_count(), magazine.cached_regions());
}

TEST(MagazineTest, FlushSettlesTheWholeLease) {
  MagazineRig rig;
  MagazineConfig config;
  config.enabled = true;
  config.refill_batch = 8;
  MagazineClient magazine = rig.MakeMagazine(config);
  ASSERT_TRUE(magazine.AllocSync(rig.app, 4 * kPageSize).ok());
  ASSERT_TRUE(magazine.AllocSync(rig.app, 2 * kPageSize).ok());  // second size class
  EXPECT_GT(magazine.cached_regions(), 0u);
  EXPECT_GT(rig.memctrl->allocation_count(), 0u);

  // Flush returns the stock; the two regions still held by the caller keep
  // their leases until freed.
  ASSERT_TRUE(magazine.FlushSync().ok());
  EXPECT_EQ(magazine.cached_regions(), 0u);
  EXPECT_EQ(rig.memctrl->allocation_count(), 2u);
}

}  // namespace
}  // namespace lastcpu::core
