// Unit tests for the discrete-event simulation substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "src/sim/json.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"
#include "src/sim/trace_export.h"

namespace lastcpu::sim {
namespace {

TEST(SimTimeTest, ArithmeticAndComparison) {
  SimTime t0 = SimTime::Zero();
  SimTime t1 = t0 + Duration::Micros(5);
  EXPECT_EQ(t1.nanos(), 5000u);
  EXPECT_LT(t0, t1);
  EXPECT_EQ((t1 - t0).nanos(), 5000u);
  EXPECT_EQ(Duration::Millis(1).nanos(), 1'000'000u);
  EXPECT_EQ(Duration::Seconds(2).nanos(), 2'000'000'000u);
  EXPECT_EQ((Duration::Micros(3) * 4).nanos(), 12'000u);
  EXPECT_EQ((Duration::Micros(8) / 2).nanos(), 4'000u);
}

TEST(SimTimeTest, ToStringPicksUnits) {
  EXPECT_EQ(Duration::Nanos(42).ToString(), "42ns");
  EXPECT_EQ(Duration::Micros(150).ToString(), "150.00us");
  EXPECT_EQ(Duration::Millis(25).ToString(), "25.00ms");
  EXPECT_EQ(Duration::Seconds(12).ToString(), "12.000s");
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.Schedule(Duration::Micros(3), [&] { order.push_back(3); });
  simulator.Schedule(Duration::Micros(1), [&] { order.push_back(1); });
  simulator.Schedule(Duration::Micros(2), [&] { order.push_back(2); });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.Now().nanos(), 3000u);
  EXPECT_EQ(simulator.events_executed(), 3u);
}

TEST(SimulatorTest, SimultaneousEventsRunFifo) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulator.Schedule(Duration::Micros(1), [&order, i] { order.push_back(i); });
  }
  simulator.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator simulator;
  int fired = 0;
  simulator.Schedule(Duration::Micros(1), [&] {
    ++fired;
    simulator.Schedule(Duration::Micros(1), [&] { ++fired; });
  });
  simulator.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(simulator.Now().nanos(), 2000u);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator simulator;
  bool ran = false;
  EventId id = simulator.Schedule(Duration::Micros(1), [&] { ran = true; });
  EXPECT_TRUE(simulator.Cancel(id));
  EXPECT_FALSE(simulator.Cancel(id));  // double-cancel reports failure
  simulator.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(simulator.events_executed(), 0u);
}

TEST(SimulatorTest, CancelAfterRunReturnsFalse) {
  Simulator simulator;
  EventId id = simulator.Schedule(Duration::Micros(1), [] {});
  simulator.Run();
  EXPECT_FALSE(simulator.Cancel(id));
}

TEST(SimulatorTest, RunUntilAdvancesClockToDeadline) {
  Simulator simulator;
  int fired = 0;
  simulator.Schedule(Duration::Micros(1), [&] { ++fired; });
  simulator.Schedule(Duration::Micros(10), [&] { ++fired; });
  simulator.RunUntil(SimTime::FromNanos(5000));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.Now().nanos(), 5000u);
  EXPECT_EQ(simulator.pending_events(), 1u);
  simulator.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator simulator;
  simulator.RunFor(Duration::Micros(7));
  EXPECT_EQ(simulator.Now().nanos(), 7000u);
  simulator.RunFor(Duration::Micros(3));
  EXPECT_EQ(simulator.Now().nanos(), 10000u);
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator simulator;
  int fired = 0;
  simulator.Schedule(Duration::Micros(1), [&] { ++fired; });
  simulator.Schedule(Duration::Micros(2), [&] { ++fired; });
  EXPECT_TRUE(simulator.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(simulator.Step());
  EXPECT_FALSE(simulator.Step());
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, PendingEventsExcludesCancelled) {
  Simulator simulator;
  simulator.Schedule(Duration::Micros(1), [] {});
  EventId id = simulator.Schedule(Duration::Micros(2), [] {});
  EXPECT_EQ(simulator.pending_events(), 2u);
  simulator.Cancel(id);
  EXPECT_EQ(simulator.pending_events(), 1u);
}

TEST(EventFnTest, InvokesAndReportsEngagement) {
  EventFn empty;
  EXPECT_FALSE(static_cast<bool>(empty));
  int fired = 0;
  EventFn fn = [&fired] { ++fired; };
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(fired, 2);
}

TEST(EventFnTest, HoldsMoveOnlyCallables) {
  // std::function could never hold this capture; EventFn is the reason the
  // hot path can move proto::Message payloads instead of copying them.
  auto value = std::make_unique<int>(41);
  int seen = 0;
  EventFn fn = [value = std::move(value), &seen] { seen = *value + 1; };
  fn();
  EXPECT_EQ(seen, 42);
}

TEST(EventFnTest, MoveTransfersTheCallable) {
  int fired = 0;
  EventFn a = [&fired] { ++fired; };
  EventFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(fired, 1);
}

TEST(EventFnTest, LargeCapturesFallBackToHeapCorrectly) {
  // Several times kInlineBytes: exercises the heap-stored vtable path.
  struct Big {
    uint64_t words[16] = {};
  };
  Big big;
  big.words[15] = 7;
  uint64_t seen = 0;
  EventFn fn = [big, &seen] { seen = big.words[15]; };
  EventFn moved = std::move(fn);
  moved();
  EXPECT_EQ(seen, 7u);
}

TEST(ScopedEventTest, CancelsOnDestruction) {
  Simulator simulator;
  bool ran = false;
  {
    ScopedEvent scoped(&simulator,
                       simulator.Schedule(Duration::Micros(1), [&] { ran = true; }));
    EXPECT_TRUE(scoped.armed());
  }
  simulator.Run();
  EXPECT_FALSE(ran);
}

TEST(ScopedEventTest, MoveTransfersOwnershipAndAssignmentCancels) {
  Simulator simulator;
  bool first = false;
  bool second = false;
  ScopedEvent scoped(&simulator,
                     simulator.Schedule(Duration::Micros(1), [&] { first = true; }));
  ScopedEvent stolen = std::move(scoped);
  EXPECT_FALSE(scoped.armed());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(stolen.armed());
  // Assigning a new event over an armed handle cancels the old one.
  stolen = ScopedEvent(&simulator,
                       simulator.Schedule(Duration::Micros(2), [&] { second = true; }));
  simulator.Run();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
}

TEST(ScopedEventTest, ReleaseAbandonsWithoutCancelling) {
  Simulator simulator;
  bool ran = false;
  EventId raw;
  {
    ScopedEvent scoped(&simulator,
                       simulator.Schedule(Duration::Micros(1), [&] { ran = true; }));
    raw = scoped.Release();
    EXPECT_FALSE(scoped.armed());
  }
  EXPECT_TRUE(raw.valid());
  simulator.Run();
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, DaemonsDoNotKeepRunAlive) {
  Simulator simulator;
  int daemon_fires = 0;
  int work_fires = 0;
  simulator.ScheduleDaemon(Duration::Micros(1), [&] { ++daemon_fires; });
  simulator.Schedule(Duration::Micros(3), [&] { ++work_fires; });
  simulator.Run();
  // The daemon ahead of the last real event runs; Run() then returns even
  // though nothing cancelled it.
  EXPECT_EQ(daemon_fires, 1);
  EXPECT_EQ(work_fires, 1);
  EXPECT_EQ(simulator.Now().nanos(), 3000u);
}

TEST(SimulatorTest, PeriodicFiresEveryPeriodWhileWorkRemains) {
  Simulator simulator;
  std::vector<uint64_t> fire_times;
  simulator.SchedulePeriodic(Duration::Micros(2),
                             [&] { fire_times.push_back(simulator.Now().nanos()); });
  simulator.RunUntil(SimTime::FromNanos(9000));
  EXPECT_EQ(fire_times, (std::vector<uint64_t>{2000, 4000, 6000, 8000}));
}

TEST(SimulatorTest, PeriodicIdStaysValidAcrossFirings) {
  Simulator simulator;
  int fires = 0;
  EventId id = simulator.SchedulePeriodic(Duration::Micros(1), [&] { ++fires; });
  simulator.RunUntil(SimTime::FromNanos(3500));
  EXPECT_EQ(fires, 3);
  // The original handle still refers to the (re-armed) event.
  EXPECT_TRUE(simulator.Cancel(id));
  simulator.RunUntil(SimTime::FromNanos(10000));
  EXPECT_EQ(fires, 3);
}

TEST(SimulatorTest, PeriodicCancellableFromInsideItsOwnCallback) {
  Simulator simulator;
  int fires = 0;
  EventId id;
  id = simulator.SchedulePeriodic(Duration::Micros(1), [&] {
    ++fires;
    if (fires == 3) {
      EXPECT_TRUE(simulator.Cancel(id));
    }
  });
  simulator.RunUntil(SimTime::FromNanos(20000));
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(simulator.Cancel(id));
}

// Golden event-order test: locks the global (timestamp, schedule-seq) FIFO
// semantics across engine rebuilds. Mixes relative/absolute scheduling,
// daemons, and cross-bucket delays; the expected order is the schedule order
// within each timestamp, regardless of which internal queue held the event.
TEST(SimulatorTest, EqualTimestampFifoOrderGolden) {
  Simulator simulator;
  std::vector<int> order;
  auto record = [&order](int tag) { return [&order, tag] { order.push_back(tag); }; };
  simulator.Schedule(Duration::Micros(5), record(0));
  simulator.ScheduleAt(SimTime::FromNanos(5000), record(1));
  simulator.ScheduleDaemon(Duration::Micros(5), record(2));
  simulator.Schedule(Duration::Micros(1), record(3));
  simulator.Schedule(Duration::Millis(50), record(4));  // far future: spill heap
  simulator.ScheduleAt(SimTime::FromNanos(5000), record(5));
  simulator.Schedule(Duration::Micros(1), [&] {
    // Scheduled mid-run for an already-open timestamp: runs after everything
    // scheduled for t=5us before it, by sequence order.
    simulator.ScheduleAt(SimTime::FromNanos(5000), record(6));
  });
  simulator.Schedule(Duration::Micros(1), record(7));
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{3, 7, 0, 1, 2, 5, 6, 4}));
}

// Seeded property test: 100k random schedule/cancel operations produce an
// identical execution order across two independent runs, and across two very
// different calendar geometries (the order contract is engine-internal-free:
// strictly (timestamp, schedule-seq)).
std::vector<uint64_t> RunRandomSchedule(uint64_t seed, CalendarConfig config) {
  Simulator simulator(config);
  Rng rng(seed);
  std::vector<uint64_t> executed;
  std::vector<EventId> cancellable;
  uint64_t next_tag = 0;
  constexpr int kEvents = 100000;
  for (int i = 0; i < kEvents; ++i) {
    uint64_t tag = next_tag++;
    // Delays spanning sub-bucket to far-beyond-window magnitudes.
    Duration delay = Duration::Nanos(rng.NextBelow(1u << (8 + rng.NextBelow(14))));
    EventId id = simulator.Schedule(delay, [&executed, tag] { executed.push_back(tag); });
    if (rng.NextBelow(4) == 0) {
      cancellable.push_back(id);
    }
    // Periodically cancel a random remembered event (some already ran).
    if (!cancellable.empty() && rng.NextBelow(3) == 0) {
      size_t pick = rng.NextBelow(cancellable.size());
      simulator.Cancel(cancellable[pick]);
      cancellable[pick] = cancellable.back();
      cancellable.pop_back();
    }
    // Occasionally advance time so cancellation interleaves with execution.
    if (rng.NextBelow(64) == 0) {
      simulator.RunFor(Duration::Nanos(rng.NextBelow(4096)));
    }
  }
  simulator.Run();
  return executed;
}

TEST(SimulatorTest, SeededRandomScheduleOrderIsReproducible) {
  CalendarConfig default_geometry;
  CalendarConfig tiny_geometry{Duration::Nanos(64), 16};  // forces window churn
  std::vector<uint64_t> first = RunRandomSchedule(0xC0FFEE, default_geometry);
  std::vector<uint64_t> second = RunRandomSchedule(0xC0FFEE, default_geometry);
  std::vector<uint64_t> tiny = RunRandomSchedule(0xC0FFEE, tiny_geometry);
  EXPECT_GT(first.size(), 50000u);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, tiny);
}

// Regression test for the schedule-then-cancel burst: cancelled refs must be
// compacted away instead of accumulating until their (far-future) timestamps
// are reached. Mirrors the per-attempt RPC deadline pattern.
TEST(SimulatorTest, CancelledBurstTriggersCompaction) {
  Simulator simulator;
  constexpr int kBurst = 20000;
  for (int i = 0; i < kBurst; ++i) {
    // A deadline far in the future, cancelled immediately — the old engine
    // kept every entry queued until its timestamp was popped.
    EventId deadline = simulator.Schedule(Duration::Seconds(10), [] {});
    simulator.Cancel(deadline);
  }
  EXPECT_GE(simulator.compactions(), 1u);
  // The queues hold (far) fewer dead refs than were cancelled; the dead
  // fraction is bounded by the compaction threshold, not by the burst size.
  EXPECT_LT(simulator.cancelled_refs(), 1000u);
  EXPECT_EQ(simulator.pending_events(), 0u);
  simulator.Run();
  EXPECT_EQ(simulator.events_executed(), 0u);
}

TEST(SimulatorTest, CancelReclaimsCapturedStateImmediately) {
  Simulator simulator;
  auto witness = std::make_shared<int>(7);
  std::weak_ptr<int> observer = witness;
  EventId id = simulator.Schedule(Duration::Seconds(1), [held = std::move(witness)] {
    (void)held;
  });
  EXPECT_FALSE(observer.expired());
  simulator.Cancel(id);
  // The capture died at Cancel() time, not when t=1s would have been popped.
  EXPECT_TRUE(observer.expired());
}

TEST(SimulatorTest, CustomGeometryValidatesAndRuns) {
  Simulator simulator(CalendarConfig{Duration::Nanos(128), 64});
  std::vector<int> order;
  simulator.Schedule(Duration::Nanos(10), [&] { order.push_back(1); });
  simulator.Schedule(Duration::Micros(100), [&] { order.push_back(2); });
  simulator.Schedule(Duration::Millis(10), [&] { order.push_back(3); });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInBounds) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(42);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(99);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    sum += rng.NextExponential(10.0);
  }
  double mean = sum / kSamples;
  EXPECT_NEAR(mean, 10.0, 0.3);
}

TEST(RngTest, FillProducesUnbiasedBytes) {
  Rng rng(5);
  std::vector<uint8_t> buf(100000);
  rng.Fill(buf);
  double sum = 0;
  for (uint8_t b : buf) {
    sum += b;
  }
  EXPECT_NEAR(sum / static_cast<double>(buf.size()), 127.5, 2.0);
}

TEST(ZipfTest, SkewsTowardLowRanks) {
  Rng rng(2024);
  ZipfGenerator zipf(1000, 0.99);
  std::vector<int> hits(1000, 0);
  for (int i = 0; i < 100000; ++i) {
    uint64_t v = zipf.Next(rng);
    ASSERT_LT(v, 1000u);
    ++hits[v];
  }
  // Rank 0 must dominate, and the head must hold most of the mass.
  EXPECT_GT(hits[0], hits[100]);
  int head = 0;
  for (int i = 0; i < 100; ++i) {
    head += hits[i];
  }
  EXPECT_GT(head, 50000);
}

TEST(HistogramTest, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(uint64_t{1000});
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  // Bucket representative is within ~3% of the true value.
  EXPECT_NEAR(static_cast<double>(h.p50()), 1000.0, 35.0);
}

TEST(HistogramTest, QuantilesOfUniformRamp) {
  Histogram h;
  for (uint64_t v = 1; v <= 10000; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_NEAR(static_cast<double>(h.p50()), 5000.0, 300.0);
  EXPECT_NEAR(static_cast<double>(h.p99()), 9900.0, 400.0);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 10000u);
  EXPECT_NEAR(h.mean(), 5000.5, 1.0);
}

TEST(HistogramTest, RecordsDurations) {
  Histogram h;
  h.Record(Duration::Micros(5));
  EXPECT_EQ(h.max(), 5000u);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  a.Record(uint64_t{10});
  b.Record(uint64_t{1000000});
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000000u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(uint64_t{5});
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, LargeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.Record(UINT64_MAX);
  h.Record(UINT64_MAX / 2);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), UINT64_MAX);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.ValueAtQuantile(0.0), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 0u);
}

TEST(HistogramTest, QuantileExtremesBracketRecordedRange) {
  Histogram h;
  for (uint64_t v = 100; v <= 1000; v += 100) {
    h.Record(v);
  }
  // Bucket-representative values: allow the ~3% sub-bucket error.
  uint64_t q0 = h.ValueAtQuantile(0.0);
  uint64_t q1 = h.ValueAtQuantile(1.0);
  EXPECT_GE(q0, 90u);
  EXPECT_LE(q0, 110u);
  EXPECT_GE(q1, 950u);
  EXPECT_LE(q1, 1050u);
  EXPECT_LE(q0, q1);
}

TEST(HistogramTest, MergeDisjointRangesPreservesMinMaxCount) {
  Histogram low;
  low.Record(uint64_t{10});
  low.Record(uint64_t{20});
  Histogram high;
  high.Record(uint64_t{1'000'000});
  high.Record(uint64_t{2'000'000});
  low.Merge(high);
  EXPECT_EQ(low.count(), 4u);
  EXPECT_EQ(low.min(), 10u);
  EXPECT_EQ(low.max(), 2'000'000u);
  EXPECT_DOUBLE_EQ(low.sum(), 10.0 + 20.0 + 1'000'000.0 + 2'000'000.0);
}

TEST(HistogramTest, DeltaSinceSubtractsEarlierRecordings) {
  Histogram h;
  h.Record(uint64_t{100});
  h.Record(uint64_t{200});
  Histogram checkpoint = h;
  h.Record(uint64_t{5000});
  h.Record(uint64_t{6000});
  Histogram delta = h.DeltaSince(checkpoint);
  EXPECT_EQ(delta.count(), 2u);
  // Min/max are bucket-representative after subtraction.
  EXPECT_GE(delta.min(), 4800u);
  EXPECT_LE(delta.max(), 6200u);

  Histogram nothing = h.DeltaSince(h);
  EXPECT_EQ(nothing.count(), 0u);
}

TEST(StatsRegistryTest, CountersAndHistogramsByName) {
  StatsRegistry stats;
  stats.GetCounter("ops").Increment();
  stats.GetCounter("ops").Increment(4);
  stats.GetHistogram("latency").Record(uint64_t{100});
  EXPECT_EQ(stats.GetCounter("ops").value(), 5u);
  EXPECT_EQ(stats.GetHistogram("latency").count(), 1u);
  std::string report = stats.Report("  ");
  EXPECT_NE(report.find("ops: 5"), std::string::npos);
  EXPECT_NE(report.find("latency"), std::string::npos);
  stats.Reset();
  EXPECT_EQ(stats.GetCounter("ops").value(), 0u);
}

TEST(TraceLogTest, DisabledByDefault) {
  Simulator simulator;
  TraceLog trace;
  Tracer tracer(&trace, &simulator, "nic");
  EXPECT_FALSE(tracer.enabled());
  tracer.Instant("open");
  SpanId span = tracer.BeginSpan("op");
  EXPECT_EQ(span, 0u);
  tracer.EndSpan(span);
  EXPECT_TRUE(trace.records().empty());
}

TEST(TraceLogTest, RecordsWhenEnabled) {
  Simulator simulator;
  TraceLog trace;
  trace.Enable();
  Tracer tracer(&trace, &simulator, "nic");
  simulator.Schedule(Duration::Nanos(10), [&] { tracer.Instant("open", "file=kv.log"); });
  simulator.Run();
  ASSERT_EQ(trace.records().size(), 1u);
  EXPECT_EQ(trace.records()[0].component, "nic");
  EXPECT_EQ(trace.records()[0].detail, "file=kv.log");
  EXPECT_EQ(trace.records()[0].when, SimTime::FromNanos(10));
}

TEST(TraceLogTest, FindByEventFilters) {
  Simulator simulator;
  TraceLog trace;
  trace.Enable();
  Tracer a(&trace, &simulator, "a");
  Tracer b(&trace, &simulator, "b");
  Tracer c(&trace, &simulator, "c");
  a.Instant("x");
  b.Instant("y");
  c.Instant("x");
  EXPECT_EQ(trace.FindByEvent("x").size(), 2u);
  EXPECT_EQ(trace.FindByEvent("z").size(), 0u);
}

TEST(TraceLogTest, FindByEventMatchesSpanNamesOnce) {
  Simulator simulator;
  TraceLog trace;
  trace.Enable();
  Tracer tracer(&trace, &simulator, "sys");
  SpanId span = tracer.BeginSpan("alloc");
  tracer.EndSpan(span);
  // A begin/end pair is one logical event: the end record must not double it.
  EXPECT_EQ(trace.FindByEvent("alloc").size(), 1u);
}

TEST(TraceLogTest, ContainsSequenceRespectsOrder) {
  Simulator simulator;
  TraceLog trace;
  trace.Enable();
  Tracer tracer(&trace, &simulator, "sys");
  for (const char* e : {"discover", "offer", "open", "alloc", "map", "grant"}) {
    tracer.Instant(e);
  }
  EXPECT_TRUE(trace.ContainsSequence({"discover", "open", "grant"}));
  EXPECT_FALSE(trace.ContainsSequence({"open", "discover"}));
  EXPECT_TRUE(trace.ContainsSequence({}));
}

TEST(TraceLogTest, ContainsSequenceSeesSpanNames) {
  Simulator simulator;
  TraceLog trace;
  trace.Enable();
  Tracer tracer(&trace, &simulator, "sys");
  SpanId outer = tracer.BeginSpan("Alloc");
  tracer.Instant("map", "", outer);
  tracer.EndSpan(outer);
  EXPECT_TRUE(trace.ContainsSequence({"Alloc", "map"}));
}

TEST(TraceLogTest, SpansCarryParentAndFlowLinks) {
  Simulator simulator;
  TraceLog trace;
  trace.Enable();
  Tracer tracer(&trace, &simulator, "nic");
  SpanId parent = tracer.BeginSpan("request");
  SpanId child = tracer.BeginSpan("handle", parent);
  FlowId flow = tracer.FlowSend("MemAllocRequest", child);
  EXPECT_NE(parent, 0u);
  EXPECT_NE(child, 0u);
  EXPECT_NE(flow, 0u);
  tracer.FlowReceive("MemAllocRequest", flow, child);
  tracer.EndSpan(child);
  tracer.EndSpan(parent);

  const auto& records = trace.records();
  ASSERT_EQ(records.size(), 6u);
  EXPECT_EQ(records[0].kind, TraceKind::kSpanBegin);
  EXPECT_EQ(records[1].parent, parent);
  EXPECT_EQ(records[2].kind, TraceKind::kFlowSend);
  EXPECT_EQ(records[2].flow, flow);
  EXPECT_EQ(records[3].kind, TraceKind::kFlowReceive);
  EXPECT_EQ(records[3].flow, flow);
}

TEST(TraceLogTest, DumpIsHumanReadable) {
  Simulator simulator;
  TraceLog trace;
  trace.Enable();
  Tracer tracer(&trace, &simulator, "nic");
  SpanId span = tracer.BeginSpan("open", 0, "f");
  tracer.EndSpan(span);
  std::ostringstream os;
  trace.Dump(os);
  EXPECT_NE(os.str().find("nic"), std::string::npos);
  EXPECT_NE(os.str().find("open"), std::string::npos);
}

TEST(JsonTest, ParsesScalarsAndContainers) {
  auto v = ParseJson(R"({"a": [1, 2.5, -3], "b": "hi\nthere", "c": true, "d": null})");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_object());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->array()[1].number(), 2.5);
  EXPECT_DOUBLE_EQ(a->array()[2].number(), -3.0);
  EXPECT_EQ(v->Find("b")->str(), "hi\nthere");
  EXPECT_TRUE(v->Find("c")->boolean());
  EXPECT_TRUE(v->Find("d")->is_null());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("").ok());
}

TEST(StatsSnapshotTest, DeltaSinceReportsPerPhaseValues) {
  StatsRegistry stats;
  stats.GetCounter("ops").Increment(10);
  stats.GetHistogram("latency").Record(uint64_t{100});
  StatsSnapshot before = stats.Snapshot();
  stats.GetCounter("ops").Increment(7);
  stats.GetCounter("new_counter").Increment(3);
  stats.GetHistogram("latency").Record(uint64_t{200});
  StatsSnapshot delta = stats.Snapshot().DeltaSince(before);
  EXPECT_EQ(delta.counters.at("ops"), 7u);
  EXPECT_EQ(delta.counters.at("new_counter"), 3u);
  EXPECT_EQ(delta.histograms.at("latency").count(), 1u);
}

TEST(StatsSnapshotTest, JsonRoundTrips) {
  StatsRegistry stats;
  stats.GetCounter("ops").Increment(42);
  stats.GetHistogram("latency").Record(uint64_t{1000});
  stats.GetHistogram("latency").Record(uint64_t{3000});
  auto parsed = ParseJson(stats.Snapshot().ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("ops")->number(), 42.0);
  const JsonValue* latency = parsed->Find("histograms")->Find("latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_DOUBLE_EQ(latency->Find("count")->number(), 2.0);
  EXPECT_GT(latency->Find("max")->number(), latency->Find("min")->number());
}

// Builds a small two-component trace: a request span on "nic" that sends a
// message to a handling span on "memctrl", linked by one flow.
TraceLog MakeLinkedTrace() {
  Simulator simulator;
  TraceLog trace;
  trace.Enable();
  Tracer nic(&trace, &simulator, "nic");
  Tracer memctrl(&trace, &simulator, "memctrl");
  SpanId request = nic.BeginSpan("Alloc");
  FlowId flow = nic.FlowSend("MemAllocRequest", request);
  simulator.Schedule(Duration::Nanos(500), [&] {
    SpanId handle = memctrl.BeginSpan("MemAllocRequest", request);
    memctrl.FlowReceive("MemAllocRequest", flow, handle);
    memctrl.EndSpan(handle);
  });
  simulator.Schedule(Duration::Nanos(900), [&] { nic.EndSpan(request); });
  simulator.Run();
  return trace;
}

TEST(ChromeTraceExportTest, EmitsValidJsonWithMonotoneTimestamps) {
  TraceLog trace = MakeLinkedTrace();
  std::ostringstream os;
  WriteChromeTrace(trace, os);
  auto parsed = ParseJson(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_GE(events->array().size(), 4u);  // 2 process names, 2 spans, 2 flows
  double last_ts = -1.0;
  for (const JsonValue& event : events->array()) {
    ASSERT_TRUE(event.is_object());
    ASSERT_NE(event.Find("ph"), nullptr);
    if (event.Find("ph")->str() == "M") {
      continue;  // metadata has no timestamp ordering obligation
    }
    ASSERT_NE(event.Find("ts"), nullptr);
    double ts = event.Find("ts")->number();
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
  }
}

TEST(ChromeTraceExportTest, FlowSendAndFinishShareIds) {
  TraceLog trace = MakeLinkedTrace();
  std::ostringstream os;
  WriteChromeTrace(trace, os);
  auto parsed = ParseJson(os.str());
  ASSERT_TRUE(parsed.ok());
  std::map<double, int> sends;
  std::map<double, int> finishes;
  for (const JsonValue& event : parsed->Find("traceEvents")->array()) {
    const std::string& ph = event.Find("ph")->str();
    if (ph == "s") {
      ++sends[event.Find("id")->number()];
    } else if (ph == "f") {
      ++finishes[event.Find("id")->number()];
      EXPECT_EQ(event.Find("bp")->str(), "e");
    }
  }
  EXPECT_FALSE(sends.empty());
  EXPECT_EQ(sends, finishes);
}

TEST(ChromeTraceExportTest, SpansRecordParentIds) {
  TraceLog trace = MakeLinkedTrace();
  std::ostringstream os;
  WriteChromeTrace(trace, os);
  auto parsed = ParseJson(os.str());
  ASSERT_TRUE(parsed.ok());
  std::map<double, double> parent_of;  // span id -> parent id
  for (const JsonValue& event : parsed->Find("traceEvents")->array()) {
    if (event.Find("ph")->str() != "X") {
      continue;
    }
    const JsonValue* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    parent_of[args->Find("span")->number()] = args->Find("parent")->number();
  }
  ASSERT_EQ(parent_of.size(), 2u);
  // Exactly one root; the other span's parent is the root.
  int roots = 0;
  for (const auto& [span, parent] : parent_of) {
    if (parent == 0.0) {
      ++roots;
    } else {
      EXPECT_TRUE(parent_of.contains(parent));
    }
  }
  EXPECT_EQ(roots, 1);
}

}  // namespace
}  // namespace lastcpu::sim
