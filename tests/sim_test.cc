// Unit tests for the discrete-event simulation substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace lastcpu::sim {
namespace {

TEST(SimTimeTest, ArithmeticAndComparison) {
  SimTime t0 = SimTime::Zero();
  SimTime t1 = t0 + Duration::Micros(5);
  EXPECT_EQ(t1.nanos(), 5000u);
  EXPECT_LT(t0, t1);
  EXPECT_EQ((t1 - t0).nanos(), 5000u);
  EXPECT_EQ(Duration::Millis(1).nanos(), 1'000'000u);
  EXPECT_EQ(Duration::Seconds(2).nanos(), 2'000'000'000u);
  EXPECT_EQ((Duration::Micros(3) * 4).nanos(), 12'000u);
  EXPECT_EQ((Duration::Micros(8) / 2).nanos(), 4'000u);
}

TEST(SimTimeTest, ToStringPicksUnits) {
  EXPECT_EQ(Duration::Nanos(42).ToString(), "42ns");
  EXPECT_EQ(Duration::Micros(150).ToString(), "150.00us");
  EXPECT_EQ(Duration::Millis(25).ToString(), "25.00ms");
  EXPECT_EQ(Duration::Seconds(12).ToString(), "12.000s");
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.Schedule(Duration::Micros(3), [&] { order.push_back(3); });
  simulator.Schedule(Duration::Micros(1), [&] { order.push_back(1); });
  simulator.Schedule(Duration::Micros(2), [&] { order.push_back(2); });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.Now().nanos(), 3000u);
  EXPECT_EQ(simulator.events_executed(), 3u);
}

TEST(SimulatorTest, SimultaneousEventsRunFifo) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulator.Schedule(Duration::Micros(1), [&order, i] { order.push_back(i); });
  }
  simulator.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator simulator;
  int fired = 0;
  simulator.Schedule(Duration::Micros(1), [&] {
    ++fired;
    simulator.Schedule(Duration::Micros(1), [&] { ++fired; });
  });
  simulator.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(simulator.Now().nanos(), 2000u);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator simulator;
  bool ran = false;
  EventId id = simulator.Schedule(Duration::Micros(1), [&] { ran = true; });
  EXPECT_TRUE(simulator.Cancel(id));
  EXPECT_FALSE(simulator.Cancel(id));  // double-cancel reports failure
  simulator.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(simulator.events_executed(), 0u);
}

TEST(SimulatorTest, CancelAfterRunReturnsFalse) {
  Simulator simulator;
  EventId id = simulator.Schedule(Duration::Micros(1), [] {});
  simulator.Run();
  EXPECT_FALSE(simulator.Cancel(id));
}

TEST(SimulatorTest, RunUntilAdvancesClockToDeadline) {
  Simulator simulator;
  int fired = 0;
  simulator.Schedule(Duration::Micros(1), [&] { ++fired; });
  simulator.Schedule(Duration::Micros(10), [&] { ++fired; });
  simulator.RunUntil(SimTime::FromNanos(5000));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.Now().nanos(), 5000u);
  EXPECT_EQ(simulator.pending_events(), 1u);
  simulator.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator simulator;
  simulator.RunFor(Duration::Micros(7));
  EXPECT_EQ(simulator.Now().nanos(), 7000u);
  simulator.RunFor(Duration::Micros(3));
  EXPECT_EQ(simulator.Now().nanos(), 10000u);
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator simulator;
  int fired = 0;
  simulator.Schedule(Duration::Micros(1), [&] { ++fired; });
  simulator.Schedule(Duration::Micros(2), [&] { ++fired; });
  EXPECT_TRUE(simulator.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(simulator.Step());
  EXPECT_FALSE(simulator.Step());
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, PendingEventsExcludesCancelled) {
  Simulator simulator;
  simulator.Schedule(Duration::Micros(1), [] {});
  EventId id = simulator.Schedule(Duration::Micros(2), [] {});
  EXPECT_EQ(simulator.pending_events(), 2u);
  simulator.Cancel(id);
  EXPECT_EQ(simulator.pending_events(), 1u);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInBounds) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(42);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(99);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    sum += rng.NextExponential(10.0);
  }
  double mean = sum / kSamples;
  EXPECT_NEAR(mean, 10.0, 0.3);
}

TEST(RngTest, FillProducesUnbiasedBytes) {
  Rng rng(5);
  std::vector<uint8_t> buf(100000);
  rng.Fill(buf);
  double sum = 0;
  for (uint8_t b : buf) {
    sum += b;
  }
  EXPECT_NEAR(sum / static_cast<double>(buf.size()), 127.5, 2.0);
}

TEST(ZipfTest, SkewsTowardLowRanks) {
  Rng rng(2024);
  ZipfGenerator zipf(1000, 0.99);
  std::vector<int> hits(1000, 0);
  for (int i = 0; i < 100000; ++i) {
    uint64_t v = zipf.Next(rng);
    ASSERT_LT(v, 1000u);
    ++hits[v];
  }
  // Rank 0 must dominate, and the head must hold most of the mass.
  EXPECT_GT(hits[0], hits[100]);
  int head = 0;
  for (int i = 0; i < 100; ++i) {
    head += hits[i];
  }
  EXPECT_GT(head, 50000);
}

TEST(HistogramTest, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(uint64_t{1000});
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  // Bucket representative is within ~3% of the true value.
  EXPECT_NEAR(static_cast<double>(h.p50()), 1000.0, 35.0);
}

TEST(HistogramTest, QuantilesOfUniformRamp) {
  Histogram h;
  for (uint64_t v = 1; v <= 10000; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_NEAR(static_cast<double>(h.p50()), 5000.0, 300.0);
  EXPECT_NEAR(static_cast<double>(h.p99()), 9900.0, 400.0);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 10000u);
  EXPECT_NEAR(h.mean(), 5000.5, 1.0);
}

TEST(HistogramTest, RecordsDurations) {
  Histogram h;
  h.Record(Duration::Micros(5));
  EXPECT_EQ(h.max(), 5000u);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  a.Record(uint64_t{10});
  b.Record(uint64_t{1000000});
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000000u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(uint64_t{5});
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, LargeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.Record(UINT64_MAX);
  h.Record(UINT64_MAX / 2);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), UINT64_MAX);
}

TEST(StatsRegistryTest, CountersAndHistogramsByName) {
  StatsRegistry stats;
  stats.GetCounter("ops").Increment();
  stats.GetCounter("ops").Increment(4);
  stats.GetHistogram("latency").Record(uint64_t{100});
  EXPECT_EQ(stats.GetCounter("ops").value(), 5u);
  EXPECT_EQ(stats.GetHistogram("latency").count(), 1u);
  std::string report = stats.Report("  ");
  EXPECT_NE(report.find("ops: 5"), std::string::npos);
  EXPECT_NE(report.find("latency"), std::string::npos);
  stats.Reset();
  EXPECT_EQ(stats.GetCounter("ops").value(), 0u);
}

TEST(TraceLogTest, DisabledByDefault) {
  TraceLog trace;
  trace.Emit(SimTime::Zero(), "nic", "open", "");
  EXPECT_TRUE(trace.records().empty());
}

TEST(TraceLogTest, RecordsWhenEnabled) {
  TraceLog trace;
  trace.Enable();
  trace.Emit(SimTime::FromNanos(10), "nic", "open", "file=kv.log");
  ASSERT_EQ(trace.records().size(), 1u);
  EXPECT_EQ(trace.records()[0].component, "nic");
  EXPECT_EQ(trace.records()[0].detail, "file=kv.log");
}

TEST(TraceLogTest, FindByEventFilters) {
  TraceLog trace;
  trace.Enable();
  trace.Emit(SimTime::Zero(), "a", "x", "");
  trace.Emit(SimTime::Zero(), "b", "y", "");
  trace.Emit(SimTime::Zero(), "c", "x", "");
  EXPECT_EQ(trace.FindByEvent("x").size(), 2u);
  EXPECT_EQ(trace.FindByEvent("z").size(), 0u);
}

TEST(TraceLogTest, ContainsSequenceRespectsOrder) {
  TraceLog trace;
  trace.Enable();
  for (const char* e : {"discover", "offer", "open", "alloc", "map", "grant"}) {
    trace.Emit(SimTime::Zero(), "sys", e, "");
  }
  EXPECT_TRUE(trace.ContainsSequence({"discover", "open", "grant"}));
  EXPECT_FALSE(trace.ContainsSequence({"open", "discover"}));
  EXPECT_TRUE(trace.ContainsSequence({}));
}

TEST(TraceLogTest, DumpIsHumanReadable) {
  TraceLog trace;
  trace.Enable();
  trace.Emit(SimTime::FromNanos(1500), "nic", "open", "f");
  std::ostringstream os;
  trace.Dump(os);
  EXPECT_NE(os.str().find("nic"), std::string::npos);
  EXPECT_NE(os.str().find("open"), std::string::npos);
}

}  // namespace
}  // namespace lastcpu::sim
