// Virtqueue tests: layout math, submit/pop/complete round trips through two
// IOMMU-translated views of the same physical pages, exhaustion, recycling,
// and a parameterized sweep over queue depths.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "src/fabric/fabric.h"
#include "src/iommu/iommu.h"
#include "src/mem/physical_memory.h"
#include "src/sim/simulator.h"
#include "src/virtio/virtqueue.h"

namespace lastcpu::virtio {
namespace {

constexpr DeviceId kClient{1};
constexpr DeviceId kServer{2};
constexpr Pasid kApp{3};

class VirtqueueTest : public ::testing::TestWithParam<uint16_t> {
 protected:
  VirtqueueTest()
      : memory_(16 << 20),
        fabric_(&simulator_, &memory_),
        client_iommu_(kClient),
        server_iommu_(kServer),
        key_(iommu::ProgrammingKey::CreateForTesting()) {
    fabric_.AttachDevice(kClient, &client_iommu_);
    fabric_.AttachDevice(kServer, &server_iommu_);
  }

  // Maps `pages` pages at the same vaddr into both devices' IOMMUs (the
  // shared application address space), backed by frames starting at 16.
  void MapShared(uint64_t vpage_base, uint64_t pages) {
    for (uint64_t i = 0; i < pages; ++i) {
      ASSERT_TRUE(
          client_iommu_.Map(key_, kApp, vpage_base + i, 16 + i, Access::kReadWrite).ok());
      ASSERT_TRUE(
          server_iommu_.Map(key_, kApp, vpage_base + i, 16 + i, Access::kReadWrite).ok());
    }
  }

  sim::Simulator simulator_;
  mem::PhysicalMemory memory_;
  fabric::Fabric fabric_;
  iommu::Iommu client_iommu_;
  iommu::Iommu server_iommu_;
  iommu::ProgrammingKey key_;
};

TEST(VirtqueueLayoutTest, BytesRequiredGrowsWithDepth) {
  EXPECT_GT(VirtqueueLayout::BytesRequired(256), VirtqueueLayout::BytesRequired(8));
  // depth 8: desc 128 + avail 20 -> align8(148) = 152, + used 68 = 220.
  EXPECT_EQ(VirtqueueLayout::BytesRequired(8), 220u);
}

TEST(VirtqueueLayoutTest, RegionsDoNotOverlap) {
  VirtqueueLayout layout(VirtAddr(0x1000), 16);
  EXPECT_GE(layout.AvailFlags().raw, layout.DescAddr(15).raw + 16);
  EXPECT_GE(layout.UsedFlags().raw, layout.AvailRing(15).raw + 2);
}

TEST_P(VirtqueueTest, SubmitPopCompleteRoundTrip) {
  const uint16_t depth = GetParam();
  const uint64_t ring_pages = PagesForBytes(VirtqueueLayout::BytesRequired(depth)) + 2;
  MapShared(0x100, ring_pages);
  VirtAddr base(0x100 << kPageShift);
  VirtAddr data_va((0x100 + ring_pages - 2) << kPageShift);

  VirtqueueDriver driver(&fabric_, kClient, kApp, base, depth);
  VirtqueueDevice device(&fabric_, kServer, kApp, base, depth);
  ASSERT_TRUE(driver.Initialize().ok());

  // Client submits a two-buffer chain: request (read-only) + response slot.
  auto head = driver.Submit({BufferDesc{data_va, 64, false},
                             BufferDesc{data_va + 64, 128, true}});
  ASSERT_TRUE(head.ok());

  // Server pops it and sees both buffers with the right roles.
  auto chain = device.PopAvail();
  ASSERT_TRUE(chain.ok());
  ASSERT_TRUE(chain->has_value());
  EXPECT_EQ((*chain)->head, *head);
  ASSERT_EQ((*chain)->buffers.size(), 2u);
  EXPECT_FALSE((*chain)->buffers[0].device_writes);
  EXPECT_TRUE((*chain)->buffers[1].device_writes);
  EXPECT_EQ((*chain)->buffers[0].addr, data_va);
  EXPECT_EQ((*chain)->buffers[1].len, 128u);

  // Nothing else pending.
  auto empty = device.PopAvail();
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->has_value());

  // Server completes; client sees the completion exactly once.
  ASSERT_TRUE(device.PushUsed(*head, 99).ok());
  auto used = driver.PollUsed();
  ASSERT_TRUE(used.ok());
  ASSERT_TRUE(used->has_value());
  EXPECT_EQ((*used)->head, *head);
  EXPECT_EQ((*used)->written, 99u);
  auto used2 = driver.PollUsed();
  ASSERT_TRUE(used2.ok());
  EXPECT_FALSE(used2->has_value());
}

TEST_P(VirtqueueTest, DescriptorsRecycleAfterCompletion) {
  const uint16_t depth = GetParam();
  const uint64_t ring_pages = PagesForBytes(VirtqueueLayout::BytesRequired(depth)) + 2;
  MapShared(0x100, ring_pages);
  VirtAddr base(0x100 << kPageShift);
  VirtAddr data_va((0x100 + ring_pages - 1) << kPageShift);

  VirtqueueDriver driver(&fabric_, kClient, kApp, base, depth);
  VirtqueueDevice device(&fabric_, kServer, kApp, base, depth);
  ASSERT_TRUE(driver.Initialize().ok());

  // Run 4x depth single-buffer requests through the queue.
  for (int round = 0; round < 4 * depth; ++round) {
    auto head = driver.Submit({BufferDesc{data_va, 32, true}});
    ASSERT_TRUE(head.ok()) << "round " << round;
    auto chain = device.PopAvail();
    ASSERT_TRUE(chain.ok() && chain->has_value());
    ASSERT_TRUE(device.PushUsed((*chain)->head, 32).ok());
    auto used = driver.PollUsed();
    ASSERT_TRUE(used.ok() && used->has_value());
  }
  EXPECT_EQ(driver.FreeDescriptors(), depth);
}

TEST_P(VirtqueueTest, QueueFullWhenDescriptorsExhausted) {
  const uint16_t depth = GetParam();
  const uint64_t ring_pages = PagesForBytes(VirtqueueLayout::BytesRequired(depth)) + 2;
  MapShared(0x100, ring_pages);
  VirtAddr base(0x100 << kPageShift);
  VirtAddr data_va((0x100 + ring_pages - 1) << kPageShift);

  VirtqueueDriver driver(&fabric_, kClient, kApp, base, depth);
  ASSERT_TRUE(driver.Initialize().ok());
  for (uint16_t i = 0; i < depth; ++i) {
    ASSERT_TRUE(driver.Submit({BufferDesc{data_va, 16, false}}).ok());
  }
  auto overflow = driver.Submit({BufferDesc{data_va, 16, false}});
  EXPECT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
}

INSTANTIATE_TEST_SUITE_P(Depths, VirtqueueTest, ::testing::Values(2, 8, 64, 256));

TEST(VirtqueueEdgeTest, EmptyChainRejected) {
  sim::Simulator simulator;
  mem::PhysicalMemory memory(1 << 20);
  fabric::Fabric fabric(&simulator, &memory);
  iommu::Iommu iommu(kClient);
  fabric.AttachDevice(kClient, &iommu);
  VirtqueueDriver driver(&fabric, kClient, kApp, VirtAddr(0), 8);
  EXPECT_FALSE(driver.Submit({}).ok());
}

TEST(VirtqueueEdgeTest, UnmappedRingSurfacesFault) {
  sim::Simulator simulator;
  mem::PhysicalMemory memory(1 << 20);
  fabric::Fabric fabric(&simulator, &memory);
  iommu::Iommu iommu(kClient);
  fabric.AttachDevice(kClient, &iommu);
  // No mapping installed: initialization must fail, not crash.
  VirtqueueDriver driver(&fabric, kClient, kApp, VirtAddr(0x5000), 8);
  EXPECT_FALSE(driver.Initialize().ok());
}

TEST(VirtqueueEdgeTest, AccruedCostIsNonZeroAndResets) {
  sim::Simulator simulator;
  mem::PhysicalMemory memory(1 << 20);
  fabric::Fabric fabric(&simulator, &memory);
  iommu::Iommu client(kClient);
  fabric.AttachDevice(kClient, &client);
  auto key = iommu::ProgrammingKey::CreateForTesting();
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.Map(key, kApp, i, i, Access::kReadWrite).ok());
  }
  VirtqueueDriver driver(&fabric, kClient, kApp, VirtAddr(0), 8);
  ASSERT_TRUE(driver.Initialize().ok());
  EXPECT_GT(driver.TakeAccruedCost().nanos(), 0u);
  EXPECT_EQ(driver.TakeAccruedCost().nanos(), 0u);
}

}  // namespace
}  // namespace lastcpu::virtio
