// Central-kernel baseline tests: policy parity with the memory controller,
// CPU cost model (interrupts, run-queue serialization, core scaling), and the
// ControlClient abstraction over both designs.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "src/baseline/central_kernel.h"
#include "src/core/control_plane.h"
#include "src/core/machine.h"
#include "tests/test_util.h"

namespace lastcpu::baseline {
namespace {

class KernelTest : public ::testing::Test {
 protected:
  KernelTest()
      : memory_(64 << 20),
        kernel_(&simulator_, &memory_),
        nic_iommu_(DeviceId(1)),
        ssd_iommu_(DeviceId(2)) {
    kernel_.RegisterDevice(DeviceId(1), &nic_iommu_);
    kernel_.RegisterDevice(DeviceId(2), &ssd_iommu_);
  }

  // The ControlClient sync wrappers drive the simulator for us; ops issue on
  // behalf of the NIC (DeviceId 1).
  Result<VirtAddr> AllocSync(Pasid pasid, uint64_t bytes) {
    return client_.AllocSync(pasid, bytes);
  }

  sim::Simulator simulator_;
  mem::PhysicalMemory memory_;
  CentralKernel kernel_;
  iommu::Iommu nic_iommu_;
  iommu::Iommu ssd_iommu_;
  core::KernelControlClient client_{&kernel_, DeviceId(1)};
};

TEST_F(KernelTest, AllocMapsRequester) {
  auto vaddr = AllocSync(Pasid(7), 3 * kPageSize);
  ASSERT_TRUE(vaddr.ok());
  EXPECT_EQ(nic_iommu_.mapped_pages(Pasid(7)), 3u);
  EXPECT_EQ(ssd_iommu_.mapped_pages(Pasid(7)), 0u);
  EXPECT_EQ(kernel_.AllocatedBytes(Pasid(7)), 3 * kPageSize);
}

TEST_F(KernelTest, OperationsTakeCpuTime) {
  sim::SimTime before = simulator_.Now();
  ASSERT_TRUE(AllocSync(Pasid(7), kPageSize).ok());
  // At least interrupt + entry + service.
  EXPECT_GE((simulator_.Now() - before).nanos(), 2000u + 300u + 1000u);
  EXPECT_EQ(kernel_.ops_completed(), 1u);
  EXPECT_GT(kernel_.op_latency().count(), 0u);
}

TEST_F(KernelTest, SingleCoreSerializesOperations) {
  // Two allocs issued together on one core: total completion ~2x service.
  int completed = 0;
  sim::SimTime last;
  for (int i = 0; i < 2; ++i) {
    kernel_.AllocMemory(DeviceId(1), Pasid(7), kPageSize, [&](Result<VirtAddr> r) {
      ASSERT_TRUE(r.ok());
      ++completed;
      last = simulator_.Now();
    });
  }
  simulator_.Run();
  EXPECT_EQ(completed, 2);
  // Second op waited for the first: > interrupt + 2 * (entry + service).
  EXPECT_GE(last.nanos(), 2000u + 2 * (300u + 1000u));
  EXPECT_GT(kernel_.stats().GetHistogram("queue_wait").max(), 0u);
}

TEST_F(KernelTest, MoreCoresReduceQueueing) {
  auto run_with_cores = [](uint32_t cores) {
    sim::Simulator simulator;
    mem::PhysicalMemory memory(64 << 20);
    CentralKernelConfig config;
    config.cores = cores;
    CentralKernel kernel(&simulator, &memory, config);
    iommu::Iommu iommu(DeviceId(1));
    kernel.RegisterDevice(DeviceId(1), &iommu);
    sim::SimTime last;
    for (int i = 0; i < 16; ++i) {
      kernel.AllocMemory(DeviceId(1), Pasid(7), kPageSize,
                         [&, i](Result<VirtAddr>) { last = simulator.Now(); });
    }
    simulator.Run();
    return last.nanos();
  };
  EXPECT_LT(run_with_cores(8), run_with_cores(1) / 3);
}

TEST_F(KernelTest, GrantRequiresOwnership) {
  auto vaddr = AllocSync(Pasid(7), kPageSize);
  ASSERT_TRUE(vaddr.ok());
  std::optional<Status> denied;
  kernel_.Grant(DeviceId(2), Pasid(7), *vaddr, kPageSize, DeviceId(2), Access::kRead,
                [&](Status s) { denied = s; });
  simulator_.Run();
  EXPECT_EQ(denied->code(), StatusCode::kPermissionDenied);

  std::optional<Status> granted;
  kernel_.Grant(DeviceId(1), Pasid(7), *vaddr, kPageSize, DeviceId(2), Access::kRead,
                [&](Status s) { granted = s; });
  simulator_.Run();
  ASSERT_TRUE(granted->ok());
  EXPECT_EQ(ssd_iommu_.mapped_pages(Pasid(7)), 1u);
}

TEST_F(KernelTest, RevokeUnmapsGrantee) {
  auto vaddr = AllocSync(Pasid(7), kPageSize);
  std::optional<Status> status;
  kernel_.Grant(DeviceId(1), Pasid(7), *vaddr, kPageSize, DeviceId(2), Access::kRead,
                [&](Status s) { status = s; });
  simulator_.Run();
  ASSERT_TRUE(status->ok());
  kernel_.Revoke(DeviceId(1), Pasid(7), *vaddr, kPageSize, DeviceId(2),
                 [&](Status s) { status = s; });
  simulator_.Run();
  ASSERT_TRUE(status->ok());
  EXPECT_EQ(ssd_iommu_.mapped_pages(Pasid(7)), 0u);
}

TEST_F(KernelTest, FreeChecksOwnerAndReclaims) {
  auto vaddr = AllocSync(Pasid(7), 2 * kPageSize);
  std::optional<Status> status;
  kernel_.FreeMemory(DeviceId(2), Pasid(7), *vaddr, 2 * kPageSize,
                     [&](Status s) { status = s; });
  simulator_.Run();
  EXPECT_EQ(status->code(), StatusCode::kPermissionDenied);
  kernel_.FreeMemory(DeviceId(1), Pasid(7), *vaddr, 2 * kPageSize,
                     [&](Status s) { status = s; });
  simulator_.Run();
  ASSERT_TRUE(status->ok());
  EXPECT_EQ(kernel_.AllocatedBytes(Pasid(7)), 0u);
  EXPECT_EQ(nic_iommu_.mapped_pages(Pasid(7)), 0u);
}

TEST_F(KernelTest, TeardownDropsEverything) {
  auto a = AllocSync(Pasid(7), kPageSize);
  ASSERT_TRUE(a.ok());
  std::optional<Status> status;
  kernel_.Grant(DeviceId(1), Pasid(7), *a, kPageSize, DeviceId(2), Access::kRead,
                [&](Status s) { status = s; });
  simulator_.Run();
  kernel_.Teardown(Pasid(7), [&](Status s) { status = s; });
  simulator_.Run();
  ASSERT_TRUE(status->ok());
  EXPECT_EQ(kernel_.AllocatedBytes(Pasid(7)), 0u);
  EXPECT_EQ(nic_iommu_.mapped_pages(Pasid(7)), 0u);
  EXPECT_EQ(ssd_iommu_.mapped_pages(Pasid(7)), 0u);
}

TEST_F(KernelTest, MediateIoCostsCpuTime) {
  sim::SimTime before = simulator_.Now();
  bool done = false;
  kernel_.MediateIo(sim::Duration::Micros(1), [&] { done = true; });
  simulator_.Run();
  EXPECT_TRUE(done);
  EXPECT_GE((simulator_.Now() - before).nanos(), 2000u + 300u + 800u + 1000u);
}

// --- ControlClient parity over both designs -----------------------------------

TEST(ControlClientTest, BothDesignsImplementTheSamePolicy) {
  // Decentralized machine.
  core::Machine machine;
  auto& memctrl = machine.AddMemoryController();
  testutil::TestDevice nic(machine.NextDeviceId(), "nic", machine.Context());
  testutil::TestDevice ssd(machine.NextDeviceId(), "ssd", machine.Context());
  nic.PowerOn();
  ssd.PowerOn();
  machine.Boot();
  core::BusControlClient bus_client(&nic, memctrl.id());

  // Centralized baseline with the same devices.
  sim::Simulator kernel_simulator;
  mem::PhysicalMemory kernel_memory(256 << 20);
  baseline::CentralKernel kernel(&kernel_simulator, &kernel_memory);
  iommu::Iommu knic(DeviceId(1));
  iommu::Iommu kssd(DeviceId(2));
  kernel.RegisterDevice(DeviceId(1), &knic);
  kernel.RegisterDevice(DeviceId(2), &kssd);
  core::KernelControlClient kernel_client(&kernel, DeviceId(1));

  // The identical sequence must succeed identically in both designs. The
  // sync wrappers drive each client's own simulator until completion.
  auto run_sequence = [](core::ControlClient& client, DeviceId grantee) {
    Result<VirtAddr> vaddr = client.AllocSync(Pasid(7), 2 * kPageSize);
    ASSERT_TRUE(vaddr.ok()) << vaddr.status().ToString();
    Result<void> granted = client.GrantSync(Pasid(7), *vaddr, 2 * kPageSize, grantee,
                                            Access::kRead);
    EXPECT_TRUE(granted.ok()) << granted.status().ToString();
    Result<void> freed = client.FreeSync(Pasid(7), *vaddr, 2 * kPageSize);
    EXPECT_TRUE(freed.ok()) << freed.status().ToString();
  };

  run_sequence(bus_client, ssd.id());
  run_sequence(kernel_client, DeviceId(2));

  EXPECT_EQ(nic.iommu().mapped_pages(Pasid(7)), 0u);
  EXPECT_EQ(knic.mapped_pages(Pasid(7)), 0u);
}

TEST_F(KernelTest, BatchedSyscallsLeaseAndSettle) {
  auto leased = client_.AllocBatchSync(Pasid(7), 2 * kPageSize, 8);
  ASSERT_TRUE(leased.ok()) << leased.status().ToString();
  ASSERT_EQ(leased->size(), 8u);
  EXPECT_EQ(nic_iommu_.mapped_pages(Pasid(7)), 16u);
  EXPECT_EQ(kernel_.AllocatedBytes(Pasid(7)), 16 * kPageSize);

  ASSERT_TRUE(client_.FreeBatchSync(Pasid(7), *leased, 2 * kPageSize).ok());
  EXPECT_EQ(nic_iommu_.mapped_pages(Pasid(7)), 0u);
  EXPECT_EQ(kernel_.AllocatedBytes(Pasid(7)), 0u);
  EXPECT_EQ(kernel_.stats().GetCounter("batch_allocs").value(), 1u);
  EXPECT_EQ(kernel_.stats().GetCounter("batch_frees").value(), 1u);
}

TEST_F(KernelTest, BatchPaysOneInterruptNotN) {
  // N singles: N interrupts + N syscall entries. One batch of N: one of each,
  // with the same per-allocation service work. The batch must be cheaper.
  sim::SimTime start = simulator_.Now();
  std::vector<VirtAddr> singles;
  for (int i = 0; i < 8; ++i) {
    auto vaddr = AllocSync(Pasid(7), kPageSize);
    ASSERT_TRUE(vaddr.ok());
    singles.push_back(*vaddr);
  }
  sim::Duration singles_cost = simulator_.Now() - start;

  start = simulator_.Now();
  auto leased = client_.AllocBatchSync(Pasid(8), kPageSize, 8);
  ASSERT_TRUE(leased.ok());
  sim::Duration batch_cost = simulator_.Now() - start;
  EXPECT_LT(batch_cost.nanos(), singles_cost.nanos());
}

TEST_F(KernelTest, BatchFreeValidatesAsOneUnit) {
  auto leased = client_.AllocBatchSync(Pasid(7), kPageSize, 2);
  ASSERT_TRUE(leased.ok());
  // One bad vaddr poisons the whole batch: nothing is freed.
  std::vector<VirtAddr> mixed = *leased;
  mixed.push_back(VirtAddr(0xdead << kPageShift));
  auto freed = client_.FreeBatchSync(Pasid(7), mixed, kPageSize);
  EXPECT_FALSE(freed.ok());
  EXPECT_EQ(kernel_.AllocatedBytes(Pasid(7)), 2 * kPageSize);
}

}  // namespace
}  // namespace lastcpu::baseline
