// Physical memory and buddy allocator tests, including property-style sweeps.
#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <vector>

#include "src/mem/buddy_allocator.h"
#include "src/mem/physical_memory.h"
#include "src/sim/rng.h"

namespace lastcpu::mem {
namespace {

TEST(PhysicalMemoryTest, RoundsUpToPages) {
  PhysicalMemory memory(kPageSize + 1);
  EXPECT_EQ(memory.size_bytes(), 2 * kPageSize);
  EXPECT_EQ(memory.num_frames(), 2u);
}

TEST(PhysicalMemoryTest, ReadBackWrites) {
  PhysicalMemory memory(1 << 20);
  std::vector<uint8_t> data{1, 2, 3, 4, 5};
  memory.Write(PhysAddr(100), data);
  std::vector<uint8_t> out(5);
  memory.Read(PhysAddr(100), out);
  EXPECT_EQ(out, data);
}

TEST(PhysicalMemoryTest, U64RoundTrip) {
  PhysicalMemory memory(1 << 16);
  memory.WriteU64(PhysAddr(8), 0x1122334455667788ULL);
  EXPECT_EQ(memory.ReadU64(PhysAddr(8)), 0x1122334455667788ULL);
}

TEST(PhysicalMemoryTest, ZeroFrameClears) {
  PhysicalMemory memory(1 << 16);
  memory.WriteByte(PhysAddr(kPageSize + 5), 0xAB);
  memory.ZeroFrame(1);
  EXPECT_EQ(memory.ReadByte(PhysAddr(kPageSize + 5)), 0);
}

TEST(PhysicalMemoryTest, OutOfRangeAborts) {
  PhysicalMemory memory(kPageSize);
  std::vector<uint8_t> data(16);
  EXPECT_DEATH(memory.Write(PhysAddr(kPageSize - 8), data), "out of range");
}

TEST(BuddyTest, AllocatesDistinctBlocks) {
  BuddyAllocator buddy(64);
  auto a = buddy.Allocate(1);
  auto b = buddy.Allocate(1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(buddy.allocated_frames(), 2u);
}

TEST(BuddyTest, RoundsToPowerOfTwo) {
  BuddyAllocator buddy(64);
  ASSERT_TRUE(buddy.Allocate(3).ok());
  EXPECT_EQ(buddy.allocated_frames(), 4u);  // 3 -> 4
  ASSERT_TRUE(buddy.Allocate(5).ok());
  EXPECT_EQ(buddy.allocated_frames(), 12u);  // +8
}

TEST(BuddyTest, ExhaustionReturnsError) {
  BuddyAllocator buddy(8);
  ASSERT_TRUE(buddy.Allocate(8).ok());
  auto more = buddy.Allocate(1);
  EXPECT_FALSE(more.ok());
  EXPECT_EQ(more.status().code(), StatusCode::kResourceExhausted);
}

TEST(BuddyTest, OversizeRequestRejected) {
  BuddyAllocator buddy(8);
  EXPECT_FALSE(buddy.Allocate(16).ok());
}

TEST(BuddyTest, FreeEnablesReuse) {
  BuddyAllocator buddy(8);
  auto a = buddy.Allocate(8);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(buddy.Free(*a, 8).ok());
  EXPECT_EQ(buddy.free_frames(), 8u);
  EXPECT_TRUE(buddy.Allocate(8).ok());
}

TEST(BuddyTest, CoalescingRestoresLargestBlock) {
  BuddyAllocator buddy(16);
  std::vector<uint64_t> frames;
  for (int i = 0; i < 16; ++i) {
    auto f = buddy.Allocate(1);
    ASSERT_TRUE(f.ok());
    frames.push_back(*f);
  }
  EXPECT_EQ(buddy.LargestFreeBlock(), 0u);
  for (uint64_t f : frames) {
    ASSERT_TRUE(buddy.Free(f, 1).ok());
  }
  EXPECT_EQ(buddy.LargestFreeBlock(), 16u);
  EXPECT_DOUBLE_EQ(buddy.FragmentationRatio(), 0.0);
}

TEST(BuddyTest, DoubleFreeRejected) {
  BuddyAllocator buddy(8);
  auto a = buddy.Allocate(2);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(buddy.Free(*a, 2).ok());
  EXPECT_FALSE(buddy.Free(*a, 2).ok());
}

TEST(BuddyTest, FreeWithWrongSizeRejected) {
  BuddyAllocator buddy(8);
  auto a = buddy.Allocate(4);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(buddy.Free(*a, 2).ok());
  EXPECT_TRUE(buddy.Free(*a, 4).ok());
}

TEST(BuddyTest, NonPowerOfTwoTotalFrames) {
  BuddyAllocator buddy(100);
  EXPECT_EQ(buddy.total_frames(), 100u);
  EXPECT_EQ(buddy.free_frames(), 100u);
  uint64_t allocated = 0;
  std::vector<std::pair<uint64_t, uint64_t>> blocks;
  for (;;) {
    auto f = buddy.Allocate(4);
    if (!f.ok()) {
      break;
    }
    EXPECT_LE(*f + 4, 100u);  // never hands out frames past the end
    blocks.emplace_back(*f, 4);
    allocated += 4;
  }
  EXPECT_EQ(allocated, 100u);  // 100 = 64+32+4, all divisible into 4s
  for (auto [frame, count] : blocks) {
    ASSERT_TRUE(buddy.Free(frame, count).ok());
  }
  EXPECT_EQ(buddy.free_frames(), 100u);
}

TEST(BuddyTest, FragmentationRatioReflectsScatter) {
  BuddyAllocator buddy(16);
  // Allocate all singles, free every other one: free memory is fragmented.
  std::vector<uint64_t> frames;
  for (int i = 0; i < 16; ++i) {
    frames.push_back(*buddy.Allocate(1));
  }
  for (size_t i = 0; i < frames.size(); i += 2) {
    ASSERT_TRUE(buddy.Free(frames[i], 1).ok());
  }
  EXPECT_EQ(buddy.free_frames(), 8u);
  EXPECT_EQ(buddy.LargestFreeBlock(), 1u);
  EXPECT_GT(buddy.FragmentationRatio(), 0.8);
}

// Property test: random alloc/free sequences never hand out overlapping
// blocks, and accounting stays exact.
class BuddyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BuddyPropertyTest, RandomAllocFreeNeverOverlaps) {
  sim::Rng rng(GetParam());
  constexpr uint64_t kFrames = 1024;
  BuddyAllocator buddy(kFrames);
  struct Block {
    uint64_t frame;
    uint64_t count;
  };
  std::vector<Block> live;
  std::set<uint64_t> owned;  // every frame owned by a live block

  for (int step = 0; step < 2000; ++step) {
    bool do_alloc = live.empty() || rng.NextBool(0.55);
    if (do_alloc) {
      uint64_t count = rng.NextInRange(1, 32);
      auto f = buddy.Allocate(count);
      if (!f.ok()) {
        continue;
      }
      uint64_t rounded = uint64_t{1} << (64 - std::countl_zero(count - 1));
      if (count == 1) {
        rounded = 1;
      }
      for (uint64_t i = 0; i < rounded; ++i) {
        auto [it, inserted] = owned.insert(*f + i);
        ASSERT_TRUE(inserted) << "frame " << *f + i << " double-allocated";
        ASSERT_LT(*f + i, kFrames);
      }
      live.push_back(Block{*f, count});
    } else {
      size_t index = rng.NextBelow(live.size());
      Block block = live[index];
      live.erase(live.begin() + static_cast<ptrdiff_t>(index));
      ASSERT_TRUE(buddy.Free(block.frame, block.count).ok());
      uint64_t rounded = uint64_t{1} << (64 - std::countl_zero(block.count - 1));
      if (block.count == 1) {
        rounded = 1;
      }
      for (uint64_t i = 0; i < rounded; ++i) {
        owned.erase(block.frame + i);
      }
    }
    ASSERT_EQ(buddy.allocated_frames(), owned.size());
  }
  for (const Block& block : live) {
    ASSERT_TRUE(buddy.Free(block.frame, block.count).ok());
  }
  EXPECT_EQ(buddy.free_frames(), kFrames);
  EXPECT_EQ(buddy.LargestFreeBlock(), kFrames);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyPropertyTest, ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace lastcpu::mem
