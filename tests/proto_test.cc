// Wire codec and message tests: every payload kind round-trips, malformed
// input is rejected, and envelope helpers correlate correctly.
#include <gtest/gtest.h>

#include <vector>

#include "src/proto/codec.h"
#include "src/proto/message.h"

namespace lastcpu::proto {
namespace {

Message Envelope(Payload payload) {
  return MakeRequest(DeviceId(1), DeviceId(2), RequestId(77), std::move(payload));
}

// Round-trips a message through the codec and checks full equality.
void ExpectRoundTrip(const Message& message) {
  std::vector<uint8_t> wire = EncodeMessage(message);
  EXPECT_EQ(wire.size(), EncodedSize(message));
  auto decoded = DecodeMessage(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->src, message.src);
  EXPECT_EQ(decoded->dst, message.dst);
  EXPECT_EQ(decoded->request_id, message.request_id);
  EXPECT_EQ(decoded->type(), message.type());
  EXPECT_EQ(decoded->payload, message.payload);
}

TEST(CodecTest, ByteWriterLittleEndian) {
  ByteWriter w;
  w.PutU32(0x11223344);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x44);
  EXPECT_EQ(w.bytes()[3], 0x11);
}

TEST(CodecTest, ByteReaderRejectsTruncation) {
  std::vector<uint8_t> buf{1, 2, 3};
  ByteReader r(buf);
  EXPECT_TRUE(r.GetU16().ok());
  EXPECT_FALSE(r.GetU32().ok());
}

TEST(CodecTest, StringRoundTrip) {
  ByteWriter w;
  w.PutString("hello");
  w.PutString("");
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_EQ(*r.GetString(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(MessageTest, TypeMatchesVariantIndex) {
  Message m = Envelope(DiscoverRequest{ServiceType::kFile, "kv.log"});
  EXPECT_EQ(m.type(), MessageType::kDiscoverRequest);
  EXPECT_TRUE(m.Is<DiscoverRequest>());
  EXPECT_FALSE(m.Is<OpenRequest>());
  EXPECT_EQ(m.As<DiscoverRequest>().resource, "kv.log");
}

TEST(MessageTest, MakeResponseCorrelates) {
  Message request = Envelope(CloseRequest{InstanceId(9)});
  Message response = MakeResponse(request, DeviceId(2), CloseResponse{});
  EXPECT_EQ(response.dst, request.src);
  EXPECT_EQ(response.src, DeviceId(2));
  EXPECT_EQ(response.request_id, request.request_id);
}

TEST(MessageTest, MakeErrorCarriesStatus) {
  Message request = Envelope(CloseRequest{InstanceId(9)});
  Message error = MakeError(request, DeviceId(2), NotFound("no such instance"));
  ASSERT_TRUE(error.Is<ErrorResponse>());
  EXPECT_EQ(error.As<ErrorResponse>().code, StatusCode::kNotFound);
  EXPECT_EQ(error.As<ErrorResponse>().message, "no such instance");
}

TEST(MessageTest, EveryMessageTypeHasName) {
  for (uint16_t t = 0; t <= static_cast<uint16_t>(MessageType::kShardDirectoryResponse); ++t) {
    EXPECT_NE(MessageTypeName(static_cast<MessageType>(t)), "Unknown");
  }
}

TEST(MessageTest, EveryServiceTypeHasName) {
  for (uint8_t t = 0; t <= static_cast<uint8_t>(ServiceType::kKeyValue); ++t) {
    EXPECT_NE(ServiceTypeName(static_cast<ServiceType>(t)), "unknown");
  }
}

// --- round trips for all payload kinds --------------------------------------

TEST(CodecRoundTrip, AliveAnnounce) {
  AliveAnnounce p;
  p.device_name = "smart-ssd0";
  p.services.push_back({DeviceId(4), ServiceType::kFile, "flashfs", 8});
  p.services.push_back({DeviceId(4), ServiceType::kLoader, "loader", 1});
  ExpectRoundTrip(Envelope(p));
}

TEST(CodecRoundTrip, DiscoverRequestAndResponse) {
  ExpectRoundTrip(Envelope(DiscoverRequest{ServiceType::kFile, "kv.log"}));
  ExpectRoundTrip(
      Envelope(DiscoverResponse{ServiceDescriptor{DeviceId(4), ServiceType::kFile, "flashfs", 0}}));
}

TEST(CodecRoundTrip, OpenCloseLifecycle) {
  ExpectRoundTrip(Envelope(OpenRequest{"flashfs", "kv.log", 0xDEADBEEF, Pasid(3)}));
  ExpectRoundTrip(Envelope(OpenResponse{InstanceId(11), 1 << 20, 256}));
  ExpectRoundTrip(Envelope(CloseRequest{InstanceId(11)}));
  ExpectRoundTrip(Envelope(CloseResponse{}));
}

TEST(CodecRoundTrip, MemoryOperations) {
  ExpectRoundTrip(
      Envelope(MemAllocRequest{Pasid(3), 4096 * 4, VirtAddr(0x10000), Access::kReadWrite}));
  ExpectRoundTrip(Envelope(MemAllocResponse{VirtAddr(0x10000), 4096 * 4}));
  ExpectRoundTrip(Envelope(MemFreeRequest{Pasid(3), VirtAddr(0x10000), 4096 * 4}));
  ExpectRoundTrip(Envelope(MemFreeResponse{}));
}

TEST(CodecRoundTrip, BatchedMemoryOperations) {
  ExpectRoundTrip(Envelope(MemAllocBatchRequest{Pasid(3), 4096 * 4, 32, Access::kReadWrite}));
  MemAllocBatchResponse alloc;
  alloc.vaddrs = {VirtAddr(0x10000), VirtAddr(0x20000), VirtAddr(0x30000)};
  alloc.bytes = 4096 * 4;
  ExpectRoundTrip(Envelope(alloc));
  MemFreeBatchRequest free_req;
  free_req.pasid = Pasid(3);
  free_req.vaddrs = {VirtAddr(0x10000), VirtAddr(0x30000)};
  free_req.bytes = 4096 * 4;
  ExpectRoundTrip(Envelope(free_req));
  ExpectRoundTrip(Envelope(MemFreeBatchResponse{}));
  // Empty vaddr lists survive too (a drain of zero regions is never sent,
  // but the codec must not care).
  ExpectRoundTrip(Envelope(MemAllocBatchResponse{}));
}

TEST(CodecRoundTrip, MapDirectiveWithEntries) {
  MapDirective p;
  p.target = DeviceId(7);
  p.pasid = Pasid(3);
  p.entries = {{0x10, 0x999, Access::kReadWrite}, {0x11, 0x99A, Access::kRead}};
  p.unmap = false;
  ExpectRoundTrip(Envelope(p));
  p.unmap = true;
  ExpectRoundTrip(Envelope(p));
}

TEST(CodecRoundTrip, GrantRevoke) {
  ExpectRoundTrip(
      Envelope(GrantRequest{Pasid(3), VirtAddr(0x10000), 8192, DeviceId(4), Access::kRead}));
  ExpectRoundTrip(Envelope(GrantResponse{}));
  ExpectRoundTrip(Envelope(RevokeRequest{Pasid(3), VirtAddr(0x10000), 8192, DeviceId(4)}));
  ExpectRoundTrip(Envelope(RevokeResponse{}));
}

TEST(CodecRoundTrip, NotificationsAndFailures) {
  ExpectRoundTrip(Envelope(Notify{InstanceId(5), 42}));
  ExpectRoundTrip(Envelope(ResourceFailed{"flashfs", InstanceId(5), "media error"}));
  ExpectRoundTrip(Envelope(DeviceFailed{DeviceId(4)}));
  ExpectRoundTrip(Envelope(DevicePermanentlyFailed{DeviceId(4), "crash loop"}));
  ExpectRoundTrip(Envelope(DevicePermanentlyFailed{DeviceId(9), ""}));
  ExpectRoundTrip(Envelope(ResetSignal{}));
  ExpectRoundTrip(Envelope(TeardownApp{Pasid(3)}));
}

TEST(CodecRoundTrip, LoaderAndAuth) {
  LoadImage p;
  p.app_name = "kvs-frontend";
  p.image = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01};
  p.auth_token = 123456789;
  ExpectRoundTrip(Envelope(p));
  ExpectRoundTrip(Envelope(LoadImageResponse{}));
  ExpectRoundTrip(Envelope(AuthRequest{"operator", "hunter2"}));
  ExpectRoundTrip(Envelope(AuthResponse{0xFEED, 1'000'000'000}));
}

TEST(CodecRoundTrip, ErrorResponse) {
  ExpectRoundTrip(Envelope(ErrorResponse{StatusCode::kPermissionDenied, "bad token"}));
}

TEST(CodecRoundTrip, MapConfirm) {
  ExpectRoundTrip(Envelope(MapConfirm{DeviceId(7), Pasid(3)}));
}

TEST(CodecRoundTrip, AttachQueue) {
  ExpectRoundTrip(Envelope(AttachQueue{InstanceId(5), VirtAddr(0x40000)}));
  ExpectRoundTrip(Envelope(AttachQueueResponse{}));
}

TEST(CodecRoundTrip, Heartbeat) {
  ExpectRoundTrip(Envelope(Heartbeat{}));
}

TEST(CodecRoundTrip, FileAdmin) {
  ExpectRoundTrip(Envelope(FileCreate{"new.log", 0xFEED}));
  ExpectRoundTrip(Envelope(FileDelete{"old.log", 0xFEED}));
  ExpectRoundTrip(Envelope(FileAdminResponse{}));
  ExpectRoundTrip(Envelope(FileList{0xFEED}));
  ExpectRoundTrip(Envelope(FileListResponse{{"a.log", "b.log"}}));
}

TEST(CodecRoundTrip, ShardDirectory) {
  ShardRecord shard0{DeviceId(2), 0, 0, uint64_t{1} << 40, 64 << 20};
  ShardRecord shard1{DeviceId((1u << 20) | 2), 1, uint64_t{1} << 40, uint64_t{2} << 40, 64 << 20};
  ExpectRoundTrip(Envelope(MemShardAnnounce{shard1}));
  ExpectRoundTrip(Envelope(ShardDirectoryRequest{}));
  ShardDirectoryResponse directory;
  directory.shards = {shard0, shard1};
  ExpectRoundTrip(Envelope(directory));
  ExpectRoundTrip(Envelope(ShardDirectoryResponse{}));
}

// --- malformed input ---------------------------------------------------------

TEST(CodecReject, BadMagic) {
  std::vector<uint8_t> wire = EncodeMessage(Envelope(ResetSignal{}));
  wire[0] = 0x00;
  EXPECT_FALSE(DecodeMessage(wire).ok());
}

TEST(CodecReject, BadVersion) {
  std::vector<uint8_t> wire = EncodeMessage(Envelope(ResetSignal{}));
  wire[2] = 99;
  EXPECT_FALSE(DecodeMessage(wire).ok());
}

TEST(CodecReject, UnknownType) {
  std::vector<uint8_t> wire = EncodeMessage(Envelope(ResetSignal{}));
  wire[3] = 0xFF;
  wire[4] = 0xFF;
  EXPECT_FALSE(DecodeMessage(wire).ok());
}

TEST(CodecReject, TruncationAtEveryLength) {
  std::vector<uint8_t> wire =
      EncodeMessage(Envelope(OpenRequest{"flashfs", "kv.log", 7, Pasid(3)}));
  for (size_t len = 0; len < wire.size(); ++len) {
    auto truncated = DecodeMessage(std::span<const uint8_t>(wire.data(), len));
    EXPECT_FALSE(truncated.ok()) << "decoded from only " << len << " bytes";
  }
}

TEST(CodecReject, TrailingGarbage) {
  std::vector<uint8_t> wire = EncodeMessage(Envelope(ResetSignal{}));
  wire.push_back(0xAB);
  EXPECT_FALSE(DecodeMessage(wire).ok());
}

TEST(CodecReject, OversizedMapEntryCount) {
  MapDirective p;
  p.target = DeviceId(7);
  p.pasid = Pasid(3);
  p.entries = {{1, 2, Access::kRead}};
  std::vector<uint8_t> wire = EncodeMessage(Envelope(p));
  // The entry-count field sits right after target(4) + pasid(4) in the
  // payload, which begins at header offset 25.
  size_t count_offset = 25 + 8;
  wire[count_offset] = 0xFF;
  wire[count_offset + 1] = 0xFF;
  wire[count_offset + 2] = 0xFF;
  EXPECT_FALSE(DecodeMessage(wire).ok());
}

TEST(CodecReject, BadAccessBits) {
  std::vector<uint8_t> wire = EncodeMessage(
      Envelope(MemAllocRequest{Pasid(1), 4096, VirtAddr(0), Access::kReadWrite}));
  wire.back() = 0xFF;  // access byte is last in MemAllocRequest
  EXPECT_FALSE(DecodeMessage(wire).ok());
}

}  // namespace
}  // namespace lastcpu::proto
