// Device framework tests: lifecycle, announcement, discovery, open/close
// multiplexing, isolation between instances, timeouts, reset semantics,
// loader service, and failure hooks.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "src/dev/loader_service.h"
#include "tests/test_util.h"

namespace lastcpu::dev {
namespace {

using testutil::EchoService;
using testutil::Harness;
using testutil::TestDevice;

class DeviceTest : public ::testing::Test {
 protected:
  DeviceTest()
      : nic_(DeviceId(1), "nic", harness_.Context()),
        ssd_(DeviceId(2), "ssd", harness_.Context()) {
    ssd_.AddService(std::make_unique<EchoService>(DeviceId(2), "echo"));
  }

  void PowerOnAll() {
    nic_.PowerOn();
    ssd_.PowerOn();
    harness_.simulator.Run();
  }

  Harness harness_;
  TestDevice nic_;
  TestDevice ssd_;
};

TEST_F(DeviceTest, PowerOnRunsSelfTestThenAnnounces) {
  EXPECT_EQ(nic_.state(), Device::State::kPoweredOff);
  nic_.PowerOn();
  EXPECT_EQ(nic_.state(), Device::State::kSelfTest);
  EXPECT_FALSE(harness_.bus.IsAlive(DeviceId(1)));
  harness_.simulator.Run();
  EXPECT_EQ(nic_.state(), Device::State::kAlive);
  EXPECT_TRUE(harness_.bus.IsAlive(DeviceId(1)));
  EXPECT_EQ(nic_.alive_calls, 1);
}

TEST_F(DeviceTest, SelfTestTakesConfiguredTime) {
  DeviceConfig config;
  config.self_test_duration = sim::Duration::Millis(3);
  TestDevice slow(DeviceId(9), "slow", harness_.Context(), config);
  slow.PowerOn();
  harness_.simulator.RunFor(sim::Duration::Millis(1));
  EXPECT_EQ(slow.state(), Device::State::kSelfTest);
  harness_.simulator.RunFor(sim::Duration::Millis(3));
  EXPECT_EQ(slow.state(), Device::State::kAlive);
}

TEST_F(DeviceTest, DiscoveryFindsMatchingService) {
  PowerOnAll();
  std::optional<std::vector<proto::ServiceDescriptor>> found;
  nic_.rpc().Discover(proto::ServiceType::kCompute, "", sim::Duration::Micros(50),
                      [&](std::vector<proto::ServiceDescriptor> services) { found = services; });
  harness_.simulator.Run();
  ASSERT_TRUE(found.has_value());
  ASSERT_EQ(found->size(), 1u);
  EXPECT_EQ((*found)[0].name, "echo");
  EXPECT_EQ((*found)[0].provider, DeviceId(2));
}

TEST_F(DeviceTest, DiscoveryOfMissingServiceReturnsEmpty) {
  PowerOnAll();
  std::optional<std::vector<proto::ServiceDescriptor>> found;
  nic_.rpc().Discover(proto::ServiceType::kFile, "nonexistent.log", sim::Duration::Micros(50),
                      [&](std::vector<proto::ServiceDescriptor> services) { found = services; });
  harness_.simulator.Run();
  ASSERT_TRUE(found.has_value());
  EXPECT_TRUE(found->empty());
}

TEST_F(DeviceTest, OpenCreatesIsolatedInstances) {
  PowerOnAll();
  std::optional<InstanceId> first;
  std::optional<InstanceId> second;
  nic_.rpc().Call<proto::OpenResponse>(DeviceId(2), proto::OpenRequest{"echo", "a", 0, Pasid(1)},
                                       [&](Result<proto::OpenResponse> opened) {
                                         ASSERT_TRUE(opened.ok());
                                         first = opened->instance;
                                       });
  nic_.rpc().Call<proto::OpenResponse>(DeviceId(2), proto::OpenRequest{"echo", "b", 0, Pasid(2)},
                                       [&](Result<proto::OpenResponse> opened) {
                                         ASSERT_TRUE(opened.ok());
                                         second = opened->instance;
                                       });
  harness_.simulator.Run();
  ASSERT_TRUE(first.has_value() && second.has_value());
  EXPECT_NE(*first, *second);  // separate contexts per open
  EXPECT_EQ(ssd_.FindServiceByName("echo")->instance_count(), 2u);
}

TEST_F(DeviceTest, OpenUnknownServiceFails) {
  PowerOnAll();
  std::optional<StatusCode> code;
  nic_.rpc().Call<proto::OpenResponse>(
      DeviceId(2), proto::OpenRequest{"nope", "", 0, Pasid(1)},
      [&](Result<proto::OpenResponse> opened) {
        ASSERT_FALSE(opened.ok());
        code = opened.status().code();
      });
  harness_.simulator.Run();
  EXPECT_EQ(code, StatusCode::kNotFound);
}

TEST_F(DeviceTest, ServiceEnforcesMaxInstances) {
  ssd_.AddService(std::make_unique<EchoService>(DeviceId(2), "limited", 1));
  PowerOnAll();
  int ok = 0;
  int exhausted = 0;
  for (int i = 0; i < 3; ++i) {
    nic_.rpc().Call<proto::OpenResponse>(
        DeviceId(2), proto::OpenRequest{"limited", "", 0, Pasid(1)},
        [&](Result<proto::OpenResponse> opened) {
          if (opened.ok()) {
            ++ok;
          } else if (opened.status().code() == StatusCode::kResourceExhausted) {
            ++exhausted;
          }
        });
  }
  harness_.simulator.Run();
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(exhausted, 2);
}

TEST_F(DeviceTest, ServiceEnforcesAuthToken) {
  ssd_.AddService(std::make_unique<EchoService>(DeviceId(2), "secure", 0, 0xFEED));
  PowerOnAll();
  std::optional<StatusCode> denied;
  std::optional<InstanceId> opened;
  nic_.rpc().Call<proto::OpenResponse>(
      DeviceId(2), proto::OpenRequest{"secure", "", 0xBAD, Pasid(1)},
      [&](Result<proto::OpenResponse> result) { denied = result.status().code(); });
  nic_.rpc().Call<proto::OpenResponse>(
      DeviceId(2), proto::OpenRequest{"secure", "", 0xFEED, Pasid(1)},
      [&](Result<proto::OpenResponse> result) {
        ASSERT_TRUE(result.ok());
        opened = result->instance;
      });
  harness_.simulator.Run();
  EXPECT_EQ(denied, StatusCode::kPermissionDenied);
  EXPECT_TRUE(opened.has_value());
}

TEST_F(DeviceTest, CloseReleasesInstance) {
  PowerOnAll();
  std::optional<InstanceId> instance;
  nic_.rpc().Call<proto::OpenResponse>(DeviceId(2), proto::OpenRequest{"echo", "a", 0, Pasid(1)},
                                       [&](Result<proto::OpenResponse> opened) {
                                         ASSERT_TRUE(opened.ok());
                                         instance = opened->instance;
                                       });
  harness_.simulator.Run();
  ASSERT_TRUE(instance.has_value());
  bool closed = false;
  nic_.rpc().Call<void>(DeviceId(2), proto::CloseRequest{*instance},
                        [&](Result<void> result) { closed = result.ok(); });
  harness_.simulator.Run();
  EXPECT_TRUE(closed);
  EXPECT_EQ(ssd_.FindServiceByName("echo")->instance_count(), 0u);
  // Double close fails.
  std::optional<StatusCode> code;
  nic_.rpc().Call<void>(DeviceId(2), proto::CloseRequest{*instance},
                        [&](Result<void> result) { code = result.status().code(); });
  harness_.simulator.Run();
  EXPECT_EQ(code, StatusCode::kNotFound);
}

TEST_F(DeviceTest, RequestToDeadDeviceTimesOutOrBounces) {
  nic_.PowerOn();
  harness_.simulator.Run();
  // SSD never powered on: the bus bounces with UNAVAILABLE.
  std::optional<StatusCode> code;
  nic_.rpc().Call<proto::OpenResponse>(
      DeviceId(2), proto::OpenRequest{"echo", "", 0, Pasid(1)},
      [&](Result<proto::OpenResponse> opened) { code = opened.status().code(); });
  harness_.simulator.Run();
  EXPECT_EQ(code, StatusCode::kUnavailable);
}

TEST_F(DeviceTest, RequestTimesOutWhenPeerFailsMidFlight) {
  PowerOnAll();
  // The SSD fails silently (no bus notification): the NIC's timeout fires.
  ssd_.InjectFailure();
  std::optional<StatusCode> code;
  nic_.rpc().Call<proto::OpenResponse>(
      DeviceId(2), proto::OpenRequest{"echo", "", 0, Pasid(1)},
      [&](Result<proto::OpenResponse> opened) { code = opened.status().code(); });
  harness_.simulator.Run();
  EXPECT_EQ(code, StatusCode::kTimedOut);
  EXPECT_EQ(nic_.stats().GetCounter("request_timeouts").value(), 1u);
}

TEST_F(DeviceTest, ResetDropsInstancesAndReannounces) {
  PowerOnAll();
  nic_.rpc().Call<proto::OpenResponse>(DeviceId(2), proto::OpenRequest{"echo", "a", 0, Pasid(1)},
                                       [](Result<proto::OpenResponse>) {});
  harness_.simulator.Run();
  ASSERT_EQ(ssd_.FindServiceByName("echo")->instance_count(), 1u);

  harness_.bus.ReportDeviceFailure(DeviceId(2));
  ssd_.InjectFailure();
  harness_.simulator.Run();
  // The bus pulsed reset; the device self-tested and came back clean.
  EXPECT_EQ(ssd_.state(), Device::State::kAlive);
  EXPECT_TRUE(harness_.bus.IsAlive(DeviceId(2)));
  EXPECT_EQ(ssd_.FindServiceByName("echo")->instance_count(), 0u);
}

TEST_F(DeviceTest, PeerFailureTearsDownClientInstances) {
  PowerOnAll();
  nic_.rpc().Call<proto::OpenResponse>(DeviceId(2), proto::OpenRequest{"echo", "a", 0, Pasid(1)},
                                       [](Result<proto::OpenResponse>) {});
  harness_.simulator.Run();
  ASSERT_EQ(ssd_.FindServiceByName("echo")->instance_count(), 1u);
  // The NIC dies; the bus tells the SSD, which drops the NIC's instances.
  nic_.InjectFailure();
  harness_.bus.ReportDeviceFailure(DeviceId(1));
  harness_.simulator.Run();
  EXPECT_EQ(ssd_.FindServiceByName("echo")->instance_count(), 0u);
  EXPECT_EQ(ssd_.failed_peers.size(), 1u);
  EXPECT_EQ(ssd_.failed_peers[0], DeviceId(1));
}

TEST_F(DeviceTest, TeardownAppReachesServicesAndHook) {
  PowerOnAll();
  nic_.rpc().Call<proto::OpenResponse>(DeviceId(2), proto::OpenRequest{"echo", "a", 0, Pasid(5)},
                                       [](Result<proto::OpenResponse>) {});
  nic_.rpc().Call<proto::OpenResponse>(DeviceId(2), proto::OpenRequest{"echo", "b", 0, Pasid(6)},
                                       [](Result<proto::OpenResponse>) {});
  harness_.simulator.Run();
  ASSERT_EQ(ssd_.FindServiceByName("echo")->instance_count(), 2u);
  nic_.SendOneWay(kBusDevice, proto::TeardownApp{Pasid(5)});
  harness_.simulator.Run();
  // Only PASID 5's instance died.
  EXPECT_EQ(ssd_.FindServiceByName("echo")->instance_count(), 1u);
  ASSERT_EQ(ssd_.teardowns.size(), 1u);
  EXPECT_EQ(ssd_.teardowns[0], Pasid(5));
}

TEST_F(DeviceTest, LoaderServiceStoresImagesWithAuth) {
  auto loader = std::make_unique<LoaderService>(
      DeviceId(2), [](uint64_t token) { return token == 0xFEED; });
  LoaderService* loader_ptr = loader.get();
  ssd_.AddService(std::move(loader));
  PowerOnAll();

  std::optional<StatusCode> denied;
  nic_.rpc().Call<proto::LoadImageResponse>(
      DeviceId(2), proto::LoadImage{"kvs", {1, 2, 3}, 0xBAD},
      [&](Result<proto::LoadImageResponse> loaded) { denied = loaded.status().code(); });
  bool loaded = false;
  nic_.rpc().Call<proto::LoadImageResponse>(
      DeviceId(2), proto::LoadImage{"kvs", {1, 2, 3}, 0xFEED},
      [&](Result<proto::LoadImageResponse> result) { loaded = result.ok(); });
  harness_.simulator.Run();
  EXPECT_EQ(denied, StatusCode::kPermissionDenied);
  EXPECT_TRUE(loaded);
  ASSERT_TRUE(loader_ptr->HasImage("kvs"));
  EXPECT_EQ(loader_ptr->FindImage("kvs")->size(), 3u);
  EXPECT_FALSE(loader_ptr->HasImage("other"));
}

TEST_F(DeviceTest, DoorbellReachesAliveDeviceOnly) {
  PowerOnAll();
  harness_.fabric.RingDoorbell(DeviceId(1), DeviceId(2), 42);
  harness_.simulator.Run();
  ASSERT_EQ(ssd_.doorbells.size(), 1u);
  EXPECT_EQ(ssd_.doorbells[0].second, 42u);
  ssd_.InjectFailure();
  harness_.fabric.RingDoorbell(DeviceId(1), DeviceId(2), 43);
  harness_.simulator.Run();
  EXPECT_EQ(ssd_.doorbells.size(), 1u);  // dead silicon ignores doorbells
}

TEST_F(DeviceTest, UnhandledRequestGetsUnimplementedError) {
  PowerOnAll();
  std::optional<StatusCode> code;
  nic_.rpc().Call<proto::MemAllocResponse>(
      DeviceId(2), proto::MemAllocRequest{Pasid(1), 4096, VirtAddr(0), Access::kReadWrite},
      [&](Result<proto::MemAllocResponse> result) { code = result.status().code(); });
  harness_.simulator.Run();
  EXPECT_EQ(code, StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace lastcpu::dev
