// Property-based tests: random operation sequences checked against simple
// reference models. Each suite runs under several seeds (TEST_P).
//
//   * FlashFs vs a byte-vector shadow file system
//   * Virtqueue vs a set-model of outstanding chains
//   * The full KVS machine vs a std::map shadow store
//   * IOMMU map/unmap/translate vs a flat shadow mapping
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>

#include "src/core/machine.h"
#include "src/kvs/kvs_app.h"
#include "src/sim/rng.h"
#include "src/ssddev/flash_fs.h"
#include "src/virtio/virtqueue.h"
#include "tests/test_util.h"

namespace lastcpu {
namespace {

class SeededTest : public ::testing::TestWithParam<uint64_t> {};

// --- FlashFs vs shadow ----------------------------------------------------------

using FlashFsProperty = SeededTest;

TEST_P(FlashFsProperty, MatchesShadowModel) {
  sim::Simulator simulator;
  ssddev::NandGeometry geometry;
  geometry.dies = 4;
  geometry.blocks_per_die = 32;
  geometry.pages_per_block = 16;
  ssddev::NandArray nand(&simulator, geometry);
  ssddev::Ftl ftl(&simulator, &nand);
  ssddev::FlashFs fs(&ftl);
  sim::Rng rng(GetParam());

  std::map<std::string, std::vector<uint8_t>> shadow;
  auto file_name = [&](uint64_t i) { return "f" + std::to_string(i); };

  for (int step = 0; step < 300; ++step) {
    uint64_t which = rng.NextBelow(4);
    std::string name = file_name(rng.NextBelow(5));
    switch (rng.NextBelow(5)) {
      case 0: {  // create
        Status created = fs.Create(name);
        EXPECT_EQ(created.ok(), !shadow.contains(name));
        if (created.ok()) {
          shadow[name] = {};
        }
        break;
      }
      case 1: {  // delete
        Status deleted = fs.Delete(name);
        EXPECT_EQ(deleted.ok(), shadow.contains(name));
        shadow.erase(name);
        break;
      }
      case 2: {  // write at random offset
        uint64_t offset = rng.NextBelow(12000);
        std::vector<uint8_t> data(rng.NextInRange(1, 6000));
        rng.Fill(data);
        std::optional<Status> status;
        fs.Write(name, offset, data, [&](Status s) { status = s; });
        simulator.Run();
        ASSERT_TRUE(status.has_value());
        if (shadow.contains(name)) {
          ASSERT_TRUE(status->ok()) << status->ToString();
          auto& bytes = shadow[name];
          if (bytes.size() < offset + data.size()) {
            bytes.resize(offset + data.size(), 0);
          }
          std::copy(data.begin(), data.end(), bytes.begin() + static_cast<ptrdiff_t>(offset));
        } else {
          EXPECT_FALSE(status->ok());
        }
        break;
      }
      case 3: {  // append
        std::vector<uint8_t> data(rng.NextInRange(1, 3000));
        rng.Fill(data);
        std::optional<Result<uint64_t>> at;
        fs.Append(name, data, [&](Result<uint64_t> r) { at = r; });
        simulator.Run();
        ASSERT_TRUE(at.has_value());
        if (shadow.contains(name)) {
          ASSERT_TRUE(at->ok());
          EXPECT_EQ(**at, shadow[name].size());
          auto& bytes = shadow[name];
          bytes.insert(bytes.end(), data.begin(), data.end());
        } else {
          EXPECT_FALSE(at->ok());
        }
        break;
      }
      case 4: {  // read a random slice and compare
        uint64_t offset = rng.NextBelow(14000);
        uint64_t length = rng.NextInRange(1, 8000);
        std::optional<Result<std::vector<uint8_t>>> read;
        fs.Read(name, offset, length, [&](Result<std::vector<uint8_t>> r) {
          read = std::move(r);
        });
        simulator.Run();
        ASSERT_TRUE(read.has_value());
        if (!shadow.contains(name)) {
          EXPECT_FALSE(read->ok());
          break;
        }
        ASSERT_TRUE(read->ok()) << read->status().ToString();
        const auto& bytes = shadow[name];
        uint64_t end = std::min<uint64_t>(offset + length, bytes.size());
        uint64_t expected_len = offset >= end ? 0 : end - offset;
        ASSERT_EQ((*read)->size(), expected_len) << "file " << name << " step " << step;
        for (uint64_t i = 0; i < expected_len; ++i) {
          ASSERT_EQ((**read)[i], bytes[offset + i]) << "offset " << offset + i;
        }
        break;
      }
    }
    (void)which;
    // Sizes stay consistent throughout.
    for (const auto& [shadow_name, bytes] : shadow) {
      auto info = fs.Stat(shadow_name);
      ASSERT_TRUE(info.ok());
      ASSERT_EQ(info->size, bytes.size()) << shadow_name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlashFsProperty, ::testing::Values(1, 7, 42, 1234));

// --- FTL power cuts vs acked-prefix model ----------------------------------------
//
// Random writes, synced trims, and power cuts landing at arbitrary points
// inside the NAND program window. The model records exactly the *acked*
// state: a write enters it only when its completion fires with OK, a trim
// only when its SyncMeta acks. After every cut + recovery, the drive must
// equal the model — acked data readable byte-for-byte, everything else
// (torn tails, un-acked writes, synced-away trims) cleanly absent.

using FtlPowerCutProperty = SeededTest;

TEST_P(FtlPowerCutProperty, RecoveredStateEqualsAckedPrefix) {
  sim::Simulator simulator;
  ssddev::NandGeometry geometry;
  geometry.dies = 2;
  geometry.blocks_per_die = 8;
  geometry.pages_per_block = 8;
  ssddev::NandArray nand(&simulator, geometry);
  ssddev::Ftl ftl(&simulator, &nand);
  sim::Rng rng(GetParam());

  const uint64_t working_set = ftl.logical_pages() * 9 / 10;
  const uint32_t page_bytes = ftl.page_bytes();
  auto page_of = [&](uint8_t fill) { return std::vector<uint8_t>(page_bytes, fill); };

  std::map<uint64_t, uint8_t> model;  // lpn -> last acked fill
  uint64_t cuts = 0;

  // Issues one write whose ack (and only its ack) updates the model.
  auto issue_write = [&] {
    uint64_t lpn = rng.NextBelow(working_set);
    auto fill = static_cast<uint8_t>(rng.NextBelow(256));
    ftl.Write(lpn, page_of(fill), [&model, lpn, fill](Status s) {
      if (s.ok()) {
        model[lpn] = fill;
      }
    });
  };

  auto verify_against_model = [&] {
    for (uint64_t lpn = 0; lpn < working_set; ++lpn) {
      auto it = model.find(lpn);
      if (it == model.end()) {
        ASSERT_FALSE(ftl.IsMapped(lpn)) << "un-acked lpn " << lpn << " survived";
        continue;
      }
      std::vector<uint8_t> read;
      ftl.Read(lpn, [&](Result<std::span<const uint8_t>> r) {
        ASSERT_TRUE(r.ok()) << "lpn " << lpn << ": " << r.status().ToString();
        read.assign(r->begin(), r->end());
      });
      simulator.Run();
      ASSERT_EQ(read, page_of(it->second)) << "lpn " << lpn;
    }
  };

  for (int step = 0; step < 600; ++step) {
    switch (rng.NextBelow(10)) {
      case 7: {  // trim + sync: durable only once SyncMeta acks
        uint64_t lpn = rng.NextBelow(working_set);
        ftl.Trim(lpn);
        std::optional<Status> synced;
        ftl.SyncMeta([&](Status s) { synced = s; });
        simulator.Run();
        ASSERT_TRUE(synced.has_value());
        if (synced->ok()) {
          model.erase(lpn);
        }
        break;
      }
      case 8: {  // spot-check a random lpn mid-traffic
        uint64_t lpn = rng.NextBelow(working_set);
        std::optional<Status> status;
        ftl.Read(lpn, [&](Result<std::span<const uint8_t>> r) { status = r.status(); });
        simulator.Run();
        ASSERT_TRUE(status.has_value());
        EXPECT_EQ(status->ok(), model.contains(lpn)) << "lpn " << lpn;
        break;
      }
      case 9: {  // power cut mid-flight, then full recovery check
        uint64_t burst = rng.NextInRange(1, 3);
        for (uint64_t i = 0; i < burst; ++i) {
          issue_write();
        }
        // Land inside the program window (programs take 400us), so some of
        // the burst is torn mid-page and some may have completed.
        simulator.Schedule(sim::Duration::Nanos(rng.NextBelow(600'000)),
                           [&ftl] { ftl.PowerCut(); });
        simulator.Run();
        ++cuts;
        ftl.Recover();
        simulator.Run();
        verify_against_model();
        break;
      }
      default: {  // burst of concurrent writes, run to idle
        uint64_t burst = rng.NextInRange(1, 4);
        for (uint64_t i = 0; i < burst; ++i) {
          issue_write();
        }
        simulator.Run();
        break;
      }
    }
  }
  EXPECT_GT(cuts, 10u);
  verify_against_model();
  // Wear-leveling keeps the erase wear spread bounded under sustained
  // random traffic: no block runs unboundedly hotter than the coldest.
  uint32_t spread = nand.MaxEraseCount() - nand.MinEraseCount();
  EXPECT_LE(spread, std::max<uint32_t>(8, nand.MaxEraseCount() / 2))
      << "min " << nand.MinEraseCount() << " max " << nand.MaxEraseCount();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtlPowerCutProperty,
                         ::testing::Values(2, 11, 47, 1999));

// --- Virtqueue vs outstanding-set model -----------------------------------------

using VirtqueueProperty = SeededTest;

TEST_P(VirtqueueProperty, CompletionsMatchSubmissions) {
  sim::Simulator simulator;
  mem::PhysicalMemory memory(8 << 20);
  fabric::Fabric fabric(&simulator, &memory);
  iommu::Iommu client_iommu(DeviceId(1));
  iommu::Iommu server_iommu(DeviceId(2));
  fabric.AttachDevice(DeviceId(1), &client_iommu);
  fabric.AttachDevice(DeviceId(2), &server_iommu);
  auto key = iommu::ProgrammingKey::CreateForTesting();
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(client_iommu.Map(key, Pasid(1), i, i, Access::kReadWrite).ok());
    ASSERT_TRUE(server_iommu.Map(key, Pasid(1), i, i, Access::kReadWrite).ok());
  }
  constexpr uint16_t kDepth = 32;
  virtio::VirtqueueDriver driver(&fabric, DeviceId(1), Pasid(1), VirtAddr(0), kDepth);
  virtio::VirtqueueDevice device(&fabric, DeviceId(2), Pasid(1), VirtAddr(0), kDepth);
  ASSERT_TRUE(driver.Initialize().ok());
  VirtAddr data_va(uint64_t{8} << kPageShift);

  sim::Rng rng(GetParam());
  std::set<uint16_t> submitted;       // heads the driver owns in flight
  std::map<uint16_t, uint32_t> done;  // device-completed, not yet polled
  uint64_t total_completed = 0;

  for (int step = 0; step < 2000; ++step) {
    switch (rng.NextBelow(3)) {
      case 0: {  // submit a 1- or 2-buffer chain
        std::vector<virtio::BufferDesc> chain{{data_va, 64, false}};
        if (rng.NextBool(0.5)) {
          chain.push_back({data_va + 64, 64, true});
        }
        auto head = driver.Submit(chain);
        if (driver.FreeDescriptors() == 0 && !head.ok()) {
          break;  // legitimately full
        }
        if (head.ok()) {
          ASSERT_TRUE(submitted.insert(*head).second) << "head reused while in flight";
        }
        break;
      }
      case 1: {  // device pops + completes one
        auto chain = device.PopAvail();
        ASSERT_TRUE(chain.ok());
        if (!chain->has_value()) {
          break;
        }
        uint16_t head = (*chain)->head;
        ASSERT_TRUE(submitted.contains(head)) << "device saw a chain never submitted";
        uint32_t written = static_cast<uint32_t>(rng.NextBelow(128));
        ASSERT_TRUE(device.PushUsed(head, written).ok());
        done[head] = written;
        break;
      }
      case 2: {  // driver polls one completion
        auto used = driver.PollUsed();
        ASSERT_TRUE(used.ok());
        if (!used->has_value()) {
          EXPECT_TRUE(done.empty());
          break;
        }
        uint16_t head = (*used)->head;
        auto it = done.find(head);
        ASSERT_NE(it, done.end()) << "completion for a chain the device never finished";
        EXPECT_EQ((*used)->written, it->second);
        done.erase(it);
        submitted.erase(head);
        ++total_completed;
        break;
      }
    }
  }
  // Drain: everything submitted eventually completes exactly once.
  for (;;) {
    auto chain = device.PopAvail();
    ASSERT_TRUE(chain.ok());
    if (!chain->has_value()) {
      break;
    }
    ASSERT_TRUE(device.PushUsed((*chain)->head, 1).ok());
    done[(*chain)->head] = 1;
  }
  for (;;) {
    auto used = driver.PollUsed();
    ASSERT_TRUE(used.ok());
    if (!used->has_value()) {
      break;
    }
    submitted.erase((*used)->head);
    done.erase((*used)->head);
    ++total_completed;
  }
  EXPECT_TRUE(submitted.empty());
  EXPECT_TRUE(done.empty());
  EXPECT_GT(total_completed, 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VirtqueueProperty, ::testing::Values(3, 99, 2024));

// --- full-machine KVS vs std::map shadow -----------------------------------------

using KvsProperty = SeededTest;

TEST_P(KvsProperty, MatchesShadowStore) {
  core::Machine machine;
  machine.AddMemoryController();
  ssddev::SmartSsdConfig ssd_config;
  ssd_config.host_auth_service = false;
  auto& ssd = machine.AddSmartSsd(ssd_config);
  auto& nic = machine.AddSmartNic();
  ssd.ProvisionFile("kv.log", {});
  Pasid pasid = machine.NewApplication("kvs");
  auto app_owner = std::make_unique<kvs::KvsApp>(&nic, pasid);
  kvs::KvsApp* app = app_owner.get();
  nic.LoadApp(std::move(app_owner));
  machine.Boot();
  ASSERT_TRUE(app->engine().running());

  sim::Rng rng(GetParam());
  std::map<std::string, std::vector<uint8_t>> shadow;
  auto key_name = [](uint64_t i) { return "k" + std::to_string(i); };

  for (int step = 0; step < 250; ++step) {
    std::string key = key_name(rng.NextBelow(30));
    switch (rng.NextBelow(3)) {
      case 0: {  // put
        std::vector<uint8_t> value(rng.NextInRange(1, 512));
        rng.Fill(value);
        std::optional<Status> status;
        app->engine().Put(key, value, [&](Status s) { status = s; });
        machine.RunUntilIdle();
        ASSERT_TRUE(status.has_value() && status->ok());
        shadow[key] = value;
        break;
      }
      case 1: {  // delete
        std::optional<Status> status;
        app->engine().Delete(key, [&](Status s) { status = s; });
        machine.RunUntilIdle();
        ASSERT_TRUE(status.has_value());
        EXPECT_EQ(status->ok(), shadow.contains(key)) << key;
        shadow.erase(key);
        break;
      }
      case 2: {  // get
        std::optional<Result<std::vector<uint8_t>>> value;
        app->engine().Get(key, [&](Result<std::vector<uint8_t>> r) { value = std::move(r); });
        machine.RunUntilIdle();
        ASSERT_TRUE(value.has_value());
        if (shadow.contains(key)) {
          ASSERT_TRUE(value->ok()) << value->status().ToString();
          EXPECT_EQ(**value, shadow[key]);
        } else {
          EXPECT_EQ(value->status().code(), StatusCode::kNotFound);
        }
        break;
      }
    }
  }
  EXPECT_EQ(app->engine().index().size(), shadow.size());

  // Crash-restart the engine: the rebuilt index must still match the shadow.
  app->engine().Stop(Aborted("property restart"));
  std::optional<Status> restarted;
  app->engine().Start([&](Status s) { restarted = s; });
  machine.RunUntilIdle();
  ASSERT_TRUE(restarted.has_value() && restarted->ok());
  EXPECT_EQ(app->engine().index().size(), shadow.size());
  for (const auto& [key, expected] : shadow) {
    std::optional<Result<std::vector<uint8_t>>> value;
    app->engine().Get(key, [&](Result<std::vector<uint8_t>> r) { value = std::move(r); });
    machine.RunUntilIdle();
    ASSERT_TRUE(value.has_value() && value->ok()) << key;
    ASSERT_EQ(**value, expected) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvsProperty, ::testing::Values(5, 77));

// --- IOMMU vs flat shadow mapping -------------------------------------------------

using IommuProperty = SeededTest;

TEST_P(IommuProperty, MatchesShadowMapping) {
  iommu::Iommu unit(DeviceId(1), iommu::TlbConfig{16, 4});
  auto key = iommu::ProgrammingKey::CreateForTesting();
  sim::Rng rng(GetParam());
  std::unordered_map<uint64_t, std::pair<uint64_t, Access>> shadow;  // vpage -> (pframe, access)

  for (int step = 0; step < 5000; ++step) {
    uint64_t vpage = rng.NextBelow(512);
    switch (rng.NextBelow(3)) {
      case 0: {  // map
        uint64_t pframe = rng.NextBelow(1 << 20);
        Access access = rng.NextBool(0.5) ? Access::kReadWrite : Access::kRead;
        Status mapped = unit.Map(key, Pasid(1), vpage, pframe, access);
        EXPECT_EQ(mapped.ok(), !shadow.contains(vpage));
        if (mapped.ok()) {
          shadow[vpage] = {pframe, access};
        }
        break;
      }
      case 1: {  // unmap
        Status unmapped = unit.Unmap(key, Pasid(1), vpage);
        EXPECT_EQ(unmapped.ok(), shadow.contains(vpage));
        shadow.erase(vpage);
        break;
      }
      case 2: {  // translate (read, then write)
        auto read = unit.Translate(Pasid(1), VirtAddr(vpage << kPageShift), Access::kRead);
        auto it = shadow.find(vpage);
        if (it == shadow.end()) {
          EXPECT_FALSE(read.ok());
          break;
        }
        ASSERT_TRUE(read.ok());
        EXPECT_EQ(read->paddr.frame(), it->second.first);
        auto write = unit.Translate(Pasid(1), VirtAddr(vpage << kPageShift), Access::kWrite);
        EXPECT_EQ(write.ok(), AccessCovers(it->second.second, Access::kWrite));
        break;
      }
    }
    ASSERT_EQ(unit.mapped_pages(Pasid(1)), shadow.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IommuProperty, ::testing::Values(13, 21, 100));

}  // namespace
}  // namespace lastcpu
