// Memory controller tests: the full Figure-2 memory path — allocation with
// bus-programmed IOMMU mappings, grants with owner authorization, revoke,
// free, quota, teardown — verified end to end with real DMA through the
// fabric.
#include <gtest/gtest.h>

#include <optional>
#include <utility>

#include "src/memdev/memory_controller.h"
#include "tests/test_util.h"

namespace lastcpu::memdev {
namespace {

using testutil::Harness;
using testutil::TestDevice;

class MemoryControllerTest : public ::testing::Test {
 protected:
  MemoryControllerTest()
      : controller_(DeviceId(3), harness_.Context(), &harness_.memory),
        nic_(DeviceId(1), "nic", harness_.Context()),
        ssd_(DeviceId(2), "ssd", harness_.Context()) {
    controller_.PowerOn();
    nic_.PowerOn();
    ssd_.PowerOn();
    harness_.simulator.Run();
  }

  // Issues a MemAllocRequest from `device` and runs to completion.
  Result<proto::MemAllocResponse> Alloc(testutil::TestDevice& device, Pasid pasid, uint64_t bytes,
                                        VirtAddr hint = VirtAddr(0),
                                        Access access = Access::kReadWrite) {
    std::optional<Result<proto::MemAllocResponse>> outcome;
    device.rpc().Call<proto::MemAllocResponse>(
        DeviceId(3), proto::MemAllocRequest{pasid, bytes, hint, access},
        [&](Result<proto::MemAllocResponse> result) { outcome = std::move(result); });
    harness_.simulator.Run();
    LASTCPU_CHECK(outcome.has_value(), "alloc never completed");
    return *outcome;
  }

  // Sends a grant/revoke/free via the bus and returns the terminal status.
  Status RoundTrip(testutil::TestDevice& device, proto::Payload payload) {
    std::optional<Status> outcome;
    device.rpc().Call<void>(kBusDevice, std::move(payload),
                            [&](Result<void> result) { outcome = result.status(); });
    harness_.simulator.Run();
    LASTCPU_CHECK(outcome.has_value(), "request never completed");
    return *outcome;
  }

  Harness harness_;
  MemoryController controller_;
  TestDevice nic_;
  TestDevice ssd_;
};

TEST_F(MemoryControllerTest, ControllerIsElectedByBus) {
  EXPECT_EQ(harness_.bus.memory_controller(), DeviceId(3));
}

TEST_F(MemoryControllerTest, AllocMapsRequesterIommu) {
  auto response = Alloc(nic_, Pasid(7), 3 * kPageSize);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->bytes, 3 * kPageSize);
  // The NIC's IOMMU translates the new region without any local programming.
  EXPECT_EQ(nic_.iommu().mapped_pages(Pasid(7)), 3u);
  auto t = nic_.iommu().Translate(Pasid(7), response->vaddr, Access::kWrite);
  EXPECT_TRUE(t.ok());
  // The SSD's IOMMU knows nothing of it (isolation).
  EXPECT_EQ(ssd_.iommu().mapped_pages(Pasid(7)), 0u);
}

TEST_F(MemoryControllerTest, AllocatedMemoryIsUsableForDma) {
  auto response = Alloc(nic_, Pasid(7), 2 * kPageSize);
  ASSERT_TRUE(response.ok());
  std::vector<uint8_t> data{1, 2, 3, 4, 5, 6, 7, 8};
  bool wrote = false;
  harness_.fabric.DmaWrite(DeviceId(1), Pasid(7), response->vaddr, data, [&](Status s) {
    ASSERT_TRUE(s.ok());
    wrote = true;
  });
  harness_.simulator.Run();
  EXPECT_TRUE(wrote);
}

TEST_F(MemoryControllerTest, AllocZeroFillsMemory) {
  // Write garbage into the first allocation, free it, re-allocate, and verify
  // the new owner sees zeros.
  auto first = Alloc(nic_, Pasid(7), kPageSize);
  ASSERT_TRUE(first.ok());
  harness_.fabric.DmaWrite(DeviceId(1), Pasid(7), first->vaddr,
                           std::vector<uint8_t>(64, 0xAB), [](Status) {});
  harness_.simulator.Run();
  ASSERT_TRUE(RoundTrip(nic_, proto::MemFreeRequest{Pasid(7), first->vaddr, kPageSize}).ok());

  auto second = Alloc(ssd_, Pasid(8), kPageSize);
  ASSERT_TRUE(second.ok());
  std::vector<uint8_t> seen;
  harness_.fabric.DmaRead(DeviceId(2), Pasid(8), second->vaddr, 64,
                          [&](Result<std::vector<uint8_t>> r) {
                            ASSERT_TRUE(r.ok());
                            seen = *r;
                          });
  harness_.simulator.Run();
  ASSERT_EQ(seen.size(), 64u);
  for (uint8_t b : seen) {
    EXPECT_EQ(b, 0);
  }
}

TEST_F(MemoryControllerTest, HintedPlacementHonored) {
  VirtAddr hint(uint64_t{0x200} << kPageShift);
  auto response = Alloc(nic_, Pasid(7), kPageSize, hint);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->vaddr, hint);
}

TEST_F(MemoryControllerTest, OverlappingHintRejected) {
  VirtAddr hint(uint64_t{0x200} << kPageShift);
  ASSERT_TRUE(Alloc(nic_, Pasid(7), 4 * kPageSize, hint).ok());
  auto overlap = Alloc(nic_, Pasid(7), kPageSize, VirtAddr(hint.raw + kPageSize));
  EXPECT_FALSE(overlap.ok());
  EXPECT_EQ(overlap.status().code(), StatusCode::kAlreadyExists);
  // Same hint in a different PASID is fine (address spaces are independent).
  EXPECT_TRUE(Alloc(ssd_, Pasid(8), kPageSize, hint).ok());
}

TEST_F(MemoryControllerTest, MisalignedHintRejected) {
  auto response = Alloc(nic_, Pasid(7), kPageSize, VirtAddr(0x1001));
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(MemoryControllerTest, ZeroByteAllocRejected) {
  auto response = Alloc(nic_, Pasid(7), 0);
  EXPECT_FALSE(response.ok());
}

TEST_F(MemoryControllerTest, QuotaEnforced) {
  Harness harness(64 << 20);
  MemoryControllerConfig config;
  config.max_bytes_per_pasid = 4 * kPageSize;
  MemoryController controller(DeviceId(3), harness.Context(), &harness.memory, config);
  TestDevice nic(DeviceId(1), "nic", harness.Context());
  controller.PowerOn();
  nic.PowerOn();
  harness.simulator.Run();

  std::optional<StatusCode> code;
  int ok = 0;
  for (int i = 0; i < 3; ++i) {
    nic.rpc().Call<proto::MemAllocResponse>(
        DeviceId(3), proto::MemAllocRequest{Pasid(7), 2 * kPageSize, VirtAddr(0),
                                            Access::kReadWrite},
        [&](Result<proto::MemAllocResponse> result) {
          if (result.ok()) {
            ++ok;
          } else {
            code = result.status().code();
          }
        });
    harness.simulator.Run();
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(code, StatusCode::kResourceExhausted);
  // A different application is unaffected by the first one's quota.
  bool other_ok = false;
  nic.rpc().Call<proto::MemAllocResponse>(
      DeviceId(3), proto::MemAllocRequest{Pasid(8), 2 * kPageSize, VirtAddr(0),
                                          Access::kReadWrite},
      [&](Result<proto::MemAllocResponse> result) { other_ok = result.ok(); });
  harness.simulator.Run();
  EXPECT_TRUE(other_ok);
}

TEST_F(MemoryControllerTest, OutOfMemorySurfacesCleanly) {
  Harness harness(1 << 20);  // 256 frames
  MemoryController controller(DeviceId(3), harness.Context(), &harness.memory);
  TestDevice nic(DeviceId(1), "nic", harness.Context());
  controller.PowerOn();
  nic.PowerOn();
  harness.simulator.Run();
  std::optional<StatusCode> code;
  nic.rpc().Call<proto::MemAllocResponse>(
      DeviceId(3), proto::MemAllocRequest{Pasid(7), 2 << 20, VirtAddr(0), Access::kReadWrite},
      [&](Result<proto::MemAllocResponse> result) { code = result.status().code(); });
  harness.simulator.Run();
  EXPECT_EQ(code, StatusCode::kResourceExhausted);
}

TEST_F(MemoryControllerTest, GrantMapsGranteeAndDataFlows) {
  // Figure 2 steps 5-7: NIC allocates shared memory, grants it to the SSD.
  auto response = Alloc(nic_, Pasid(7), 2 * kPageSize);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(RoundTrip(nic_, proto::GrantRequest{Pasid(7), response->vaddr, 2 * kPageSize,
                                                  DeviceId(2), Access::kReadWrite})
                  .ok());
  EXPECT_EQ(ssd_.iommu().mapped_pages(Pasid(7)), 2u);

  // NIC writes, SSD reads the same bytes at the same virtual address.
  std::vector<uint8_t> data{0xCA, 0xFE, 0xBA, 0xBE};
  harness_.fabric.DmaWrite(DeviceId(1), Pasid(7), response->vaddr, data, [](Status) {});
  harness_.simulator.Run();
  std::vector<uint8_t> seen;
  harness_.fabric.DmaRead(DeviceId(2), Pasid(7), response->vaddr, 4,
                          [&](Result<std::vector<uint8_t>> r) {
                            ASSERT_TRUE(r.ok());
                            seen = *r;
                          });
  harness_.simulator.Run();
  EXPECT_EQ(seen, data);
}

TEST_F(MemoryControllerTest, GrantByNonOwnerDenied) {
  auto response = Alloc(nic_, Pasid(7), kPageSize);
  ASSERT_TRUE(response.ok());
  // The SSD (not the owner) tries to grant the NIC's region to itself.
  Status status = RoundTrip(ssd_, proto::GrantRequest{Pasid(7), response->vaddr, kPageSize,
                                                      DeviceId(2), Access::kReadWrite});
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(ssd_.iommu().mapped_pages(Pasid(7)), 0u);
}

TEST_F(MemoryControllerTest, GrantCannotExceedOwnerAccess) {
  auto response = Alloc(nic_, Pasid(7), kPageSize, VirtAddr(0), Access::kRead);
  ASSERT_TRUE(response.ok());
  Status status = RoundTrip(nic_, proto::GrantRequest{Pasid(7), response->vaddr, kPageSize,
                                                      DeviceId(2), Access::kReadWrite});
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);
}

TEST_F(MemoryControllerTest, GrantOfUnallocatedRegionDenied) {
  Status status = RoundTrip(nic_, proto::GrantRequest{Pasid(7), VirtAddr(0x123000), kPageSize,
                                                      DeviceId(2), Access::kRead});
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(MemoryControllerTest, RevokeUnmapsGrantee) {
  auto response = Alloc(nic_, Pasid(7), kPageSize);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(RoundTrip(nic_, proto::GrantRequest{Pasid(7), response->vaddr, kPageSize,
                                                  DeviceId(2), Access::kRead})
                  .ok());
  ASSERT_EQ(ssd_.iommu().mapped_pages(Pasid(7)), 1u);
  ASSERT_TRUE(
      RoundTrip(nic_, proto::RevokeRequest{Pasid(7), response->vaddr, kPageSize, DeviceId(2)})
          .ok());
  EXPECT_EQ(ssd_.iommu().mapped_pages(Pasid(7)), 0u);
  // Grantee access now faults.
  bool faulted = false;
  harness_.fabric.DmaRead(DeviceId(2), Pasid(7), response->vaddr, 4,
                          [&](Result<std::vector<uint8_t>> r) { faulted = !r.ok(); });
  harness_.simulator.Run();
  EXPECT_TRUE(faulted);
}

TEST_F(MemoryControllerTest, FreeUnmapsOwnerAndGrantees) {
  auto response = Alloc(nic_, Pasid(7), kPageSize);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(RoundTrip(nic_, proto::GrantRequest{Pasid(7), response->vaddr, kPageSize,
                                                  DeviceId(2), Access::kRead})
                  .ok());
  uint64_t frames_before = controller_.allocator().free_frames();
  ASSERT_TRUE(RoundTrip(nic_, proto::MemFreeRequest{Pasid(7), response->vaddr, kPageSize}).ok());
  EXPECT_EQ(nic_.iommu().mapped_pages(Pasid(7)), 0u);
  EXPECT_EQ(ssd_.iommu().mapped_pages(Pasid(7)), 0u);
  EXPECT_EQ(controller_.allocator().free_frames(), frames_before + 1);
  EXPECT_EQ(controller_.AllocatedBytes(Pasid(7)), 0u);
}

TEST_F(MemoryControllerTest, FreeByNonOwnerDenied) {
  auto response = Alloc(nic_, Pasid(7), kPageSize);
  ASSERT_TRUE(response.ok());
  Status status = RoundTrip(ssd_, proto::MemFreeRequest{Pasid(7), response->vaddr, kPageSize});
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(nic_.iommu().mapped_pages(Pasid(7)), 1u);
}

TEST_F(MemoryControllerTest, TeardownFreesEverything) {
  auto a = Alloc(nic_, Pasid(7), 2 * kPageSize);
  auto b = Alloc(nic_, Pasid(7), 4 * kPageSize);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(RoundTrip(nic_, proto::GrantRequest{Pasid(7), a->vaddr, kPageSize, DeviceId(2),
                                                  Access::kRead})
                  .ok());
  uint64_t total = harness_.memory.num_frames();
  nic_.SendOneWay(kBusDevice, proto::TeardownApp{Pasid(7)});
  harness_.simulator.Run();
  EXPECT_EQ(controller_.allocator().free_frames(), total);
  EXPECT_EQ(controller_.AllocatedBytes(Pasid(7)), 0u);
  EXPECT_EQ(controller_.allocation_count(), 0u);
  EXPECT_EQ(nic_.iommu().mapped_pages(Pasid(7)), 0u);
  EXPECT_EQ(ssd_.iommu().mapped_pages(Pasid(7)), 0u);
}

TEST_F(MemoryControllerTest, AllocationsAccumulateStats) {
  ASSERT_TRUE(Alloc(nic_, Pasid(7), kPageSize).ok());
  ASSERT_TRUE(Alloc(nic_, Pasid(7), kPageSize).ok());
  EXPECT_EQ(controller_.stats().GetCounter("allocations").value(), 2u);
  EXPECT_EQ(controller_.allocation_count(), 2u);
  EXPECT_EQ(controller_.AllocatedBytes(Pasid(7)), 2 * kPageSize);
}

}  // namespace
}  // namespace lastcpu::memdev
