// Chaos soak: seeded whole-device crash schedules (sim::CrashPlan) run
// against the full KVS machine. Each schedule kills the SSD, the NIC, or the
// memory controller at a scripted trigger — absolute time, Kth bus send, or
// mid-self-test — and scripts what the silicon does afterwards (come back
// clean, crash-loop, or never return). The soak asserts the supervised
// lifecycle end to end:
//
//   * every Put completes exactly once (no permanently-spinning retry loop),
//   * acked Puts survive crashes and match a std::map shadow store,
//   * a device that never comes back ends quarantined, with exactly one
//     DevicePermanentlyFailed notice seen by its peers and zero allocations
//     or grants left in the memory controller under its name,
//   * the same schedule replayed yields a byte-identical metrics snapshot
//     and event count (the simulation is seed-deterministic).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/control_plane.h"
#include "src/core/crash_injector.h"
#include "src/core/machine.h"
#include "src/kvs/kvs_app.h"
#include "tests/test_util.h"

namespace lastcpu {
namespace {

using Respawn = sim::CrashSpec::Respawn;

// Devices are added in a fixed order, so ids are deterministic.
constexpr uint32_t kMemctrlId = 1;
constexpr uint32_t kSsdId = 2;
constexpr uint32_t kNicId = 3;
// The extra device of the magazine-holder schedule (added only there).
constexpr uint32_t kStubId = 4;

// A bare self-managing device that exists to hold a grant magazine.
class MagazineStub : public dev::Device {
 public:
  MagazineStub(DeviceId id, const dev::DeviceContext& context)
      : dev::Device(id, "magstub", context) {}
};

struct Schedule {
  const char* name;
  sim::CrashPlan plan;
  bus::RestartPolicy policy;  // defaults unless a schedule overrides
  bool expect_ssd_quarantine = false;
  // Adds a 4th device that stocks a full grant magazine before the crash
  // schedule kills it for good: its leased regions are ordinary owned
  // allocations, so quarantine reclaim must leave nothing stranded.
  bool magazine_holder = false;
  // Power-cut schedule knobs: a tiny NAND geometry makes GC active during
  // the workload, and the extra overwrite Puts hammer a handful of hot keys
  // so victim blocks hold a valid/invalid mix when the rail drops.
  bool small_ssd = false;
  int overwrite_puts = 0;
  // The drive is expected to come back via journal replay (Ftl::Recover),
  // and — for the mid-GC schedule — with garbage collection having run.
  bool expect_recovery = false;
  bool expect_gc = false;
};

sim::CrashSpec TimeKill(uint32_t device, uint64_t at_us, Respawn respawn = Respawn::kClean,
                        uint32_t loops = 0) {
  sim::CrashSpec spec;
  spec.device = device;
  spec.at = sim::Duration::Micros(at_us);
  spec.respawn = respawn;
  spec.loop_count = loops;
  return spec;
}

sim::CrashSpec KthSendKill(uint32_t device, uint64_t kth, Respawn respawn = Respawn::kClean) {
  sim::CrashSpec spec;
  spec.device = device;
  spec.on_kth_send = kth;
  spec.respawn = respawn;
  return spec;
}

sim::CrashSpec SelfTestKill(uint32_t device, Respawn respawn = Respawn::kClean) {
  sim::CrashSpec spec;
  spec.device = device;
  spec.during_self_test = true;
  spec.respawn = respawn;
  return spec;
}

sim::CrashSpec PowerCutAt(uint32_t device, uint64_t at_us, Respawn respawn = Respawn::kClean) {
  sim::CrashSpec spec = TimeKill(device, at_us, respawn);
  spec.power_cut = true;
  return spec;
}

sim::CrashSpec PowerCutOnProgram(uint32_t device, uint64_t kth) {
  sim::CrashSpec spec;
  spec.device = device;
  spec.on_kth_program = kth;
  spec.power_cut = true;
  return spec;
}

std::vector<Schedule> Schedules() {
  std::vector<Schedule> all;
  {
    Schedule s{.name = "ssd-transient"};
    s.plan.crashes = {TimeKill(kSsdId, 300)};
    all.push_back(s);
  }
  {
    // Two sabotaged self-tests after the kill: the supervisor's restart
    // deadline carries the episode until the third pulse succeeds.
    Schedule s{.name = "ssd-crash-loop-then-recover"};
    s.plan.crashes = {TimeKill(kSsdId, 300, Respawn::kCrashLoop, 2)};
    all.push_back(s);
  }
  {
    Schedule s{.name = "ssd-never-returns"};
    s.plan.crashes = {TimeKill(kSsdId, 300, Respawn::kNever)};
    s.expect_ssd_quarantine = true;
    all.push_back(s);
  }
  {
    // Dead silicon halfway through the very first boot self-test.
    Schedule s{.name = "ssd-dies-in-boot-self-test"};
    s.plan.crashes = {SelfTestKill(kSsdId)};
    all.push_back(s);
  }
  {
    // The SSD makes only a handful of bus sends (announce, discovery and
    // session-setup replies) — the data path rides the fabric. Its third
    // send is the file-list reply, so this kill lands mid session setup.
    Schedule s{.name = "ssd-dies-mid-session-setup"};
    s.plan.crashes = {KthSendKill(kSsdId, 3)};
    all.push_back(s);
  }
  {
    // Fifth send is the open reply: dead before the session finishes, and
    // the silicon never comes back. The app has not bound a provider yet, so
    // it burns its bounded retry budget rather than learning of quarantine.
    Schedule s{.name = "ssd-dies-early-never-returns"};
    s.plan.crashes = {KthSendKill(kSsdId, 5, Respawn::kNever)};
    s.expect_ssd_quarantine = true;
    all.push_back(s);
  }
  {
    // The second kill lands inside the KVS bring-up retry window, i.e. a
    // crash during crash recovery.
    Schedule s{.name = "ssd-dies-again-during-kvs-recovery"};
    s.plan.crashes = {TimeKill(kSsdId, 300), TimeKill(kSsdId, 850)};
    all.push_back(s);
  }
  {
    Schedule s{.name = "nic-transient"};
    s.plan.crashes = {TimeKill(kNicId, 400)};
    all.push_back(s);
  }
  {
    Schedule s{.name = "memctrl-transient"};
    s.plan.crashes = {TimeKill(kMemctrlId, 500)};
    all.push_back(s);
  }
  {
    // Each episode recovers, but the third failure inside the sliding window
    // trips the crash-loop detector rather than the attempt budget.
    Schedule s{.name = "ssd-crash-loops-into-quarantine"};
    s.plan.crashes = {TimeKill(kSsdId, 300), TimeKill(kSsdId, 600), TimeKill(kSsdId, 900),
                      TimeKill(kSsdId, 1200)};
    s.policy.max_restart_attempts = 10;
    s.policy.crash_loop_threshold = 3;
    s.expect_ssd_quarantine = true;
    all.push_back(s);
  }
  {
    // The power rail drops mid-traffic: all volatile FTL/FlashFs/session
    // state is gone, in-flight NAND programs tear, and the drive must come
    // back by replaying its on-media mapping journal. Every acked Put must
    // survive the replay; un-acked ones must complete (failed), not hang.
    Schedule s{.name = "ssd-power-cut-transient"};
    s.plan.crashes = {PowerCutAt(kSsdId, 300)};
    s.expect_recovery = true;
    all.push_back(s);
  }
  {
    // Power cut 1ns after the Kth NAND program on a tiny drive under
    // sustained hot-key overwrite: garbage collection is active by then, so
    // the cut lands among GC relocations and meta flushes mid-page — the
    // window where a mapping legitimately exists in two places at once.
    Schedule s{.name = "ssd-power-cut-mid-gc"};
    s.plan.crashes = {PowerCutOnProgram(kSsdId, 150)};
    s.small_ssd = true;
    s.overwrite_puts = 160;
    s.expect_recovery = true;
    s.expect_gc = true;
    all.push_back(s);
  }
  {
    // Two rail drops, the second landing inside the KVS bring-up retry
    // window: a power cut during power-cut recovery.
    Schedule s{.name = "ssd-power-cut-double"};
    s.plan.crashes = {PowerCutAt(kSsdId, 300), PowerCutAt(kSsdId, 850)};
    s.expect_recovery = true;
    all.push_back(s);
  }
  {
    // A device dies for good while holding a fully stocked grant magazine.
    // The magazine's regions are leases (owned allocations in the memory
    // controller's table), so the quarantine reclaim path must free every
    // one of them — zero stranded grants, zero stranded allocations.
    Schedule s{.name = "magazine-holder-never-returns"};
    s.plan.crashes = {TimeKill(kStubId, 600, Respawn::kNever)};
    s.magazine_holder = true;
    all.push_back(s);
  }
  return all;
}

struct RunOutcome {
  uint64_t events = 0;
  std::string metrics;
  std::map<std::string, std::vector<uint8_t>> acked;
  uint64_t ssd_permanent_notices_at_nic = 0;
  uint32_t outstanding_puts = 0;
  bool ssd_quarantined = false;
  bool engine_running = false;
  bool provider_gone = false;
  uint64_t stranded_allocs = 0;
  uint64_t stranded_grants = 0;
  uint64_t recovery_abandoned = 0;
  bool stub_quarantined = false;
  uint64_t stub_stranded_allocs = 0;
  uint64_t stub_stranded_grants = 0;
  uint64_t ftl_recoveries = 0;
  uint64_t gc_runs = 0;
};

// When true, every schedule runs with the batching fast paths on: grant
// magazine sizing aside, the data-plane windows and doorbell coalescing must
// not change any lifecycle outcome (only timings).
RunOutcome RunSchedule(const Schedule& sched, bool batched) {
  const sim::Duration window = sim::Duration::Micros(2);
  core::MachineConfig config;
  config.bus.restart_policy = sched.policy;
  config.crash_plan = sched.plan;
  kvs::KvsAppConfig app_config;
  if (batched) {
    config.fabric.doorbell_coalesce_window = window;
    config.fast_path.submit_batch_window = window;
    config.fast_path.completion_batch_window = window;
    config.fast_path.magazine.enabled = true;
    app_config.engine.file_client.submit_batch_window = window;
  }
  core::Machine machine(config);
  auto& memctrl = machine.AddMemoryController();
  ssddev::SmartSsdConfig ssd_config;
  ssd_config.host_auth_service = false;
  if (sched.small_ssd) {
    ssd_config.nand.dies = 2;
    ssd_config.nand.blocks_per_die = 8;
    ssd_config.nand.pages_per_block = 8;
  }
  auto& ssd = machine.AddSmartSsd(ssd_config);
  auto& nic = machine.AddSmartNic();
  EXPECT_EQ(memctrl.id().value(), kMemctrlId);
  EXPECT_EQ(ssd.id().value(), kSsdId);
  EXPECT_EQ(nic.id().value(), kNicId);
  MagazineStub* stub = nullptr;
  if (sched.magazine_holder) {
    stub = &machine.Emplace<MagazineStub>();
    EXPECT_EQ(stub->id().value(), kStubId);
  }
  ssd.ProvisionFile("kv.log", {});
  Pasid pasid = machine.NewApplication("kvs");
  auto app_owner = std::make_unique<kvs::KvsApp>(&nic, pasid);
  kvs::KvsApp* app = app_owner.get();
  nic.LoadApp(std::move(app_owner));

  RunOutcome out;
  nic.AddPeerPermanentlyFailedHook([&out](DeviceId dead) {
    if (dead.value() == kSsdId) {
      ++out.ssd_permanent_notices_at_nic;
    }
  });

  machine.Boot();

  // Stock the stub's magazine before the schedule kills it: one Alloc misses
  // and pulls a full refill batch; freeing the region recycles it locally, so
  // the magazine ends holding `refill_batch` leased regions.
  std::unique_ptr<core::BusControlClient> stub_inner;
  std::unique_ptr<core::MagazineClient> stub_magazine;
  if (stub != nullptr) {
    Pasid stub_pasid = machine.NewApplication("magstub");
    stub_inner = std::make_unique<core::BusControlClient>(stub, memctrl.id());
    core::MagazineConfig magazine;
    magazine.enabled = true;
    stub_magazine = std::make_unique<core::MagazineClient>(stub_inner.get(), magazine, stub,
                                                           memctrl.id());
    Result<VirtAddr> lease = stub_magazine->AllocSync(stub_pasid, 4 * kPageSize);
    EXPECT_TRUE(lease.ok()) << lease.status().ToString();
    if (lease.ok()) {
      EXPECT_TRUE(stub_magazine->FreeSync(stub_pasid, *lease, 4 * kPageSize).ok());
    }
    EXPECT_GT(stub_magazine->cached_regions(), 0u);
    EXPECT_GT(memctrl.AllocationsOwnedBy(stub->id()), 0u);
  }

  // Deterministic workload: one Put every 50us, spanning every crash in the
  // schedules above (quarantine completes by ~2.5ms; puts run to 4ms, so
  // post-quarantine fast-fail is exercised too).
  uint32_t outstanding = 0;
  for (int i = 0; i < 80; ++i) {
    machine.RunFor(sim::Duration::Micros(50));
    std::string key = "k" + std::to_string(i);
    std::vector<uint8_t> value(32);
    for (size_t b = 0; b < value.size(); ++b) {
      value[b] = static_cast<uint8_t>((i * 7 + b) & 0xff);
    }
    ++outstanding;
    app->engine().Put(key, value, [&out, &outstanding, key, value](Status s) {
      --outstanding;
      if (s.ok()) {
        out.acked[key] = value;
      }
    });
  }
  // Power-cut schedules append a sustained hot-key overwrite phase: eight
  // keys rewritten in rotation, so the small drive's GC must relocate live
  // pages while the crash plan cuts the rail out from under it.
  for (int i = 0; i < sched.overwrite_puts; ++i) {
    machine.RunFor(sim::Duration::Micros(20));
    std::string key = "hot" + std::to_string(i % 8);
    std::vector<uint8_t> value(48);
    for (size_t b = 0; b < value.size(); ++b) {
      value[b] = static_cast<uint8_t>((i * 13 + b) & 0xff);
    }
    ++outstanding;
    app->engine().Put(key, value, [&out, &outstanding, key, value](Status s) {
      --outstanding;
      if (s.ok()) {
        out.acked[key] = value;
      }
    });
  }
  machine.RunUntilIdle();
  // Let heartbeats, watchdog sweeps, and any in-flight supervision episode
  // play out, then drain what they scheduled.
  machine.RunFor(sim::Duration::Millis(20));
  machine.RunUntilIdle();

  out.outstanding_puts = outstanding;
  out.engine_running = app->engine().running();
  out.provider_gone = app->provider_permanently_failed();
  out.ssd_quarantined = machine.bus().supervisor().IsQuarantined(ssd.id());
  out.stranded_allocs = memctrl.AllocationsOwnedBy(ssd.id());
  out.stranded_grants = memctrl.GrantsHeldBy(ssd.id());
  out.recovery_abandoned = nic.stats().GetCounter("kvs_recovery_abandoned").value();
  if (stub != nullptr) {
    out.stub_quarantined = machine.bus().supervisor().IsQuarantined(stub->id());
    out.stub_stranded_allocs = memctrl.AllocationsOwnedBy(stub->id());
    out.stub_stranded_grants = memctrl.GrantsHeldBy(stub->id());
  }
  out.ftl_recoveries = ssd.ftl().recoveries();
  out.gc_runs = ssd.ftl().gc_runs();
  out.events = machine.simulator().events_executed();
  std::ostringstream metrics;
  machine.MetricsJson(metrics);
  out.metrics = metrics.str();

  // Acked means durable: whatever survived the schedule must read back.
  if (out.engine_running) {
    for (const auto& [key, expected] : out.acked) {
      std::optional<Result<std::vector<uint8_t>>> got;
      app->engine().Get(key, [&got](Result<std::vector<uint8_t>> r) { got = std::move(r); });
      machine.RunUntilIdle();
      EXPECT_TRUE(got.has_value()) << key;
      if (got.has_value()) {
        EXPECT_TRUE(got->ok()) << key << ": " << got->status().ToString();
        if (got->ok()) {
          EXPECT_EQ(**got, expected) << key;
        }
      }
    }
  }
  return out;
}

// Param encodes (schedule, batched): the full suite runs once with every
// fast path off and once with batching enabled — the supervised-lifecycle
// guarantees must hold identically in both machines.
class ChaosSoak : public ::testing::TestWithParam<size_t> {};

TEST_P(ChaosSoak, SurvivesCrashScheduleDeterministically) {
  const std::vector<Schedule> schedules = Schedules();
  const Schedule sched = schedules[GetParam() % schedules.size()];
  const bool batched = GetParam() >= schedules.size();
  SCOPED_TRACE(std::string(sched.name) + (batched ? " [batched]" : ""));

  RunOutcome first = RunSchedule(sched, batched);
  RunOutcome second = RunSchedule(sched, batched);

  // No Put may hang: a callback that never fires is a spinning retry loop or
  // a dropped completion.
  EXPECT_EQ(first.outstanding_puts, 0u);
  EXPECT_EQ(second.outstanding_puts, 0u);

  // Same plan, same machine -> byte-identical evolution.
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.metrics, second.metrics);
  EXPECT_EQ(first.acked, second.acked);

  EXPECT_EQ(first.ssd_quarantined, sched.expect_ssd_quarantine);
  if (sched.expect_ssd_quarantine) {
    // Exactly one terminal broadcast, nothing left behind in the memory
    // controller, and the app knows retrying is pointless.
    EXPECT_EQ(first.ssd_permanent_notices_at_nic, 1u);
    EXPECT_EQ(first.stranded_allocs, 0u);
    EXPECT_EQ(first.stranded_grants, 0u);
    // The app either learned its provider is gone (post-bring-up kill) or
    // exhausted its bounded retry budget (pre-bring-up kill) — never a live
    // retry loop against quarantined silicon.
    EXPECT_TRUE(first.provider_gone || first.recovery_abandoned > 0);
    EXPECT_FALSE(first.engine_running);
  } else {
    EXPECT_EQ(first.ssd_permanent_notices_at_nic, 0u);
    // The app must not end the schedule wedged: it either runs, or it gave
    // up after the bounded retry budget.
    EXPECT_TRUE(first.engine_running || first.recovery_abandoned > 0) << sched.name;
  }

  if (sched.magazine_holder) {
    // The magazine holder never returns: quarantined, and every leased
    // region it stockpiled reclaimed — nothing stranded in the controller.
    EXPECT_TRUE(first.stub_quarantined);
    EXPECT_EQ(first.stub_stranded_allocs, 0u);
    EXPECT_EQ(first.stub_stranded_grants, 0u);
    EXPECT_EQ(second.stub_stranded_allocs, 0u);
  }

  if (sched.expect_recovery) {
    // The drive came back by replaying its on-media journal (not a clean
    // boot): the recovery counter proves the power-loss path actually ran.
    EXPECT_GE(first.ftl_recoveries, 1u) << sched.name;
    EXPECT_EQ(first.ftl_recoveries, second.ftl_recoveries);
  }
  if (sched.expect_gc) {
    EXPECT_GT(first.gc_runs, 0u) << sched.name;
  }
}

// 14 schedules x {unbatched, batched}.
INSTANTIATE_TEST_SUITE_P(Schedules, ChaosSoak, ::testing::Range<size_t>(0, 28));

}  // namespace
}  // namespace lastcpu
