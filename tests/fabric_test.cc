// Data-plane fabric tests: DMA through IOMMU translation, cost model ordering,
// fault completion, doorbells, and MMIO-path accounting.
#include <gtest/gtest.h>

#include <vector>

#include "src/fabric/fabric.h"
#include "src/iommu/iommu.h"
#include "src/mem/physical_memory.h"
#include "src/sim/simulator.h"

namespace lastcpu::fabric {
namespace {

class FabricTest : public ::testing::Test {
 protected:
  FabricTest()
      : memory_(8 << 20),
        fabric_(&simulator_, &memory_),
        nic_iommu_(DeviceId(1)),
        ssd_iommu_(DeviceId(2)),
        key_(iommu::ProgrammingKey::CreateForTesting()) {
    fabric_.AttachDevice(DeviceId(1), &nic_iommu_);
    fabric_.AttachDevice(DeviceId(2), &ssd_iommu_);
  }

  // Maps `pages` consecutive pages for (device, pasid) at vpage_base ->
  // pframe_base.
  void MapRange(iommu::Iommu& iommu, Pasid pasid, uint64_t vpage_base, uint64_t pframe_base,
                uint64_t pages, Access access = Access::kReadWrite) {
    for (uint64_t i = 0; i < pages; ++i) {
      ASSERT_TRUE(iommu.Map(key_, pasid, vpage_base + i, pframe_base + i, access).ok());
    }
  }

  sim::Simulator simulator_;
  mem::PhysicalMemory memory_;
  Fabric fabric_;
  iommu::Iommu nic_iommu_;
  iommu::Iommu ssd_iommu_;
  iommu::ProgrammingKey key_;
};

TEST_F(FabricTest, DmaWriteThenReadRoundTrips) {
  MapRange(nic_iommu_, Pasid(1), 0x10, 0x20, 4);
  std::vector<uint8_t> data(10000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7);
  }
  bool wrote = false;
  fabric_.DmaWrite(DeviceId(1), Pasid(1), VirtAddr(0x10 << kPageShift), data, [&](Status s) {
    ASSERT_TRUE(s.ok());
    wrote = true;
  });
  EXPECT_FALSE(wrote);  // asynchronous
  simulator_.Run();
  EXPECT_TRUE(wrote);

  bool read = false;
  fabric_.DmaRead(DeviceId(1), Pasid(1), VirtAddr(0x10 << kPageShift), data.size(),
                  [&](Result<std::vector<uint8_t>> r) {
                    ASSERT_TRUE(r.ok());
                    EXPECT_EQ(*r, data);
                    read = true;
                  });
  simulator_.Run();
  EXPECT_TRUE(read);
}

TEST_F(FabricTest, SharedMappingLetsTwoDevicesSeeSameMemory) {
  // NIC writes through its mapping; SSD reads the same frames through its own.
  MapRange(nic_iommu_, Pasid(1), 0x10, 0x40, 1);
  MapRange(ssd_iommu_, Pasid(1), 0x80, 0x40, 1, Access::kRead);
  std::vector<uint8_t> data{9, 8, 7, 6};
  fabric_.DmaWrite(DeviceId(1), Pasid(1), VirtAddr(0x10 << kPageShift), data, [](Status s) {
    ASSERT_TRUE(s.ok());
  });
  simulator_.Run();
  std::vector<uint8_t> seen;
  fabric_.DmaRead(DeviceId(2), Pasid(1), VirtAddr(0x80 << kPageShift), 4,
                  [&](Result<std::vector<uint8_t>> r) {
                    ASSERT_TRUE(r.ok());
                    seen = *r;
                  });
  simulator_.Run();
  EXPECT_EQ(seen, data);
}

TEST_F(FabricTest, DmaToUnmappedAddressFails) {
  bool completed = false;
  fabric_.DmaWrite(DeviceId(1), Pasid(1), VirtAddr(0x999 << kPageShift), {1, 2, 3},
                   [&](Status s) {
                     EXPECT_FALSE(s.ok());
                     completed = true;
                   });
  simulator_.Run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(fabric_.stats().GetCounter("dma_faults").value(), 1u);
}

TEST_F(FabricTest, DmaRespectsWritePermission) {
  MapRange(nic_iommu_, Pasid(1), 0x10, 0x20, 1, Access::kRead);
  bool completed = false;
  fabric_.DmaWrite(DeviceId(1), Pasid(1), VirtAddr(0x10 << kPageShift), {1}, [&](Status s) {
    EXPECT_FALSE(s.ok());
    completed = true;
  });
  simulator_.Run();
  EXPECT_TRUE(completed);
}

TEST_F(FabricTest, LargerTransfersTakeLonger) {
  MapRange(nic_iommu_, Pasid(1), 0, 0, 300);
  sim::SimTime small_done;
  sim::SimTime large_done;
  fabric_.DmaWrite(DeviceId(1), Pasid(1), VirtAddr(0), std::vector<uint8_t>(64),
                   [&](Status) { small_done = simulator_.Now(); });
  simulator_.Run();
  sim::SimTime base = simulator_.Now();
  fabric_.DmaWrite(DeviceId(1), Pasid(1), VirtAddr(0), std::vector<uint8_t>(1 << 20),
                   [&](Status) { large_done = simulator_.Now(); });
  simulator_.Run();
  EXPECT_GT((large_done - base).nanos(), small_done.nanos());
}

TEST_F(FabricTest, LinkSerializesConcurrentTransfers) {
  MapRange(nic_iommu_, Pasid(1), 0, 0, 600);
  // Two 1MiB DMAs issued back to back on one link: the second must finish
  // roughly twice as late as the first.
  sim::SimTime first;
  sim::SimTime second;
  fabric_.DmaWrite(DeviceId(1), Pasid(1), VirtAddr(0), std::vector<uint8_t>(1 << 20),
                   [&](Status) { first = simulator_.Now(); });
  fabric_.DmaWrite(DeviceId(1), Pasid(1), VirtAddr(1 << 20), std::vector<uint8_t>(1 << 20),
                   [&](Status) { second = simulator_.Now(); });
  simulator_.Run();
  EXPECT_GT(second.nanos(), first.nanos() * 18 / 10);
}

TEST_F(FabricTest, MmioReadWriteU64) {
  MapRange(nic_iommu_, Pasid(1), 0x10, 0x20, 1);
  VirtAddr va(0x10 << kPageShift);
  AccessResult w = fabric_.WriteU64(DeviceId(1), Pasid(1), va, 0xCAFEBABE12345678ULL);
  ASSERT_TRUE(w.status.ok());
  EXPECT_GT(w.cost.nanos(), 0u);
  uint64_t value = 0;
  AccessResult r = fabric_.ReadU64(DeviceId(1), Pasid(1), va, &value);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(value, 0xCAFEBABE12345678ULL);
}

TEST_F(FabricTest, MmioSpansPageBoundary) {
  MapRange(nic_iommu_, Pasid(1), 0x10, 0x20, 2);
  // Write 8 bytes straddling the page boundary.
  VirtAddr va((0x10 << kPageShift) + kPageSize - 4);
  ASSERT_TRUE(fabric_.WriteU64(DeviceId(1), Pasid(1), va, 0x1122334455667788ULL).status.ok());
  uint64_t value = 0;
  ASSERT_TRUE(fabric_.ReadU64(DeviceId(1), Pasid(1), va, &value).status.ok());
  EXPECT_EQ(value, 0x1122334455667788ULL);
}

TEST_F(FabricTest, MmioFaultReturnsError) {
  uint64_t value = 0;
  AccessResult r = fabric_.ReadU64(DeviceId(1), Pasid(1), VirtAddr(0x5000), &value);
  EXPECT_FALSE(r.status.ok());
}

TEST_F(FabricTest, DoorbellDeliversAsynchronously) {
  DeviceId from_seen;
  uint64_t value_seen = 0;
  int rings = 0;
  fabric_.SetDoorbellHandler(DeviceId(2), [&](DeviceId from, uint64_t value) {
    from_seen = from;
    value_seen = value;
    ++rings;
  });
  fabric_.RingDoorbell(DeviceId(1), DeviceId(2), 77);
  EXPECT_EQ(rings, 0);  // not yet delivered
  simulator_.Run();
  EXPECT_EQ(rings, 1);
  EXPECT_EQ(from_seen, DeviceId(1));
  EXPECT_EQ(value_seen, 77u);
}

TEST_F(FabricTest, DoorbellToUnattachedDeviceIsDropped) {
  fabric_.RingDoorbell(DeviceId(1), DeviceId(99), 1);
  simulator_.Run();
  EXPECT_EQ(fabric_.stats().GetCounter("doorbells_dropped").value(), 1u);
}

TEST_F(FabricTest, DetachedDeviceDropsInFlightDoorbell) {
  int rings = 0;
  fabric_.SetDoorbellHandler(DeviceId(2), [&](DeviceId, uint64_t) { ++rings; });
  fabric_.RingDoorbell(DeviceId(1), DeviceId(2), 1);
  fabric_.DetachDevice(DeviceId(2));  // dies before delivery
  simulator_.Run();
  EXPECT_EQ(rings, 0);
}

TEST_F(FabricTest, StatsAccumulate) {
  MapRange(nic_iommu_, Pasid(1), 0, 0, 4);
  fabric_.DmaWrite(DeviceId(1), Pasid(1), VirtAddr(0), std::vector<uint8_t>(100), [](Status) {});
  fabric_.DmaRead(DeviceId(1), Pasid(1), VirtAddr(0), 50, [](Result<std::vector<uint8_t>>) {});
  simulator_.Run();
  EXPECT_EQ(fabric_.stats().GetCounter("dma_writes").value(), 1u);
  EXPECT_EQ(fabric_.stats().GetCounter("dma_bytes_written").value(), 100u);
  EXPECT_EQ(fabric_.stats().GetCounter("dma_reads").value(), 1u);
  EXPECT_EQ(fabric_.stats().GetCounter("dma_bytes_read").value(), 50u);
}

// --- Scatter-gather DMA (the data-plane batching fast path) ---------------

TEST_F(FabricTest, DmaWritevScattersEverySegmentInOneTransfer) {
  MapRange(nic_iommu_, Pasid(1), 0x10, 0x20, 8);
  std::vector<DmaWriteSegment> segments;
  for (uint64_t i = 0; i < 3; ++i) {
    std::vector<uint8_t> data(200, static_cast<uint8_t>(0x30 + i));
    // Non-contiguous destinations: one segment per page, pages apart.
    segments.push_back({VirtAddr((0x10 + 2 * i) << kPageShift), std::move(data)});
  }
  bool wrote = false;
  fabric_.DmaWritev(DeviceId(1), Pasid(1), segments, [&](Status s) {
    ASSERT_TRUE(s.ok());
    wrote = true;
  });
  simulator_.Run();
  ASSERT_TRUE(wrote);
  // One modeled transfer, three accounted segments.
  EXPECT_EQ(fabric_.stats().GetCounter("dma_writes").value(), 1u);
  EXPECT_EQ(fabric_.stats().GetCounter("dma_sg_segments").value(), 3u);
  EXPECT_EQ(fabric_.stats().GetCounter("dma_bytes_written").value(), 600u);

  // Every segment landed where its own translation pointed.
  for (uint64_t i = 0; i < 3; ++i) {
    std::vector<uint8_t> seen;
    fabric_.DmaRead(DeviceId(1), Pasid(1), VirtAddr((0x10 + 2 * i) << kPageShift), 200,
                    [&](Result<std::vector<uint8_t>> r) {
                      ASSERT_TRUE(r.ok());
                      seen = *r;
                    });
    simulator_.Run();
    EXPECT_EQ(seen, std::vector<uint8_t>(200, static_cast<uint8_t>(0x30 + i))) << i;
  }
}

TEST_F(FabricTest, DmaReadvReturnsOneBufferPerSegmentInOrder) {
  MapRange(nic_iommu_, Pasid(1), 0x10, 0x20, 4);
  for (uint64_t i = 0; i < 3; ++i) {
    fabric_.DmaWrite(DeviceId(1), Pasid(1), VirtAddr(0x10 << kPageShift) + 64 * i,
                     std::vector<uint8_t>(64, static_cast<uint8_t>(i + 1)), [](Status s) {
                       ASSERT_TRUE(s.ok());
                     });
    simulator_.Run();
  }
  std::vector<DmaReadSegment> segments = {
      {VirtAddr(0x10 << kPageShift) + 128, 64},  // deliberately out of order
      {VirtAddr(0x10 << kPageShift), 64},
      {VirtAddr(0x10 << kPageShift) + 64, 64},
  };
  std::vector<std::vector<uint8_t>> buffers;
  fabric_.DmaReadv(DeviceId(1), Pasid(1), segments,
                   [&](Result<std::vector<std::vector<uint8_t>>> r) {
                     ASSERT_TRUE(r.ok());
                     buffers = std::move(*r);
                   });
  simulator_.Run();
  ASSERT_EQ(buffers.size(), 3u);
  EXPECT_EQ(buffers[0], std::vector<uint8_t>(64, 3));
  EXPECT_EQ(buffers[1], std::vector<uint8_t>(64, 1));
  EXPECT_EQ(buffers[2], std::vector<uint8_t>(64, 2));
  EXPECT_EQ(fabric_.stats().GetCounter("dma_reads").value(), 1u);  // one gather, not three reads
  EXPECT_EQ(fabric_.stats().GetCounter("dma_sg_segments").value(), 3u);
}

TEST_F(FabricTest, DmaWritevFaultInAnySegmentFailsTheWholeTransfer) {
  MapRange(nic_iommu_, Pasid(1), 0x10, 0x20, 1);
  std::vector<uint8_t> marker(16, 0xAA);
  fabric_.DmaWrite(DeviceId(1), Pasid(1), VirtAddr(0x10 << kPageShift), marker, [](Status s) {
    ASSERT_TRUE(s.ok());
  });
  simulator_.Run();

  std::vector<DmaWriteSegment> segments = {
      {VirtAddr(0x10 << kPageShift), std::vector<uint8_t>(16, 0xBB)},
      {VirtAddr(0x999 << kPageShift), std::vector<uint8_t>(16, 0xCC)},  // unmapped
  };
  bool completed = false;
  fabric_.DmaWritev(DeviceId(1), Pasid(1), segments, [&](Status s) {
    EXPECT_FALSE(s.ok());
    completed = true;
  });
  simulator_.Run();
  ASSERT_TRUE(completed);
  EXPECT_EQ(fabric_.stats().GetCounter("dma_faults").value(), 1u);

  // Pre-validation means the mapped segment was NOT partially written.
  std::vector<uint8_t> seen;
  fabric_.DmaRead(DeviceId(1), Pasid(1), VirtAddr(0x10 << kPageShift), 16,
                  [&](Result<std::vector<uint8_t>> r) {
                    ASSERT_TRUE(r.ok());
                    seen = *r;
                  });
  simulator_.Run();
  EXPECT_EQ(seen, marker);
}

// --- Doorbell coalescing ---------------------------------------------------

TEST_F(FabricTest, DoorbellBatcherWithZeroWindowPassesEveryRingThrough) {
  int rings = 0;
  fabric_.SetDoorbellHandler(DeviceId(2), [&](DeviceId, uint64_t) { ++rings; });
  DoorbellBatcher bells(&fabric_, DeviceId(1));
  for (int i = 0; i < 5; ++i) {
    bells.Ring(DeviceId(2), 7);
  }
  simulator_.Run();
  EXPECT_EQ(rings, 5);
  EXPECT_EQ(bells.coalesced(), 0u);
  EXPECT_EQ(fabric_.stats().GetCounter("doorbells").value(), 5u);
}

TEST_F(FabricTest, DoorbellBatcherCoalescesBurstsToAtMostTwo) {
  FabricConfig config;
  config.doorbell_coalesce_window = sim::Duration::Micros(2);
  Fabric fabric(&simulator_, &memory_, config);
  iommu::Iommu iommu(DeviceId(1));
  fabric.AttachDevice(DeviceId(1), &iommu);
  fabric.AttachDevice(DeviceId(2), &ssd_iommu_);
  int rings = 0;
  fabric.SetDoorbellHandler(DeviceId(2), [&](DeviceId, uint64_t) { ++rings; });

  DoorbellBatcher bells(&fabric, DeviceId(1));
  for (int i = 0; i < 10; ++i) {
    bells.Ring(DeviceId(2), 7);
  }
  simulator_.Run();
  // Leading edge immediately, trailing edge at window close: exactly two.
  // The 9 rings after the leading edge all merge into the one trailing bell.
  EXPECT_EQ(rings, 2);
  EXPECT_EQ(bells.coalesced(), 9u);
  EXPECT_EQ(fabric.stats().GetCounter("doorbells").value(), 2u);

  // Distinct (target, value) keys do not merge with each other.
  rings = 0;
  bells.Ring(DeviceId(2), 1);
  bells.Ring(DeviceId(2), 2);
  simulator_.Run();
  EXPECT_EQ(rings, 2);
}

TEST_F(FabricTest, DoorbellBatcherCancelPendingDropsTrailingEdge) {
  FabricConfig config;
  config.doorbell_coalesce_window = sim::Duration::Micros(2);
  Fabric fabric(&simulator_, &memory_, config);
  iommu::Iommu iommu(DeviceId(1));
  fabric.AttachDevice(DeviceId(1), &iommu);
  fabric.AttachDevice(DeviceId(2), &ssd_iommu_);
  int rings = 0;
  fabric.SetDoorbellHandler(DeviceId(2), [&](DeviceId, uint64_t) { ++rings; });

  DoorbellBatcher bells(&fabric, DeviceId(1));
  for (int i = 0; i < 4; ++i) {
    bells.Ring(DeviceId(2), 9);
  }
  bells.CancelPending();
  simulator_.Run();
  EXPECT_EQ(rings, 1);  // only the leading edge went out
}

}  // namespace
}  // namespace lastcpu::fabric
