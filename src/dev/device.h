// Device: base class for every self-managing hardware component.
//
// A device (paper Sec. 2.1) manages its own internal state, exposes services,
// multiplexes them into isolated instances, discovers and consumes services
// from other devices over the system bus, and handles its own errors —
// including IOMMU faults delivered to it (Sec. 4). The CPU appears nowhere.
//
// Lifecycle: PoweredOff -> (PowerOn) -> SelfTest -> Alive (announces itself
// and its services on the bus) -> [Failed -> reset pulse -> SelfTest -> ...].
#ifndef SRC_DEV_DEVICE_H_
#define SRC_DEV_DEVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/bus/system_bus.h"
#include "src/dev/rpc.h"
#include "src/fabric/fabric.h"
#include "src/iommu/iommu.h"
#include "src/proto/message.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"

namespace lastcpu::dev {

class Service;

// Wiring shared by all devices in one machine.
struct DeviceContext {
  sim::Simulator* simulator = nullptr;
  bus::SystemBus* bus = nullptr;
  fabric::Fabric* fabric = nullptr;
  sim::TraceLog* trace = nullptr;  // optional
};

struct DeviceConfig {
  sim::Duration self_test_duration = sim::Duration::Micros(50);
  // Modeled per-message handling cost of the device's control firmware.
  sim::Duration control_processing = sim::Duration::Nanos(200);
  fabric::LinkConfig link;
  iommu::TlbConfig tlb;
  sim::Duration request_timeout = sim::Duration::Millis(100);
  // Liveness-proof period for the bus watchdog. Zero disables heartbeats.
  sim::Duration heartbeat_period = sim::Duration::Zero();
};

class Device {
 public:
  enum class State : uint8_t { kPoweredOff, kSelfTest, kAlive, kFailed };

  Device(DeviceId id, std::string name, const DeviceContext& context, DeviceConfig config = {});
  virtual ~Device();
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  DeviceId id() const { return id_; }
  const std::string& name() const { return name_; }
  State state() const { return state_; }
  iommu::Iommu& iommu() { return iommu_; }

  // Powers the device: runs self-test, then announces itself alive on the
  // bus with every registered service, then calls OnAlive().
  void PowerOn();

  // Fault injection: the device dies. It stops processing messages; the bus
  // must be told separately (a real bus would notice via timeouts).
  void InjectFailure();

  // Fault injection: the device's power rail drops. OnPowerLoss() runs first
  // so volatile device state (caches, queues, in-flight media ops) is torn
  // down the way real silicon loses it, then the device fails as above. A
  // later reset pulse boots it back through recovery (see OnReset overrides).
  void InjectPowerLoss();

  // Registers a service before (or after) PowerOn. If after, callers should
  // re-announce (services are also announced lazily via discovery).
  void AddService(std::unique_ptr<Service> service);
  Service* FindServiceByName(const std::string& name);

  sim::StatsRegistry& stats() { return stats_; }

  // --- client-side helpers (consuming other devices' services) -------------

  // The device's transaction layer: request/response correlation, deadlines,
  // retries, discovery, and abort-on-peer-failure all live here.
  RpcEndpoint& rpc() { return rpc_; }

  // Fire-and-forget message.
  void SendOneWay(DeviceId dst, proto::Payload payload);

  // Registers a callback invoked after the device's own failure handling
  // whenever the bus declares a peer failed. Returns a token for removal;
  // helpers with a shorter lifetime than the device (e.g. a FileClient the
  // app replaces) must remove their hook before dying.
  using PeerFailedHook = std::function<void(DeviceId)>;
  uint64_t AddPeerFailedHook(PeerFailedHook hook);
  void RemovePeerFailedHook(uint64_t token);

  // Same, but for the terminal DevicePermanentlyFailed notice: the peer was
  // quarantined by the supervisor and will never come back, so consumers
  // should stop retrying and surface unavailability instead of waiting for a
  // recovery that cannot happen.
  uint64_t AddPeerPermanentlyFailedHook(PeerFailedHook hook);
  void RemovePeerPermanentlyFailedHook(uint64_t token);

  // Observer of this device's lifecycle state transitions (PoweredOff ->
  // SelfTest -> Alive -> Failed -> ...). Used by the crash-schedule harness
  // to time kills relative to self-test; nullptr clears it.
  using StateObserver = std::function<void(State)>;
  void SetStateObserver(StateObserver observer) { state_observer_ = std::move(observer); }

  // Substrate access for service/client helpers hosted on this device.
  sim::Simulator* simulator() { return context_.simulator; }
  fabric::Fabric* fabric() { return context_.fabric; }
  const DeviceConfig& config() const { return config_; }

  // This device's tracer and the causal context of the message currently
  // being handled (span 0 outside a handler). Helpers hosted on the device —
  // services, control clients, fabric calls — use this to parent their own
  // trace activity to the in-flight operation.
  sim::Tracer& tracer() { return tracer_; }
  sim::TraceContext ActiveTraceContext() const { return sim::TraceContext{current_span_, 0}; }

  // Sends a response correlated with `request`.
  void Reply(const proto::Message& request, proto::Payload payload);
  void ReplyError(const proto::Message& request, Status status);

 protected:
  // --- hooks for concrete devices -------------------------------------------

  // Called when the device reaches Alive (load applications here).
  virtual void OnAlive() {}
  // Unhandled message kinds land here.
  virtual void OnMessage(const proto::Message& message);
  // Reset line pulsed by the bus: default re-runs self-test and re-announces.
  virtual void OnReset();
  // The power rail is dropping (InjectPowerLoss). Discard volatile state and
  // fail in-flight work; runs before the generic failure handling.
  virtual void OnPowerLoss() {}
  // Another device failed; drop instances it held, recover app logic.
  virtual void OnPeerFailed(DeviceId device);
  // Another device was quarantined (permanently failed): release anything
  // still tied to it and stop expecting it back.
  virtual void OnPeerPermanentlyFailed(DeviceId device);
  // An application is being torn down.
  virtual void OnTeardown(Pasid pasid);
  // IOMMU fault delivered to this device (Sec. 4 error handling).
  virtual void OnFault(const iommu::FaultInfo& fault);
  // Doorbell rung by another device on the data plane.
  virtual void OnDoorbell(DeviceId from, uint64_t value) {
    (void)from;
    (void)value;
  }
  // Notify message on the control plane.
  virtual void OnNotify(const proto::Message& message) { (void)message; }

  // Announce (again) on the bus; used after reset.
  void AnnounceAlive();

  void TraceEvent(const std::string& event, const std::string& detail = "");

  bus::SystemBus* bus_handle() { return context_.bus; }

 private:
  // Receives every bus message; applies firmware processing delay then
  // dispatches.
  void ReceiveFromBus(proto::Message message);
  // Dispatches under handling span `span` (opened at arrival, closed when
  // dispatch completes, so it covers firmware queue wait + processing).
  void Dispatch(const proto::Message& message, sim::SpanId span);

  // All outbound control messages funnel here: stamps the active causal
  // context and a fresh flow id, then hands the message to the bus port.
  void SendOnBus(proto::Message message);

  // Periodic heartbeat to the bus watchdog (armed when configured).
  void SendHeartbeat();

  // All lifecycle transitions funnel here so the state observer sees each one.
  void SetState(State next);

  // Built-in dispatch for the service protocol.
  void HandleDiscover(const proto::Message& message);
  void HandleOpen(const proto::Message& message);
  void HandleClose(const proto::Message& message);

  // --- at-most-once replay guard -------------------------------------------
  // The RPC layer may retransmit, and the interconnect may duplicate; the
  // server side dedups by (requester, request id) over a bounded window so
  // non-idempotent handlers (alloc, open) never execute twice. A duplicate of
  // an already-answered request re-sends the cached response; a duplicate of
  // one still being handled is dropped.
  //
  // Returns false when the message is a duplicate and must not be dispatched.
  bool RegisterRequest(const proto::Message& message);
  // Remembers the response for potential replay (called from Reply paths).
  void CacheResponse(const proto::Message& response);

  DeviceId id_;
  std::string name_;
  DeviceContext context_;
  DeviceConfig config_;
  State state_ = State::kPoweredOff;
  iommu::Iommu iommu_;
  bus::BusPort* port_ = nullptr;
  std::vector<std::unique_ptr<Service>> services_;
  // Instance routing: which service owns each open instance.
  std::map<InstanceId, Service*> instance_owner_;
  // Replay guard state: key -> cached response (empty until answered), plus
  // FIFO eviction order bounding the window.
  using ReplayKey = std::pair<DeviceId, RequestId>;
  static constexpr size_t kReplayWindow = 256;
  std::map<ReplayKey, std::optional<proto::Message>> replay_cache_;
  std::deque<ReplayKey> replay_order_;
  // App-level peer-failure subscribers (token -> hook); tokens are shared
  // across both maps so removal needs no kind argument.
  std::map<uint64_t, PeerFailedHook> peer_failed_hooks_;
  std::map<uint64_t, PeerFailedHook> peer_permanently_failed_hooks_;
  uint64_t next_hook_token_ = 1;
  StateObserver state_observer_;
  // Serializes control-message handling on the device's firmware engine.
  sim::SimTime firmware_busy_until_;
  sim::StatsRegistry stats_;
  sim::Tracer tracer_;
  // Per-message stats, resolved once: registry references are stable for the
  // device's lifetime, so the receive/send paths pay plain increments instead
  // of name lookups.
  sim::Counter& messages_received_ = stats_.GetCounter("messages_received");
  sim::Counter& heartbeats_sent_ = stats_.GetCounter("heartbeats_sent");
  sim::Counter& requests_sent_ = stats_.GetCounter("requests_sent");
  // Span of the message currently being dispatched (0 outside a handler);
  // the ambient causal context stamped onto outbound messages.
  sim::SpanId current_span_ = 0;
  // Declared last: aborts whatever is still in flight before the rest of the
  // device is torn down. The endpoint reaches into the device for transport,
  // tracing, and stats.
  friend class RpcEndpoint;
  RpcEndpoint rpc_{this};
};

}  // namespace lastcpu::dev

#endif  // SRC_DEV_DEVICE_H_
