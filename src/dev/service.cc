#include "src/dev/service.h"

#include <utility>
#include <vector>

namespace lastcpu::dev {

bool Service::Matches(const proto::DiscoverRequest& query) const {
  return query.type == descriptor_.type;
}

Result<InstanceId> Service::CreateInstance(DeviceId client, Pasid pasid, std::string resource) {
  if (descriptor_.max_instances != 0 && instances_.size() >= descriptor_.max_instances) {
    return ResourceExhausted("service '" + descriptor_.name + "' instance limit reached");
  }
  InstanceId id(next_instance_++);
  instances_.emplace(id, ServiceInstance{id, client, pasid, std::move(resource)});
  return id;
}

std::optional<ServiceInstance> Service::FindInstance(InstanceId instance) const {
  auto it = instances_.find(instance);
  if (it == instances_.end()) {
    return std::nullopt;
  }
  return it->second;
}

Status Service::Close(InstanceId instance) {
  auto it = instances_.find(instance);
  if (it == instances_.end()) {
    return NotFound("no such instance");
  }
  ServiceInstance copy = it->second;
  instances_.erase(it);
  OnInstanceClosed(copy);
  return OkStatus();
}

void Service::TeardownPasid(Pasid pasid) {
  std::vector<InstanceId> doomed;
  for (const auto& [id, instance] : instances_) {
    if (instance.pasid == pasid) {
      doomed.push_back(id);
    }
  }
  for (InstanceId id : doomed) {
    (void)Close(id);
  }
}

void Service::TeardownClient(DeviceId client) {
  std::vector<InstanceId> doomed;
  for (const auto& [id, instance] : instances_) {
    if (instance.client == client) {
      doomed.push_back(id);
    }
  }
  for (InstanceId id : doomed) {
    (void)Close(id);
  }
}

}  // namespace lastcpu::dev
