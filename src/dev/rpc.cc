#include "src/dev/rpc.h"

#include <utility>

#include "src/base/check.h"
#include "src/dev/device.h"

namespace lastcpu::dev {

RpcEndpoint::RpcEndpoint(Device* device) : device_(device) {
  LASTCPU_CHECK(device != nullptr, "rpc endpoint needs a host device");
}

RpcEndpoint::~RpcEndpoint() {
  // Process teardown, not simulated failure: cancel timers without firing
  // callbacks (their captures may already be destroyed).
  for (auto& [id, transaction] : transactions_) {
    device_->simulator()->Cancel(transaction.timer);
  }
  transactions_.clear();
}

RequestId RpcEndpoint::NextRequestId() {
  // Device id in the high bits keeps ids globally unique across devices.
  return RequestId((static_cast<uint64_t>(device_->id().value()) << 40) | next_request_++);
}

sim::Duration RpcEndpoint::AttemptTimeout(const RpcOptions& options) const {
  return options.timeout > sim::Duration::Zero() ? options.timeout
                                                 : device_->config().request_timeout;
}

void RpcEndpoint::Transmit(RequestId id, const proto::Payload& payload, DeviceId dst,
                           sim::SpanId span) {
  proto::Message message;
  message.dst = dst;
  message.request_id = id;
  message.payload = payload;
  // Send under the transaction's originating span, so retransmissions fired
  // from timer context keep their causal parent.
  sim::SpanId saved = device_->current_span_;
  device_->current_span_ = span;
  device_->SendOnBus(std::move(message));
  device_->current_span_ = saved;
}

RequestId RpcEndpoint::Call(DeviceId dst, proto::Payload payload, RpcOptions options,
                            RawCallback done) {
  LASTCPU_CHECK(done != nullptr, "rpc call without completion callback");
  if (options.max_attempts == 0) {
    options.max_attempts = 1;
  }
  RequestId id = NextRequestId();
  Transaction transaction;
  transaction.dst = dst;
  transaction.options = options;
  transaction.span = device_->current_span_;
  transaction.callback = std::move(done);
  if (options.max_attempts > 1) {
    transaction.resend = payload;
  }
  transaction.timer =
      device_->simulator()->Schedule(AttemptTimeout(options), [this, id] { OnDeadline(id); });
  transactions_.emplace(id, std::move(transaction));
  Transmit(id, payload, dst, device_->current_span_);
  device_->requests_sent_.Increment();
  return id;
}

void RpcEndpoint::Discover(proto::ServiceType type, const std::string& resource,
                           sim::Duration window, DiscoveryCallback on_done) {
  LASTCPU_CHECK(on_done != nullptr, "discover without callback");
  // The discovery window is one causal span: the broadcast goes out under it,
  // and the continuation runs under it, so whatever the caller does with the
  // results (open, alloc, ...) chains to this span.
  sim::SpanId span = device_->tracer_.BeginSpan("Discover", device_->current_span_, resource);
  RequestId id = NextRequestId();
  Transaction transaction;
  transaction.dst = kBroadcastDevice;
  transaction.discovery = true;
  transaction.span = span;
  transaction.on_discovery = std::move(on_done);
  transaction.timer =
      device_->simulator()->Schedule(window, [this, id] { FinishDiscovery(id); });
  transactions_.emplace(id, std::move(transaction));
  Transmit(id, proto::DiscoverRequest{type, resource}, kBroadcastDevice, span);
  device_->stats_.GetCounter("discoveries").Increment();
}

void RpcEndpoint::OnDeadline(RequestId id) {
  auto it = transactions_.find(id);
  if (it == transactions_.end()) {
    return;
  }
  Transaction& transaction = it->second;
  if (transaction.attempt >= transaction.options.max_attempts) {
    device_->stats_.GetCounter("request_timeouts").Increment();
    Complete(id, TimedOut("request to device " + std::to_string(transaction.dst.value()) +
                          " timed out after " + std::to_string(transaction.attempt) +
                          " attempt(s)"));
    return;
  }
  // Exponential backoff: wait, then retransmit under a fresh deadline.
  uint32_t shift = transaction.attempt - 1 < 16 ? transaction.attempt - 1 : 16;
  sim::Duration wait = transaction.options.backoff * (uint64_t{1} << shift);
  transaction.timer = device_->simulator()->Schedule(wait, [this, id] { Retransmit(id); });
}

void RpcEndpoint::Retransmit(RequestId id) {
  auto it = transactions_.find(id);
  if (it == transactions_.end()) {
    return;
  }
  Transaction& transaction = it->second;
  ++transaction.attempt;
  device_->stats_.GetCounter("request_retries").Increment();
  transaction.timer = device_->simulator()->Schedule(AttemptTimeout(transaction.options),
                                                     [this, id] { OnDeadline(id); });
  // Same request id on the wire: a late response to the original attempt
  // completes this transaction, and the extra response is absorbed as an
  // orphan instead of completing a stranger's call.
  Transmit(id, *transaction.resend, transaction.dst, transaction.span);
}

bool RpcEndpoint::HandleResponse(const proto::Message& message) {
  auto it = transactions_.find(message.request_id);
  if (it == transactions_.end()) {
    return false;
  }
  if (it->second.discovery) {
    // Discovery collectors stay pending for their whole window.
    if (message.Is<proto::DiscoverResponse>()) {
      it->second.found.push_back(message.As<proto::DiscoverResponse>().descriptor);
      return true;
    }
    return false;
  }
  if (message.Is<proto::ErrorResponse>()) {
    const auto& error = message.As<proto::ErrorResponse>();
    Complete(message.request_id, Status(error.code, error.message));
    return true;
  }
  Complete(message.request_id, message);
  return true;
}

void RpcEndpoint::Complete(RequestId id, Result<proto::Message> result) {
  auto it = transactions_.find(id);
  if (it == transactions_.end()) {
    return;
  }
  Transaction transaction = std::move(it->second);
  transactions_.erase(it);
  device_->simulator()->Cancel(transaction.timer);
  if (transaction.discovery) {
    // An aborted window closes early with whatever was collected.
    sim::SpanId saved = device_->current_span_;
    device_->current_span_ = transaction.span;
    transaction.on_discovery(std::move(transaction.found));
    device_->current_span_ = saved;
    device_->tracer_.EndSpan(transaction.span);
    return;
  }
  transaction.callback(std::move(result));
}

void RpcEndpoint::FinishDiscovery(RequestId id) {
  auto it = transactions_.find(id);
  if (it == transactions_.end()) {
    return;
  }
  Transaction transaction = std::move(it->second);
  transactions_.erase(it);
  sim::SpanId saved = device_->current_span_;
  device_->current_span_ = transaction.span;
  transaction.on_discovery(std::move(transaction.found));
  device_->current_span_ = saved;
  device_->tracer_.EndSpan(transaction.span);
}

void RpcEndpoint::Abort(RequestId id, Status reason) {
  LASTCPU_CHECK(!reason.ok(), "abort needs a non-OK reason");
  if (transactions_.contains(id)) {
    device_->stats_.GetCounter("requests_aborted").Increment();
  }
  Complete(id, std::move(reason));
}

void RpcEndpoint::AbortPeer(DeviceId peer, Status reason) {
  LASTCPU_CHECK(!reason.ok(), "abort needs a non-OK reason");
  // Collect first: completions may start new transactions.
  std::vector<RequestId> doomed;
  for (const auto& [id, transaction] : transactions_) {
    if (!transaction.discovery && transaction.dst == peer) {
      doomed.push_back(id);
    }
  }
  for (RequestId id : doomed) {
    device_->stats_.GetCounter("requests_aborted").Increment();
    Complete(id, reason);
  }
}

void RpcEndpoint::AbortAll(Status reason) {
  LASTCPU_CHECK(!reason.ok(), "abort needs a non-OK reason");
  std::vector<RequestId> doomed;
  doomed.reserve(transactions_.size());
  for (const auto& [id, transaction] : transactions_) {
    doomed.push_back(id);
  }
  for (RequestId id : doomed) {
    if (transactions_.contains(id)) {
      device_->stats_.GetCounter("requests_aborted").Increment();
      Complete(id, reason);
    }
  }
}

}  // namespace lastcpu::dev
