#include "src/dev/loader_service.h"

#include <utility>

namespace lastcpu::dev {

LoaderService::LoaderService(DeviceId provider, std::function<bool(uint64_t)> validate_token)
    : Service(proto::ServiceDescriptor{provider, proto::ServiceType::kLoader, "loader", 1}),
      validate_token_(std::move(validate_token)) {}

Result<proto::OpenResponse> LoaderService::Open(DeviceId client,
                                                const proto::OpenRequest& request) {
  (void)client;
  (void)request;
  return Unimplemented("loader accepts LoadImage messages, not open");
}

std::optional<Result<proto::Payload>> LoaderService::HandleMessage(
    const proto::Message& message) {
  if (!message.Is<proto::LoadImage>()) {
    return std::nullopt;
  }
  auto loaded = HandleLoad(message.As<proto::LoadImage>());
  if (!loaded.ok()) {
    return Result<proto::Payload>(loaded.status());
  }
  return Result<proto::Payload>(proto::Payload(*loaded));
}

Result<proto::LoadImageResponse> LoaderService::HandleLoad(const proto::LoadImage& load) {
  if (load.app_name.empty()) {
    return InvalidArgument("image without a name");
  }
  if (load.image.empty()) {
    return InvalidArgument("empty image");
  }
  if (validate_token_ && !validate_token_(load.auth_token)) {
    return PermissionDenied("loader rejected auth token");
  }
  images_[load.app_name] = load.image;
  return proto::LoadImageResponse{};
}

const std::vector<uint8_t>* LoaderService::FindImage(const std::string& app_name) const {
  auto it = images_.find(app_name);
  return it == images_.end() ? nullptr : &it->second;
}

}  // namespace lastcpu::dev
