// Service: one resource a self-managing device exposes (paper Sec. 2.1).
//
// "A device must expose the services it provides, and provide a separate
// context for each instance of a service (multiplexing) to ensure isolation
// between applications." Service owns that multiplexing: each Open() creates
// an isolated ServiceInstance bound to one client device and one application
// address space (PASID).
#ifndef SRC_DEV_SERVICE_H_
#define SRC_DEV_SERVICE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/proto/message.h"

namespace lastcpu::dev {

// Book-keeping every instance carries; concrete services attach their own
// state keyed by the instance id.
struct ServiceInstance {
  InstanceId id;
  DeviceId client;
  Pasid pasid;
  std::string resource;
};

class Service {
 public:
  explicit Service(proto::ServiceDescriptor descriptor) : descriptor_(std::move(descriptor)) {}
  virtual ~Service() = default;
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  const proto::ServiceDescriptor& descriptor() const { return descriptor_; }

  // Whether this service can answer a discovery query. The default matches on
  // service type; services owning named resources (files) also check
  // `resource` (Fig. 2 step 1: the broadcast carries the file name).
  virtual bool Matches(const proto::DiscoverRequest& query) const;

  // Opens a new isolated instance for `client`. Concrete services validate
  // the request (auth token, resource existence) and report the shared-memory
  // contract in the OpenResponse.
  virtual Result<proto::OpenResponse> Open(DeviceId client, const proto::OpenRequest& request) = 0;

  // Single-exchange messages (auth logins, image loads) that need no open
  // instance. Returns nullopt when this service does not handle the message;
  // otherwise the device replies with the payload (or error) returned.
  virtual std::optional<Result<proto::Payload>> HandleMessage(const proto::Message& message) {
    (void)message;
    return std::nullopt;
  }

  // Closes one instance, releasing its resources.
  virtual Status Close(InstanceId instance);

  // Drops every instance belonging to an application (task teardown).
  virtual void TeardownPasid(Pasid pasid);

  // Drops every instance held by a client device (the client died).
  virtual void TeardownClient(DeviceId client);

  bool HasInstance(InstanceId instance) const { return instances_.contains(instance); }
  size_t instance_count() const { return instances_.size(); }
  const std::map<InstanceId, ServiceInstance>& instances() const { return instances_; }

 protected:
  // Registers a new instance; enforces max_instances from the descriptor.
  Result<InstanceId> CreateInstance(DeviceId client, Pasid pasid, std::string resource);

  // Hook invoked whenever an instance goes away (Close/Teardown*), so
  // concrete services can free their per-instance state.
  virtual void OnInstanceClosed(const ServiceInstance& instance) { (void)instance; }

  std::optional<ServiceInstance> FindInstance(InstanceId instance) const;

 private:
  proto::ServiceDescriptor descriptor_;
  std::map<InstanceId, ServiceInstance> instances_;
  uint64_t next_instance_ = 1;
};

}  // namespace lastcpu::dev

#endif  // SRC_DEV_SERVICE_H_
