#include "src/dev/device.h"

#include <algorithm>
#include <utility>

#include "src/base/check.h"
#include "src/dev/service.h"

namespace lastcpu::dev {
namespace {

// Response kinds complete a pending request; request kinds dispatch to
// handlers even when they carry a request id.
bool IsResponseType(proto::MessageType type) {
  switch (type) {
    case proto::MessageType::kDiscoverResponse:
    case proto::MessageType::kOpenResponse:
    case proto::MessageType::kCloseResponse:
    case proto::MessageType::kMemAllocResponse:
    case proto::MessageType::kMemFreeResponse:
    case proto::MessageType::kGrantResponse:
    case proto::MessageType::kRevokeResponse:
    case proto::MessageType::kLoadImageResponse:
    case proto::MessageType::kAuthResponse:
    case proto::MessageType::kErrorResponse:
    case proto::MessageType::kMapConfirm:
    case proto::MessageType::kAttachQueueResponse:
    case proto::MessageType::kFileAdminResponse:
    case proto::MessageType::kFileListResponse:
    case proto::MessageType::kMemAllocBatchResponse:
    case proto::MessageType::kMemFreeBatchResponse:
    case proto::MessageType::kShardDirectoryResponse:
    case proto::MessageType::kLeaseReassertResponse:
      return true;
    default:
      return false;
  }
}

}  // namespace

Device::Device(DeviceId id, std::string name, const DeviceContext& context, DeviceConfig config)
    : id_(id),
      name_(std::move(name)),
      context_(context),
      config_(config),
      iommu_(id, config.tlb),
      tracer_(context.trace, context.simulator, name_) {
  LASTCPU_CHECK(context.simulator != nullptr, "device without simulator");
  LASTCPU_CHECK(context.bus != nullptr, "device without bus");
  LASTCPU_CHECK(context.fabric != nullptr, "device without fabric");

  port_ = context_.bus->Attach(
      id_, name_, [this](proto::Message m) { ReceiveFromBus(std::move(m)); }, &iommu_);
  context_.fabric->AttachDevice(id_, &iommu_, config_.link);
  context_.fabric->SetDoorbellHandler(
      id_, [this](DeviceId from, uint64_t value) {
        if (state_ == State::kAlive) {
          OnDoorbell(from, value);
        }
      });
  iommu_.SetFaultHandler([this](const iommu::FaultInfo& fault) { OnFault(fault); });
}

Device::~Device() {
  context_.fabric->DetachDevice(id_);
  context_.bus->Detach(id_);
}

void Device::TraceEvent(const std::string& event, const std::string& detail) {
  tracer_.Instant(event, detail, current_span_);
}

void Device::SendOnBus(proto::Message message) {
  if (tracer_.enabled()) {
    message.trace.span = current_span_;
    message.trace.flow =
        tracer_.FlowSend(proto::MessageTypeName(message.type()), current_span_);
  }
  port_->Send(std::move(message));
}

void Device::SetState(State next) {
  state_ = next;
  if (state_observer_) {
    state_observer_(next);
  }
}

void Device::PowerOn() {
  LASTCPU_CHECK(state_ == State::kPoweredOff, "PowerOn from state %d", static_cast<int>(state_));
  SetState(State::kSelfTest);
  TraceEvent("self-test");
  context_.simulator->Schedule(config_.self_test_duration, [this] {
    if (state_ != State::kSelfTest) {
      return;  // failed mid self-test
    }
    SetState(State::kAlive);
    AnnounceAlive();
    TraceEvent("alive");
    if (config_.heartbeat_period > sim::Duration::Zero()) {
      context_.simulator->ScheduleDaemon(config_.heartbeat_period, [this] { SendHeartbeat(); });
    }
    OnAlive();
  });
}

void Device::SendHeartbeat() {
  if (state_ != State::kAlive) {
    return;  // dead silicon sends no heartbeats; the watchdog notices
  }
  proto::Message message;
  message.dst = kBusDevice;
  message.payload = proto::Heartbeat{};
  SendOnBus(std::move(message));
  heartbeats_sent_.Increment();
  context_.simulator->ScheduleDaemon(config_.heartbeat_period, [this] { SendHeartbeat(); });
}

void Device::AnnounceAlive() {
  proto::AliveAnnounce announce;
  announce.device_name = name_;
  for (const auto& service : services_) {
    announce.services.push_back(service->descriptor());
  }
  proto::Message message;
  message.dst = kBusDevice;
  message.payload = std::move(announce);
  SendOnBus(std::move(message));
}

void Device::InjectFailure() {
  SetState(State::kFailed);
  TraceEvent("failed");
  // Outstanding requests will never complete; abort them so app logic can
  // observe its own device dying instead of waiting on callbacks forever.
  rpc_.AbortAll(Aborted("device failed"));
}

void Device::InjectPowerLoss() {
  // Volatile state first: sessions and in-flight media ops die with the rail
  // before any failure-path traffic could touch them.
  OnPowerLoss();
  TraceEvent("power-lost");
  InjectFailure();
}

void Device::AddService(std::unique_ptr<Service> service) {
  LASTCPU_CHECK(service != nullptr, "null service");
  services_.push_back(std::move(service));
}

Service* Device::FindServiceByName(const std::string& service_name) {
  for (const auto& service : services_) {
    if (service->descriptor().name == service_name) {
      return service.get();
    }
  }
  return nullptr;
}

void Device::SendOneWay(DeviceId dst, proto::Payload payload) {
  proto::Message message;
  message.dst = dst;
  message.payload = std::move(payload);
  SendOnBus(std::move(message));
}

uint64_t Device::AddPeerFailedHook(PeerFailedHook hook) {
  LASTCPU_CHECK(hook != nullptr, "null peer-failed hook");
  uint64_t token = next_hook_token_++;
  peer_failed_hooks_.emplace(token, std::move(hook));
  return token;
}

void Device::RemovePeerFailedHook(uint64_t token) { peer_failed_hooks_.erase(token); }

uint64_t Device::AddPeerPermanentlyFailedHook(PeerFailedHook hook) {
  LASTCPU_CHECK(hook != nullptr, "null peer-permanently-failed hook");
  uint64_t token = next_hook_token_++;
  peer_permanently_failed_hooks_.emplace(token, std::move(hook));
  return token;
}

void Device::RemovePeerPermanentlyFailedHook(uint64_t token) {
  peer_permanently_failed_hooks_.erase(token);
}

bool Device::RegisterRequest(const proto::Message& message) {
  ReplayKey key{message.src, message.request_id};
  auto it = replay_cache_.find(key);
  if (it != replay_cache_.end()) {
    stats_.GetCounter("duplicate_requests").Increment();
    if (it->second.has_value()) {
      // Already answered: replay the cached response instead of re-executing
      // the handler (at-most-once execution, at-least-once answer).
      stats_.GetCounter("responses_replayed").Increment();
      SendOnBus(proto::Message(*it->second));
    }
    // Still being handled: drop the duplicate; the eventual reply covers it.
    return false;
  }
  replay_cache_.emplace(key, std::nullopt);
  replay_order_.push_back(key);
  if (replay_order_.size() > kReplayWindow) {
    replay_cache_.erase(replay_order_.front());
    replay_order_.pop_front();
  }
  return true;
}

void Device::CacheResponse(const proto::Message& response) {
  if (!response.request_id.valid()) {
    return;
  }
  auto it = replay_cache_.find(ReplayKey{response.dst, response.request_id});
  if (it != replay_cache_.end() && !it->second.has_value()) {
    it->second = response;
  }
}

void Device::ReceiveFromBus(proto::Message message) {
  if (state_ == State::kFailed || state_ == State::kPoweredOff) {
    // Dead silicon — except the reset line, which revives it.
    if (message.Is<proto::ResetSignal>() && state_ == State::kFailed) {
      OnReset();
    }
    return;
  }
  // The handling span opens at arrival and closes when dispatch completes,
  // so it covers firmware queue wait + processing. It parents to the
  // sender's span, and the flow id links it to the send-side record.
  sim::SpanId span = 0;
  if (tracer_.enabled()) {
    span = tracer_.BeginSpan(proto::MessageTypeName(message.type()), message.trace.span);
    tracer_.FlowReceive(proto::MessageTypeName(message.type()), message.trace.flow, span);
  }
  // Control messages are handled by the device's (single) firmware engine:
  // each costs control_processing and they serialize, which is what bounds a
  // single device's control-plane throughput under contention.
  sim::SimTime start = std::max(context_.simulator->Now(), firmware_busy_until_);
  sim::SimTime done = start + config_.control_processing;
  firmware_busy_until_ = done;
  context_.simulator->ScheduleAt(done, [this, message = std::move(message), span] {
    Dispatch(message, span);
    tracer_.EndSpan(span);
  });
}

void Device::Dispatch(const proto::Message& message, sim::SpanId span) {
  if (state_ != State::kAlive && state_ != State::kSelfTest) {
    return;  // failed while the message was in flight
  }
  // Everything this handler emits — trace instants, outbound messages,
  // nested service work — is causally under the handling span.
  sim::SpanId saved_span = current_span_;
  current_span_ = span;
  struct SpanRestore {
    Device* device;
    sim::SpanId saved;
    ~SpanRestore() { device->current_span_ = saved; }
  } restore{this, saved_span};
  messages_received_.Increment();

  // Responses to our outstanding requests route into the transaction layer.
  if (message.request_id.valid() && IsResponseType(message.type())) {
    if (!rpc_.HandleResponse(message)) {
      // Late duplicate or a response to an attempt that already timed out.
      stats_.GetCounter("orphan_responses").Increment();
    }
    return;
  }

  // Inbound requests pass the at-most-once replay guard before any handler
  // runs; duplicates (injected or retransmitted) never execute twice.
  if (message.request_id.valid() && !IsResponseType(message.type())) {
    if (!RegisterRequest(message)) {
      return;
    }
  }

  switch (message.type()) {
    case proto::MessageType::kDiscoverRequest:
      HandleDiscover(message);
      return;
    case proto::MessageType::kOpenRequest:
      HandleOpen(message);
      return;
    case proto::MessageType::kCloseRequest:
      HandleClose(message);
      return;
    case proto::MessageType::kResetSignal:
      OnReset();
      return;
    case proto::MessageType::kDeviceFailed: {
      DeviceId failed = message.As<proto::DeviceFailed>().device;
      // In-flight transactions to the dead peer complete now with a typed
      // error instead of waiting out their deadlines.
      rpc_.AbortPeer(failed,
                     Unavailable("device " + std::to_string(failed.value()) + " failed"));
      for (const auto& service : services_) {
        service->TeardownClient(failed);
      }
      OnPeerFailed(failed);
      // App-level subscribers run last, after the device's own recovery
      // hooks have observed the failure. Iterate a snapshot: hooks may
      // remove themselves (or register new ones) while running.
      std::vector<PeerFailedHook> hooks;
      hooks.reserve(peer_failed_hooks_.size());
      for (const auto& [token, hook] : peer_failed_hooks_) {
        hooks.push_back(hook);
      }
      for (const auto& hook : hooks) {
        hook(failed);
      }
      return;
    }
    case proto::MessageType::kDevicePermanentlyFailed: {
      DeviceId dead = message.As<proto::DevicePermanentlyFailed>().device;
      // The peer is quarantined: nothing addressed to it will ever complete,
      // and it is not coming back. Same cleanup as a transient failure, plus
      // the permanent-failure hooks so consumers stop retrying.
      rpc_.AbortPeer(dead, Unavailable("device " + std::to_string(dead.value()) +
                                       " permanently failed"));
      for (const auto& service : services_) {
        service->TeardownClient(dead);
      }
      OnPeerPermanentlyFailed(dead);
      std::vector<PeerFailedHook> hooks;
      hooks.reserve(peer_permanently_failed_hooks_.size());
      for (const auto& [token, hook] : peer_permanently_failed_hooks_) {
        hooks.push_back(hook);
      }
      for (const auto& hook : hooks) {
        hook(dead);
      }
      return;
    }
    case proto::MessageType::kTeardownApp: {
      Pasid pasid = message.As<proto::TeardownApp>().pasid;
      for (const auto& service : services_) {
        service->TeardownPasid(pasid);
      }
      OnTeardown(pasid);
      return;
    }
    case proto::MessageType::kNotify:
      OnNotify(message);
      return;
    default: {
      // Single-exchange service messages (image loads, auth logins).
      for (const auto& service : services_) {
        auto handled = service->HandleMessage(message);
        if (!handled.has_value()) {
          continue;
        }
        if (handled->ok()) {
          Reply(message, *std::move(*handled));
        } else {
          ReplyError(message, handled->status());
        }
        return;
      }
      OnMessage(message);
      return;
    }
  }
}

void Device::HandleDiscover(const proto::Message& message) {
  const auto& query = message.As<proto::DiscoverRequest>();
  for (const auto& service : services_) {
    if (service->Matches(query)) {
      Reply(message, proto::DiscoverResponse{service->descriptor()});
      TraceEvent("discover-hit", service->descriptor().name);
      return;
    }
  }
  // No match: stay silent, like SSDP — the requester's window just closes.
}

void Device::HandleOpen(const proto::Message& message) {
  const auto& request = message.As<proto::OpenRequest>();
  Service* service = FindServiceByName(request.service_name);
  if (service == nullptr) {
    ReplyError(message, NotFound("no service '" + request.service_name + "'"));
    return;
  }
  auto response = service->Open(message.src, request);
  if (!response.ok()) {
    ReplyError(message, response.status());
    stats_.GetCounter("opens_rejected").Increment();
    return;
  }
  instance_owner_[response->instance] = service;
  stats_.GetCounter("opens_accepted").Increment();
  TraceEvent("open", request.service_name + ":" + request.resource);
  Reply(message, *response);
}

void Device::HandleClose(const proto::Message& message) {
  const auto& request = message.As<proto::CloseRequest>();
  auto it = instance_owner_.find(request.instance);
  if (it == instance_owner_.end()) {
    ReplyError(message, NotFound("no such instance"));
    return;
  }
  Status closed = it->second->Close(request.instance);
  instance_owner_.erase(it);
  if (!closed.ok()) {
    ReplyError(message, closed);
    return;
  }
  Reply(message, proto::CloseResponse{});
}

void Device::OnMessage(const proto::Message& message) {
  stats_.GetCounter("unhandled_messages").Increment();
  if (message.request_id.valid() && !IsResponseType(message.type())) {
    ReplyError(message, Unimplemented(name_ + " does not handle " +
                                      std::string(proto::MessageTypeName(message.type()))));
  }
}

void Device::OnReset() {
  TraceEvent("reset");
  // Drop all volatile state: instances, in-flight transactions, replay guard.
  instance_owner_.clear();
  for (const auto& service : services_) {
    for (auto snapshot = service->instances(); const auto& [id, instance] : snapshot) {
      (void)service->Close(id);
      (void)instance;
    }
  }
  rpc_.AbortAll(Aborted("device reset"));
  replay_cache_.clear();
  replay_order_.clear();
  SetState(State::kSelfTest);
  context_.simulator->Schedule(config_.self_test_duration, [this] {
    if (state_ != State::kSelfTest) {
      return;
    }
    SetState(State::kAlive);
    AnnounceAlive();
    TraceEvent("alive", "after reset");
    if (config_.heartbeat_period > sim::Duration::Zero()) {
      context_.simulator->ScheduleDaemon(config_.heartbeat_period, [this] { SendHeartbeat(); });
    }
    OnAlive();
  });
}

void Device::OnPeerFailed(DeviceId device) { (void)device; }

void Device::OnPeerPermanentlyFailed(DeviceId device) { (void)device; }

void Device::OnTeardown(Pasid pasid) {
  // Mappings are removed by the bus via unmap directives from the memory
  // controller; the base device has nothing further to drop.
  (void)pasid;
}

void Device::OnFault(const iommu::FaultInfo& fault) {
  stats_.GetCounter("iommu_faults").Increment();
  TraceEvent("iommu-fault", fault.ToString());
}

void Device::Reply(const proto::Message& request, proto::Payload payload) {
  proto::Message response;
  response.dst = request.src;
  response.request_id = request.request_id;
  response.payload = std::move(payload);
  CacheResponse(response);
  SendOnBus(std::move(response));
}

void Device::ReplyError(const proto::Message& request, Status status) {
  proto::Message response;
  response.dst = request.src;
  response.request_id = request.request_id;
  response.payload = proto::ErrorResponse{status.code(), status.message()};
  CacheResponse(response);
  SendOnBus(std::move(response));
}

}  // namespace lastcpu::dev
