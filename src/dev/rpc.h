// RpcEndpoint: the one request/response transaction layer for the control
// plane.
//
// Every client in the machine (ControlClient, FileClient, the KVS bring-up
// path, auth logins) used to hand-roll its own pending-request bookkeeping,
// with no deadline, no retry, and no cancellation when a peer died. This
// layer centralizes all of it, per device:
//
//   * correlation      — responses match requests by proto::Message::request_id;
//   * deadlines        — every attempt carries a deadline scheduled on the
//                        simulator; expiry completes the caller with kTimedOut;
//   * bounded retries  — idempotent operations may opt into retransmission
//                        with exponential backoff. Retries reuse the original
//                        request id, so a late or duplicated response is
//                        absorbed instead of completing a stranger's call;
//   * typed aborts     — when the bus declares a peer failed, every in-flight
//                        transaction to it completes with kUnavailable; when
//                        this device resets, fails, or shuts down, everything
//                        completes with kAborted. Callbacks never hang.
//
// Transport failures always surface as a typed Status (kTimedOut /
// kUnavailable / kAborted), and a peer's ErrorResponse payload is unwrapped
// into its carried Status — callers see Result<T>, never a raw error message.
#ifndef SRC_DEV_RPC_H_
#define SRC_DEV_RPC_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/proto/message.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"

namespace lastcpu::dev {

class Device;

// Per-call knobs. The defaults are a single attempt under the host device's
// configured request_timeout — retries must be opted into, and only for
// operations that are safe to execute more than once.
struct RpcOptions {
  // Deadline for each attempt; Zero means the device's request_timeout.
  sim::Duration timeout = sim::Duration::Zero();
  // Total number of send attempts (1 = no retries).
  uint32_t max_attempts = 1;
  // Wait before the first retransmission; doubles after every retry.
  sim::Duration backoff = sim::Duration::Micros(50);
};

class RpcEndpoint {
 public:
  // Raw completion: the peer's response message, or a typed error. Transport
  // failures and peer ErrorResponses both arrive as the error Status.
  using RawCallback = Callback<proto::Message>;
  using DiscoveryCallback = std::function<void(std::vector<proto::ServiceDescriptor>)>;

  explicit RpcEndpoint(Device* device);
  RpcEndpoint(const RpcEndpoint&) = delete;
  RpcEndpoint& operator=(const RpcEndpoint&) = delete;
  ~RpcEndpoint();

  // Starts one transaction: sends `payload` to `dst` and completes `done`
  // exactly once — with the response, or with kTimedOut / kUnavailable /
  // kAborted when the transport gives up first.
  RequestId Call(DeviceId dst, proto::Payload payload, RpcOptions options, RawCallback done);
  RequestId Call(DeviceId dst, proto::Payload payload, RawCallback done) {
    return Call(dst, std::move(payload), RpcOptions{}, std::move(done));
  }

  // Typed transaction: unwraps the expected response payload. A response of
  // any other kind (protocol violation) completes with kInternal. With
  // Response = void any non-error response counts as success.
  template <typename Response>
  RequestId Call(DeviceId dst, proto::Payload payload, RpcOptions options,
                 Callback<Response> done) {
    return Call(dst, std::move(payload), options,
                RawCallback([done = std::move(done)](Result<proto::Message> response) {
                  if (!response.ok()) {
                    done(response.status());
                    return;
                  }
                  if constexpr (std::is_void_v<Response>) {
                    done(Result<void>());
                  } else {
                    if (!response->template Is<Response>()) {
                      done(Internal("unexpected response kind " +
                                    std::string(proto::MessageTypeName(response->type()))));
                      return;
                    }
                    done(response->template As<Response>());
                  }
                }));
  }
  template <typename Response>
  RequestId Call(DeviceId dst, proto::Payload payload, Callback<Response> done) {
    return Call<Response>(dst, std::move(payload), RpcOptions{}, std::move(done));
  }

  // Broadcasts a DiscoverRequest and collects DiscoverResponses for `window`;
  // then invokes the callback with everything that answered (SSDP-style).
  // An abort closes the window early with whatever was collected.
  void Discover(proto::ServiceType type, const std::string& resource, sim::Duration window,
                DiscoveryCallback on_done);

  // Completes one transaction with `reason` (cancellation).
  void Abort(RequestId id, Status reason);
  // Completes every transaction addressed to `peer` with `reason` — the bus
  // declared it failed, so the responses will never come.
  void AbortPeer(DeviceId peer, Status reason);
  // Completes every transaction with `reason` (reset, failure, teardown).
  void AbortAll(Status reason);

  // Routes a response-kind bus message into its transaction. Returns false
  // when no transaction matches (orphan: late duplicate or stale response).
  bool HandleResponse(const proto::Message& message);

  size_t in_flight() const { return transactions_.size(); }

 private:
  struct Transaction {
    DeviceId dst;
    RpcOptions options;
    uint32_t attempt = 1;
    sim::EventId timer;  // per-attempt deadline, or pending-backoff timer
    sim::SpanId span = 0;
    RawCallback callback;
    // The request payload, kept only when retransmission is possible.
    std::optional<proto::Payload> resend;
    // Discovery collectors: gather responses until the window closes.
    bool discovery = false;
    std::vector<proto::ServiceDescriptor> found;
    DiscoveryCallback on_discovery;
  };

  RequestId NextRequestId();
  sim::Duration AttemptTimeout(const RpcOptions& options) const;
  // Sends (or resends) the transaction's request message under its span.
  void Transmit(RequestId id, const proto::Payload& payload, DeviceId dst, sim::SpanId span);
  void OnDeadline(RequestId id);
  void Retransmit(RequestId id);
  // Removes the transaction and fires its callback exactly once.
  void Complete(RequestId id, Result<proto::Message> result);
  void FinishDiscovery(RequestId id);

  Device* device_;
  std::map<RequestId, Transaction> transactions_;
  uint64_t next_request_ = 1;
};

}  // namespace lastcpu::dev

#endif  // SRC_DEV_RPC_H_
