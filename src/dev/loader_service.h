// Loader service (paper Sec. 2.1): "devices that store their applications
// internally (i.e., on-board flash) must expose a loader service that can be
// used to upload a new binary image." Gated by an auth token validator
// (Sec. 4: loader services use the authentication service before replacing
// sensitive data).
#ifndef SRC_DEV_LOADER_SERVICE_H_
#define SRC_DEV_LOADER_SERVICE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/dev/service.h"

namespace lastcpu::dev {

class LoaderService : public Service {
 public:
  // `validate_token` decides whether an upload is authorized; nullptr accepts
  // everything (pre-auth bring-up).
  LoaderService(DeviceId provider, std::function<bool(uint64_t token)> validate_token);

  // Loader has no streaming instances; Open is rejected — uploads go through
  // HandleLoad (kLoadImage messages).
  Result<proto::OpenResponse> Open(DeviceId client, const proto::OpenRequest& request) override;

  // Accepts kLoadImage messages routed by the hosting device.
  std::optional<Result<proto::Payload>> HandleMessage(const proto::Message& message) override;

  // Stores (or replaces) an application image.
  Result<proto::LoadImageResponse> HandleLoad(const proto::LoadImage& load);

  bool HasImage(const std::string& app_name) const { return images_.contains(app_name); }
  const std::vector<uint8_t>* FindImage(const std::string& app_name) const;
  size_t image_count() const { return images_.size(); }

 private:
  std::function<bool(uint64_t)> validate_token_;
  std::map<std::string, std::vector<uint8_t>> images_;
};

}  // namespace lastcpu::dev

#endif  // SRC_DEV_LOADER_SERVICE_H_
