// The system management bus: the control plane of the CPU-less machine
// (paper Sec. 2.2).
//
// The bus is a privileged hardware message switch. It:
//   * routes unicast control messages between devices and broadcasts
//     discovery messages (SSDP/USB-attach style);
//   * records which devices are alive (and nothing else — "no entity sees the
//     entire system and there is no global state replication");
//   * performs the only privileged operation in the machine: programming a
//     device's IOMMU, and only when instructed to by the controller of the
//     resource being mapped (MapDirective from the memory controller);
//   * forwards authorization-required requests (grant/revoke/teardown) to the
//     resource controller — the bus supplies mechanism, never policy;
//   * on device failure, notifies every other device and pulses the failed
//     device's reset line (Sec. 4).
//
// Cost model: routing is crossbar-parallel (each source port serializes its
// own sends), while privileged table updates serialize on the bus's single
// table-update engine — it is simple hardware, which is the paper's point.
#ifndef SRC_BUS_SYSTEM_BUS_H_
#define SRC_BUS_SYSTEM_BUS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/bus/device_supervisor.h"
#include "src/iommu/iommu.h"
#include "src/proto/message.h"
#include "src/sim/fault.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"

namespace lastcpu::bus {

struct BusConfig {
  // Per-message wire latency: base + size * per_byte.
  sim::Duration base_latency = sim::Duration::Nanos(250);
  double bytes_per_nano = 2.0;  // ~2 GB/s management bus; it need not be fast
  // Cost of one privileged table update (IOMMU map/unmap entry batch).
  sim::Duration table_update_latency = sim::Duration::Nanos(120);
  // Per-entry increment for large map batches.
  sim::Duration per_entry_latency = sim::Duration::Nanos(15);
  // Watchdog: an alive, heartbeat-participating device whose last heartbeat
  // is older than this is declared failed. Zero disables monitoring. Devices
  // opt in by sending heartbeats at a period comfortably below the timeout.
  sim::Duration heartbeat_timeout = sim::Duration::Zero();
  // Restart policy applied by the device supervisor on failure reports (see
  // device_supervisor.h). Defaults supervise; max_restart_attempts = 0 keeps
  // the original single-pulse fire-and-forget behaviour.
  RestartPolicy restart_policy;
  // --- rack topology ---
  // Number of chassis ("bus segments"). 1 = the classic flat machine: no
  // router, no scoping, bit-identical to the pre-rack bus. A device's segment
  // is the high bits of its id (see SegmentOf in base/types.h).
  uint32_t segments = 1;
  // Per-hop latency through the inter-segment router, paid by any message
  // whose source and destination devices sit on different segments. Traffic
  // to the bus controller itself rides the management ring (the bus has a
  // presence on every segment) and never pays it.
  sim::Duration inter_segment_latency = sim::Duration::Nanos(400);
  // During an inter-segment partition, cross-segment responses and one-ways
  // are held in the router's egress buffer and flushed at heal; at most this
  // many may be parked at once (overflow is dropped, counted). Requests are
  // never queued — they fail fast with kPartitioned so callers can retry
  // against segment-local resources instead of blocking.
  uint32_t partition_queue_limit = 32;
};

// Per-segment traffic accounting (only meaningful when segments > 1).
struct SegmentCounters {
  uint64_t delivered_local = 0;   // deliveries that stayed on the segment
  uint64_t routed_out = 0;        // deliveries that left via the router
  uint64_t routed_in = 0;         // deliveries that arrived via the router
  uint64_t broadcast_copies = 0;  // broadcast/fan-out copies landing here
};

// A device's attachment point on the control plane. Obtained from
// SystemBus::Attach; all sends are stamped with the owning device's id, so a
// device cannot spoof another's identity (the port *is* the identity).
class BusPort {
 public:
  BusPort(const BusPort&) = delete;
  BusPort& operator=(const BusPort&) = delete;

  DeviceId id() const { return id_; }

  // Enqueues a control message. src is overwritten with this port's id.
  void Send(proto::Message message);

 private:
  friend class SystemBus;
  BusPort(class SystemBus* bus, DeviceId id) : bus_(bus), id_(id) {}

  class SystemBus* bus_;
  DeviceId id_;
};

// Liveness record for one attached device.
struct LivenessEntry {
  std::string name;
  bool alive = false;
  sim::SimTime attached_at;
  sim::SimTime alive_since;
  sim::SimTime last_heartbeat;
  // Devices opt into watchdog monitoring by heartbeating at least once;
  // silent (non-participating) devices are never declared dead by timeout.
  bool heartbeats_seen = false;
  // Set by ReportDeviceFailure, cleared by the next alive announce. While
  // set, further failure reports are no-ops (one broadcast + one supervised
  // episode per failure).
  bool failed = false;
  // Terminal: the supervisor gave up. A quarantined device's announces are
  // rejected; only the entry's name survives, for operators.
  bool quarantined = false;
};

class SystemBus {
 public:
  // Receivers take the message by value: the bus hands off ownership on the
  // hot path (one move, no payload copy). Lambdas written against the old
  // `const proto::Message&` signature still bind unchanged.
  using Receiver = std::function<void(proto::Message)>;

  SystemBus(sim::Simulator* simulator, BusConfig config = {}, sim::TraceLog* trace = nullptr);
  SystemBus(const SystemBus&) = delete;
  SystemBus& operator=(const SystemBus&) = delete;

  // Attaches a device. `receiver` gets every message addressed (or broadcast)
  // to it; `iommu` is the translation unit the bus programs on directives.
  // The returned port remains owned by the bus.
  BusPort* Attach(DeviceId device, std::string name, Receiver receiver, iommu::Iommu* iommu);

  // Removes a device (clean detach, no failure notifications).
  void Detach(DeviceId device);

  bool IsAttached(DeviceId device) const { return endpoints_.contains(device); }
  bool IsAlive(DeviceId device) const;

  // Administrative / fault-injection entry point: marks the device failed,
  // broadcasts DeviceFailed to all other devices, and hands the restart to
  // the supervisor (which pulses the reset line per the configured policy).
  // A report for a device already failed or quarantined is a no-op.
  void ReportDeviceFailure(DeviceId device);

  // The restart supervisor (policy state, quarantine queries).
  DeviceSupervisor& supervisor() { return supervisor_; }
  const DeviceSupervisor& supervisor() const { return supervisor_; }

  // Observer invoked on every device-originated send, after identity
  // stamping and before fault injection. Used by the crash harness to
  // trigger crash-on-Kth-message schedules; nullptr clears it.
  using SendObserver = std::function<void(DeviceId, const proto::Message&)>;
  void SetSendObserver(SendObserver observer) { send_observer_ = std::move(observer); }

  // Operator/BMC path: injects a control message that originates at the bus
  // itself (e.g. application teardown issued from a remote console). Routed
  // after one base latency.
  void AdminSend(proto::Message message);

  // Snapshot of the liveness table (for operators and tests).
  std::map<DeviceId, LivenessEntry> LivenessSnapshot() const;

  // The device currently acting as memory resource controller (announced a
  // kMemory service), or Invalid() if none. In a sharded machine this is the
  // fallback for addresses outside every shard's slab; see ShardForVaddr.
  DeviceId memory_controller() const { return memory_controller_; }

  // The registered controller shards, sorted by VA slab base (empty on a
  // flat single-controller machine).
  const std::vector<proto::ShardRecord>& shard_directory() const { return shard_directory_; }

  // Per-segment routed/local traffic counters; indexed by segment.
  const std::vector<SegmentCounters>& segment_counters() const { return segment_counters_; }

  sim::StatsRegistry& stats() { return stats_; }
  sim::Simulator* simulator() { return simulator_; }

  // Installs (or clears, with nullptr) the machine-wide fault injector. The
  // injector is consulted on every device-to-device send; traffic to the bus
  // itself (heartbeats, announces, privileged directives) travels the
  // dedicated management ring and is modeled fault-free, so liveness
  // bookkeeping stays sound while all RPC traffic is faultable.
  void SetFaultInjector(sim::FaultInjector* injector) { faults_ = injector; }

 private:
  friend class BusPort;

  struct Endpoint {
    std::string name;
    Receiver receiver;
    iommu::Iommu* iommu = nullptr;
    std::unique_ptr<BusPort> port;
    LivenessEntry liveness;
    sim::SimTime tx_busy_until;  // source-port serialization
  };

  // Entry from ports.
  void SendFromPort(DeviceId src, proto::Message message);

  // Computes wire delay and schedules delivery/processing.
  void Route(proto::Message message);

  // Delivers to one endpoint (already past the wire delay). Takes ownership;
  // the payload moves into the receiver.
  void Deliver(proto::Message message);

  // Delivers a bus-originated message: stamps its trace context (causal
  // parent `parent`, fresh flow id) before handing it to the endpoint.
  void DeliverTraced(proto::Message message, sim::SpanId parent);

  // Unicast delivery through the segment router: a cross-segment (src, dst)
  // pair pays inter_segment_latency and bumps the routed counters; everything
  // else (same segment, flat machine, bus-originated) delivers directly.
  // `from_broadcast` marks fan-out copies, which are silently dropped (never
  // error-bounced) when a partition severs their path.
  void DeliverRouted(proto::Message message, bool from_broadcast = false);

  // A cross-segment message hit a severed link: requests bounce kPartitioned
  // to the sender immediately; responses and one-ways park in the bounded
  // router buffer until the deterministic heal time.
  void HandlePartitioned(proto::Message message, uint32_t src_segment, uint32_t dst_segment,
                         bool from_broadcast);

  // DeliverTraced + DeliverRouted: stamp trace context, then route.
  void DeliverTracedRouted(proto::Message message, sim::SpanId parent,
                           bool from_broadcast = false);

  // The failed device's segment, clamped into [0, segments).
  uint32_t SegmentIndex(DeviceId device) const;

  // The shard whose VA slab contains `vaddr`, falling back to the flat
  // memory controller when no directory is registered.
  DeviceId ShardForVaddr(VirtAddr vaddr) const;

  bool IsShardController(DeviceId device) const;

  // Handles messages addressed to the bus itself (kBusDevice).
  void HandleBusMessage(proto::Message message);

  // Privileged: executes a MapDirective on the target's IOMMU under `span`.
  void ExecuteMapDirective(const proto::Message& message, sim::SpanId span);

  void Trace(const std::string& event, const std::string& detail, sim::SpanId span = 0);

  // Periodic watchdog sweep (armed when heartbeat_timeout > 0).
  void WatchdogSweep();

  // Supervisor hooks: deliver one reset pulse / broadcast the terminal
  // DevicePermanentlyFailed notice.
  void PulseReset(DeviceId device);
  void QuarantineDevice(DeviceId device, const std::string& reason);

  // Releases a reorder-held message so it routes at `at` (just after the
  // message that overtook it).
  void ReleaseHeld(sim::SimTime at);

  Endpoint* FindEndpoint(DeviceId device);

  sim::Simulator* simulator_;
  BusConfig config_;
  sim::Tracer tracer_;
  std::unordered_map<DeviceId, Endpoint> endpoints_;
  DeviceId memory_controller_ = DeviceId::Invalid();
  // Controller shards by VA slab, sorted by va_base (see MemShardAnnounce).
  // After a takeover, several records may name the same device (the successor
  // serves its own slab plus the adopted ones).
  std::vector<proto::ShardRecord> shard_directory_;
  // Current registration epoch per live shard device, updated on every
  // MemShardAnnounce and consulted to fence stale MapDirectives. A
  // quarantined shard is removed, so its stragglers fail the permission
  // check instead.
  std::map<DeviceId, uint64_t> shard_epochs_;
  // Cross-segment messages parked during a partition (counted against
  // BusConfig::partition_queue_limit; each flushes itself at heal time).
  size_t partition_held_ = 0;
  std::vector<SegmentCounters> segment_counters_;
  // Serializes privileged table updates (single update engine).
  sim::SimTime table_engine_busy_until_;
  sim::StatsRegistry stats_;
  DeviceSupervisor supervisor_;
  sim::FaultInjector* faults_ = nullptr;
  SendObserver send_observer_;

  // Per-message stats, resolved once: registry references are stable for the
  // bus's lifetime, so each send/delivery pays a plain increment instead of a
  // name lookup.
  sim::Counter& messages_sent_ = stats_.GetCounter("messages_sent");
  sim::Counter& bytes_sent_ = stats_.GetCounter("bytes_sent");
  sim::Counter& messages_delivered_ = stats_.GetCounter("messages_delivered");
  sim::Counter& heartbeats_ = stats_.GetCounter("heartbeats");
  // Every delivered copy of machine-fan-out traffic (discovery broadcasts,
  // failure/quarantine notices, teardown fan-out): the honest msgs/op
  // denominator for the scalability benches.
  sim::Counter& broadcast_msgs_ = stats_.GetCounter("broadcast_msgs");
  sim::Histogram& wire_latency_ = stats_.GetHistogram("wire_latency");
  // At most one message is held for reordering at a time; it is released
  // when the next send overtakes it, or by the backstop at the end of the
  // plan's reorder window.
  std::optional<proto::Message> held_message_;
  sim::EventId held_backstop_;
};

}  // namespace lastcpu::bus

#endif  // SRC_BUS_SYSTEM_BUS_H_
