#include "src/bus/system_bus.h"

#include <algorithm>
#include <utility>

#include "src/base/check.h"
#include "src/proto/codec.h"

namespace lastcpu::bus {
namespace {

// Response-shaped message kinds: correlated replies that must never be
// error-bounced back at their sender (the requester is on the other side of
// the severed link; bouncing would masquerade as a reply to nothing).
bool IsResponseMessage(proto::MessageType type) {
  switch (type) {
    case proto::MessageType::kDiscoverResponse:
    case proto::MessageType::kOpenResponse:
    case proto::MessageType::kCloseResponse:
    case proto::MessageType::kMemAllocResponse:
    case proto::MessageType::kMemFreeResponse:
    case proto::MessageType::kGrantResponse:
    case proto::MessageType::kRevokeResponse:
    case proto::MessageType::kLoadImageResponse:
    case proto::MessageType::kAuthResponse:
    case proto::MessageType::kErrorResponse:
    case proto::MessageType::kMapConfirm:
    case proto::MessageType::kAttachQueueResponse:
    case proto::MessageType::kFileAdminResponse:
    case proto::MessageType::kFileListResponse:
    case proto::MessageType::kMemAllocBatchResponse:
    case proto::MessageType::kMemFreeBatchResponse:
    case proto::MessageType::kShardDirectoryResponse:
    case proto::MessageType::kLeaseReassertResponse:
      return true;
    default:
      return false;
  }
}

}  // namespace

void BusPort::Send(proto::Message message) { bus_->SendFromPort(id_, std::move(message)); }

SystemBus::SystemBus(sim::Simulator* simulator, BusConfig config, sim::TraceLog* trace)
    : simulator_(simulator),
      config_(config),
      tracer_(trace, simulator, "bus"),
      supervisor_(simulator, config.restart_policy, &tracer_, &stats_) {
  LASTCPU_CHECK(simulator != nullptr, "bus needs a simulator");
  if (config_.segments == 0) {
    config_.segments = 1;
  }
  segment_counters_.resize(config_.segments);
  supervisor_.SetHooks({
      .pulse_reset = [this](DeviceId device) { PulseReset(device); },
      .quarantine = [this](DeviceId device, const std::string& reason) {
        QuarantineDevice(device, reason);
      },
  });
  if (config_.heartbeat_timeout > sim::Duration::Zero()) {
    simulator_->SchedulePeriodic(config_.heartbeat_timeout / 2, [this] { WatchdogSweep(); });
  }
}

void SystemBus::WatchdogSweep() {
  std::vector<DeviceId> dead;
  for (const auto& [id, endpoint] : endpoints_) {
    if (!endpoint.liveness.alive || !endpoint.liveness.heartbeats_seen) {
      continue;
    }
    sim::SimTime last_seen =
        std::max(endpoint.liveness.last_heartbeat, endpoint.liveness.alive_since);
    if (simulator_->Now() > last_seen + config_.heartbeat_timeout) {
      dead.push_back(id);
    }
  }
  for (DeviceId id : dead) {
    stats_.GetCounter("watchdog_failures").Increment();
    Trace("watchdog", "device " + std::to_string(id.value()) + " missed heartbeats");
    ReportDeviceFailure(id);
  }
}

void SystemBus::Trace(const std::string& event, const std::string& detail, sim::SpanId span) {
  tracer_.Instant(event, detail, span);
}

SystemBus::Endpoint* SystemBus::FindEndpoint(DeviceId device) {
  auto it = endpoints_.find(device);
  return it == endpoints_.end() ? nullptr : &it->second;
}

uint32_t SystemBus::SegmentIndex(DeviceId device) const {
  uint32_t segment = SegmentOf(device);
  return segment < config_.segments ? segment : config_.segments - 1;
}

DeviceId SystemBus::ShardForVaddr(VirtAddr vaddr) const {
  for (const auto& shard : shard_directory_) {
    if (vaddr.raw >= shard.va_base && (shard.va_limit == 0 || vaddr.raw < shard.va_limit)) {
      return shard.device;
    }
  }
  return memory_controller_;
}

bool SystemBus::IsShardController(DeviceId device) const {
  for (const auto& shard : shard_directory_) {
    if (shard.device == device) {
      return true;
    }
  }
  return false;
}

BusPort* SystemBus::Attach(DeviceId device, std::string name, Receiver receiver,
                           iommu::Iommu* iommu) {
  LASTCPU_CHECK(!endpoints_.contains(device), "device %u attached twice", device.value());
  LASTCPU_CHECK(receiver != nullptr, "device %u attached without receiver", device.value());
  Endpoint endpoint;
  endpoint.name = name;
  endpoint.receiver = std::move(receiver);
  endpoint.iommu = iommu;
  endpoint.port.reset(new BusPort(this, device));
  endpoint.liveness.name = std::move(name);
  endpoint.liveness.attached_at = simulator_->Now();
  auto [it, inserted] = endpoints_.emplace(device, std::move(endpoint));
  (void)inserted;
  Trace("attach", it->second.name);
  return it->second.port.get();
}

void SystemBus::Detach(DeviceId device) {
  if (memory_controller_ == device) {
    memory_controller_ = DeviceId::Invalid();
  }
  supervisor_.OnDetach(device);
  endpoints_.erase(device);
}

bool SystemBus::IsAlive(DeviceId device) const {
  auto it = endpoints_.find(device);
  return it != endpoints_.end() && it->second.liveness.alive;
}

std::map<DeviceId, LivenessEntry> SystemBus::LivenessSnapshot() const {
  std::map<DeviceId, LivenessEntry> out;
  for (const auto& [id, endpoint] : endpoints_) {
    out.emplace(id, endpoint.liveness);
  }
  return out;
}

void SystemBus::SendFromPort(DeviceId src, proto::Message message) {
  Endpoint* endpoint = FindEndpoint(src);
  LASTCPU_CHECK(endpoint != nullptr, "send from detached device %u", src.value());
  // The port is the identity: stamp src so devices cannot spoof each other.
  message.src = src;

  if (send_observer_) {
    send_observer_(src, message);
  }

  messages_sent_.Increment();
  size_t wire_bytes = proto::EncodedSize(message);
  bytes_sent_.Increment(wire_bytes);

  auto wire_time = config_.base_latency +
                   sim::Duration::Nanos(static_cast<uint64_t>(
                       static_cast<double>(wire_bytes) / config_.bytes_per_nano));
  sim::SimTime start = std::max(simulator_->Now(), endpoint->tx_busy_until);
  sim::SimTime arrival = start + wire_time;
  endpoint->tx_busy_until = arrival;
  wire_latency_.Record(arrival - simulator_->Now());

  // Fault injection covers the switched device-to-device paths; the
  // management ring to the bus controller itself stays fault-free.
  if (faults_ != nullptr && message.dst != kBusDevice) {
    sim::FaultDecision fault = faults_->Decide();
    if (fault.drop) {
      stats_.GetCounter("faults_dropped").Increment();
      // The wire terminally consumes the message: close its flow here.
      tracer_.FlowReceive(proto::MessageTypeName(message.type()), message.trace.flow,
                          message.trace.span);
      return;
    }
    if (fault.extra_delay > sim::Duration::Zero()) {
      stats_.GetCounter("faults_delayed").Increment();
      arrival = arrival + fault.extra_delay;
    }
    if (fault.duplicate) {
      stats_.GetCounter("faults_duplicated").Increment();
      proto::Message copy = message;
      simulator_->ScheduleAt(
          arrival, [this, copy = std::move(copy)]() mutable { Route(std::move(copy)); });
    }
    if (fault.reorder) {
      stats_.GetCounter("faults_reordered").Increment();
      ReleaseHeld(arrival);  // one hold slot: an older captive goes out first
      held_message_ = std::move(message);
      held_backstop_ =
          simulator_->ScheduleAt(arrival + faults_->plan().reorder_window, [this] {
            if (!held_message_.has_value()) {
              return;
            }
            proto::Message held = std::move(*held_message_);
            held_message_.reset();
            Route(std::move(held));
          });
      return;
    }
  }
  // Any message passing through overtakes a reorder-held one: release it to
  // land just after this arrival.
  if (held_message_.has_value()) {
    ReleaseHeld(arrival + sim::Duration::Nanos(1));
  }

  simulator_->ScheduleAt(
      arrival, [this, message = std::move(message)]() mutable { Route(std::move(message)); });
}

void SystemBus::ReleaseHeld(sim::SimTime at) {
  if (!held_message_.has_value()) {
    return;
  }
  simulator_->Cancel(held_backstop_);
  proto::Message held = std::move(*held_message_);
  held_message_.reset();
  simulator_->ScheduleAt(
      at, [this, held = std::move(held)]() mutable { Route(std::move(held)); });
}

void SystemBus::Route(proto::Message message) {
  if (message.dst == kBusDevice) {
    HandleBusMessage(std::move(message));
    return;
  }
  if (message.dst == kBroadcastDevice) {
    stats_.GetCounter("broadcasts").Increment();
    // Deterministic delivery order: ascending device id.
    std::vector<DeviceId> targets;
    targets.reserve(endpoints_.size());
    for (const auto& [id, endpoint] : endpoints_) {
      if (id != message.src && endpoint.liveness.alive) {
        targets.push_back(id);
      }
    }
    std::sort(targets.begin(), targets.end());
    for (DeviceId id : targets) {
      proto::Message copy = message;
      copy.dst = id;
      broadcast_msgs_.Increment();
      if (config_.segments > 1) {
        segment_counters_[SegmentIndex(id)].broadcast_copies++;
      }
      DeliverRouted(std::move(copy), /*from_broadcast=*/true);
    }
    return;
  }
  Endpoint* target = FindEndpoint(message.dst);
  if (target == nullptr || !target->liveness.alive) {
    stats_.GetCounter("undeliverable").Increment();
    // The bus terminally consumes the message: close its flow here.
    tracer_.FlowReceive(proto::MessageTypeName(message.type()), message.trace.flow,
                        message.trace.span);
    // Bounce an error so the requester does not hang on a dead device.
    if (message.request_id.valid()) {
      proto::Message bounce = proto::MakeError(message, kBusDevice,
                                               Unavailable("destination not alive"));
      DeliverTraced(std::move(bounce), message.trace.span);
    }
    return;
  }
  DeliverRouted(std::move(message));
}

void SystemBus::DeliverTraced(proto::Message message, sim::SpanId parent) {
  if (tracer_.enabled()) {
    message.trace.span = parent;
    message.trace.flow = tracer_.FlowSend(proto::MessageTypeName(message.type()), parent);
  }
  Deliver(std::move(message));
}

void SystemBus::DeliverRouted(proto::Message message, bool from_broadcast) {
  if (config_.segments > 1) {
    uint32_t dst_segment = SegmentIndex(message.dst);
    if (!IsReservedDevice(message.src) && SegmentIndex(message.src) != dst_segment) {
      uint32_t src_segment = SegmentIndex(message.src);
      if (faults_ != nullptr &&
          faults_->PartitionActive(src_segment, dst_segment, simulator_->Now())) {
        HandlePartitioned(std::move(message), src_segment, dst_segment, from_broadcast);
        return;
      }
      segment_counters_[src_segment].routed_out++;
      segment_counters_[dst_segment].routed_in++;
      simulator_->Schedule(
          config_.inter_segment_latency,
          [this, message = std::move(message)]() mutable { Deliver(std::move(message)); });
      return;
    }
    segment_counters_[dst_segment].delivered_local++;
  }
  Deliver(std::move(message));
}

void SystemBus::HandlePartitioned(proto::Message message, uint32_t src_segment,
                                  uint32_t dst_segment, bool from_broadcast) {
  // Segment-local traffic never reaches here: only the inter-segment hop is
  // severed. Requests fail fast with the distinct kPartitioned status so the
  // sender can spill to segment-local resources instead of burning a timeout.
  bool is_request =
      !from_broadcast && message.request_id.valid() && !IsResponseMessage(message.type());
  if (is_request) {
    stats_.GetCounter("partition_fail_fast").Increment();
    tracer_.FlowReceive(proto::MessageTypeName(message.type()), message.trace.flow,
                        message.trace.span);
    proto::Message bounce = proto::MakeError(
        message, kBusDevice,
        Partitioned("segment " + std::to_string(dst_segment) + " unreachable"));
    DeliverTraced(std::move(bounce), message.trace.span);
    return;
  }
  // Responses, one-ways, and broadcast copies: park in the router's bounded
  // egress buffer until the partition's deterministic heal time. Broadcast
  // copies and overflow are dropped — fan-out senders expect no reply, and a
  // real router buffer is finite.
  sim::SimTime heal = faults_->PartitionHealTime(src_segment, dst_segment, simulator_->Now());
  if (from_broadcast || heal == sim::SimTime::Max() ||
      partition_held_ >= config_.partition_queue_limit) {
    stats_.GetCounter("partition_dropped").Increment();
    tracer_.FlowReceive(proto::MessageTypeName(message.type()), message.trace.flow,
                        message.trace.span);
    return;
  }
  ++partition_held_;
  stats_.GetCounter("partition_queued").Increment();
  Trace("partition-hold", std::string(proto::MessageTypeName(message.type())) + " until heal");
  simulator_->ScheduleAt(heal, [this, message = std::move(message)]() mutable {
    --partition_held_;
    stats_.GetCounter("partition_released").Increment();
    // Re-enters routing: pays the hop now, and re-parks if another partition
    // window already covers the healed pair.
    DeliverRouted(std::move(message));
  });
}

void SystemBus::DeliverTracedRouted(proto::Message message, sim::SpanId parent,
                                    bool from_broadcast) {
  if (tracer_.enabled()) {
    message.trace.span = parent;
    message.trace.flow = tracer_.FlowSend(proto::MessageTypeName(message.type()), parent);
  }
  DeliverRouted(std::move(message), from_broadcast);
}

void SystemBus::Deliver(proto::Message message) {
  Endpoint* target = FindEndpoint(message.dst);
  if (target == nullptr) {
    stats_.GetCounter("undeliverable").Increment();
    tracer_.FlowReceive(proto::MessageTypeName(message.type()), message.trace.flow,
                        message.trace.span);
    return;
  }
  messages_delivered_.Increment();
  if (tracer_.enabled()) {
    Trace("deliver", std::string(proto::MessageTypeName(message.type())) + " -> " + target->name);
  }
  target->receiver(std::move(message));
}

void SystemBus::HandleBusMessage(proto::Message message) {
  // Map directives and teardowns bind their flow receives to the handling
  // spans they open below; every other bus-destined message terminates its
  // flow here so senders never see a dangling arrow.
  if (message.type() != proto::MessageType::kMapDirective &&
      message.type() != proto::MessageType::kTeardownApp) {
    tracer_.FlowReceive(proto::MessageTypeName(message.type()), message.trace.flow,
                        message.trace.span);
  }
  switch (message.type()) {
    case proto::MessageType::kAliveAnnounce: {
      Endpoint* endpoint = FindEndpoint(message.src);
      if (endpoint == nullptr) {
        return;
      }
      if (endpoint->liveness.quarantined) {
        // A quarantined device already broadcast its permanent failure; a
        // late self-test completion must not resurrect it behind everyone's
        // back. The silicon stays powered but off the bus.
        stats_.GetCounter("quarantined_announces_rejected").Increment();
        Trace("alive-rejected", endpoint->liveness.name + " is quarantined");
        return;
      }
      const auto& announce = message.As<proto::AliveAnnounce>();
      endpoint->liveness.alive = true;
      endpoint->liveness.failed = false;
      endpoint->liveness.alive_since = simulator_->Now();
      endpoint->liveness.last_heartbeat = simulator_->Now();
      if (!announce.device_name.empty()) {
        endpoint->liveness.name = announce.device_name;
      }
      // A device announcing a memory service becomes the memory resource
      // controller the bus consults for mapping authorization.
      for (const auto& service : announce.services) {
        if (service.type == proto::ServiceType::kMemory) {
          memory_controller_ = message.src;
        }
      }
      supervisor_.OnAlive(message.src);
      stats_.GetCounter("alive_announcements").Increment();
      Trace("alive", endpoint->liveness.name);
      return;
    }
    case proto::MessageType::kMapDirective: {
      // Privileged: only a controller of the resource may direct mappings —
      // the flat controller or any registered shard.
      if (message.src != memory_controller_ && !IsShardController(message.src)) {
        stats_.GetCounter("rejected_directives").Increment();
        tracer_.FlowReceive(proto::MessageTypeName(message.type()), message.trace.flow,
                            message.trace.span);
        Trace("map-rejected", "src is not the memory controller");
        proto::Message error =
            proto::MakeError(message, kBusDevice,
                             PermissionDenied("only the resource controller may direct mappings"));
        DeliverTraced(std::move(error), message.trace.span);
        return;
      }
      const auto& directive = message.As<proto::MapDirective>();
      // Epoch fence: a directive stamped with an epoch older than the shard's
      // latest announce is a pre-failover straggler — executing it would let
      // a superseded controller program translations behind the successor's
      // back. Flat controllers never announce an epoch and are never fenced.
      auto fence = shard_epochs_.find(message.src);
      if (fence != shard_epochs_.end() && directive.epoch < fence->second) {
        stats_.GetCounter("stale_directives_fenced").Increment();
        tracer_.FlowReceive(proto::MessageTypeName(message.type()), message.trace.flow,
                            message.trace.span);
        Trace("map-fenced", "directive epoch " + std::to_string(directive.epoch) +
                                " < shard epoch " + std::to_string(fence->second));
        proto::Message error = proto::MakeError(
            message, kBusDevice, FailedPrecondition("stale shard epoch"));
        DeliverTraced(std::move(error), message.trace.span);
        return;
      }
      // The directive's span covers queueing on the table engine plus the
      // update itself, causally under the controller's handling span.
      sim::SpanId span = 0;
      if (tracer_.enabled()) {
        span = tracer_.BeginSpan(directive.unmap ? "UnmapDirective" : "MapDirective",
                                 message.trace.span,
                                 "target=" + std::to_string(directive.target.value()) +
                                     " entries=" + std::to_string(directive.entries.size()));
        tracer_.FlowReceive(proto::MessageTypeName(message.type()), message.trace.flow, span);
      }
      // Table updates serialize on the bus's single update engine.
      auto cost = config_.table_update_latency +
                  config_.per_entry_latency * static_cast<uint64_t>(directive.entries.size());
      sim::SimTime start = std::max(simulator_->Now(), table_engine_busy_until_);
      sim::SimTime done = start + cost;
      table_engine_busy_until_ = done;
      stats_.GetHistogram("table_update_latency").Record(done - simulator_->Now());
      simulator_->ScheduleAt(done, [this, m = std::move(message), span] {
        ExecuteMapDirective(m, span);
      });
      return;
    }
    case proto::MessageType::kGrantRequest:
    case proto::MessageType::kRevokeRequest:
    case proto::MessageType::kMemFreeRequest: {
      // Mechanism, not policy: authorization belongs to the resource
      // controller. The owning shard is a pure function of the virtual
      // address (each shard bump-allocates in its own VA slab), so the bus
      // routes by address with no per-allocation state.
      VirtAddr vaddr;
      switch (message.type()) {
        case proto::MessageType::kGrantRequest:
          vaddr = message.As<proto::GrantRequest>().vaddr;
          break;
        case proto::MessageType::kRevokeRequest:
          vaddr = message.As<proto::RevokeRequest>().vaddr;
          break;
        default:
          vaddr = message.As<proto::MemFreeRequest>().vaddr;
          break;
      }
      DeviceId controller = ShardForVaddr(vaddr);
      if (!controller.valid() || !IsAlive(controller)) {
        proto::Message error =
            proto::MakeError(message, kBusDevice, Unavailable("no memory controller"));
        DeliverTraced(std::move(error), message.trace.span);
        return;
      }
      message.dst = controller;
      stats_.GetCounter("forwarded_to_controller").Increment();
      DeliverRouted(std::move(message));
      return;
    }
    case proto::MessageType::kMemShardAnnounce: {
      const auto& announce = message.As<proto::MemShardAnnounce>();
      if (announce.shard.device != message.src) {
        stats_.GetCounter("rejected_shard_announcements").Increment();
        return;
      }
      shard_epochs_[announce.shard.device] = announce.shard.epoch;
      // Records are keyed by VA slab, not device: after a takeover one device
      // may own several slabs, and a re-announce must refresh its own slab
      // without clobbering adopted ones.
      auto it = std::find_if(shard_directory_.begin(), shard_directory_.end(),
                             [&](const proto::ShardRecord& shard) {
                               return shard.va_base == announce.shard.va_base;
                             });
      if (it != shard_directory_.end()) {
        *it = announce.shard;  // idempotent re-registration after a restart
      } else {
        shard_directory_.push_back(announce.shard);
      }
      // Every slab this device owns fences at its freshest epoch.
      for (auto& shard : shard_directory_) {
        if (shard.device == announce.shard.device) {
          shard.epoch = announce.shard.epoch;
        }
      }
      std::sort(shard_directory_.begin(), shard_directory_.end(),
                [](const proto::ShardRecord& a, const proto::ShardRecord& b) {
                  return a.va_base < b.va_base;
                });
      stats_.GetCounter("shard_announcements").Increment();
      Trace("shard-announce",
            "device=" + std::to_string(announce.shard.device.value()) +
                " segment=" + std::to_string(announce.shard.segment));
      return;
    }
    case proto::MessageType::kShardDirectoryRequest: {
      // Unicast discovery: one request, one response — no O(N) broadcast.
      proto::ShardDirectoryResponse response;
      if (!shard_directory_.empty()) {
        response.shards = shard_directory_;
      } else if (memory_controller_.valid()) {
        // Flat machine: synthesize a single all-covering record.
        response.shards.push_back(proto::ShardRecord{memory_controller_, 0, 0, 0, 0});
      }
      DeliverTraced(proto::MakeResponse(message, kBusDevice, std::move(response)),
                    message.trace.span);
      return;
    }
    case proto::MessageType::kHeartbeat: {
      Endpoint* endpoint = FindEndpoint(message.src);
      if (endpoint == nullptr) {
        return;
      }
      if (!endpoint->liveness.alive) {
        // A heartbeat already on the wire when the device was declared failed
        // must not freshen the record — only a full alive announce (i.e. a
        // completed self-test) brings a device back.
        stats_.GetCounter("stale_heartbeats_ignored").Increment();
        return;
      }
      endpoint->liveness.last_heartbeat = simulator_->Now();
      endpoint->liveness.heartbeats_seen = true;
      heartbeats_.Increment();
      return;
    }
    case proto::MessageType::kTeardownApp: {
      // Lifecycle: tell every device to drop the application's contexts; the
      // memory controller additionally frees its allocations (and issues the
      // unmap directives).
      const auto& teardown = message.As<proto::TeardownApp>();
      sim::SpanId span =
          tracer_.BeginSpan("TeardownApp", message.trace.span,
                            "pasid=" + std::to_string(teardown.pasid.value()));
      tracer_.FlowReceive(proto::MessageTypeName(message.type()), message.trace.flow, span);
      Trace("teardown", "pasid=" + std::to_string(teardown.pasid.value()), span);
      for (auto& [id, endpoint] : endpoints_) {
        if (endpoint.liveness.alive) {
          proto::Message copy = message;
          copy.dst = id;
          broadcast_msgs_.Increment();
          if (config_.segments > 1) {
            segment_counters_[SegmentIndex(id)].broadcast_copies++;
          }
          DeliverTracedRouted(std::move(copy), span, /*from_broadcast=*/true);
        }
      }
      tracer_.EndSpan(span);
      return;
    }
    default:
      stats_.GetCounter("unhandled_bus_messages").Increment();
      if (message.request_id.valid()) {
        proto::Message error = proto::MakeError(
            message, kBusDevice, Unimplemented("bus does not handle this message type"));
        DeliverTraced(std::move(error), message.trace.span);
      }
      return;
  }
}

void SystemBus::ExecuteMapDirective(const proto::Message& message, sim::SpanId span) {
  const auto& directive = message.As<proto::MapDirective>();
  Endpoint* target = FindEndpoint(directive.target);
  if (target == nullptr || target->iommu == nullptr) {
    proto::Message error =
        proto::MakeError(message, kBusDevice, NotFound("map target not attached"));
    DeliverTraced(std::move(error), span);
    tracer_.EndSpan(span);
    return;
  }
  iommu::ProgrammingKey key;  // only the bus can mint this
  Status status = OkStatus();
  for (const auto& entry : directive.entries) {
    if (directive.unmap) {
      status = target->iommu->Unmap(key, directive.pasid, entry.vpage);
    } else {
      status = target->iommu->Map(key, directive.pasid, entry.vpage, entry.pframe, entry.access);
    }
    if (!status.ok()) {
      break;
    }
  }
  stats_.GetCounter(directive.unmap ? "unmap_directives" : "map_directives").Increment();
  stats_.GetCounter("pages_programmed").Increment(directive.entries.size());
  Trace(directive.unmap ? "unmap" : "map",
        "target=" + target->name + " pages=" + std::to_string(directive.entries.size()), span);
  if (status.ok()) {
    DeliverTraced(proto::MakeResponse(message, kBusDevice,
                                      proto::MapConfirm{directive.target, directive.pasid}),
                  span);
  } else {
    DeliverTraced(proto::MakeError(message, kBusDevice, status), span);
  }
  tracer_.EndSpan(span);
}

void SystemBus::AdminSend(proto::Message message) {
  message.src = kBusDevice;
  stats_.GetCounter("admin_messages").Increment();
  simulator_->Schedule(config_.base_latency, [this, message = std::move(message)]() mutable {
    Route(std::move(message));
  });
}

void SystemBus::ReportDeviceFailure(DeviceId device) {
  Endpoint* failed = FindEndpoint(device);
  if (failed == nullptr) {
    return;
  }
  // One broadcast and one supervised restart episode per failure: a second
  // report for a device that has not come back (e.g. watchdog sweep racing an
  // explicit report, or a crash harness re-killing dead silicon) is a no-op.
  if (failed->liveness.failed || failed->liveness.quarantined) {
    stats_.GetCounter("duplicate_failure_reports").Increment();
    return;
  }
  failed->liveness.failed = true;
  failed->liveness.alive = false;
  // A failing resource controller concerns the whole machine: every consumer
  // must drop cached state (magazines, directories), not just its neighbors.
  bool controller_failed = memory_controller_ == device || IsShardController(device);
  if (memory_controller_ == device) {
    memory_controller_ = DeviceId::Invalid();
  }
  // Scrub the failed device's translations: its restarted firmware must not
  // inherit access to application memory it no longer legitimately holds.
  if (failed->iommu != nullptr) {
    iommu::ProgrammingKey key;
    failed->iommu->Reset(key);
  }
  stats_.GetCounter("device_failures").Increment();
  Trace("device-failed", failed->name);

  // Notify surviving devices (Sec. 4). On a flat bus that is everyone; on a
  // segmented rack the notice stays in the failed device's broadcast domain —
  // plus every resource controller machine-wide, so cross-segment grants are
  // still reclaimed — unless a controller itself failed (see above).
  uint32_t failed_segment = SegmentIndex(device);
  for (auto& [id, endpoint] : endpoints_) {
    if (id == device || !endpoint.liveness.alive) {
      continue;
    }
    bool cross_segment = config_.segments > 1 && SegmentIndex(id) != failed_segment;
    if (cross_segment && !controller_failed && id != memory_controller_ &&
        !IsShardController(id)) {
      stats_.GetCounter("failure_notices_suppressed").Increment();
      continue;
    }
    proto::Message notice;
    notice.src = kBusDevice;
    notice.dst = id;
    notice.payload = proto::DeviceFailed{device};
    broadcast_msgs_.Increment();
    if (config_.segments > 1) {
      segment_counters_[SegmentIndex(id)].broadcast_copies++;
    }
    auto delay =
        cross_segment ? config_.base_latency + config_.inter_segment_latency : config_.base_latency;
    simulator_->Schedule(delay, [this, notice = std::move(notice)]() mutable {
      DeliverTraced(std::move(notice), 0);
    });
  }
  // The supervisor decides when (and how often) to pulse the reset line.
  supervisor_.OnFailure(device, failed->name);
}

void SystemBus::PulseReset(DeviceId device) {
  proto::Message reset;
  reset.src = kBusDevice;
  reset.dst = device;
  reset.payload = proto::ResetSignal{};
  stats_.GetCounter("reset_pulses").Increment();
  // The reset line bypasses normal routing: dead silicon is not "alive" on
  // the bus, but the line is wired straight to the device.
  simulator_->Schedule(config_.base_latency, [this, reset = std::move(reset), device]() mutable {
    Endpoint* endpoint = FindEndpoint(device);
    if (endpoint != nullptr) {
      endpoint->receiver(std::move(reset));
    }
  });
}

void SystemBus::QuarantineDevice(DeviceId device, const std::string& reason) {
  Endpoint* failed = FindEndpoint(device);
  if (failed == nullptr) {
    return;
  }
  failed->liveness.quarantined = true;
  failed->liveness.alive = false;
  Trace("device-quarantined", failed->name + ": " + reason);
  // Terminal notice: consumers stop retrying, resource controllers reclaim
  // everything the device owned or was granted. Scoped like DeviceFailed:
  // segment-local on a rack, plus controllers machine-wide (they may hold
  // cross-segment grants from the dead device), and machine-wide when the
  // quarantined device is itself a controller.
  bool controller_failed = memory_controller_ == device || IsShardController(device);
  uint32_t failed_segment = SegmentIndex(device);
  for (auto& [id, endpoint] : endpoints_) {
    if (id == device || !endpoint.liveness.alive) {
      continue;
    }
    bool cross_segment = config_.segments > 1 && SegmentIndex(id) != failed_segment;
    if (cross_segment && !controller_failed && id != memory_controller_ &&
        !IsShardController(id)) {
      stats_.GetCounter("failure_notices_suppressed").Increment();
      continue;
    }
    proto::Message notice;
    notice.src = kBusDevice;
    notice.dst = id;
    notice.payload = proto::DevicePermanentlyFailed{device, reason};
    broadcast_msgs_.Increment();
    if (config_.segments > 1) {
      segment_counters_[SegmentIndex(id)].broadcast_copies++;
    }
    auto delay =
        cross_segment ? config_.base_latency + config_.inter_segment_latency : config_.base_latency;
    simulator_->Schedule(delay, [this, notice = std::move(notice)]() mutable {
      DeliverTraced(std::move(notice), 0);
    });
  }
  // Shard takeover: repoint every VA slab the quarantined shard owned at the
  // first surviving shard (directory order = ascending va_base). The
  // successor rebuilds the slab's allocation and grant tables from client
  // lease re-assertion; dropping the dead device from shard_epochs_ means any
  // of its directives still in flight fail the controller permission check.
  if (IsShardController(device)) {
    shard_epochs_.erase(device);
    DeviceId successor = DeviceId::Invalid();
    for (const auto& shard : shard_directory_) {
      if (shard.device == device) {
        continue;
      }
      Endpoint* candidate = FindEndpoint(shard.device);
      if (candidate != nullptr && !candidate->liveness.quarantined) {
        successor = shard.device;
        break;
      }
    }
    if (successor.valid()) {
      auto epoch_it = shard_epochs_.find(successor);
      uint64_t epoch = epoch_it == shard_epochs_.end() ? 0 : epoch_it->second;
      for (auto& shard : shard_directory_) {
        if (shard.device == device) {
          shard.device = successor;
          shard.epoch = epoch;
          stats_.GetCounter("shard_takeovers").Increment();
          Trace("shard-takeover",
                "va_base=" + std::to_string(shard.va_base) +
                    " -> device " + std::to_string(successor.value()));
        }
      }
    } else {
      // No surviving shard: the slabs go dark until one attaches and
      // re-announces. Requests route to an invalid controller and bounce.
      std::erase_if(shard_directory_, [device](const proto::ShardRecord& shard) {
        return shard.device == device;
      });
    }
  }
}

}  // namespace lastcpu::bus
