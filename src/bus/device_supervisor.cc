#include "src/bus/device_supervisor.h"

#include <utility>

#include "src/base/check.h"

namespace lastcpu::bus {

DeviceSupervisor::DeviceSupervisor(sim::Simulator* simulator, RestartPolicy policy,
                                   sim::Tracer* tracer, sim::StatsRegistry* stats)
    : simulator_(simulator), policy_(policy), tracer_(tracer), stats_(stats) {
  LASTCPU_CHECK(simulator != nullptr, "supervisor needs a simulator");
  LASTCPU_CHECK(stats != nullptr, "supervisor needs a stats registry");
}

bool DeviceSupervisor::IsQuarantined(DeviceId device) const {
  return StateOf(device) == SupervisionState::kQuarantined;
}

DeviceSupervisor::SupervisionState DeviceSupervisor::StateOf(DeviceId device) const {
  auto it = records_.find(device);
  return it == records_.end() ? SupervisionState::kHealthy : it->second.state;
}

uint32_t DeviceSupervisor::AttemptsOf(DeviceId device) const {
  auto it = records_.find(device);
  return it == records_.end() ? 0 : it->second.attempts;
}

sim::Duration DeviceSupervisor::BackoffFor(uint32_t attempt) const {
  // Attempt 0 pulses immediately (the legacy single-pulse timing); attempt k
  // waits restart_backoff * multiplier^(k-1).
  if (attempt == 0) {
    return sim::Duration::Zero();
  }
  double nanos = static_cast<double>(policy_.restart_backoff.nanos());
  for (uint32_t i = 1; i < attempt; ++i) {
    nanos *= policy_.backoff_multiplier;
  }
  return sim::Duration::Nanos(static_cast<uint64_t>(nanos));
}

void DeviceSupervisor::CancelTimers(Record& rec) {
  rec.pending_pulse.Cancel();
  rec.deadline.Cancel();
}

void DeviceSupervisor::OnFailure(DeviceId device, const std::string& name) {
  if (!policy_.supervised()) {
    // Legacy mode: every failure report pulses reset once, nobody follows up.
    if (hooks_.pulse_reset) {
      hooks_.pulse_reset(device);
    }
    return;
  }
  Record& rec = records_[device];
  rec.name = name;
  if (rec.state == SupervisionState::kQuarantined) {
    return;
  }
  sim::SimTime now = simulator_->Now();
  rec.recent_failures.push_back(now);
  while (!rec.recent_failures.empty() &&
         now - rec.recent_failures.front() > policy_.crash_loop_window) {
    rec.recent_failures.pop_front();
  }
  CancelTimers(rec);  // an actual failure report supersedes any armed deadline
  if (rec.state == SupervisionState::kHealthy && tracer_ != nullptr && tracer_->enabled()) {
    rec.episode_span = tracer_->BeginSpan("SupervisedRestart", 0, rec.name);
  }
  rec.state = SupervisionState::kRestarting;
  if (policy_.crash_loop_threshold > 0 &&
      rec.recent_failures.size() >= policy_.crash_loop_threshold) {
    Quarantine(device, rec,
               "crash loop: " + std::to_string(rec.recent_failures.size()) + " failures within " +
                   policy_.crash_loop_window.ToString());
    return;
  }
  if (rec.attempts >= policy_.max_restart_attempts) {
    Quarantine(device, rec, "restart policy exhausted");
    return;
  }
  ScheduleAttempt(device, rec);
}

void DeviceSupervisor::ScheduleAttempt(DeviceId device, Record& rec) {
  uint32_t attempt = rec.attempts++;
  sim::Duration backoff = BackoffFor(attempt);
  if (backoff == sim::Duration::Zero()) {
    PulseNow(device);
    return;
  }
  if (tracer_ != nullptr) {
    tracer_->Instant("supervisor-backoff",
                     rec.name + " attempt " + std::to_string(attempt + 1) + " in " +
                         backoff.ToString(),
                     rec.episode_span);
  }
  rec.pending_pulse = sim::ScopedEvent(
      simulator_, simulator_->Schedule(backoff, [this, device] { PulseNow(device); }));
}

void DeviceSupervisor::PulseNow(DeviceId device) {
  auto it = records_.find(device);
  if (it == records_.end() || it->second.state != SupervisionState::kRestarting) {
    return;
  }
  Record& rec = it->second;
  rec.pending_pulse.Release();  // it just fired; nothing left to cancel
  stats_->GetCounter("supervisor_restarts").Increment();
  if (tracer_ != nullptr) {
    tracer_->Instant("supervisor-pulse",
                     rec.name + " attempt " + std::to_string(rec.attempts), rec.episode_span);
  }
  rec.deadline = sim::ScopedEvent(
      simulator_, simulator_->Schedule(policy_.restart_timeout,
                                       [this, device] { OnRestartDeadline(device); }));
  if (hooks_.pulse_reset) {
    hooks_.pulse_reset(device);
  }
}

void DeviceSupervisor::OnRestartDeadline(DeviceId device) {
  auto it = records_.find(device);
  if (it == records_.end() || it->second.state != SupervisionState::kRestarting) {
    return;
  }
  Record& rec = it->second;
  rec.deadline.Release();  // it just fired; nothing left to cancel
  stats_->GetCounter("supervisor_restart_timeouts").Increment();
  if (tracer_ != nullptr) {
    tracer_->Instant("supervisor-timeout",
                     rec.name + " silent after attempt " + std::to_string(rec.attempts),
                     rec.episode_span);
  }
  if (rec.attempts >= policy_.max_restart_attempts) {
    Quarantine(device, rec,
               "no alive announce after " + std::to_string(rec.attempts) + " reset pulses");
    return;
  }
  ScheduleAttempt(device, rec);
}

void DeviceSupervisor::OnAlive(DeviceId device) {
  auto it = records_.find(device);
  if (it == records_.end() || it->second.state == SupervisionState::kQuarantined) {
    return;
  }
  Record& rec = it->second;
  CancelTimers(rec);
  // A completed self-test wipes the attempt counter (the liveness table's
  // alive_since is the bus-side witness); the crash-loop window deliberately
  // survives, or a fail/revive/fail cycle would never trip the detector.
  bool recovered = rec.state == SupervisionState::kRestarting;
  rec.attempts = 0;
  rec.state = SupervisionState::kHealthy;
  if (recovered) {
    stats_->GetCounter("supervisor_recoveries").Increment();
    if (tracer_ != nullptr) {
      tracer_->Instant("supervisor-recovered", rec.name, rec.episode_span);
      if (rec.episode_span != 0) {
        tracer_->EndSpan(rec.episode_span);
        rec.episode_span = 0;
      }
    }
  }
}

void DeviceSupervisor::Quarantine(DeviceId device, Record& rec, const std::string& reason) {
  rec.state = SupervisionState::kQuarantined;
  CancelTimers(rec);
  stats_->GetCounter("supervisor_quarantines").Increment();
  stats_->GetCounter("supervisor_permanent_failures").Increment();
  if (tracer_ != nullptr) {
    tracer_->Instant("supervisor-quarantine", rec.name + ": " + reason, rec.episode_span);
    if (rec.episode_span != 0) {
      tracer_->EndSpan(rec.episode_span);
      rec.episode_span = 0;
    }
  }
  if (hooks_.quarantine) {
    hooks_.quarantine(device, reason);
  }
}

void DeviceSupervisor::OnDetach(DeviceId device) {
  // The record's ScopedEvents cancel any armed timers on destruction.
  records_.erase(device);
}

}  // namespace lastcpu::bus
