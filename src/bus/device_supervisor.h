// DeviceSupervisor: the bus-side restart policy for failed devices.
//
// The paper's Sec. 4 story ends at "pulse the reset line in an attempt to
// restart it" — one pulse, fire-and-forget. A CPU-less machine needs an
// answer for the device that crashes again during self-test, crash-loops, or
// never comes back: somebody must bound the retries and reclaim what the
// device held, and that somebody cannot be a kernel. The supervisor is that
// answer, as simple bus hardware: per-device attempt counters, exponential
// backoff between reset pulses, a sliding-window crash-loop detector, and a
// terminal quarantine that broadcasts DevicePermanentlyFailed exactly once so
// consumers stop retrying and resource controllers reclaim.
//
// State machine (see README "Robustness model"):
//
//   Healthy --failure--> Restarting --alive announce--> Healthy
//      |                    |  ^
//      |                    |  | backoff * 2^k, up to max_restart_attempts
//      |                    v  | pulses (deadline missed => next attempt)
//      |                 (pulse reset)
//      |                    |
//      +--crash loop--+     +--policy exhausted--+
//                     v                          v
//                  Quarantined (terminal; DevicePermanentlyFailed broadcast)
#ifndef SRC_BUS_DEVICE_SUPERVISOR_H_
#define SRC_BUS_DEVICE_SUPERVISOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "src/base/types.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"

namespace lastcpu::bus {

// Per-device restart policy, configured via BusConfig. The defaults supervise
// every device; max_restart_attempts = 0 reproduces the original single-pulse
// fire-and-forget behaviour (one reset per failure report, no follow-up, no
// quarantine — useful for A/B comparison and backward compatibility).
struct RestartPolicy {
  // Reset pulses per failure episode before the supervisor gives up. The
  // first pulse is immediate (exactly the legacy behaviour); pulse k waits
  // restart_backoff * backoff_multiplier^(k-2) first.
  uint32_t max_restart_attempts = 4;
  sim::Duration restart_backoff = sim::Duration::Micros(50);
  double backoff_multiplier = 2.0;
  // A pulsed device must announce alive within this deadline, or the attempt
  // counts as failed. This is what catches a crash *during self-test*: dead
  // silicon sends no heartbeats for the watchdog to miss.
  sim::Duration restart_timeout = sim::Duration::Micros(500);
  // Crash-loop detector: this many failure reports inside the sliding window
  // quarantine the device even when every individual restart "succeeded".
  // 0 disables the detector.
  uint32_t crash_loop_threshold = 8;
  sim::Duration crash_loop_window = sim::Duration::Millis(5);

  bool supervised() const { return max_restart_attempts > 0; }
};

class DeviceSupervisor {
 public:
  enum class SupervisionState : uint8_t { kHealthy, kRestarting, kQuarantined };

  // The supervisor decides *when*; the bus supplies the mechanism.
  struct Hooks {
    std::function<void(DeviceId)> pulse_reset;
    std::function<void(DeviceId, const std::string& reason)> quarantine;
  };

  DeviceSupervisor(sim::Simulator* simulator, RestartPolicy policy, sim::Tracer* tracer,
                   sim::StatsRegistry* stats);
  DeviceSupervisor(const DeviceSupervisor&) = delete;
  DeviceSupervisor& operator=(const DeviceSupervisor&) = delete;

  void SetHooks(Hooks hooks) { hooks_ = std::move(hooks); }

  // The bus accepted a (first) failure report for `device`.
  void OnFailure(DeviceId device, const std::string& name);
  // The device announced alive: the episode (if any) ended well.
  void OnAlive(DeviceId device);
  void OnDetach(DeviceId device);

  bool IsQuarantined(DeviceId device) const;
  SupervisionState StateOf(DeviceId device) const;
  // Reset pulses issued in the current failure episode.
  uint32_t AttemptsOf(DeviceId device) const;

  const RestartPolicy& policy() const { return policy_; }

 private:
  struct Record {
    SupervisionState state = SupervisionState::kHealthy;
    uint32_t attempts = 0;  // pulses issued this episode
    std::deque<sim::SimTime> recent_failures;
    // RAII: erasing the record (detach) cancels whatever timer is armed.
    sim::ScopedEvent pending_pulse;
    sim::ScopedEvent deadline;
    sim::SpanId episode_span = 0;
    std::string name;
  };

  // Issues the next pulse (attempt number rec.attempts, 0-based before the
  // increment) either immediately or after its backoff.
  void ScheduleAttempt(DeviceId device, Record& rec);
  void PulseNow(DeviceId device);
  // The restart deadline passed without an alive announce.
  void OnRestartDeadline(DeviceId device);
  void Quarantine(DeviceId device, Record& rec, const std::string& reason);
  void CancelTimers(Record& rec);
  sim::Duration BackoffFor(uint32_t attempt) const;

  sim::Simulator* simulator_;
  RestartPolicy policy_;
  sim::Tracer* tracer_;
  sim::StatsRegistry* stats_;
  Hooks hooks_;
  std::map<DeviceId, Record> records_;
};

}  // namespace lastcpu::bus

#endif  // SRC_BUS_DEVICE_SUPERVISOR_H_
