// Machine: the top-level public API of the lastcpu library.
//
// Assembles one CPU-less machine: simulated clock, physical memory, the
// data-plane fabric, the system management bus (the control plane — the OS
// that no longer runs on a CPU), an external network, and the self-managing
// devices. Figure 1 of the paper, in code:
//
//   core::Machine machine;
//   auto& memctrl = machine.AddMemoryController();
//   auto& ssd = machine.AddSmartSsd();
//   auto& nic = machine.AddSmartNic();
//   machine.Boot();                       // self-test + alive announcements
//   Pasid app = machine.NewApplication("kvs");
//   ... run ...
//   machine.TeardownApplication(app);     // bus-driven task teardown
#ifndef SRC_CORE_MACHINE_H_
#define SRC_CORE_MACHINE_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/bus/system_bus.h"
#include "src/core/control_plane.h"
#include "src/core/fast_path.h"
#include "src/dev/device.h"
#include "src/fabric/fabric.h"
#include "src/mem/physical_memory.h"
#include "src/memdev/memory_controller.h"
#include "src/net/network.h"
#include "src/nicdev/smart_nic.h"
#include "src/sim/crash.h"
#include "src/sim/fault.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"
#include "src/ssddev/smart_ssd.h"

namespace lastcpu::core {

class CrashInjector;

// Rack topology: how many bus segments (chassis) the machine spans and how
// many memory-controller shards Boot() assembles. The all-default spec is the
// classic flat machine — one segment, one hand-added controller — and stays
// bit-identical to pre-rack behaviour.
struct TopologySpec {
  uint32_t segments = 1;
  // Shards Boot() carves physical memory into, spread across the segments.
  // 0 = none; the caller adds controllers itself (flat machine).
  uint32_t memory_shards = 0;
  // Placement policy for clients built from shard_infos().
  AllocationPolicy policy = AllocationPolicy::kHomeNode;
};

struct MachineConfig {
  uint64_t memory_bytes = 256 << 20;
  bus::BusConfig bus;
  fabric::FabricConfig fabric;
  net::NetworkConfig network;
  bool enable_trace = false;
  // Machine-wide, seed-deterministic fault injection on the interconnects.
  // The default all-zero plan builds no injector at all, so a healthy
  // machine pays nothing.
  sim::FaultPlan fault_plan;
  // Seed-deterministic device crash schedule (see src/sim/crash.h). The
  // default empty plan builds no injector. The injector is constructed at
  // Boot(), so the plan must name devices added before then.
  sim::CrashPlan crash_plan;
  // Batching/caching fast paths (off by default; see src/core/fast_path.h).
  // AddSmartSsd seeds its FileService completion window from here, and apps
  // consult it for client-side knobs via Machine::fast_path().
  FastPathConfig fast_path;
  // Rack topology. bus.segments is raised to topology.segments at
  // construction so the two never disagree.
  TopologySpec topology;
};

class Machine {
 public:
  explicit Machine(MachineConfig config = {});
  ~Machine();
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // --- substrate access -------------------------------------------------------

  sim::Simulator& simulator() { return simulator_; }
  sim::TraceLog& trace() { return trace_; }
  // The fault injector, or nullptr when the plan is all-zero.
  sim::FaultInjector* fault_injector() { return faults_.get(); }
  // The crash injector, or nullptr when the plan is empty or Boot() has not
  // run yet.
  CrashInjector* crash_injector() { return crash_injector_.get(); }
  mem::PhysicalMemory& memory() { return memory_; }
  fabric::Fabric& fabric() { return fabric_; }
  bus::SystemBus& bus() { return bus_; }
  net::Network& network() { return network_; }
  const FastPathConfig& fast_path() const { return config_.fast_path; }
  dev::DeviceContext Context() { return dev::DeviceContext{&simulator_, &bus_, &fabric_, &trace_}; }

  // --- device assembly --------------------------------------------------------

  // A fresh device id on `segment` (0 = the classic flat numbering).
  DeviceId NextDeviceId(uint32_t segment = 0);

  memdev::MemoryController& AddMemoryController(memdev::MemoryControllerConfig config = {});
  ssddev::SmartSsd& AddSmartSsd(ssddev::SmartSsdConfig config = {});
  nicdev::SmartNic& AddSmartNic(nicdev::SmartNicConfig config = {});

  // Carves physical memory into `count` equal controller shards, each with
  // its own VA slab (see memdev/shard_layout.h), spread evenly across the
  // configured segments. Boot() calls this when topology.memory_shards > 0.
  std::vector<memdev::MemoryController*> AddMemoryControllerShards(uint32_t count);

  // Adds a custom device type; T's constructor must be (DeviceId,
  // DeviceContext, extra args...).
  template <typename T, typename... Args>
  T& Emplace(Args&&... args) {
    return EmplaceOn<T>(0, std::forward<Args>(args)...);
  }

  // Emplace on a specific bus segment.
  template <typename T, typename... Args>
  T& EmplaceOn(uint32_t segment, Args&&... args) {
    auto device =
        std::make_unique<T>(NextDeviceId(segment), Context(), std::forward<Args>(args)...);
    T& ref = *device;
    devices_.push_back(std::move(device));
    return ref;
  }

  const std::vector<std::unique_ptr<dev::Device>>& devices() const { return devices_; }

  // The controller shards assembled by AddMemoryControllerShards (empty on a
  // flat machine), and their directory records for building sharded clients.
  const std::vector<memdev::MemoryController*>& shard_controllers() const {
    return shard_controllers_;
  }
  const std::vector<ShardInfo>& shard_infos() const { return shard_infos_; }

  // --- lifecycle ---------------------------------------------------------------

  // Powers on every device and runs the simulator until the boot traffic
  // settles (all devices alive, applications started).
  void Boot();

  void RunFor(sim::Duration d) { simulator_.RunFor(d); }
  void RunUntilIdle() { simulator_.Run(); }

  // --- applications --------------------------------------------------------------

  // Registers a distributed application; what identifies it is its virtual
  // address space (paper Sec. 2.2), so this hands out a fresh PASID.
  Pasid NewApplication(const std::string& name);
  // Bus-driven task teardown: every device drops the app's contexts and the
  // memory controller reclaims its memory.
  void TeardownApplication(Pasid pasid);
  const std::vector<std::pair<Pasid, std::string>>& applications() const { return applications_; }

  // Aggregated human-readable statistics from every component.
  std::string StatsReport();

  // --- observability exports ---------------------------------------------------

  // Exports the machine's trace as Chrome trace_event JSON (open in
  // chrome://tracing or Perfetto): one process row per component, spans as
  // duration events, message sends/receives linked by flow arrows. Requires
  // MachineConfig::enable_trace (otherwise writes an empty trace).
  void WriteChromeTrace(std::ostream& os) const;

  // Machine-wide metrics snapshot as JSON: one section per substrate
  // component plus one per device, each holding that component's counters
  // and histogram summaries.
  void MetricsJson(std::ostream& os);

 private:
  MachineConfig config_;
  sim::Simulator simulator_;
  sim::TraceLog trace_;
  std::unique_ptr<sim::FaultInjector> faults_;
  std::unique_ptr<CrashInjector> crash_injector_;
  mem::PhysicalMemory memory_;
  fabric::Fabric fabric_;
  bus::SystemBus bus_;
  net::Network network_;
  std::vector<std::unique_ptr<dev::Device>> devices_;
  std::vector<memdev::MemoryController*> shard_controllers_;
  std::vector<ShardInfo> shard_infos_;
  uint32_t next_device_id_ = 1;
  // Per-segment local-id counters for segments >= 1 (index 0 unused; segment
  // 0 keeps the flat next_device_id_ numbering).
  std::vector<uint32_t> next_local_id_;
  uint32_t next_pasid_ = 1;
  std::vector<std::pair<Pasid, std::string>> applications_;
};

}  // namespace lastcpu::core

#endif  // SRC_CORE_MACHINE_H_
