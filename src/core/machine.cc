#include "src/core/machine.h"

#include <algorithm>
#include <ostream>

#include "src/base/check.h"
#include "src/core/crash_injector.h"
#include "src/memdev/shard_layout.h"
#include "src/sim/trace_export.h"

namespace lastcpu::core {
namespace {

// Keeps the topology spec and the bus config in agreement before either
// substrate is constructed.
MachineConfig NormalizeTopology(MachineConfig config) {
  if (config.topology.segments == 0) {
    config.topology.segments = 1;
  }
  config.bus.segments = std::max(config.bus.segments, config.topology.segments);
  return config;
}

}  // namespace

Machine::Machine(MachineConfig config)
    : config_(NormalizeTopology(std::move(config))),
      memory_(config_.memory_bytes),
      fabric_(&simulator_, &memory_, config_.fabric, &trace_),
      bus_(&simulator_, config_.bus, &trace_),
      network_(&simulator_, config_.network) {
  if (config_.enable_trace) {
    trace_.Enable();
  }
  if (config_.fault_plan.enabled()) {
    // One injector shared by both interconnects: the bus and the fabric draw
    // from the same seeded sequence, so a (seed, plan) pair fully determines
    // every fault in the machine.
    faults_ = std::make_unique<sim::FaultInjector>(config_.fault_plan);
    bus_.SetFaultInjector(faults_.get());
    fabric_.SetFaultInjector(faults_.get());
  }
}

// Out of line: the header only forward-declares CrashInjector. The injector
// unhooks its bus and device observers, so it must die before they do.
Machine::~Machine() { crash_injector_.reset(); }

DeviceId Machine::NextDeviceId(uint32_t segment) {
  if (segment == 0) {
    // Flat numbering, unchanged from the single-chassis machine.
    return DeviceId(next_device_id_++);
  }
  LASTCPU_CHECK(segment < config_.topology.segments, "segment %u out of range", segment);
  if (next_local_id_.size() <= segment) {
    next_local_id_.resize(segment + 1, 1);
  }
  return MakeSegmentDeviceId(segment, next_local_id_[segment]++);
}

std::vector<memdev::MemoryController*> Machine::AddMemoryControllerShards(uint32_t count) {
  LASTCPU_CHECK(count > 0, "a sharded machine needs at least one shard");
  LASTCPU_CHECK(shard_controllers_.empty(), "controller shards already assembled");
  uint64_t frames = memory_.num_frames();
  LASTCPU_CHECK(frames >= count, "fewer physical frames than shards");
  uint32_t segments = config_.topology.segments;
  uint64_t frame_base = 0;
  std::vector<memdev::MemoryController*> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t share = frames / count + (i < frames % count ? 1 : 0);
    // Shard i lives on segment floor(i * segments / count): contiguous runs
    // of shards per chassis, every chassis covered when count >= segments.
    uint32_t segment = static_cast<uint32_t>(uint64_t{i} * segments / count);
    memdev::MemoryControllerConfig shard_config;
    shard_config.frame_base = frame_base;
    shard_config.frame_count = share;
    shard_config.va_base = memdev::ShardVaBase(i);
    shard_config.va_limit = memdev::ShardVaLimit(i);
    shard_config.segment = segment;
    auto device = std::make_unique<memdev::MemoryController>(NextDeviceId(segment), Context(),
                                                             &memory_, shard_config);
    shard_infos_.push_back(ShardInfo{device->id(), segment, shard_config.va_base,
                                     shard_config.va_limit, share * kPageSize});
    fabric_.SetSegmentForFrames(frame_base, share, segment);
    shard_controllers_.push_back(device.get());
    out.push_back(device.get());
    devices_.push_back(std::move(device));
    frame_base += share;
  }
  return out;
}

memdev::MemoryController& Machine::AddMemoryController(memdev::MemoryControllerConfig config) {
  auto device =
      std::make_unique<memdev::MemoryController>(NextDeviceId(), Context(), &memory_, config);
  auto& ref = *device;
  devices_.push_back(std::move(device));
  return ref;
}

ssddev::SmartSsd& Machine::AddSmartSsd(ssddev::SmartSsdConfig config) {
  if (config.file_service.completion_batch_window <= sim::Duration::Zero()) {
    config.file_service.completion_batch_window = config_.fast_path.completion_batch_window;
  }
  auto device = std::make_unique<ssddev::SmartSsd>(NextDeviceId(), Context(), config);
  auto& ref = *device;
  devices_.push_back(std::move(device));
  return ref;
}

nicdev::SmartNic& Machine::AddSmartNic(nicdev::SmartNicConfig config) {
  auto device = std::make_unique<nicdev::SmartNic>(NextDeviceId(), Context(), &network_, config);
  auto& ref = *device;
  devices_.push_back(std::move(device));
  return ref;
}

void Machine::Boot() {
  if (config_.topology.memory_shards > 0 && shard_controllers_.empty()) {
    AddMemoryControllerShards(config_.topology.memory_shards);
  }
  if (config_.crash_plan.enabled() && crash_injector_ == nullptr) {
    // Before PowerOn, so a during_self_test spec can sabotage the very first
    // self-test of the boot sequence.
    crash_injector_ =
        std::make_unique<CrashInjector>(&simulator_, &bus_, devices_, config_.crash_plan);
  }
  for (auto& device : devices_) {
    if (device->state() == dev::Device::State::kPoweredOff) {
      device->PowerOn();
    }
  }
  simulator_.Run();
}

Pasid Machine::NewApplication(const std::string& name) {
  Pasid pasid(next_pasid_++);
  applications_.emplace_back(pasid, name);
  return pasid;
}

void Machine::TeardownApplication(Pasid pasid) {
  proto::Message message;
  message.dst = kBusDevice;
  message.payload = proto::TeardownApp{pasid};
  bus_.AdminSend(std::move(message));
}

std::string Machine::StatsReport() {
  std::string out;
  out += "== bus ==\n" + bus_.stats().Report("  ");
  out += "== fabric ==\n" + fabric_.stats().Report("  ");
  out += "== network ==\n" + network_.stats().Report("  ");
  for (auto& device : devices_) {
    out += "== " + device->name() + " (id " + std::to_string(device->id().value()) + ") ==\n";
    out += device->stats().Report("  ");
  }
  return out;
}

void Machine::WriteChromeTrace(std::ostream& os) const {
  sim::WriteChromeTrace(trace_, os);
}

void Machine::MetricsJson(std::ostream& os) {
  os << "{";
  if (faults_ != nullptr) {
    os << "\"faults\":{\"decisions\":" << faults_->decisions()
       << ",\"dropped\":" << faults_->dropped() << ",\"delayed\":" << faults_->delayed()
       << ",\"duplicated\":" << faults_->duplicated()
       << ",\"reordered\":" << faults_->reordered() << "},";
  }
  if (crash_injector_ != nullptr) {
    os << "\"crashes\":{\"injected\":" << crash_injector_->crashes_injected()
       << ",\"self_test\":" << crash_injector_->self_test_crashes()
       << ",\"specs_skipped\":" << crash_injector_->specs_skipped() << "},";
  }
  // Supervisor counters live in the bus registry; surface the headline ones
  // as their own section so operators need not dig through bus counters.
  {
    sim::StatsRegistry& bus_stats = bus_.stats();
    os << "\"supervisor\":{\"restarts\":" << bus_stats.GetCounter("supervisor_restarts").value()
       << ",\"recoveries\":" << bus_stats.GetCounter("supervisor_recoveries").value()
       << ",\"restart_timeouts\":"
       << bus_stats.GetCounter("supervisor_restart_timeouts").value()
       << ",\"quarantines\":" << bus_stats.GetCounter("supervisor_quarantines").value()
       << ",\"permanent_failures\":"
       << bus_stats.GetCounter("supervisor_permanent_failures").value() << "},";
  }
  // Rack topology sections (omitted entirely on a flat machine, so its
  // metrics stream is unchanged).
  const auto& segments = bus_.segment_counters();
  if (segments.size() > 1) {
    os << "\"segments\":[";
    for (size_t i = 0; i < segments.size(); ++i) {
      if (i != 0) {
        os << ",";
      }
      os << "{\"delivered_local\":" << segments[i].delivered_local
         << ",\"routed_out\":" << segments[i].routed_out
         << ",\"routed_in\":" << segments[i].routed_in
         << ",\"broadcast_copies\":" << segments[i].broadcast_copies << "}";
    }
    os << "],";
  }
  if (!shard_controllers_.empty()) {
    os << "\"memory_shards\":[";
    for (size_t i = 0; i < shard_controllers_.size(); ++i) {
      memdev::MemoryController* shard = shard_controllers_[i];
      if (i != 0) {
        os << ",";
      }
      sim::StatsRegistry& shard_stats = shard->stats();
      os << "{\"device\":" << shard->id().value()
         << ",\"segment\":" << shard->controller_config().segment
         << ",\"allocations\":" << shard_stats.GetCounter("allocations").value()
         << ",\"frees\":" << shard_stats.GetCounter("frees").value()
         << ",\"grants\":" << shard_stats.GetCounter("grants").value()
         << ",\"permanent_reclaims\":" << shard_stats.GetCounter("permanent_reclaims").value()
         << ",\"stranded_grants_reclaimed\":"
         << shard_stats.GetCounter("stranded_grants_reclaimed").value()
         << ",\"total_frames\":" << shard->allocator().total_frames()
         << ",\"free_frames\":" << shard->allocator().free_frames() << "}";
    }
    os << "],";
  }
  // Per-SSD storage health: write amplification, GC work, free-space stalls,
  // wear spread, and power-loss recoveries. Omitted when the machine has no
  // smart SSD, so diskless configs keep their metrics stream unchanged.
  {
    bool any_ssd = false;
    for (auto& device : devices_) {
      auto* ssd = dynamic_cast<ssddev::SmartSsd*>(device.get());
      if (ssd == nullptr) {
        continue;
      }
      os << (any_ssd ? "," : "\"storage\":[");
      any_ssd = true;
      ssddev::Ftl& ftl = ssd->ftl();
      os << "{\"device\":" << ssd->id().value()
         << ",\"write_amplification\":" << ftl.WriteAmplification()
         << ",\"host_writes\":" << ftl.host_writes()
         << ",\"nand_writes\":" << ftl.nand_writes()
         << ",\"gc_runs\":" << ftl.gc_runs()
         << ",\"gc_relocated_pages\":" << ftl.gc_relocated_pages()
         << ",\"write_stalls\":" << ftl.write_stalls()
         << ",\"erase_count_min\":" << ssd->nand().MinEraseCount()
         << ",\"erase_count_max\":" << ssd->nand().MaxEraseCount()
         << ",\"recoveries\":" << ftl.recoveries()
         << ",\"recovered_pages\":" << ftl.stats().GetCounter("recovered_pages").value()
         << ",\"torn_pages_discarded\":"
         << ftl.stats().GetCounter("torn_pages_discarded").value() << "}";
    }
    if (any_ssd) {
      os << "],";
    }
  }
  os << "\"bus\":";
  bus_.stats().Snapshot().WriteJson(os);
  os << ",\"fabric\":";
  fabric_.stats().Snapshot().WriteJson(os);
  os << ",\"network\":";
  network_.stats().Snapshot().WriteJson(os);
  os << ",\"devices\":{";
  bool first = true;
  for (auto& device : devices_) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "\"" << device->name() << "\":";
    device->stats().Snapshot().WriteJson(os);
  }
  os << "}}\n";
}

}  // namespace lastcpu::core
