#include "src/core/machine.h"

#include <ostream>

#include "src/core/crash_injector.h"
#include "src/sim/trace_export.h"

namespace lastcpu::core {

Machine::Machine(MachineConfig config)
    : config_(config),
      memory_(config.memory_bytes),
      fabric_(&simulator_, &memory_, config.fabric, &trace_),
      bus_(&simulator_, config.bus, &trace_),
      network_(&simulator_, config.network) {
  if (config.enable_trace) {
    trace_.Enable();
  }
  if (config.fault_plan.enabled()) {
    // One injector shared by both interconnects: the bus and the fabric draw
    // from the same seeded sequence, so a (seed, plan) pair fully determines
    // every fault in the machine.
    faults_ = std::make_unique<sim::FaultInjector>(config.fault_plan);
    bus_.SetFaultInjector(faults_.get());
    fabric_.SetFaultInjector(faults_.get());
  }
}

// Out of line: the header only forward-declares CrashInjector. The injector
// unhooks its bus and device observers, so it must die before they do.
Machine::~Machine() { crash_injector_.reset(); }

memdev::MemoryController& Machine::AddMemoryController(memdev::MemoryControllerConfig config) {
  auto device =
      std::make_unique<memdev::MemoryController>(NextDeviceId(), Context(), &memory_, config);
  auto& ref = *device;
  devices_.push_back(std::move(device));
  return ref;
}

ssddev::SmartSsd& Machine::AddSmartSsd(ssddev::SmartSsdConfig config) {
  if (config.file_service.completion_batch_window <= sim::Duration::Zero()) {
    config.file_service.completion_batch_window = config_.fast_path.completion_batch_window;
  }
  auto device = std::make_unique<ssddev::SmartSsd>(NextDeviceId(), Context(), config);
  auto& ref = *device;
  devices_.push_back(std::move(device));
  return ref;
}

nicdev::SmartNic& Machine::AddSmartNic(nicdev::SmartNicConfig config) {
  auto device = std::make_unique<nicdev::SmartNic>(NextDeviceId(), Context(), &network_, config);
  auto& ref = *device;
  devices_.push_back(std::move(device));
  return ref;
}

void Machine::Boot() {
  if (config_.crash_plan.enabled() && crash_injector_ == nullptr) {
    // Before PowerOn, so a during_self_test spec can sabotage the very first
    // self-test of the boot sequence.
    crash_injector_ =
        std::make_unique<CrashInjector>(&simulator_, &bus_, devices_, config_.crash_plan);
  }
  for (auto& device : devices_) {
    if (device->state() == dev::Device::State::kPoweredOff) {
      device->PowerOn();
    }
  }
  simulator_.Run();
}

Pasid Machine::NewApplication(const std::string& name) {
  Pasid pasid(next_pasid_++);
  applications_.emplace_back(pasid, name);
  return pasid;
}

void Machine::TeardownApplication(Pasid pasid) {
  proto::Message message;
  message.dst = kBusDevice;
  message.payload = proto::TeardownApp{pasid};
  bus_.AdminSend(std::move(message));
}

std::string Machine::StatsReport() {
  std::string out;
  out += "== bus ==\n" + bus_.stats().Report("  ");
  out += "== fabric ==\n" + fabric_.stats().Report("  ");
  out += "== network ==\n" + network_.stats().Report("  ");
  for (auto& device : devices_) {
    out += "== " + device->name() + " (id " + std::to_string(device->id().value()) + ") ==\n";
    out += device->stats().Report("  ");
  }
  return out;
}

void Machine::WriteChromeTrace(std::ostream& os) const {
  sim::WriteChromeTrace(trace_, os);
}

void Machine::MetricsJson(std::ostream& os) {
  os << "{";
  if (faults_ != nullptr) {
    os << "\"faults\":{\"decisions\":" << faults_->decisions()
       << ",\"dropped\":" << faults_->dropped() << ",\"delayed\":" << faults_->delayed()
       << ",\"duplicated\":" << faults_->duplicated()
       << ",\"reordered\":" << faults_->reordered() << "},";
  }
  if (crash_injector_ != nullptr) {
    os << "\"crashes\":{\"injected\":" << crash_injector_->crashes_injected()
       << ",\"self_test\":" << crash_injector_->self_test_crashes()
       << ",\"specs_skipped\":" << crash_injector_->specs_skipped() << "},";
  }
  // Supervisor counters live in the bus registry; surface the headline ones
  // as their own section so operators need not dig through bus counters.
  {
    sim::StatsRegistry& bus_stats = bus_.stats();
    os << "\"supervisor\":{\"restarts\":" << bus_stats.GetCounter("supervisor_restarts").value()
       << ",\"recoveries\":" << bus_stats.GetCounter("supervisor_recoveries").value()
       << ",\"restart_timeouts\":"
       << bus_stats.GetCounter("supervisor_restart_timeouts").value()
       << ",\"quarantines\":" << bus_stats.GetCounter("supervisor_quarantines").value()
       << ",\"permanent_failures\":"
       << bus_stats.GetCounter("supervisor_permanent_failures").value() << "},";
  }
  os << "\"bus\":";
  bus_.stats().Snapshot().WriteJson(os);
  os << ",\"fabric\":";
  fabric_.stats().Snapshot().WriteJson(os);
  os << ",\"network\":";
  network_.stats().Snapshot().WriteJson(os);
  os << ",\"devices\":{";
  bool first = true;
  for (auto& device : devices_) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "\"" << device->name() << "\":";
    device->stats().Snapshot().WriteJson(os);
  }
  os << "}}\n";
}

}  // namespace lastcpu::core
