// ControlClient: one interface over both control-plane designs.
//
// The benchmarks issue the same logical operations (allocate, grant, free)
// against either the decentralized bus (BusControlClient — the paper's
// design) or the centralized kernel (KernelControlClient — the baseline), so
// every measured difference comes from *where* control runs, not what it
// does.
//
// Every operation completes with one callback shape, Callback<T> (see
// base/status.h): value-producing ops get Result<T>, status-only ops get
// Result<void>. The *Sync variants drive the simulator until the operation
// completes — for tests and setup code that don't care about overlap.
#ifndef SRC_CORE_CONTROL_PLANE_H_
#define SRC_CORE_CONTROL_PLANE_H_

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/baseline/central_kernel.h"
#include "src/dev/device.h"

namespace lastcpu::core {

class ControlClient {
 public:
  virtual ~ControlClient() = default;

  // Allocates and maps `bytes` into `pasid` for this client's device.
  virtual void Alloc(Pasid pasid, uint64_t bytes, Callback<VirtAddr> done) = 0;
  // Grants an owned region to another device.
  virtual void Grant(Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee, Access access,
                     Callback<void> done) = 0;
  // Releases an owned allocation.
  virtual void Free(Pasid pasid, VirtAddr vaddr, uint64_t bytes, Callback<void> done) = 0;

  // The simulator the asynchronous completions run on.
  virtual sim::Simulator* simulator() = 0;

  // Blocking variants: issue the operation and Step() the simulator until it
  // completes. Events already pending execute too — callers own the clock.
  // kTimedOut if the simulator runs dry before the completion fires.
  Result<VirtAddr> AllocSync(Pasid pasid, uint64_t bytes);
  Result<void> GrantSync(Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee,
                         Access access);
  Result<void> FreeSync(Pasid pasid, VirtAddr vaddr, uint64_t bytes);
};

// Decentralized: operations travel the system bus from `requester` to the
// memory controller; the bus programs IOMMUs on the controller's directives.
class BusControlClient : public ControlClient {
 public:
  // `memctrl` is the memory controller's device id (from discovery).
  BusControlClient(dev::Device* requester, DeviceId memctrl);

  void Alloc(Pasid pasid, uint64_t bytes, Callback<VirtAddr> done) override;
  void Grant(Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee, Access access,
             Callback<void> done) override;
  void Free(Pasid pasid, VirtAddr vaddr, uint64_t bytes, Callback<void> done) override;
  sim::Simulator* simulator() override { return requester_->simulator(); }

 private:
  dev::Device* requester_;
  DeviceId memctrl_;
};

// Centralized: operations are syscalls into the one kernel, on behalf of
// device `self`.
class KernelControlClient : public ControlClient {
 public:
  KernelControlClient(baseline::CentralKernel* kernel, DeviceId self);

  void Alloc(Pasid pasid, uint64_t bytes, Callback<VirtAddr> done) override;
  void Grant(Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee, Access access,
             Callback<void> done) override;
  void Free(Pasid pasid, VirtAddr vaddr, uint64_t bytes, Callback<void> done) override;
  sim::Simulator* simulator() override { return kernel_->simulator(); }

 private:
  baseline::CentralKernel* kernel_;
  DeviceId self_;
};

}  // namespace lastcpu::core

#endif  // SRC_CORE_CONTROL_PLANE_H_
