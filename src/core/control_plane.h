// ControlClient: one interface over both control-plane designs.
//
// The benchmarks issue the same logical operations (allocate, grant, free)
// against either the decentralized bus (BusControlClient — the paper's
// design) or the centralized kernel (KernelControlClient — the baseline), so
// every measured difference comes from *where* control runs, not what it
// does.
//
// Every operation completes with one callback shape, Callback<T> (see
// base/status.h): value-producing ops get Result<T>, status-only ops get
// Result<void>. The *Sync variants drive the simulator until the operation
// completes — for tests and setup code that don't care about overlap.
#ifndef SRC_CORE_CONTROL_PLANE_H_
#define SRC_CORE_CONTROL_PLANE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/baseline/central_kernel.h"
#include "src/core/fast_path.h"
#include "src/dev/device.h"

namespace lastcpu::core {

class ControlClient {
 public:
  virtual ~ControlClient() = default;

  // Allocates and maps `bytes` into `pasid` for this client's device.
  virtual void Alloc(Pasid pasid, uint64_t bytes, Callback<VirtAddr> done) = 0;
  // Grants an owned region to another device.
  virtual void Grant(Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee, Access access,
                     Callback<void> done) = 0;
  // Releases an owned allocation.
  virtual void Free(Pasid pasid, VirtAddr vaddr, uint64_t bytes, Callback<void> done) = 0;

  // Bulk variants: lease `count` regions of `bytes` each / return several
  // equally sized regions, in one control-plane round trip. The magazine fast
  // path builds on these; they are also usable directly.
  virtual void AllocBatch(Pasid pasid, uint64_t bytes, uint32_t count,
                          Callback<std::vector<VirtAddr>> done) = 0;
  virtual void FreeBatch(Pasid pasid, std::vector<VirtAddr> vaddrs, uint64_t bytes,
                         Callback<void> done) = 0;

  // The simulator the asynchronous completions run on.
  virtual sim::Simulator* simulator() = 0;

  // Blocking variants: issue the operation and Step() the simulator until it
  // completes. Events already pending execute too — callers own the clock.
  // kTimedOut if the simulator runs dry before the completion fires.
  Result<VirtAddr> AllocSync(Pasid pasid, uint64_t bytes);
  Result<void> GrantSync(Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee,
                         Access access);
  Result<void> FreeSync(Pasid pasid, VirtAddr vaddr, uint64_t bytes);
  Result<std::vector<VirtAddr>> AllocBatchSync(Pasid pasid, uint64_t bytes, uint32_t count);
  Result<void> FreeBatchSync(Pasid pasid, std::vector<VirtAddr> vaddrs, uint64_t bytes);
};

// Decentralized: operations travel the system bus from `requester` to the
// memory controller; the bus programs IOMMUs on the controller's directives.
class BusControlClient : public ControlClient {
 public:
  // `memctrl` is the memory controller's device id (from discovery).
  BusControlClient(dev::Device* requester, DeviceId memctrl);

  void Alloc(Pasid pasid, uint64_t bytes, Callback<VirtAddr> done) override;
  void Grant(Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee, Access access,
             Callback<void> done) override;
  void Free(Pasid pasid, VirtAddr vaddr, uint64_t bytes, Callback<void> done) override;
  void AllocBatch(Pasid pasid, uint64_t bytes, uint32_t count,
                  Callback<std::vector<VirtAddr>> done) override;
  void FreeBatch(Pasid pasid, std::vector<VirtAddr> vaddrs, uint64_t bytes,
                 Callback<void> done) override;
  sim::Simulator* simulator() override { return requester_->simulator(); }

 private:
  dev::Device* requester_;
  DeviceId memctrl_;
};

// Where a sharded rack places fresh allocations (tried in order; a full or
// offline shard spills to the next candidate).
enum class AllocationPolicy {
  kHomeNode,       // prefer shards on the requester's own segment
  kInterleave,     // round-robin across every shard
  kCapacityAware,  // shard with the most estimated free bytes first
};

// One controller shard as a client sees it (from the bus shard directory).
struct ShardInfo {
  DeviceId device;
  uint32_t segment = 0;
  uint64_t va_base = 0;
  uint64_t va_limit = 0;
  uint64_t capacity_bytes = 0;
};

// Failover behaviour of the sharded client. The defaults ride out a shard
// restart (~hundreds of microseconds of blackout) without surfacing
// kUnavailable to the application.
struct ShardedClientConfig {
  // Whole-operation retry: when every candidate shard answered kUnavailable /
  // kPartitioned (a failover or partition window), the operation re-resolves
  // and retries after this backoff, up to max_op_retries times.
  sim::Duration retry_backoff = sim::Duration::Micros(50);
  uint32_t max_op_retries = 20;
  // Lease re-assertion pacing: retries while the target shard is still
  // rebooting or the takeover has not landed yet.
  sim::Duration reassert_backoff = sim::Duration::Micros(100);
  uint32_t max_reassert_attempts = 40;
  // Master switch for the lease ledger + re-assertion machinery (off turns
  // the client back into the fail-fast PR-8 behaviour).
  bool reassert_leases = true;
};

// Decentralized, rack-scale: allocations pick a controller shard by policy
// and go to it directly; grant/free ride through the bus, which routes them
// to the owning shard by virtual address (each shard bump-allocates in its
// own VA slab, so ownership is a pure address function). Drops in anywhere a
// BusControlClient fits — MagazineClient wraps it unchanged.
class ShardedControlClient : public ControlClient {
 public:
  // `shards` is the directory snapshot (e.g. Machine::shard_infos()); order
  // defines the deterministic round-robin sequence. The requester's segment
  // (from its device id) anchors the home-node policy.
  ShardedControlClient(dev::Device* requester, std::vector<ShardInfo> shards,
                       AllocationPolicy policy = AllocationPolicy::kHomeNode,
                       ShardedClientConfig config = {});
  ~ShardedControlClient() override;

  void Alloc(Pasid pasid, uint64_t bytes, Callback<VirtAddr> done) override;
  void Grant(Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee, Access access,
             Callback<void> done) override;
  void Free(Pasid pasid, VirtAddr vaddr, uint64_t bytes, Callback<void> done) override;
  void AllocBatch(Pasid pasid, uint64_t bytes, uint32_t count,
                  Callback<std::vector<VirtAddr>> done) override;
  void FreeBatch(Pasid pasid, std::vector<VirtAddr> vaddrs, uint64_t bytes,
                 Callback<void> done) override;
  sim::Simulator* simulator() override;

  // Introspection for tests and benches.
  uint64_t spills() const { return spills_; }
  uint64_t op_retries() const { return op_retries_; }
  uint64_t reasserts_sent() const { return reasserts_sent_; }
  uint64_t leases_reasserted() const { return leases_reasserted_; }
  uint64_t leases_lost() const { return leases_lost_; }
  uint64_t directory_refreshes() const { return directory_refreshes_; }
  size_t lease_count() const { return leases_.size(); }
  // Bytes this client believes are outstanding on `shard` (its own estimate;
  // capacity-aware placement runs on it, no controller round trip).
  uint64_t OutstandingBytes(DeviceId shard) const;

 private:
  struct Shard {
    ShardInfo info;
    bool alive = true;
    uint64_t outstanding_bytes = 0;
  };

  // The client's copy of one allocation: everything a controller needs to
  // rebuild its table entry after losing it (see LeaseReassertRequest).
  struct Lease {
    Pasid pasid;
    uint64_t bytes = 0;  // page-rounded
    uint64_t first_frame = 0;
    Access access = Access::kReadWrite;
    std::vector<proto::LeaseGrant> grants;
  };

  // Shard indexes in preference order under the active policy, skipping dead
  // shards and duplicate devices (a successor serving adopted slabs is one
  // candidate, not several). Deterministic: round-robin state + stable
  // tie-breaks only.
  std::vector<size_t> CandidateOrder();
  // The shard whose VA slab contains `vaddr` (for outstanding accounting).
  Shard* ShardForVa(VirtAddr vaddr);
  bool IsShardDevice(DeviceId device) const;
  // kUnavailable / kPartitioned: transient, worth re-resolving and retrying.
  static bool Retryable(const Status& status);

  void AllocAttempt(Pasid pasid, uint64_t bytes, uint32_t retries, Callback<VirtAddr> done);
  void TryAlloc(Pasid pasid, uint64_t bytes, std::vector<size_t> order, size_t attempt,
                uint32_t retries, Callback<VirtAddr> done);
  void AllocBatchAttempt(Pasid pasid, uint64_t bytes, uint32_t count, uint32_t retries,
                         Callback<std::vector<VirtAddr>> done);
  void TryAllocBatch(Pasid pasid, uint64_t bytes, uint32_t count, std::vector<size_t> order,
                     size_t attempt, uint32_t retries, Callback<std::vector<VirtAddr>> done);
  void FreeAttempt(Pasid pasid, VirtAddr vaddr, uint64_t bytes, uint32_t retries,
                   Callback<void> done);
  void GrantAttempt(Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee, Access access,
                    uint32_t retries, Callback<void> done);

  // Lease ledger maintenance.
  void RecordLease(Pasid pasid, VirtAddr vaddr, uint64_t bytes, uint64_t first_frame);
  Lease* LeaseCovering(VirtAddr vaddr);

  // Re-fetches the shard directory from the bus (after a shard was
  // permanently failed and its slabs repointed), rebuilds shards_, and
  // re-asserts leases in every slab whose owner changed.
  void RefreshDirectory(uint32_t attempt);
  void AdoptDirectory(const std::vector<proto::ShardRecord>& records);
  // Sends every lease whose slab `target` now owns to it, retrying while the
  // shard is still rebooting. Idempotent on the controller side.
  void ReassertLeasesFor(DeviceId target, uint32_t attempt);

  dev::Device* requester_;
  AllocationPolicy policy_;
  ShardedClientConfig config_;
  std::vector<Shard> shards_;
  std::map<uint64_t, Lease> leases_;  // keyed by vaddr.raw
  size_t rr_next_ = 0;
  uint64_t spills_ = 0;
  uint64_t op_retries_ = 0;
  uint64_t reasserts_sent_ = 0;
  uint64_t leases_reasserted_ = 0;
  uint64_t leases_lost_ = 0;
  uint64_t directory_refreshes_ = 0;
  uint64_t failed_token_ = 0;
  uint64_t perm_failed_token_ = 0;
};

// Centralized: operations are syscalls into the one kernel, on behalf of
// device `self`.
class KernelControlClient : public ControlClient {
 public:
  KernelControlClient(baseline::CentralKernel* kernel, DeviceId self);

  void Alloc(Pasid pasid, uint64_t bytes, Callback<VirtAddr> done) override;
  void Grant(Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee, Access access,
             Callback<void> done) override;
  void Free(Pasid pasid, VirtAddr vaddr, uint64_t bytes, Callback<void> done) override;
  void AllocBatch(Pasid pasid, uint64_t bytes, uint32_t count,
                  Callback<std::vector<VirtAddr>> done) override;
  void FreeBatch(Pasid pasid, std::vector<VirtAddr> vaddrs, uint64_t bytes,
                 Callback<void> done) override;
  sim::Simulator* simulator() override { return kernel_->simulator(); }

 private:
  baseline::CentralKernel* kernel_;
  DeviceId self_;
};

// The grant-magazine fast path: a decorator over either client that caches
// leased regions per (pasid, size class). Alloc pops a cached region (one
// local `hit_latency`, zero bus messages); Free pushes the region back still
// mapped, to be recycled by a later Alloc. The magazine refills via one
// AllocBatch round trip when stock drops below the low watermark and drains
// via FreeBatch above the high watermark, so the amortized control-plane cost
// of an alloc/free pair falls from 6 messages to ~(6/refill_batch).
//
// Lease semantics: cached regions stay in the memory controller's table with
// this device as owner. If the device dies with a stocked magazine, the
// controller's quarantine/teardown reclamation frees them — nothing is
// stranded. Conversely, if the *controller* fails, the hosted hooks drop the
// local stock (the mappings are gone) and fail any queued waiters.
class MagazineClient : public ControlClient {
 public:
  // `inner` is the transport (bus or kernel client) and must outlive this.
  // `host` (optional) registers peer-failure hooks so a memory-controller
  // death at `memctrl` drops the cached stock; pass nullptr when the caller
  // manages invalidation itself (e.g. kernel-backed benches).
  MagazineClient(ControlClient* inner, MagazineConfig config, dev::Device* host = nullptr,
                 DeviceId memctrl = DeviceId());
  ~MagazineClient() override;

  void Alloc(Pasid pasid, uint64_t bytes, Callback<VirtAddr> done) override;
  void Grant(Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee, Access access,
             Callback<void> done) override;
  void Free(Pasid pasid, VirtAddr vaddr, uint64_t bytes, Callback<void> done) override;
  void AllocBatch(Pasid pasid, uint64_t bytes, uint32_t count,
                  Callback<std::vector<VirtAddr>> done) override;
  void FreeBatch(Pasid pasid, std::vector<VirtAddr> vaddrs, uint64_t bytes,
                 Callback<void> done) override;
  sim::Simulator* simulator() override { return inner_->simulator(); }

  // Returns every cached region to the controller (teardown hygiene, so
  // tests asserting allocation_count()==0 can settle the lease).
  void Flush(Callback<void> done);
  Result<void> FlushSync();

  // Drops the cached stock without returning it (controller death or host
  // reset: the mappings are gone, the lease is reclaimed server-side). Queued
  // waiters fail with kUnavailable.
  void DropAll();

  // Introspection for tests and benches.
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t refills() const { return refills_; }
  uint64_t drains() const { return drains_; }
  uint64_t drain_failures() const { return drain_failures_; }
  uint64_t cached_regions() const;

 private:
  // One size class of cached regions: (pasid, pages) -> stock + waiters.
  struct Magazine {
    std::vector<VirtAddr> free;
    std::deque<Callback<VirtAddr>> waiters;
    bool refill_in_flight = false;
    bool drain_in_flight = false;
  };
  using Key = std::pair<uint32_t, uint64_t>;  // (pasid value, pages)

  void MaybeRefill(Pasid pasid, uint64_t pages);
  void MaybeDrain(Pasid pasid, uint64_t pages);

  ControlClient* inner_;
  MagazineConfig config_;
  dev::Device* host_;
  DeviceId memctrl_;
  uint64_t failed_token_ = 0;
  uint64_t perm_failed_token_ = 0;
  std::map<Key, Magazine> magazines_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t refills_ = 0;
  uint64_t drains_ = 0;
  uint64_t drain_failures_ = 0;
};

}  // namespace lastcpu::core

#endif  // SRC_CORE_CONTROL_PLANE_H_
