// ControlClient: one interface over both control-plane designs.
//
// The benchmarks issue the same logical operations (allocate, grant, free)
// against either the decentralized bus (BusControlClient — the paper's
// design) or the centralized kernel (KernelControlClient — the baseline), so
// every measured difference comes from *where* control runs, not what it
// does.
#ifndef SRC_CORE_CONTROL_PLANE_H_
#define SRC_CORE_CONTROL_PLANE_H_

#include <functional>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/baseline/central_kernel.h"
#include "src/dev/device.h"

namespace lastcpu::core {

class ControlClient {
 public:
  using AllocCallback = std::function<void(Result<VirtAddr>)>;
  using StatusCallback = std::function<void(Status)>;

  virtual ~ControlClient() = default;

  // Allocates and maps `bytes` into `pasid` for this client's device.
  virtual void Alloc(Pasid pasid, uint64_t bytes, AllocCallback done) = 0;
  // Grants an owned region to another device.
  virtual void Grant(Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee, Access access,
                     StatusCallback done) = 0;
  // Releases an owned allocation.
  virtual void Free(Pasid pasid, VirtAddr vaddr, uint64_t bytes, StatusCallback done) = 0;
};

// Decentralized: operations travel the system bus from `requester` to the
// memory controller; the bus programs IOMMUs on the controller's directives.
class BusControlClient : public ControlClient {
 public:
  // `memctrl` is the memory controller's device id (from discovery).
  BusControlClient(dev::Device* requester, DeviceId memctrl);

  void Alloc(Pasid pasid, uint64_t bytes, AllocCallback done) override;
  void Grant(Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee, Access access,
             StatusCallback done) override;
  void Free(Pasid pasid, VirtAddr vaddr, uint64_t bytes, StatusCallback done) override;

 private:
  dev::Device* requester_;
  DeviceId memctrl_;
};

// Centralized: operations are syscalls into the one kernel, on behalf of
// device `self`.
class KernelControlClient : public ControlClient {
 public:
  KernelControlClient(baseline::CentralKernel* kernel, DeviceId self);

  void Alloc(Pasid pasid, uint64_t bytes, AllocCallback done) override;
  void Grant(Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee, Access access,
             StatusCallback done) override;
  void Free(Pasid pasid, VirtAddr vaddr, uint64_t bytes, StatusCallback done) override;

 private:
  baseline::CentralKernel* kernel_;
  DeviceId self_;
};

}  // namespace lastcpu::core

#endif  // SRC_CORE_CONTROL_PLANE_H_
