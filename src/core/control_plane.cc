#include "src/core/control_plane.h"

#include <optional>
#include <utility>

#include "src/base/check.h"

namespace lastcpu::core {
namespace {

// Issues `op` (which completes some Callback<T>) and steps the simulator
// until the completion lands.
template <typename T, typename Op>
Result<T> RunSync(sim::Simulator* simulator, Op op) {
  std::optional<Result<T>> out;
  op([&out](Result<T> result) { out = std::move(result); });
  while (!out && simulator->Step()) {
  }
  if (!out) {
    return TimedOut("simulator ran dry before the operation completed");
  }
  return std::move(*out);
}

}  // namespace

Result<VirtAddr> ControlClient::AllocSync(Pasid pasid, uint64_t bytes) {
  return RunSync<VirtAddr>(simulator(), [&](Callback<VirtAddr> done) {
    Alloc(pasid, bytes, std::move(done));
  });
}

Result<void> ControlClient::GrantSync(Pasid pasid, VirtAddr vaddr, uint64_t bytes,
                                      DeviceId grantee, Access access) {
  return RunSync<void>(simulator(), [&](Callback<void> done) {
    Grant(pasid, vaddr, bytes, grantee, access, std::move(done));
  });
}

Result<void> ControlClient::FreeSync(Pasid pasid, VirtAddr vaddr, uint64_t bytes) {
  return RunSync<void>(simulator(), [&](Callback<void> done) {
    Free(pasid, vaddr, bytes, std::move(done));
  });
}

BusControlClient::BusControlClient(dev::Device* requester, DeviceId memctrl)
    : requester_(requester), memctrl_(memctrl) {
  LASTCPU_CHECK(requester != nullptr, "bus control client needs a device");
}

void BusControlClient::Alloc(Pasid pasid, uint64_t bytes, Callback<VirtAddr> done) {
  requester_->rpc().Call<proto::MemAllocResponse>(
      memctrl_, proto::MemAllocRequest{pasid, bytes, VirtAddr(0), Access::kReadWrite},
      [done = std::move(done)](Result<proto::MemAllocResponse> response) {
        if (!response.ok()) {
          done(response.status());
          return;
        }
        done(response->vaddr);
      });
}

void BusControlClient::Grant(Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee,
                             Access access, Callback<void> done) {
  requester_->rpc().Call<void>(kBusDevice,
                               proto::GrantRequest{pasid, vaddr, bytes, grantee, access},
                               std::move(done));
}

void BusControlClient::Free(Pasid pasid, VirtAddr vaddr, uint64_t bytes, Callback<void> done) {
  requester_->rpc().Call<void>(kBusDevice, proto::MemFreeRequest{pasid, vaddr, bytes},
                               std::move(done));
}

KernelControlClient::KernelControlClient(baseline::CentralKernel* kernel, DeviceId self)
    : kernel_(kernel), self_(self) {
  LASTCPU_CHECK(kernel != nullptr, "kernel control client needs a kernel");
}

void KernelControlClient::Alloc(Pasid pasid, uint64_t bytes, Callback<VirtAddr> done) {
  kernel_->AllocMemory(self_, pasid, bytes, std::move(done));
}

void KernelControlClient::Grant(Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee,
                                Access access, Callback<void> done) {
  kernel_->Grant(self_, pasid, vaddr, bytes, grantee, access, std::move(done));
}

void KernelControlClient::Free(Pasid pasid, VirtAddr vaddr, uint64_t bytes, Callback<void> done) {
  kernel_->FreeMemory(self_, pasid, vaddr, bytes, std::move(done));
}

}  // namespace lastcpu::core
