#include "src/core/control_plane.h"

#include <utility>

#include "src/base/check.h"

namespace lastcpu::core {
namespace {

Status StatusFromError(const proto::Message& message) {
  const auto& error = message.As<proto::ErrorResponse>();
  return Status(error.code, error.message);
}

}  // namespace

BusControlClient::BusControlClient(dev::Device* requester, DeviceId memctrl)
    : requester_(requester), memctrl_(memctrl) {
  LASTCPU_CHECK(requester != nullptr, "bus control client needs a device");
}

void BusControlClient::Alloc(Pasid pasid, uint64_t bytes, AllocCallback done) {
  requester_->SendRequest(memctrl_,
                          proto::MemAllocRequest{pasid, bytes, VirtAddr(0), Access::kReadWrite},
                          [done = std::move(done)](const proto::Message& response) {
                            if (response.Is<proto::ErrorResponse>()) {
                              done(StatusFromError(response));
                              return;
                            }
                            done(response.As<proto::MemAllocResponse>().vaddr);
                          });
}

void BusControlClient::Grant(Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee,
                             Access access, StatusCallback done) {
  requester_->SendRequest(kBusDevice,
                          proto::GrantRequest{pasid, vaddr, bytes, grantee, access},
                          [done = std::move(done)](const proto::Message& response) {
                            if (response.Is<proto::ErrorResponse>()) {
                              done(StatusFromError(response));
                              return;
                            }
                            done(OkStatus());
                          });
}

void BusControlClient::Free(Pasid pasid, VirtAddr vaddr, uint64_t bytes, StatusCallback done) {
  requester_->SendRequest(kBusDevice, proto::MemFreeRequest{pasid, vaddr, bytes},
                          [done = std::move(done)](const proto::Message& response) {
                            if (response.Is<proto::ErrorResponse>()) {
                              done(StatusFromError(response));
                              return;
                            }
                            done(OkStatus());
                          });
}

KernelControlClient::KernelControlClient(baseline::CentralKernel* kernel, DeviceId self)
    : kernel_(kernel), self_(self) {
  LASTCPU_CHECK(kernel != nullptr, "kernel control client needs a kernel");
}

void KernelControlClient::Alloc(Pasid pasid, uint64_t bytes, AllocCallback done) {
  kernel_->AllocMemory(self_, pasid, bytes, std::move(done));
}

void KernelControlClient::Grant(Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee,
                                Access access, StatusCallback done) {
  kernel_->Grant(self_, pasid, vaddr, bytes, grantee, access, std::move(done));
}

void KernelControlClient::Free(Pasid pasid, VirtAddr vaddr, uint64_t bytes, StatusCallback done) {
  kernel_->FreeMemory(self_, pasid, vaddr, bytes, std::move(done));
}

}  // namespace lastcpu::core
