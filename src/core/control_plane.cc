#include "src/core/control_plane.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "src/base/check.h"

namespace lastcpu::core {
namespace {

// Issues `op` (which completes some Callback<T>) and steps the simulator
// until the completion lands.
template <typename T, typename Op>
Result<T> RunSync(sim::Simulator* simulator, Op op) {
  std::optional<Result<T>> out;
  op([&out](Result<T> result) { out = std::move(result); });
  while (!out && simulator->Step()) {
  }
  if (!out) {
    return TimedOut("simulator ran dry before the operation completed");
  }
  return std::move(*out);
}

}  // namespace

Result<VirtAddr> ControlClient::AllocSync(Pasid pasid, uint64_t bytes) {
  return RunSync<VirtAddr>(simulator(), [&](Callback<VirtAddr> done) {
    Alloc(pasid, bytes, std::move(done));
  });
}

Result<void> ControlClient::GrantSync(Pasid pasid, VirtAddr vaddr, uint64_t bytes,
                                      DeviceId grantee, Access access) {
  return RunSync<void>(simulator(), [&](Callback<void> done) {
    Grant(pasid, vaddr, bytes, grantee, access, std::move(done));
  });
}

Result<void> ControlClient::FreeSync(Pasid pasid, VirtAddr vaddr, uint64_t bytes) {
  return RunSync<void>(simulator(), [&](Callback<void> done) {
    Free(pasid, vaddr, bytes, std::move(done));
  });
}

Result<std::vector<VirtAddr>> ControlClient::AllocBatchSync(Pasid pasid, uint64_t bytes,
                                                            uint32_t count) {
  return RunSync<std::vector<VirtAddr>>(
      simulator(), [&](Callback<std::vector<VirtAddr>> done) {
        AllocBatch(pasid, bytes, count, std::move(done));
      });
}

Result<void> ControlClient::FreeBatchSync(Pasid pasid, std::vector<VirtAddr> vaddrs,
                                          uint64_t bytes) {
  return RunSync<void>(simulator(), [&](Callback<void> done) {
    FreeBatch(pasid, std::move(vaddrs), bytes, std::move(done));
  });
}

BusControlClient::BusControlClient(dev::Device* requester, DeviceId memctrl)
    : requester_(requester), memctrl_(memctrl) {
  LASTCPU_CHECK(requester != nullptr, "bus control client needs a device");
}

void BusControlClient::Alloc(Pasid pasid, uint64_t bytes, Callback<VirtAddr> done) {
  requester_->rpc().Call<proto::MemAllocResponse>(
      memctrl_, proto::MemAllocRequest{pasid, bytes, VirtAddr(0), Access::kReadWrite},
      [done = std::move(done)](Result<proto::MemAllocResponse> response) {
        if (!response.ok()) {
          done(response.status());
          return;
        }
        done(response->vaddr);
      });
}

void BusControlClient::Grant(Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee,
                             Access access, Callback<void> done) {
  requester_->rpc().Call<void>(kBusDevice,
                               proto::GrantRequest{pasid, vaddr, bytes, grantee, access},
                               std::move(done));
}

void BusControlClient::Free(Pasid pasid, VirtAddr vaddr, uint64_t bytes, Callback<void> done) {
  requester_->rpc().Call<void>(kBusDevice, proto::MemFreeRequest{pasid, vaddr, bytes},
                               std::move(done));
}

void BusControlClient::AllocBatch(Pasid pasid, uint64_t bytes, uint32_t count,
                                  Callback<std::vector<VirtAddr>> done) {
  // Straight to the controller: the batch is one request/response pair, not
  // `count` bus-forwarded operations.
  requester_->rpc().Call<proto::MemAllocBatchResponse>(
      memctrl_, proto::MemAllocBatchRequest{pasid, bytes, count, Access::kReadWrite},
      [done = std::move(done)](Result<proto::MemAllocBatchResponse> response) {
        if (!response.ok()) {
          done(response.status());
          return;
        }
        done(std::move(response->vaddrs));
      });
}

void BusControlClient::FreeBatch(Pasid pasid, std::vector<VirtAddr> vaddrs, uint64_t bytes,
                                 Callback<void> done) {
  requester_->rpc().Call<void>(memctrl_,
                               proto::MemFreeBatchRequest{pasid, std::move(vaddrs), bytes},
                               std::move(done));
}

ShardedControlClient::ShardedControlClient(dev::Device* requester, std::vector<ShardInfo> shards,
                                           AllocationPolicy policy, ShardedClientConfig config)
    : requester_(requester), policy_(policy), config_(config) {
  LASTCPU_CHECK(requester != nullptr, "sharded control client needs a device");
  LASTCPU_CHECK(!shards.empty(), "sharded control client needs at least one shard");
  shards_.reserve(shards.size());
  for (ShardInfo& info : shards) {
    shards_.push_back(Shard{info, /*alive=*/true, /*outstanding_bytes=*/0});
  }
  // A transiently failed shard restarts with empty tables: queue a lease
  // re-assertion so our allocations survive the reboot. The retry loop inside
  // ReassertLeasesFor rides out the blackout (sends bounce kUnavailable until
  // the shard is back).
  failed_token_ = requester_->AddPeerFailedHook([this](DeviceId device) {
    if (config_.reassert_leases && IsShardDevice(device)) {
      ReassertLeasesFor(device, 0);
    }
  });
  // A quarantined shard never comes back: stop offering it as a candidate,
  // then re-fetch the directory — the bus repoints the dead shard's VA slabs
  // at a successor, and our leases there must be re-asserted to it.
  perm_failed_token_ = requester_->AddPeerPermanentlyFailedHook([this](DeviceId device) {
    bool was_shard = false;
    for (Shard& shard : shards_) {
      if (shard.info.device == device) {
        shard.alive = false;
        was_shard = true;
      }
    }
    if (was_shard) {
      RefreshDirectory(0);
    }
  });
}

ShardedControlClient::~ShardedControlClient() {
  requester_->RemovePeerFailedHook(failed_token_);
  requester_->RemovePeerPermanentlyFailedHook(perm_failed_token_);
}

bool ShardedControlClient::IsShardDevice(DeviceId device) const {
  for (const Shard& shard : shards_) {
    if (shard.info.device == device) {
      return true;
    }
  }
  return false;
}

bool ShardedControlClient::Retryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kPartitioned;
}

void ShardedControlClient::RecordLease(Pasid pasid, VirtAddr vaddr, uint64_t bytes,
                                       uint64_t first_frame) {
  if (!config_.reassert_leases) {
    return;
  }
  Lease lease;
  lease.pasid = pasid;
  lease.bytes = PagesForBytes(bytes) * kPageSize;
  lease.first_frame = first_frame;
  leases_[vaddr.raw] = std::move(lease);
}

ShardedControlClient::Lease* ShardedControlClient::LeaseCovering(VirtAddr vaddr) {
  auto next = leases_.upper_bound(vaddr.raw);
  if (next == leases_.begin()) {
    return nullptr;
  }
  auto it = std::prev(next);
  if (vaddr.raw < it->first + it->second.bytes) {
    return &it->second;
  }
  return nullptr;
}

void ShardedControlClient::RefreshDirectory(uint32_t attempt) {
  if (!config_.reassert_leases) {
    return;
  }
  ++directory_refreshes_;
  requester_->rpc().Call<proto::ShardDirectoryResponse>(
      kBusDevice, proto::ShardDirectoryRequest{},
      [this, attempt](Result<proto::ShardDirectoryResponse> response) {
        if (!response.ok()) {
          // The management ring is fault-free, but the RPC can still time out
          // under extreme load; bounded retry.
          if (attempt + 1 < config_.max_reassert_attempts) {
            simulator()->Schedule(config_.reassert_backoff,
                                  [this, attempt] { RefreshDirectory(attempt + 1); });
          }
          return;
        }
        AdoptDirectory(response->shards);
      });
}

void ShardedControlClient::AdoptDirectory(const std::vector<proto::ShardRecord>& records) {
  if (records.empty()) {
    return;  // nothing to adopt; keep the stale view rather than no view
  }
  // Rebuild shards_ from the fresh directory, carrying per-slab outstanding
  // estimates over by va_base; collect slabs whose owning device changed —
  // our leases there must be re-asserted to the new owner.
  std::vector<Shard> rebuilt;
  rebuilt.reserve(records.size());
  std::vector<DeviceId> changed_owners;
  for (const proto::ShardRecord& record : records) {
    Shard shard;
    shard.info = ShardInfo{record.device, record.segment, record.va_base, record.va_limit,
                           record.capacity_bytes};
    for (const Shard& old : shards_) {
      if (old.info.va_base == record.va_base) {
        shard.outstanding_bytes = old.outstanding_bytes;
        if (old.info.device != record.device) {
          if (std::find(changed_owners.begin(), changed_owners.end(), record.device) ==
              changed_owners.end()) {
            changed_owners.push_back(record.device);
          }
        }
        break;
      }
    }
    rebuilt.push_back(std::move(shard));
  }
  shards_ = std::move(rebuilt);
  for (DeviceId owner : changed_owners) {
    ReassertLeasesFor(owner, 0);
  }
}

void ShardedControlClient::ReassertLeasesFor(DeviceId target, uint32_t attempt) {
  proto::LeaseReassertRequest request;
  for (const auto& [raw, lease] : leases_) {
    Shard* shard = ShardForVa(VirtAddr(raw));
    if (shard == nullptr || shard->info.device != target) {
      continue;
    }
    proto::LeaseRecord record;
    record.pasid = lease.pasid;
    record.vaddr = VirtAddr(raw);
    record.bytes = lease.bytes;
    record.first_frame = lease.first_frame;
    record.access = lease.access;
    record.grants = lease.grants;
    request.leases.push_back(std::move(record));
  }
  if (request.leases.empty()) {
    return;
  }
  ++reasserts_sent_;
  size_t sent = request.leases.size();
  requester_->rpc().Call<proto::LeaseReassertResponse>(
      target, std::move(request),
      [this, target, attempt, sent](Result<proto::LeaseReassertResponse> response) {
        if (!response.ok()) {
          // Shard still rebooting (kUnavailable bounce), link still down, or
          // the request died with the shard (timeout): try again.
          if (attempt + 1 < config_.max_reassert_attempts) {
            simulator()->Schedule(config_.reassert_backoff, [this, target, attempt] {
              ReassertLeasesFor(target, attempt + 1);
            });
          }
          return;
        }
        leases_reasserted_ += response->accepted;
        // A rejection means the region is gone for good (frames re-used or
        // double-claimed); the leases stay in the ledger — the application
        // discovers the loss on its next touch — but we count them.
        leases_lost_ += response->rejected;
        (void)sent;
      });
}

sim::Simulator* ShardedControlClient::simulator() { return requester_->simulator(); }

uint64_t ShardedControlClient::OutstandingBytes(DeviceId shard) const {
  for (const Shard& candidate : shards_) {
    if (candidate.info.device == shard) {
      return candidate.outstanding_bytes;
    }
  }
  return 0;
}

ShardedControlClient::Shard* ShardedControlClient::ShardForVa(VirtAddr vaddr) {
  for (Shard& shard : shards_) {
    if (vaddr.raw >= shard.info.va_base &&
        (shard.info.va_limit == 0 || vaddr.raw < shard.info.va_limit)) {
      return &shard;
    }
  }
  return nullptr;
}

std::vector<size_t> ShardedControlClient::CandidateOrder() {
  std::vector<size_t> order;
  order.reserve(shards_.size());
  switch (policy_) {
    case AllocationPolicy::kInterleave: {
      size_t start = rr_next_++ % shards_.size();
      for (size_t i = 0; i < shards_.size(); ++i) {
        order.push_back((start + i) % shards_.size());
      }
      break;
    }
    case AllocationPolicy::kHomeNode: {
      // Home shards first (rotating among them so one segment's shards share
      // load), then the rest in directory order as spill targets.
      uint32_t home = SegmentOf(requester_->id());
      std::vector<size_t> local;
      std::vector<size_t> remote;
      for (size_t i = 0; i < shards_.size(); ++i) {
        (shards_[i].info.segment == home ? local : remote).push_back(i);
      }
      if (!local.empty()) {
        size_t start = rr_next_++ % local.size();
        for (size_t i = 0; i < local.size(); ++i) {
          order.push_back(local[(start + i) % local.size()]);
        }
      }
      order.insert(order.end(), remote.begin(), remote.end());
      break;
    }
    case AllocationPolicy::kCapacityAware: {
      for (size_t i = 0; i < shards_.size(); ++i) {
        order.push_back(i);
      }
      // Most estimated headroom first; stable index tie-break keeps reruns
      // deterministic.
      std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
        uint64_t free_a = shards_[a].info.capacity_bytes -
                          std::min(shards_[a].outstanding_bytes, shards_[a].info.capacity_bytes);
        uint64_t free_b = shards_[b].info.capacity_bytes -
                          std::min(shards_[b].outstanding_bytes, shards_[b].info.capacity_bytes);
        return free_a > free_b;
      });
      break;
    }
  }
  std::erase_if(order, [this](size_t i) { return !shards_[i].alive; });
  // After a takeover one device serves several slab records; offer it once.
  std::vector<size_t> deduped;
  deduped.reserve(order.size());
  for (size_t i : order) {
    bool seen = false;
    for (size_t j : deduped) {
      if (shards_[j].info.device == shards_[i].info.device) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      deduped.push_back(i);
    }
  }
  return deduped;
}

void ShardedControlClient::Alloc(Pasid pasid, uint64_t bytes, Callback<VirtAddr> done) {
  AllocAttempt(pasid, bytes, 0, std::move(done));
}

void ShardedControlClient::AllocAttempt(Pasid pasid, uint64_t bytes, uint32_t retries,
                                        Callback<VirtAddr> done) {
  auto order = CandidateOrder();
  if (order.empty()) {
    if (retries < config_.max_op_retries) {
      ++op_retries_;
      simulator()->Schedule(config_.retry_backoff,
                            [this, pasid, bytes, retries, done = std::move(done)]() mutable {
                              AllocAttempt(pasid, bytes, retries + 1, std::move(done));
                            });
      return;
    }
    simulator()->Schedule(sim::Duration::Zero(), [done = std::move(done)] {
      done(Unavailable("no live memory shards"));
    });
    return;
  }
  TryAlloc(pasid, bytes, std::move(order), 0, retries, std::move(done));
}

void ShardedControlClient::TryAlloc(Pasid pasid, uint64_t bytes, std::vector<size_t> order,
                                    size_t attempt, uint32_t retries, Callback<VirtAddr> done) {
  size_t shard_index = order[attempt];
  requester_->rpc().Call<proto::MemAllocResponse>(
      shards_[shard_index].info.device,
      proto::MemAllocRequest{pasid, bytes, VirtAddr(0), Access::kReadWrite},
      [this, pasid, bytes, order = std::move(order), attempt, retries, shard_index,
       done = std::move(done)](Result<proto::MemAllocResponse> response) mutable {
        if (response.ok()) {
          shards_[shard_index].outstanding_bytes += PagesForBytes(bytes) * kPageSize;
          RecordLease(pasid, response->vaddr, bytes, response->first_frame);
          done(response->vaddr);
          return;
        }
        // A full, offline, or unreachable shard is not a machine-wide
        // failure: spill to the next candidate once per shard.
        bool spillable = response.status().code() == StatusCode::kResourceExhausted ||
                         Retryable(response.status());
        if (spillable && attempt + 1 < order.size()) {
          ++spills_;
          TryAlloc(pasid, bytes, std::move(order), attempt + 1, retries, std::move(done));
          return;
        }
        // Every candidate is out (failover blackout / partition window):
        // back off, re-resolve, and retry the whole operation.
        if (Retryable(response.status()) && retries < config_.max_op_retries) {
          ++op_retries_;
          simulator()->Schedule(config_.retry_backoff,
                                [this, pasid, bytes, retries, done = std::move(done)]() mutable {
                                  AllocAttempt(pasid, bytes, retries + 1, std::move(done));
                                });
          return;
        }
        done(response.status());
      });
}

void ShardedControlClient::Grant(Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee,
                                 Access access, Callback<void> done) {
  GrantAttempt(pasid, vaddr, bytes, grantee, access, 0, std::move(done));
}

void ShardedControlClient::GrantAttempt(Pasid pasid, VirtAddr vaddr, uint64_t bytes,
                                        DeviceId grantee, Access access, uint32_t retries,
                                        Callback<void> done) {
  // The bus routes to the owning shard by address — same shape as the flat
  // client, so authorization still runs controller-side. kUnavailable /
  // kPartitioned bounces mean the op never reached a controller; retrying is
  // safe and rides out a failover window.
  requester_->rpc().Call<void>(
      kBusDevice, proto::GrantRequest{pasid, vaddr, bytes, grantee, access},
      [this, pasid, vaddr, bytes, grantee, access, retries,
       done = std::move(done)](Result<void> result) mutable {
        if (result.ok()) {
          if (Lease* lease = LeaseCovering(vaddr)) {
            lease->grants.push_back(proto::LeaseGrant{grantee, access});
          }
          done(std::move(result));
          return;
        }
        if (Retryable(result.status()) && retries < config_.max_op_retries) {
          ++op_retries_;
          simulator()->Schedule(
              config_.retry_backoff,
              [this, pasid, vaddr, bytes, grantee, access, retries,
               done = std::move(done)]() mutable {
                GrantAttempt(pasid, vaddr, bytes, grantee, access, retries + 1, std::move(done));
              });
          return;
        }
        done(std::move(result));
      });
}

void ShardedControlClient::Free(Pasid pasid, VirtAddr vaddr, uint64_t bytes,
                                Callback<void> done) {
  FreeAttempt(pasid, vaddr, bytes, 0, std::move(done));
}

void ShardedControlClient::FreeAttempt(Pasid pasid, VirtAddr vaddr, uint64_t bytes,
                                       uint32_t retries, Callback<void> done) {
  Shard* shard = ShardForVa(vaddr);
  requester_->rpc().Call<void>(
      kBusDevice, proto::MemFreeRequest{pasid, vaddr, bytes},
      [this, pasid, vaddr, bytes, retries, freed_bytes = PagesForBytes(bytes) * kPageSize,
       device = shard != nullptr ? shard->info.device : DeviceId::Invalid(),
       done = std::move(done)](Result<void> result) mutable {
        if (result.ok()) {
          for (Shard& candidate : shards_) {
            if (candidate.info.device == device) {
              candidate.outstanding_bytes -=
                  std::min(candidate.outstanding_bytes, freed_bytes);
            }
          }
          leases_.erase(vaddr.raw);
          done(std::move(result));
          return;
        }
        if (Retryable(result.status()) && retries < config_.max_op_retries) {
          ++op_retries_;
          simulator()->Schedule(config_.retry_backoff,
                                [this, pasid, vaddr, bytes, retries,
                                 done = std::move(done)]() mutable {
                                  FreeAttempt(pasid, vaddr, bytes, retries + 1, std::move(done));
                                });
          return;
        }
        done(std::move(result));
      });
}

void ShardedControlClient::AllocBatch(Pasid pasid, uint64_t bytes, uint32_t count,
                                      Callback<std::vector<VirtAddr>> done) {
  AllocBatchAttempt(pasid, bytes, count, 0, std::move(done));
}

void ShardedControlClient::AllocBatchAttempt(Pasid pasid, uint64_t bytes, uint32_t count,
                                             uint32_t retries,
                                             Callback<std::vector<VirtAddr>> done) {
  auto order = CandidateOrder();
  if (order.empty()) {
    if (retries < config_.max_op_retries) {
      ++op_retries_;
      simulator()->Schedule(
          config_.retry_backoff,
          [this, pasid, bytes, count, retries, done = std::move(done)]() mutable {
            AllocBatchAttempt(pasid, bytes, count, retries + 1, std::move(done));
          });
      return;
    }
    simulator()->Schedule(sim::Duration::Zero(), [done = std::move(done)] {
      done(Unavailable("no live memory shards"));
    });
    return;
  }
  TryAllocBatch(pasid, bytes, count, std::move(order), 0, retries, std::move(done));
}

void ShardedControlClient::TryAllocBatch(Pasid pasid, uint64_t bytes, uint32_t count,
                                         std::vector<size_t> order, size_t attempt,
                                         uint32_t retries, Callback<std::vector<VirtAddr>> done) {
  size_t shard_index = order[attempt];
  requester_->rpc().Call<proto::MemAllocBatchResponse>(
      shards_[shard_index].info.device,
      proto::MemAllocBatchRequest{pasid, bytes, count, Access::kReadWrite},
      [this, pasid, bytes, count, order = std::move(order), attempt, retries, shard_index,
       done = std::move(done)](Result<proto::MemAllocBatchResponse> response) mutable {
        if (response.ok()) {
          shards_[shard_index].outstanding_bytes +=
              uint64_t{count} * PagesForBytes(bytes) * kPageSize;
          for (size_t i = 0; i < response->vaddrs.size(); ++i) {
            uint64_t frame =
                i < response->first_frames.size() ? response->first_frames[i] : 0;
            RecordLease(pasid, response->vaddrs[i], bytes, frame);
          }
          done(std::move(response->vaddrs));
          return;
        }
        bool spillable = response.status().code() == StatusCode::kResourceExhausted ||
                         Retryable(response.status());
        if (spillable && attempt + 1 < order.size()) {
          ++spills_;
          TryAllocBatch(pasid, bytes, count, std::move(order), attempt + 1, retries,
                        std::move(done));
          return;
        }
        if (Retryable(response.status()) && retries < config_.max_op_retries) {
          ++op_retries_;
          simulator()->Schedule(
              config_.retry_backoff,
              [this, pasid, bytes, count, retries, done = std::move(done)]() mutable {
                AllocBatchAttempt(pasid, bytes, count, retries + 1, std::move(done));
              });
          return;
        }
        done(response.status());
      });
}

void ShardedControlClient::FreeBatch(Pasid pasid, std::vector<VirtAddr> vaddrs, uint64_t bytes,
                                     Callback<void> done) {
  // Regions in one drain may belong to different shards (interleave policy):
  // group by owner and issue one direct batch per shard, like the flat
  // client's direct-to-controller batches.
  std::map<DeviceId, std::vector<VirtAddr>> per_shard;
  for (VirtAddr vaddr : vaddrs) {
    Shard* shard = ShardForVa(vaddr);
    per_shard[shard != nullptr ? shard->info.device : DeviceId::Invalid()].push_back(vaddr);
  }
  struct JoinState {
    int outstanding = 0;
    Status first_error = OkStatus();
    Callback<void> done;
  };
  auto state = std::make_shared<JoinState>();
  state->done = std::move(done);
  state->outstanding = static_cast<int>(per_shard.size());
  if (state->outstanding == 0) {
    simulator()->Schedule(sim::Duration::Zero(), [state] { state->done(OkStatus()); });
    return;
  }
  for (auto& [device, group] : per_shard) {
    uint64_t group_bytes = uint64_t{group.size()} * PagesForBytes(bytes) * kPageSize;
    std::vector<VirtAddr> freed = group;
    requester_->rpc().Call<void>(
        device, proto::MemFreeBatchRequest{pasid, std::move(group), bytes},
        [this, state, device, group_bytes, freed = std::move(freed)](Result<void> result) {
          if (result.ok()) {
            for (Shard& candidate : shards_) {
              if (candidate.info.device == device) {
                candidate.outstanding_bytes -=
                    std::min(candidate.outstanding_bytes, group_bytes);
              }
            }
            for (VirtAddr vaddr : freed) {
              leases_.erase(vaddr.raw);
            }
          } else if (state->first_error.ok()) {
            state->first_error = result.status();
          }
          if (--state->outstanding == 0) {
            state->done(state->first_error.ok() ? Result<void>() : Result<void>(state->first_error));
          }
        });
  }
}

KernelControlClient::KernelControlClient(baseline::CentralKernel* kernel, DeviceId self)
    : kernel_(kernel), self_(self) {
  LASTCPU_CHECK(kernel != nullptr, "kernel control client needs a kernel");
}

void KernelControlClient::Alloc(Pasid pasid, uint64_t bytes, Callback<VirtAddr> done) {
  kernel_->AllocMemory(self_, pasid, bytes, std::move(done));
}

void KernelControlClient::Grant(Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee,
                                Access access, Callback<void> done) {
  kernel_->Grant(self_, pasid, vaddr, bytes, grantee, access, std::move(done));
}

void KernelControlClient::Free(Pasid pasid, VirtAddr vaddr, uint64_t bytes, Callback<void> done) {
  kernel_->FreeMemory(self_, pasid, vaddr, bytes, std::move(done));
}

void KernelControlClient::AllocBatch(Pasid pasid, uint64_t bytes, uint32_t count,
                                     Callback<std::vector<VirtAddr>> done) {
  kernel_->AllocMemoryBatch(self_, pasid, bytes, count, std::move(done));
}

void KernelControlClient::FreeBatch(Pasid pasid, std::vector<VirtAddr> vaddrs, uint64_t bytes,
                                    Callback<void> done) {
  kernel_->FreeMemoryBatch(self_, pasid, std::move(vaddrs), bytes, std::move(done));
}

MagazineClient::MagazineClient(ControlClient* inner, MagazineConfig config, dev::Device* host,
                               DeviceId memctrl)
    : inner_(inner), config_(config), host_(host), memctrl_(memctrl) {
  LASTCPU_CHECK(inner != nullptr, "magazine client needs a transport client");
  if (host_ != nullptr) {
    auto on_peer_down = [this](DeviceId device) {
      if (device == memctrl_) {
        DropAll();
      }
    };
    failed_token_ = host_->AddPeerFailedHook(on_peer_down);
    perm_failed_token_ = host_->AddPeerPermanentlyFailedHook(on_peer_down);
  }
}

MagazineClient::~MagazineClient() {
  if (host_ != nullptr) {
    host_->RemovePeerFailedHook(failed_token_);
    host_->RemovePeerPermanentlyFailedHook(perm_failed_token_);
  }
}

uint64_t MagazineClient::cached_regions() const {
  uint64_t count = 0;
  for (const auto& [key, magazine] : magazines_) {
    count += magazine.free.size();
  }
  return count;
}

void MagazineClient::Alloc(Pasid pasid, uint64_t bytes, Callback<VirtAddr> done) {
  if (!config_.enabled) {
    inner_->Alloc(pasid, bytes, std::move(done));
    return;
  }
  uint64_t pages = PagesForBytes(bytes);
  Magazine& magazine = magazines_[Key(pasid.value(), pages)];
  if (!magazine.free.empty()) {
    VirtAddr vaddr = magazine.free.back();
    magazine.free.pop_back();
    ++hits_;
    simulator()->Schedule(config_.hit_latency,
                          [done = std::move(done), vaddr] { done(vaddr); });
  } else {
    ++misses_;
    magazine.waiters.push_back(std::move(done));
  }
  MaybeRefill(pasid, pages);
}

void MagazineClient::Grant(Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee,
                           Access access, Callback<void> done) {
  // Grants always take the full authorization path: caching them would skip
  // the controller's permission checks.
  inner_->Grant(pasid, vaddr, bytes, grantee, access, std::move(done));
}

void MagazineClient::Free(Pasid pasid, VirtAddr vaddr, uint64_t bytes, Callback<void> done) {
  if (!config_.enabled) {
    inner_->Free(pasid, vaddr, bytes, std::move(done));
    return;
  }
  // The region goes back on the shelf still mapped; a later Alloc of the same
  // size class reuses it without any unmap/remap round trip. (Same owner and
  // PASID, so no cross-application data leak — re-zeroing is the allocator's
  // job only on a fresh lease.)
  uint64_t pages = PagesForBytes(bytes);
  Magazine& magazine = magazines_[Key(pasid.value(), pages)];
  magazine.free.push_back(vaddr);
  ++hits_;
  simulator()->Schedule(config_.hit_latency, [done = std::move(done)] { done(OkStatus()); });
  MaybeDrain(pasid, pages);
}

void MagazineClient::AllocBatch(Pasid pasid, uint64_t bytes, uint32_t count,
                                Callback<std::vector<VirtAddr>> done) {
  inner_->AllocBatch(pasid, bytes, count, std::move(done));
}

void MagazineClient::FreeBatch(Pasid pasid, std::vector<VirtAddr> vaddrs, uint64_t bytes,
                               Callback<void> done) {
  inner_->FreeBatch(pasid, std::move(vaddrs), bytes, std::move(done));
}

void MagazineClient::MaybeRefill(Pasid pasid, uint64_t pages) {
  auto it = magazines_.find(Key(pasid.value(), pages));
  if (it == magazines_.end()) {
    return;
  }
  Magazine& magazine = it->second;
  if (magazine.refill_in_flight) {
    return;
  }
  if (magazine.waiters.empty() && magazine.free.size() >= config_.low_watermark) {
    return;
  }
  magazine.refill_in_flight = true;
  ++refills_;
  inner_->AllocBatch(
      pasid, pages * kPageSize, config_.refill_batch,
      [this, pasid, pages](Result<std::vector<VirtAddr>> leased) {
        auto mag_it = magazines_.find(Key(pasid.value(), pages));
        if (mag_it == magazines_.end()) {
          // DropAll raced the refill; the regions (if any) stay leased until
          // the controller's teardown/quarantine reclaim frees them.
          return;
        }
        Magazine& magazine = mag_it->second;
        magazine.refill_in_flight = false;
        if (!leased.ok()) {
          auto waiters = std::move(magazine.waiters);
          magazine.waiters.clear();
          for (auto& waiter : waiters) {
            waiter(leased.status());
          }
          return;
        }
        for (VirtAddr vaddr : *leased) {
          if (!magazine.waiters.empty()) {
            auto waiter = std::move(magazine.waiters.front());
            magazine.waiters.pop_front();
            waiter(vaddr);
          } else {
            magazine.free.push_back(vaddr);
          }
        }
        if (!magazine.waiters.empty()) {
          MaybeRefill(pasid, pages);
        }
      });
}

void MagazineClient::MaybeDrain(Pasid pasid, uint64_t pages) {
  auto it = magazines_.find(Key(pasid.value(), pages));
  if (it == magazines_.end()) {
    return;
  }
  Magazine& magazine = it->second;
  if (magazine.drain_in_flight || magazine.free.size() <= config_.high_watermark) {
    return;
  }
  size_t excess = magazine.free.size() - config_.capacity;
  std::vector<VirtAddr> to_free(magazine.free.end() - static_cast<ptrdiff_t>(excess),
                                magazine.free.end());
  magazine.free.resize(magazine.free.size() - excess);
  magazine.drain_in_flight = true;
  ++drains_;
  inner_->FreeBatch(pasid, std::move(to_free), pages * kPageSize,
                    [this, pasid, pages](Result<void> freed) {
                      auto mag_it = magazines_.find(Key(pasid.value(), pages));
                      if (mag_it == magazines_.end()) {
                        return;
                      }
                      mag_it->second.drain_in_flight = false;
                      if (!freed.ok()) {
                        // Ambiguous outcome: never reuse the regions. They
                        // stay leased until teardown/quarantine reclaims.
                        ++drain_failures_;
                      }
                      MaybeDrain(pasid, pages);
                    });
}

void MagazineClient::Flush(Callback<void> done) {
  struct FlushState {
    int outstanding = 0;
    Status first_error = OkStatus();
    Callback<void> done;
  };
  auto state = std::make_shared<FlushState>();
  state->done = std::move(done);
  auto finish = [state] {
    if (--state->outstanding > 0) {
      return;
    }
    if (state->first_error.ok()) {
      state->done(OkStatus());
    } else {
      state->done(state->first_error);
    }
  };
  std::vector<std::tuple<Pasid, uint64_t, std::vector<VirtAddr>>> batches;
  for (auto& [key, magazine] : magazines_) {
    if (magazine.free.empty()) {
      continue;
    }
    batches.emplace_back(Pasid(key.first), key.second, std::move(magazine.free));
    magazine.free.clear();
  }
  if (batches.empty()) {
    simulator()->Schedule(sim::Duration::Zero(), [state] { state->done(OkStatus()); });
    return;
  }
  state->outstanding = static_cast<int>(batches.size());
  for (auto& [pasid, pages, vaddrs] : batches) {
    inner_->FreeBatch(pasid, std::move(vaddrs), pages * kPageSize,
                      [state, finish](Result<void> freed) {
                        if (!freed.ok() && state->first_error.ok()) {
                          state->first_error = freed.status();
                        }
                        finish();
                      });
  }
}

Result<void> MagazineClient::FlushSync() {
  return RunSync<void>(simulator(), [&](Callback<void> done) { Flush(std::move(done)); });
}

void MagazineClient::DropAll() {
  for (auto& [key, magazine] : magazines_) {
    magazine.free.clear();
    auto waiters = std::move(magazine.waiters);
    magazine.waiters.clear();
    for (auto& waiter : waiters) {
      waiter(Unavailable("memory controller failed; magazine dropped"));
    }
  }
  magazines_.clear();
}

}  // namespace lastcpu::core
