// CrashInjector: executes a sim::CrashPlan against a machine's devices.
//
// Sits between the plan (plain data, sim layer) and the things that can
// actually die (dev::Device) and notice (bus::SystemBus). Three trigger
// mechanisms:
//   * absolute-time kills ride daemon events, so Machine::Boot()'s
//     run-until-idle does not fast-forward through the entire chaos timeline;
//   * Kth-send kills hook the bus's send observer and defer the kill by 1 ns,
//     so a device never dies reentrantly inside its own Send call;
//   * self-test sabotage watches the victim's lifecycle transitions and kills
//     it midway through self-test — the window where it is neither alive on
//     the bus nor heartbeating, which only the supervisor's restart deadline
//     can catch.
// Respawn behaviour (clean / crash-loop N times / never return) is applied by
// sabotaging the self-tests that follow the supervisor's reset pulses.
#ifndef SRC_CORE_CRASH_INJECTOR_H_
#define SRC_CORE_CRASH_INJECTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/bus/system_bus.h"
#include "src/dev/device.h"
#include "src/sim/crash.h"
#include "src/sim/simulator.h"

namespace lastcpu::core {

class CrashInjector {
 public:
  // `devices` must outlive the injector (the Machine destroys the injector
  // first). Specs naming a device id not in `devices` are skipped.
  CrashInjector(sim::Simulator* simulator, bus::SystemBus* bus,
                const std::vector<std::unique_ptr<dev::Device>>& devices, sim::CrashPlan plan);
  ~CrashInjector();
  CrashInjector(const CrashInjector&) = delete;
  CrashInjector& operator=(const CrashInjector&) = delete;

  const sim::CrashPlan& plan() const { return plan_; }

  // Kills delivered (all triggers), and the subset landed mid self-test.
  uint64_t crashes_injected() const { return crashes_injected_; }
  uint64_t self_test_crashes() const { return self_test_crashes_; }
  uint64_t specs_skipped() const { return specs_skipped_; }

 private:
  struct Victim {
    dev::Device* device = nullptr;
    // Remaining post-reset self-tests to sabotage; -1 = every one, forever.
    int pending_self_test_crashes = 0;
    // Whether those sabotages are power cuts (inherited from the first kill).
    bool respawn_power_cut = false;
    // A during_self_test spec armed for this device's next self-test.
    const sim::CrashSpec* armed_spec = nullptr;
    uint64_t sends_seen = 0;
    std::vector<const sim::CrashSpec*> kth_specs;  // pending Kth-send kills
    std::vector<const sim::CrashSpec*> program_specs;  // pending Kth-NAND-program kills
    bool observes_programs = false;
  };

  void Kill(Victim& victim, const sim::CrashSpec& spec);
  void ApplyRespawn(Victim& victim, const sim::CrashSpec& spec);
  void OnStateChange(DeviceId id, dev::Device::State state);
  void OnSend(DeviceId src);
  void OnProgram(DeviceId id, uint64_t programs_issued);
  void SabotageSelfTest(DeviceId id, const sim::CrashSpec* spec);

  sim::Simulator* simulator_;
  bus::SystemBus* bus_;
  sim::CrashPlan plan_;
  std::map<DeviceId, Victim> victims_;
  uint64_t crashes_injected_ = 0;
  uint64_t self_test_crashes_ = 0;
  uint64_t specs_skipped_ = 0;
};

}  // namespace lastcpu::core

#endif  // SRC_CORE_CRASH_INJECTOR_H_
