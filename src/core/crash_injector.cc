#include "src/core/crash_injector.h"

#include <utility>

#include "src/base/check.h"
#include "src/ssddev/smart_ssd.h"

namespace lastcpu::core {

CrashInjector::CrashInjector(sim::Simulator* simulator, bus::SystemBus* bus,
                             const std::vector<std::unique_ptr<dev::Device>>& devices,
                             sim::CrashPlan plan)
    : simulator_(simulator), bus_(bus), plan_(std::move(plan)) {
  LASTCPU_CHECK(simulator != nullptr, "crash injector needs a simulator");
  LASTCPU_CHECK(bus != nullptr, "crash injector needs a bus");

  auto find_device = [&devices](uint32_t raw) -> dev::Device* {
    for (const auto& device : devices) {
      if (device->id().value() == raw) {
        return device.get();
      }
    }
    return nullptr;
  };

  bool need_send_observer = false;
  for (const sim::CrashSpec& spec : plan_.crashes) {
    dev::Device* device = find_device(spec.device);
    if (device == nullptr) {
      ++specs_skipped_;
      continue;
    }
    DeviceId id = device->id();
    Victim& victim = victims_[id];
    victim.device = device;
    if (spec.during_self_test) {
      victim.armed_spec = &spec;
    } else if (spec.on_kth_send > 0) {
      victim.kth_specs.push_back(&spec);
      need_send_observer = true;
    } else if (spec.on_kth_program > 0) {
      // Kth-NAND-program kills only make sense against a smart SSD.
      auto* ssd = dynamic_cast<ssddev::SmartSsd*>(device);
      if (ssd == nullptr) {
        ++specs_skipped_;
        continue;
      }
      victim.program_specs.push_back(&spec);
      if (!victim.observes_programs) {
        victim.observes_programs = true;
        ssd->nand().SetProgramObserver(
            [this, id](uint64_t programs_issued) { OnProgram(id, programs_issued); });
      }
    } else if (spec.at > sim::Duration::Zero()) {
      // Daemon event: the kill fires during RunFor/RunUntil but does not keep
      // Boot()'s run-until-idle alive (or get executed by it).
      const sim::CrashSpec* spec_ptr = &spec;
      simulator_->ScheduleDaemon(spec.at, [this, id, spec_ptr] {
        auto it = victims_.find(id);
        if (it != victims_.end()) {
          Kill(it->second, *spec_ptr);
        }
      });
    } else {
      ++specs_skipped_;  // spec with no trigger
    }
  }
  for (auto& [id, victim] : victims_) {
    DeviceId device_id = id;
    victim.device->SetStateObserver(
        [this, device_id](dev::Device::State state) { OnStateChange(device_id, state); });
  }
  if (need_send_observer) {
    bus_->SetSendObserver([this](DeviceId src, const proto::Message&) { OnSend(src); });
  }
}

CrashInjector::~CrashInjector() {
  bus_->SetSendObserver(nullptr);
  for (auto& [id, victim] : victims_) {
    victim.device->SetStateObserver(nullptr);
    if (victim.observes_programs) {
      static_cast<ssddev::SmartSsd*>(victim.device)->nand().SetProgramObserver(nullptr);
    }
  }
}

void CrashInjector::ApplyRespawn(Victim& victim, const sim::CrashSpec& spec) {
  switch (spec.respawn) {
    case sim::CrashSpec::Respawn::kClean:
      break;
    case sim::CrashSpec::Respawn::kCrashLoop:
      victim.pending_self_test_crashes += static_cast<int>(spec.loop_count);
      victim.respawn_power_cut = spec.power_cut;
      break;
    case sim::CrashSpec::Respawn::kNever:
      victim.pending_self_test_crashes = -1;
      victim.respawn_power_cut = spec.power_cut;
      break;
  }
}

void CrashInjector::Kill(Victim& victim, const sim::CrashSpec& spec) {
  if (victim.device->state() == dev::Device::State::kFailed) {
    return;  // already dead; the respawn schedule is governed by the first kill
  }
  ++crashes_injected_;
  if (spec.power_cut) {
    victim.device->InjectPowerLoss();
  } else {
    victim.device->InjectFailure();
  }
  // Telling the bus is safe even mid-episode: a report for a device whose
  // failed flag is still set is a no-op, so a crash *during recovery* stays
  // silent and must be caught by the supervisor's restart deadline.
  bus_->ReportDeviceFailure(victim.device->id());
  ApplyRespawn(victim, spec);
}

void CrashInjector::OnSend(DeviceId src) {
  auto it = victims_.find(src);
  if (it == victims_.end() || it->second.kth_specs.empty()) {
    return;
  }
  Victim& victim = it->second;
  ++victim.sends_seen;
  for (auto spec_it = victim.kth_specs.begin(); spec_it != victim.kth_specs.end(); ++spec_it) {
    if ((*spec_it)->on_kth_send == victim.sends_seen) {
      const sim::CrashSpec* spec = *spec_it;
      victim.kth_specs.erase(spec_it);
      // Defer by 1 ns: the device is inside its own Send right now, and its
      // caller's stack must unwind before the silicon dies under it.
      DeviceId id = src;
      simulator_->Schedule(sim::Duration::Nanos(1), [this, id, spec] {
        auto victim_it = victims_.find(id);
        if (victim_it != victims_.end()) {
          Kill(victim_it->second, *spec);
        }
      });
      return;
    }
  }
}

void CrashInjector::OnProgram(DeviceId id, uint64_t programs_issued) {
  auto it = victims_.find(id);
  if (it == victims_.end() || it->second.program_specs.empty()) {
    return;
  }
  Victim& victim = it->second;
  for (auto spec_it = victim.program_specs.begin(); spec_it != victim.program_specs.end();
       ++spec_it) {
    if ((*spec_it)->on_kth_program == programs_issued) {
      const sim::CrashSpec* spec = *spec_it;
      victim.program_specs.erase(spec_it);
      // Defer by 1 ns: the SSD is inside its own ProgramPage call. The
      // program itself takes hundreds of microseconds, so the kill still
      // lands squarely mid-page and tears it.
      simulator_->Schedule(sim::Duration::Nanos(1), [this, id, spec] {
        auto victim_it = victims_.find(id);
        if (victim_it != victims_.end()) {
          Kill(victim_it->second, *spec);
        }
      });
      return;
    }
  }
}

void CrashInjector::OnStateChange(DeviceId id, dev::Device::State state) {
  if (state != dev::Device::State::kSelfTest) {
    return;
  }
  auto it = victims_.find(id);
  if (it == victims_.end()) {
    return;
  }
  Victim& victim = it->second;
  if (victim.armed_spec != nullptr) {
    const sim::CrashSpec* spec = victim.armed_spec;
    victim.armed_spec = nullptr;
    SabotageSelfTest(id, spec);
    return;
  }
  if (victim.pending_self_test_crashes != 0) {
    if (victim.pending_self_test_crashes > 0) {
      --victim.pending_self_test_crashes;
    }
    SabotageSelfTest(id, nullptr);
  }
}

void CrashInjector::SabotageSelfTest(DeviceId id, const sim::CrashSpec* spec) {
  auto it = victims_.find(id);
  if (it == victims_.end()) {
    return;
  }
  sim::Duration half_test = sim::Duration::Nanos(
      it->second.device->config().self_test_duration.nanos() / 2);
  simulator_->Schedule(half_test, [this, id, spec] {
    auto victim_it = victims_.find(id);
    if (victim_it == victims_.end()) {
      return;
    }
    Victim& victim = victim_it->second;
    if (victim.device->state() != dev::Device::State::kSelfTest) {
      return;  // self-test already ended (or the device died another way)
    }
    ++crashes_injected_;
    ++self_test_crashes_;
    bool power_cut = spec != nullptr ? spec->power_cut : victim.respawn_power_cut;
    if (power_cut) {
      victim.device->InjectPowerLoss();
    } else {
      victim.device->InjectFailure();
    }
    bus_->ReportDeviceFailure(victim.device->id());
    if (spec != nullptr) {
      ApplyRespawn(victim, *spec);
    }
  });
}

}  // namespace lastcpu::core
