// Fast-path knobs (batching/caching), shared by both control-plane designs.
//
// Everything here is off by default: an all-default config reproduces the
// unbatched per-op round trips exactly, so benchmarks can ablate each fast
// path independently (EXPERIMENTS.md E-batch).
#ifndef SRC_CORE_FAST_PATH_H_
#define SRC_CORE_FAST_PATH_H_

#include <cstdint>

#include "src/sim/time.h"

namespace lastcpu::core {

// Grant magazine: a per-device cache of leased memory regions. The client
// allocates `refill_batch` regions in one AllocBatch round trip and satisfies
// subsequent Alloc/Free calls locally (one modeled `hit_latency` each),
// refilling below `low_watermark` and draining above `high_watermark` via
// FreeBatch. The regions stay owned by the client device in the memory
// controller's table — they are leases, so quarantine/teardown reclaim them
// like any other allocation if the device dies with a stocked magazine.
struct MagazineConfig {
  bool enabled = false;
  // Regions requested per AllocBatch refill.
  uint32_t refill_batch = 32;
  // Steady-state stock level a drain trims back down to.
  uint32_t capacity = 32;
  // Refill when the stock drops below this many regions.
  uint32_t low_watermark = 8;
  // Drain when recycled frees push the stock above this many regions.
  uint32_t high_watermark = 64;
  // Modeled cost of a local hit (magazine bookkeeping in device firmware).
  sim::Duration hit_latency = sim::Duration::Nanos(40);
};

// The machine-wide fast-path bundle (MachineConfig::fast_path). Each knob is
// independent; the all-default bundle is byte-identical to the unbatched
// machine. The fabric's own doorbell_coalesce_window lives in FabricConfig
// (MachineConfig::fabric) since it is a fabric cost-model property.
struct FastPathConfig {
  // Control plane: grant magazines for ControlClient users.
  MagazineConfig magazine;
  // Data plane: FileClient request staging (one DmaWritev + one doorbell per
  // window). Applied by Machine as the default for file clients created by
  // apps that consult it; zero keeps the per-request path.
  sim::Duration submit_batch_window = sim::Duration::Zero();
  // Data plane: FileService completion staging. AddSmartSsd applies this as
  // the default when the per-device config leaves it zero.
  sim::Duration completion_batch_window = sim::Duration::Zero();
};

}  // namespace lastcpu::core

#endif  // SRC_CORE_FAST_PATH_H_
