// KvsEngine: the paper's Sec. 3 application logic, running on the smart NIC.
//
// "The data (keys and values) are stored in a file hosted by a smart SSD,
// while the operations (get, insert, update, etc.) are processed in a
// smart-NIC." The engine keeps a hash index (key -> log offset) in NIC
// memory, appends puts/deletes to the SSD log through the file service, and
// serves gets by reading the log at the indexed offset — a KV-Direct/
// LightStore-style log-structured store with zero CPU involvement.
//
// Log compaction (implemented future work): overwrites and deletes leave dead
// bytes in the log. When the garbage ratio crosses a threshold the engine
// rewrites live records into a fresh generation file ("kv.log.N"), seals it
// with a commit-marker record, atomically swaps its index/session over, and
// deletes the old generation — entirely via the remote file service.
// Recovery lists the provider's files and adopts the newest *committed*
// generation (an uncommitted one is half-copied debris and is deleted).
#ifndef SRC_KVS_KVS_ENGINE_H_
#define SRC_KVS_KVS_ENGINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/move_fn.h"
#include "src/dev/device.h"
#include "src/kvs/kvs_protocol.h"
#include "src/ssddev/file_client.h"

namespace lastcpu::kvs {

// In-memory index: key -> location of its newest log record.
class HashIndex {
 public:
  struct Location {
    uint64_t offset = 0;
    uint32_t length = 0;  // full record bytes
  };

  void Put(const std::string& key, Location location);
  bool Get(const std::string& key, Location* out) const;
  void Remove(const std::string& key);

  size_t size() const { return map_.size(); }
  // Approximate NIC-DRAM footprint (keys + entries).
  uint64_t memory_bytes() const { return memory_bytes_; }
  const std::unordered_map<std::string, Location>& entries() const { return map_; }

 private:
  std::unordered_map<std::string, Location> map_;
  uint64_t memory_bytes_ = 0;
};

struct KvsEngineConfig {
  std::string log_file = "kv.log";
  uint64_t auth_token = 0;
  // Compaction trigger: dead-byte fraction of the log (0 disables) and the
  // minimum log size before compaction is considered.
  double compact_garbage_ratio = 0.0;
  uint64_t min_compact_bytes = 64 << 10;
  // Propagated to every FileClient the engine creates (sessions and
  // compaction); enable completion_poll when running under fault injection.
  ssddev::FileClientConfig file_client;
};

class KvsEngine {
 public:
  using GetCallback = sim::MoveFn<void(Result<std::vector<uint8_t>>), 160>;
  using PutCallback = sim::MoveFn<void(Status), 160>;
  using StartCallback = std::function<void(Status)>;
  using Responder = std::function<void(std::vector<uint8_t>)>;

  // Runs on `host` (the NIC) in application address space `pasid`.
  KvsEngine(dev::Device* host, Pasid pasid, KvsEngineConfig config = {});

  // Brings the store up: discovers the file service, picks the newest
  // committed log generation, opens its session, and rebuilds the index by
  // scanning the log (crash recovery — the index is volatile NIC state).
  void Start(StartCallback done);
  bool running() const { return running_; }

  // --- the KVS operations ----------------------------------------------------

  void Get(const std::string& key, GetCallback done);
  void Put(const std::string& key, std::vector<uint8_t> value, PutCallback done);
  void Delete(const std::string& key, PutCallback done);

  // Decodes one network request, executes it, and encodes the response.
  void HandleRequest(std::vector<uint8_t> wire, Responder respond);

  // Wiring: the host forwards matching doorbells here.
  bool HandleDoorbell(DeviceId from, uint64_t value);

  // Recovery/teardown: drop the session (e.g. the SSD died); Start() again
  // re-opens and re-scans.
  void Stop(Status reason);

  // Rewrites live records into the next log generation now (normally driven
  // automatically by the garbage-ratio trigger).
  void CompactNow(StartCallback done);
  bool compacting() const { return compacting_; }
  uint32_t generation() const { return generation_; }
  uint64_t log_tail_bytes() const { return log_tail_; }
  uint64_t live_bytes() const { return live_bytes_; }

  const HashIndex& index() const { return index_; }
  ssddev::FileClient& file() { return *file_; }
  sim::StatsRegistry& stats() { return stats_; }

  // Operations queued while every session slot is in flight (backpressure
  // instead of rejection under burst load).
  size_t queued_ops() const { return waiting_.size(); }

 private:
  // The commit-marker record sealing a compacted generation. The leading
  // control byte keeps it out of the application keyspace.
  static const std::string& CommitMarkerKey();

  std::string GenName(uint32_t generation) const;
  // Parses a generation number out of a candidate file name; nullopt if the
  // name does not belong to this store.
  std::optional<uint32_t> GenOf(const std::string& name) const;

  // Start pipeline: list provider files -> try candidates newest-first.
  void StartWithProvider(DeviceId provider, StartCallback done);
  void TryCandidate(DeviceId provider, std::vector<uint32_t> candidates, size_t index,
                    StartCallback done);
  // Recovery scan of the open session's log into the index.
  void RecoverFrom(uint64_t offset, std::function<void(Status)> done);

  // Compaction pipeline.
  void CopyNext(std::shared_ptr<std::vector<std::pair<std::string, HashIndex::Location>>> live,
                size_t index, std::shared_ptr<HashIndex> new_index,
                std::shared_ptr<uint64_t> new_tail, StartCallback done);
  void FinishCompaction(std::shared_ptr<HashIndex> new_index, uint64_t new_tail,
                        StartCallback done);
  void AbortCompaction(Status reason, StartCallback done);
  void MaybeCompact();

  // Runs `op` now if the session has a free slot (and no compaction swap is
  // in progress), else queues it.
  void RunOrQueue(sim::MoveFn<void(), 256> op);
  void PumpWaiting();

  dev::Device* host_;
  Pasid pasid_;
  KvsEngineConfig config_;
  std::unique_ptr<ssddev::FileClient> file_;
  HashIndex index_;
  bool running_ = false;
  std::string active_file_;
  uint32_t generation_ = 0;
  uint64_t log_tail_ = 0;    // high-water mark of appended bytes
  uint64_t live_bytes_ = 0;  // bytes of records the index still references
  bool commit_seen_ = false;

  bool compacting_ = false;
  std::unique_ptr<ssddev::FileClient> compact_file_;

  // 256-byte tier: a queued op captures a key plus a nested 160-tier
  // completion (~210-230 bytes) and must stay inline.
  std::deque<sim::MoveFn<void(), 256>> waiting_;
  sim::StatsRegistry stats_;
  // Per-op counters resolved once; registry references are stable.
  sim::Counter& gets_ = stats_.GetCounter("gets");
  sim::Counter& puts_ = stats_.GetCounter("puts");
  sim::Counter& ops_queued_ = stats_.GetCounter("ops_queued");
};

}  // namespace lastcpu::kvs

#endif  // SRC_KVS_KVS_ENGINE_H_
