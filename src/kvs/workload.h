// Workload generation and closed-loop load clients for the KVS benchmarks
// (YCSB-style: Zipfian key popularity, configurable read/write mix and value
// size).
#ifndef SRC_KVS_WORKLOAD_H_
#define SRC_KVS_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/kvs/kvs_protocol.h"
#include "src/net/network.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"

namespace lastcpu::kvs {

struct WorkloadConfig {
  uint64_t num_keys = 10000;
  double zipf_theta = 0.99;  // <= 0 selects uniform key popularity
  double get_fraction = 0.95;
  uint32_t value_bytes = 128;
  uint64_t seed = 1;
};

// Deterministic request stream.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig config);

  KvsRequest Next();

  // Stable key naming, also used to preload the store.
  static std::string KeyFor(uint64_t index);

 private:
  WorkloadConfig config_;
  sim::Rng rng_;
  std::unique_ptr<sim::ZipfGenerator> zipf_;
  uint64_t sequence_ = 0;
};

// A remote machine running a closed-loop KVS client against one NIC endpoint:
// keeps `concurrency` requests outstanding, records per-request latency.
class LoadClient {
 public:
  LoadClient(sim::Simulator* simulator, net::Network* network, net::EndpointId server,
             WorkloadConfig workload, uint32_t concurrency);

  // Issues until `target_ops` complete, then calls `on_done`.
  void Start(uint64_t target_ops, std::function<void()> on_done);

  uint64_t completed() const { return completed_; }
  uint64_t errors() const { return errors_; }
  // Response status distribution (debuggability: what kind of errors?).
  const std::map<StatusCode, uint64_t>& status_counts() const { return status_counts_; }
  const sim::Histogram& latency() const { return latency_; }
  const sim::Histogram& get_latency() const { return get_latency_; }
  const sim::Histogram& put_latency() const { return put_latency_; }

 private:
  void IssueOne();
  void OnResponse(std::vector<uint8_t> wire);

  sim::Simulator* simulator_;
  net::Network* network_;
  net::EndpointId server_;
  net::EndpointId self_ = 0;
  WorkloadGenerator generator_;
  uint32_t concurrency_;
  uint64_t target_ops_ = 0;
  uint64_t issued_ = 0;
  uint64_t completed_ = 0;
  uint64_t errors_ = 0;
  std::function<void()> on_done_;
  struct InFlight {
    sim::SimTime sent_at;
    KvsOp op;
  };
  std::map<uint64_t, InFlight> in_flight_;  // by sequence
  std::map<StatusCode, uint64_t> status_counts_;
  sim::Histogram latency_;
  sim::Histogram get_latency_;
  sim::Histogram put_latency_;
};

}  // namespace lastcpu::kvs

#endif  // SRC_KVS_WORKLOAD_H_
