#include "src/kvs/kvs_engine.h"

#include <algorithm>
#include <utility>

#include "src/base/check.h"

namespace lastcpu::kvs {

void HashIndex::Put(const std::string& key, Location location) {
  auto [it, inserted] = map_.insert_or_assign(key, location);
  (void)it;
  if (inserted) {
    memory_bytes_ += key.size() + sizeof(Location) + 16;  // entry overhead estimate
  }
}

bool HashIndex::Get(const std::string& key, Location* out) const {
  auto it = map_.find(key);
  if (it == map_.end()) {
    return false;
  }
  *out = it->second;
  return true;
}

void HashIndex::Remove(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    return;
  }
  memory_bytes_ -= key.size() + sizeof(Location) + 16;
  map_.erase(it);
}

KvsEngine::KvsEngine(dev::Device* host, Pasid pasid, KvsEngineConfig config)
    : host_(host),
      pasid_(pasid),
      config_(std::move(config)),
      file_(std::make_unique<ssddev::FileClient>(host, pasid, config.file_client)) {
  LASTCPU_CHECK(host != nullptr, "engine needs a host device");
  file_->SetSlotAvailableCallback([this] { PumpWaiting(); });
}

const std::string& KvsEngine::CommitMarkerKey() {
  static const std::string kKey = std::string(1, '\x01') + "__compaction_commit__";
  return kKey;
}

std::string KvsEngine::GenName(uint32_t generation) const {
  if (generation == 0) {
    return config_.log_file;
  }
  return config_.log_file + "." + std::to_string(generation);
}

std::optional<uint32_t> KvsEngine::GenOf(const std::string& name) const {
  if (name == config_.log_file) {
    return 0;
  }
  const std::string prefix = config_.log_file + ".";
  if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
    return std::nullopt;
  }
  uint32_t generation = 0;
  for (size_t i = prefix.size(); i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return std::nullopt;
    }
    generation = generation * 10 + static_cast<uint32_t>(name[i] - '0');
  }
  return generation;
}

void KvsEngine::RunOrQueue(sim::MoveFn<void(), 256> op) {
  if (!compacting_ && file_->HasFreeSlot() && waiting_.empty()) {
    op();
    return;
  }
  ops_queued_.Increment();
  waiting_.push_back(std::move(op));
}

void KvsEngine::PumpWaiting() {
  while (!compacting_ && !waiting_.empty() && file_->HasFreeSlot()) {
    auto op = std::move(waiting_.front());
    waiting_.pop_front();
    op();
  }
}

// --- bring-up / recovery -------------------------------------------------------

void KvsEngine::Start(StartCallback done) {
  LASTCPU_CHECK(done != nullptr, "start without callback");
  // The index is volatile device state; the log is the durable truth. Start
  // always rebuilds from the log so restart == crash recovery.
  index_ = HashIndex();
  log_tail_ = 0;
  live_bytes_ = 0;
  // Find a file-service provider, then choose the generation to adopt.
  host_->rpc().Discover(proto::ServiceType::kFile, config_.log_file, sim::Duration::Micros(20),
                  [this, done = std::move(done)](
                      std::vector<proto::ServiceDescriptor> services) mutable {
                    if (!services.empty()) {
                      StartWithProvider(services[0].provider, std::move(done));
                      return;
                    }
                    // The base file may be gone after a compaction; ask any
                    // file service.
                    host_->rpc().Discover(
                        proto::ServiceType::kFile, "", sim::Duration::Micros(20),
                        [this, done = std::move(done)](
                            std::vector<proto::ServiceDescriptor> any) mutable {
                          if (any.empty()) {
                            done(NotFound("no file service on the bus"));
                            return;
                          }
                          StartWithProvider(any[0].provider, std::move(done));
                        });
                  });
}

void KvsEngine::StartWithProvider(DeviceId provider, StartCallback done) {
  ssddev::ListRemoteFiles(
      host_, provider, config_.auth_token,
      [this, provider, done = std::move(done)](Result<std::vector<std::string>> names) mutable {
        if (!names.ok()) {
          done(names.status());
          return;
        }
        std::vector<uint32_t> candidates;
        for (const auto& name : *names) {
          if (auto generation = GenOf(name)) {
            candidates.push_back(*generation);
          }
        }
        if (candidates.empty()) {
          done(NotFound("no log file for " + config_.log_file));
          return;
        }
        // Newest generation first; adopt the first committed one (or the
        // oldest as the uncompacted base case).
        std::sort(candidates.rbegin(), candidates.rend());
        TryCandidate(provider, std::move(candidates), 0, std::move(done));
      });
}

void KvsEngine::TryCandidate(DeviceId provider, std::vector<uint32_t> candidates, size_t index,
                             StartCallback done) {
  LASTCPU_CHECK(index < candidates.size(), "candidate walk out of range");
  uint32_t generation = candidates[index];
  std::string name = GenName(generation);
  index_ = HashIndex();
  log_tail_ = 0;
  commit_seen_ = false;
  file_ = std::make_unique<ssddev::FileClient>(host_, pasid_, config_.file_client);
  file_->SetSlotAvailableCallback([this] { PumpWaiting(); });
  file_->Open(name, config_.auth_token,
              [this, provider, candidates = std::move(candidates), index, generation, name,
               done = std::move(done)](Status opened) mutable {
                if (!opened.ok()) {
                  if (index + 1 < candidates.size()) {
                    // Races with our own debris cleanup are survivable. Defer
                    // off this FileClient's stack before replacing it.
                    host_->simulator()->Schedule(
                        sim::Duration::Nanos(100),
                        [this, provider, candidates = std::move(candidates), index,
                         done = std::move(done)]() mutable {
                          TryCandidate(provider, std::move(candidates), index + 1,
                                       std::move(done));
                        });
                    return;
                  }
                  done(opened);
                  return;
                }
                RecoverFrom(0, [this, provider, candidates = std::move(candidates), index,
                                generation, name, done = std::move(done)](Status s) mutable {
                  if (!s.ok()) {
                    done(s);
                    return;
                  }
                  bool is_last = index + 1 == candidates.size();
                  // A generation > 0 without a commit marker is half-copied
                  // compaction debris: skip (and clean it up).
                  if (generation != 0 && !commit_seen_ && !is_last) {
                    stats_.GetCounter("debris_generations_skipped").Increment();
                    ssddev::DeleteRemoteFile(host_, provider, name, config_.auth_token,
                                             [](Status) {});
                    // Defer off this FileClient's completion stack: the next
                    // TryCandidate destroys it.
                    host_->simulator()->Schedule(
                        sim::Duration::Nanos(100),
                        [this, provider, candidates = std::move(candidates), index,
                         done = std::move(done)]() mutable {
                          file_->Reset(Aborted("uncommitted generation"));
                          TryCandidate(provider, std::move(candidates), index + 1,
                                       std::move(done));
                        });
                    return;
                  }
                  // Adopt this generation; clean up every other candidate.
                  generation_ = generation;
                  active_file_ = name;
                  live_bytes_ = 0;
                  for (const auto& [key, location] : index_.entries()) {
                    live_bytes_ += location.length;
                  }
                  for (size_t i = 0; i < candidates.size(); ++i) {
                    if (i == index) {
                      continue;
                    }
                    ssddev::DeleteRemoteFile(host_, provider, GenName(candidates[i]),
                                             config_.auth_token, [](Status) {});
                  }
                  running_ = true;
                  stats_.GetCounter("recovery_complete").Increment();
                  done(OkStatus());
                });
              });
}

void KvsEngine::RecoverFrom(uint64_t offset, std::function<void(Status)> done) {
  // Read the log in response-slot-sized chunks and replay whole records.
  constexpr uint32_t kChunk = static_cast<uint32_t>(ssddev::kMaxReadBytes);
  file_->ReadAt(
      offset, kChunk,
      [this, offset, done = std::move(done)](Result<std::vector<uint8_t>> data) mutable {
        if (!data.ok()) {
          done(data.status());
          return;
        }
        if (data->empty()) {
          done(OkStatus());
          return;
        }
        uint64_t consumed = 0;
        std::span<const uint8_t> window(*data);
        while (true) {
          auto record = LogRecord::Decode(window.subspan(consumed));
          if (!record.ok()) {
            break;  // partial record at chunk edge; next read realigns
          }
          const auto& [rec, bytes] = *record;
          if (rec.key == CommitMarkerKey()) {
            commit_seen_ = true;
          } else if (rec.tombstone) {
            index_.Remove(rec.key);
          } else {
            index_.Put(rec.key,
                       HashIndex::Location{offset + consumed, static_cast<uint32_t>(bytes)});
          }
          consumed += bytes;
          stats_.GetCounter("recovered_records").Increment();
        }
        log_tail_ = offset + consumed;
        if (consumed == 0) {
          // Cannot make progress: corrupt or trailing garbage.
          done(OkStatus());
          return;
        }
        RecoverFrom(offset + consumed, std::move(done));
      });
}

void KvsEngine::Stop(Status reason) {
  running_ = false;
  compacting_ = false;
  compact_file_.reset();
  // Fail queued work before dropping the session (their callbacks expect an
  // answer), then reset the session itself.
  auto waiting = std::move(waiting_);
  waiting_.clear();
  file_->Reset(std::move(reason));
  // Queued thunks re-issue against the dead session; the FileClient fails
  // them fast with FailedPrecondition, which is the right signal.
  for (auto& op : waiting) {
    op();
  }
}

bool KvsEngine::HandleDoorbell(DeviceId from, uint64_t value) {
  if (file_->HandleDoorbell(from, value)) {
    return true;
  }
  return compact_file_ != nullptr && compact_file_->HandleDoorbell(from, value);
}

// --- operations -----------------------------------------------------------------

void KvsEngine::Get(const std::string& key, GetCallback done) {
  LASTCPU_CHECK(done != nullptr, "get without callback");
  if (!running_) {
    done(Unavailable("kvs engine is not running"));
    return;
  }
  gets_.Increment();
  // Queue behind a compaction swap so reads never straddle the generation
  // switch. The index lookup happens when the op actually runs.
  RunOrQueue([this, key, done = std::move(done)]() mutable {
    HashIndex::Location location;
    if (!index_.Get(key, &location)) {
      stats_.GetCounter("get_misses").Increment();
      done(NotFound("no such key"));
      return;
    }
    file_->ReadAt(location.offset, location.length,
                  [done = std::move(done)](Result<std::vector<uint8_t>> data) {
                    if (!data.ok()) {
                      done(data.status());
                      return;
                    }
                    auto record = LogRecord::Decode(*data);
                    if (!record.ok()) {
                      done(DataLoss("corrupt log record"));
                      return;
                    }
                    done(std::move(record->first.value));
                  });
  });
}

void KvsEngine::Put(const std::string& key, std::vector<uint8_t> value, PutCallback done) {
  LASTCPU_CHECK(done != nullptr, "put without callback");
  if (!running_) {
    // The network path already answers kUnavailable when the engine is down
    // (or mid-recovery); without the same guard here a direct op would sit
    // in waiting_ forever — no session ever frees a slot to pump it.
    done(Unavailable("kvs engine is not running"));
    return;
  }
  puts_.Increment();
  LogRecord record;
  record.key = key;
  record.value = std::move(value);
  auto bytes = record.Encode();
  auto length = static_cast<uint32_t>(bytes.size());
  RunOrQueue([this, key, length, bytes = std::move(bytes), done = std::move(done)]() mutable {
    file_->Append(std::move(bytes),
                  [this, key, length, done = std::move(done)](Result<uint64_t> at) {
                    if (!at.ok()) {
                      done(at.status());
                      return;
                    }
                    HashIndex::Location old;
                    if (index_.Get(key, &old)) {
                      live_bytes_ -= old.length;
                    }
                    live_bytes_ += length;
                    log_tail_ = std::max(log_tail_, *at + length);
                    index_.Put(key, HashIndex::Location{*at, length});
                    done(OkStatus());
                    MaybeCompact();
                  });
  });
}

void KvsEngine::Delete(const std::string& key, PutCallback done) {
  LASTCPU_CHECK(done != nullptr, "delete without callback");
  if (!running_) {
    done(Unavailable("kvs engine is not running"));
    return;
  }
  stats_.GetCounter("deletes").Increment();
  LogRecord record;
  record.key = key;
  record.tombstone = true;
  RunOrQueue([this, key, bytes = record.Encode(), done = std::move(done)]() mutable {
    HashIndex::Location location;
    if (!index_.Get(key, &location)) {
      done(NotFound("no such key"));
      return;
    }
    auto length = static_cast<uint32_t>(bytes.size());
    file_->Append(std::move(bytes),
                  [this, key, length, done = std::move(done)](Result<uint64_t> at) {
                    if (!at.ok()) {
                      done(at.status());
                      return;
                    }
                    HashIndex::Location old;
                    if (index_.Get(key, &old)) {
                      live_bytes_ -= old.length;
                    }
                    log_tail_ = std::max(log_tail_, *at + length);
                    index_.Remove(key);
                    done(OkStatus());
                    MaybeCompact();
                  });
  });
}

// --- compaction -----------------------------------------------------------------

void KvsEngine::MaybeCompact() {
  if (!running_ || compacting_ || config_.compact_garbage_ratio <= 0.0) {
    return;
  }
  if (log_tail_ < config_.min_compact_bytes) {
    return;
  }
  double garbage =
      static_cast<double>(log_tail_ - live_bytes_) / static_cast<double>(log_tail_);
  if (garbage < config_.compact_garbage_ratio) {
    return;
  }
  CompactNow([](Status) {});
}

void KvsEngine::CompactNow(StartCallback done) {
  LASTCPU_CHECK(done != nullptr, "compact without callback");
  if (!running_ || compacting_) {
    done(FailedPrecondition("engine not in a compactable state"));
    return;
  }
  compacting_ = true;
  stats_.GetCounter("compactions").Increment();
  uint32_t target_gen = generation_ + 1;
  std::string target = GenName(target_gen);
  DeviceId provider = file_->provider();

  ssddev::CreateRemoteFile(
      host_, provider, target, config_.auth_token,
      [this, target, done = std::move(done)](Status created) mutable {
        if (!created.ok()) {
          AbortCompaction(created, std::move(done));
          return;
        }
        compact_file_ = std::make_unique<ssddev::FileClient>(host_, pasid_, config_.file_client);
        compact_file_->Open(target, config_.auth_token,
                            [this, done = std::move(done)](Status opened) mutable {
                              if (!opened.ok()) {
                                AbortCompaction(opened, std::move(done));
                                return;
                              }
                              auto live = std::make_shared<
                                  std::vector<std::pair<std::string, HashIndex::Location>>>(
                                  index_.entries().begin(), index_.entries().end());
                              auto new_index = std::make_shared<HashIndex>();
                              auto new_tail = std::make_shared<uint64_t>(0);
                              CopyNext(live, 0, new_index, new_tail, std::move(done));
                            });
      });
}

void KvsEngine::CopyNext(
    std::shared_ptr<std::vector<std::pair<std::string, HashIndex::Location>>> live, size_t index,
    std::shared_ptr<HashIndex> new_index, std::shared_ptr<uint64_t> new_tail,
    StartCallback done) {
  if (index >= live->size()) {
    // Seal the generation with the commit marker.
    LogRecord marker;
    marker.key = CommitMarkerKey();
    marker.tombstone = true;
    auto bytes = marker.Encode();
    auto length = static_cast<uint64_t>(bytes.size());
    compact_file_->Append(std::move(bytes),
                          [this, new_index, new_tail, length,
                           done = std::move(done)](Result<uint64_t> at) mutable {
                            if (!at.ok()) {
                              AbortCompaction(at.status(), std::move(done));
                              return;
                            }
                            FinishCompaction(new_index, *new_tail + length, std::move(done));
                          });
    return;
  }
  const auto& [key, location] = (*live)[index];
  file_->ReadAt(
      location.offset, location.length,
      [this, live, index, new_index, new_tail, key = key,
       done = std::move(done)](Result<std::vector<uint8_t>> data) mutable {
        if (!data.ok()) {
          AbortCompaction(data.status(), std::move(done));
          return;
        }
        auto length = static_cast<uint32_t>(data->size());
        compact_file_->Append(*std::move(data),
                              [this, live, index, new_index, new_tail, key = std::move(key),
                               length, done = std::move(done)](Result<uint64_t> at) mutable {
                                if (!at.ok()) {
                                  AbortCompaction(at.status(), std::move(done));
                                  return;
                                }
                                new_index->Put(key, HashIndex::Location{*at, length});
                                *new_tail = std::max(*new_tail, *at + length);
                                stats_.GetCounter("compacted_records").Increment();
                                CopyNext(live, index + 1, new_index, new_tail, std::move(done));
                              });
      });
}

void KvsEngine::FinishCompaction(std::shared_ptr<HashIndex> new_index, uint64_t new_tail,
                                 StartCallback done) {
  // Let requests that were in flight on the old session before compaction
  // started finish cleanly rather than aborting them at the swap.
  if (file_->InFlight() > 0) {
    host_->simulator()->Schedule(sim::Duration::Micros(10),
                                 [this, new_index, new_tail, done = std::move(done)]() mutable {
                                   FinishCompaction(new_index, new_tail, std::move(done));
                                 });
    return;
  }
  // Swap: the new generation becomes the store; the old file is deleted via
  // the control plane. Queued operations resume against the new session.
  std::string old_name = active_file_;
  DeviceId provider = compact_file_->provider();
  uint32_t target_gen = generation_ + 1;

  file_->Reset(Aborted("superseded by compaction"));
  file_ = std::move(compact_file_);
  file_->SetSlotAvailableCallback([this] { PumpWaiting(); });
  index_ = *new_index;
  live_bytes_ = 0;
  for (const auto& [key, location] : index_.entries()) {
    live_bytes_ += location.length;
  }
  log_tail_ = new_tail;
  generation_ = target_gen;
  active_file_ = GenName(target_gen);
  compacting_ = false;
  stats_.GetCounter("compactions_completed").Increment();

  ssddev::DeleteRemoteFile(host_, provider, old_name, config_.auth_token,
                           [done = std::move(done)](Status deleted) {
                             // Best effort: leftover debris is cleaned at the
                             // next recovery.
                             (void)deleted;
                             done(OkStatus());
                           });
  PumpWaiting();
}

void KvsEngine::AbortCompaction(Status reason, StartCallback done) {
  stats_.GetCounter("compactions_aborted").Increment();
  if (compact_file_ != nullptr) {
    DeviceId provider = compact_file_->provider();
    std::string target = GenName(generation_ + 1);
    compact_file_->Reset(reason);
    compact_file_.reset();
    if (provider.valid()) {
      ssddev::DeleteRemoteFile(host_, provider, target, config_.auth_token, [](Status) {});
    }
  }
  compacting_ = false;
  PumpWaiting();
  done(reason);
}

// --- network protocol -------------------------------------------------------------

void KvsEngine::HandleRequest(std::vector<uint8_t> wire, Responder respond) {
  LASTCPU_CHECK(respond != nullptr, "request without responder");
  auto request = KvsRequest::Decode(wire);
  if (!request.ok()) {
    stats_.GetCounter("malformed_requests").Increment();
    KvsResponse response;
    response.status = StatusCode::kInvalidArgument;
    respond(response.Encode());
    return;
  }
  if (!running_) {
    KvsResponse response;
    response.status = StatusCode::kUnavailable;
    response.sequence = request->sequence;
    respond(response.Encode());
    return;
  }
  uint64_t sequence = request->sequence;
  switch (request->op) {
    case KvsOp::kGet:
      Get(request->key, [sequence, respond = std::move(respond)](
                            Result<std::vector<uint8_t>> value) {
        KvsResponse response;
        response.sequence = sequence;
        if (value.ok()) {
          response.value = *std::move(value);
        } else {
          response.status = value.status().code();
        }
        respond(response.Encode());
      });
      return;
    case KvsOp::kPut:
      Put(request->key, std::move(request->value),
          [sequence, respond = std::move(respond)](Status s) {
            KvsResponse response;
            response.sequence = sequence;
            response.status = s.code();
            respond(response.Encode());
          });
      return;
    case KvsOp::kDelete:
      Delete(request->key, [sequence, respond = std::move(respond)](Status s) {
        KvsResponse response;
        response.sequence = sequence;
        response.status = s.code();
        respond(response.Encode());
      });
      return;
  }
}

}  // namespace lastcpu::kvs
