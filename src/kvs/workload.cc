#include "src/kvs/workload.h"

#include <algorithm>
#include <utility>

#include "src/base/check.h"

namespace lastcpu::kvs {

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config)
    : config_(config), rng_(config.seed) {
  LASTCPU_CHECK(config.num_keys > 0, "workload needs keys");
  if (config.zipf_theta > 0.0) {
    zipf_ = std::make_unique<sim::ZipfGenerator>(config.num_keys, config.zipf_theta);
  }
}

std::string WorkloadGenerator::KeyFor(uint64_t index) {
  return "user" + std::to_string(1000000 + index);
}

KvsRequest WorkloadGenerator::Next() {
  KvsRequest request;
  request.sequence = ++sequence_;
  uint64_t key_index =
      zipf_ ? zipf_->Next(rng_) : rng_.NextBelow(config_.num_keys);
  request.key = KeyFor(key_index);
  if (rng_.NextDouble() < config_.get_fraction) {
    request.op = KvsOp::kGet;
  } else {
    request.op = KvsOp::kPut;
    request.value.resize(config_.value_bytes);
    rng_.Fill(request.value);
  }
  return request;
}

LoadClient::LoadClient(sim::Simulator* simulator, net::Network* network, net::EndpointId server,
                       WorkloadConfig workload, uint32_t concurrency)
    : simulator_(simulator),
      network_(network),
      server_(server),
      generator_(workload),
      concurrency_(concurrency) {
  LASTCPU_CHECK(simulator != nullptr && network != nullptr, "load client needs substrate");
  LASTCPU_CHECK(concurrency > 0, "zero concurrency");
  self_ = network_->Attach([this](net::EndpointId from, std::vector<uint8_t> payload) {
    (void)from;
    OnResponse(std::move(payload));
  });
}

void LoadClient::Start(uint64_t target_ops, std::function<void()> on_done) {
  LASTCPU_CHECK(on_done != nullptr, "load client without completion callback");
  target_ops_ = target_ops;
  on_done_ = std::move(on_done);
  uint64_t initial = std::min<uint64_t>(concurrency_, target_ops);
  for (uint64_t i = 0; i < initial; ++i) {
    IssueOne();
  }
}

void LoadClient::IssueOne() {
  if (issued_ >= target_ops_) {
    return;
  }
  ++issued_;
  KvsRequest request = generator_.Next();
  in_flight_[request.sequence] = InFlight{simulator_->Now(), request.op};
  network_->Send(self_, server_, request.Encode());
}

void LoadClient::OnResponse(std::vector<uint8_t> wire) {
  auto response = KvsResponse::Decode(wire);
  if (!response.ok()) {
    ++errors_;
    return;
  }
  auto it = in_flight_.find(response->sequence);
  if (it == in_flight_.end()) {
    ++errors_;
    return;
  }
  sim::Duration elapsed = simulator_->Now() - it->second.sent_at;
  latency_.Record(elapsed);
  if (it->second.op == KvsOp::kGet) {
    get_latency_.Record(elapsed);
  } else {
    put_latency_.Record(elapsed);
  }
  ++status_counts_[response->status];
  // NotFound on a get is a legitimate miss, not an error.
  if (response->status != StatusCode::kOk && response->status != StatusCode::kNotFound) {
    ++errors_;
  }
  in_flight_.erase(it);
  ++completed_;
  if (completed_ >= target_ops_) {
    if (on_done_) {
      auto done = std::move(on_done_);
      on_done_ = nullptr;
      done();
    }
    return;
  }
  IssueOne();
}

}  // namespace lastcpu::kvs
