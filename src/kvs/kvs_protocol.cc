#include "src/kvs/kvs_protocol.h"

#include <utility>

namespace lastcpu::kvs {
namespace {

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint16_t GetU16(std::span<const uint8_t> in, size_t at) {
  return static_cast<uint16_t>(in[at] | (in[at + 1] << 8));
}

uint32_t GetU32(std::span<const uint8_t> in, size_t at) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | in[at + static_cast<size_t>(i)];
  }
  return v;
}

uint64_t GetU64(std::span<const uint8_t> in, size_t at) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | in[at + static_cast<size_t>(i)];
  }
  return v;
}

}  // namespace

std::vector<uint8_t> KvsRequest::Encode() const {
  std::vector<uint8_t> out;
  out.reserve(13 + key.size() + value.size());
  out.push_back(static_cast<uint8_t>(op));
  PutU64(out, sequence);
  PutU16(out, static_cast<uint16_t>(key.size()));
  PutU32(out, static_cast<uint32_t>(value.size()));
  out.insert(out.end(), key.begin(), key.end());
  out.insert(out.end(), value.begin(), value.end());
  return out;
}

Result<KvsRequest> KvsRequest::Decode(std::span<const uint8_t> wire) {
  if (wire.size() < 15) {
    return InvalidArgument("truncated KVS request");
  }
  if (wire[0] < static_cast<uint8_t>(KvsOp::kGet) || wire[0] > static_cast<uint8_t>(KvsOp::kDelete)) {
    return InvalidArgument("unknown KVS op");
  }
  KvsRequest request;
  request.op = static_cast<KvsOp>(wire[0]);
  request.sequence = GetU64(wire, 1);
  uint16_t key_len = GetU16(wire, 9);
  uint32_t value_len = GetU32(wire, 11);
  if (wire.size() < 15u + key_len + value_len) {
    return InvalidArgument("truncated KVS request body");
  }
  request.key.assign(reinterpret_cast<const char*>(wire.data() + 15), key_len);
  request.value.assign(wire.begin() + 15 + key_len, wire.begin() + 15 + key_len + value_len);
  return request;
}

std::vector<uint8_t> KvsResponse::Encode() const {
  std::vector<uint8_t> out;
  out.reserve(13 + value.size());
  out.push_back(static_cast<uint8_t>(status));
  PutU64(out, sequence);
  PutU32(out, static_cast<uint32_t>(value.size()));
  out.insert(out.end(), value.begin(), value.end());
  return out;
}

Result<KvsResponse> KvsResponse::Decode(std::span<const uint8_t> wire) {
  if (wire.size() < 13) {
    return InvalidArgument("truncated KVS response");
  }
  KvsResponse response;
  response.status = static_cast<StatusCode>(wire[0]);
  response.sequence = GetU64(wire, 1);
  uint32_t value_len = GetU32(wire, 9);
  if (wire.size() < 13u + value_len) {
    return InvalidArgument("truncated KVS response body");
  }
  response.value.assign(wire.begin() + 13, wire.begin() + 13 + value_len);
  return response;
}

std::vector<uint8_t> LogRecord::Encode() const {
  std::vector<uint8_t> out;
  out.reserve(EncodedBytes());
  PutU16(out, kMagic);
  PutU16(out, static_cast<uint16_t>(key.size()));
  PutU32(out, static_cast<uint32_t>(value.size()));
  out.push_back(tombstone ? 1 : 0);
  out.insert(out.end(), key.begin(), key.end());
  out.insert(out.end(), value.begin(), value.end());
  return out;
}

Result<std::pair<LogRecord, uint64_t>> LogRecord::Decode(std::span<const uint8_t> wire) {
  if (wire.size() < kHeaderBytes) {
    return InvalidArgument("truncated log record header");
  }
  if (GetU16(wire, 0) != kMagic) {
    return DataLoss("bad log record magic");
  }
  uint16_t key_len = GetU16(wire, 2);
  uint32_t value_len = GetU32(wire, 4);
  uint64_t total = kHeaderBytes + key_len + value_len;
  if (wire.size() < total) {
    return InvalidArgument("truncated log record body");
  }
  LogRecord record;
  record.tombstone = wire[8] != 0;
  record.key.assign(reinterpret_cast<const char*>(wire.data() + kHeaderBytes), key_len);
  record.value.assign(wire.begin() + static_cast<ptrdiff_t>(kHeaderBytes + key_len),
                      wire.begin() + static_cast<ptrdiff_t>(total));
  return std::make_pair(std::move(record), total);
}

}  // namespace lastcpu::kvs
