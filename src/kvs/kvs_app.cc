#include "src/kvs/kvs_app.h"

#include <utility>

namespace lastcpu::kvs {

KvsApp::KvsApp(dev::Device* host, Pasid pasid, KvsAppConfig config)
    : host_(host), config_(config), engine_(host, pasid, config.engine) {}

void KvsApp::Start(std::function<void(Status)> done) {
  if (engine_.running()) {
    // Relaunch after a host reset: the engine still holds the pre-reset
    // session, which died with the device. Drop it before bringing up anew.
    engine_.Stop(Aborted("host device reset"));
  }
  restarting_ = true;
  engine_.Start([this, done = std::move(done)](Status s) {
    restarting_ = false;
    if (s.ok()) {
      last_provider_ = engine_.file().provider();
    }
    if (!s.ok()) {
      // A lost bring-up message must not strand the app forever — there is
      // no CPU to notice and relaunch it. Fall into the same retry loop the
      // peer-failure path uses.
      Retry(0);
    }
    if (done) {
      done(s);
    }
  });
}

void KvsApp::HandleRequest(std::vector<uint8_t> payload,
                           std::function<void(std::vector<uint8_t>)> respond) {
  engine_.HandleRequest(std::move(payload), std::move(respond));
}

bool KvsApp::HandleDoorbell(DeviceId from, uint64_t value) {
  return engine_.HandleDoorbell(from, value);
}

void KvsApp::OnPeerFailed(DeviceId device) {
  if (!engine_.running() || device != engine_.file().provider()) {
    return;
  }
  // Sec. 4: "It is the responsibility of the application logic running on the
  // consumer to recover from this scenario."
  engine_.Stop(Unavailable("storage device failed"));
  Retry(0);
}

void KvsApp::OnPeerPermanentlyFailed(DeviceId device) {
  if (device != engine_.file().provider() && device != last_provider_) {
    return;
  }
  // The supervisor quarantined the storage device: it will never announce
  // alive again, so the recovery loop would spin for max_retries for
  // nothing. Kill the loop and fail requests fast with kUnavailable.
  provider_gone_ = true;
  host_->stats().GetCounter("kvs_provider_permanently_failed").Increment();
  if (engine_.running()) {
    engine_.Stop(Unavailable("storage device permanently failed"));
  }
}

void KvsApp::Retry(uint32_t attempt) {
  if (provider_gone_) {
    return;  // the provider is quarantined; retrying cannot succeed
  }
  if (attempt >= config_.max_retries) {
    host_->stats().GetCounter("kvs_recovery_abandoned").Increment();
    return;
  }
  host_->simulator()->Schedule(config_.retry_delay, [this, attempt] {
    if (engine_.running() || restarting_ || provider_gone_) {
      return;
    }
    restarting_ = true;
    engine_.Start([this, attempt](Status s) {
      restarting_ = false;
      if (s.ok()) {
        last_provider_ = engine_.file().provider();
        ++recoveries_;
        host_->stats().GetCounter("kvs_recoveries").Increment();
        return;
      }
      Retry(attempt + 1);
    });
  });
}

}  // namespace lastcpu::kvs
