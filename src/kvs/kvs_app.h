// KvsApp: packages the KVS engine as a smart-NIC AppEngine, including the
// Sec. 4 error-handling story — when the SSD hosting the log dies, the app
// drops its session and keeps retrying bring-up until the device returns.
#ifndef SRC_KVS_KVS_APP_H_
#define SRC_KVS_KVS_APP_H_

#include <memory>

#include "src/kvs/kvs_engine.h"
#include "src/nicdev/smart_nic.h"

namespace lastcpu::kvs {

struct KvsAppConfig {
  KvsEngineConfig engine;
  // Delay between bring-up retries after the storage device fails.
  sim::Duration retry_delay = sim::Duration::Micros(500);
  uint32_t max_retries = 20;
};

class KvsApp : public nicdev::AppEngine {
 public:
  KvsApp(dev::Device* host, Pasid pasid, KvsAppConfig config = {});

  void Start(std::function<void(Status)> done) override;
  void HandleRequest(std::vector<uint8_t> payload,
                     std::function<void(std::vector<uint8_t>)> respond) override;
  bool HandleDoorbell(DeviceId from, uint64_t value) override;
  void OnPeerFailed(DeviceId device) override;
  void OnPeerPermanentlyFailed(DeviceId device) override;

  KvsEngine& engine() { return engine_; }
  uint32_t recoveries() const { return recoveries_; }
  // True once the storage provider was quarantined: the retry loop is dead
  // and requests answer kUnavailable until a new provider appears.
  bool provider_permanently_failed() const { return provider_gone_; }

 private:
  void Retry(uint32_t attempt);

  dev::Device* host_;
  KvsAppConfig config_;
  KvsEngine engine_;
  uint32_t recoveries_ = 0;
  // True while a bring-up attempt is in flight, so the initial-start and
  // peer-failure retry chains never run two bring-ups concurrently.
  bool restarting_ = false;
  bool provider_gone_ = false;
  // Last storage device a session was bound to. The file client forgets its
  // provider on transient failure (Reset), but the quarantine notice arrives
  // *after* that reset — this is how the app still recognizes it.
  DeviceId last_provider_ = DeviceId::Invalid();
};

}  // namespace lastcpu::kvs

#endif  // SRC_KVS_KVS_APP_H_
