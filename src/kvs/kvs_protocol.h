// KVS network protocol and on-flash log record format (paper Sec. 3).
//
// Requests arrive at the smart NIC over the external network; data lives in a
// log file on the smart SSD. Both formats are length-prefixed little-endian.
#ifndef SRC_KVS_KVS_PROTOCOL_H_
#define SRC_KVS_KVS_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace lastcpu::kvs {

enum class KvsOp : uint8_t {
  kGet = 1,
  kPut = 2,
  kDelete = 3,
};

// One client request datagram.
struct KvsRequest {
  KvsOp op = KvsOp::kGet;
  uint64_t sequence = 0;  // echoed in the response for client-side matching
  std::string key;
  std::vector<uint8_t> value;  // put only

  std::vector<uint8_t> Encode() const;
  static Result<KvsRequest> Decode(std::span<const uint8_t> wire);
};

// One response datagram.
struct KvsResponse {
  StatusCode status = StatusCode::kOk;
  uint64_t sequence = 0;
  std::vector<uint8_t> value;  // get only

  std::vector<uint8_t> Encode() const;
  static Result<KvsResponse> Decode(std::span<const uint8_t> wire);
};

// On-flash log record: every put/delete appends one. The index maps keys to
// (offset, length) of their latest record; recovery rescans the log.
struct LogRecord {
  std::string key;
  std::vector<uint8_t> value;
  bool tombstone = false;  // true for deletes

  static constexpr uint16_t kMagic = 0x4B56;  // "KV"
  static constexpr uint64_t kHeaderBytes = 9;  // magic u16 + key u16 + val u32 + tomb u8

  uint64_t EncodedBytes() const { return kHeaderBytes + key.size() + value.size(); }
  std::vector<uint8_t> Encode() const;
  // Decodes one record at the front of `wire`; reports bytes consumed.
  static Result<std::pair<LogRecord, uint64_t>> Decode(std::span<const uint8_t> wire);
};

}  // namespace lastcpu::kvs

#endif  // SRC_KVS_KVS_PROTOCOL_H_
