#include "src/net/network.h"

#include <algorithm>
#include <utility>

#include "src/base/check.h"

namespace lastcpu::net {

Network::Network(sim::Simulator* simulator, NetworkConfig config)
    : simulator_(simulator), config_(config) {
  LASTCPU_CHECK(simulator != nullptr, "network needs a simulator");
}

EndpointId Network::Attach(Handler handler) {
  LASTCPU_CHECK(handler != nullptr, "endpoint without handler");
  EndpointId id = next_id_++;
  endpoints_.emplace(id, Endpoint{std::move(handler), sim::SimTime::Zero()});
  return id;
}

void Network::Detach(EndpointId endpoint) { endpoints_.erase(endpoint); }

void Network::Send(EndpointId from, EndpointId to, std::vector<uint8_t> payload) {
  auto source = endpoints_.find(from);
  LASTCPU_CHECK(source != endpoints_.end(), "send from detached endpoint %u", from);

  stats_.GetCounter("datagrams").Increment();
  stats_.GetCounter("bytes").Increment(payload.size());

  auto wire_time = config_.base_latency +
                   sim::Duration::Nanos(static_cast<uint64_t>(
                       static_cast<double>(payload.size()) / config_.bytes_per_nano));
  sim::SimTime start = std::max(simulator_->Now(), source->second.tx_busy_until);
  sim::SimTime arrival = start + wire_time;
  source->second.tx_busy_until = arrival;

  simulator_->ScheduleAt(arrival, [this, from, to, payload = std::move(payload)]() mutable {
    auto target = endpoints_.find(to);
    if (target == endpoints_.end()) {
      stats_.GetCounter("dropped").Increment();
      return;
    }
    target->second.handler(from, std::move(payload));
  });
}

}  // namespace lastcpu::net
