// Simulated external network: remote clients <-> smart-NIC endpoints.
//
// This models the paper's Sec. 3 setting — "The NIC exposes a KVS interface
// to other machines over the network" — as a latency/bandwidth-modeled
// message fabric between endpoints. It is distinct from both the system bus
// (control plane) and the memory fabric (data plane): it is the outside
// world.
#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/stats.h"

namespace lastcpu::net {

using EndpointId = uint32_t;

struct NetworkConfig {
  sim::Duration base_latency = sim::Duration::Micros(5);  // one-way wire+switch
  double bytes_per_nano = 10.0;                           // ~10 GB/s links
};

class Network {
 public:
  using Handler = std::function<void(EndpointId from, std::vector<uint8_t> payload)>;

  explicit Network(sim::Simulator* simulator, NetworkConfig config = {});

  // Attaches an endpoint; `handler` receives every datagram addressed to it.
  EndpointId Attach(Handler handler);
  void Detach(EndpointId endpoint);

  // Sends a datagram. Egress is serialized per source endpoint (one link per
  // machine); delivery is dropped silently if the target detached (like UDP).
  void Send(EndpointId from, EndpointId to, std::vector<uint8_t> payload);

  sim::StatsRegistry& stats() { return stats_; }

 private:
  struct Endpoint {
    Handler handler;
    sim::SimTime tx_busy_until;
  };

  sim::Simulator* simulator_;
  NetworkConfig config_;
  std::unordered_map<EndpointId, Endpoint> endpoints_;
  EndpointId next_id_ = 1;
  sim::StatsRegistry stats_;
};

}  // namespace lastcpu::net

#endif  // SRC_NET_NETWORK_H_
