// Binary wire codec for bus messages.
//
// A real system-management bus moves bytes, not C++ objects; the codec defines
// that wire format (little-endian, length-prefixed strings). The emulated bus
// routes in-memory `Message` objects for speed but uses EncodedSize() to model
// serialization latency, and the loopback tests round-trip every payload kind
// through the codec to keep it honest.
#ifndef SRC_PROTO_CODEC_H_
#define SRC_PROTO_CODEC_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/proto/message.h"

namespace lastcpu::proto {

// Little-endian append-only byte sink.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  // Length-prefixed (u32) string.
  void PutString(const std::string& s);
  // Length-prefixed (u32) raw bytes.
  void PutBytes(std::span<const uint8_t> data);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }
  // Empties the sink but keeps its capacity, so a reused writer stops
  // allocating once it has seen the largest message.
  void Clear() { bytes_.clear(); }

 private:
  std::vector<uint8_t> bytes_;
};

// Bounds-checked little-endian byte source.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<std::string> GetString();
  Result<std::vector<uint8_t>> GetBytes();

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

// Serializes a message (header + payload) to wire bytes.
std::vector<uint8_t> EncodeMessage(const Message& message);

// Parses wire bytes back into a message. Fails on truncation, bad magic,
// unknown type, or trailing garbage.
Result<Message> DecodeMessage(std::span<const uint8_t> wire);

// Wire size without materializing the bytes (used for bus latency modeling).
size_t EncodedSize(const Message& message);

}  // namespace lastcpu::proto

#endif  // SRC_PROTO_CODEC_H_
