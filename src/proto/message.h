// The system-management-bus protocol (control plane).
//
// Every control operation in the CPU-less machine — discovery, service open,
// memory allocation, IOMMU mapping directives, grants, failure notification,
// task lifecycle — is one of these messages. The paper (Sec. 2.2) requires the
// protocol to be "not more computationally intensive ... than many existing
// control protocols such as AHCI/EHCI"; all payloads here are plain data with
// a compact binary codec (see codec.h).
#ifndef SRC_PROTO_MESSAGE_H_
#define SRC_PROTO_MESSAGE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/sim/trace_context.h"

namespace lastcpu::proto {

// Kinds of resources a self-managing device can expose as services (paper
// Sec. 2.1: "physical memory, FPGA blocks, GPU cores, storage space, etc.").
enum class ServiceType : uint8_t {
  kMemory = 0,    // physical memory allocation (the memory controller)
  kFile = 1,      // filesystem on a smart SSD
  kBlock = 2,     // raw block access on a smart SSD
  kNetwork = 3,   // packet / socket endpoints on a smart NIC
  kCompute = 4,   // offload engine (FPGA blocks, embedded cores)
  kLoader = 5,    // binary image upload (paper Sec. 2.1)
  kAuth = 6,      // access-control / login service (paper Sec. 4)
  kLog = 7,       // append-only log for system maintenance (paper Sec. 4)
  kKeyValue = 8,  // application-level KVS endpoint (paper Sec. 3)
};

std::string_view ServiceTypeName(ServiceType type);

// Advertises one service offered by a device, returned by discovery.
struct ServiceDescriptor {
  DeviceId provider;
  ServiceType type = ServiceType::kMemory;
  std::string name;           // e.g. "flashfs", "kv-frontend"
  uint32_t max_instances = 0; // 0 = unlimited

  friend bool operator==(const ServiceDescriptor&, const ServiceDescriptor&) = default;
};

// One virtual->physical page mapping, as programmed into an IOMMU.
struct MapEntry {
  uint64_t vpage = 0;   // virtual page number
  uint64_t pframe = 0;  // physical frame number
  Access access = Access::kNone;

  friend bool operator==(const MapEntry&, const MapEntry&) = default;
};

// ---------------------------------------------------------------------------
// Payloads. Groups follow the paper's lifecycle: init -> discovery -> open ->
// memory/grant -> run -> errors -> teardown.
// ---------------------------------------------------------------------------

// Device -> bus after self-test (Sec. 2.2 "System Initialization").
struct AliveAnnounce {
  std::string device_name;
  std::vector<ServiceDescriptor> services;

  friend bool operator==(const AliveAnnounce&, const AliveAnnounce&) = default;
};

// Broadcast: "which device offers a service of this type / owning this
// resource?" (Fig. 2 step 1; SSDP-like).
struct DiscoverRequest {
  ServiceType type = ServiceType::kMemory;
  std::string resource;  // optional, e.g. a file name the service must own

  friend bool operator==(const DiscoverRequest&, const DiscoverRequest&) = default;
};

// Unicast answer from a device that can provide the service (Fig. 2 step 2).
struct DiscoverResponse {
  ServiceDescriptor descriptor;

  friend bool operator==(const DiscoverResponse&, const DiscoverResponse&) = default;
};

// Open an instance (context) of a service (Fig. 2 step 3). Carries the
// authorization token (Sec. 3: "including an authorization token").
struct OpenRequest {
  std::string service_name;
  std::string resource;
  uint64_t auth_token = 0;
  Pasid pasid;

  friend bool operator==(const OpenRequest&, const OpenRequest&) = default;
};

// Connection details (Fig. 2 step 4): how much shared memory the provider
// needs for the VIRTIO queues plus data buffers, and the queue shape.
struct OpenResponse {
  InstanceId instance;
  uint64_t shared_bytes_required = 0;
  uint16_t queue_depth = 0;

  friend bool operator==(const OpenResponse&, const OpenResponse&) = default;
};

struct CloseRequest {
  InstanceId instance;

  friend bool operator==(const CloseRequest&, const CloseRequest&) = default;
};

struct CloseResponse {
  friend bool operator==(const CloseResponse&, const CloseResponse&) = default;
};

// Device -> memory controller (Fig. 2 step 5): allocate physical memory and
// map it at `vaddr_hint` in address space `pasid`.
struct MemAllocRequest {
  Pasid pasid;
  uint64_t bytes = 0;
  VirtAddr vaddr_hint;
  Access access = Access::kReadWrite;

  friend bool operator==(const MemAllocRequest&, const MemAllocRequest&) = default;
};

// Memory controller -> requesting device: the allocation result. The actual
// IOMMU programming travels separately as a MapDirective to the bus.
struct MemAllocResponse {
  VirtAddr vaddr;
  uint64_t bytes = 0;
  // First physical frame backing the region. Part of the client's lease
  // receipt: after a shard failover the owner re-asserts (vaddr, frames) so
  // the successor can rebuild its table without re-placing memory.
  uint64_t first_frame = 0;

  friend bool operator==(const MemAllocResponse&, const MemAllocResponse&) = default;
};

// Resource controller -> bus (privileged): program `target`'s IOMMU. Only the
// controller of a resource may direct mappings for it (Sec. 2.2 "the system
// bus updates the page tables of a device only when it is instructed to do so
// by the controller of that particular resource").
struct MapDirective {
  DeviceId target;
  Pasid pasid;
  std::vector<MapEntry> entries;
  bool unmap = false;
  // The issuing controller's registration epoch (0 = unfenced, the lone
  // flat controller). The bus rejects a directive whose epoch is older than
  // the issuer's current directory registration: a grant computed before a
  // shard failover cannot program IOMMUs after it (Sec. 4 error handling,
  // extended to the control plane itself).
  uint64_t epoch = 0;

  friend bool operator==(const MapDirective&, const MapDirective&) = default;
};

struct MemFreeRequest {
  Pasid pasid;
  VirtAddr vaddr;
  uint64_t bytes = 0;

  friend bool operator==(const MemFreeRequest&, const MemFreeRequest&) = default;
};

struct MemFreeResponse {
  friend bool operator==(const MemFreeResponse&, const MemFreeResponse&) = default;
};

// Owner device -> bus (Fig. 2 step 7): give `grantee` access to a region the
// owner allocated. The bus forwards to the memory controller for
// authorization before programming the grantee's IOMMU.
struct GrantRequest {
  Pasid pasid;
  VirtAddr vaddr;
  uint64_t bytes = 0;
  DeviceId grantee;
  Access access = Access::kReadWrite;

  friend bool operator==(const GrantRequest&, const GrantRequest&) = default;
};

struct GrantResponse {
  friend bool operator==(const GrantResponse&, const GrantResponse&) = default;
};

struct RevokeRequest {
  Pasid pasid;
  VirtAddr vaddr;
  uint64_t bytes = 0;
  DeviceId grantee;

  friend bool operator==(const RevokeRequest&, const RevokeRequest&) = default;
};

struct RevokeResponse {
  friend bool operator==(const RevokeResponse&, const RevokeResponse&) = default;
};

// Doorbell-style attention signal (Sec. 2.3 "Notifications"): data-plane
// events ride the fabric, but devices may also signal over the control plane.
struct Notify {
  InstanceId instance;
  uint64_t payload = 0;

  friend bool operator==(const Notify&, const Notify&) = default;
};

// Owner -> consumers: a resource died but the device survived (Sec. 4 "Error
// Handling"); consumers must recover, the owner resets the resource.
struct ResourceFailed {
  std::string service_name;
  InstanceId instance;
  std::string reason;

  friend bool operator==(const ResourceFailed&, const ResourceFailed&) = default;
};

// Bus -> all devices: an entire device failed; anyone using its resources
// must recover (Sec. 4).
struct DeviceFailed {
  DeviceId device;

  friend bool operator==(const DeviceFailed&, const DeviceFailed&) = default;
};

// Bus -> device: reset line, "in an attempt to restart it" (Sec. 4).
struct ResetSignal {
  friend bool operator==(const ResetSignal&, const ResetSignal&) = default;
};

// Bus -> all devices: the supervisor exhausted its restart policy (attempts
// spent, or a crash loop detected) and quarantined the device. Terminal:
// unlike DeviceFailed, the device is never coming back, so consumers must
// stop retrying and surface the failure to their applications.
struct DevicePermanentlyFailed {
  DeviceId device;
  std::string reason;

  friend bool operator==(const DevicePermanentlyFailed&, const DevicePermanentlyFailed&) = default;
};

// Tear down every resource belonging to an application address space
// (task life cycle management, Sec. 1).
struct TeardownApp {
  Pasid pasid;

  friend bool operator==(const TeardownApp&, const TeardownApp&) = default;
};

// Upload a new application image to a device's loader service (Sec. 2.1
// "devices that store their applications internally ... must expose a loader
// service"). Gated by the auth service (Sec. 4).
struct LoadImage {
  std::string app_name;
  std::vector<uint8_t> image;
  uint64_t auth_token = 0;

  friend bool operator==(const LoadImage&, const LoadImage&) = default;
};

struct LoadImageResponse {
  friend bool operator==(const LoadImageResponse&, const LoadImageResponse&) = default;
};

// Login: user + secret -> token (Sec. 4 "Access Control", the 'login'
// program / 'passwd' file equivalent).
struct AuthRequest {
  std::string user;
  std::string secret;

  friend bool operator==(const AuthRequest&, const AuthRequest&) = default;
};

struct AuthResponse {
  uint64_t token = 0;
  uint64_t expiry_nanos = 0;

  friend bool operator==(const AuthResponse&, const AuthResponse&) = default;
};

// Generic failure answer to any request.
struct ErrorResponse {
  StatusCode code = StatusCode::kInternal;
  std::string message;

  friend bool operator==(const ErrorResponse&, const ErrorResponse&) = default;
};

// Bus -> resource controller: acknowledges that a MapDirective's programming
// completed, so the controller can release the dependent response.
struct MapConfirm {
  DeviceId target;
  Pasid pasid;

  friend bool operator==(const MapConfirm&, const MapConfirm&) = default;
};

// Client -> service provider: after allocating and granting the session's
// shared memory, tells the provider where the virtqueue session lives in the
// application's address space (completes the Fig. 2 handshake: "programming
// the VIRTIO queues ... using virtual addresses").
struct AttachQueue {
  InstanceId instance;
  VirtAddr base;

  friend bool operator==(const AttachQueue&, const AttachQueue&) = default;
};

struct AttachQueueResponse {
  friend bool operator==(const AttachQueueResponse&, const AttachQueueResponse&) = default;
};

// Device -> bus: periodic liveness proof. A bus with watchdog monitoring
// enabled declares a device failed when its heartbeats stop (Sec. 2.2's
// liveness record, made continuous).
struct Heartbeat {
  friend bool operator==(const Heartbeat&, const Heartbeat&) = default;
};

// Client -> file service: create a file. The token's user becomes the owner
// when the service enforces access control.
struct FileCreate {
  std::string name;
  uint64_t auth_token = 0;

  friend bool operator==(const FileCreate&, const FileCreate&) = default;
};

// Client -> file service: delete a file (owner-only under access control).
struct FileDelete {
  std::string name;
  uint64_t auth_token = 0;

  friend bool operator==(const FileDelete&, const FileDelete&) = default;
};

// Success answer to FileCreate/FileDelete.
struct FileAdminResponse {
  friend bool operator==(const FileAdminResponse&, const FileAdminResponse&) = default;
};

// Client -> file service: list files (remote 'ls'; Sec. 4 maintenance).
struct FileList {
  uint64_t auth_token = 0;

  friend bool operator==(const FileList&, const FileList&) = default;
};

struct FileListResponse {
  std::vector<std::string> names;

  friend bool operator==(const FileListResponse&, const FileListResponse&) = default;
};

// Device -> memory controller: lease `count` regions of `bytes` each in one
// round trip (the grant-magazine refill path). Each region is placed and
// mapped exactly as `count` individual MemAllocRequests would be, but the
// controller issues a single combined MapDirective, so the whole batch costs
// one request/response pair on the management ring instead of `count`.
struct MemAllocBatchRequest {
  Pasid pasid;
  uint64_t bytes = 0;  // bytes per region, all regions equally sized
  uint32_t count = 0;
  Access access = Access::kReadWrite;

  friend bool operator==(const MemAllocBatchRequest&, const MemAllocBatchRequest&) = default;
};

// Memory controller -> device: the leased regions, one vaddr per region.
struct MemAllocBatchResponse {
  std::vector<VirtAddr> vaddrs;
  uint64_t bytes = 0;  // bytes per region
  // First physical frame per region, parallel to `vaddrs` (lease receipts;
  // see MemAllocResponse::first_frame). Empty from pre-lease encoders.
  std::vector<uint64_t> first_frames;

  friend bool operator==(const MemAllocBatchResponse&, const MemAllocBatchResponse&) = default;
};

// Device -> memory controller: return several equally sized regions in one
// round trip (the magazine drain path).
struct MemFreeBatchRequest {
  Pasid pasid;
  std::vector<VirtAddr> vaddrs;
  uint64_t bytes = 0;  // bytes per region

  friend bool operator==(const MemFreeBatchRequest&, const MemFreeBatchRequest&) = default;
};

struct MemFreeBatchResponse {
  friend bool operator==(const MemFreeBatchResponse&, const MemFreeBatchResponse&) = default;
};

// One registered memory-controller shard, as the bus's shard directory
// records it: where the shard sits and which slice of every application's
// virtual address space it owns. va_limit == 0 means "the whole space" (a
// lone unsharded controller).
struct ShardRecord {
  DeviceId device;
  uint32_t segment = 0;
  uint64_t va_base = 0;    // first byte of the shard's VA slab
  uint64_t va_limit = 0;   // one past the last byte of the slab
  uint64_t capacity_bytes = 0;
  // Registration epoch: bumped every time the shard's volatile tables are
  // rebuilt (restart) and on takeover by a successor. Directives carrying an
  // older epoch are fenced by the bus; clients treat an epoch change as "my
  // leases must be re-asserted".
  uint64_t epoch = 0;

  friend bool operator==(const ShardRecord&, const ShardRecord&) = default;
};

// Memory-controller shard -> bus (one-way): registers the VA slab and
// capacity this shard owns, so owner-addressed operations (grant / revoke /
// free sent to the bus) route to the shard whose table holds the address.
// Re-sent on every alive announce; registration is idempotent. A lone
// unsharded controller never sends this, keeping the single-controller wire
// exchange unchanged.
struct MemShardAnnounce {
  ShardRecord shard;

  friend bool operator==(const MemShardAnnounce&, const MemShardAnnounce&) = default;
};

// Device -> bus: asks for the registered memory shards. Rack-scale service
// discovery as one unicast round trip against the bus's directory instead of
// an O(devices) machine-wide broadcast.
struct ShardDirectoryRequest {
  friend bool operator==(const ShardDirectoryRequest&, const ShardDirectoryRequest&) = default;
};

struct ShardDirectoryResponse {
  std::vector<ShardRecord> shards;

  friend bool operator==(const ShardDirectoryResponse&, const ShardDirectoryResponse&) = default;
};

// One grant riding inside a lease record.
struct LeaseGrant {
  DeviceId grantee;
  Access access = Access::kReadWrite;

  friend bool operator==(const LeaseGrant&, const LeaseGrant&) = default;
};

// One allocation as its owner remembers it: the lease receipt handed back by
// the controller at alloc time, plus any grants the owner has made since.
struct LeaseRecord {
  Pasid pasid;
  VirtAddr vaddr;
  uint64_t bytes = 0;
  uint64_t first_frame = 0;
  Access access = Access::kReadWrite;
  std::vector<LeaseGrant> grants;

  friend bool operator==(const LeaseRecord&, const LeaseRecord&) = default;
};

// Owner device -> memory-controller shard: re-assert the leases this device
// holds inside the shard's VA slabs. Sent after the shard failed (restart
// rebuild) or was taken over by a successor (adoption). The controller
// re-admits each lease into its table — first re-assertion wins; conflicts
// and duplicates are rejected, not merged. No IOMMU reprogramming happens:
// the owner's and grantees' mappings survived (only the controller died).
struct LeaseReassertRequest {
  std::vector<LeaseRecord> leases;

  friend bool operator==(const LeaseReassertRequest&, const LeaseReassertRequest&) = default;
};

struct LeaseReassertResponse {
  uint32_t accepted = 0;
  uint32_t rejected = 0;
  uint64_t epoch = 0;  // the controller's current registration epoch

  friend bool operator==(const LeaseReassertResponse&, const LeaseReassertResponse&) = default;
};

using Payload =
    std::variant<AliveAnnounce, DiscoverRequest, DiscoverResponse, OpenRequest, OpenResponse,
                 CloseRequest, CloseResponse, MemAllocRequest, MemAllocResponse, MapDirective,
                 MemFreeRequest, MemFreeResponse, GrantRequest, GrantResponse, RevokeRequest,
                 RevokeResponse, Notify, ResourceFailed, DeviceFailed, ResetSignal, TeardownApp,
                 LoadImage, LoadImageResponse, AuthRequest, AuthResponse, ErrorResponse,
                 MapConfirm, AttachQueue, AttachQueueResponse, Heartbeat, FileCreate, FileDelete,
                 FileAdminResponse, FileList, FileListResponse, DevicePermanentlyFailed,
                 MemAllocBatchRequest, MemAllocBatchResponse, MemFreeBatchRequest,
                 MemFreeBatchResponse, MemShardAnnounce, ShardDirectoryRequest,
                 ShardDirectoryResponse, LeaseReassertRequest, LeaseReassertResponse>;

// Message kind; the numeric value doubles as the variant index of Payload and
// the on-wire type tag, so keep both in sync.
enum class MessageType : uint16_t {
  kAliveAnnounce = 0,
  kDiscoverRequest = 1,
  kDiscoverResponse = 2,
  kOpenRequest = 3,
  kOpenResponse = 4,
  kCloseRequest = 5,
  kCloseResponse = 6,
  kMemAllocRequest = 7,
  kMemAllocResponse = 8,
  kMapDirective = 9,
  kMemFreeRequest = 10,
  kMemFreeResponse = 11,
  kGrantRequest = 12,
  kGrantResponse = 13,
  kRevokeRequest = 14,
  kRevokeResponse = 15,
  kNotify = 16,
  kResourceFailed = 17,
  kDeviceFailed = 18,
  kResetSignal = 19,
  kTeardownApp = 20,
  kLoadImage = 21,
  kLoadImageResponse = 22,
  kAuthRequest = 23,
  kAuthResponse = 24,
  kErrorResponse = 25,
  kMapConfirm = 26,
  kAttachQueue = 27,
  kAttachQueueResponse = 28,
  kHeartbeat = 29,
  kFileCreate = 30,
  kFileDelete = 31,
  kFileAdminResponse = 32,
  kFileList = 33,
  kFileListResponse = 34,
  kDevicePermanentlyFailed = 35,
  kMemAllocBatchRequest = 36,
  kMemAllocBatchResponse = 37,
  kMemFreeBatchRequest = 38,
  kMemFreeBatchResponse = 39,
  kMemShardAnnounce = 40,
  kShardDirectoryRequest = 41,
  kShardDirectoryResponse = 42,
  kLeaseReassertRequest = 43,
  kLeaseReassertResponse = 44,
};

std::string_view MessageTypeName(MessageType type);

// The control-plane message envelope.
struct Message {
  DeviceId src;
  DeviceId dst;  // kBroadcastDevice for discovery, kBusDevice for bus-handled ops
  RequestId request_id;  // correlates responses with requests; Invalid() for one-way
  Payload payload;
  // Causal trace context (simulator metadata, never encoded on the wire —
  // carrying it does not change modeled message sizes or latencies). The
  // default initializer keeps four-field aggregate init at call sites legal
  // under -Wmissing-field-initializers.
  sim::TraceContext trace{};

  MessageType type() const { return static_cast<MessageType>(payload.index()); }

  // Typed accessors: abort if the payload kind is wrong (protocol violation).
  template <typename T>
  const T& As() const {
    return std::get<T>(payload);
  }
  template <typename T>
  bool Is() const {
    return std::holds_alternative<T>(payload);
  }
};

// Builds a request envelope.
Message MakeRequest(DeviceId src, DeviceId dst, RequestId id, Payload payload);
// Builds the response envelope for `request` with the given payload.
Message MakeResponse(const Message& request, DeviceId src, Payload payload);
// Builds an ErrorResponse envelope for `request`.
Message MakeError(const Message& request, DeviceId src, Status status);

}  // namespace lastcpu::proto

#endif  // SRC_PROTO_MESSAGE_H_
