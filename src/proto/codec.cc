#include "src/proto/codec.h"

#include <utility>

namespace lastcpu::proto {
namespace {

// Wire magic: "LC" + protocol version 1.
constexpr uint8_t kMagic0 = 0x4C;
constexpr uint8_t kMagic1 = 0x43;
constexpr uint8_t kVersion = 1;

void PutAccess(ByteWriter& w, Access access) { w.PutU8(static_cast<uint8_t>(access)); }

Result<Access> GetAccess(ByteReader& r) {
  auto v = r.GetU8();
  if (!v.ok()) {
    return v.status();
  }
  if (*v > 0x7) {
    return InvalidArgument("bad access bits");
  }
  return static_cast<Access>(*v);
}

void PutServiceDescriptor(ByteWriter& w, const ServiceDescriptor& d) {
  w.PutU32(d.provider.value());
  w.PutU8(static_cast<uint8_t>(d.type));
  w.PutString(d.name);
  w.PutU32(d.max_instances);
}

Result<ServiceDescriptor> GetServiceDescriptor(ByteReader& r) {
  ServiceDescriptor d;
  auto provider = r.GetU32();
  if (!provider.ok()) {
    return provider.status();
  }
  d.provider = DeviceId(*provider);
  auto type = r.GetU8();
  if (!type.ok()) {
    return type.status();
  }
  if (*type > static_cast<uint8_t>(ServiceType::kKeyValue)) {
    return InvalidArgument("bad service type");
  }
  d.type = static_cast<ServiceType>(*type);
  auto name = r.GetString();
  if (!name.ok()) {
    return name.status();
  }
  d.name = *std::move(name);
  auto max_instances = r.GetU32();
  if (!max_instances.ok()) {
    return max_instances.status();
  }
  d.max_instances = *max_instances;
  return d;
}

void PutMapEntries(ByteWriter& w, const std::vector<MapEntry>& entries) {
  w.PutU32(static_cast<uint32_t>(entries.size()));
  for (const MapEntry& e : entries) {
    w.PutU64(e.vpage);
    w.PutU64(e.pframe);
    PutAccess(w, e.access);
  }
}

void PutVirtAddrs(ByteWriter& w, const std::vector<VirtAddr>& vaddrs) {
  w.PutU32(static_cast<uint32_t>(vaddrs.size()));
  for (const VirtAddr& v : vaddrs) {
    w.PutU64(v.raw);
  }
}

Result<std::vector<VirtAddr>> GetVirtAddrs(ByteReader& r) {
  auto n = r.GetU32();
  if (!n.ok()) {
    return n.status();
  }
  // 8 bytes per address; reject counts the buffer cannot possibly hold.
  if (static_cast<size_t>(*n) * 8 > r.remaining()) {
    return InvalidArgument("vaddr count exceeds buffer");
  }
  std::vector<VirtAddr> vaddrs;
  vaddrs.reserve(*n);
  for (uint32_t i = 0; i < *n; ++i) {
    auto raw = r.GetU64();
    if (!raw.ok()) {
      return raw.status();
    }
    vaddrs.push_back(VirtAddr(*raw));
  }
  return vaddrs;
}

// Bytes one encoded ShardRecord occupies (used in count-sanity checks).
constexpr size_t kShardRecordBytes = 40;

Result<ShardRecord> GetShardRecord(ByteReader& r) {
  ShardRecord shard;
  auto device = r.GetU32();
  if (!device.ok()) {
    return device.status();
  }
  shard.device = DeviceId(*device);
  auto segment = r.GetU32();
  if (!segment.ok()) {
    return segment.status();
  }
  shard.segment = *segment;
  auto va_base = r.GetU64();
  if (!va_base.ok()) {
    return va_base.status();
  }
  shard.va_base = *va_base;
  auto va_limit = r.GetU64();
  if (!va_limit.ok()) {
    return va_limit.status();
  }
  shard.va_limit = *va_limit;
  auto capacity = r.GetU64();
  if (!capacity.ok()) {
    return capacity.status();
  }
  shard.capacity_bytes = *capacity;
  auto epoch = r.GetU64();
  if (!epoch.ok()) {
    return epoch.status();
  }
  shard.epoch = *epoch;
  return shard;
}

Result<std::vector<MapEntry>> GetMapEntries(ByteReader& r) {
  auto n = r.GetU32();
  if (!n.ok()) {
    return n.status();
  }
  // 17 bytes per entry; reject counts the buffer cannot possibly hold.
  if (static_cast<size_t>(*n) * 17 > r.remaining()) {
    return InvalidArgument("map entry count exceeds buffer");
  }
  std::vector<MapEntry> entries;
  entries.reserve(*n);
  for (uint32_t i = 0; i < *n; ++i) {
    MapEntry e;
    auto vpage = r.GetU64();
    if (!vpage.ok()) {
      return vpage.status();
    }
    e.vpage = *vpage;
    auto pframe = r.GetU64();
    if (!pframe.ok()) {
      return pframe.status();
    }
    e.pframe = *pframe;
    auto access = GetAccess(r);
    if (!access.ok()) {
      return access.status();
    }
    e.access = *access;
    entries.push_back(e);
  }
  return entries;
}

// --- per-payload encoders --------------------------------------------------

struct PayloadEncoder {
  ByteWriter& w;

  void operator()(const AliveAnnounce& p) {
    w.PutString(p.device_name);
    w.PutU32(static_cast<uint32_t>(p.services.size()));
    for (const auto& s : p.services) {
      PutServiceDescriptor(w, s);
    }
  }
  void operator()(const DiscoverRequest& p) {
    w.PutU8(static_cast<uint8_t>(p.type));
    w.PutString(p.resource);
  }
  void operator()(const DiscoverResponse& p) { PutServiceDescriptor(w, p.descriptor); }
  void operator()(const OpenRequest& p) {
    w.PutString(p.service_name);
    w.PutString(p.resource);
    w.PutU64(p.auth_token);
    w.PutU32(p.pasid.value());
  }
  void operator()(const OpenResponse& p) {
    w.PutU64(p.instance.value());
    w.PutU64(p.shared_bytes_required);
    w.PutU16(p.queue_depth);
  }
  void operator()(const CloseRequest& p) { w.PutU64(p.instance.value()); }
  void operator()(const CloseResponse&) {}
  void operator()(const MemAllocRequest& p) {
    w.PutU32(p.pasid.value());
    w.PutU64(p.bytes);
    w.PutU64(p.vaddr_hint.raw);
    PutAccess(w, p.access);
  }
  void operator()(const MemAllocResponse& p) {
    w.PutU64(p.vaddr.raw);
    w.PutU64(p.bytes);
    w.PutU64(p.first_frame);
  }
  void operator()(const MapDirective& p) {
    w.PutU32(p.target.value());
    w.PutU32(p.pasid.value());
    PutMapEntries(w, p.entries);
    w.PutU8(p.unmap ? 1 : 0);
    w.PutU64(p.epoch);
  }
  void operator()(const MemFreeRequest& p) {
    w.PutU32(p.pasid.value());
    w.PutU64(p.vaddr.raw);
    w.PutU64(p.bytes);
  }
  void operator()(const MemFreeResponse&) {}
  void operator()(const GrantRequest& p) {
    w.PutU32(p.pasid.value());
    w.PutU64(p.vaddr.raw);
    w.PutU64(p.bytes);
    w.PutU32(p.grantee.value());
    PutAccess(w, p.access);
  }
  void operator()(const GrantResponse&) {}
  void operator()(const RevokeRequest& p) {
    w.PutU32(p.pasid.value());
    w.PutU64(p.vaddr.raw);
    w.PutU64(p.bytes);
    w.PutU32(p.grantee.value());
  }
  void operator()(const RevokeResponse&) {}
  void operator()(const Notify& p) {
    w.PutU64(p.instance.value());
    w.PutU64(p.payload);
  }
  void operator()(const ResourceFailed& p) {
    w.PutString(p.service_name);
    w.PutU64(p.instance.value());
    w.PutString(p.reason);
  }
  void operator()(const DeviceFailed& p) { w.PutU32(p.device.value()); }
  void operator()(const ResetSignal&) {}
  void operator()(const TeardownApp& p) { w.PutU32(p.pasid.value()); }
  void operator()(const LoadImage& p) {
    w.PutString(p.app_name);
    w.PutBytes(p.image);
    w.PutU64(p.auth_token);
  }
  void operator()(const LoadImageResponse&) {}
  void operator()(const AuthRequest& p) {
    w.PutString(p.user);
    w.PutString(p.secret);
  }
  void operator()(const AuthResponse& p) {
    w.PutU64(p.token);
    w.PutU64(p.expiry_nanos);
  }
  void operator()(const ErrorResponse& p) {
    w.PutU8(static_cast<uint8_t>(p.code));
    w.PutString(p.message);
  }
  void operator()(const MapConfirm& p) {
    w.PutU32(p.target.value());
    w.PutU32(p.pasid.value());
  }
  void operator()(const AttachQueue& p) {
    w.PutU64(p.instance.value());
    w.PutU64(p.base.raw);
  }
  void operator()(const AttachQueueResponse&) {}
  void operator()(const Heartbeat&) {}
  void operator()(const FileCreate& p) {
    w.PutString(p.name);
    w.PutU64(p.auth_token);
  }
  void operator()(const FileDelete& p) {
    w.PutString(p.name);
    w.PutU64(p.auth_token);
  }
  void operator()(const FileAdminResponse&) {}
  void operator()(const FileList& p) { w.PutU64(p.auth_token); }
  void operator()(const FileListResponse& p) {
    w.PutU32(static_cast<uint32_t>(p.names.size()));
    for (const auto& name : p.names) {
      w.PutString(name);
    }
  }
  void operator()(const DevicePermanentlyFailed& p) {
    w.PutU32(p.device.value());
    w.PutString(p.reason);
  }
  void operator()(const MemAllocBatchRequest& p) {
    w.PutU32(p.pasid.value());
    w.PutU64(p.bytes);
    w.PutU32(p.count);
    PutAccess(w, p.access);
  }
  void operator()(const MemAllocBatchResponse& p) {
    PutVirtAddrs(w, p.vaddrs);
    w.PutU64(p.bytes);
    w.PutU32(static_cast<uint32_t>(p.first_frames.size()));
    for (uint64_t frame : p.first_frames) {
      w.PutU64(frame);
    }
  }
  void operator()(const MemFreeBatchRequest& p) {
    w.PutU32(p.pasid.value());
    PutVirtAddrs(w, p.vaddrs);
    w.PutU64(p.bytes);
  }
  void operator()(const MemFreeBatchResponse&) {}
  void operator()(const MemShardAnnounce& p) { PutShardRecord(w, p.shard); }
  void operator()(const ShardDirectoryRequest&) {}
  void operator()(const ShardDirectoryResponse& p) {
    w.PutU32(static_cast<uint32_t>(p.shards.size()));
    for (const auto& shard : p.shards) {
      PutShardRecord(w, shard);
    }
  }

  void operator()(const LeaseReassertRequest& p) {
    w.PutU32(static_cast<uint32_t>(p.leases.size()));
    for (const LeaseRecord& lease : p.leases) {
      w.PutU32(lease.pasid.value());
      w.PutU64(lease.vaddr.raw);
      w.PutU64(lease.bytes);
      w.PutU64(lease.first_frame);
      PutAccess(w, lease.access);
      w.PutU32(static_cast<uint32_t>(lease.grants.size()));
      for (const LeaseGrant& grant : lease.grants) {
        w.PutU32(grant.grantee.value());
        PutAccess(w, grant.access);
      }
    }
  }
  void operator()(const LeaseReassertResponse& p) {
    w.PutU32(p.accepted);
    w.PutU32(p.rejected);
    w.PutU64(p.epoch);
  }

  static void PutShardRecord(ByteWriter& w, const ShardRecord& shard) {
    w.PutU32(shard.device.value());
    w.PutU32(shard.segment);
    w.PutU64(shard.va_base);
    w.PutU64(shard.va_limit);
    w.PutU64(shard.capacity_bytes);
    w.PutU64(shard.epoch);
  }
};

// --- per-payload decoders --------------------------------------------------
//
// Each returns Result<Payload>. A macro would obscure the bounds checks, so
// these are spelled out; the round-trip tests cover every branch.

#define LASTCPU_READ(var, expr)  \
  auto var = (expr);             \
  if (!var.ok()) {               \
    return var.status();         \
  }

Result<Payload> DecodePayload(MessageType type, ByteReader& r) {
  switch (type) {
    case MessageType::kAliveAnnounce: {
      AliveAnnounce p;
      LASTCPU_READ(name, r.GetString());
      p.device_name = *std::move(name);
      LASTCPU_READ(n, r.GetU32());
      if (static_cast<size_t>(*n) * 10 > r.remaining()) {
        return InvalidArgument("service count exceeds buffer");
      }
      for (uint32_t i = 0; i < *n; ++i) {
        LASTCPU_READ(d, GetServiceDescriptor(r));
        p.services.push_back(*std::move(d));
      }
      return Payload(std::move(p));
    }
    case MessageType::kDiscoverRequest: {
      DiscoverRequest p;
      LASTCPU_READ(t, r.GetU8());
      if (*t > static_cast<uint8_t>(ServiceType::kKeyValue)) {
        return InvalidArgument("bad service type");
      }
      p.type = static_cast<ServiceType>(*t);
      LASTCPU_READ(resource, r.GetString());
      p.resource = *std::move(resource);
      return Payload(std::move(p));
    }
    case MessageType::kDiscoverResponse: {
      LASTCPU_READ(d, GetServiceDescriptor(r));
      return Payload(DiscoverResponse{*std::move(d)});
    }
    case MessageType::kOpenRequest: {
      OpenRequest p;
      LASTCPU_READ(service, r.GetString());
      p.service_name = *std::move(service);
      LASTCPU_READ(resource, r.GetString());
      p.resource = *std::move(resource);
      LASTCPU_READ(token, r.GetU64());
      p.auth_token = *token;
      LASTCPU_READ(pasid, r.GetU32());
      p.pasid = Pasid(*pasid);
      return Payload(std::move(p));
    }
    case MessageType::kOpenResponse: {
      OpenResponse p;
      LASTCPU_READ(instance, r.GetU64());
      p.instance = InstanceId(*instance);
      LASTCPU_READ(bytes, r.GetU64());
      p.shared_bytes_required = *bytes;
      LASTCPU_READ(depth, r.GetU16());
      p.queue_depth = *depth;
      return Payload(p);
    }
    case MessageType::kCloseRequest: {
      LASTCPU_READ(instance, r.GetU64());
      return Payload(CloseRequest{InstanceId(*instance)});
    }
    case MessageType::kCloseResponse:
      return Payload(CloseResponse{});
    case MessageType::kMemAllocRequest: {
      MemAllocRequest p;
      LASTCPU_READ(pasid, r.GetU32());
      p.pasid = Pasid(*pasid);
      LASTCPU_READ(bytes, r.GetU64());
      p.bytes = *bytes;
      LASTCPU_READ(hint, r.GetU64());
      p.vaddr_hint = VirtAddr(*hint);
      LASTCPU_READ(access, GetAccess(r));
      p.access = *access;
      return Payload(p);
    }
    case MessageType::kMemAllocResponse: {
      MemAllocResponse p;
      LASTCPU_READ(vaddr, r.GetU64());
      p.vaddr = VirtAddr(*vaddr);
      LASTCPU_READ(bytes, r.GetU64());
      p.bytes = *bytes;
      LASTCPU_READ(frame, r.GetU64());
      p.first_frame = *frame;
      return Payload(p);
    }
    case MessageType::kMapDirective: {
      MapDirective p;
      LASTCPU_READ(target, r.GetU32());
      p.target = DeviceId(*target);
      LASTCPU_READ(pasid, r.GetU32());
      p.pasid = Pasid(*pasid);
      LASTCPU_READ(entries, GetMapEntries(r));
      p.entries = *std::move(entries);
      LASTCPU_READ(unmap, r.GetU8());
      p.unmap = (*unmap != 0);
      LASTCPU_READ(epoch, r.GetU64());
      p.epoch = *epoch;
      return Payload(std::move(p));
    }
    case MessageType::kMemFreeRequest: {
      MemFreeRequest p;
      LASTCPU_READ(pasid, r.GetU32());
      p.pasid = Pasid(*pasid);
      LASTCPU_READ(vaddr, r.GetU64());
      p.vaddr = VirtAddr(*vaddr);
      LASTCPU_READ(bytes, r.GetU64());
      p.bytes = *bytes;
      return Payload(p);
    }
    case MessageType::kMemFreeResponse:
      return Payload(MemFreeResponse{});
    case MessageType::kGrantRequest: {
      GrantRequest p;
      LASTCPU_READ(pasid, r.GetU32());
      p.pasid = Pasid(*pasid);
      LASTCPU_READ(vaddr, r.GetU64());
      p.vaddr = VirtAddr(*vaddr);
      LASTCPU_READ(bytes, r.GetU64());
      p.bytes = *bytes;
      LASTCPU_READ(grantee, r.GetU32());
      p.grantee = DeviceId(*grantee);
      LASTCPU_READ(access, GetAccess(r));
      p.access = *access;
      return Payload(p);
    }
    case MessageType::kGrantResponse:
      return Payload(GrantResponse{});
    case MessageType::kRevokeRequest: {
      RevokeRequest p;
      LASTCPU_READ(pasid, r.GetU32());
      p.pasid = Pasid(*pasid);
      LASTCPU_READ(vaddr, r.GetU64());
      p.vaddr = VirtAddr(*vaddr);
      LASTCPU_READ(bytes, r.GetU64());
      p.bytes = *bytes;
      LASTCPU_READ(grantee, r.GetU32());
      p.grantee = DeviceId(*grantee);
      return Payload(p);
    }
    case MessageType::kRevokeResponse:
      return Payload(RevokeResponse{});
    case MessageType::kNotify: {
      Notify p;
      LASTCPU_READ(instance, r.GetU64());
      p.instance = InstanceId(*instance);
      LASTCPU_READ(payload, r.GetU64());
      p.payload = *payload;
      return Payload(p);
    }
    case MessageType::kResourceFailed: {
      ResourceFailed p;
      LASTCPU_READ(service, r.GetString());
      p.service_name = *std::move(service);
      LASTCPU_READ(instance, r.GetU64());
      p.instance = InstanceId(*instance);
      LASTCPU_READ(reason, r.GetString());
      p.reason = *std::move(reason);
      return Payload(std::move(p));
    }
    case MessageType::kDeviceFailed: {
      LASTCPU_READ(device, r.GetU32());
      return Payload(DeviceFailed{DeviceId(*device)});
    }
    case MessageType::kResetSignal:
      return Payload(ResetSignal{});
    case MessageType::kTeardownApp: {
      LASTCPU_READ(pasid, r.GetU32());
      return Payload(TeardownApp{Pasid(*pasid)});
    }
    case MessageType::kLoadImage: {
      LoadImage p;
      LASTCPU_READ(name, r.GetString());
      p.app_name = *std::move(name);
      LASTCPU_READ(image, r.GetBytes());
      p.image = *std::move(image);
      LASTCPU_READ(token, r.GetU64());
      p.auth_token = *token;
      return Payload(std::move(p));
    }
    case MessageType::kLoadImageResponse:
      return Payload(LoadImageResponse{});
    case MessageType::kAuthRequest: {
      AuthRequest p;
      LASTCPU_READ(user, r.GetString());
      p.user = *std::move(user);
      LASTCPU_READ(secret, r.GetString());
      p.secret = *std::move(secret);
      return Payload(std::move(p));
    }
    case MessageType::kAuthResponse: {
      AuthResponse p;
      LASTCPU_READ(token, r.GetU64());
      p.token = *token;
      LASTCPU_READ(expiry, r.GetU64());
      p.expiry_nanos = *expiry;
      return Payload(p);
    }
    case MessageType::kErrorResponse: {
      ErrorResponse p;
      LASTCPU_READ(code, r.GetU8());
      if (*code > static_cast<uint8_t>(StatusCode::kPartitioned)) {
        return InvalidArgument("bad status code");
      }
      p.code = static_cast<StatusCode>(*code);
      LASTCPU_READ(message, r.GetString());
      p.message = *std::move(message);
      return Payload(std::move(p));
    }
    case MessageType::kMapConfirm: {
      MapConfirm p;
      LASTCPU_READ(target, r.GetU32());
      p.target = DeviceId(*target);
      LASTCPU_READ(pasid, r.GetU32());
      p.pasid = Pasid(*pasid);
      return Payload(p);
    }
    case MessageType::kAttachQueue: {
      AttachQueue p;
      LASTCPU_READ(instance, r.GetU64());
      p.instance = InstanceId(*instance);
      LASTCPU_READ(base, r.GetU64());
      p.base = VirtAddr(*base);
      return Payload(p);
    }
    case MessageType::kAttachQueueResponse:
      return Payload(AttachQueueResponse{});
    case MessageType::kHeartbeat:
      return Payload(Heartbeat{});
    case MessageType::kFileCreate: {
      FileCreate p;
      LASTCPU_READ(name, r.GetString());
      p.name = *std::move(name);
      LASTCPU_READ(token, r.GetU64());
      p.auth_token = *token;
      return Payload(std::move(p));
    }
    case MessageType::kFileDelete: {
      FileDelete p;
      LASTCPU_READ(name, r.GetString());
      p.name = *std::move(name);
      LASTCPU_READ(token, r.GetU64());
      p.auth_token = *token;
      return Payload(std::move(p));
    }
    case MessageType::kFileAdminResponse:
      return Payload(FileAdminResponse{});
    case MessageType::kFileList: {
      FileList p;
      LASTCPU_READ(token, r.GetU64());
      p.auth_token = *token;
      return Payload(p);
    }
    case MessageType::kFileListResponse: {
      FileListResponse p;
      LASTCPU_READ(n, r.GetU32());
      if (static_cast<size_t>(*n) * 4 > r.remaining()) {
        return InvalidArgument("name count exceeds buffer");
      }
      for (uint32_t i = 0; i < *n; ++i) {
        LASTCPU_READ(name, r.GetString());
        p.names.push_back(*std::move(name));
      }
      return Payload(std::move(p));
    }
    case MessageType::kDevicePermanentlyFailed: {
      DevicePermanentlyFailed p;
      LASTCPU_READ(device, r.GetU32());
      p.device = DeviceId(*device);
      LASTCPU_READ(reason, r.GetString());
      p.reason = *std::move(reason);
      return Payload(std::move(p));
    }
    case MessageType::kMemAllocBatchRequest: {
      MemAllocBatchRequest p;
      LASTCPU_READ(pasid, r.GetU32());
      p.pasid = Pasid(*pasid);
      LASTCPU_READ(bytes, r.GetU64());
      p.bytes = *bytes;
      LASTCPU_READ(count, r.GetU32());
      p.count = *count;
      LASTCPU_READ(access, GetAccess(r));
      p.access = *access;
      return Payload(p);
    }
    case MessageType::kMemAllocBatchResponse: {
      MemAllocBatchResponse p;
      LASTCPU_READ(vaddrs, GetVirtAddrs(r));
      p.vaddrs = *std::move(vaddrs);
      LASTCPU_READ(bytes, r.GetU64());
      p.bytes = *bytes;
      LASTCPU_READ(nframes, r.GetU32());
      if (static_cast<size_t>(*nframes) * 8 > r.remaining()) {
        return InvalidArgument("frame count exceeds buffer");
      }
      p.first_frames.reserve(*nframes);
      for (uint32_t i = 0; i < *nframes; ++i) {
        LASTCPU_READ(frame, r.GetU64());
        p.first_frames.push_back(*frame);
      }
      return Payload(std::move(p));
    }
    case MessageType::kMemFreeBatchRequest: {
      MemFreeBatchRequest p;
      LASTCPU_READ(pasid, r.GetU32());
      p.pasid = Pasid(*pasid);
      LASTCPU_READ(vaddrs, GetVirtAddrs(r));
      p.vaddrs = *std::move(vaddrs);
      LASTCPU_READ(bytes, r.GetU64());
      p.bytes = *bytes;
      return Payload(std::move(p));
    }
    case MessageType::kMemFreeBatchResponse:
      return Payload(MemFreeBatchResponse{});
    case MessageType::kMemShardAnnounce: {
      MemShardAnnounce p;
      LASTCPU_READ(shard, GetShardRecord(r));
      p.shard = *shard;
      return Payload(p);
    }
    case MessageType::kShardDirectoryRequest:
      return Payload(ShardDirectoryRequest{});
    case MessageType::kShardDirectoryResponse: {
      ShardDirectoryResponse p;
      LASTCPU_READ(n, r.GetU32());
      if (static_cast<size_t>(*n) * kShardRecordBytes > r.remaining()) {
        return InvalidArgument("shard count exceeds buffer");
      }
      for (uint32_t i = 0; i < *n; ++i) {
        LASTCPU_READ(shard, GetShardRecord(r));
        p.shards.push_back(*shard);
      }
      return Payload(std::move(p));
    }
    case MessageType::kLeaseReassertRequest: {
      LeaseReassertRequest p;
      LASTCPU_READ(n, r.GetU32());
      // 33 bytes per lease before its (possibly empty) grant list.
      if (static_cast<size_t>(*n) * 33 > r.remaining()) {
        return InvalidArgument("lease count exceeds buffer");
      }
      p.leases.reserve(*n);
      for (uint32_t i = 0; i < *n; ++i) {
        LeaseRecord lease;
        LASTCPU_READ(pasid, r.GetU32());
        lease.pasid = Pasid(*pasid);
        LASTCPU_READ(vaddr, r.GetU64());
        lease.vaddr = VirtAddr(*vaddr);
        LASTCPU_READ(bytes, r.GetU64());
        lease.bytes = *bytes;
        LASTCPU_READ(frame, r.GetU64());
        lease.first_frame = *frame;
        LASTCPU_READ(access, GetAccess(r));
        lease.access = *access;
        LASTCPU_READ(ngrants, r.GetU32());
        if (static_cast<size_t>(*ngrants) * 5 > r.remaining()) {
          return InvalidArgument("grant count exceeds buffer");
        }
        lease.grants.reserve(*ngrants);
        for (uint32_t j = 0; j < *ngrants; ++j) {
          LeaseGrant grant;
          LASTCPU_READ(grantee, r.GetU32());
          grant.grantee = DeviceId(*grantee);
          LASTCPU_READ(gaccess, GetAccess(r));
          grant.access = *gaccess;
          lease.grants.push_back(grant);
        }
        p.leases.push_back(std::move(lease));
      }
      return Payload(std::move(p));
    }
    case MessageType::kLeaseReassertResponse: {
      LeaseReassertResponse p;
      LASTCPU_READ(accepted, r.GetU32());
      p.accepted = *accepted;
      LASTCPU_READ(rejected, r.GetU32());
      p.rejected = *rejected;
      LASTCPU_READ(epoch, r.GetU64());
      p.epoch = *epoch;
      return Payload(p);
    }
  }
  return InvalidArgument("unknown message type");
}

#undef LASTCPU_READ

}  // namespace

void ByteWriter::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::PutU32(uint32_t v) {
  PutU16(static_cast<uint16_t>(v));
  PutU16(static_cast<uint16_t>(v >> 16));
}

void ByteWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void ByteWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void ByteWriter::PutBytes(std::span<const uint8_t> data) {
  PutU32(static_cast<uint32_t>(data.size()));
  bytes_.insert(bytes_.end(), data.begin(), data.end());
}

Result<uint8_t> ByteReader::GetU8() {
  if (pos_ >= data_.size()) {
    return InvalidArgument("truncated message");
  }
  return data_[pos_++];
}

Result<uint16_t> ByteReader::GetU16() {
  if (remaining() < 2) {
    return InvalidArgument("truncated message");
  }
  uint16_t v = static_cast<uint16_t>(data_[pos_]) | static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> ByteReader::GetU32() {
  if (remaining() < 4) {
    return InvalidArgument("truncated message");
  }
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | data_[pos_ + static_cast<size_t>(i)];
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::GetU64() {
  if (remaining() < 8) {
    return InvalidArgument("truncated message");
  }
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | data_[pos_ + static_cast<size_t>(i)];
  }
  pos_ += 8;
  return v;
}

Result<std::string> ByteReader::GetString() {
  auto len = GetU32();
  if (!len.ok()) {
    return len.status();
  }
  if (remaining() < *len) {
    return InvalidArgument("truncated string");
  }
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), *len);
  pos_ += *len;
  return s;
}

Result<std::vector<uint8_t>> ByteReader::GetBytes() {
  auto len = GetU32();
  if (!len.ok()) {
    return len.status();
  }
  if (remaining() < *len) {
    return InvalidArgument("truncated bytes");
  }
  std::vector<uint8_t> out(data_.begin() + static_cast<ptrdiff_t>(pos_),
                           data_.begin() + static_cast<ptrdiff_t>(pos_ + *len));
  pos_ += *len;
  return out;
}

std::vector<uint8_t> EncodeMessage(const Message& message) {
  ByteWriter payload_writer;
  std::visit(PayloadEncoder{payload_writer}, message.payload);

  ByteWriter w;
  w.PutU8(kMagic0);
  w.PutU8(kMagic1);
  w.PutU8(kVersion);
  w.PutU16(static_cast<uint16_t>(message.type()));
  w.PutU32(message.src.value());
  w.PutU32(message.dst.value());
  w.PutU64(message.request_id.value());
  w.PutBytes(payload_writer.bytes());
  return w.Take();
}

Result<Message> DecodeMessage(std::span<const uint8_t> wire) {
  ByteReader r(wire);
  auto m0 = r.GetU8();
  auto m1 = r.GetU8();
  auto version = r.GetU8();
  if (!m0.ok() || !m1.ok() || !version.ok()) {
    return InvalidArgument("truncated header");
  }
  if (*m0 != kMagic0 || *m1 != kMagic1) {
    return InvalidArgument("bad magic");
  }
  if (*version != kVersion) {
    return InvalidArgument("unsupported protocol version");
  }
  auto type = r.GetU16();
  if (!type.ok()) {
    return type.status();
  }
  if (*type > static_cast<uint16_t>(MessageType::kLeaseReassertResponse)) {
    return InvalidArgument("unknown message type");
  }
  auto src = r.GetU32();
  if (!src.ok()) {
    return src.status();
  }
  auto dst = r.GetU32();
  if (!dst.ok()) {
    return dst.status();
  }
  auto request_id = r.GetU64();
  if (!request_id.ok()) {
    return request_id.status();
  }
  auto payload_bytes = r.GetBytes();
  if (!payload_bytes.ok()) {
    return payload_bytes.status();
  }
  if (!r.AtEnd()) {
    return InvalidArgument("trailing bytes after message");
  }
  ByteReader pr(*payload_bytes);
  auto payload = DecodePayload(static_cast<MessageType>(*type), pr);
  if (!payload.ok()) {
    return payload.status();
  }
  if (!pr.AtEnd()) {
    return InvalidArgument("trailing bytes after payload");
  }
  Message message;
  message.src = DeviceId(*src);
  message.dst = DeviceId(*dst);
  message.request_id = RequestId(*request_id);
  message.payload = *std::move(payload);
  return message;
}

size_t EncodedSize(const Message& message) {
  // Header: magic(2) + version(1) + type(2) + src(4) + dst(4) + reqid(8) +
  // payload length prefix(4).
  //
  // The bus calls this once per message just to model wire latency; reusing
  // one scratch writer keeps the hot path allocation-free after warmup (the
  // simulation is single-threaded, thread_local is belt-and-braces).
  static thread_local ByteWriter payload_writer;
  payload_writer.Clear();
  std::visit(PayloadEncoder{payload_writer}, message.payload);
  return 25 + payload_writer.size();
}

}  // namespace lastcpu::proto
