#include "src/proto/message.h"

#include <utility>

namespace lastcpu::proto {

std::string_view ServiceTypeName(ServiceType type) {
  switch (type) {
    case ServiceType::kMemory:
      return "memory";
    case ServiceType::kFile:
      return "file";
    case ServiceType::kBlock:
      return "block";
    case ServiceType::kNetwork:
      return "network";
    case ServiceType::kCompute:
      return "compute";
    case ServiceType::kLoader:
      return "loader";
    case ServiceType::kAuth:
      return "auth";
    case ServiceType::kLog:
      return "log";
    case ServiceType::kKeyValue:
      return "key-value";
  }
  return "unknown";
}

std::string_view MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kAliveAnnounce:
      return "AliveAnnounce";
    case MessageType::kDiscoverRequest:
      return "DiscoverRequest";
    case MessageType::kDiscoverResponse:
      return "DiscoverResponse";
    case MessageType::kOpenRequest:
      return "OpenRequest";
    case MessageType::kOpenResponse:
      return "OpenResponse";
    case MessageType::kCloseRequest:
      return "CloseRequest";
    case MessageType::kCloseResponse:
      return "CloseResponse";
    case MessageType::kMemAllocRequest:
      return "MemAllocRequest";
    case MessageType::kMemAllocResponse:
      return "MemAllocResponse";
    case MessageType::kMapDirective:
      return "MapDirective";
    case MessageType::kMemFreeRequest:
      return "MemFreeRequest";
    case MessageType::kMemFreeResponse:
      return "MemFreeResponse";
    case MessageType::kGrantRequest:
      return "GrantRequest";
    case MessageType::kGrantResponse:
      return "GrantResponse";
    case MessageType::kRevokeRequest:
      return "RevokeRequest";
    case MessageType::kRevokeResponse:
      return "RevokeResponse";
    case MessageType::kNotify:
      return "Notify";
    case MessageType::kResourceFailed:
      return "ResourceFailed";
    case MessageType::kDeviceFailed:
      return "DeviceFailed";
    case MessageType::kResetSignal:
      return "ResetSignal";
    case MessageType::kTeardownApp:
      return "TeardownApp";
    case MessageType::kLoadImage:
      return "LoadImage";
    case MessageType::kLoadImageResponse:
      return "LoadImageResponse";
    case MessageType::kAuthRequest:
      return "AuthRequest";
    case MessageType::kAuthResponse:
      return "AuthResponse";
    case MessageType::kErrorResponse:
      return "ErrorResponse";
    case MessageType::kMapConfirm:
      return "MapConfirm";
    case MessageType::kAttachQueue:
      return "AttachQueue";
    case MessageType::kAttachQueueResponse:
      return "AttachQueueResponse";
    case MessageType::kHeartbeat:
      return "Heartbeat";
    case MessageType::kFileCreate:
      return "FileCreate";
    case MessageType::kFileDelete:
      return "FileDelete";
    case MessageType::kFileAdminResponse:
      return "FileAdminResponse";
    case MessageType::kFileList:
      return "FileList";
    case MessageType::kFileListResponse:
      return "FileListResponse";
    case MessageType::kDevicePermanentlyFailed:
      return "DevicePermanentlyFailed";
    case MessageType::kMemAllocBatchRequest:
      return "MemAllocBatchRequest";
    case MessageType::kMemAllocBatchResponse:
      return "MemAllocBatchResponse";
    case MessageType::kMemFreeBatchRequest:
      return "MemFreeBatchRequest";
    case MessageType::kMemFreeBatchResponse:
      return "MemFreeBatchResponse";
    case MessageType::kMemShardAnnounce:
      return "MemShardAnnounce";
    case MessageType::kShardDirectoryRequest:
      return "ShardDirectoryRequest";
    case MessageType::kShardDirectoryResponse:
      return "ShardDirectoryResponse";
    case MessageType::kLeaseReassertRequest:
      return "LeaseReassertRequest";
    case MessageType::kLeaseReassertResponse:
      return "LeaseReassertResponse";
  }
  return "Unknown";
}

Message MakeRequest(DeviceId src, DeviceId dst, RequestId id, Payload payload) {
  return Message{src, dst, id, std::move(payload)};
}

Message MakeResponse(const Message& request, DeviceId src, Payload payload) {
  return Message{src, request.src, request.request_id, std::move(payload)};
}

Message MakeError(const Message& request, DeviceId src, Status status) {
  return Message{src, request.src, request.request_id,
                 ErrorResponse{status.code(), status.message()}};
}

}  // namespace lastcpu::proto
