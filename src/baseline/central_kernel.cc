#include "src/baseline/central_kernel.h"

#include <algorithm>
#include <utility>

#include "src/base/check.h"

namespace lastcpu::baseline {

CentralKernel::CentralKernel(sim::Simulator* simulator, mem::PhysicalMemory* memory,
                             CentralKernelConfig config, sim::TraceLog* trace)
    : simulator_(simulator),
      allocator_(memory->num_frames()),
      memory_(memory),
      config_(config),
      tracer_(trace, simulator, "kernel"),
      core_busy_until_(config.cores) {
  LASTCPU_CHECK(simulator != nullptr && memory != nullptr, "kernel needs simulator and memory");
  LASTCPU_CHECK(config.cores > 0, "kernel needs at least one core");
}

void CentralKernel::RegisterDevice(DeviceId device, iommu::Iommu* iommu) {
  LASTCPU_CHECK(iommu != nullptr, "registering device without IOMMU");
  devices_[device] = iommu;
}

iommu::Iommu* CentralKernel::FindIommu(DeviceId device) {
  auto it = devices_.find(device);
  return it == devices_.end() ? nullptr : it->second;
}

sim::Duration CentralKernel::CrossSegmentExtra(DeviceId requester) {
  if (config_.cross_segment_interrupt_extra == sim::Duration::Zero() ||
      IsReservedDevice(requester) || SegmentOf(requester) == 0) {
    return sim::Duration::Zero();
  }
  stats_.GetCounter("cross_segment_interrupts").Increment();
  return config_.cross_segment_interrupt_extra;
}

void CentralKernel::RunOnCpu(sim::Duration service, std::function<void()> handler,
                             sim::SpanId parent, sim::Duration interrupt_extra) {
  // The device raises an interrupt; after delivery the op joins the run
  // queue of the least-loaded core.
  sim::SimTime arrival = simulator_->Now() + config_.interrupt_cost + interrupt_extra;
  auto core = std::min_element(core_busy_until_.begin(), core_busy_until_.end());
  sim::SimTime start = std::max(arrival, *core);
  sim::SimTime done = start + config_.syscall_entry + service;
  *core = done;
  // Child span: interrupt delivery + run-queue wait + handler occupancy.
  sim::SpanId cpu_span = tracer_.BeginSpan("on-cpu", parent);
  stats_.GetHistogram("queue_wait").Record(start - arrival);
  op_latency_.Record(done - simulator_->Now());
  simulator_->ScheduleAt(done, [this, cpu_span, parent, handler = std::move(handler)] {
    ++ops_completed_;
    handler();
    tracer_.EndSpan(cpu_span);
    tracer_.EndSpan(parent);
  });
}

void CentralKernel::SimulateKernelFailover(sim::Duration blackout, Callback<void> done) {
  // Panic: every core stops serving. Queued and newly arriving operations
  // wait out the reboot in the run queue (RunOnCpu naturally serializes
  // behind the pushed-out core clocks).
  sim::SimTime up_again = simulator_->Now() + blackout;
  for (sim::SimTime& core : core_busy_until_) {
    core = std::max(core, up_again);
  }
  stats_.GetCounter("kernel_restarts").Increment();
  // Warm reboot: the tables survive in kernel memory, but the kernel re-walks
  // every live entry (consistency check against the IOMMU state it also owns)
  // before admitting syscalls — one mm_service each, serial on the boot core.
  uint64_t entries = 0;
  for (const auto& [pasid, table] : tables_) {
    entries += table.size();
  }
  stats_.GetCounter("kernel_rebuild_entries").Increment(entries);
  sim::Duration rebuild = config_.syscall_entry + config_.mm_service * entries;
  core_busy_until_.front() = up_again + rebuild;
  simulator_->ScheduleAt(up_again + rebuild,
                         [done = std::move(done)]() mutable { done(OkStatus()); });
}

bool CentralKernel::Overlaps(const Table& table, uint64_t vpage, uint64_t pages) {
  auto next = table.lower_bound(vpage);
  if (next != table.end() && next->first < vpage + pages) {
    return true;
  }
  if (next != table.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second.pages > vpage) {
      return true;
    }
  }
  return false;
}

CentralKernel::Allocation* CentralKernel::FindCovering(Pasid pasid, VirtAddr vaddr,
                                                       uint64_t bytes) {
  auto table_it = tables_.find(pasid);
  if (table_it == tables_.end()) {
    return nullptr;
  }
  auto next = table_it->second.upper_bound(vaddr.page());
  if (next == table_it->second.begin()) {
    return nullptr;
  }
  auto it = std::prev(next);
  uint64_t want_end = PageCeil(vaddr.raw + bytes) >> kPageShift;
  if (vaddr.page() >= it->first && want_end <= it->first + it->second.pages) {
    return &it->second;
  }
  return nullptr;
}

Status CentralKernel::MapRange(DeviceId device, Pasid pasid, uint64_t vpage, uint64_t pframe,
                               uint64_t pages, Access access) {
  iommu::Iommu* iommu = FindIommu(device);
  if (iommu == nullptr) {
    return NotFound("unknown device");
  }
  iommu::ProgrammingKey key;  // the kernel is the privileged mapper here
  for (uint64_t i = 0; i < pages; ++i) {
    Status mapped = iommu->Map(key, pasid, vpage + i, pframe + i, access);
    if (!mapped.ok()) {
      return mapped;
    }
  }
  return OkStatus();
}

void CentralKernel::UnmapRange(DeviceId device, Pasid pasid, uint64_t vpage, uint64_t pages) {
  iommu::Iommu* iommu = FindIommu(device);
  if (iommu == nullptr) {
    return;
  }
  iommu::ProgrammingKey key;
  for (uint64_t i = 0; i < pages; ++i) {
    (void)iommu->Unmap(key, pasid, vpage + i);
  }
}

uint64_t CentralKernel::AllocatedBytes(Pasid pasid) const {
  auto it = bytes_allocated_.find(pasid);
  return it == bytes_allocated_.end() ? 0 : it->second;
}

void CentralKernel::AllocMemory(DeviceId requester, Pasid pasid, uint64_t bytes,
                                Callback<VirtAddr> done) {
  LASTCPU_CHECK(done != nullptr, "alloc without callback");
  uint64_t pages = PagesForBytes(bytes);
  sim::Duration service = config_.mm_service + config_.per_page_cost * pages;
  sim::SpanId span = BeginOpSpan("Alloc", "pasid=" + std::to_string(pasid.value()) +
                                              " bytes=" + std::to_string(bytes));
  RunOnCpu(service, [this, requester, pasid, bytes, pages, done = std::move(done)] {
    if (bytes == 0) {
      done(InvalidArgument("zero-byte allocation"));
      return;
    }
    Table& table = tables_[pasid];
    auto [bump, inserted] = next_vpage_.try_emplace(pasid, config_.va_bump_base >> kPageShift);
    (void)inserted;
    uint64_t vpage = bump->second;
    while (Overlaps(table, vpage, pages)) {
      vpage += pages;
    }
    auto frame = allocator_.Allocate(pages);
    if (!frame.ok()) {
      done(frame.status());
      return;
    }
    bump->second = vpage + pages;
    for (uint64_t i = 0; i < pages; ++i) {
      memory_->ZeroFrame(*frame + i);
    }
    Status mapped = MapRange(requester, pasid, vpage, *frame, pages, Access::kReadWrite);
    if (!mapped.ok()) {
      LASTCPU_CHECK(allocator_.Free(*frame, pages).ok(), "allocator out of sync");
      done(mapped);
      return;
    }
    Allocation allocation;
    allocation.vaddr = VirtAddr(vpage << kPageShift);
    allocation.pages = pages;
    allocation.first_frame = *frame;
    allocation.owner = requester;
    table.emplace(vpage, allocation);
    bytes_allocated_[pasid] += pages * kPageSize;
    stats_.GetCounter("allocations").Increment();
    done(allocation.vaddr);
  }, span, CrossSegmentExtra(requester));
}

void CentralKernel::FreeMemory(DeviceId requester, Pasid pasid, VirtAddr vaddr, uint64_t bytes,
                               Callback<void> done) {
  LASTCPU_CHECK(done != nullptr, "free without callback");
  uint64_t pages = PagesForBytes(bytes);
  sim::Duration service = config_.mm_service + config_.per_page_cost * pages;
  sim::SpanId span = BeginOpSpan("Free", "pasid=" + std::to_string(pasid.value()) +
                                             " bytes=" + std::to_string(bytes));
  RunOnCpu(service, [this, requester, pasid, vaddr, pages, done = std::move(done)] {
    auto table_it = tables_.find(pasid);
    if (table_it == tables_.end()) {
      done(NotFound("no allocations for PASID"));
      return;
    }
    auto it = table_it->second.find(vaddr.page());
    if (it == table_it->second.end() || it->second.pages != pages) {
      done(NotFound("no matching allocation"));
      return;
    }
    if (it->second.owner != requester) {
      done(PermissionDenied("only the owner may free an allocation"));
      return;
    }
    UnmapRange(it->second.owner, pasid, it->first, pages);
    for (const auto& [grantee, access] : it->second.grants) {
      UnmapRange(grantee, pasid, it->first, pages);
    }
    LASTCPU_CHECK(allocator_.Free(it->second.first_frame, pages).ok(), "allocator out of sync");
    bytes_allocated_[pasid] -= pages * kPageSize;
    table_it->second.erase(it);
    stats_.GetCounter("frees").Increment();
    done(OkStatus());
  }, span, CrossSegmentExtra(requester));
}

void CentralKernel::AllocMemoryBatch(DeviceId requester, Pasid pasid, uint64_t bytes,
                                     uint32_t count, Callback<std::vector<VirtAddr>> done) {
  LASTCPU_CHECK(done != nullptr, "batch alloc without callback");
  uint64_t pages = PagesForBytes(bytes);
  // One interrupt + one syscall entry for the whole batch; the handler still
  // does per-allocation work.
  sim::Duration service = (config_.mm_service + config_.per_page_cost * pages) * count;
  sim::SpanId span = BeginOpSpan("AllocBatch", "pasid=" + std::to_string(pasid.value()) +
                                                   " count=" + std::to_string(count));
  RunOnCpu(service, [this, requester, pasid, bytes, pages, count, done = std::move(done)] {
    if (bytes == 0 || count == 0) {
      done(InvalidArgument("empty batch allocation"));
      return;
    }
    std::vector<VirtAddr> vaddrs;
    vaddrs.reserve(count);
    auto rollback = [this, &vaddrs, pasid, pages, requester] {
      for (VirtAddr vaddr : vaddrs) {
        auto table_it = tables_.find(pasid);
        if (table_it == tables_.end()) {
          break;
        }
        auto it = table_it->second.find(vaddr.page());
        if (it == table_it->second.end()) {
          continue;
        }
        UnmapRange(requester, pasid, it->first, it->second.pages);
        LASTCPU_CHECK(allocator_.Free(it->second.first_frame, it->second.pages).ok(),
                      "allocator out of sync");
        bytes_allocated_[pasid] -= it->second.pages * kPageSize;
        table_it->second.erase(it);
      }
    };
    for (uint32_t i = 0; i < count; ++i) {
      Table& table = tables_[pasid];
      auto [bump, inserted] = next_vpage_.try_emplace(pasid, config_.va_bump_base >> kPageShift);
      (void)inserted;
      uint64_t vpage = bump->second;
      while (Overlaps(table, vpage, pages)) {
        vpage += pages;
      }
      auto frame = allocator_.Allocate(pages);
      if (!frame.ok()) {
        rollback();
        done(frame.status());
        return;
      }
      bump->second = vpage + pages;
      for (uint64_t p = 0; p < pages; ++p) {
        memory_->ZeroFrame(*frame + p);
      }
      Status mapped = MapRange(requester, pasid, vpage, *frame, pages, Access::kReadWrite);
      if (!mapped.ok()) {
        LASTCPU_CHECK(allocator_.Free(*frame, pages).ok(), "allocator out of sync");
        rollback();
        done(mapped);
        return;
      }
      Allocation allocation;
      allocation.vaddr = VirtAddr(vpage << kPageShift);
      allocation.pages = pages;
      allocation.first_frame = *frame;
      allocation.owner = requester;
      table.emplace(vpage, allocation);
      bytes_allocated_[pasid] += pages * kPageSize;
      stats_.GetCounter("allocations").Increment();
      vaddrs.push_back(allocation.vaddr);
    }
    stats_.GetCounter("batch_allocs").Increment();
    done(std::move(vaddrs));
  }, span, CrossSegmentExtra(requester));
}

void CentralKernel::FreeMemoryBatch(DeviceId requester, Pasid pasid, std::vector<VirtAddr> vaddrs,
                                    uint64_t bytes, Callback<void> done) {
  LASTCPU_CHECK(done != nullptr, "batch free without callback");
  uint64_t pages = PagesForBytes(bytes);
  sim::Duration service =
      (config_.mm_service + config_.per_page_cost * pages) * static_cast<uint32_t>(vaddrs.size());
  sim::SpanId span = BeginOpSpan("FreeBatch", "pasid=" + std::to_string(pasid.value()) +
                                                  " count=" + std::to_string(vaddrs.size()));
  RunOnCpu(service, [this, requester, pasid, vaddrs = std::move(vaddrs), pages,
                     done = std::move(done)] {
    if (vaddrs.empty()) {
      done(InvalidArgument("empty batch free"));
      return;
    }
    auto table_it = tables_.find(pasid);
    if (table_it == tables_.end()) {
      done(NotFound("no allocations for PASID"));
      return;
    }
    // Validate everything before freeing anything: the batch is one unit.
    for (VirtAddr vaddr : vaddrs) {
      auto it = table_it->second.find(vaddr.page());
      if (it == table_it->second.end() || it->second.pages != pages) {
        done(NotFound("no matching allocation in batch"));
        return;
      }
      if (it->second.owner != requester) {
        done(PermissionDenied("only the owner may free an allocation"));
        return;
      }
    }
    for (VirtAddr vaddr : vaddrs) {
      auto it = table_it->second.find(vaddr.page());
      UnmapRange(it->second.owner, pasid, it->first, pages);
      for (const auto& [grantee, access] : it->second.grants) {
        UnmapRange(grantee, pasid, it->first, pages);
      }
      LASTCPU_CHECK(allocator_.Free(it->second.first_frame, pages).ok(), "allocator out of sync");
      bytes_allocated_[pasid] -= pages * kPageSize;
      table_it->second.erase(it);
      stats_.GetCounter("frees").Increment();
    }
    stats_.GetCounter("batch_frees").Increment();
    done(OkStatus());
  }, span, CrossSegmentExtra(requester));
}

void CentralKernel::Grant(DeviceId owner, Pasid pasid, VirtAddr vaddr, uint64_t bytes,
                          DeviceId grantee, Access access, Callback<void> done) {
  LASTCPU_CHECK(done != nullptr, "grant without callback");
  uint64_t pages = PagesForBytes(bytes);
  sim::Duration service = config_.mm_service + config_.per_page_cost * pages;
  sim::SpanId span = BeginOpSpan("Grant", "pasid=" + std::to_string(pasid.value()) +
                                              " grantee=" + std::to_string(grantee.value()));
  RunOnCpu(service, [this, owner, pasid, vaddr, bytes, pages, grantee, access,
                     done = std::move(done)] {
    Allocation* allocation = FindCovering(pasid, vaddr, bytes);
    if (allocation == nullptr) {
      done(NotFound("grant range is not an allocated region"));
      return;
    }
    if (allocation->owner != owner) {
      done(PermissionDenied("only the owner may grant a region"));
      return;
    }
    if (!AccessCovers(allocation->owner_access, access)) {
      done(PermissionDenied("grant exceeds the owner's access"));
      return;
    }
    uint64_t page_delta = vaddr.page() - allocation->vaddr.page();
    Status mapped = MapRange(grantee, pasid, vaddr.page(),
                             allocation->first_frame + page_delta, pages, access);
    if (!mapped.ok()) {
      done(mapped);
      return;
    }
    allocation->grants.emplace_back(grantee, access);
    stats_.GetCounter("grants").Increment();
    done(OkStatus());
  }, span, CrossSegmentExtra(owner));
}

void CentralKernel::Revoke(DeviceId owner, Pasid pasid, VirtAddr vaddr, uint64_t bytes,
                           DeviceId grantee, Callback<void> done) {
  LASTCPU_CHECK(done != nullptr, "revoke without callback");
  uint64_t pages = PagesForBytes(bytes);
  sim::Duration service = config_.mm_service + config_.per_page_cost * pages;
  sim::SpanId span = BeginOpSpan("Revoke", "pasid=" + std::to_string(pasid.value()) +
                                               " grantee=" + std::to_string(grantee.value()));
  RunOnCpu(service, [this, owner, pasid, vaddr, bytes, pages, grantee, done = std::move(done)] {
    Allocation* allocation = FindCovering(pasid, vaddr, bytes);
    if (allocation == nullptr) {
      done(NotFound("revoke range is not an allocated region"));
      return;
    }
    if (allocation->owner != owner) {
      done(PermissionDenied("only the owner may revoke a grant"));
      return;
    }
    auto it = std::find_if(allocation->grants.begin(), allocation->grants.end(),
                           [&](const auto& grant) { return grant.first == grantee; });
    if (it == allocation->grants.end()) {
      done(NotFound("no such grant"));
      return;
    }
    allocation->grants.erase(it);
    UnmapRange(grantee, pasid, vaddr.page(), pages);
    done(OkStatus());
  }, span, CrossSegmentExtra(owner));
}

void CentralKernel::Teardown(Pasid pasid, Callback<void> done) {
  LASTCPU_CHECK(done != nullptr, "teardown without callback");
  uint64_t pages = 0;
  auto table_it = tables_.find(pasid);
  if (table_it != tables_.end()) {
    for (const auto& [vpage, allocation] : table_it->second) {
      pages += allocation.pages * (1 + allocation.grants.size());
    }
  }
  sim::Duration service = config_.mm_service + config_.per_page_cost * pages;
  sim::SpanId span = BeginOpSpan("Teardown", "pasid=" + std::to_string(pasid.value()));
  RunOnCpu(service, [this, pasid, done = std::move(done)] {
    auto it = tables_.find(pasid);
    if (it != tables_.end()) {
      for (auto& [vpage, allocation] : it->second) {
        UnmapRange(allocation.owner, pasid, vpage, allocation.pages);
        for (const auto& [grantee, access] : allocation.grants) {
          UnmapRange(grantee, pasid, vpage, allocation.pages);
        }
        LASTCPU_CHECK(allocator_.Free(allocation.first_frame, allocation.pages).ok(),
                      "allocator out of sync");
      }
      tables_.erase(it);
    }
    bytes_allocated_.erase(pasid);
    next_vpage_.erase(pasid);
    stats_.GetCounter("teardowns").Increment();
    done(OkStatus());
  }, span);
}

void CentralKernel::MediateIo(sim::Duration work, std::function<void()> done) {
  LASTCPU_CHECK(done != nullptr, "mediation without callback");
  sim::SpanId span = BeginOpSpan("MediateIo", "");
  RunOnCpu(config_.io_service + work, std::move(done), span);
}

// --- device supervision ------------------------------------------------------

bool CentralKernel::IsQuarantined(DeviceId device) const {
  auto it = supervision_.find(device);
  return it != supervision_.end() && it->second.state == Supervision::State::kQuarantined;
}

uint32_t CentralKernel::RestartAttempts(DeviceId device) const {
  auto it = supervision_.find(device);
  return it == supervision_.end() ? 0 : it->second.attempts;
}

sim::Duration CentralKernel::RestartBackoff(uint32_t attempt) const {
  if (attempt == 0) {
    return sim::Duration::Zero();
  }
  double nanos = static_cast<double>(config_.restart_backoff.nanos());
  for (uint32_t i = 1; i < attempt; ++i) {
    nanos *= config_.backoff_multiplier;
  }
  return sim::Duration::Nanos(static_cast<uint64_t>(nanos));
}

void CentralKernel::CancelSupervisionTimers(Supervision& sup) {
  sup.pending_pulse.Cancel();
  sup.deadline.Cancel();
}

void CentralKernel::ReportDeviceFailure(DeviceId device) {
  Supervision& sup = supervision_[device];
  if (sup.state == Supervision::State::kQuarantined || sup.episode_open) {
    stats_.GetCounter("duplicate_failure_reports").Increment();
    return;
  }
  sup.episode_open = true;
  // The failure interrupt traps to the kernel; the supervision policy is a
  // software handler like everything else in this design.
  sim::SpanId span =
      BeginOpSpan("DeviceFailure", "device=" + std::to_string(device.value()));
  RunOnCpu(config_.io_service, [this, device] {
    auto it = supervision_.find(device);
    if (it == supervision_.end()) {
      return;
    }
    Supervision& rec = it->second;
    stats_.GetCounter("device_failures").Increment();
    if (config_.max_restart_attempts == 0) {
      rec.episode_open = false;  // unsupervised: fire-and-forget
      if (reset_handler_) {
        reset_handler_(device);
      }
      return;
    }
    sim::SimTime now = simulator_->Now();
    rec.recent_failures.push_back(now);
    while (!rec.recent_failures.empty() &&
           now - rec.recent_failures.front() > config_.crash_loop_window) {
      rec.recent_failures.pop_front();
    }
    CancelSupervisionTimers(rec);
    rec.state = Supervision::State::kRestarting;
    if (config_.crash_loop_threshold > 0 &&
        rec.recent_failures.size() >= config_.crash_loop_threshold) {
      QuarantineDevice(device, rec, "crash loop");
      return;
    }
    if (rec.attempts >= config_.max_restart_attempts) {
      QuarantineDevice(device, rec, "restart policy exhausted");
      return;
    }
    ScheduleRestartAttempt(device, rec);
  }, span, CrossSegmentExtra(device));
}

void CentralKernel::ScheduleRestartAttempt(DeviceId device, Supervision& sup) {
  uint32_t attempt = sup.attempts++;
  sim::Duration backoff = RestartBackoff(attempt);
  if (backoff == sim::Duration::Zero()) {
    PulseDevice(device);
    return;
  }
  sup.pending_pulse = sim::ScopedEvent(
      simulator_, simulator_->Schedule(backoff, [this, device] { PulseDevice(device); }));
}

void CentralKernel::PulseDevice(DeviceId device) {
  auto it = supervision_.find(device);
  if (it == supervision_.end() || it->second.state != Supervision::State::kRestarting) {
    return;
  }
  it->second.pending_pulse.Release();  // it just fired; nothing left to cancel
  stats_.GetCounter("supervisor_restarts").Increment();
  it->second.deadline = sim::ScopedEvent(
      simulator_, simulator_->Schedule(config_.restart_timeout,
                                       [this, device] { OnRestartDeadline(device); }));
  if (reset_handler_) {
    reset_handler_(device);
  }
}

void CentralKernel::OnRestartDeadline(DeviceId device) {
  auto it = supervision_.find(device);
  if (it == supervision_.end() || it->second.state != Supervision::State::kRestarting) {
    return;
  }
  Supervision& sup = it->second;
  sup.deadline.Release();  // it just fired; nothing left to cancel
  stats_.GetCounter("supervisor_restart_timeouts").Increment();
  // The timer interrupt traps to the kernel for the next decision.
  sim::SpanId span =
      BeginOpSpan("RestartDeadline", "device=" + std::to_string(device.value()));
  RunOnCpu(config_.io_service, [this, device] {
    auto sup_it = supervision_.find(device);
    if (sup_it == supervision_.end() ||
        sup_it->second.state != Supervision::State::kRestarting) {
      return;
    }
    Supervision& rec = sup_it->second;
    if (rec.attempts >= config_.max_restart_attempts) {
      QuarantineDevice(device, rec, "no alive signal after reset pulses");
      return;
    }
    ScheduleRestartAttempt(device, rec);
  }, span);
}

void CentralKernel::OnDeviceAlive(DeviceId device) {
  auto it = supervision_.find(device);
  if (it == supervision_.end() || it->second.state == Supervision::State::kQuarantined) {
    return;
  }
  Supervision& sup = it->second;
  CancelSupervisionTimers(sup);
  bool recovered = sup.state == Supervision::State::kRestarting;
  sup.attempts = 0;
  sup.episode_open = false;
  sup.state = Supervision::State::kHealthy;
  if (recovered) {
    stats_.GetCounter("supervisor_recoveries").Increment();
  }
}

void CentralKernel::QuarantineDevice(DeviceId device, Supervision& sup,
                                     const std::string& reason) {
  sup.state = Supervision::State::kQuarantined;
  CancelSupervisionTimers(sup);
  stats_.GetCounter("supervisor_quarantines").Increment();
  ReclaimDevice(device);
  if (quarantine_handler_) {
    quarantine_handler_(device, reason);
  }
}

void CentralKernel::ReclaimDevice(DeviceId device) {
  // Runs inside a kernel handler already; the page work is billed like a
  // teardown (per_page_cost via the caller's handler time is approximated by
  // an extra mediation trip proportional to the reclaimed pages).
  uint64_t pages_reclaimed = 0;
  for (auto& [pasid, table] : tables_) {
    std::vector<uint64_t> owned;
    for (auto& [vpage, allocation] : table) {
      auto removed = std::remove_if(allocation.grants.begin(), allocation.grants.end(),
                                    [&](const auto& grant) { return grant.first == device; });
      if (removed != allocation.grants.end()) {
        stats_.GetCounter("stranded_grants_reclaimed")
            .Increment(static_cast<uint64_t>(allocation.grants.end() - removed));
        allocation.grants.erase(removed, allocation.grants.end());
      }
      if (allocation.owner == device) {
        owned.push_back(vpage);
      }
    }
    for (uint64_t vpage : owned) {
      auto it = table.find(vpage);
      if (it == table.end()) {
        continue;
      }
      Allocation& allocation = it->second;
      for (const auto& [grantee, access] : allocation.grants) {
        UnmapRange(grantee, pasid, vpage, allocation.pages);
      }
      pages_reclaimed += allocation.pages;
      bytes_allocated_[pasid] -= allocation.pages * kPageSize;
      LASTCPU_CHECK(allocator_.Free(allocation.first_frame, allocation.pages).ok(),
                    "allocator out of sync during reclaim");
      table.erase(it);
      stats_.GetCounter("permanent_reclaims").Increment();
    }
  }
  if (pages_reclaimed > 0) {
    // Bill the page-table scrubbing as handler time on the CPU.
    RunOnCpu(config_.per_page_cost * pages_reclaimed, [] {});
  }
}

}  // namespace lastcpu::baseline
