// CentralKernel: the system the paper argues against, as a baseline.
//
// Models a conventional accelerator-centric machine (Omni-X / M3X / IX
// style): devices run the data plane, but every control operation — memory
// allocation, mapping, grants, teardown, and any event needing privileged
// attention — must be mediated by software on a general-purpose CPU. The
// costs modeled are the ones the decentralized design eliminates:
//   * interrupt delivery / kernel entry when a device needs the CPU,
//   * serialization on K CPU cores (the run queue),
//   * a software handler per operation.
// The kernel holds the machine's only mapping privilege (it is the second
// legal holder of iommu::ProgrammingKey) and the same allocation-table
// semantics as the memory controller, so both designs enforce identical
// policy — only *where* control runs differs.
#ifndef SRC_BASELINE_CENTRAL_KERNEL_H_
#define SRC_BASELINE_CENTRAL_KERNEL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/iommu/iommu.h"
#include "src/mem/buddy_allocator.h"
#include "src/mem/physical_memory.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"

namespace lastcpu::baseline {

struct CentralKernelConfig {
  uint32_t cores = 1;
  // Device -> CPU notification: interrupt delivery + context switch.
  sim::Duration interrupt_cost = sim::Duration::Micros(2);
  // Trap + syscall dispatch on entry.
  sim::Duration syscall_entry = sim::Duration::Nanos(300);
  // Handler body for memory-management operations.
  sim::Duration mm_service = sim::Duration::Micros(1);
  // Extra handler time per page mapped/unmapped.
  sim::Duration per_page_cost = sim::Duration::Nanos(60);
  // Handler body for generic I/O mediation (completion processing, wakeups).
  sim::Duration io_service = sim::Duration::Nanos(800);
  uint64_t va_bump_base = uint64_t{1} << 32;
  // Restart supervision — the same policy knobs as bus::RestartPolicy
  // (duplicated so the baseline does not link the bus), but every decision
  // here is a software handler on the CPU: interrupt, run-queue wait, then
  // the supervisor code runs. max_restart_attempts = 0 disables supervision
  // (a failure report just pulses reset once).
  uint32_t max_restart_attempts = 4;
  sim::Duration restart_backoff = sim::Duration::Micros(50);
  double backoff_multiplier = 2.0;
  sim::Duration restart_timeout = sim::Duration::Micros(500);
  uint32_t crash_loop_threshold = 8;
  sim::Duration crash_loop_window = sim::Duration::Millis(5);
  // Rack topology: the kernel's CPU complex sits on segment 0, so interrupts
  // raised by devices on other segments pay this extra delivery latency
  // (their signal crosses the inter-chassis link before reaching the CPU).
  // Zero (the default) models the classic single-chassis machine.
  sim::Duration cross_segment_interrupt_extra = sim::Duration::Zero();
};

class CentralKernel {
 public:
  // One generic completion-callback shape (see base/status.h): operations
  // producing a value complete with Result<T>, status-only ones with
  // Result<void>.
  CentralKernel(sim::Simulator* simulator, mem::PhysicalMemory* memory,
                CentralKernelConfig config = {}, sim::TraceLog* trace = nullptr);

  // The kernel knows every device and programs their IOMMUs directly.
  void RegisterDevice(DeviceId device, iommu::Iommu* iommu);

  // --- the control-plane "syscalls" (identical policy to MemoryController) --

  void AllocMemory(DeviceId requester, Pasid pasid, uint64_t bytes, Callback<VirtAddr> done);
  void FreeMemory(DeviceId requester, Pasid pasid, VirtAddr vaddr, uint64_t bytes,
                  Callback<void> done);
  // Batched syscalls: `count` equally sized allocations (or several frees) in
  // one kernel trip — one interrupt + syscall entry, `count` handler bodies.
  // Keeps the baseline comparison fair against the bus-side AllocBatch path.
  void AllocMemoryBatch(DeviceId requester, Pasid pasid, uint64_t bytes, uint32_t count,
                        Callback<std::vector<VirtAddr>> done);
  void FreeMemoryBatch(DeviceId requester, Pasid pasid, std::vector<VirtAddr> vaddrs,
                       uint64_t bytes, Callback<void> done);
  void Grant(DeviceId owner, Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee,
             Access access, Callback<void> done);
  void Revoke(DeviceId owner, Pasid pasid, VirtAddr vaddr, uint64_t bytes, DeviceId grantee,
              Callback<void> done);
  void Teardown(Pasid pasid, Callback<void> done);

  // Generic privileged mediation of a device event costing `work` of handler
  // time (interrupt path + run queue + handler). Models the per-I/O kernel
  // involvement of a traditional stack.
  void MediateIo(sim::Duration work, std::function<void()> done);

  // --- device supervision (software twin of bus::DeviceSupervisor) ----------

  // `reset` pulses a device's reset line; `quarantine` is told when the
  // kernel gives up on one. Both fire from kernel handlers (post-CPU-trip).
  void SetResetHandler(std::function<void(DeviceId)> reset) { reset_handler_ = std::move(reset); }
  void SetQuarantineHandler(std::function<void(DeviceId, const std::string&)> quarantine) {
    quarantine_handler_ = std::move(quarantine);
  }

  // A device failed: the kernel takes an interrupt, runs the supervision
  // policy, and (per policy) pulses reset with backoff, quarantines on a
  // crash loop or exhausted attempts, and reclaims a quarantined device's
  // allocations and grants. Duplicate reports during an episode are no-ops.
  void ReportDeviceFailure(DeviceId device);

  // The baseline's failover story: the CPU complex panics and warm-reboots.
  // EVERY control operation machine-wide stalls for `blackout` (all cores go
  // busy), then the kernel re-walks its allocation tables before serving
  // again — one mm_service per live table entry, on one core. This is the
  // centralized counterpart of one shard's lease-rebuild takeover: there, the
  // blast radius is one VA slab; here it is the whole machine. `done` fires
  // when the kernel is serving again.
  void SimulateKernelFailover(sim::Duration blackout, Callback<void> done);
  // The device completed self-test; clears the episode.
  void OnDeviceAlive(DeviceId device);
  bool IsQuarantined(DeviceId device) const;
  uint32_t RestartAttempts(DeviceId device) const;

  // --- observability ---------------------------------------------------------

  // Completed control operations.
  uint64_t ops_completed() const { return ops_completed_; }
  // Time an operation spends from device signal to completion.
  const sim::Histogram& op_latency() const { return op_latency_; }
  // Run-queue depth right now (scheduled, not yet started).
  uint64_t AllocatedBytes(Pasid pasid) const;
  sim::StatsRegistry& stats() { return stats_; }
  sim::Simulator* simulator() { return simulator_; }

 private:
  struct Allocation {
    VirtAddr vaddr;
    uint64_t pages = 0;
    uint64_t first_frame = 0;
    DeviceId owner;
    Access owner_access = Access::kReadWrite;
    std::vector<std::pair<DeviceId, Access>> grants;
  };
  using Table = std::map<uint64_t, Allocation>;

  // Queues `handler` on the CPU: interrupt -> least-loaded core -> entry +
  // service time -> handler runs (at completion time). When tracing, the CPU
  // occupancy is a child span of `parent` (the syscall's span), and both
  // close when the handler completes. `interrupt_extra` stretches the
  // interrupt-delivery leg (cross-segment requesters).
  void RunOnCpu(sim::Duration service, std::function<void()> handler, sim::SpanId parent = 0,
                sim::Duration interrupt_extra = sim::Duration::Zero());

  // The cross-segment interrupt surcharge for `requester` (zero on segment 0
  // or when unconfigured). Counts cross_segment_interrupts as a side effect.
  sim::Duration CrossSegmentExtra(DeviceId requester);

  // Opens the span for one kernel-mediated control operation.
  sim::SpanId BeginOpSpan(std::string_view name, const std::string& detail) {
    return tracer_.BeginSpan(name, 0, detail);
  }

  struct Supervision {
    enum class State : uint8_t { kHealthy, kRestarting, kQuarantined };
    State state = State::kHealthy;
    bool episode_open = false;  // failure reported, no alive announce yet
    uint32_t attempts = 0;
    std::deque<sim::SimTime> recent_failures;
    sim::ScopedEvent pending_pulse;
    sim::ScopedEvent deadline;
  };

  // Supervision internals; each pulse/quarantine decision is a RunOnCpu trip.
  void ScheduleRestartAttempt(DeviceId device, Supervision& sup);
  void PulseDevice(DeviceId device);
  void OnRestartDeadline(DeviceId device);
  void QuarantineDevice(DeviceId device, Supervision& sup, const std::string& reason);
  // Frees everything a quarantined device owned and strips its grants.
  void ReclaimDevice(DeviceId device);
  sim::Duration RestartBackoff(uint32_t attempt) const;
  void CancelSupervisionTimers(Supervision& sup);

  iommu::Iommu* FindIommu(DeviceId device);
  static bool Overlaps(const Table& table, uint64_t vpage, uint64_t pages);
  Allocation* FindCovering(Pasid pasid, VirtAddr vaddr, uint64_t bytes);
  Status MapRange(DeviceId device, Pasid pasid, uint64_t vpage, uint64_t pframe, uint64_t pages,
                  Access access);
  void UnmapRange(DeviceId device, Pasid pasid, uint64_t vpage, uint64_t pages);

  sim::Simulator* simulator_;
  mem::BuddyAllocator allocator_;
  mem::PhysicalMemory* memory_;
  CentralKernelConfig config_;
  sim::Tracer tracer_;
  std::map<DeviceId, iommu::Iommu*> devices_;
  std::map<Pasid, Table> tables_;
  std::map<Pasid, uint64_t> next_vpage_;
  std::map<Pasid, uint64_t> bytes_allocated_;
  std::vector<sim::SimTime> core_busy_until_;
  uint64_t ops_completed_ = 0;
  sim::Histogram op_latency_;
  sim::StatsRegistry stats_;
  std::map<DeviceId, Supervision> supervision_;
  std::function<void(DeviceId)> reset_handler_;
  std::function<void(DeviceId, const std::string&)> quarantine_handler_;
};

}  // namespace lastcpu::baseline

#endif  // SRC_BASELINE_CENTRAL_KERNEL_H_
