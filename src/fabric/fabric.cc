#include "src/fabric/fabric.h"

#include <algorithm>
#include <utility>

#include "src/base/check.h"

namespace lastcpu::fabric {

Fabric::Fabric(sim::Simulator* simulator, mem::PhysicalMemory* memory, FabricConfig config,
               sim::TraceLog* trace)
    : simulator_(simulator), memory_(memory), config_(config),
      tracer_(trace, simulator, "fabric") {
  LASTCPU_CHECK(simulator != nullptr && memory != nullptr, "fabric needs simulator and memory");
}

void Fabric::AttachDevice(DeviceId device, iommu::Iommu* iommu, LinkConfig link) {
  LASTCPU_CHECK(iommu != nullptr, "device %u attached without IOMMU", device.value());
  LASTCPU_CHECK(!ports_.contains(device), "device %u already attached", device.value());
  Port port;
  port.iommu = iommu;
  port.link = link;
  ports_.emplace(device, std::move(port));
}

void Fabric::SetDoorbellHandler(DeviceId device,
                                std::function<void(DeviceId, uint64_t)> fn) {
  Port* port = FindPort(device);
  LASTCPU_CHECK(port != nullptr, "doorbell handler for unattached device %u", device.value());
  port->doorbell = std::move(fn);
}

void Fabric::DetachDevice(DeviceId device) {
  if (device == cached_port_id_) {
    cached_port_id_ = DeviceId::Invalid();
    cached_port_ = nullptr;
  }
  ports_.erase(device);
}

void Fabric::SetSegmentForFrames(uint64_t first_frame, uint64_t count, uint32_t segment) {
  if (count == 0) {
    return;
  }
  frame_bands_.push_back(FrameBand{first_frame, count, segment});
  std::sort(frame_bands_.begin(), frame_bands_.end(),
            [](const FrameBand& a, const FrameBand& b) { return a.first_frame < b.first_frame; });
}

uint32_t Fabric::SegmentOfFrame(uint64_t frame) const {
  for (const FrameBand& band : frame_bands_) {
    if (frame < band.first_frame) {
      break;  // bands are sorted; nothing further can contain the frame
    }
    if (frame - band.first_frame < band.count) {
      return band.segment;
    }
  }
  return 0;
}

sim::Duration Fabric::DmaHopCost(DeviceId initiator, PhysAddr paddr) {
  if (config_.inter_segment_hop == sim::Duration::Zero() || IsReservedDevice(initiator)) {
    return sim::Duration::Zero();
  }
  if (SegmentOf(initiator) == SegmentOfFrame(paddr.raw >> kPageShift)) {
    return sim::Duration::Zero();
  }
  cross_segment_dmas_.Increment();
  return config_.inter_segment_hop;
}

Fabric::Port* Fabric::FindPort(DeviceId device) {
  if (device == cached_port_id_) {
    return cached_port_;
  }
  auto it = ports_.find(device);
  if (it == ports_.end()) {
    return nullptr;
  }
  cached_port_id_ = device;
  cached_port_ = &it->second;
  return cached_port_;
}

Status Fabric::TranslateRange(Port& port, Pasid pasid, VirtAddr addr, uint64_t length,
                              Access wanted, std::vector<std::pair<PhysAddr, uint64_t>>& out,
                              sim::Duration& cost) {
  uint64_t remaining = length;
  VirtAddr cursor = addr;
  while (remaining > 0) {
    iommu::Translation translation;
    if (!port.iommu->TryTranslate(pasid, cursor, wanted, &translation)) {
      return port.iommu->TranslateFault(pasid, cursor, wanted);
    }
    if (!translation.tlb_hit) {
      cost += config_.walk_latency_per_level * static_cast<uint64_t>(translation.levels_walked);
    }
    uint64_t chunk = std::min(remaining, kPageSize - cursor.offset());
    out.emplace_back(translation.paddr, chunk);
    cursor = cursor + chunk;
    remaining -= chunk;
  }
  return OkStatus();
}

sim::SimTime Fabric::ScheduleTransfer(Port& port, uint64_t bytes, sim::Duration extra) {
  auto wire_time = sim::Duration::Nanos(
      static_cast<uint64_t>(static_cast<double>(bytes) / port.link.bytes_per_nano));
  sim::SimTime start = std::max(simulator_->Now(), port.link_busy_until);
  sim::SimTime done = start + port.link.base_latency + wire_time + extra;
  port.link_busy_until = done;
  return done;
}

void Fabric::DmaWrite(DeviceId initiator, Pasid pasid, VirtAddr dst, std::vector<uint8_t> data,
                      DmaCallback done, sim::TraceContext ctx) {
  Port* port = FindPort(initiator);
  LASTCPU_CHECK(port != nullptr, "DMA from unattached device %u", initiator.value());
  LASTCPU_CHECK(done != nullptr, "DMA without completion callback");

  sim::SpanId span =
      tracer_.enabled()
          ? tracer_.BeginSpan("DmaWrite", ctx.span,
                              "dev=" + std::to_string(initiator.value()) +
                                  " bytes=" + std::to_string(data.size()))
          : 0;

  // Fast path: a transfer that fits one page needs exactly one translation,
  // so skip the segment vector entirely — same walk costs, same fault
  // behavior, just no per-transfer heap traffic. Empty transfers take the
  // general path, which translates nothing.
  if (!data.empty() && data.size() <= kPageSize - dst.offset()) {
    iommu::Translation translation;
    if (!port->iommu->TryTranslate(pasid, dst, Access::kWrite, &translation)) {
      Status failed = port->iommu->TranslateFault(pasid, dst, Access::kWrite);
      dma_faults_.Increment();
      tracer_.Instant("dma-fault", failed.message(), span);
      simulator_->Schedule(port->link.base_latency,
                           [this, span, done = std::move(done), failed = std::move(failed)] {
                             done(failed);
                             tracer_.EndSpan(span);
                           });
      return;
    }
    sim::Duration walk_cost = sim::Duration::Zero();
    if (!translation.tlb_hit) {
      walk_cost = config_.walk_latency_per_level * static_cast<uint64_t>(translation.levels_walked);
    }
    sim::SimTime completion = ScheduleTransfer(
        *port, data.size(), walk_cost + DmaHopCost(initiator, translation.paddr));
    dma_writes_.Increment();
    dma_bytes_written_.Increment(data.size());
    dma_write_latency_.Record(completion - simulator_->Now());
    simulator_->ScheduleAt(completion, [this, span, paddr = translation.paddr,
                                        data = std::move(data), done = std::move(done)] {
      memory_->Write(paddr, data);
      done(OkStatus());
      tracer_.EndSpan(span);
    });
    return;
  }

  std::vector<std::pair<PhysAddr, uint64_t>> segments;
  sim::Duration walk_cost = sim::Duration::Zero();
  Status translated =
      TranslateRange(*port, pasid, dst, data.size(), Access::kWrite, segments, walk_cost);
  if (!translated.ok()) {
    dma_faults_.Increment();
    tracer_.Instant("dma-fault", translated.message(), span);
    // Hardware reports the abort asynchronously, after the failed bus cycle.
    simulator_->Schedule(port->link.base_latency, [this, span, done = std::move(done), translated] {
      done(translated);
      tracer_.EndSpan(span);
    });
    return;
  }

  if (!segments.empty()) {
    // A multi-page transfer that lands on a remote shard pays one hop (the
    // first frame decides; shard slabs are contiguous, so mixes are rare).
    walk_cost = walk_cost + DmaHopCost(initiator, segments.front().first);
  }
  sim::SimTime completion = ScheduleTransfer(*port, data.size(), walk_cost);
  dma_writes_.Increment();
  dma_bytes_written_.Increment(data.size());
  dma_write_latency_.Record(completion - simulator_->Now());

  simulator_->ScheduleAt(
      completion, [this, span, segments = std::move(segments), data = std::move(data),
                   done = std::move(done)] {
        uint64_t offset = 0;
        for (const auto& [paddr, len] : segments) {
          memory_->Write(paddr, std::span<const uint8_t>(data.data() + offset, len));
          offset += len;
        }
        done(OkStatus());
        tracer_.EndSpan(span);
      });
}

void Fabric::DmaRead(DeviceId initiator, Pasid pasid, VirtAddr src, uint64_t length,
                     DmaReadCallback done, sim::TraceContext ctx) {
  Port* port = FindPort(initiator);
  LASTCPU_CHECK(port != nullptr, "DMA from unattached device %u", initiator.value());
  LASTCPU_CHECK(done != nullptr, "DMA without completion callback");

  sim::SpanId span =
      tracer_.enabled()
          ? tracer_.BeginSpan("DmaRead", ctx.span,
                              "dev=" + std::to_string(initiator.value()) +
                                  " bytes=" + std::to_string(length))
          : 0;

  // Single-page fast path, mirroring DmaWrite: one translation, no segment
  // vector. Zero-length reads take the general path (no translation at all).
  if (length > 0 && length <= kPageSize - src.offset()) {
    iommu::Translation translation;
    if (!port->iommu->TryTranslate(pasid, src, Access::kRead, &translation)) {
      Status failed = port->iommu->TranslateFault(pasid, src, Access::kRead);
      dma_faults_.Increment();
      tracer_.Instant("dma-fault", failed.message(), span);
      simulator_->Schedule(port->link.base_latency,
                           [this, span, done = std::move(done), failed = std::move(failed)] {
                             done(failed);
                             tracer_.EndSpan(span);
                           });
      return;
    }
    sim::Duration walk_cost = sim::Duration::Zero();
    if (!translation.tlb_hit) {
      walk_cost = config_.walk_latency_per_level * static_cast<uint64_t>(translation.levels_walked);
    }
    sim::SimTime completion =
        ScheduleTransfer(*port, length, walk_cost + DmaHopCost(initiator, translation.paddr));
    dma_reads_.Increment();
    dma_bytes_read_.Increment(length);
    dma_read_latency_.Record(completion - simulator_->Now());
    simulator_->ScheduleAt(completion, [this, span, paddr = translation.paddr, length,
                                        done = std::move(done)] {
      std::vector<uint8_t> data(length);
      memory_->Read(paddr, std::span<uint8_t>(data));
      done(std::move(data));
      tracer_.EndSpan(span);
    });
    return;
  }

  std::vector<std::pair<PhysAddr, uint64_t>> segments;
  sim::Duration walk_cost = sim::Duration::Zero();
  Status translated = TranslateRange(*port, pasid, src, length, Access::kRead, segments, walk_cost);
  if (!translated.ok()) {
    dma_faults_.Increment();
    tracer_.Instant("dma-fault", translated.message(), span);
    simulator_->Schedule(port->link.base_latency, [this, span, done = std::move(done), translated] {
      done(translated);
      tracer_.EndSpan(span);
    });
    return;
  }

  if (!segments.empty()) {
    walk_cost = walk_cost + DmaHopCost(initiator, segments.front().first);
  }
  sim::SimTime completion = ScheduleTransfer(*port, length, walk_cost);
  dma_reads_.Increment();
  dma_bytes_read_.Increment(length);
  dma_read_latency_.Record(completion - simulator_->Now());

  simulator_->ScheduleAt(completion,
                         [this, span, segments = std::move(segments), length,
                          done = std::move(done)] {
                           std::vector<uint8_t> data(length);
                           uint64_t offset = 0;
                           for (const auto& [paddr, len] : segments) {
                             memory_->Read(paddr, std::span<uint8_t>(data.data() + offset, len));
                             offset += len;
                           }
                           done(std::move(data));
                           tracer_.EndSpan(span);
                         });
}

void Fabric::DmaWritev(DeviceId initiator, Pasid pasid, std::vector<DmaWriteSegment> segments,
                       DmaCallback done, sim::TraceContext ctx) {
  Port* port = FindPort(initiator);
  LASTCPU_CHECK(port != nullptr, "DMA from unattached device %u", initiator.value());
  LASTCPU_CHECK(done != nullptr, "DMA without completion callback");

  uint64_t total_bytes = 0;
  for (const DmaWriteSegment& segment : segments) {
    total_bytes += segment.data.size();
  }
  sim::SpanId span =
      tracer_.enabled()
          ? tracer_.BeginSpan("DmaWritev", ctx.span,
                              "dev=" + std::to_string(initiator.value()) +
                                  " segments=" + std::to_string(segments.size()) +
                                  " bytes=" + std::to_string(total_bytes))
          : 0;

  // Per-segment translation (each pays its own walk costs), one transfer.
  std::vector<std::pair<PhysAddr, uint64_t>> phys;
  sim::Duration walk_cost = sim::Duration::Zero();
  for (const DmaWriteSegment& segment : segments) {
    Status translated = TranslateRange(*port, pasid, segment.addr, segment.data.size(),
                                       Access::kWrite, phys, walk_cost);
    if (!translated.ok()) {
      dma_faults_.Increment();
      tracer_.Instant("dma-fault", translated.message(), span);
      simulator_->Schedule(port->link.base_latency,
                           [this, span, done = std::move(done), translated] {
                             done(translated);
                             tracer_.EndSpan(span);
                           });
      return;
    }
  }

  if (!phys.empty()) {
    walk_cost = walk_cost + DmaHopCost(initiator, phys.front().first);
  }
  sim::SimTime completion = ScheduleTransfer(*port, total_bytes, walk_cost);
  dma_writes_.Increment();
  dma_sg_segments_.Increment(segments.size());
  dma_bytes_written_.Increment(total_bytes);
  dma_write_latency_.Record(completion - simulator_->Now());

  simulator_->ScheduleAt(
      completion, [this, span, phys = std::move(phys), segments = std::move(segments),
                   done = std::move(done)] {
        size_t cursor = 0;
        uint64_t cursor_offset = 0;
        for (const DmaWriteSegment& segment : segments) {
          uint64_t offset = 0;
          while (offset < segment.data.size()) {
            const auto& [paddr, len] = phys[cursor];
            uint64_t chunk = std::min(len - cursor_offset, segment.data.size() - offset);
            memory_->Write(PhysAddr(paddr.raw + cursor_offset),
                           std::span<const uint8_t>(segment.data.data() + offset, chunk));
            offset += chunk;
            cursor_offset += chunk;
            if (cursor_offset == len) {
              ++cursor;
              cursor_offset = 0;
            }
          }
        }
        done(OkStatus());
        tracer_.EndSpan(span);
      });
}

void Fabric::DmaReadv(DeviceId initiator, Pasid pasid, std::vector<DmaReadSegment> segments,
                      DmaReadvCallback done, sim::TraceContext ctx) {
  Port* port = FindPort(initiator);
  LASTCPU_CHECK(port != nullptr, "DMA from unattached device %u", initiator.value());
  LASTCPU_CHECK(done != nullptr, "DMA without completion callback");

  uint64_t total_bytes = 0;
  for (const DmaReadSegment& segment : segments) {
    total_bytes += segment.length;
  }
  sim::SpanId span =
      tracer_.enabled()
          ? tracer_.BeginSpan("DmaReadv", ctx.span,
                              "dev=" + std::to_string(initiator.value()) +
                                  " segments=" + std::to_string(segments.size()) +
                                  " bytes=" + std::to_string(total_bytes))
          : 0;

  std::vector<std::pair<PhysAddr, uint64_t>> phys;
  sim::Duration walk_cost = sim::Duration::Zero();
  for (const DmaReadSegment& segment : segments) {
    Status translated =
        TranslateRange(*port, pasid, segment.addr, segment.length, Access::kRead, phys, walk_cost);
    if (!translated.ok()) {
      dma_faults_.Increment();
      tracer_.Instant("dma-fault", translated.message(), span);
      simulator_->Schedule(port->link.base_latency,
                           [this, span, done = std::move(done), translated] {
                             done(translated);
                             tracer_.EndSpan(span);
                           });
      return;
    }
  }

  if (!phys.empty()) {
    walk_cost = walk_cost + DmaHopCost(initiator, phys.front().first);
  }
  sim::SimTime completion = ScheduleTransfer(*port, total_bytes, walk_cost);
  dma_reads_.Increment();
  dma_sg_segments_.Increment(segments.size());
  dma_bytes_read_.Increment(total_bytes);
  dma_read_latency_.Record(completion - simulator_->Now());

  simulator_->ScheduleAt(
      completion, [this, span, phys = std::move(phys), segments = std::move(segments),
                   done = std::move(done)] {
        std::vector<std::vector<uint8_t>> buffers;
        buffers.reserve(segments.size());
        size_t cursor = 0;
        uint64_t cursor_offset = 0;
        for (const DmaReadSegment& segment : segments) {
          std::vector<uint8_t> data(segment.length);
          uint64_t offset = 0;
          while (offset < segment.length) {
            const auto& [paddr, len] = phys[cursor];
            uint64_t chunk = std::min(len - cursor_offset, segment.length - offset);
            memory_->Read(PhysAddr(paddr.raw + cursor_offset),
                          std::span<uint8_t>(data.data() + offset, chunk));
            offset += chunk;
            cursor_offset += chunk;
            if (cursor_offset == len) {
              ++cursor;
              cursor_offset = 0;
            }
          }
          buffers.push_back(std::move(data));
        }
        done(std::move(buffers));
        tracer_.EndSpan(span);
      });
}

AccessResult Fabric::MemWrite(DeviceId initiator, Pasid pasid, VirtAddr dst,
                              std::span<const uint8_t> data) {
  Port* port = FindPort(initiator);
  LASTCPU_CHECK(port != nullptr, "access from unattached device %u", initiator.value());
  sim::Duration cost = config_.mmio_latency;
  // Almost every synchronous access is a descriptor or ring-index touch that
  // fits one page; translate it directly instead of building a segment list.
  // (Zero-length accesses translate nothing, as the page-by-page walk would.)
  if (!data.empty() && data.size() <= kPageSize - dst.offset()) {
    iommu::Translation translation;
    if (!port->iommu->TryTranslate(pasid, dst, Access::kWrite, &translation)) {
      return AccessResult{port->iommu->TranslateFault(pasid, dst, Access::kWrite), cost};
    }
    if (!translation.tlb_hit) {
      cost += config_.walk_latency_per_level * static_cast<uint64_t>(translation.levels_walked);
    }
    memory_->Write(translation.paddr, data);
    mmio_writes_.Increment();
    return AccessResult{OkStatus(), cost};
  }
  std::vector<std::pair<PhysAddr, uint64_t>> segments;
  Status translated =
      TranslateRange(*port, pasid, dst, data.size(), Access::kWrite, segments, cost);
  if (!translated.ok()) {
    return AccessResult{translated, cost};
  }
  uint64_t offset = 0;
  for (const auto& [paddr, len] : segments) {
    memory_->Write(paddr, data.subspan(offset, len));
    offset += len;
  }
  mmio_writes_.Increment();
  return AccessResult{OkStatus(), cost};
}

AccessResult Fabric::MemRead(DeviceId initiator, Pasid pasid, VirtAddr src,
                             std::span<uint8_t> out) {
  Port* port = FindPort(initiator);
  LASTCPU_CHECK(port != nullptr, "access from unattached device %u", initiator.value());
  sim::Duration cost = config_.mmio_latency;
  if (!out.empty() && out.size() <= kPageSize - src.offset()) {
    iommu::Translation translation;
    if (!port->iommu->TryTranslate(pasid, src, Access::kRead, &translation)) {
      return AccessResult{port->iommu->TranslateFault(pasid, src, Access::kRead), cost};
    }
    if (!translation.tlb_hit) {
      cost += config_.walk_latency_per_level * static_cast<uint64_t>(translation.levels_walked);
    }
    memory_->Read(translation.paddr, out);
    mmio_reads_.Increment();
    return AccessResult{OkStatus(), cost};
  }
  std::vector<std::pair<PhysAddr, uint64_t>> segments;
  Status translated = TranslateRange(*port, pasid, src, out.size(), Access::kRead, segments, cost);
  if (!translated.ok()) {
    return AccessResult{translated, cost};
  }
  uint64_t offset = 0;
  for (const auto& [paddr, len] : segments) {
    memory_->Read(paddr, out.subspan(offset, len));
    offset += len;
  }
  mmio_reads_.Increment();
  return AccessResult{OkStatus(), cost};
}

AccessResult Fabric::WriteU64(DeviceId initiator, Pasid pasid, VirtAddr dst, uint64_t value) {
  uint8_t buf[8];
  uint64_t v = value;
  for (auto& b : buf) {
    b = static_cast<uint8_t>(v);
    v >>= 8;
  }
  return MemWrite(initiator, pasid, dst, buf);
}

AccessResult Fabric::ReadU64(DeviceId initiator, Pasid pasid, VirtAddr src, uint64_t* value) {
  uint8_t buf[8] = {};
  AccessResult result = MemRead(initiator, pasid, src, buf);
  if (result.status.ok()) {
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | buf[i];
    }
    *value = v;
  }
  return result;
}

void Fabric::RingDoorbell(DeviceId from, DeviceId to, uint64_t value) {
  Port* port = FindPort(to);
  if (port == nullptr || !port->doorbell) {
    doorbells_dropped_.Increment();
    return;
  }
  doorbells_.Increment();
  sim::Duration latency = config_.doorbell_latency;
  if (config_.inter_segment_hop != sim::Duration::Zero() && !IsReservedDevice(from) &&
      !IsReservedDevice(to) && SegmentOf(from) != SegmentOf(to)) {
    cross_segment_doorbells_.Increment();
    latency = latency + config_.inter_segment_hop;
  }
  int copies = 1;
  if (faults_ != nullptr) {
    sim::FaultDecision fault = faults_->Decide();
    if (fault.drop) {
      // Doorbells are edge-triggered with no acknowledgement: a lost one is
      // simply lost, and the receiver's poll backstop must catch the work.
      doorbells_faulted_.Increment();
      return;
    }
    latency = latency + fault.extra_delay;
    if (fault.reorder) {
      // A held doorbell is indistinguishable from a late one.
      latency = latency + faults_->plan().reorder_window;
    }
    if (fault.duplicate) {
      copies = 2;
    }
  }
  for (int i = 0; i < copies; ++i) {
    simulator_->Schedule(latency, [this, from, to, value] {
      // Re-resolve: the target may have detached (device failure) in flight.
      Port* target = FindPort(to);
      if (target != nullptr && target->doorbell) {
        target->doorbell(from, value);
      } else {
        doorbells_dropped_.Increment();
      }
    });
  }
}

DoorbellBatcher::DoorbellBatcher(Fabric* fabric, DeviceId from)
    : fabric_(fabric), from_(from) {
  LASTCPU_CHECK(fabric != nullptr, "doorbell batcher needs a fabric");
}

DoorbellBatcher::~DoorbellBatcher() { CancelPending(); }

void DoorbellBatcher::CancelPending() {
  // Each entry's ScopedEvent cancels its trailing flush on destruction.
  pending_.clear();
}

void DoorbellBatcher::Ring(DeviceId to, uint64_t value) {
  sim::Duration window = fabric_->config().doorbell_coalesce_window;
  if (window == sim::Duration::Zero()) {
    fabric_->RingDoorbell(from_, to, value);
    return;
  }
  auto key = std::make_pair(to, value);
  auto it = pending_.find(key);
  if (it != pending_.end()) {
    // Suppressed: the trailing doorbell at window close covers this ring.
    ++it->second.merged;
    ++coalesced_;
    fabric_->doorbells_coalesced_.Increment();
    return;
  }
  // Leading edge goes out immediately — a lone doorbell pays no extra
  // latency; only bursts are merged.
  fabric_->RingDoorbell(from_, to, value);
  sim::EventId flush =
      fabric_->simulator()->Schedule(window, [this, to, value, key] {
        auto pending_it = pending_.find(key);
        if (pending_it == pending_.end()) {
          return;
        }
        uint64_t merged = pending_it->second.merged;
        // Erasing the entry Cancel()s the flush id — a clean miss, since the
        // flush is the event currently executing.
        pending_.erase(pending_it);
        if (merged > 0) {
          fabric_->RingDoorbell(from_, to, value);
        }
      });
  Pending pending;
  pending.flush = sim::ScopedEvent(fabric_->simulator(), flush);
  pending_.emplace(key, std::move(pending));
}

}  // namespace lastcpu::fabric
