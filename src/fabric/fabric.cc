#include "src/fabric/fabric.h"

#include <algorithm>
#include <utility>

#include "src/base/check.h"

namespace lastcpu::fabric {

Fabric::Fabric(sim::Simulator* simulator, mem::PhysicalMemory* memory, FabricConfig config,
               sim::TraceLog* trace)
    : simulator_(simulator), memory_(memory), config_(config),
      tracer_(trace, simulator, "fabric") {
  LASTCPU_CHECK(simulator != nullptr && memory != nullptr, "fabric needs simulator and memory");
}

void Fabric::AttachDevice(DeviceId device, iommu::Iommu* iommu, LinkConfig link) {
  LASTCPU_CHECK(iommu != nullptr, "device %u attached without IOMMU", device.value());
  LASTCPU_CHECK(!ports_.contains(device), "device %u already attached", device.value());
  Port port;
  port.iommu = iommu;
  port.link = link;
  ports_.emplace(device, std::move(port));
}

void Fabric::SetDoorbellHandler(DeviceId device,
                                std::function<void(DeviceId, uint64_t)> fn) {
  Port* port = FindPort(device);
  LASTCPU_CHECK(port != nullptr, "doorbell handler for unattached device %u", device.value());
  port->doorbell = std::move(fn);
}

void Fabric::DetachDevice(DeviceId device) { ports_.erase(device); }

Fabric::Port* Fabric::FindPort(DeviceId device) {
  auto it = ports_.find(device);
  return it == ports_.end() ? nullptr : &it->second;
}

Status Fabric::TranslateRange(Port& port, Pasid pasid, VirtAddr addr, uint64_t length,
                              Access wanted, std::vector<std::pair<PhysAddr, uint64_t>>& out,
                              sim::Duration& cost) {
  uint64_t remaining = length;
  VirtAddr cursor = addr;
  while (remaining > 0) {
    auto translation = port.iommu->Translate(pasid, cursor, wanted);
    if (!translation.ok()) {
      return translation.status();
    }
    if (!translation->tlb_hit) {
      cost += config_.walk_latency_per_level * static_cast<uint64_t>(translation->levels_walked);
    }
    uint64_t chunk = std::min(remaining, kPageSize - cursor.offset());
    out.emplace_back(translation->paddr, chunk);
    cursor = cursor + chunk;
    remaining -= chunk;
  }
  return OkStatus();
}

sim::SimTime Fabric::ScheduleTransfer(Port& port, uint64_t bytes, sim::Duration extra) {
  auto wire_time = sim::Duration::Nanos(
      static_cast<uint64_t>(static_cast<double>(bytes) / port.link.bytes_per_nano));
  sim::SimTime start = std::max(simulator_->Now(), port.link_busy_until);
  sim::SimTime done = start + port.link.base_latency + wire_time + extra;
  port.link_busy_until = done;
  return done;
}

void Fabric::DmaWrite(DeviceId initiator, Pasid pasid, VirtAddr dst, std::vector<uint8_t> data,
                      DmaCallback done, sim::TraceContext ctx) {
  Port* port = FindPort(initiator);
  LASTCPU_CHECK(port != nullptr, "DMA from unattached device %u", initiator.value());
  LASTCPU_CHECK(done != nullptr, "DMA without completion callback");

  sim::SpanId span = tracer_.BeginSpan(
      "DmaWrite", ctx.span,
      "dev=" + std::to_string(initiator.value()) + " bytes=" + std::to_string(data.size()));

  std::vector<std::pair<PhysAddr, uint64_t>> segments;
  sim::Duration walk_cost = sim::Duration::Zero();
  Status translated =
      TranslateRange(*port, pasid, dst, data.size(), Access::kWrite, segments, walk_cost);
  if (!translated.ok()) {
    stats_.GetCounter("dma_faults").Increment();
    tracer_.Instant("dma-fault", translated.message(), span);
    // Hardware reports the abort asynchronously, after the failed bus cycle.
    simulator_->Schedule(port->link.base_latency, [this, span, done = std::move(done), translated] {
      done(translated);
      tracer_.EndSpan(span);
    });
    return;
  }

  sim::SimTime completion = ScheduleTransfer(*port, data.size(), walk_cost);
  stats_.GetCounter("dma_writes").Increment();
  stats_.GetCounter("dma_bytes_written").Increment(data.size());
  stats_.GetHistogram("dma_write_latency").Record(completion - simulator_->Now());

  simulator_->ScheduleAt(
      completion, [this, span, segments = std::move(segments), data = std::move(data),
                   done = std::move(done)] {
        uint64_t offset = 0;
        for (const auto& [paddr, len] : segments) {
          memory_->Write(paddr, std::span<const uint8_t>(data.data() + offset, len));
          offset += len;
        }
        done(OkStatus());
        tracer_.EndSpan(span);
      });
}

void Fabric::DmaRead(DeviceId initiator, Pasid pasid, VirtAddr src, uint64_t length,
                     DmaReadCallback done, sim::TraceContext ctx) {
  Port* port = FindPort(initiator);
  LASTCPU_CHECK(port != nullptr, "DMA from unattached device %u", initiator.value());
  LASTCPU_CHECK(done != nullptr, "DMA without completion callback");

  sim::SpanId span = tracer_.BeginSpan(
      "DmaRead", ctx.span,
      "dev=" + std::to_string(initiator.value()) + " bytes=" + std::to_string(length));

  std::vector<std::pair<PhysAddr, uint64_t>> segments;
  sim::Duration walk_cost = sim::Duration::Zero();
  Status translated = TranslateRange(*port, pasid, src, length, Access::kRead, segments, walk_cost);
  if (!translated.ok()) {
    stats_.GetCounter("dma_faults").Increment();
    tracer_.Instant("dma-fault", translated.message(), span);
    simulator_->Schedule(port->link.base_latency, [this, span, done = std::move(done), translated] {
      done(translated);
      tracer_.EndSpan(span);
    });
    return;
  }

  sim::SimTime completion = ScheduleTransfer(*port, length, walk_cost);
  stats_.GetCounter("dma_reads").Increment();
  stats_.GetCounter("dma_bytes_read").Increment(length);
  stats_.GetHistogram("dma_read_latency").Record(completion - simulator_->Now());

  simulator_->ScheduleAt(completion,
                         [this, span, segments = std::move(segments), length,
                          done = std::move(done)] {
                           std::vector<uint8_t> data(length);
                           uint64_t offset = 0;
                           for (const auto& [paddr, len] : segments) {
                             memory_->Read(paddr, std::span<uint8_t>(data.data() + offset, len));
                             offset += len;
                           }
                           done(std::move(data));
                           tracer_.EndSpan(span);
                         });
}

void Fabric::DmaWritev(DeviceId initiator, Pasid pasid, std::vector<DmaWriteSegment> segments,
                       DmaCallback done, sim::TraceContext ctx) {
  Port* port = FindPort(initiator);
  LASTCPU_CHECK(port != nullptr, "DMA from unattached device %u", initiator.value());
  LASTCPU_CHECK(done != nullptr, "DMA without completion callback");

  uint64_t total_bytes = 0;
  for (const DmaWriteSegment& segment : segments) {
    total_bytes += segment.data.size();
  }
  sim::SpanId span = tracer_.BeginSpan(
      "DmaWritev", ctx.span,
      "dev=" + std::to_string(initiator.value()) + " segments=" +
          std::to_string(segments.size()) + " bytes=" + std::to_string(total_bytes));

  // Per-segment translation (each pays its own walk costs), one transfer.
  std::vector<std::pair<PhysAddr, uint64_t>> phys;
  sim::Duration walk_cost = sim::Duration::Zero();
  for (const DmaWriteSegment& segment : segments) {
    Status translated = TranslateRange(*port, pasid, segment.addr, segment.data.size(),
                                       Access::kWrite, phys, walk_cost);
    if (!translated.ok()) {
      stats_.GetCounter("dma_faults").Increment();
      tracer_.Instant("dma-fault", translated.message(), span);
      simulator_->Schedule(port->link.base_latency,
                           [this, span, done = std::move(done), translated] {
                             done(translated);
                             tracer_.EndSpan(span);
                           });
      return;
    }
  }

  sim::SimTime completion = ScheduleTransfer(*port, total_bytes, walk_cost);
  stats_.GetCounter("dma_writes").Increment();
  stats_.GetCounter("dma_sg_segments").Increment(segments.size());
  stats_.GetCounter("dma_bytes_written").Increment(total_bytes);
  stats_.GetHistogram("dma_write_latency").Record(completion - simulator_->Now());

  simulator_->ScheduleAt(
      completion, [this, span, phys = std::move(phys), segments = std::move(segments),
                   done = std::move(done)] {
        size_t cursor = 0;
        uint64_t cursor_offset = 0;
        for (const DmaWriteSegment& segment : segments) {
          uint64_t offset = 0;
          while (offset < segment.data.size()) {
            const auto& [paddr, len] = phys[cursor];
            uint64_t chunk = std::min(len - cursor_offset, segment.data.size() - offset);
            memory_->Write(PhysAddr(paddr.raw + cursor_offset),
                           std::span<const uint8_t>(segment.data.data() + offset, chunk));
            offset += chunk;
            cursor_offset += chunk;
            if (cursor_offset == len) {
              ++cursor;
              cursor_offset = 0;
            }
          }
        }
        done(OkStatus());
        tracer_.EndSpan(span);
      });
}

void Fabric::DmaReadv(DeviceId initiator, Pasid pasid, std::vector<DmaReadSegment> segments,
                      DmaReadvCallback done, sim::TraceContext ctx) {
  Port* port = FindPort(initiator);
  LASTCPU_CHECK(port != nullptr, "DMA from unattached device %u", initiator.value());
  LASTCPU_CHECK(done != nullptr, "DMA without completion callback");

  uint64_t total_bytes = 0;
  for (const DmaReadSegment& segment : segments) {
    total_bytes += segment.length;
  }
  sim::SpanId span = tracer_.BeginSpan(
      "DmaReadv", ctx.span,
      "dev=" + std::to_string(initiator.value()) + " segments=" +
          std::to_string(segments.size()) + " bytes=" + std::to_string(total_bytes));

  std::vector<std::pair<PhysAddr, uint64_t>> phys;
  sim::Duration walk_cost = sim::Duration::Zero();
  for (const DmaReadSegment& segment : segments) {
    Status translated =
        TranslateRange(*port, pasid, segment.addr, segment.length, Access::kRead, phys, walk_cost);
    if (!translated.ok()) {
      stats_.GetCounter("dma_faults").Increment();
      tracer_.Instant("dma-fault", translated.message(), span);
      simulator_->Schedule(port->link.base_latency,
                           [this, span, done = std::move(done), translated] {
                             done(translated);
                             tracer_.EndSpan(span);
                           });
      return;
    }
  }

  sim::SimTime completion = ScheduleTransfer(*port, total_bytes, walk_cost);
  stats_.GetCounter("dma_reads").Increment();
  stats_.GetCounter("dma_sg_segments").Increment(segments.size());
  stats_.GetCounter("dma_bytes_read").Increment(total_bytes);
  stats_.GetHistogram("dma_read_latency").Record(completion - simulator_->Now());

  simulator_->ScheduleAt(
      completion, [this, span, phys = std::move(phys), segments = std::move(segments),
                   done = std::move(done)] {
        std::vector<std::vector<uint8_t>> buffers;
        buffers.reserve(segments.size());
        size_t cursor = 0;
        uint64_t cursor_offset = 0;
        for (const DmaReadSegment& segment : segments) {
          std::vector<uint8_t> data(segment.length);
          uint64_t offset = 0;
          while (offset < segment.length) {
            const auto& [paddr, len] = phys[cursor];
            uint64_t chunk = std::min(len - cursor_offset, segment.length - offset);
            memory_->Read(PhysAddr(paddr.raw + cursor_offset),
                          std::span<uint8_t>(data.data() + offset, chunk));
            offset += chunk;
            cursor_offset += chunk;
            if (cursor_offset == len) {
              ++cursor;
              cursor_offset = 0;
            }
          }
          buffers.push_back(std::move(data));
        }
        done(std::move(buffers));
        tracer_.EndSpan(span);
      });
}

AccessResult Fabric::MemWrite(DeviceId initiator, Pasid pasid, VirtAddr dst,
                              std::span<const uint8_t> data) {
  Port* port = FindPort(initiator);
  LASTCPU_CHECK(port != nullptr, "access from unattached device %u", initiator.value());
  std::vector<std::pair<PhysAddr, uint64_t>> segments;
  sim::Duration cost = config_.mmio_latency;
  Status translated =
      TranslateRange(*port, pasid, dst, data.size(), Access::kWrite, segments, cost);
  if (!translated.ok()) {
    return AccessResult{translated, cost};
  }
  uint64_t offset = 0;
  for (const auto& [paddr, len] : segments) {
    memory_->Write(paddr, data.subspan(offset, len));
    offset += len;
  }
  stats_.GetCounter("mmio_writes").Increment();
  return AccessResult{OkStatus(), cost};
}

AccessResult Fabric::MemRead(DeviceId initiator, Pasid pasid, VirtAddr src,
                             std::span<uint8_t> out) {
  Port* port = FindPort(initiator);
  LASTCPU_CHECK(port != nullptr, "access from unattached device %u", initiator.value());
  std::vector<std::pair<PhysAddr, uint64_t>> segments;
  sim::Duration cost = config_.mmio_latency;
  Status translated = TranslateRange(*port, pasid, src, out.size(), Access::kRead, segments, cost);
  if (!translated.ok()) {
    return AccessResult{translated, cost};
  }
  uint64_t offset = 0;
  for (const auto& [paddr, len] : segments) {
    memory_->Read(paddr, out.subspan(offset, len));
    offset += len;
  }
  stats_.GetCounter("mmio_reads").Increment();
  return AccessResult{OkStatus(), cost};
}

AccessResult Fabric::WriteU64(DeviceId initiator, Pasid pasid, VirtAddr dst, uint64_t value) {
  uint8_t buf[8];
  uint64_t v = value;
  for (auto& b : buf) {
    b = static_cast<uint8_t>(v);
    v >>= 8;
  }
  return MemWrite(initiator, pasid, dst, buf);
}

AccessResult Fabric::ReadU64(DeviceId initiator, Pasid pasid, VirtAddr src, uint64_t* value) {
  uint8_t buf[8] = {};
  AccessResult result = MemRead(initiator, pasid, src, buf);
  if (result.status.ok()) {
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | buf[i];
    }
    *value = v;
  }
  return result;
}

void Fabric::RingDoorbell(DeviceId from, DeviceId to, uint64_t value) {
  Port* port = FindPort(to);
  if (port == nullptr || !port->doorbell) {
    stats_.GetCounter("doorbells_dropped").Increment();
    return;
  }
  stats_.GetCounter("doorbells").Increment();
  sim::Duration latency = config_.doorbell_latency;
  int copies = 1;
  if (faults_ != nullptr) {
    sim::FaultDecision fault = faults_->Decide();
    if (fault.drop) {
      // Doorbells are edge-triggered with no acknowledgement: a lost one is
      // simply lost, and the receiver's poll backstop must catch the work.
      stats_.GetCounter("doorbells_faulted").Increment();
      return;
    }
    latency = latency + fault.extra_delay;
    if (fault.reorder) {
      // A held doorbell is indistinguishable from a late one.
      latency = latency + faults_->plan().reorder_window;
    }
    if (fault.duplicate) {
      copies = 2;
    }
  }
  for (int i = 0; i < copies; ++i) {
    simulator_->Schedule(latency, [this, from, to, value] {
      // Re-resolve: the target may have detached (device failure) in flight.
      Port* target = FindPort(to);
      if (target != nullptr && target->doorbell) {
        target->doorbell(from, value);
      } else {
        stats_.GetCounter("doorbells_dropped").Increment();
      }
    });
  }
}

DoorbellBatcher::DoorbellBatcher(Fabric* fabric, DeviceId from)
    : fabric_(fabric), from_(from) {
  LASTCPU_CHECK(fabric != nullptr, "doorbell batcher needs a fabric");
}

DoorbellBatcher::~DoorbellBatcher() { CancelPending(); }

void DoorbellBatcher::CancelPending() {
  for (auto& [key, pending] : pending_) {
    fabric_->simulator()->Cancel(pending.flush);
  }
  pending_.clear();
}

void DoorbellBatcher::Ring(DeviceId to, uint64_t value) {
  sim::Duration window = fabric_->config().doorbell_coalesce_window;
  if (window == sim::Duration::Zero()) {
    fabric_->RingDoorbell(from_, to, value);
    return;
  }
  auto key = std::make_pair(to, value);
  auto it = pending_.find(key);
  if (it != pending_.end()) {
    // Suppressed: the trailing doorbell at window close covers this ring.
    ++it->second.merged;
    ++coalesced_;
    fabric_->stats().GetCounter("doorbells_coalesced").Increment();
    return;
  }
  // Leading edge goes out immediately — a lone doorbell pays no extra
  // latency; only bursts are merged.
  fabric_->RingDoorbell(from_, to, value);
  Pending pending;
  pending.flush = fabric_->simulator()->Schedule(window, [this, to, value, key] {
    auto pending_it = pending_.find(key);
    if (pending_it == pending_.end()) {
      return;
    }
    uint64_t merged = pending_it->second.merged;
    pending_.erase(pending_it);
    if (merged > 0) {
      fabric_->RingDoorbell(from_, to, value);
    }
  });
  pending_.emplace(key, pending);
}

}  // namespace lastcpu::fabric
