// The data-plane interconnect (paper Sec. 2.3 "Dataplane").
//
// Strictly separate from the control-plane system bus: this carries memory
// traffic only. Every access a device initiates is translated by that
// device's IOMMU (selecting the address space by PASID), then hits physical
// memory. Bulk transfers run asynchronously through per-device DMA engines
// with a bandwidth/latency cost model; small accesses (ring pointers,
// descriptors) use the synchronous MMIO-style path and report their modeled
// cost to the caller. Doorbells are modeled as writes to a special address
// that raise a callback at the target device (MSI-like).
#ifndef SRC_FABRIC_FABRIC_H_
#define SRC_FABRIC_FABRIC_H_

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/iommu/iommu.h"
#include "src/mem/physical_memory.h"
#include "src/sim/fault.h"
#include "src/sim/move_fn.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"
#include "src/sim/trace_context.h"

namespace lastcpu::fabric {

// Per-device link characteristics. Defaults approximate a PCIe 4.0 x4 device:
// ~8 GB/s sustained, sub-microsecond latency.
struct LinkConfig {
  sim::Duration base_latency = sim::Duration::Nanos(600);
  double bytes_per_nano = 8.0;  // ~8 GB/s
};

// Global fabric cost knobs.
struct FabricConfig {
  sim::Duration doorbell_latency = sim::Duration::Nanos(400);
  sim::Duration mmio_latency = sim::Duration::Nanos(150);      // small read/write round trip
  sim::Duration walk_latency_per_level = sim::Duration::Nanos(80);  // page-table walk step
  // Doorbell coalescing window for DoorbellBatcher users. Zero (the default)
  // disables coalescing: every Ring() is one fabric doorbell, byte-identical
  // to the unbatched model.
  sim::Duration doorbell_coalesce_window = sim::Duration::Zero();
  // Extra latency a data-plane access pays when it crosses a chassis boundary
  // (the rack's inter-segment cable). Zero (the default) keeps the flat
  // single-chassis model byte-identical: no segment lookups, no extra cost.
  sim::Duration inter_segment_hop = sim::Duration::Zero();
};

// One segment of a scatter-gather write: destination + payload.
struct DmaWriteSegment {
  VirtAddr addr;
  std::vector<uint8_t> data;
};

// One segment of a scatter-gather read: source + length.
struct DmaReadSegment {
  VirtAddr addr;
  uint64_t length = 0;
};

// Outcome of a synchronous small access: status plus the modeled cost the
// initiating device should account before its next action.
struct AccessResult {
  Status status;
  sim::Duration cost;
};

class Fabric {
 public:
  Fabric(sim::Simulator* simulator, mem::PhysicalMemory* memory, FabricConfig config = {},
         sim::TraceLog* trace = nullptr);

  // Attaches a device's data port. The IOMMU translates all of its traffic;
  // `doorbell` fires when another device rings this device.
  void AttachDevice(DeviceId device, iommu::Iommu* iommu, LinkConfig link = {});
  void SetDoorbellHandler(DeviceId device, std::function<void(DeviceId from, uint64_t value)> fn);
  void DetachDevice(DeviceId device);
  bool IsAttached(DeviceId device) const { return ports_.contains(device); }

  // --- bulk asynchronous DMA ------------------------------------------------

  // Move-only (see sim::MoveFn): completions routinely capture buffers and
  // nested callbacks that should transfer, not copy. Sized so one level of
  // nesting plus a payload stays inline.
  using DmaCallback = sim::MoveFn<void(Status), 160>;
  using DmaReadCallback = sim::MoveFn<void(Result<std::vector<uint8_t>>), 160>;

  // Copies `data` into (pasid, dst). Completion is signaled after the modeled
  // transfer time; translation faults complete with an error. `ctx` parents
  // the transfer's trace span to the operation that issued it.
  void DmaWrite(DeviceId initiator, Pasid pasid, VirtAddr dst, std::vector<uint8_t> data,
                DmaCallback done, sim::TraceContext ctx = {});

  // Reads `length` bytes from (pasid, src).
  void DmaRead(DeviceId initiator, Pasid pasid, VirtAddr src, uint64_t length,
               DmaReadCallback done, sim::TraceContext ctx = {});

  // --- scatter-gather DMA (the data-plane batching fast path) ---------------

  using DmaReadvCallback =
      sim::MoveFn<void(Result<std::vector<std::vector<uint8_t>>>), 160>;

  // Writes every segment as ONE modeled transfer: per-segment translation
  // (each segment pays its own walk costs on TLB misses), a single
  // link-occupancy charge for the summed bytes, and one completion. A burst
  // of N buffers costs one DMA transaction instead of N.
  void DmaWritev(DeviceId initiator, Pasid pasid, std::vector<DmaWriteSegment> segments,
                 DmaCallback done, sim::TraceContext ctx = {});

  // Gathers every segment in one modeled transfer; the callback receives one
  // buffer per requested segment, in order.
  void DmaReadv(DeviceId initiator, Pasid pasid, std::vector<DmaReadSegment> segments,
                DmaReadvCallback done, sim::TraceContext ctx = {});

  // --- small synchronous accesses (descriptors, ring indices) ---------------

  AccessResult MemWrite(DeviceId initiator, Pasid pasid, VirtAddr dst,
                        std::span<const uint8_t> data);
  AccessResult MemRead(DeviceId initiator, Pasid pasid, VirtAddr src, std::span<uint8_t> out);
  AccessResult WriteU64(DeviceId initiator, Pasid pasid, VirtAddr dst, uint64_t value);
  // On success `value` receives the data.
  AccessResult ReadU64(DeviceId initiator, Pasid pasid, VirtAddr src, uint64_t* value);

  // --- notifications ---------------------------------------------------------

  // Rings `to`'s doorbell after the doorbell latency (Sec. 2.3).
  void RingDoorbell(DeviceId from, DeviceId to, uint64_t value);

  sim::StatsRegistry& stats() { return stats_; }
  mem::PhysicalMemory* memory() { return memory_; }
  sim::Simulator* simulator() { return simulator_; }
  const FabricConfig& config() const { return config_; }

  // Installs (or clears, with nullptr) the machine-wide fault injector;
  // consulted on every doorbell. Doorbells are edge-triggered interrupts with
  // no acknowledgement, so clients that depend on them must poll as backstop.
  void SetFaultInjector(sim::FaultInjector* injector) { faults_ = injector; }

  // --- rack topology ---------------------------------------------------------

  // Declares that physical frames [first_frame, first_frame + count) live on
  // `segment` (one band per memory-controller shard). With inter_segment_hop
  // configured, DMA that targets frames off the initiator's segment pays the
  // hop; without bands every frame is segment 0.
  void SetSegmentForFrames(uint64_t first_frame, uint64_t count, uint32_t segment);
  // The segment holding `frame` (0 when no bands are declared).
  uint32_t SegmentOfFrame(uint64_t frame) const;

 private:
  struct Port {
    iommu::Iommu* iommu = nullptr;
    LinkConfig link;
    std::function<void(DeviceId, uint64_t)> doorbell;
    sim::SimTime link_busy_until;  // serializes transfers on one link
  };

  Port* FindPort(DeviceId device);

  // Translates [addr, addr+length) page by page; on success appends
  // (paddr, chunk_len) pairs to `out` and adds walk costs to `cost`.
  Status TranslateRange(Port& port, Pasid pasid, VirtAddr addr, uint64_t length, Access wanted,
                        std::vector<std::pair<PhysAddr, uint64_t>>& out, sim::Duration& cost);

  // Computes when a transfer of `bytes` on `port` completes, advancing the
  // link-busy horizon (store-and-forward pipe model).
  sim::SimTime ScheduleTransfer(Port& port, uint64_t bytes, sim::Duration extra);

  // The inter-segment cost of `initiator` touching the frame behind `paddr`
  // (zero when the hop is unconfigured or the access stays on-segment).
  // Counts cross-segment DMAs as a side effect.
  sim::Duration DmaHopCost(DeviceId initiator, PhysAddr paddr);

  sim::Simulator* simulator_;
  mem::PhysicalMemory* memory_;
  FabricConfig config_;
  sim::Tracer tracer_;
  std::unordered_map<DeviceId, Port> ports_;
  // Last port looked up. DMA-heavy phases hit the same initiator for long
  // runs, so this turns the per-access hash lookup into one id compare.
  // Port references are stable in unordered_map except for erased entries,
  // so only detach must invalidate.
  DeviceId cached_port_id_ = DeviceId::Invalid();
  Port* cached_port_ = nullptr;
  sim::StatsRegistry stats_;
  sim::FaultInjector* faults_ = nullptr;
  // Frame-range -> segment bands, sorted by first_frame; empty on a flat
  // machine (every frame reads as segment 0).
  struct FrameBand {
    uint64_t first_frame = 0;
    uint64_t count = 0;
    uint32_t segment = 0;
  };
  std::vector<FrameBand> frame_bands_;

  // Per-transfer stats, resolved once at construction: registry references
  // are stable for the fabric's lifetime, so the per-event cost is a plain
  // increment instead of a name lookup.
  sim::Counter& dma_faults_ = stats_.GetCounter("dma_faults");
  sim::Counter& dma_writes_ = stats_.GetCounter("dma_writes");
  sim::Counter& dma_bytes_written_ = stats_.GetCounter("dma_bytes_written");
  sim::Counter& dma_reads_ = stats_.GetCounter("dma_reads");
  sim::Counter& dma_bytes_read_ = stats_.GetCounter("dma_bytes_read");
  sim::Counter& dma_sg_segments_ = stats_.GetCounter("dma_sg_segments");
  sim::Counter& mmio_writes_ = stats_.GetCounter("mmio_writes");
  sim::Counter& mmio_reads_ = stats_.GetCounter("mmio_reads");
  sim::Counter& doorbells_ = stats_.GetCounter("doorbells");
  sim::Counter& doorbells_dropped_ = stats_.GetCounter("doorbells_dropped");
  sim::Counter& doorbells_faulted_ = stats_.GetCounter("doorbells_faulted");
  sim::Counter& doorbells_coalesced_ = stats_.GetCounter("doorbells_coalesced");
  sim::Counter& cross_segment_dmas_ = stats_.GetCounter("cross_segment_dmas");
  sim::Counter& cross_segment_doorbells_ = stats_.GetCounter("cross_segment_doorbells");

  friend class DoorbellBatcher;
  sim::Histogram& dma_write_latency_ = stats_.GetHistogram("dma_write_latency");
  sim::Histogram& dma_read_latency_ = stats_.GetHistogram("dma_read_latency");
};

// Device-side doorbell coalescing. With the fabric's coalesce window at zero
// every Ring() passes straight through to RingDoorbell — same fault
// injection, same stats, byte-identical schedules. With a window configured,
// the first ring of a given (target, value) goes out immediately (so a lone
// doorbell pays no extra latency) and identical rings within the window are
// merged into one trailing doorbell at window close — a burst of N rings
// costs at most 2 fabric doorbells. The trailing doorbell (like every
// doorbell) still runs the PR-2 fault injector; receivers keep their poll
// backstops.
class DoorbellBatcher {
 public:
  DoorbellBatcher(Fabric* fabric, DeviceId from);
  ~DoorbellBatcher();
  DoorbellBatcher(const DoorbellBatcher&) = delete;
  DoorbellBatcher& operator=(const DoorbellBatcher&) = delete;

  // Rings `to` with `value`, coalescing per the fabric's window.
  void Ring(DeviceId to, uint64_t value);

  // Cancels every pending trailing doorbell (device reset: the receiver's
  // poll backstop owns any work the lost edge would have signaled).
  void CancelPending();

  // Rings suppressed into a trailing doorbell so far.
  uint64_t coalesced() const { return coalesced_; }

 private:
  struct Pending {
    // RAII: dropping the entry (reset, destruction) cancels the trailing
    // flush; a flush that already fired is a clean cancel miss.
    sim::ScopedEvent flush;
    uint64_t merged = 0;
  };

  Fabric* fabric_;
  DeviceId from_;
  std::map<std::pair<DeviceId, uint64_t>, Pending> pending_;
  uint64_t coalesced_ = 0;
};

}  // namespace lastcpu::fabric

#endif  // SRC_FABRIC_FABRIC_H_
