#include "src/base/check.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace lastcpu {

void CheckFailed(const char* file, int line, const char* condition, const char* format, ...) {
  std::fprintf(stderr, "[lastcpu fatal] %s:%d: check failed: %s\n  ", file, line, condition);
  va_list args;
  va_start(args, format);
  std::vfprintf(stderr, format, args);
  va_end(args);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace lastcpu
