// Error handling primitives: Status and Result<T>.
//
// The emulator does not throw in the simulated-hardware paths: devices report
// failures the way hardware does, as explicit condition codes. Status carries
// a code plus a human-readable detail; Result<T> is a Status-or-value union.
#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "src/base/check.h"

namespace lastcpu {

// Condition codes shared across the whole system. These double as the error
// codes carried inside bus protocol messages, so they are stable small ints.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kPermissionDenied = 4,
  kResourceExhausted = 5,
  kFailedPrecondition = 6,
  kUnavailable = 7,       // target device not alive / link down
  kTimedOut = 8,          // request deadline expired
  kAborted = 9,           // operation cancelled mid-flight (reset, teardown)
  kDataLoss = 10,         // uncorrectable media error
  kUnimplemented = 11,
  kInternal = 12,
  kPartitioned = 13,      // cross-segment link down: destination segment unreachable
};

std::string_view StatusCodeName(StatusCode code);

// A condition code with optional detail text. Cheap to copy when OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  StatusCode code() const { return code_; }
  bool ok() const { return code_ == StatusCode::kOk; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status PermissionDenied(std::string msg) {
  return Status(StatusCode::kPermissionDenied, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status TimedOut(std::string msg) { return Status(StatusCode::kTimedOut, std::move(msg)); }
inline Status Aborted(std::string msg) { return Status(StatusCode::kAborted, std::move(msg)); }
inline Status DataLoss(std::string msg) { return Status(StatusCode::kDataLoss, std::move(msg)); }
inline Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }
inline Status Partitioned(std::string msg) {
  return Status(StatusCode::kPartitioned, std::move(msg));
}

// Holds either a value of T or a non-OK Status. Accessing the value of a
// failed Result is a programming error and aborts (hardware models must check
// condition codes, exactly like a driver checks a completion status).
template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status)                          // NOLINT(google-explicit-constructor)
      : state_(std::move(status)) {
    LASTCPU_CHECK(!std::get<Status>(state_).ok(), "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  Status status() const {
    if (ok()) {
      return OkStatus();
    }
    return std::get<Status>(state_);
  }

  const T& value() const& {
    LASTCPU_CHECK(ok(), "Result::value() on error: %s", status().ToString().c_str());
    return std::get<T>(state_);
  }
  T& value() & {
    LASTCPU_CHECK(ok(), "Result::value() on error: %s", status().ToString().c_str());
    return std::get<T>(state_);
  }
  T&& value() && {
    LASTCPU_CHECK(ok(), "Result::value() on error: %s", status().ToString().c_str());
    return std::move(std::get<T>(state_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> state_;
};

// Status-like specialization: no value, but unlike the primary template it
// may hold an OK state, so Result<void> is the uniform "operation outcome"
// for completion callbacks (see Callback<T> below).
template <>
class Result<void> {
 public:
  Result() = default;
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return status_.ok(); }
  Status status() const { return status_; }

  // Legacy adapter: lets callables taking a bare Status serve as
  // Callback<void> while call sites migrate.
  operator Status() const { return status_; }  // NOLINT(google-explicit-constructor)

 private:
  Status status_;
};

// The one completion-callback shape used across control-plane surfaces
// (ControlClient, CentralKernel): value-producing operations complete with
// Result<T>, status-only operations with Result<void>.
template <typename T>
using Callback = std::function<void(Result<T>)>;

// Propagates a non-OK status out of the enclosing function.
#define LASTCPU_RETURN_IF_ERROR(expr)           \
  do {                                          \
    ::lastcpu::Status lastcpu_status_ = (expr); \
    if (!lastcpu_status_.ok()) {                \
      return lastcpu_status_;                   \
    }                                           \
  } while (false)

}  // namespace lastcpu

#endif  // SRC_BASE_STATUS_H_
