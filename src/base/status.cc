#include "src/base/status.h"

namespace lastcpu {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kTimedOut:
      return "TIMED_OUT";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kPartitioned:
      return "PARTITIONED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace lastcpu
