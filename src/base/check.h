// Invariant checking. LASTCPU_CHECK aborts with a message on violation; it is
// active in all build types because the simulator's correctness claims rest on
// these invariants holding during benchmarks too.
#ifndef SRC_BASE_CHECK_H_
#define SRC_BASE_CHECK_H_

#include <cstdarg>

namespace lastcpu {

// Prints a formatted fatal message (with source location) and aborts.
[[noreturn]] void CheckFailed(const char* file, int line, const char* condition, const char* format,
                              ...) __attribute__((format(printf, 4, 5)));

}  // namespace lastcpu

// Aborts the process with a diagnostic if `condition` is false. `...` is a
// printf-style message giving context.
#define LASTCPU_CHECK(condition, ...)                                       \
  do {                                                                      \
    if (!(condition)) [[unlikely]] {                                        \
      ::lastcpu::CheckFailed(__FILE__, __LINE__, #condition, __VA_ARGS__);  \
    }                                                                       \
  } while (false)

// Marks unreachable code paths.
#define LASTCPU_UNREACHABLE(msg) ::lastcpu::CheckFailed(__FILE__, __LINE__, "unreachable", msg)

#endif  // SRC_BASE_CHECK_H_
