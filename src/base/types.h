// Strong fundamental types shared by every lastcpu module.
//
// The emulator models hardware identifiers (device ids, address-space ids,
// physical/virtual addresses). Mixing those up is the classic source of
// simulator bugs, so each one is a distinct type: ids are tag-parameterized
// integer wrappers, addresses are explicit structs with arithmetic helpers.
#ifndef SRC_BASE_TYPES_H_
#define SRC_BASE_TYPES_H_

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace lastcpu {

// A typed integer id. `Tag` makes ids of different kinds non-interchangeable.
template <typename Tag, typename Int = uint32_t>
class TypedId {
 public:
  using value_type = Int;

  constexpr TypedId() = default;
  constexpr explicit TypedId(Int value) : value_(value) {}

  constexpr Int value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalidValue; }

  static constexpr TypedId Invalid() { return TypedId(kInvalidValue); }

  friend constexpr auto operator<=>(TypedId, TypedId) = default;

 private:
  static constexpr Int kInvalidValue = static_cast<Int>(-1);
  Int value_ = kInvalidValue;
};

struct DeviceIdTag {};
struct PasidTag {};
struct RequestIdTag {};
struct InstanceIdTag {};
struct TokenIdTag {};
struct AppIdTag {};

// Identifies a hardware device attached to the system bus / fabric.
using DeviceId = TypedId<DeviceIdTag>;
// Process Address Space ID: identifies one application's virtual address
// space, selected per memory operation (PCIe PASID-like; see paper Sec. 2.3).
using Pasid = TypedId<PasidTag>;
// Correlates a control-plane request with its response.
using RequestId = TypedId<RequestIdTag, uint64_t>;
// One opened instance (context) of a device service.
using InstanceId = TypedId<InstanceIdTag, uint64_t>;
// An authorization token handle (see auth module).
using TokenId = TypedId<TokenIdTag, uint64_t>;
// One distributed application (a virtual address space + its components).
using AppId = TypedId<AppIdTag>;

// The broadcast destination: delivered to every live device on the bus.
inline constexpr DeviceId kBroadcastDevice = DeviceId(0xFFFFFFFEu);
// The system bus itself, addressable as a privileged pseudo-device.
inline constexpr DeviceId kBusDevice = DeviceId(0xFFFFFFFDu);

// --- rack topology: segment-qualified device ids -----------------------------
//
// A rack is a set of chassis ("bus segments"), each its own broadcast domain
// on the control plane. The segment a device sits on is encoded in the high
// bits of its DeviceId, so routing never needs a lookup table: segment-0
// devices keep the small flat ids of the single-chassis machine, which keeps
// every pre-rack configuration bit-identical. Ids at or above
// kFirstReservedDeviceId (broadcast, bus, invalid) are pseudo-devices with no
// segment; the bus/router has a presence on every segment.
inline constexpr uint32_t kSegmentShift = 20;
inline constexpr uint32_t kFirstReservedDeviceId = 0xFF000000u;

constexpr bool IsReservedDevice(DeviceId id) { return id.value() >= kFirstReservedDeviceId; }

constexpr uint32_t SegmentOf(DeviceId id) {
  return IsReservedDevice(id) ? 0 : id.value() >> kSegmentShift;
}

// The id of device `local` on `segment`. Segment 0 ids coincide with the flat
// pre-rack numbering.
constexpr DeviceId MakeSegmentDeviceId(uint32_t segment, uint32_t local) {
  return DeviceId((segment << kSegmentShift) | local);
}

constexpr uint32_t LocalDeviceId(DeviceId id) {
  return id.value() & ((uint32_t{1} << kSegmentShift) - 1);
}

// Page geometry. 4 KiB pages throughout, like the IOMMUs we model.
inline constexpr uint64_t kPageShift = 12;
inline constexpr uint64_t kPageSize = uint64_t{1} << kPageShift;
inline constexpr uint64_t kPageMask = kPageSize - 1;

constexpr uint64_t PageFloor(uint64_t addr) { return addr & ~kPageMask; }
constexpr uint64_t PageCeil(uint64_t addr) { return (addr + kPageMask) & ~kPageMask; }
constexpr uint64_t PagesForBytes(uint64_t bytes) { return PageCeil(bytes) >> kPageShift; }

// A physical (fabric/DRAM) address.
struct PhysAddr {
  uint64_t raw = 0;

  constexpr PhysAddr() = default;
  constexpr explicit PhysAddr(uint64_t value) : raw(value) {}

  constexpr uint64_t frame() const { return raw >> kPageShift; }
  constexpr uint64_t offset() const { return raw & kPageMask; }
  constexpr PhysAddr operator+(uint64_t delta) const { return PhysAddr(raw + delta); }

  friend constexpr auto operator<=>(PhysAddr, PhysAddr) = default;
};

// A virtual address within some application's PASID-selected address space.
struct VirtAddr {
  uint64_t raw = 0;

  constexpr VirtAddr() = default;
  constexpr explicit VirtAddr(uint64_t value) : raw(value) {}

  constexpr uint64_t page() const { return raw >> kPageShift; }
  constexpr uint64_t offset() const { return raw & kPageMask; }
  constexpr VirtAddr operator+(uint64_t delta) const { return VirtAddr(raw + delta); }

  friend constexpr auto operator<=>(VirtAddr, VirtAddr) = default;
};

// Access permissions on a mapping, combinable as a bitmask.
enum class Access : uint8_t {
  kNone = 0,
  kRead = 1 << 0,
  kWrite = 1 << 1,
  kExecute = 1 << 2,
  kReadWrite = kRead | kWrite,
};

constexpr Access operator|(Access a, Access b) {
  return static_cast<Access>(static_cast<uint8_t>(a) | static_cast<uint8_t>(b));
}
constexpr Access operator&(Access a, Access b) {
  return static_cast<Access>(static_cast<uint8_t>(a) & static_cast<uint8_t>(b));
}
// True if `granted` covers every right in `wanted`.
constexpr bool AccessCovers(Access granted, Access wanted) {
  return (static_cast<uint8_t>(granted) & static_cast<uint8_t>(wanted)) ==
         static_cast<uint8_t>(wanted);
}

std::string ToString(Access access);

}  // namespace lastcpu

namespace std {

template <typename Tag, typename Int>
struct hash<lastcpu::TypedId<Tag, Int>> {
  size_t operator()(lastcpu::TypedId<Tag, Int> id) const noexcept {
    return std::hash<Int>{}(id.value());
  }
};

template <>
struct hash<lastcpu::PhysAddr> {
  size_t operator()(lastcpu::PhysAddr a) const noexcept { return std::hash<uint64_t>{}(a.raw); }
};

template <>
struct hash<lastcpu::VirtAddr> {
  size_t operator()(lastcpu::VirtAddr a) const noexcept { return std::hash<uint64_t>{}(a.raw); }
};

}  // namespace std

#endif  // SRC_BASE_TYPES_H_
