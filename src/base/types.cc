#include "src/base/types.h"

namespace lastcpu {

std::string ToString(Access access) {
  std::string out;
  out += AccessCovers(access, Access::kRead) ? 'r' : '-';
  out += AccessCovers(access, Access::kWrite) ? 'w' : '-';
  out += AccessCovers(access, Access::kExecute) ? 'x' : '-';
  return out;
}

}  // namespace lastcpu
