// NAND flash array model: the raw media inside the smart SSD.
//
// Models the constraints that make flash management interesting — erase
// before program, page-granular programs, block-granular erases, asymmetric
// latencies, per-die parallelism with per-die serialization, and wear. The
// FTL above this hides all of it behind a logical block interface.
#ifndef SRC_SSDDEV_NAND_H_
#define SRC_SSDDEV_NAND_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/move_fn.h"
#include "src/base/status.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"

namespace lastcpu::ssddev {

struct NandGeometry {
  uint32_t dies = 4;
  uint32_t blocks_per_die = 64;
  uint32_t pages_per_block = 64;
  uint32_t page_bytes = 4096;

  uint64_t total_pages() const {
    return static_cast<uint64_t>(dies) * blocks_per_die * pages_per_block;
  }
  uint64_t total_bytes() const { return total_pages() * page_bytes; }
};

struct NandTiming {
  sim::Duration read_latency = sim::Duration::Micros(50);
  sim::Duration program_latency = sim::Duration::Micros(400);
  sim::Duration erase_latency = sim::Duration::Millis(3);
};

// Physical page address.
struct Ppa {
  uint32_t die = 0;
  uint32_t block = 0;
  uint32_t page = 0;

  friend constexpr auto operator<=>(const Ppa&, const Ppa&) = default;
};

class NandArray {
 public:
  using ReadCallback = sim::MoveFn<void(Result<std::vector<uint8_t>>), 160>;
  using OpCallback = sim::MoveFn<void(Status), 160>;

  NandArray(sim::Simulator* simulator, NandGeometry geometry = {}, NandTiming timing = {},
            uint64_t seed = 1);

  const NandGeometry& geometry() const { return geometry_; }

  // Asynchronous media operations; completion runs after the die frees up
  // plus the operation latency. Invalid addresses and constraint violations
  // (program of a non-erased page, read of an unwritten page) fail.
  void ReadPage(Ppa ppa, ReadCallback done);
  void ProgramPage(Ppa ppa, std::vector<uint8_t> data, OpCallback done);
  void EraseBlock(uint32_t die, uint32_t block, OpCallback done);

  // Probability that a read returns an uncorrectable error (DataLoss), for
  // failure-injection experiments. Default 0.
  void SetReadErrorRate(double rate) { read_error_rate_ = rate; }

  uint32_t EraseCount(uint32_t die, uint32_t block) const;
  sim::StatsRegistry& stats() { return stats_; }

 private:
  enum class PageState : uint8_t { kErased, kWritten };

  struct Block {
    std::vector<PageState> pages;
    std::vector<std::vector<uint8_t>> data;
    uint32_t erase_count = 0;
  };

  struct Die {
    std::vector<Block> blocks;
    sim::SimTime busy_until;
  };

  Status CheckAddress(const Ppa& ppa) const;
  // Serializes an operation on a die; returns its completion time.
  sim::SimTime OccupyDie(uint32_t die, sim::Duration latency);

  sim::Simulator* simulator_;
  NandGeometry geometry_;
  NandTiming timing_;
  std::vector<Die> dies_;
  sim::Rng rng_;
  double read_error_rate_ = 0.0;
  sim::StatsRegistry stats_;
  // Per-IO counters resolved once; registry references are stable.
  sim::Counter& reads_ = stats_.GetCounter("reads");
  sim::Counter& programs_ = stats_.GetCounter("programs");
};

}  // namespace lastcpu::ssddev

#endif  // SRC_SSDDEV_NAND_H_
